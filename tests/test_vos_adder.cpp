// VosDutSim adapter tests on adder DUTs: pin mapping, carry-in
// handling, approximate netlists, and energy bookkeeping.
#include <gtest/gtest.h>

#include "src/netlist/approx_adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

OperatingTriad relaxed(const Netlist& nl) {
  const double cp =
      analyze_timing(nl, lib(), {1, 1.0, 0.0}).critical_path_ps;
  return {cp * 2.0e-3, 1.0, 0.0};
}

TEST(VosDutAdapter, CarryInPinnedLow) {
  const DutNetlist adder = to_dut(build_rca(8, /*with_cin=*/true));
  VosDutSim sim(adder, lib(), relaxed(adder.netlist));
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(sim.apply(a, b).sampled, a + b);  // cin contributes nothing
  }
}

TEST(VosDutAdapter, ApproxAdderSettlesToItsOwnFunction) {
  const DutNetlist loa = to_dut(build_lower_or(8, 4));
  VosDutSim sim(loa, lib(), relaxed(loa.netlist));
  Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const VosOpResult r = sim.apply(a, b);
    // At a relaxed clock the sampled value equals the settled one, which
    // is the LOA function — not necessarily a+b.
    ASSERT_EQ(r.sampled, r.settled);
    const std::uint64_t low = (a | b) & mask_n(4);
    const std::uint64_t carry =
        static_cast<std::uint64_t>(bit_of(a, 3) & bit_of(b, 3));
    ASSERT_EQ(r.settled, low | (((a >> 4) + (b >> 4) + carry) << 4));
  }
}

TEST(VosDutAdapter, CarryCutExtraOutputDoesNotCorruptSumWord) {
  // build_carry_cut marks an extra diagnostic output before the sum
  // bits; the adapter must still extract the arithmetic word correctly.
  const DutNetlist cut = to_dut(build_carry_cut(8, 4));
  VosDutSim sim(cut, lib(), relaxed(cut.netlist));
  const VosOpResult r = sim.apply(0x23, 0x14);
  EXPECT_EQ(r.sampled & mask_n(9), static_cast<std::uint64_t>(0x23 + 0x14));
}

TEST(VosDutAdapter, AccessorsConsistent) {
  const DutNetlist adder = to_dut(build_rca(8));
  const OperatingTriad op = relaxed(adder.netlist);
  VosDutSim sim(adder, lib(), op);
  EXPECT_EQ(sim.num_operands(), 2u);
  EXPECT_EQ(sim.operand_width(0), 8);
  EXPECT_EQ(sim.operand_width(1), 8);
  EXPECT_EQ(sim.output_width(), 9);
  EXPECT_EQ(&sim.dut(), &adder);
  EXPECT_EQ(sim.triad(), op);
  EXPECT_GT(sim.leakage_energy_fj(), 0.0);
  EXPECT_EQ(adder.kind, "rca8");
  EXPECT_EQ(adder.display_name, "8-bit RCA");
}

TEST(VosDutAdapter, EnergyIncludesLeakageShare) {
  const DutNetlist adder = to_dut(build_rca(8));
  VosDutSim sim(adder, lib(), relaxed(adder.netlist));
  // Repeating identical operands toggles nothing: energy collapses to
  // the leakage share alone.
  sim.reset(5, 9);
  const VosOpResult r = sim.apply(5, 9);
  EXPECT_DOUBLE_EQ(r.energy_fj, sim.leakage_energy_fj());
  EXPECT_EQ(r.settle_time_ps, 0.0);
}

TEST(VosDutAdapter, ResetReestablishesState) {
  const DutNetlist adder = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(adder.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  VosDutSim sim(adder, lib(), {0.45 * cp_ns, 1.0, 0.0});
  sim.reset(0, 0);
  const VosOpResult first = sim.apply(0xFF, 0x01);
  sim.reset(0, 0);
  const VosOpResult again = sim.apply(0xFF, 0x01);
  EXPECT_EQ(first.sampled, again.sampled);
  EXPECT_DOUBLE_EQ(first.energy_fj, again.energy_fj);
}

TEST(VosDutAdapter, SpeculativeWindowUnderVosStillWindowed) {
  // A window adder has short paths only; it should tolerate clocks that
  // break the full RCA.
  const AdderNetlist rca = build_rca(16);
  const AdderNetlist spec = build_speculative_window(16, 4);
  const double rca_cp =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  const double spec_cp =
      analyze_timing(spec.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_LT(spec_cp, rca_cp);
}

}  // namespace
}  // namespace vosim
