// VosAdderSim adapter tests: pin mapping, carry-in handling, approximate
// netlists, and energy bookkeeping.
#include <gtest/gtest.h>

#include "src/netlist/approx_adders.hpp"
#include "src/sim/vos_adder.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

OperatingTriad relaxed(const Netlist& nl) {
  const double cp =
      analyze_timing(nl, lib(), {1, 1.0, 0.0}).critical_path_ps;
  return {cp * 2.0e-3, 1.0, 0.0};
}

TEST(VosAdderAdapter, CarryInPinnedLow) {
  const AdderNetlist adder = build_rca(8, /*with_cin=*/true);
  VosAdderSim sim(adder, lib(), relaxed(adder.netlist));
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(sim.add(a, b).sampled, a + b);  // cin contributes nothing
  }
}

TEST(VosAdderAdapter, ApproxAdderSettlesToItsOwnFunction) {
  const AdderNetlist loa = build_lower_or(8, 4);
  VosAdderSim sim(loa, lib(), relaxed(loa.netlist));
  Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const VosAddResult r = sim.add(a, b);
    // At a relaxed clock the sampled value equals the settled one, which
    // is the LOA function — not necessarily a+b.
    ASSERT_EQ(r.sampled, r.settled);
    const std::uint64_t low = (a | b) & mask_n(4);
    const std::uint64_t carry =
        static_cast<std::uint64_t>(bit_of(a, 3) & bit_of(b, 3));
    ASSERT_EQ(r.settled, low | (((a >> 4) + (b >> 4) + carry) << 4));
  }
}

TEST(VosAdderAdapter, CarryCutExtraOutputDoesNotCorruptSumWord) {
  // build_carry_cut marks an extra diagnostic output before the sum
  // bits; the adapter must still extract the arithmetic word correctly.
  const AdderNetlist cut = build_carry_cut(8, 4);
  VosAdderSim sim(cut, lib(), relaxed(cut.netlist));
  const VosAddResult r = sim.add(0x23, 0x14);
  EXPECT_EQ(r.sampled & mask_n(9), static_cast<std::uint64_t>(0x23 + 0x14));
}

TEST(VosAdderAdapter, AccessorsConsistent) {
  const AdderNetlist adder = build_rca(8);
  const OperatingTriad op = relaxed(adder.netlist);
  VosAdderSim sim(adder, lib(), op);
  EXPECT_EQ(sim.width(), 8);
  EXPECT_EQ(&sim.adder(), &adder);
  EXPECT_EQ(sim.triad(), op);
  EXPECT_GT(sim.leakage_energy_fj(), 0.0);
}

TEST(VosAdderAdapter, EnergyIncludesLeakageShare) {
  const AdderNetlist adder = build_rca(8);
  VosAdderSim sim(adder, lib(), relaxed(adder.netlist));
  // Repeating identical operands toggles nothing: energy collapses to
  // the leakage share alone.
  sim.reset(5, 9);
  const VosAddResult r = sim.add(5, 9);
  EXPECT_DOUBLE_EQ(r.energy_fj, sim.leakage_energy_fj());
  EXPECT_EQ(r.settle_time_ps, 0.0);
}

TEST(VosAdderAdapter, ResetReestablishesState) {
  const AdderNetlist adder = build_rca(8);
  const double cp_ns =
      analyze_timing(adder.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  VosAdderSim sim(adder, lib(), {0.45 * cp_ns, 1.0, 0.0});
  sim.reset(0, 0);
  const VosAddResult first = sim.add(0xFF, 0x01);
  sim.reset(0, 0);
  const VosAddResult again = sim.add(0xFF, 0x01);
  EXPECT_EQ(first.sampled, again.sampled);
  EXPECT_DOUBLE_EQ(first.energy_fj, again.energy_fj);
}

TEST(VosAdderAdapter, SpeculativeWindowUnderVosStillWindowed) {
  // A window adder has short paths only; it should tolerate clocks that
  // break the full RCA.
  const AdderNetlist rca = build_rca(16);
  const AdderNetlist spec = build_speculative_window(16, 4);
  const double rca_cp =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  const double spec_cp =
      analyze_timing(spec.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_LT(spec_cp, rca_cp);
}

}  // namespace
}  // namespace vosim
