// Unit tests for src/util: RNG, bit helpers, statistics, tables,
// parallel_for and contract macros.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace vosim {
namespace {

// ---------------------------------------------------------------- contracts
TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(VOSIM_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(VOSIM_EXPECTS(1 == 1));
}

TEST(Contracts, MessageNamesLocation) {
  try {
    VOSIM_EXPECTS(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

// ---------------------------------------------------------------------- rng
TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(r.below(13), 13u);
  EXPECT_THROW(r.below(0), ContractViolation);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, InRangeInclusive) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = r.in_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_THROW(r.in_range(3, 2), ContractViolation);
}

TEST(Rng, InRangeFullSpan) {
  // [0, 2^64-1] must not overflow the span+1 computation in below();
  // it degenerates to raw 64-bit draws.
  Rng r(29);
  bool high_half = false;
  bool low_half = false;
  for (int i = 0; i < 200; ++i) {
    const auto v = r.in_range(0, ~0ULL);
    (v >> 63 ? high_half : low_half) = true;
  }
  EXPECT_TRUE(high_half);
  EXPECT_TRUE(low_half);
  EXPECT_EQ(Rng(1).in_range(~0ULL, ~0ULL), ~0ULL);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, BitsMasksWidth) {
  Rng r(9);
  for (int w : {0, 1, 8, 16, 33, 64}) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t v = r.bits(w);
      if (w < 64) {
        EXPECT_EQ(v >> w, 0u) << "width " << w;
      }
    }
  }
  EXPECT_THROW(r.bits(65), ContractViolation);
  EXPECT_THROW(r.bits(-1), ContractViolation);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  Rng parent2(42);
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child(), child2());
  // Child differs from a fresh parent stream.
  Rng fresh(42);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == fresh()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, FlipProbability) {
  Rng r(21);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.flip(0.3)) ++heads;
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(Rng(1).flip(0.0));
}

// --------------------------------------------------------------------- bits
TEST(Bits, MaskN) {
  EXPECT_EQ(mask_n(0), 0u);
  EXPECT_EQ(mask_n(1), 1u);
  EXPECT_EQ(mask_n(8), 0xFFu);
  EXPECT_EQ(mask_n(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(mask_n(64), ~0ull);
}

TEST(Bits, BitOfAndWithBit) {
  EXPECT_EQ(bit_of(0b1010, 1), 1);
  EXPECT_EQ(bit_of(0b1010, 0), 0);
  EXPECT_EQ(with_bit(0, 3, true), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, false), 0b1011u);
}

TEST(Bits, HammingDistanceRespectsWidth) {
  EXPECT_EQ(hamming_distance(0xFF, 0x00, 8), 8);
  EXPECT_EQ(hamming_distance(0xFF, 0x00, 4), 4);
  EXPECT_EQ(hamming_distance(0b101, 0b100, 3), 1);
  EXPECT_EQ(hamming_distance(~0ull, 0, 64), 64);
}

TEST(Bits, LongestOneRun) {
  EXPECT_EQ(longest_one_run(0, 8), 0);
  EXPECT_EQ(longest_one_run(0b1, 8), 1);
  EXPECT_EQ(longest_one_run(0b0111'0110, 8), 3);
  EXPECT_EQ(longest_one_run(0xFF, 8), 8);
  EXPECT_EQ(longest_one_run(0xFF, 4), 4);  // width-limited
}

TEST(Bits, FullWidthEdgeCases) {
  // n == 64 must behave: mask_n(64) covers the whole word and the run
  // scan terminates on an all-ones word.
  EXPECT_EQ(mask_n(64), ~0ULL);
  EXPECT_EQ(longest_one_run(~0ULL, 64), 64);
  EXPECT_EQ(longest_one_run(0xF00000000000000Full, 64), 4);
  EXPECT_EQ(longest_one_run(1ULL << 63, 64), 1);
  EXPECT_EQ(longest_one_run(~0ULL, 63), 63);
}

TEST(Bits, ExactAddMatchesArithmetic) {
  EXPECT_EQ(exact_add(200, 100, 8), 300u);       // carry-out present
  EXPECT_EQ(exact_add(0xFF, 0xFF, 8), 0x1FEu);
  EXPECT_EQ(exact_add(5, 6, 8, true), 12u);
  EXPECT_THROW(exact_add(0x100, 0, 8), ContractViolation);
  EXPECT_THROW(exact_add(0, 0, 0), ContractViolation);
}

// -------------------------------------------------------------------- stats
TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng r(33);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform() * 10.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
}

TEST(HistogramTest, ClampsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(42.0);   // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.center(0), 1.0);
}

TEST(HistogramTest, QuantilesWithOneSortMatchSingleCalls) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto qs = quantiles(v, {0.0, 0.25, 0.5, 0.75, 1.0});
  ASSERT_EQ(qs.size(), 5u);
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_DOUBLE_EQ(qs[i], quantile(v, 0.25 * static_cast<double>(i)));
  EXPECT_THROW(quantiles({}, {0.5}), ContractViolation);
  EXPECT_THROW(quantiles(v, {1.5}), ContractViolation);
}

TEST(HistogramTest, MergeAddsBucketCounts) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(0.5);
  a.add(9.9);
  b.add(0.5);
  b.add(4.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.count(4), 1u);
  // Shape mismatches (range or bucket count) are contract violations.
  Histogram narrow(0.0, 5.0, 5);
  EXPECT_THROW(a.merge(narrow), ContractViolation);
  Histogram coarse(0.0, 10.0, 4);
  EXPECT_THROW(a.merge(coarse), ContractViolation);
}

TEST(HistogramTest, BucketQuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo()
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  // Uniform fill: the q-th quantile walks q of the way up the range.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.1), 1.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
  EXPECT_THROW(h.quantile(-0.1), ContractViolation);
}

TEST(HistogramTest, QuantileSingleSampleSpansItsBucket) {
  // One sample lands in bucket 3 ([3,4)): every quantile interpolates
  // within that bucket — q=0 its left edge, q=1 its right edge — and
  // never escapes to lo()/hi().
  Histogram h(0.0, 10.0, 10);
  h.add(3.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(HistogramTest, QuantileAllMassInOneBucketInterpolatesInside) {
  // 50 identical samples in bucket 2 ([20,30)): bucket resolution
  // means every quantile is a linear walk across that one bucket —
  // the estimate degrades to bucket width, not to lo()/hi().
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 50; ++i) h.add(25.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 29.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(HistogramTest, QuantileAfterMergingDisjointRanges) {
  // Two same-shape histograms whose samples occupy disjoint value
  // ranges (low half vs high half). After the merge, the extremes
  // stay put and the median falls between the clusters — the merged
  // distribution is the union, not either input.
  Histogram lo_half(0.0, 100.0, 20);
  Histogram hi_half(0.0, 100.0, 20);
  for (int i = 0; i < 10; ++i) lo_half.add(10.0 + static_cast<double>(i));
  for (int i = 0; i < 10; ++i) hi_half.add(80.0 + static_cast<double>(i));
  const double lo_p50 = lo_half.quantile(0.5);
  const double hi_p50 = hi_half.quantile(0.5);
  lo_half.merge(hi_half);
  EXPECT_EQ(lo_half.total(), 20u);
  EXPECT_NEAR(lo_half.quantile(0.05), 10.0, 5.0);
  EXPECT_NEAR(lo_half.quantile(0.95), 90.0, 5.0);
  const double merged_p50 = lo_half.quantile(0.5);
  EXPECT_GT(merged_p50, lo_p50);
  EXPECT_LT(merged_p50, hi_p50);
  // The middle of the merged mass is exactly the seam between the
  // clusters: 10 low samples then 10 high ones.
  EXPECT_NEAR(merged_p50, 50.0, 40.0);
}

// -------------------------------------------------------------------- table
TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 2), "2.0");
  EXPECT_EQ(format_double(0.126, 2), "0.13");  // rounded
  EXPECT_EQ(format_double(0.1, 3), "0.1");     // trailing zeros trimmed
}

TEST(Table, PrintAlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(Table, CsvRoundTripShape) {
  TextTable t({"a", "b"});
  t.add_row_values({1.25, 2.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.25,2.0\n");
}

TEST(Table, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

// ----------------------------------------------------------------- parallel
TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, CancelsPendingWorkAfterException) {
  // A failure early in a large sweep must cancel the not-yet-claimed
  // indices rather than letting the surviving workers drain all of them.
  constexpr std::size_t count = 10000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t i) {
            if (i == 3) throw std::runtime_error("contract violation");
            ++executed;
            std::this_thread::sleep_for(std::chrono::microseconds(10));
          },
          4),
      std::runtime_error);
  EXPECT_LT(executed.load(), count / 2);
}

TEST(ParallelFor, HardwareParallelismNonzero) {
  EXPECT_GE(hardware_parallelism(), 1u);
}

// ---------------------------------------------------------------- ThreadPool
TEST(ThreadPool, ReusedAcrossJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(257);
    pool.parallel(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SharedPoolIsPersistent) {
  ThreadPool& a = shared_thread_pool();
  ThreadPool& b = shared_thread_pool();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel(64,
                    [](std::size_t i) {
                      if (i == 7) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // The pool survives a failed job.
  std::atomic<int> n{0};
  pool.parallel(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ReentrantBodiesRunInline) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel(4, [&](std::size_t) {
    // A body dispatching into the pool again must not deadlock on the
    // busy workers; reentrant calls run inline on the calling thread.
    shared_thread_pool().parallel(8, [&](std::size_t) { ++inner; });
  });
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, MaxThreadsOneIsOrdered) {
  ThreadPool pool(4);
  std::vector<int> order;
  pool.parallel(
      6, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace vosim
