// Argument-parser tests.
#include <gtest/gtest.h>

#include "src/util/args.hpp"

namespace vosim {
namespace {

TEST(Args, PositionalOrderPreserved) {
  const ArgParser p({"characterize", "rca", "8"});
  ASSERT_EQ(p.positional().size(), 3u);
  EXPECT_EQ(p.positional()[0], "characterize");
  EXPECT_EQ(p.positional()[2], "8");
}

TEST(Args, KeyEqualsValue) {
  const ArgParser p({"--patterns=500", "--csv=out.csv"});
  EXPECT_EQ(p.get_int("patterns", 0), 500);
  EXPECT_EQ(p.get("csv", ""), "out.csv");
}

TEST(Args, KeySpaceValue) {
  const ArgParser p({"--vdd", "0.7", "run"});
  EXPECT_DOUBLE_EQ(p.get_double("vdd", 0.0), 0.7);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "run");
}

TEST(Args, BareFlagBeforeOption) {
  const ArgParser p({"--verbose", "--out=model.txt"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_EQ(p.value("verbose").value(), "");
  EXPECT_TRUE(p.has("out"));
}

TEST(Args, MissingOptionFallsBack) {
  const ArgParser p({"cmd"});
  EXPECT_FALSE(p.has("patterns"));
  EXPECT_EQ(p.get_int("patterns", 123), 123);
  EXPECT_DOUBLE_EQ(p.get_double("vdd", 0.5), 0.5);
  EXPECT_EQ(p.get("csv", "default.csv"), "default.csv");
  EXPECT_FALSE(p.value("csv").has_value());
}

TEST(Args, MalformedNumbersThrow) {
  const ArgParser p({"--patterns=12x", "--vdd=zero"});
  EXPECT_THROW(p.get_int("patterns", 0), std::invalid_argument);
  EXPECT_THROW(p.get_double("vdd", 0.0), std::invalid_argument);
}

TEST(Args, ArgcArgvConstructor) {
  const char* argv[] = {"vosim_cli", "synth", "rca", "--patterns", "99"};
  const ArgParser p(5, argv);
  EXPECT_EQ(p.program(), "vosim_cli");
  EXPECT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.get_int("patterns", 0), 99);
}

TEST(Args, NegativeNumbersAsValues) {
  const ArgParser p({"--vbb", "-2"});
  EXPECT_DOUBLE_EQ(p.get_double("vbb", 0.0), -2.0);
}

TEST(Args, DoubleDashEndsOptions) {
  const ArgParser p({"--vdd", "0.7", "--", "--not-an-option", "plain"});
  EXPECT_DOUBLE_EQ(p.get_double("vdd", 0.0), 0.7);
  EXPECT_FALSE(p.has("not-an-option"));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "--not-an-option");
  EXPECT_EQ(p.positional()[1], "plain");
}

TEST(Args, MissingValueForValueTakingKeyThrows) {
  // "--patterns --csv=x" must not silently demote --patterns to a flag:
  // asking for its value is an error, while flag-style queries still work.
  const ArgParser p({"--patterns", "--csv=x"});
  EXPECT_TRUE(p.has("patterns"));
  EXPECT_EQ(p.value("patterns").value(), "");
  EXPECT_THROW(p.get_int("patterns", 5), std::invalid_argument);
  EXPECT_THROW(p.get("patterns", "d"), std::invalid_argument);
  EXPECT_THROW(p.get_double("patterns", 1.0), std::invalid_argument);
  EXPECT_EQ(p.get("csv", ""), "x");
}

TEST(Args, ExplicitEmptyValueIsNotMissing) {
  const ArgParser p({"--csv="});
  EXPECT_EQ(p.get("csv", "default"), "");
}

TEST(Args, ListFromCommaSeparatedValue) {
  const ArgParser p({"--workloads", "fir,blur,kmeans"});
  const std::vector<std::string> expect{"fir", "blur", "kmeans"};
  EXPECT_EQ(p.get_list("workloads"), expect);
}

TEST(Args, ListFromRepeatedOptions) {
  const ArgParser p({"--w", "fir,blur", "--w=dot", "--w", "kmeans"});
  const std::vector<std::string> expect{"fir", "blur", "dot", "kmeans"};
  EXPECT_EQ(p.get_list("w"), expect);
}

TEST(Args, ListDropsEmptyItems) {
  const ArgParser p({"--w", ",fir,,blur,"});
  const std::vector<std::string> expect{"fir", "blur"};
  EXPECT_EQ(p.get_list("w"), expect);
}

TEST(Args, ListFallsBackWhenAbsent) {
  const ArgParser p({"cmd"});
  EXPECT_TRUE(p.get_list("w").empty());
  const std::vector<std::string> fallback{"fir", "dot"};
  EXPECT_EQ(p.get_list("w", fallback), fallback);
  // A present-but-empty list beats the fallback: "--w ," means
  // "explicitly none", not "use the default".
  const ArgParser q({"--w", ","});
  EXPECT_TRUE(q.get_list("w", fallback).empty());
}

TEST(Args, ListRejectsBareFlagOccurrence) {
  const ArgParser p({"--w", "--csv=x"});
  EXPECT_THROW(p.get_list("w"), std::invalid_argument);
  const ArgParser q({"--w", "fir", "--w"});
  EXPECT_THROW(q.get_list("w"), std::invalid_argument);
}

}  // namespace
}  // namespace vosim
