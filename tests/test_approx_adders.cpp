// Functional semantics of the static approximate adder baselines, and
// the key equivalence between the speculative-window hardware adder and
// the model's windowed addition.
#include <gtest/gtest.h>

#include <tuple>

#include "src/model/windowed_add.hpp"
#include "src/netlist/approx_adders.hpp"
#include "src/sim/logic.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

std::uint64_t functional_add(const AdderNetlist& adder, std::uint64_t a,
                             std::uint64_t b) {
  std::vector<std::uint8_t> inputs(adder.netlist.primary_inputs().size(), 0);
  for (int i = 0; i < adder.width; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((a >> i) & 1u);
    inputs[static_cast<std::size_t>(adder.width + i)] =
        static_cast<std::uint8_t>((b >> i) & 1u);
  }
  const auto values = evaluate_logic(adder.netlist, inputs);
  return pack_word(values, adder.sum);
}

/// Bit-level reference for the lower-part OR adder.
std::uint64_t loa_reference(std::uint64_t a, std::uint64_t b, int n, int k) {
  const std::uint64_t low = (a | b) & mask_n(k);
  const std::uint64_t carry = bit_of(a, k - 1) & bit_of(b, k - 1);
  const std::uint64_t hi =
      (a >> k) + (b >> k) + static_cast<std::uint64_t>(carry);
  return low | (hi << k);
}

TEST(LowerOrAdder, MatchesReferenceExhaustively) {
  for (int k : {1, 2, 4, 7}) {
    const AdderNetlist loa = build_lower_or(8, k);
    for (std::uint64_t a = 0; a < 256; a += 3)
      for (std::uint64_t b = 0; b < 256; b += 5)
        ASSERT_EQ(functional_add(loa, a, b), loa_reference(a, b, 8, k))
            << "k=" << k << " a=" << a << " b=" << b;
  }
}

TEST(LowerOrAdder, ExactWhenNoLowCarryNeeded) {
  const AdderNetlist loa = build_lower_or(8, 4);
  // Disjoint low bits (a&b low == 0 and no propagate chain into bit 4):
  // a=0b0001'0101, b=0b0010'1010 -> low OR is the exact low sum.
  const std::uint64_t a = 0b00010101;
  const std::uint64_t b = 0b00101010;
  EXPECT_EQ(functional_add(loa, a, b), a + b);
}

TEST(TruncatedAdder, LowBitsZeroUpperExact) {
  for (int k : {1, 3, 4}) {
    const AdderNetlist tr = build_truncated(8, k);
    Rng rng(77);
    for (int t = 0; t < 400; ++t) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      const std::uint64_t got = functional_add(tr, a, b);
      EXPECT_EQ(got & mask_n(k), 0u);
      EXPECT_EQ(got >> k, (a >> k) + (b >> k));
    }
  }
}

TEST(CarryCutAdder, ExactWhenCarryDoesNotCross) {
  const AdderNetlist cut = build_carry_cut(8, 4);
  // No carry out of the low half: low sums < 16.
  EXPECT_EQ(functional_add(cut, 0x23, 0x14) & mask_n(9),
            static_cast<std::uint64_t>(0x23 + 0x14));
}

TEST(CarryCutAdder, DropsCrossingCarry) {
  const AdderNetlist cut = build_carry_cut(8, 4);
  // 0x0F + 0x01 generates a carry crossing bit 4, which is dropped.
  EXPECT_EQ(functional_add(cut, 0x0F, 0x01) & mask_n(9), 0u);
}

TEST(CarryCutAdder, ReferenceSemantics) {
  const int n = 8;
  const int k = 4;
  const AdderNetlist cut = build_carry_cut(n, k);
  Rng rng(31);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(n);
    const std::uint64_t b = rng.bits(n);
    const std::uint64_t low = ((a & mask_n(k)) + (b & mask_n(k))) & mask_n(k);
    const std::uint64_t hi = (a >> k) + (b >> k);
    ASSERT_EQ(functional_add(cut, a, b) & mask_n(n + 1), low | (hi << k));
  }
}

// -- speculative window adder == model windowed_add ----------------------

using WidthWindow = std::tuple<int, int>;
class SpecWindowTest : public ::testing::TestWithParam<WidthWindow> {};

TEST_P(SpecWindowTest, HardwareMatchesModelWindowedAdd) {
  const auto [width, window] = GetParam();
  const AdderNetlist spec = build_speculative_window(width, window);
  if (width <= 6) {
    const std::uint64_t n = 1ULL << width;
    for (std::uint64_t a = 0; a < n; ++a)
      for (std::uint64_t b = 0; b < n; ++b)
        ASSERT_EQ(functional_add(spec, a, b),
                  windowed_add(a, b, width, window))
            << "w=" << width << " C=" << window << " " << a << "+" << b;
  } else {
    Rng rng(99);
    for (int t = 0; t < 2000; ++t) {
      const std::uint64_t a = rng.bits(width);
      const std::uint64_t b = rng.bits(width);
      ASSERT_EQ(functional_add(spec, a, b),
                windowed_add(a, b, width, window))
          << "w=" << width << " C=" << window << " " << a << "+" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndWindows, SpecWindowTest,
    ::testing::Values(WidthWindow{4, 1}, WidthWindow{4, 2}, WidthWindow{4, 4},
                      WidthWindow{6, 1}, WidthWindow{6, 3}, WidthWindow{6, 6},
                      WidthWindow{8, 1}, WidthWindow{8, 2}, WidthWindow{8, 4},
                      WidthWindow{8, 8}, WidthWindow{16, 4},
                      WidthWindow{16, 8}, WidthWindow{16, 16}),
    [](const ::testing::TestParamInfo<WidthWindow>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "C" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SpecWindowAdder, FullWindowIsExact) {
  const AdderNetlist spec = build_speculative_window(8, 8);
  Rng rng(123);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(functional_add(spec, a, b), a + b);
  }
}

TEST(ApproxBuilders, ParameterValidation) {
  EXPECT_THROW(build_lower_or(8, 0), ContractViolation);
  EXPECT_THROW(build_lower_or(8, 8), ContractViolation);
  EXPECT_THROW(build_truncated(8, 9), ContractViolation);
  EXPECT_THROW(build_carry_cut(8, 0), ContractViolation);
  EXPECT_THROW(build_speculative_window(8, 0), ContractViolation);
  EXPECT_THROW(build_speculative_window(8, 9), ContractViolation);
}

TEST(ApproxBuilders, ArchTagsSet) {
  EXPECT_EQ(build_lower_or(8, 4).arch, AdderArch::kLowerOr);
  EXPECT_EQ(build_truncated(8, 4).arch, AdderArch::kTruncated);
  EXPECT_EQ(build_carry_cut(8, 4).arch, AdderArch::kCarryCut);
  EXPECT_EQ(build_speculative_window(8, 4).arch,
            AdderArch::kSpeculativeWindow);
}

}  // namespace
}  // namespace vosim
