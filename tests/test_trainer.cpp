// Algorithm 1 trainer tests: recovery of synthetic oracles, tie-breaking
// and metric variants.
#include <gtest/gtest.h>

#include "src/model/carry_chain.hpp"
#include "src/model/trainer.hpp"
#include "src/model/windowed_add.hpp"
#include "src/util/bits.hpp"

namespace vosim {
namespace {

TEST(BestWindow, ExactOutputPrefersSmallestConsistentWindow) {
  // Observed output equals the exact sum: every window >= Cth fits with
  // distance 0, and Algorithm 1's `<=` keeps the smallest zero-distance
  // window — which is exactly Cth for a pair whose chain affects bits,
  // or smaller when truncation happens not to change the value.
  const std::uint64_t a = 0xFF;
  const std::uint64_t b = 0x01;  // full 8-long chain, truncation visible
  const int c =
      best_window(a, b, 8, a + b, DistanceMetric::kMse);
  EXPECT_EQ(c, theoretical_max_carry_chain(a, b, 8));
}

TEST(BestWindow, TruncatedOutputRecoversWindow) {
  const std::uint64_t a = 0xFF;
  const std::uint64_t b = 0x01;
  for (int target = 0; target <= 8; ++target) {
    const std::uint64_t observed = windowed_add(a, b, 8, target);
    for (const DistanceMetric m :
         {DistanceMetric::kMse, DistanceMetric::kHamming,
          DistanceMetric::kWeightedHamming}) {
      const int c = best_window(a, b, 8, observed, m);
      // The recovered window must regenerate the observation.
      EXPECT_EQ(windowed_add(a, b, 8, c), observed)
          << "target " << target << " metric "
          << distance_metric_name(m);
    }
  }
}

TEST(Trainer, ExactOracleGivesNearIdentityBehaviour) {
  TrainerConfig cfg;
  cfg.num_patterns = 4000;
  const HardwareOracle exact = [](std::uint64_t a, std::uint64_t b) {
    return a + b;
  };
  const CarryChainProbTable t = train_carry_table(8, exact, cfg);
  // The trained table must reproduce exact addition: for every column,
  // sampled windows always regenerate the exact sum. Sufficient check:
  // expected window may sit below l only where truncation is invisible,
  // so verify via end-to-end behaviour on a fresh stream.
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 777);
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const OperandPair pat = patterns.next();
    const int cth = theoretical_max_carry_chain(pat.a, pat.b, 8);
    const int k = t.sample(cth, rng);
    EXPECT_EQ(windowed_add(pat.a, pat.b, 8, k), pat.a + pat.b)
        << pat.a << "+" << pat.b;
  }
}

TEST(Trainer, WindowedOracleConcentratesAtWindow) {
  // Oracle = windowed adder with a fixed hardware window C*; the trained
  // table should put its mass at min(C*, Cth) in every informative
  // column (chains shorter than C* complete, longer ones truncate).
  const int cstar = 3;
  const HardwareOracle oracle = [cstar](std::uint64_t a, std::uint64_t b) {
    return windowed_add(a, b, 8, cstar);
  };
  TrainerConfig cfg;
  cfg.num_patterns = 8000;
  const CarryChainProbTable t = train_carry_table(8, oracle, cfg);
  for (int l = cstar + 1; l <= 8; ++l) {
    // Mass at or below cstar (ties can pick smaller equivalent windows).
    double mass_le = 0.0;
    for (int k = 0; k <= cstar; ++k) mass_le += t.prob(k, l);
    EXPECT_GT(mass_le, 0.95) << "column " << l;
    EXPECT_GT(t.prob(cstar, l), 0.3) << "column " << l;
  }
  for (int l = 0; l <= cstar; ++l) {
    double mass_le_l = 0.0;
    for (int k = 0; k <= l; ++k) mass_le_l += t.prob(k, l);
    EXPECT_NEAR(mass_le_l, 1.0, 1e-12);
  }
}

TEST(Trainer, MetricsProduceValidTables) {
  const HardwareOracle noisy_oracle = [](std::uint64_t a, std::uint64_t b) {
    return windowed_add(a, b, 8, 5);
  };
  TrainerConfig cfg;
  cfg.num_patterns = 2000;
  for (const DistanceMetric m :
       {DistanceMetric::kMse, DistanceMetric::kHamming,
        DistanceMetric::kWeightedHamming}) {
    cfg.metric = m;
    const CarryChainProbTable t = train_carry_table(8, noisy_oracle, cfg);
    for (int l = 0; l <= 8; ++l) {
      double sum = 0.0;
      for (int k = 0; k <= 8; ++k) {
        EXPECT_GE(t.prob(k, l), 0.0);
        sum += t.prob(k, l);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << distance_metric_name(m);
    }
  }
}

TEST(Trainer, DeterministicPerSeed) {
  const HardwareOracle oracle = [](std::uint64_t a, std::uint64_t b) {
    return windowed_add(a, b, 8, 4);
  };
  TrainerConfig cfg;
  cfg.num_patterns = 1500;
  const CarryChainProbTable t1 = train_carry_table(8, oracle, cfg);
  const CarryChainProbTable t2 = train_carry_table(8, oracle, cfg);
  EXPECT_EQ(t1, t2);
}

TEST(DistanceMetrics, HandValues) {
  EXPECT_DOUBLE_EQ(distance(10, 6, 8, DistanceMetric::kMse), 16.0);
  EXPECT_DOUBLE_EQ(distance(0b1100, 0b1010, 8, DistanceMetric::kHamming),
                   2.0);
  // Weighted Hamming: flipped bits at positions 1 and 2 -> 2 + 4.
  EXPECT_DOUBLE_EQ(
      distance(0b1100, 0b1010, 8, DistanceMetric::kWeightedHamming), 6.0);
  // Width masking.
  EXPECT_DOUBLE_EQ(distance(0x10, 0x00, 4, DistanceMetric::kHamming), 0.0);
}

TEST(DistanceMetrics, NamesDistinct) {
  EXPECT_NE(distance_metric_name(DistanceMetric::kMse),
            distance_metric_name(DistanceMetric::kHamming));
  EXPECT_NE(distance_metric_name(DistanceMetric::kHamming),
            distance_metric_name(DistanceMetric::kWeightedHamming));
}

}  // namespace
}  // namespace vosim
