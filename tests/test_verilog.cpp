// Structural Verilog writer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/netlist/adders.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Verilog, TinyNetlistGolden) {
  Netlist nl("tiny");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_gate(CellKind::kNand2, {a, b}, "x");
  const NetId y = nl.add_gate(CellKind::kInv, {x}, "y");
  nl.mark_output(y);
  nl.finalize();

  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("input  wire b"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("wire x;"), std::string::npos);
  EXPECT_NE(v.find("NAND2_X1 u0 (.A(a), .B(b), .Y(x));"), std::string::npos);
  EXPECT_NE(v.find("INV_X1 u1 (.A(x), .Y(y));"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, InstanceCountMatchesGates) {
  const AdderNetlist rca = build_rca(8);
  const std::string v = to_verilog(rca.netlist);
  // One instance line per gate (no tie cells in an exact RCA).
  EXPECT_EQ(count_occurrences(v, ".Y("),
            static_cast<int>(rca.netlist.num_gates()));
  EXPECT_EQ(count_occurrences(v, "module "), 1);
  EXPECT_EQ(count_occurrences(v, "endmodule"), 1);
}

TEST(Verilog, PortCountMatchesPins) {
  const AdderNetlist bka = build_brent_kung(8);
  const std::string v = to_verilog(bka.netlist);
  EXPECT_EQ(count_occurrences(v, "input  wire"), 16);
  EXPECT_EQ(count_occurrences(v, "output wire"), 9);
}

TEST(Verilog, TieCellsBecomeAssigns) {
  Netlist nl("ties");
  const NetId lo = nl.add_gate(CellKind::kTieLo, {}, "zero");
  const NetId hi = nl.add_gate(CellKind::kTieHi, {}, "one");
  const NetId x = nl.add_gate(CellKind::kOr2, {lo, hi}, "x");
  nl.mark_output(x);
  nl.finalize();
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("assign zero = 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("assign one = 1'b1;"), std::string::npos);
}

TEST(Verilog, RequiresFinalizedNetlist) {
  Netlist nl("open");
  nl.add_input("a");
  std::ostringstream os;
  EXPECT_THROW(write_verilog(nl, os), ContractViolation);
}

TEST(Verilog, EveryNetlistGeneratorExports) {
  // Smoke coverage: all generators produce exportable names.
  for (const AdderArch arch :
       {AdderArch::kRipple, AdderArch::kBrentKung, AdderArch::kKoggeStone,
        AdderArch::kSklansky, AdderArch::kCarrySelect,
        AdderArch::kCarrySkip, AdderArch::kHanCarlson}) {
    const AdderNetlist a = build_adder(arch, 8);
    EXPECT_NO_THROW(to_verilog(a.netlist)) << adder_arch_name(arch);
  }
}

}  // namespace
}  // namespace vosim
