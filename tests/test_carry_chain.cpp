// Carry-chain analysis tests: hand cases, a brute-force reference and
// the relationship to real carries of the addition.
#include <gtest/gtest.h>

#include "src/model/carry_chain.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

/// Brute-force Cth_max straight from the definition: for every generate
/// position, count the propagate run above it.
int brute_force_cth(std::uint64_t a, std::uint64_t b, int width) {
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;
  int best = 0;
  for (int j = 0; j < width; ++j) {
    if (bit_of(g, j) == 0) continue;
    int len = 1;
    for (int i = j + 1; i < width && bit_of(p, i) != 0; ++i) ++len;
    best = std::max(best, len);
  }
  return best;
}

TEST(CarryChain, HandCases) {
  // No generates: nothing propagates.
  EXPECT_EQ(theoretical_max_carry_chain(0b0101, 0b1010, 4), 0);
  // Single generate, no propagate above.
  EXPECT_EQ(theoretical_max_carry_chain(0b0001, 0b0001, 4), 1);
  // Full-length chain: g at bit0, propagates above.
  EXPECT_EQ(theoretical_max_carry_chain(0xFF, 0x01, 8), 8);
  // Generate at the top bit reaches only the carry-out.
  EXPECT_EQ(theoretical_max_carry_chain(0x80, 0x80, 8), 1);
  // Two chains: the longer one wins.
  // g0 with p1..p2 (len 3), g5 alone (len 1).
  const std::uint64_t a = 0b00100111;
  const std::uint64_t b = 0b00100001;
  // bits: g = a&b = 0b00100001 (g0, g5); p = a^b = 0b00000110 (p1,p2).
  EXPECT_EQ(theoretical_max_carry_chain(a, b, 8), 3);
}

TEST(CarryChain, ZeroOperands) {
  EXPECT_EQ(theoretical_max_carry_chain(0, 0, 8), 0);
  EXPECT_EQ(theoretical_max_carry_chain(0, 0xFF, 8), 0);
}

TEST(CarryChain, MatchesBruteForceExhaustively8bit) {
  for (std::uint64_t a = 0; a < 256; ++a)
    for (std::uint64_t b = 0; b < 256; ++b)
      ASSERT_EQ(theoretical_max_carry_chain(a, b, 8),
                brute_force_cth(a, b, 8))
          << a << "+" << b;
}

TEST(CarryChain, MatchesBruteForceRandomWide) {
  Rng rng(2718);
  for (int width : {16, 24, 32, 48, 63}) {
    for (int t = 0; t < 3000; ++t) {
      const std::uint64_t a = rng.bits(width);
      const std::uint64_t b = rng.bits(width);
      ASSERT_EQ(theoretical_max_carry_chain(a, b, width),
                brute_force_cth(a, b, width))
          << width << ": " << a << "+" << b;
    }
  }
}

TEST(CarryChain, BoundsRespected) {
  Rng rng(3);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const int c = theoretical_max_carry_chain(a, b, 16);
    ASSERT_GE(c, 0);
    ASSERT_LE(c, 16);
  }
  EXPECT_THROW(theoretical_max_carry_chain(0x10, 0, 4), ContractViolation);
  EXPECT_THROW(theoretical_max_carry_chain(0, 0, 0), ContractViolation);
}

TEST(CarryTravelDistances, MatchRealCarries) {
  // dist[i] > 0 exactly when a carry enters bit i in the true addition.
  Rng rng(31);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const auto dist = carry_travel_distances(a, b, 8);
    // carries word: c_i = bit i of (a+b) ^ a ^ b (carry into position i).
    const std::uint64_t carries = (a + b) ^ a ^ b;
    for (int i = 1; i <= 8; ++i)
      ASSERT_EQ(dist[static_cast<std::size_t>(i)] > 0,
                bit_of(carries, i) != 0)
          << a << "+" << b << " bit " << i;
  }
}

TEST(CarryTravelDistances, MaxEqualsCthMax) {
  Rng rng(37);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    const auto dist = carry_travel_distances(a, b, 12);
    const int max_dist = *std::max_element(dist.begin(), dist.end());
    ASSERT_EQ(max_dist, theoretical_max_carry_chain(a, b, 12))
        << a << "+" << b;
  }
}

TEST(CarryTravelDistances, NearestGenerateWins) {
  // a=0b111, b=0b001: g0, p1, p2. Carry into 1 from g0 (dist 1); into 2
  // travels 2; into 3 travels 3.
  const auto dist = carry_travel_distances(0b111, 0b001, 3);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  // Insert a second generate at bit1: a=0b011,b=0b011 -> g0,g1; carry
  // into 2 comes from the nearer g1 (dist 1).
  const auto dist2 = carry_travel_distances(0b011, 0b011, 3);
  EXPECT_EQ(dist2[1], 1);
  EXPECT_EQ(dist2[2], 1);
}

}  // namespace
}  // namespace vosim
