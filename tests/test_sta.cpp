// Static timing analysis and synthesis-report tests, including a
// hand-computed inverter-chain check against library data.
#include <gtest/gtest.h>

#include "src/netlist/adders.hpp"
#include "src/sta/sta.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

TEST(Sta, HandComputedInverterChain) {
  Netlist nl("chain3");
  NetId n = nl.add_input("in");
  const NetId n1 = nl.add_gate(CellKind::kInv, {n});
  const NetId n2 = nl.add_gate(CellKind::kInv, {n1});
  const NetId n3 = nl.add_gate(CellKind::kInv, {n2});
  nl.mark_output(n3);
  nl.finalize();

  const Cell& inv = lib().cell(CellKind::kInv);
  const double mid_load = inv.input_cap_ff + lib().wire_cap_ff();
  const double end_load = lib().wire_cap_ff() + lib().dff_d_cap_ff();
  const double expected =
      2.0 * (inv.intrinsic_delay_ps + inv.drive_ps_per_ff * mid_load) +
      (inv.intrinsic_delay_ps + inv.drive_ps_per_ff * end_load);

  const TimingAnalysis ta = analyze_timing(nl, lib(), {1.0, 1.0, 0.0});
  EXPECT_NEAR(ta.critical_path_ps, expected, 1e-9);
  ASSERT_EQ(ta.critical_nets.size(), 4u);  // in, n1, n2, n3
  EXPECT_EQ(ta.critical_nets.front(), nl.primary_inputs()[0]);
  EXPECT_EQ(ta.critical_nets.back(), n3);
}

TEST(Sta, ArrivalsScaleWithOperatingPoint) {
  const AdderNetlist rca = build_rca(8);
  const TimingAnalysis nom = analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0});
  const TimingAnalysis low = analyze_timing(rca.netlist, lib(), {1, 0.6, 0.0});
  const double scale = lib().transistor_model().delay_scale(0.6, 0.0);
  EXPECT_NEAR(low.critical_path_ps, nom.critical_path_ps * scale, 1e-6);
  for (std::size_t i = 0; i < nom.output_arrival_ps.size(); ++i)
    EXPECT_NEAR(low.output_arrival_ps[i], nom.output_arrival_ps[i] * scale,
                1e-6);
}

TEST(Sta, RcaSumArrivalsMonotoneInBitPosition) {
  const AdderNetlist rca = build_rca(16);
  const TimingAnalysis ta = analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0});
  // Sum bit arrivals grow along the ripple chain (bit 0 is fastest).
  // The last output is the carry-out, which skips the final sum XOR and
  // lands earlier than the top sum bit, so it is excluded.
  const auto& arr = ta.output_arrival_ps;
  ASSERT_EQ(arr.size(), 17u);
  for (std::size_t i = 2; i + 2 < arr.size(); ++i)
    EXPECT_GE(arr[i + 1], arr[i]) << "bit " << i;
  EXPECT_LT(arr[0], arr[8]);
}

TEST(Sta, BrentKungShallowerThanRca) {
  const AdderNetlist rca = build_rca(16);
  const AdderNetlist bka = build_brent_kung(16);
  const double rca_cp =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  const double bka_cp =
      analyze_timing(bka.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_LT(bka_cp, rca_cp);
  // Paper Table II ratio is ~0.47; allow a generous band.
  EXPECT_GT(bka_cp / rca_cp, 0.25);
  EXPECT_LT(bka_cp / rca_cp, 0.8);
}

TEST(Sta, ContaminationNoLaterThanArrival) {
  const AdderNetlist bka = build_brent_kung(8);
  const OperatingTriad op{1, 1.0, 0.0};
  const TimingAnalysis ta = analyze_timing(bka.netlist, lib(), op);
  const auto cont = contamination_delays_ps(bka.netlist, lib(), op);
  ASSERT_EQ(cont.size(), ta.output_arrival_ps.size());
  for (std::size_t i = 0; i < cont.size(); ++i)
    EXPECT_LE(cont[i], ta.output_arrival_ps[i] + 1e-9);
}

TEST(Sta, CriticalPathIsConnected) {
  const AdderNetlist rca = build_rca(8);
  const TimingAnalysis ta = analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0});
  // Consecutive critical nets must be gate input/output pairs.
  for (std::size_t i = 0; i + 1 < ta.critical_nets.size(); ++i) {
    const GateId g = rca.netlist.driver(ta.critical_nets[i + 1]);
    ASSERT_NE(g, invalid_gate);
    bool feeds = false;
    for (std::uint8_t k = 0; k < rca.netlist.gate(g).num_inputs; ++k)
      feeds |= rca.netlist.gate(g).in[k] == ta.critical_nets[i];
    EXPECT_TRUE(feeds) << "segment " << i;
  }
}

TEST(SynthesisReportTest, FieldsConsistent) {
  const AdderNetlist rca = build_rca(8);
  const SynthesisReport r = synthesize_report(rca.netlist, lib());
  EXPECT_EQ(r.design, "rca8");
  EXPECT_EQ(r.num_flops, 16 + 9);
  EXPECT_NEAR(r.area_um2, r.comb_area_um2 + r.reg_area_um2, 1e-9);
  EXPECT_NEAR(r.total_power_uw, r.dynamic_power_uw + r.leakage_power_uw,
              1e-9);
  EXPECT_NEAR(r.critical_path_ns / r.tt_critical_path_ns, 1.55, 1e-9);
  EXPECT_GT(r.dynamic_power_uw, r.leakage_power_uw);  // adders at 1 V
}

TEST(SynthesisReportTest, MarginKnob) {
  const AdderNetlist rca = build_rca(8);
  SynthesisOptions opt;
  opt.signoff_margin = 2.0;
  const SynthesisReport r = synthesize_report(rca.netlist, lib(), opt);
  EXPECT_NEAR(r.critical_path_ns, 2.0 * r.tt_critical_path_ns, 1e-12);
  SynthesisOptions bad;
  bad.signoff_margin = 0.9;
  EXPECT_THROW(synthesize_report(rca.netlist, lib(), bad), ContractViolation);
}

TEST(SynthesisReportTest, PaperTableTwoOrdering) {
  // Area: BKA > RCA at both widths; delay: BKA < RCA (paper Table II).
  const SynthesisReport rca8 = synthesize_report(build_rca(8).netlist, lib());
  const SynthesisReport bka8 =
      synthesize_report(build_brent_kung(8).netlist, lib());
  const SynthesisReport rca16 =
      synthesize_report(build_rca(16).netlist, lib());
  const SynthesisReport bka16 =
      synthesize_report(build_brent_kung(16).netlist, lib());
  EXPECT_GT(bka8.area_um2, rca8.area_um2);
  EXPECT_GT(bka16.area_um2, rca16.area_um2);
  EXPECT_LT(bka8.critical_path_ns, rca8.critical_path_ns);
  EXPECT_LT(bka16.critical_path_ns, rca16.critical_path_ns);
  EXPECT_GT(rca16.area_um2, rca8.area_um2);
  EXPECT_GT(bka8.total_power_uw, rca8.total_power_uw);
}

}  // namespace
}  // namespace vosim
