// Segmented statistical model tests: arithmetic of per-segment windows,
// training behaviour, serialization and the fidelity gain on the
// parallel-prefix adder it was designed for.
#include <gtest/gtest.h>

#include <sstream>

#include "src/characterize/metrics.hpp"
#include "src/model/carry_chain.hpp"
#include "src/model/segmented_model.hpp"
#include "src/model/vos_model.hpp"
#include "src/model/windowed_add.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

TEST(SegmentedAdd, EqualSegmentsCoverWord) {
  const auto b1 = equal_segments(8, 1);
  EXPECT_EQ(b1, (std::vector<int>{0, 9}));
  const auto b3 = equal_segments(8, 3);
  ASSERT_EQ(b3.size(), 4u);
  EXPECT_EQ(b3.front(), 0);
  EXPECT_EQ(b3.back(), 9);
  EXPECT_THROW(equal_segments(8, 0), ContractViolation);
}

TEST(SegmentedAdd, SingleSegmentEqualsWindowedAdd) {
  const std::vector<int> bounds = equal_segments(8, 1);
  Rng rng(1);
  for (int t = 0; t < 3000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    for (int c = 0; c <= 8; ++c)
      ASSERT_EQ(segmented_windowed_add(a, b, 8, bounds, {c}),
                windowed_add(a, b, 8, c))
          << a << "+" << b << " C=" << c;
  }
}

TEST(SegmentedAdd, FullWindowsAreExact) {
  const std::vector<int> bounds = equal_segments(16, 4);
  Rng rng(2);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(
        segmented_windowed_add(a, b, 16, bounds, {16, 16, 16, 16}),
        a + b);
  }
}

TEST(SegmentedAdd, WindowsActPerSegment) {
  // 0xFF + 0x01: the carry travels through every bit. Truncating only
  // the upper segment's window must corrupt only upper bits.
  const std::vector<int> bounds{0, 4, 9};
  const std::uint64_t exact = 0x100;
  const std::uint64_t got =
      segmented_windowed_add(0xFF, 0x01, 8, bounds, {8, 0});
  // Lower segment (bits 0..3) matches the exact sum; upper differs.
  EXPECT_EQ(got & mask_n(4), exact & mask_n(4));
  EXPECT_NE(got >> 4, exact >> 4);
  // And the mirror case: upper window full, lower truncated.
  const std::uint64_t got2 =
      segmented_windowed_add(0xFF, 0x01, 8, bounds, {0, 8});
  EXPECT_NE(got2 & mask_n(4), exact & mask_n(4));
  EXPECT_EQ(got2 >> 4, exact >> 4);
}

TEST(SegmentedAdd, MatchesBruteForcePerBitRule) {
  // Reference: carry into bit i survives iff travel distance <= window
  // of i's segment.
  Rng rng(3);
  const std::vector<int> bounds{0, 3, 6, 9};
  for (int t = 0; t < 3000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const std::vector<int> windows{static_cast<int>(rng.below(9)),
                                   static_cast<int>(rng.below(9)),
                                   static_cast<int>(rng.below(9))};
    const auto dist = carry_travel_distances(a, b, 8);
    const std::uint64_t p = a ^ b;
    std::uint64_t expect = 0;
    for (int i = 0; i <= 8; ++i) {
      std::size_t seg = 0;
      while (i >= bounds[seg + 1]) ++seg;
      const bool carry = dist[static_cast<std::size_t>(i)] > 0 &&
                         dist[static_cast<std::size_t>(i)] <= windows[seg];
      const bool bit =
          (i == 8) ? carry : ((bit_of(p, i) != 0) != carry);
      if (bit) expect |= (1ULL << i);
    }
    ASSERT_EQ(segmented_windowed_add(a, b, 8, bounds, windows), expect)
        << a << "+" << b;
  }
}

TEST(SegmentedModel, MaxChainIntoSegment) {
  // 0xFF+0x01: distances rise 1..8 across the bits.
  EXPECT_EQ(max_chain_into_segment(0xFF, 0x01, 8, 0, 4), 3);
  EXPECT_EQ(max_chain_into_segment(0xFF, 0x01, 8, 4, 9), 8);
  EXPECT_EQ(max_chain_into_segment(0x00, 0x00, 8, 0, 9), 0);
}

TEST(SegmentedModel, TrainOnExactOracleIsExact) {
  const HardwareOracle exact = [](std::uint64_t a, std::uint64_t b) {
    return a + b;
  };
  TrainerConfig cfg;
  cfg.num_patterns = 3000;
  const SegmentedVosModel model =
      train_segmented_model(8, {1.0, 1.0, 0.0}, exact, 3, cfg);
  Rng rng(4);
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 777);
  for (int t = 0; t < 3000; ++t) {
    const OperandPair pat = patterns.next();
    ASSERT_EQ(model.add(pat.a, pat.b, rng), pat.a + pat.b);
  }
}

TEST(SegmentedModel, SaveLoadRoundTrip) {
  const HardwareOracle trunc = [](std::uint64_t a, std::uint64_t b) {
    return windowed_add(a, b, 8, 4);
  };
  TrainerConfig cfg;
  cfg.num_patterns = 1500;
  const SegmentedVosModel model =
      train_segmented_model(8, {0.3, 0.6, 0.0}, trunc, 2, cfg);
  std::stringstream ss;
  model.save(ss);
  const SegmentedVosModel back = SegmentedVosModel::load(ss);
  EXPECT_EQ(back.width(), 8);
  EXPECT_EQ(back.num_segments(), 2);
  EXPECT_EQ(back.bounds(), model.bounds());
  EXPECT_EQ(back.triad(), model.triad());
  for (int s = 0; s < 2; ++s) EXPECT_EQ(back.table(s), model.table(s));
}

TEST(SegmentedModel, ImprovesBrentKungFidelity) {
  // The single-window model averages the BKA's region-dependent failure
  // depths; per-segment windows should track the simulator better.
  const DutNetlist bka = to_dut(build_brent_kung(8));
  const double cp_ns =
      analyze_timing(bka.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  const OperatingTriad triad{cp_ns, 0.68, 0.0};

  auto oracle_for = [&](VosDutSim& sim) {
    return [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
  };
  TrainerConfig cfg;
  cfg.num_patterns = 8000;

  VosDutSim train_base(bka, lib(), triad);
  const VosAdderModel base =
      train_vos_model(8, triad, oracle_for(train_base), cfg);
  VosDutSim train_seg(bka, lib(), triad);
  const SegmentedVosModel seg =
      train_segmented_model(8, triad, oracle_for(train_seg), 3, cfg);

  // Evaluate both on held-out patterns against fresh simulators.
  VosDutSim eval_base(bka, lib(), triad);
  VosDutSim eval_seg(bka, lib(), triad);
  PatternStream pat_base(PatternPolicy::kCarryBalanced, 8, 1729);
  PatternStream pat_seg(PatternPolicy::kCarryBalanced, 8, 1729);
  Rng rng_base(5);
  Rng rng_seg(5);
  ErrorAccumulator acc_base(9);
  ErrorAccumulator acc_seg(9);
  for (int t = 0; t < 8000; ++t) {
    const OperandPair pb = pat_base.next();
    acc_base.add(eval_base.apply(pb.a, pb.b).sampled,
                 base.add(pb.a, pb.b, rng_base));
    const OperandPair ps = pat_seg.next();
    acc_seg.add(eval_seg.apply(ps.a, ps.b).sampled,
                seg.add(ps.a, ps.b, rng_seg));
  }
  // Oracle must actually err for this comparison to mean anything.
  ASSERT_GT(acc_base.ops(), 0u);
  EXPECT_GT(acc_seg.snr_db(), acc_base.snr_db() - 0.5);
  EXPECT_LT(acc_seg.normalized_hamming(),
            acc_base.normalized_hamming() * 1.05);
}

TEST(SegmentedModel, Validation) {
  EXPECT_THROW(
      SegmentedVosModel(8, {1, 1, 0}, {0, 5}, {}),  // no tables
      ContractViolation);
  EXPECT_THROW(segmented_windowed_add(0, 0, 8, {0, 4, 9}, {1}),
               ContractViolation);
  EXPECT_THROW(segmented_windowed_add(0, 0, 8, {1, 9}, {1}),
               ContractViolation);
}

}  // namespace
}  // namespace vosim
