// Temperature-corner tests for the transistor model: mobility slowdown
// at high temperature in strong inversion, temperature inversion near
// threshold, leakage growth, and library-level corner factories.
#include <gtest/gtest.h>

#include "src/netlist/adders.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/tech/transistor_model.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const TransistorModel& room() {
  static const TransistorModel m{};
  return m;
}

TEST(Temperature, ReferenceCornerUnchanged) {
  const TransistorModel hot = room().at_temperature(25.0);
  EXPECT_NEAR(hot.delay_scale(1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(hot.leakage_scale(1.0, 0.0), 1.0, 1e-12);
}

TEST(Temperature, StrongInversionSlowsWhenHot) {
  // At nominal supply the mobility loss dominates: hot is slower.
  const TransistorModel hot = room().at_temperature(125.0);
  EXPECT_GT(hot.delay_scale(1.0, 0.0), room().delay_scale(1.0, 0.0));
  EXPECT_GT(hot.delay_scale(0.9, 0.0), room().delay_scale(0.9, 0.0));
}

TEST(Temperature, TemperatureInversionNearThreshold) {
  // Near threshold the Vt drop wins: hot is *faster* — the classic
  // low-voltage temperature-inversion effect.
  const TransistorModel hot = room().at_temperature(125.0);
  EXPECT_LT(hot.delay_scale(0.45, 0.0), room().delay_scale(0.45, 0.0));
}

TEST(Temperature, ColdCornerOpposite) {
  const TransistorModel cold = room().at_temperature(-40.0);
  // Cold: faster at nominal (mobility), slower near threshold (higher Vt).
  EXPECT_LT(cold.delay_scale(1.0, 0.0), room().delay_scale(1.0, 0.0));
  EXPECT_GT(cold.delay_scale(0.45, 0.0), room().delay_scale(0.45, 0.0));
}

TEST(Temperature, LeakageGrowsStronglyWithHeat) {
  const TransistorModel hot = room().at_temperature(125.0);
  EXPECT_GT(hot.leakage_scale(1.0, 0.0),
            3.0 * room().leakage_scale(1.0, 0.0));
  const TransistorModel cold = room().at_temperature(-40.0);
  EXPECT_LT(cold.leakage_scale(1.0, 0.0), room().leakage_scale(1.0, 0.0));
}

TEST(Temperature, VtDropsWithHeat) {
  const TransistorModel hot = room().at_temperature(125.0);
  EXPECT_LT(hot.vt_eff(0.0), room().vt_eff(0.0));
  EXPECT_NEAR(room().vt_eff(0.0) - hot.vt_eff(0.0), 0.001 * 100.0, 1e-9);
}

TEST(Temperature, LibraryCornerFactory) {
  const CellLibrary hot_lib = make_fdsoi28_lvt_at(125.0);
  EXPECT_NE(hot_lib.name().find("125"), std::string::npos);
  // Same cells, different transistor corner.
  EXPECT_EQ(hot_lib.cell(CellKind::kInv).area_um2,
            make_fdsoi28_lvt().cell(CellKind::kInv).area_um2);

  const AdderNetlist rca = build_rca(8);
  const double cp_room =
      analyze_timing(rca.netlist, make_fdsoi28_lvt(), {1, 1.0, 0.0})
          .critical_path_ps;
  const double cp_hot =
      analyze_timing(rca.netlist, hot_lib, {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_GT(cp_hot, cp_room);  // mobility-dominated at 1 V

  // Near threshold the same netlist is faster on the hot die.
  const double nt_room =
      analyze_timing(rca.netlist, make_fdsoi28_lvt(), {1, 0.45, 0.0})
          .critical_path_ps;
  const double nt_hot =
      analyze_timing(rca.netlist, hot_lib, {1, 0.45, 0.0}).critical_path_ps;
  EXPECT_LT(nt_hot, nt_room);
}

TEST(Temperature, AbsoluteZeroGuard) {
  TransistorParams p;
  p.temp_c = -300.0;
  EXPECT_THROW(TransistorModel{p}, ContractViolation);
}

}  // namespace
}  // namespace vosim
