// Fleet subsystem tests: content-hashed chip draws, die-corner
// application to the simulator configs, shard partition coverage, and
// the closed-loop fleet study's determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/fleet/fleet.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

TEST(FleetChips, DrawIsContentHashedAndDistinctPerChip) {
  FleetConfig cfg;
  cfg.num_chips = 8;
  const ChipInstance a = draw_chip_instance(cfg, 3);
  const ChipInstance b = draw_chip_instance(cfg, 3);
  EXPECT_EQ(a.delay_scale, b.delay_scale);  // same die, bit-exact
  EXPECT_EQ(a.leakage_scale, b.leakage_scale);
  EXPECT_EQ(a.variation_seed, b.variation_seed);

  const ChipInstance c = draw_chip_instance(cfg, 4);
  EXPECT_NE(a.delay_scale, c.delay_scale);
  EXPECT_NE(a.variation_seed, c.variation_seed);

  // A different fleet seed names a different population.
  FleetConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(draw_chip_instance(other, 3).delay_scale, a.delay_scale);
}

TEST(FleetChips, ChipZeroIsTheNominalDie) {
  FleetConfig cfg;
  cfg.speed_sigma = 0.5;  // wild corners for every real chip...
  cfg.leakage_sigma = 0.9;
  const ChipInstance nominal = draw_chip_instance(cfg, 0);
  EXPECT_EQ(nominal.delay_scale, 1.0);  // ...but never for chip 0
  EXPECT_EQ(nominal.leakage_scale, 1.0);

  // apply_chip leaves the base config untouched for the nominal die.
  TimingSimConfig base;
  base.variation_sigma = 0.0;
  base.variation_seed = 123;
  const TimingSimConfig applied = apply_chip(base, nominal, 0.07);
  EXPECT_EQ(applied.delay_scale, base.delay_scale);
  EXPECT_EQ(applied.variation_sigma, base.variation_sigma);
  EXPECT_EQ(applied.variation_seed, base.variation_seed);
}

TEST(FleetChips, ApplyChipCarriesTheCornerIntoTheSimConfig) {
  FleetConfig cfg;
  const ChipInstance chip = draw_chip_instance(cfg, 2);
  TimingSimConfig base;
  const TimingSimConfig applied = apply_chip(base, chip, 0.04);
  EXPECT_EQ(applied.delay_scale, chip.delay_scale);
  EXPECT_EQ(applied.leakage_scale, chip.leakage_scale);
  EXPECT_EQ(applied.variation_sigma, 0.04);
  EXPECT_EQ(applied.variation_seed, chip.variation_seed);
  EXPECT_GT(applied.delay_scale, 0.0);
  EXPECT_GT(applied.leakage_scale, 0.0);
}

TEST(FleetChips, CornersSpreadWithSigma) {
  // Log-normal draws: unit median, spread growing with sigma, never
  // non-positive.
  FleetConfig tight;
  tight.speed_sigma = 0.01;
  FleetConfig wide;
  wide.speed_sigma = 0.3;
  double tight_max = 0.0, wide_max = 0.0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    const double t = draw_chip_instance(tight, i).delay_scale;
    const double w = draw_chip_instance(wide, i).delay_scale;
    ASSERT_GT(t, 0.0);
    ASSERT_GT(w, 0.0);
    tight_max = std::max(tight_max, std::abs(t - 1.0));
    wide_max = std::max(wide_max, std::abs(w - 1.0));
  }
  EXPECT_LT(tight_max, 0.05);
  EXPECT_GT(wide_max, tight_max);
}

TEST(FleetHash, ShardPartitionIsADisjointCover) {
  // Every key lands in exactly one shard, and the union over shards is
  // the whole grid — the property run_campaign's --shard filter and
  // merge-store equivalence rest on.
  const std::size_t shards = 4;
  std::size_t assigned = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key =
        "fir|rca16|model|1.0,0.8,0|1|1500|300|" + std::to_string(i);
    std::size_t hits = 0;
    for (std::size_t s = 0; s < shards; ++s)
      if (fleet_content_hash(0, key) % shards == s) ++hits;
    ASSERT_EQ(hits, 1u) << key;
    ++assigned;
  }
  EXPECT_EQ(assigned, 500u);
  // And the hash is stable across calls (pure content).
  EXPECT_EQ(fleet_content_hash(7, "abc"), fleet_content_hash(7, "abc"));
  EXPECT_NE(fleet_content_hash(7, "abc"), fleet_content_hash(8, "abc"));
}

TEST(FleetStudy, RunsDeterministicallyAcrossThreadCounts) {
  FleetStudyConfig cfg;
  cfg.fleet.num_chips = 5;
  cfg.ladder_patterns = 300;
  cfg.cycles = 256;
  cfg.jobs = 1;
  const FleetOutcome serial = run_fleet_study(lib(), cfg);
  cfg.jobs = 4;
  const FleetOutcome parallel = run_fleet_study(lib(), cfg);

  ASSERT_EQ(serial.chips.size(), 5u);
  ASSERT_EQ(parallel.chips.size(), 5u);
  for (std::size_t i = 0; i < serial.chips.size(); ++i) {
    EXPECT_EQ(serial.chips[i].chip.chip, i + 1);  // chips are 1-based
    EXPECT_EQ(serial.chips[i].mean_energy_fj,
              parallel.chips[i].mean_energy_fj);
    EXPECT_EQ(serial.chips[i].final_rung, parallel.chips[i].final_rung);
    EXPECT_EQ(serial.chips[i].switches, parallel.chips[i].switches);
  }
  EXPECT_EQ(serial.energy_fj.mean, parallel.energy_fj.mean);

  // Sanity of the population summary.
  std::size_t histogram_total = 0;
  for (const std::size_t n : serial.rung_histogram) histogram_total += n;
  EXPECT_EQ(histogram_total, serial.chips.size());
  EXPECT_GT(serial.energy_fj.mean, 0.0);
  EXPECT_GE(serial.ladder_seconds, 0.0);
  EXPECT_GE(serial.serve_seconds, 0.0);
  for (const ChipOutcome& oc : serial.chips) {
    EXPECT_LT(oc.final_rung, serial.ladder.size());
    EXPECT_GE(oc.flagged_rate, 0.0);
    EXPECT_LE(oc.error_rate, 1.0);
  }
}

TEST(FleetStudy, Validation) {
  FleetStudyConfig cfg;
  cfg.fleet.num_chips = 0;
  EXPECT_THROW(run_fleet_study(lib(), cfg), ContractViolation);
  cfg.fleet.num_chips = 2;
  cfg.cycles = 0;
  EXPECT_THROW(run_fleet_study(lib(), cfg), ContractViolation);
  FleetConfig bad;
  bad.speed_sigma = -0.1;
  EXPECT_THROW(draw_chip_instance(bad, 1), ContractViolation);
}

}  // namespace
}  // namespace vosim
