// Error-metric accumulator tests with hand-computed values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/characterize/metrics.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

TEST(Metrics, PerfectRunIsErrorFree) {
  ErrorAccumulator acc(9);
  for (std::uint64_t v : {0ull, 1ull, 255ull, 511ull}) acc.add(v, v);
  EXPECT_EQ(acc.ops(), 4u);
  EXPECT_EQ(acc.ber(), 0.0);
  EXPECT_EQ(acc.op_error_rate(), 0.0);
  EXPECT_EQ(acc.mse(), 0.0);
  EXPECT_TRUE(std::isinf(acc.snr_db()));
  EXPECT_EQ(acc.mean_hamming(), 0.0);
}

TEST(Metrics, HandComputedBer) {
  ErrorAccumulator acc(8);
  acc.add(0b00000000, 0b00000011);  // 2 bit errors
  acc.add(0b11111111, 0b11111111);  // 0
  acc.add(0b10101010, 0b10101000);  // 1
  acc.add(0b00001111, 0b11110000);  // 8
  // BER = 11 / (4 ops * 8 bits)
  EXPECT_DOUBLE_EQ(acc.ber(), 11.0 / 32.0);
  EXPECT_DOUBLE_EQ(acc.op_error_rate(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(acc.mean_hamming(), 11.0 / 4.0);
  EXPECT_DOUBLE_EQ(acc.normalized_hamming(), 11.0 / 32.0);
}

TEST(Metrics, BitwiseErrorProbability) {
  ErrorAccumulator acc(4);
  acc.add(0b0000, 0b0001);  // bit0 err
  acc.add(0b0000, 0b0001);  // bit0 err
  acc.add(0b0000, 0b1000);  // bit3 err
  acc.add(0b0000, 0b0000);
  const auto bw = acc.bitwise_error_probability();
  ASSERT_EQ(bw.size(), 4u);
  EXPECT_DOUBLE_EQ(bw[0], 0.5);
  EXPECT_DOUBLE_EQ(bw[1], 0.0);
  EXPECT_DOUBLE_EQ(bw[2], 0.0);
  EXPECT_DOUBLE_EQ(bw[3], 0.25);
}

TEST(Metrics, MseAndSnr) {
  ErrorAccumulator acc(16);
  acc.add(100, 90);   // err -10
  acc.add(200, 220);  // err +20
  EXPECT_DOUBLE_EQ(acc.mse(), (100.0 + 400.0) / 2.0);
  const double snr = 10.0 * std::log10((100.0 * 100 + 200.0 * 200) /
                                       (100.0 + 400.0));
  EXPECT_NEAR(acc.snr_db(), snr, 1e-12);
  EXPECT_DOUBLE_EQ(acc.mean_abs_error(), 15.0);
  EXPECT_DOUBLE_EQ(acc.max_abs_error(), 20.0);
}

TEST(Metrics, MergeMatchesSequential) {
  ErrorAccumulator a(8);
  ErrorAccumulator b(8);
  ErrorAccumulator all(8);
  for (int i = 0; i < 50; ++i) {
    const auto ref = static_cast<std::uint64_t>(i * 3 % 256);
    const auto act = static_cast<std::uint64_t>((i * 3 + (i % 4)) % 256);
    all.add(ref, act);
    (i % 2 ? a : b).add(ref, act);
  }
  a.merge(b);
  EXPECT_EQ(a.ops(), all.ops());
  EXPECT_DOUBLE_EQ(a.ber(), all.ber());
  EXPECT_DOUBLE_EQ(a.mse(), all.mse());
  EXPECT_DOUBLE_EQ(a.mean_hamming(), all.mean_hamming());
  EXPECT_DOUBLE_EQ(a.max_abs_error(), all.max_abs_error());
}

TEST(Metrics, WidthLimitsDifferences) {
  ErrorAccumulator acc(4);
  // Bits above the configured width must be ignored.
  acc.add(0b10000, 0b00000);
  EXPECT_EQ(acc.ber(), 0.0);
}

TEST(Metrics, MergeRequiresSameWidth) {
  ErrorAccumulator a(8);
  ErrorAccumulator b(9);
  EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(Metrics, WidthValidated) {
  EXPECT_THROW(ErrorAccumulator(0), ContractViolation);
  EXPECT_THROW(ErrorAccumulator(65), ContractViolation);
  EXPECT_NO_THROW(ErrorAccumulator(64));
}

TEST(Metrics, EmptyAccumulatorSafe) {
  ErrorAccumulator acc(8);
  EXPECT_EQ(acc.ber(), 0.0);
  EXPECT_EQ(acc.mse(), 0.0);
  EXPECT_EQ(acc.op_error_rate(), 0.0);
}

}  // namespace
}  // namespace vosim
