// Algorithm-level energy model tests.
#include <gtest/gtest.h>

#include "src/model/energy_model.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

struct Setup {
  AdderNetlist adder = build_rca(8);
  double cp_ns = 0.0;
};

const Setup& setup() {
  static const Setup s = [] {
    Setup x;
    x.cp_ns = synthesize_report(x.adder.netlist, lib()).critical_path_ns;
    return x;
  }();
  return s;
}

TEST(EnergyModel, FitsNominalOperationWell) {
  const OperatingTriad triad{setup().cp_ns, 1.0, 0.0};
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 4000;
  const VosEnergyModel model =
      train_energy_model(setup().adder, lib(), triad, cfg);
  const EnergyFit fit =
      evaluate_energy_model(model, setup().adder, lib(), 4000);
  // Per-op variance is partly glitch-driven, which operand features
  // cannot see; ~45% explained variance is the honest ceiling of the
  // linear model, and the mean absolute error stays bounded.
  EXPECT_GT(fit.r_squared, 0.40);
  EXPECT_LT(fit.mean_abs_error_fj, 0.35 * fit.mean_energy_fj);
}

TEST(EnergyModel, AggregateEnergyTracksSimulator) {
  // Applications sum energies over many operations; the unbiased fit
  // must land close in aggregate even where per-op R^2 is modest.
  const OperatingTriad triad{setup().cp_ns, 1.0, 0.0};
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 4000;
  const VosEnergyModel model =
      train_energy_model(setup().adder, lib(), triad, cfg);

  const DutNetlist dut = to_dut(build_rca(8));
  VosDutSim sim(dut, lib(), triad);
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 9999);
  OperandPair prev = patterns.next();
  sim.reset(prev.a, prev.b);
  double simulated = 0.0;
  double predicted = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const OperandPair cur = patterns.next();
    simulated += sim.apply(cur.a, cur.b).energy_fj;
    predicted += model.predict_fj(prev.a, prev.b, cur.a, cur.b);
    prev = cur;
  }
  EXPECT_NEAR(predicted / simulated, 1.0, 0.10);
}

TEST(EnergyModel, SwitchingCoefficientPositive) {
  const OperatingTriad triad{setup().cp_ns, 1.0, 0.0};
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 3000;
  const VosEnergyModel model =
      train_energy_model(setup().adder, lib(), triad, cfg);
  // More toggled input bits must cost more energy.
  EXPECT_GT(model.coefficients()[1], 0.0);
  EXPECT_GT(model.predict_fj(0, 0, 0xFF, 0xFF),
            model.predict_fj(0, 0, 0x01, 0x00));
}

TEST(EnergyModel, IdleOperationCostsLittle) {
  const OperatingTriad triad{setup().cp_ns, 1.0, 0.0};
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 3000;
  const VosEnergyModel model =
      train_energy_model(setup().adder, lib(), triad, cfg);
  // Re-issuing identical operands toggles nothing.
  const double idle = model.predict_fj(0x35, 0x0A, 0x35, 0x0A);
  const double busy = model.predict_fj(0x00, 0x00, 0xFF, 0x01);
  EXPECT_LT(idle, 0.35 * busy);
  EXPECT_GE(idle, 0.0);
}

TEST(EnergyModel, TracksVoltageScaling) {
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 3000;
  const VosEnergyModel nominal = train_energy_model(
      setup().adder, lib(), {setup().cp_ns, 1.0, 0.0}, cfg);
  const VosEnergyModel scaled = train_energy_model(
      setup().adder, lib(), {setup().cp_ns, 0.6, 2.0}, cfg);
  // Mean predicted energy drops roughly quadratically with Vdd.
  const double e_nom = nominal.predict_fj(0, 0, 0xAB, 0x55);
  const double e_low = scaled.predict_fj(0, 0, 0xAB, 0x55);
  EXPECT_LT(e_low, 0.55 * e_nom);
  EXPECT_GT(e_low, 0.1 * e_nom);
}

TEST(EnergyModel, UsefulUnderDeepVosToo) {
  const OperatingTriad triad{setup().cp_ns, 0.6, 0.0};  // erroneous point
  EnergyTrainerConfig cfg;
  cfg.num_patterns = 4000;
  const VosEnergyModel model =
      train_energy_model(setup().adder, lib(), triad, cfg);
  const EnergyFit fit =
      evaluate_energy_model(model, setup().adder, lib(), 4000);
  EXPECT_GT(fit.r_squared, 0.5);
}

TEST(EnergyModel, Validation) {
  EXPECT_THROW(VosEnergyModel(0, {1, 1, 0}, {}, 1.0),
               ContractViolation);
  EXPECT_THROW(VosEnergyModel(8, {1, 1, 0}, {}, 0.0),
               ContractViolation);
  EnergyTrainerConfig bad;
  bad.num_patterns = 4;
  EXPECT_THROW(
      train_energy_model(setup().adder, lib(), {1.0, 1.0, 0.0}, bad),
      ContractViolation);
}

}  // namespace
}  // namespace vosim
