// DutNetlist abstraction tests: conversions, pin-map scatter/gather
// round trips, bus-width contracts, netlist composition (append_copy /
// MAC trees), and the circuit registry.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/metrics.hpp"
#include "src/netlist/adder_tree.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/netlist/eval.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

/// Functional output of a DUT for given operands, via the zero-delay
/// golden evaluator and the same pin map the simulators use.
std::uint64_t golden_eval(const DutNetlist& dut, const DutPinMap& pins,
                          std::span<const std::uint64_t> ops) {
  std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0);
  pins.fill_inputs(ops, in.data());
  const auto values = evaluate_logic(dut.netlist, in);
  return pack_word(values, dut.outputs);
}

TEST(DutNetlist, AdderConversionMetadata) {
  const DutNetlist dut = to_dut(build_brent_kung(8));
  EXPECT_EQ(dut.kind, "bka8");
  EXPECT_EQ(dut.display_name, "8-bit BKA");
  EXPECT_EQ(dut.num_operands(), 2u);
  EXPECT_EQ(dut.operand_width(0), 8);
  EXPECT_EQ(dut.output_width(), 9);
  EXPECT_EQ(dut.inputs[0].name, "a");
  EXPECT_EQ(dut.inputs[1].name, "b");
  const auto widths = dut.operand_widths();
  ASSERT_EQ(widths.size(), 2u);
  EXPECT_EQ(widths[0], 8);
}

TEST(DutNetlist, MultiplierConversionMetadata) {
  const DutNetlist arr = to_dut(build_array_multiplier(6));
  EXPECT_EQ(arr.kind, "mul6-array");
  EXPECT_EQ(arr.output_width(), 12);
  const DutNetlist wal = to_dut(build_wallace_multiplier(6));
  EXPECT_EQ(wal.kind, "mul6-wallace");
  EXPECT_EQ(wal.display_name, "6x6 wallace multiplier");
}

TEST(DutNetlist, TreeConversionOneBusPerLeaf) {
  const DutNetlist tree = to_dut(build_adder_tree(4, 6));
  EXPECT_EQ(tree.kind, "tree4x6");
  EXPECT_EQ(tree.num_operands(), 4u);
  EXPECT_EQ(tree.output_width(), 6 + 2);
}

TEST(DutPinMap, ScatterGatherRoundTripAdder) {
  const DutNetlist dut = to_dut(build_rca(8));
  const DutPinMap pins(dut);
  Rng rng(11);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t ops[2] = {rng.bits(8), rng.bits(8)};
    EXPECT_EQ(golden_eval(dut, pins, ops), ops[0] + ops[1]);
  }
}

TEST(DutPinMap, ScatterGatherRoundTripMultiplier) {
  for (const DutNetlist& dut : {to_dut(build_array_multiplier(8)),
                                to_dut(build_wallace_multiplier(8))}) {
    const DutPinMap pins(dut);
    Rng rng(12);
    for (int t = 0; t < 500; ++t) {
      const std::uint64_t ops[2] = {rng.bits(8), rng.bits(8)};
      EXPECT_EQ(golden_eval(dut, pins, ops), ops[0] * ops[1]) << dut.kind;
    }
  }
}

TEST(DutPinMap, GatherInvertsScatterOnPermutedBuses) {
  // Scatter into the PI vector and gather from a synthetic PO word must
  // invert each other even when the bus order permutes the PI order.
  const MultiplierNetlist mul = build_array_multiplier(4);
  // Present the buses swapped: operand 0 is b, operand 1 is a.
  const DutNetlist dut = make_dut(mul.netlist, {mul.b, mul.a}, mul.prod);
  const DutPinMap pins(dut);
  const std::uint64_t ops[2] = {0x5, 0xA};
  std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0xCC);
  std::fill(in.begin(), in.end(), 0);
  pins.fill_inputs(ops, in.data());
  const auto pis = dut.netlist.primary_inputs();
  for (int i = 0; i < 4; ++i) {
    // b carries 0x5, a carries 0xA.
    const auto slot_b = static_cast<std::size_t>(
        std::find(pis.begin(), pis.end(), mul.b[static_cast<std::size_t>(i)]) -
        pis.begin());
    const auto slot_a = static_cast<std::size_t>(
        std::find(pis.begin(), pis.end(), mul.a[static_cast<std::size_t>(i)]) -
        pis.begin());
    EXPECT_EQ(in[slot_b], (0x5 >> i) & 1);
    EXPECT_EQ(in[slot_a], (0xA >> i) & 1);
  }
  // Gather: bit i of the output word is PO position of outputs[i].
  const auto values = evaluate_logic(dut.netlist, in);
  EXPECT_EQ(pack_word(values, dut.outputs),
            static_cast<std::uint64_t>(0x5 * 0xA));
}

TEST(DutPinMap, RejectsOverwideInputBus) {
  Netlist nl("wide_in");
  std::vector<NetId> bus;
  for (int i = 0; i < 64; ++i)  // one past max_word_bits
    bus.push_back(nl.add_input("i" + std::to_string(i)));
  const NetId out = nl.add_gate(CellKind::kAnd2, {bus[0], bus[1]});
  nl.mark_output(out);
  nl.finalize();
  const DutNetlist dut = make_dut(nl, {bus}, {out}, "wide");
  try {
    const DutPinMap pins(dut);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("64 bits"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("max_word_bits"),
              std::string::npos);
  }
}

TEST(DutPinMap, RejectsOverwideOutputBus) {
  // 65 marked outputs overflows the packed uint64_t word — the error
  // must be loud, not a silent truncation.
  Netlist nl("wide_out");
  const NetId a = nl.add_input("a");
  std::vector<NetId> outs;
  for (int i = 0; i < 65; ++i) {
    outs.push_back(nl.add_gate(CellKind::kBuf, {a}));
    nl.mark_output(outs.back());
  }
  nl.finalize();
  const DutNetlist dut = make_dut(nl, {{a}}, outs, "wide_out");
  EXPECT_THROW(DutPinMap{dut}, ContractViolation);
}

TEST(DutPinMap, RejectsOperandOverflowAtFill) {
  const DutNetlist dut = to_dut(build_rca(4));
  const DutPinMap pins(dut);
  std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0);
  const std::uint64_t ops[2] = {0x10, 0};  // 5 bits into a 4-bit bus
  EXPECT_THROW(pins.fill_inputs(ops, in.data()), ContractViolation);
}

TEST(AppendCopy, ReplicatesFunctionWithSubstitutedInputs) {
  const MultiplierNetlist mul = build_array_multiplier(4);
  Netlist nl("wrap");
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("y" + std::to_string(i)));
  const auto pis = mul.netlist.primary_inputs();
  std::vector<NetId> subs(pis.size(), invalid_net);
  for (int i = 0; i < 4; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    subs[static_cast<std::size_t>(
        std::find(pis.begin(), pis.end(), mul.a[ui]) - pis.begin())] = a[ui];
    subs[static_cast<std::size_t>(
        std::find(pis.begin(), pis.end(), mul.b[ui]) - pis.begin())] = b[ui];
  }
  const auto map = append_copy(nl, mul.netlist, subs, "m0_");
  std::vector<NetId> prod;
  for (const NetId p : mul.prod) {
    prod.push_back(map[p]);
    nl.mark_output(map[p]);
  }
  nl.finalize();
  EXPECT_EQ(nl.num_gates(), mul.netlist.num_gates());

  const DutNetlist dut = make_dut(nl, {a, b}, prod, "wrapped-mul");
  const DutPinMap pins(dut);
  Rng rng(13);
  for (int t = 0; t < 300; ++t) {
    const std::uint64_t ops[2] = {rng.bits(4), rng.bits(4)};
    EXPECT_EQ(golden_eval(dut, pins, ops), ops[0] * ops[1]);
  }
}

TEST(MacDut, SettledFunctionIsSumOfProducts) {
  const DutNetlist mac = build_mac_dut(4, 4);
  EXPECT_EQ(mac.kind, "mac4x4");
  EXPECT_EQ(mac.num_operands(), 8u);
  EXPECT_EQ(mac.output_width(), 2 * 4 + 2);
  const DutPinMap pins(mac);
  Rng rng(14);
  for (int t = 0; t < 300; ++t) {
    std::uint64_t ops[8];
    std::uint64_t expect = 0;
    for (int k = 0; k < 4; ++k) {
      ops[2 * k] = rng.bits(4);
      ops[2 * k + 1] = rng.bits(4);
      expect += ops[2 * k] * ops[2 * k + 1];
    }
    EXPECT_EQ(golden_eval(mac, pins, ops), expect);
  }
}

TEST(CircuitRegistry, ParsesKnownSpecs) {
  EXPECT_EQ(build_circuit("rca8").kind, "rca8");
  EXPECT_EQ(build_circuit("bka16").kind, "bka16");
  EXPECT_EQ(build_circuit("mul8-array").kind, "mul8-array");
  EXPECT_EQ(build_circuit("mul4-wallace").kind, "mul4-wallace");
  EXPECT_EQ(build_circuit("tree4x8").kind, "tree4x8");
  EXPECT_EQ(build_circuit("mac4x8").kind, "mac4x8");
  EXPECT_EQ(build_circuit("loa8-4").kind, "loa8");
  EXPECT_EQ(build_circuit("trunc8").kind, "trunc8");  // k defaults w/2
  EXPECT_EQ(build_circuit("specw8-3").kind, "specw8");
}

TEST(CircuitRegistry, RejectsMalformedSpecs) {
  for (const char* bad : {"", "rca", "rca8x", "mul8", "mul8-booth",
                          "tree8", "mac4", "frobnicate9", "8rca"}) {
    EXPECT_THROW(build_circuit(bad), std::invalid_argument) << bad;
  }
  // The error message teaches the grammar.
  try {
    build_circuit("nope");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mul<w>-wallace"),
              std::string::npos);
  }
}

TEST(Metrics, MredTracksRelativeError) {
  ErrorAccumulator acc(8);
  acc.add(100, 90);  // |e|/ref = 0.1
  acc.add(50, 50);   // 0
  acc.add(0, 1);     // zero-reference convention: |e|/1 = 1
  EXPECT_NEAR(acc.mred(), (0.1 + 0.0 + 1.0) / 3.0, 1e-12);
  ErrorAccumulator other(8);
  other.add(10, 15);  // 0.5
  acc.merge(other);
  EXPECT_NEAR(acc.mred(), (0.1 + 0.0 + 1.0 + 0.5) / 4.0, 1e-12);
}

}  // namespace
}  // namespace vosim
