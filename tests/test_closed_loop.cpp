// Closed-loop VOS control tests: ladder-walking policy in isolation,
// then the full loop over clocked pipelines — measured Razor rates must
// drive the unit to cheaper rungs when safe and hold it back when not.
#include <gtest/gtest.h>

#include "src/characterize/characterizer.hpp"
#include "src/runtime/closed_loop.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

ClosedLoopConfig fast_config() {
  ClosedLoopConfig cfg;
  cfg.window_cycles = 32;
  cfg.min_dwell_cycles = 32;
  return cfg;
}

// ---------------------------------------------------------- controller
TEST(ClosedLoopPolicy, DescendsWhenClean) {
  ClosedLoopController c(3, fast_config());
  EXPECT_EQ(c.rung(), 0u);
  std::size_t downs = 0;
  for (int i = 0; i < 200; ++i)
    if (c.observe(0.0, true) == SpeculationAction::kStepDown) ++downs;
  EXPECT_EQ(c.rung(), 2u);
  EXPECT_EQ(downs, 2u);
  // At the last rung it holds.
  EXPECT_EQ(c.observe(0.0, true), SpeculationAction::kHold);
}

TEST(ClosedLoopPolicy, BacksOffOnViolation) {
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.05;
  ClosedLoopController c(3, cfg);
  for (int i = 0; i < 100; ++i) c.observe(0.0, true);
  EXPECT_EQ(c.rung(), 2u);
  // A measured violation steps up exactly once per dwell period.
  SpeculationAction a = SpeculationAction::kHold;
  for (int i = 0; i < 40 && a == SpeculationAction::kHold; ++i)
    a = c.observe(0.5, true);
  EXPECT_EQ(a, SpeculationAction::kStepUp);
  EXPECT_EQ(c.rung(), 1u);
}

TEST(ClosedLoopPolicy, HysteresisBandHolds) {
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.10;
  cfg.step_down_fraction = 0.5;
  ClosedLoopController c(3, cfg);
  // A rate inside (margin/2, margin] must neither climb nor descend.
  for (int i = 0; i < 300; ++i)
    EXPECT_EQ(c.observe(0.08, true), SpeculationAction::kHold);
  EXPECT_EQ(c.rung(), 0u);
  EXPECT_EQ(c.switches(), 0u);
}

TEST(ClosedLoopPolicy, WaitsForWindowAndDwell) {
  ClosedLoopController c(2, fast_config());
  // No decision before the window fills, however long it waits.
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(c.observe(0.0, false), SpeculationAction::kHold);
  // Dwell restarts after a switch.
  ClosedLoopController d(3, fast_config());
  for (int i = 0; i < 40; ++i) d.observe(0.0, true);
  EXPECT_EQ(d.rung(), 1u);
  EXPECT_LE(d.switches(), 2u);
}

TEST(ClosedLoopPolicy, ReprobeBackoffBarsFailingRung) {
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.1;
  cfg.reprobe_backoff_windows = 4;
  ClosedLoopController c(2, cfg);
  // Descend, fail, retreat.
  for (int i = 0; i < 40; ++i) c.observe(0.0, true);
  ASSERT_EQ(c.rung(), 1u);
  SpeculationAction a = SpeculationAction::kHold;
  for (int i = 0; i < 40 && a == SpeculationAction::kHold; ++i)
    a = c.observe(0.9, true);
  ASSERT_EQ(a, SpeculationAction::kStepUp);
  EXPECT_EQ(c.barred_rung(), 1u);
  // The failed rung is barred: the next few clean decision windows must
  // NOT re-enter it (without backoff each one would).
  int suppressed_windows = 0;
  while (c.rung() == 0 && suppressed_windows < 4) {
    for (int i = 0; i < 40 && c.rung() == 0; ++i) c.observe(0.0, true);
    if (c.rung() == 0) break;
    // It eventually re-probes once the cooldown drains.
    ++suppressed_windows;
  }
  // Count decisions until the first re-probe: must take > 1 window.
  ClosedLoopController d(2, cfg);
  for (int i = 0; i < 40; ++i) d.observe(0.0, true);
  for (int i = 0; i < 40 && d.rung() == 1; ++i) d.observe(0.9, true);
  ASSERT_EQ(d.rung(), 0u);
  int windows_to_reprobe = 0;
  while (d.rung() == 0 && windows_to_reprobe < 100) {
    for (int i = 0; i < 32; ++i)
      if (d.observe(0.0, true) != SpeculationAction::kHold) break;
    ++windows_to_reprobe;
  }
  EXPECT_GE(windows_to_reprobe, 4);  // cooldown held it back
  EXPECT_LT(windows_to_reprobe, 100);  // but it does re-probe
  // Failing again doubles the penalty.
  for (int i = 0; i < 40 && d.rung() == 1; ++i) d.observe(0.9, true);
  ASSERT_EQ(d.rung(), 0u);
  int second = 0;
  while (d.rung() == 0 && second < 100) {
    for (int i = 0; i < 32; ++i)
      if (d.observe(0.0, true) != SpeculationAction::kHold) break;
    ++second;
  }
  EXPECT_GT(second, windows_to_reprobe);
  // Surviving a window on the once-barred rung clears the bar.
  for (int i = 0; i < 40; ++i) d.observe(0.0, true);
  EXPECT_EQ(d.barred_rung(), d.num_rungs());
}

TEST(ClosedLoopPolicy, Validation) {
  EXPECT_THROW(ClosedLoopController(0), ContractViolation);
  ClosedLoopConfig bad;
  bad.step_down_fraction = 0.0;
  EXPECT_THROW(ClosedLoopController(2, bad), ContractViolation);
}

// ---------------------------------------------------------------- unit
/// A guard-band-shaped ladder: one expensive clean rung (the signoff
/// operating point) and increasingly over-scaled, increasingly
/// erroneous cheap rungs. Only the clean rung may have zero BER —
/// otherwise build_triad_ladder's Pareto filter (correctly) collapses
/// the clean rungs onto the cheapest of them.
std::vector<TriadRung> pipeline_ladder(const SeqDut& seq) {
  const double cp = seq_critical_path_ns(seq, lib());
  CharacterizeConfig cfg;
  cfg.num_patterns = 200;
  cfg.engine = EngineKind::kLevelized;
  const std::vector<OperatingTriad> triads = {
      {1.2 * cp, 1.0, 0.0},
      {0.8 * cp, 0.7, 0.0},
      {0.6 * cp, 0.7, 0.0},
      {0.45 * cp, 0.5, 0.0}};
  return build_triad_ladder(
      characterize_seq_dut(seq, lib(), triads, cfg));
}

TEST(ClosedLoopUnit, DescendsLadderAndSavesEnergy) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const std::vector<TriadRung> ladder = pipeline_ladder(seq);
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_DOUBLE_EQ(ladder.front().expected_ber, 0.0);
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.6;  // generous floor for an 8x8 multiplier
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;
  ClosedLoopSeqUnit unit(seq, lib(), ladder, cfg, sim_cfg);
  Rng rng(17);
  std::size_t deepest = 0;
  for (int c = 0; c < 2000; ++c) {
    const ClosedLoopCycleResult r =
        unit.step_cycle(rng() & 0xFF, rng() & 0xFF);
    deepest = std::max(deepest, r.rung);
  }
  EXPECT_GE(deepest, 1u);  // left the guard-banded rung
  EXPECT_GT(unit.controller().switches(), 0u);
  // Mean energy must beat pinning the safest (guard-banded) rung.
  EXPECT_LT(unit.mean_energy_fj(), ladder.front().energy_per_op_fj);
  EXPECT_EQ(unit.cycles(), 2000u);
}

TEST(ClosedLoopUnit, ZeroMarginPinsSafestRung) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const std::vector<TriadRung> ladder = pipeline_ladder(seq);
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.0;  // nothing tolerated, nothing gained
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;
  ClosedLoopSeqUnit unit(seq, lib(), ladder, cfg, sim_cfg);
  Rng rng(29);
  for (int c = 0; c < 500; ++c)
    unit.step_cycle(rng() & 0xFF, rng() & 0xFF);
  EXPECT_EQ(unit.controller().rung(), 0u);
  EXPECT_EQ(unit.controller().switches(), 0u);
}

TEST(ClosedLoopUnit, MeasuredRatesComeFromRazor) {
  // The controller's sensor is the active rung's own monitors: when a
  // violating rung is reached, the unit must retreat from it — the
  // measured rate, not the characterized BER, drives the loop.
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  // Hand-built ladder whose cheap rung is badly broken.
  std::vector<TriadRung> ladder = {
      {{1.2 * cp, 1.0, 0.0}, 0.0, 500.0},
      {{0.3 * cp, 0.6, 0.0}, 0.0, 100.0},  // lies: claims error-free
  };
  ClosedLoopConfig cfg = fast_config();
  cfg.op_error_margin = 0.05;
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;
  ClosedLoopSeqUnit unit(seq, lib(), ladder, cfg, sim_cfg);
  Rng rng(31);
  bool reached_cheap = false;
  bool retreated = false;
  for (int c = 0; c < 1500; ++c) {
    const ClosedLoopCycleResult r =
        unit.step_cycle(rng() & 0xFF, rng() & 0xFF);
    if (r.rung == 1) reached_cheap = true;
    if (reached_cheap && r.action == SpeculationAction::kStepUp)
      retreated = true;
  }
  EXPECT_TRUE(reached_cheap);
  EXPECT_TRUE(retreated);  // Razor truth exposed the lying rung
}

}  // namespace
}  // namespace vosim
