// Cross-width equivalence of the wide lane words: the 256- and
// 512-lane levelized instantiations must be bit-exact against the
// 64-lane baseline — identical sampled/settled words, settle times,
// energies and toggle counts on every registry circuit, identical
// captured/expected/Razor/monitor statistics on every registry
// pipeline, and identical characterizer sweeps including the
// sequential saturation probe — at full and ragged lane counts. The
// per-lane commit order and FP accumulation order are width-invariant
// by construction (serial per-lane scans stay scalar, DESIGN.md §7),
// so every comparison here is ASSERT_EQ / ASSERT_DOUBLE_EQ, never a
// tolerance. The wide-word helper layer itself is pinned against a
// per-lane uint64_t reference first.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/netlist/dut.hpp"
#include "src/runtime/error_monitor.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/lanes.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double critical_path_ns(const Netlist& nl, const OperatingTriad& op) {
  return analyze_timing(nl, lib(), op).critical_path_ps * 1e-3;
}

// ---- Wide-word helper layer vs per-lane uint64_t reference ----------

/// A reproducible wide word whose sub-words come from the same Rng
/// stream, so the reference view (a vector of sub-words) and the wide
/// word agree by construction.
template <class W>
W random_word(Rng& rng) {
  W w{};
  for (std::size_t i = 0; i < lanes::subword_count_v<W>; ++i)
    lanes::set_subword(w, i, rng.bits(64));
  return w;
}

template <class W>
void expect_helpers_match_reference() {
  constexpr std::size_t n = lanes::lane_count_v<W>;
  Rng rng(12345);
  const W a = random_word<W>(rng);
  const W b = random_word<W>(rng);
  const W m = random_word<W>(rng);

  // lane_bit against the sub-word layout contract: lane k is bit
  // (k % 64) of sub-word (k / 64).
  int pop = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint8_t want = static_cast<std::uint8_t>(
        (lanes::subword(a, k / 64) >> (k % 64)) & 1u);
    ASSERT_EQ(want, lanes::lane_bit(a, k)) << k;
    pop += want;
  }
  EXPECT_EQ(pop, lanes::popcount(a));

  // bit / mask shapes.
  for (const std::size_t k : {std::size_t{0}, std::size_t{1},
                              std::size_t{63}, std::size_t{64},
                              std::size_t{65}, n - 1}) {
    const W one = lanes::bit<W>(k);
    EXPECT_EQ(1, lanes::popcount(one)) << k;
    EXPECT_EQ(1, lanes::lane_bit(one, k)) << k;
  }
  for (const std::size_t c : {std::size_t{0}, std::size_t{1},
                              std::size_t{63}, std::size_t{64},
                              std::size_t{65}, n - 1, n}) {
    const W lo = lanes::mask<W>(c);
    EXPECT_EQ(static_cast<int>(c), lanes::popcount(lo)) << c;
    for (std::size_t k = 0; k < n; ++k)
      ASSERT_EQ(k < c ? 1 : 0, lanes::lane_bit(lo, k)) << c << " " << k;
  }

  // Bitwise operators, andn and select, lane by lane.
  const W x = (a & b) | (a ^ m);
  const W nd = lanes::andn(a, b);
  const W sel = lanes::select(m, a, b);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint8_t ak = lanes::lane_bit(a, k);
    const std::uint8_t bk = lanes::lane_bit(b, k);
    const std::uint8_t mk = lanes::lane_bit(m, k);
    ASSERT_EQ((ak & bk) | (ak ^ mk), lanes::lane_bit(x, k)) << k;
    ASSERT_EQ(ak & (bk ^ 1), lanes::lane_bit(nd, k)) << k;
    ASSERT_EQ(mk ? ak : bk, lanes::lane_bit(sel, k)) << k;
    ASSERT_EQ(ak ^ 1, lanes::lane_bit(~a, k)) << k;
  }

  // shift1_in is the streaming stale recurrence: out(k) = in(k-1),
  // out(0) = low — including the carry across sub-word seams.
  for (const std::uint8_t low : {std::uint8_t{0}, std::uint8_t{1}}) {
    const W sh = lanes::shift1_in(a, low);
    ASSERT_EQ(low, lanes::lane_bit(sh, 0));
    for (std::size_t k = 1; k < n; ++k)
      ASSERT_EQ(lanes::lane_bit(a, k - 1), lanes::lane_bit(sh, k)) << k;
  }

  // toggle/set/assign touch exactly one lane.
  W t = a;
  lanes::toggle_lane(t, n - 1);
  lanes::toggle_lane(t, 64);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint8_t flip = (k == n - 1 || k == 64) ? 1 : 0;
    ASSERT_EQ(lanes::lane_bit(a, k) ^ flip, lanes::lane_bit(t, k)) << k;
  }
  W st = a;
  lanes::set_lane(st, 65);
  lanes::assign_lane(st, 66, false);
  lanes::assign_lane(st, 67, true);
  for (std::size_t k = 0; k < n; ++k) {
    std::uint8_t want = lanes::lane_bit(a, k);
    if (k == 65 || k == 67) want = 1;
    if (k == 66) want = 0;
    ASSERT_EQ(want, lanes::lane_bit(st, k)) << k;
  }

  // for_each_lane visits exactly the set lanes, in ascending order.
  std::vector<std::size_t> seen;
  lanes::for_each_lane(a, [&](std::size_t k) { seen.push_back(k); });
  ASSERT_EQ(static_cast<std::size_t>(lanes::popcount(a)), seen.size());
  std::size_t prev = 0;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(1, lanes::lane_bit(a, seen[i]));
    if (i > 0) ASSERT_LT(prev, seen[i]);
    prev = seen[i];
  }
  EXPECT_TRUE(lanes::any(a));
  EXPECT_FALSE(lanes::any(W{}));
}

TEST(LanesWide, HelpersMatchPerLaneReference256) {
  expect_helpers_match_reference<lanes::Word256>();
}

TEST(LanesWide, HelpersMatchPerLaneReference512) {
  expect_helpers_match_reference<lanes::Word512>();
}

// ---- Runtime dispatch API -------------------------------------------

TEST(LanesWide, DispatchApi) {
  EXPECT_TRUE(lanes::is_lane_width(64));
  EXPECT_TRUE(lanes::is_lane_width(256));
  EXPECT_TRUE(lanes::is_lane_width(512));
  EXPECT_FALSE(lanes::is_lane_width(0));
  EXPECT_FALSE(lanes::is_lane_width(128));

  // Explicit requests are honored verbatim, regardless of environment.
  EXPECT_EQ(64u, lanes::resolve_lane_width(64));
  EXPECT_EQ(256u, lanes::resolve_lane_width(256));
  EXPECT_EQ(512u, lanes::resolve_lane_width(512));
  // Auto resolves to some valid width bounded by the compiled tier.
  EXPECT_TRUE(lanes::is_lane_width(lanes::resolve_lane_width(0)));
  EXPECT_TRUE(lanes::is_lane_width(lanes::max_compiled_lane_width()));
  EXPECT_TRUE(lanes::is_lane_width(lanes::max_supported_lane_width()));
  EXPECT_LE(lanes::max_supported_lane_width(),
            lanes::max_compiled_lane_width());
  EXPECT_NE(nullptr, lanes::simd_compiled_name());

  // The process-wide override beats the environment and auto, but not
  // an explicit request.
  const std::size_t saved = lanes::lane_width_override();
  lanes::set_lane_width_override(256);
  EXPECT_EQ(256u, lanes::lane_width_override());
  EXPECT_EQ(256u, lanes::resolve_lane_width(0));
  EXPECT_EQ(512u, lanes::resolve_lane_width(512));
  lanes::set_lane_width_override(128);  // invalid: ignored
  EXPECT_EQ(256u, lanes::lane_width_override());
  lanes::set_lane_width_override(0);
  EXPECT_EQ(0u, lanes::lane_width_override());
  lanes::set_lane_width_override(saved);

  std::size_t w = 1;
  EXPECT_TRUE(lanes::parse_lane_width("auto", w));
  EXPECT_EQ(0u, w);
  EXPECT_TRUE(lanes::parse_lane_width("64", w));
  EXPECT_EQ(64u, w);
  EXPECT_TRUE(lanes::parse_lane_width("256", w));
  EXPECT_EQ(256u, w);
  EXPECT_TRUE(lanes::parse_lane_width("512", w));
  EXPECT_EQ(512u, w);
  EXPECT_FALSE(lanes::parse_lane_width("128", w));
  EXPECT_FALSE(lanes::parse_lane_width("", w));
  EXPECT_FALSE(lanes::parse_lane_width("avx2", w));
}

// ---- Combinational engine: cross-width step_batch -------------------

/// Streams `count` random patterns through a 64-lane engine and a
/// `width`-lane engine (same die, same stimuli, streaming state) and
/// asserts every StepResult field matches exactly.
void expect_streaming_matches_u64(const DutNetlist& dut,
                                  const OperatingTriad& op,
                                  std::size_t width, std::size_t count,
                                  std::uint64_t seed) {
  TimingSimConfig cfg;
  cfg.variation_sigma = 0.03;
  cfg.variation_seed = 7;
  cfg.engine = EngineKind::kLevelized;

  cfg.lane_width = 64;
  const auto base = make_engine(dut.netlist, lib(), op, cfg);
  cfg.lane_width = width;
  const auto wide = make_engine(dut.netlist, lib(), op, cfg);
  ASSERT_EQ(width, wide->lanes_per_pass());

  const std::size_t npis = dut.netlist.primary_inputs().size();
  Rng rng(seed);
  std::vector<std::uint8_t> init(npis);
  for (std::size_t i = 0; i < npis; ++i)
    init[i] = static_cast<std::uint8_t>(rng.bits(1));
  base->reset(init);
  wide->reset(init);

  std::vector<std::uint8_t> in(count * npis);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<std::uint8_t>(rng.bits(1));
  std::vector<StepResult> want(count);
  std::vector<StepResult> got(count);
  base->step_batch(in, count, want);
  wide->step_batch(in, count, got);

  for (std::size_t k = 0; k < count; ++k) {
    ASSERT_EQ(want[k].sampled_outputs, got[k].sampled_outputs) << k;
    ASSERT_EQ(want[k].settled_outputs, got[k].settled_outputs) << k;
    ASSERT_DOUBLE_EQ(want[k].settle_time_ps, got[k].settle_time_ps) << k;
    ASSERT_DOUBLE_EQ(want[k].window_energy_fj, got[k].window_energy_fj)
        << k;
    ASSERT_DOUBLE_EQ(want[k].total_energy_fj, got[k].total_energy_fj)
        << k;
    ASSERT_EQ(want[k].toggles_in_window, got[k].toggles_in_window) << k;
    ASSERT_EQ(want[k].toggles_total, got[k].toggles_total) << k;
  }
  // The persistent streaming state after the batch matches too.
  const auto sb = base->sampled_values();
  const auto sw = wide->sampled_values();
  ASSERT_EQ(sb.size(), sw.size());
  for (std::size_t i = 0; i < sb.size(); ++i) ASSERT_EQ(sb[i], sw[i]);
}

// Every registry circuit, both wide widths, over-scaled into the error
// region: 300 patterns cover multi-pass 64/256 streaming and a ragged
// 512 word.
TEST(LanesWide, StreamingMatchesU64AcrossRegistry) {
  for (const std::string& spec : circuit_registry_examples()) {
    SCOPED_TRACE(spec);
    const DutNetlist dut = build_circuit(spec);
    const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
    const OperatingTriad stressed{0.7 * cp, 0.9, 0.0};
    expect_streaming_matches_u64(dut, stressed, 256, 300, 11);
    expect_streaming_matches_u64(dut, stressed, 512, 300, 11);
  }
}

// Ragged lane counts around every sub-word and word boundary of the
// wide instantiations.
TEST(LanesWide, RaggedCountsMatchU64) {
  const DutNetlist dut = build_circuit("rca8");
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  const OperatingTriad stressed{0.65 * cp, 0.9, 0.0};
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{255}, std::size_t{257}, std::size_t{511},
        std::size_t{513}}) {
    SCOPED_TRACE(count);
    expect_streaming_matches_u64(dut, stressed, 256, count, 5 + count);
    expect_streaming_matches_u64(dut, stressed, 512, count, 5 + count);
  }
}

// ---- Characterizer sweep fast path (step_batch_sweep) ---------------

void expect_triads_equal(const std::vector<TriadResult>& want,
                         const std::vector<TriadResult>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t t = 0; t < want.size(); ++t) {
    ASSERT_DOUBLE_EQ(want[t].ber, got[t].ber) << t;
    ASSERT_EQ(want[t].bitwise_ber.size(), got[t].bitwise_ber.size()) << t;
    for (std::size_t j = 0; j < want[t].bitwise_ber.size(); ++j)
      ASSERT_DOUBLE_EQ(want[t].bitwise_ber[j], got[t].bitwise_ber[j])
          << t << " " << j;
    ASSERT_DOUBLE_EQ(want[t].op_error_rate, got[t].op_error_rate) << t;
    ASSERT_DOUBLE_EQ(want[t].mse, got[t].mse) << t;
    ASSERT_DOUBLE_EQ(want[t].mred, got[t].mred) << t;
    ASSERT_DOUBLE_EQ(want[t].energy_per_op_fj, got[t].energy_per_op_fj)
        << t;
    ASSERT_DOUBLE_EQ(want[t].dynamic_energy_fj, got[t].dynamic_energy_fj)
        << t;
    ASSERT_DOUBLE_EQ(want[t].leakage_energy_fj, got[t].leakage_energy_fj)
        << t;
    ASSERT_DOUBLE_EQ(want[t].mean_settle_ps, got[t].mean_settle_ps) << t;
    ASSERT_EQ(want[t].patterns, got[t].patterns) << t;
  }
}

// The whole-grid sweep (multi-threshold subset accounting) produces
// bit-identical statistics at every lane width. threads = 1 pins the
// segmentation so the FP merge order is width-invariant too.
TEST(LanesWide, CharacterizeSweepMatchesU64) {
  const DutNetlist dut = build_circuit("mul8-array");
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  const std::vector<OperatingTriad> triads = {
      {1.2 * cp, 1.0, 0.0}, {0.9 * cp, 1.0, 0.0},
      {0.75 * cp, 0.9, 0.0}, {0.6 * cp, 0.8, 0.0}};
  CharacterizeConfig cfg;
  cfg.num_patterns = 700;
  cfg.engine = EngineKind::kLevelized;
  cfg.threads = 1;

  cfg.lane_width = 64;
  const auto want = characterize_dut(dut, lib(), triads, cfg);
  for (const std::size_t width : {std::size_t{256}, std::size_t{512}}) {
    SCOPED_TRACE(width);
    cfg.lane_width = width;
    expect_triads_equal(want, characterize_dut(dut, lib(), triads, cfg));
  }
}

// ---- Sequential pipelines: cross-width step_cycle_batch -------------

std::vector<std::uint64_t> random_seq_operands(const SeqDut& seq,
                                               std::size_t cycles,
                                               std::uint64_t seed) {
  const std::size_t nops = seq.num_operands();
  std::vector<std::uint64_t> ops(cycles * nops);
  Rng rng(seed);
  for (std::size_t c = 0; c < cycles; ++c)
    for (std::size_t o = 0; o < nops; ++o)
      ops[c * nops + o] = rng.bits(seq.operand_width(o));
  return ops;
}

/// Runs the same clocked stream through a 64-lane and a `width`-lane
/// pipeline and asserts every per-cycle field and every stage monitor
/// statistic matches exactly.
void expect_seq_matches_u64(const SeqDut& seq, const OperatingTriad& op,
                            std::size_t width, std::size_t cycles,
                            std::uint64_t seed) {
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;
  cfg.lane_width = 64;
  SeqSim base(seq, lib(), op, cfg);
  cfg.lane_width = width;
  SeqSim wide(seq, lib(), op, cfg);

  const std::vector<std::uint64_t> ops =
      random_seq_operands(seq, cycles, seed);
  std::vector<SeqCycleResult> want(cycles);
  std::vector<SeqCycleResult> got(cycles);
  base.step_cycle_batch(ops, cycles, want);
  wide.step_cycle_batch(ops, cycles, got);

  for (std::size_t c = 0; c < cycles; ++c) {
    ASSERT_EQ(want[c].output_valid, got[c].output_valid) << c;
    ASSERT_EQ(want[c].captured, got[c].captured) << c;
    ASSERT_EQ(want[c].expected, got[c].expected) << c;
    ASSERT_EQ(want[c].razor_flags, got[c].razor_flags) << c;
    ASSERT_DOUBLE_EQ(want[c].energy_fj, got[c].energy_fj) << c;
    ASSERT_DOUBLE_EQ(want[c].max_settle_ps, got[c].max_settle_ps) << c;
  }
  for (std::size_t k = 0; k < seq.num_stages(); ++k) {
    const DoubleSamplingMonitor& mb = base.stage_monitor(k);
    const DoubleSamplingMonitor& mw = wide.stage_monitor(k);
    EXPECT_EQ(mb.total_ops(), mw.total_ops()) << k;
    EXPECT_EQ(mb.total_flagged_ops(), mw.total_flagged_ops()) << k;
    EXPECT_DOUBLE_EQ(mb.lifetime_ber(), mw.lifetime_ber()) << k;
    EXPECT_EQ(mb.window_fill(), mw.window_fill()) << k;
    EXPECT_DOUBLE_EQ(mb.window_ber(), mw.window_ber()) << k;
    EXPECT_DOUBLE_EQ(mb.window_op_error_rate(),
                     mw.window_op_error_rate())
        << k;
  }
}

// Every registry pipeline at both wide widths over the error-onset
// band; 130 cycles exercises the chunked recurrence with a ragged
// tail at every width.
TEST(LanesWide, SeqBatchMatchesU64AcrossRegistryAndOnsetBand) {
  for (const std::string& spec : seq_circuit_registry()) {
    const SeqDut seq = build_seq_circuit(spec);
    const double cp = seq_critical_path_ns(seq, lib());
    const std::vector<OperatingTriad> band = {
        {1.1 * cp, 1.0, 0.0},   // error-free
        {0.85 * cp, 1.0, 0.0},  // onset knee
        {0.6 * cp, 0.9, 0.0},   // saturated over-scale
    };
    for (const OperatingTriad& op : band) {
      SCOPED_TRACE(spec);
      expect_seq_matches_u64(seq, op, 256, 130, 99);
      expect_seq_matches_u64(seq, op, 512, 130, 99);
    }
  }
}

// Ragged cycle counts around the wide word boundaries (lane k launches
// from lane k-1's truncated state, so the chunk seams must be exact).
TEST(LanesWide, SeqRaggedCountsMatchU64) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  const OperatingTriad op{0.8 * cp, 1.0, 0.0};
  for (const std::size_t cycles :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{255}, std::size_t{257}, std::size_t{511},
        std::size_t{513}}) {
    SCOPED_TRACE(cycles);
    expect_seq_matches_u64(seq, op, 256, cycles, 7 + cycles);
    expect_seq_matches_u64(seq, op, 512, cycles, 7 + cycles);
  }
}

// ---- Sequential characterizer incl. the saturation probe ------------

// The normalized grid fast path — reference run, truncation-free
// synthesis, saturated-probe early exit — must take the same decisions
// and produce bit-identical results at every width. `patterns` equality
// confirms the probe tripped (or not) identically.
TEST(LanesWide, CharacterizeSeqWithSaturationProbeMatchesU64) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  const std::vector<OperatingTriad> triads = {
      {1.2 * cp, 1.0, 0.0},   // provably truncation-free (synthesized)
      {0.85 * cp, 1.0, 0.0},  // onset: full replay
      {0.55 * cp, 0.9, 0.0},  // saturated: probe early exit
  };
  CharacterizeConfig cfg;
  cfg.num_patterns = 400;
  cfg.engine = EngineKind::kLevelized;
  cfg.threads = 1;

  cfg.lane_width = 64;
  const auto want = characterize_seq_dut(seq, lib(), triads, cfg);
  for (const std::size_t width : {std::size_t{256}, std::size_t{512}}) {
    SCOPED_TRACE(width);
    cfg.lane_width = width;
    expect_triads_equal(want,
                        characterize_seq_dut(seq, lib(), triads, cfg));
  }
}

}  // namespace
}  // namespace vosim
