// Runtime module tests: double-sampling monitor, Pareto triad ladder,
// dynamic speculation controller and the adaptive adder integration.
#include <gtest/gtest.h>

#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/runtime/adaptive_unit.hpp"
#include "src/runtime/error_monitor.hpp"
#include "src/runtime/speculation.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

// ----------------------------------------------------------------- monitor
TEST(Monitor, ExactWindowBer) {
  DoubleSamplingMonitor mon(8, 4);
  mon.observe(0b00000000, 0b00000011);  // 2 flagged bits
  mon.observe(0b11110000, 0b11110000);  // 0
  mon.observe(0b00000001, 0b00000000);  // 1
  EXPECT_DOUBLE_EQ(mon.window_ber(), 3.0 / (3 * 8));
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 2.0 / 3.0);
  EXPECT_FALSE(mon.window_full());
  mon.observe(0, 0);
  EXPECT_TRUE(mon.window_full());
}

TEST(Monitor, SlidingWindowEvictsOldest) {
  DoubleSamplingMonitor mon(8, 2);
  mon.observe(0, 0xFF);  // 8 errors
  mon.observe(0, 0);     // 0
  mon.observe(0, 0);     // 0 -> the 8-error op falls out
  EXPECT_DOUBLE_EQ(mon.window_ber(), 0.0);
  EXPECT_EQ(mon.total_flagged_ops(), 1u);
  EXPECT_DOUBLE_EQ(mon.lifetime_ber(), 8.0 / (3 * 8));
}

TEST(Monitor, ResetWindowKeepsLifetime) {
  DoubleSamplingMonitor mon(4, 8);
  mon.observe(0, 0xF);
  mon.reset_window();
  EXPECT_DOUBLE_EQ(mon.window_ber(), 0.0);
  EXPECT_EQ(mon.total_ops(), 1u);
  EXPECT_GT(mon.lifetime_ber(), 0.0);
}

TEST(Monitor, Validation) {
  EXPECT_THROW(DoubleSamplingMonitor(0, 4), ContractViolation);
  EXPECT_THROW(DoubleSamplingMonitor(8, 0), ContractViolation);
}

// ------------------------------------------------------------------ ladder
std::vector<TriadResult> fake_results() {
  auto mk = [](double tclk, double vdd, double ber, double e) {
    TriadResult r;
    r.triad = {tclk, vdd, 0.0};
    r.ber = ber;
    r.energy_per_op_fj = e;
    return r;
  };
  return {
      mk(0.5, 1.0, 0.00, 100.0), mk(0.4, 0.9, 0.00, 80.0),
      mk(0.4, 0.8, 0.02, 60.0),  mk(0.4, 0.7, 0.01, 70.0),
      mk(0.3, 0.6, 0.10, 40.0),  mk(0.3, 0.5, 0.30, 30.0),
      mk(0.3, 0.9, 0.40, 90.0),  // dominated: expensive and bad
  };
}

TEST(Ladder, ParetoFrontierStructure) {
  const auto ladder = build_triad_ladder(fake_results());
  ASSERT_GE(ladder.size(), 2u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    // Energy strictly decreasing, BER strictly increasing along rungs.
    EXPECT_LT(ladder[i].energy_per_op_fj, ladder[i - 1].energy_per_op_fj);
    EXPECT_GT(ladder[i].expected_ber, ladder[i - 1].expected_ber);
  }
  // The dominated 90fJ/0.40 triad must not appear.
  for (const TriadRung& r : ladder)
    EXPECT_FALSE(r.energy_per_op_fj == 90.0 && r.expected_ber == 0.40);
  // The cheapest error-free triad must be the safest rung.
  EXPECT_DOUBLE_EQ(ladder.front().expected_ber, 0.0);
  EXPECT_DOUBLE_EQ(ladder.front().energy_per_op_fj, 80.0);
}

TEST(Ladder, EmptyRejected) {
  EXPECT_THROW(build_triad_ladder({}), ContractViolation);
}

TEST(Ladder, EqualEnergyTieKeepsOnlyLowerBer) {
  auto mk = [](double ber, double e) {
    TriadResult r;
    r.triad = {0.4, 0.8, 0.0};
    r.ber = ber;
    r.energy_per_op_fj = e;
    return r;
  };
  // Two rungs at exactly the same energy: only the lower-BER one may
  // survive the Pareto filter.
  const auto ladder = build_triad_ladder({mk(0.5, 60.0), mk(0.1, 60.0)});
  ASSERT_EQ(ladder.size(), 1u);
  EXPECT_DOUBLE_EQ(ladder[0].expected_ber, 0.1);
}

TEST(Ladder, NearEqualEnergyTieCollapses) {
  auto mk = [](double ber, double e) {
    TriadResult r;
    r.triad = {0.4, 0.8, 0.0};
    r.ber = ber;
    r.energy_per_op_fj = e;
    return r;
  };
  // Energies differing only by floating-point rounding noise are one
  // rung: without a tolerance the lower-BER-but-epsilon-more-expensive
  // triad would coexist with the worse one.
  const double e = 60.0;
  const auto ladder =
      build_triad_ladder({mk(0.5, e), mk(0.1, e * (1.0 + 1e-12))});
  ASSERT_EQ(ladder.size(), 1u);
  EXPECT_DOUBLE_EQ(ladder[0].expected_ber, 0.1);
  // And the collapse keeps the ladder monotone when flanked by real
  // rungs on both sides.
  auto full = std::vector<TriadResult>{
      mk(0.0, 100.0), mk(0.5, e), mk(0.1, e * (1.0 + 1e-12)),
      mk(0.9, 20.0)};
  const auto ladder2 = build_triad_ladder(full);
  ASSERT_EQ(ladder2.size(), 3u);
  for (std::size_t i = 1; i < ladder2.size(); ++i) {
    EXPECT_LT(ladder2[i].energy_per_op_fj,
              ladder2[i - 1].energy_per_op_fj);
    EXPECT_GT(ladder2[i].expected_ber, ladder2[i - 1].expected_ber);
  }
}

// --------------------------------------------- monitor edge cases
TEST(Monitor, SingleOpWindow) {
  // A window of one operation: every observation replaces the estimate.
  DoubleSamplingMonitor mon(8, 1);
  mon.observe(0, 0xFF);
  EXPECT_TRUE(mon.window_full());
  EXPECT_DOUBLE_EQ(mon.window_ber(), 1.0);
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 1.0);
  mon.observe(0, 0);
  EXPECT_DOUBLE_EQ(mon.window_ber(), 0.0);
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 0.0);
  EXPECT_EQ(mon.total_ops(), 2u);
}

TEST(Monitor, Width63Masks) {
  // 63-bit words (max_word_bits): a flip in bit 62 counts, a flip in
  // bit 63 — outside the compared word — must not.
  DoubleSamplingMonitor mon(63, 4);
  mon.observe(0, 1ULL << 62);
  EXPECT_DOUBLE_EQ(mon.window_ber(), 1.0 / 63.0);
  mon.observe(0, 1ULL << 63);
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 0.5);
  EXPECT_EQ(mon.total_flagged_ops(), 1u);
  // All 63 bits wrong in one op saturates that op's contribution.
  DoubleSamplingMonitor full(63, 2);
  full.observe(0, ~0ULL >> 1);
  EXPECT_DOUBLE_EQ(full.window_ber(), 1.0);
}

TEST(Monitor, FlaggedOpVsFlaggedBitDivergence) {
  // One op with three bad bits vs three ops with one bad bit each:
  // identical BER, very different op-error rates — the two signals the
  // closed-loop controller must not conflate.
  DoubleSamplingMonitor burst(8, 8);
  burst.observe(0, 0b111);
  burst.observe(0, 0);
  burst.observe(0, 0);
  DoubleSamplingMonitor spread(8, 8);
  spread.observe(0, 0b001);
  spread.observe(0, 0b010);
  spread.observe(0, 0b100);
  EXPECT_DOUBLE_EQ(burst.window_ber(), spread.window_ber());
  EXPECT_DOUBLE_EQ(burst.window_op_error_rate(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(spread.window_op_error_rate(), 1.0);
}

TEST(Monitor, ResetBetweenCampaigns) {
  // A monitor reused across campaigns: reset_window isolates the new
  // campaign's window statistics while lifetime counters keep growing.
  DoubleSamplingMonitor mon(8, 4);
  for (int i = 0; i < 6; ++i) mon.observe(0, 0xFF);
  EXPECT_TRUE(mon.window_full());
  mon.reset_window();
  EXPECT_EQ(mon.window_fill(), 0u);
  EXPECT_FALSE(mon.window_full());
  EXPECT_DOUBLE_EQ(mon.window_ber(), 0.0);
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 0.0);
  EXPECT_EQ(mon.total_ops(), 6u);
  EXPECT_EQ(mon.total_flagged_ops(), 6u);
  // The next campaign's observations rebuild the window from scratch.
  mon.observe(0, 0);
  mon.observe(0, 1);
  EXPECT_EQ(mon.window_fill(), 2u);
  EXPECT_DOUBLE_EQ(mon.window_op_error_rate(), 0.5);
  EXPECT_DOUBLE_EQ(mon.lifetime_ber(), (6.0 * 8 + 1) / (8.0 * 8));
}

// -------------------------------------------------------------- controller
std::vector<TriadRung> synthetic_ladder() {
  return {
      {{0.5, 1.0, 0.0}, 0.000, 100.0},
      {{0.4, 0.8, 0.0}, 0.010, 60.0},
      {{0.3, 0.6, 0.0}, 0.040, 40.0},
      {{0.3, 0.5, 0.0}, 0.200, 25.0},
  };
}

/// Simulates running the controller where each rung has its true BER.
std::size_t run_controller(DynamicSpeculationController& ctl,
                           std::uint64_t seed, int ops) {
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    // Draw per-bit flags according to the current rung's BER.
    const double ber = ctl.current().expected_ber;
    std::uint64_t settled = 0;
    std::uint64_t sampled = 0;
    for (int bit = 0; bit < 9; ++bit)
      if (rng.flip(ber)) sampled |= (1ULL << bit);
    ctl.observe(sampled, settled);
  }
  return ctl.rung_index();
}

TEST(Controller, ConvergesToCheapestFeasibleRung) {
  SpeculationConfig cfg;
  cfg.ber_margin = 0.05;
  cfg.window_ops = 256;
  cfg.min_dwell_ops = 256;
  DynamicSpeculationController ctl(synthetic_ladder(), 9, cfg);
  const std::size_t rung = run_controller(ctl, 42, 20000);
  // Rung 2 (BER 0.04) fits the 5% margin; rung 3 (0.20) does not.
  EXPECT_EQ(rung, 2u);
}

TEST(Controller, TightMarginStaysSafe) {
  SpeculationConfig cfg;
  cfg.ber_margin = 0.004;
  cfg.window_ops = 256;
  cfg.min_dwell_ops = 256;
  DynamicSpeculationController ctl(synthetic_ladder(), 9, cfg);
  const std::size_t rung = run_controller(ctl, 43, 20000);
  EXPECT_EQ(rung, 0u);  // only the error-free rung fits
}

TEST(Controller, LooseMarginGoesAggressive) {
  SpeculationConfig cfg;
  cfg.ber_margin = 0.5;
  cfg.window_ops = 128;
  cfg.min_dwell_ops = 128;
  DynamicSpeculationController ctl(synthetic_ladder(), 9, cfg);
  const std::size_t rung = run_controller(ctl, 44, 20000);
  EXPECT_EQ(rung, synthetic_ladder().size() - 1);
}

TEST(Controller, HysteresisLimitsFlapping) {
  SpeculationConfig cfg;
  cfg.ber_margin = 0.05;
  cfg.window_ops = 256;
  cfg.min_dwell_ops = 512;
  DynamicSpeculationController ctl(synthetic_ladder(), 9, cfg);
  run_controller(ctl, 45, 30000);
  // Walking down the ladder takes 2 switches; allow a few corrections
  // but far fewer than constant oscillation.
  EXPECT_LE(ctl.switches(), 8u);
}

TEST(Controller, BacksOffWhenErrorsSpike) {
  SpeculationConfig cfg;
  cfg.ber_margin = 0.05;
  cfg.window_ops = 128;
  cfg.min_dwell_ops = 128;
  // Start the ladder at an infeasible rung by giving only bad rungs
  // below the first.
  std::vector<TriadRung> ladder{
      {{0.5, 1.0, 0.0}, 0.00, 100.0},
      {{0.3, 0.5, 0.0}, 0.30, 25.0},
  };
  DynamicSpeculationController ctl(ladder, 9, cfg);
  // The controller never steps down because rung 1's prior exceeds the
  // margin.
  const std::size_t rung = run_controller(ctl, 46, 5000);
  EXPECT_EQ(rung, 0u);
  // Force it down by pretending the prior was fine.
  std::vector<TriadRung> lying{
      {{0.5, 1.0, 0.0}, 0.00, 100.0},
      {{0.3, 0.5, 0.0}, 0.01, 25.0},  // prior says fine; reality: 30%
  };
  DynamicSpeculationController ctl2(lying, 9, cfg);
  Rng rng(47);
  std::size_t deepest = 0;
  bool recovered = false;
  for (int i = 0; i < 20000; ++i) {
    const double real_ber = ctl2.rung_index() == 0 ? 0.0 : 0.30;
    std::uint64_t sampled = 0;
    for (int bit = 0; bit < 9; ++bit)
      if (rng.flip(real_ber)) sampled |= (1ULL << bit);
    ctl2.observe(sampled, 0);
    deepest = std::max(deepest, ctl2.rung_index());
    if (deepest > 0 && ctl2.rung_index() == 0) recovered = true;
  }
  EXPECT_EQ(deepest, 1u);   // it tried the cheap rung
  EXPECT_TRUE(recovered);   // and backed off when reality disagreed
}

TEST(Controller, Validation) {
  EXPECT_THROW(DynamicSpeculationController({}, 9), ContractViolation);
  SpeculationConfig bad;
  bad.ber_margin = 2.0;
  EXPECT_THROW(DynamicSpeculationController(synthetic_ladder(), 9, bad),
               ContractViolation);
}

// ----------------------------------------------------------- adaptive unit
TEST(AdaptiveUnitTest, WalksDownLadderAndSavesEnergy) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib, {1, 1.0, 0.0}).critical_path_ps * 1e-3;

  std::vector<TriadRung> ladder{
      {{cp_ns * 1.6, 1.0, 0.0}, 0.0, 0.0},
      {{cp_ns * 1.6, 0.8, 2.0}, 0.0, 0.0},  // FBB: still error-free
  };
  SpeculationConfig cfg;
  cfg.ber_margin = 0.05;
  cfg.window_ops = 64;
  cfg.min_dwell_ops = 64;
  AdaptiveVosUnit adder(rca, lib, ladder, cfg);

  Rng rng(48);
  std::size_t final_rung = 0;
  for (int i = 0; i < 1000; ++i) {
    const AdaptiveOpResult r = adder.apply(rng.bits(8), rng.bits(8));
    final_rung = r.rung;
  }
  EXPECT_EQ(final_rung, 1u);  // moved to the cheaper error-free rung
  EXPECT_GT(adder.controller().switches(), 0u);
  EXPECT_GT(adder.mean_energy_fj(), 0.0);
}

TEST(AdaptiveUnitTest, RespectsMarginUnderRealErrors) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib, {1, 1.0, 0.0}).critical_path_ps * 1e-3;

  // Second rung is deep VOS with massive BER; prior pretends it's okay,
  // the monitor must bounce back up.
  std::vector<TriadRung> ladder{
      {{cp_ns * 1.6, 1.0, 0.0}, 0.0, 0.0},
      {{cp_ns * 1.6, 0.5, 0.0}, 0.01, 0.0},
  };
  SpeculationConfig cfg;
  cfg.ber_margin = 0.02;
  cfg.window_ops = 64;
  cfg.min_dwell_ops = 64;
  AdaptiveVosUnit adder(rca, lib, ladder, cfg);
  Rng rng(49);
  std::size_t deepest = 0;
  int ops_on_risky_rung = 0;
  for (int i = 0; i < 3000; ++i) {
    const AdaptiveOpResult r = adder.apply(rng.bits(8), rng.bits(8));
    deepest = std::max(deepest, r.rung);
    if (r.rung == 1) ++ops_on_risky_rung;
  }
  EXPECT_EQ(deepest, 1u);  // it probed the cheap rung...
  // ...but the monitor kept pulling it back: the majority of operations
  // run on the safe rung despite the optimistic prior.
  EXPECT_LT(ops_on_risky_rung, 1500);
  EXPECT_GT(adder.controller().switches(), 1u);
}

}  // namespace
}  // namespace vosim
