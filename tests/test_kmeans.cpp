// K-means application tests with exact and degraded adders.
#include <gtest/gtest.h>

#include "src/apps/kmeans.hpp"
#include "src/model/prob_table.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

VosAdderModel truncating_model(int width, int window) {
  const auto n = static_cast<std::size_t>(width) + 1;
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));
  for (int l = 0; l <= width; ++l)
    counts[static_cast<std::size_t>(l)]
          [static_cast<std::size_t>(std::min(l, window))] = 1;
  return VosAdderModel(width, {0.3, 0.5, 0.0}, DistanceMetric::kMse,
                       CarryChainProbTable::from_counts(width, counts));
}

TEST(Kmeans, DatasetShape) {
  const ClusterDataset data = make_cluster_dataset(4, 50, 1);
  EXPECT_EQ(data.points.size(), 200u);
  EXPECT_EQ(data.true_label.size(), 200u);
  EXPECT_EQ(data.true_center.size(), 4u);
  // Deterministic per seed.
  const ClusterDataset again = make_cluster_dataset(4, 50, 1);
  EXPECT_EQ(data.points[17].x, again.points[17].x);
}

TEST(Kmeans, ExactAdderRecoversClusters) {
  const ClusterDataset data = make_cluster_dataset(4, 60, 2);
  const KmeansResult res = kmeans(data.points, 4, exact_adder_fn(16));
  EXPECT_TRUE(res.converged);
  EXPECT_GE(clustering_accuracy(data, res.assignment), 0.95);
}

TEST(Kmeans, PerfectAccuracyOnSelfLabels) {
  const ClusterDataset data = make_cluster_dataset(3, 20, 3);
  EXPECT_DOUBLE_EQ(clustering_accuracy(data, data.true_label), 1.0);
}

TEST(Kmeans, AccuracyHandlesPermutedLabels) {
  const ClusterDataset data = make_cluster_dataset(3, 20, 4);
  std::vector<int> permuted = data.true_label;
  for (int& l : permuted) l = (l + 1) % 3;
  EXPECT_DOUBLE_EQ(clustering_accuracy(data, permuted), 1.0);
}

TEST(Kmeans, MildVosBarelyHurtsClustering) {
  // Clustering is the paper's poster child for error resilience: with a
  // mild carry truncation the assignment accuracy stays high.
  const ClusterDataset data = make_cluster_dataset(4, 60, 5);
  const VosAdderModel model = truncating_model(16, 9);
  Rng rng(6);
  const AdderFn add = model_adder_fn(model, rng);
  const KmeansResult res = kmeans(data.points, 4, add);
  EXPECT_GE(clustering_accuracy(data, res.assignment), 0.90);
}

TEST(Kmeans, DeepVosDegradesClustering) {
  const ClusterDataset data = make_cluster_dataset(4, 60, 7);
  const VosAdderModel model = truncating_model(16, 2);  // savage truncation
  Rng rng(8);
  const AdderFn add = model_adder_fn(model, rng);
  const KmeansResult res = kmeans(data.points, 4, add, 16);
  const double acc = clustering_accuracy(data, res.assignment);
  const KmeansResult exact = kmeans(data.points, 4, exact_adder_fn(16));
  EXPECT_LT(acc, clustering_accuracy(data, exact.assignment) + 1e-12);
}

TEST(Kmeans, Validation) {
  const ClusterDataset data = make_cluster_dataset(2, 5, 9);
  EXPECT_THROW(kmeans(data.points, 100, exact_adder_fn(16)),
               ContractViolation);
  EXPECT_THROW(make_cluster_dataset(1, 5, 1), ContractViolation);
  std::vector<int> wrong(3, 0);
  EXPECT_THROW(clustering_accuracy(data, wrong), ContractViolation);
}

}  // namespace
}  // namespace vosim
