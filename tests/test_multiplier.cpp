// Functional verification of the array multiplier.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/netlist/multiplier.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/sim/logic.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

std::uint64_t functional_mul(const MultiplierNetlist& mul, std::uint64_t a,
                             std::uint64_t b) {
  std::vector<std::uint8_t> inputs(mul.netlist.primary_inputs().size(), 0);
  for (int i = 0; i < mul.width; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((a >> i) & 1u);
    inputs[static_cast<std::size_t>(mul.width + i)] =
        static_cast<std::uint8_t>((b >> i) & 1u);
  }
  const auto values = evaluate_logic(mul.netlist, inputs);
  return pack_word(values, mul.prod);
}

using MulParam = std::tuple<int, bool>;  // width, wallace?
class MultiplierTest : public ::testing::TestWithParam<MulParam> {};

TEST_P(MultiplierTest, MatchesMultiplication) {
  const auto [width, wallace] = GetParam();
  const MultiplierNetlist mul = wallace ? build_wallace_multiplier(width)
                                        : build_array_multiplier(width);
  ASSERT_EQ(mul.prod.size(), static_cast<std::size_t>(2 * width));

  if (width <= 5) {
    const std::uint64_t n = 1ULL << width;
    for (std::uint64_t a = 0; a < n; ++a)
      for (std::uint64_t b = 0; b < n; ++b)
        ASSERT_EQ(functional_mul(mul, a, b), a * b)
            << width << "-bit " << a << "*" << b;
  } else {
    Rng rng(404 + static_cast<std::uint64_t>(width));
    for (int t = 0; t < 2000; ++t) {
      const std::uint64_t a = rng.bits(width);
      const std::uint64_t b = rng.bits(width);
      ASSERT_EQ(functional_mul(mul, a, b), a * b)
          << width << "-bit " << a << "*" << b;
    }
    const std::uint64_t m = mask_n(width);
    ASSERT_EQ(functional_mul(mul, m, m), m * m);
    ASSERT_EQ(functional_mul(mul, m, 0), 0u);
    ASSERT_EQ(functional_mul(mul, m, 1), m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, MultiplierTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 8, 12, 16),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<MulParam>& info) {
      return std::string(std::get<1>(info.param) ? "wallace" : "array") +
             std::to_string(std::get<0>(info.param));
    });

TEST(WallaceMultiplier, ShallowerThanArray) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const MultiplierNetlist arr = build_array_multiplier(8);
  const MultiplierNetlist wal = build_wallace_multiplier(8);
  const double cp_arr =
      analyze_timing(arr.netlist, lib, {1, 1.0, 0.0}).critical_path_ps;
  const double cp_wal =
      analyze_timing(wal.netlist, lib, {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_LT(cp_wal, cp_arr);
}

TEST(MultiplierBuilder, WidthBounds) {
  EXPECT_THROW(build_array_multiplier(1), ContractViolation);
  EXPECT_THROW(build_array_multiplier(17), ContractViolation);
}

TEST(MultiplierBuilder, GateCountScalesQuadratically) {
  const auto m4 = build_array_multiplier(4);
  const auto m8 = build_array_multiplier(8);
  // Partial products alone are width^2 AND gates.
  EXPECT_GE(m8.netlist.num_gates(), 3.0 * m4.netlist.num_gates());
}

}  // namespace
}  // namespace vosim
