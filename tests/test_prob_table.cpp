// Probability-table tests: stochastic structure, sampling fidelity and
// serialization round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "src/model/prob_table.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

TEST(ProbTable, IdentityByDefault) {
  const CarryChainProbTable t(8);
  EXPECT_TRUE(t.is_identity());
  for (int l = 0; l <= 8; ++l) {
    EXPECT_DOUBLE_EQ(t.prob(l, l), 1.0);
    EXPECT_DOUBLE_EQ(t.expected(l), static_cast<double>(l));
  }
}

TEST(ProbTable, FromCountsNormalizesColumns) {
  const int w = 4;
  std::vector<std::vector<std::uint64_t>> counts(
      5, std::vector<std::uint64_t>(5, 0));
  counts[3][3] = 6;  // P(3|3) = 0.6
  counts[3][2] = 2;  // P(2|3) = 0.2
  counts[3][0] = 2;  // P(0|3) = 0.2
  const CarryChainProbTable t = CarryChainProbTable::from_counts(w, counts);
  EXPECT_DOUBLE_EQ(t.prob(3, 3), 0.6);
  EXPECT_DOUBLE_EQ(t.prob(2, 3), 0.2);
  EXPECT_DOUBLE_EQ(t.prob(0, 3), 0.2);
  EXPECT_DOUBLE_EQ(t.prob(1, 3), 0.0);
  // Untouched columns stay identity.
  EXPECT_DOUBLE_EQ(t.prob(2, 2), 1.0);
  // Column sums are 1.
  for (int l = 0; l <= w; ++l) {
    double sum = 0.0;
    for (int k = 0; k <= w; ++k) sum += t.prob(k, l);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "column " << l;
  }
  EXPECT_NEAR(t.expected(3), 0.6 * 3 + 0.2 * 2, 1e-12);
}

TEST(ProbTable, UpperTriangleRejected) {
  std::vector<std::vector<std::uint64_t>> counts(
      5, std::vector<std::uint64_t>(5, 0));
  counts[2][4] = 1;  // P(4|2): chain longer than theoretical — invalid
  EXPECT_THROW(CarryChainProbTable::from_counts(4, counts),
               ContractViolation);
}

TEST(ProbTable, SamplingTracksDistribution) {
  std::vector<std::vector<std::uint64_t>> counts(
      9, std::vector<std::uint64_t>(9, 0));
  counts[8][8] = 50;
  counts[8][4] = 30;
  counts[8][0] = 20;
  const CarryChainProbTable t = CarryChainProbTable::from_counts(8, counts);
  Rng rng(42);
  int histogram[9] = {0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++histogram[t.sample(8, rng)];
  EXPECT_NEAR(histogram[8] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(histogram[4] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_EQ(histogram[1] + histogram[2] + histogram[3] + histogram[5] +
                histogram[6] + histogram[7],
            0);
}

TEST(ProbTable, SampleNeverExceedsCth) {
  const CarryChainProbTable t(8);
  Rng rng(5);
  for (int l = 0; l <= 8; ++l)
    for (int i = 0; i < 100; ++i) EXPECT_LE(t.sample(l, rng), l);
}

TEST(ProbTable, SaveLoadRoundTrip) {
  std::vector<std::vector<std::uint64_t>> counts(
      5, std::vector<std::uint64_t>(5, 0));
  counts[4][4] = 7;
  counts[4][1] = 3;
  counts[2][2] = 1;
  const CarryChainProbTable t = CarryChainProbTable::from_counts(4, counts);
  std::stringstream ss;
  t.save(ss);
  const CarryChainProbTable u = CarryChainProbTable::load(ss);
  EXPECT_EQ(u.width(), 4);
  for (int l = 0; l <= 4; ++l)
    for (int k = 0; k <= 4; ++k)
      EXPECT_NEAR(u.prob(k, l), t.prob(k, l), 1e-12);
}

TEST(ProbTable, LoadRejectsGarbage) {
  std::stringstream ss("not_a_table v1 4\n");
  EXPECT_THROW(CarryChainProbTable::load(ss), std::runtime_error);
  std::stringstream truncated("carry_chain_prob_table v1 4\n0.5 0.5");
  EXPECT_THROW(CarryChainProbTable::load(truncated), std::runtime_error);
}

TEST(ProbTable, ToTableHasPaperShape) {
  const CarryChainProbTable t(4);
  const TextTable tt = t.to_table();
  EXPECT_EQ(tt.row_count(), 5u);  // Cmax rows 0..4 (Table I layout)
}

TEST(ProbTable, WidthValidated) {
  EXPECT_THROW(CarryChainProbTable(0), ContractViolation);
  EXPECT_THROW(CarryChainProbTable(64), ContractViolation);
}

}  // namespace
}  // namespace vosim
