// Sweep-daemon tests: in-process CampaignServer on a Unix socket,
// concurrent campaign requests, equivalence of the streamed cells with
// an offline run of the same grid, malformed-request and mid-stream
// disconnect survival, and the stats introspection verb.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/server.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

/// Short socket path: sockaddr_un caps at ~100 chars and TempDir can
/// be long, so sockets live under /tmp with the test pid mixed in.
std::string socket_path(const std::string& tag) {
  return "/tmp/vosim_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(CampaignServer, PingAndShutdownRoundTrip) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("ping");
  CampaignServer server(lib(), cfg);
  server.start();
  EXPECT_TRUE(server.running());

  const auto pong = send_request(cfg.socket_path, "{\"cmd\":\"ping\"}");
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0], "{\"ok\":true,\"cmd\":\"ping\"}");

  const auto bad = send_request(cfg.socket_path, "{\"cmd\":\"nope\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("\"error\""), std::string::npos);

  const auto ack =
      send_request(cfg.socket_path, "{\"cmd\":\"shutdown\"}");
  ASSERT_EQ(ack.size(), 1u);
  EXPECT_EQ(ack[0], "{\"ok\":true,\"cmd\":\"shutdown\"}");
  server.wait();  // returns because shutdown was served
  server.stop();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(CampaignServer, ConcurrentRequestsMatchOfflineExecution) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("campaign");
  CampaignServer server(lib(), cfg);
  server.start();

  const std::string req1 =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800,\"chips\":2}";
  const std::string req2 =
      "{\"cmd\":\"campaign\",\"workloads\":\"dot\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800,\"chips\":2}";

  std::vector<std::string> r1, r2;
  std::thread t1(
      [&] { r1 = send_request(cfg.socket_path, req1); });
  std::thread t2(
      [&] { r2 = send_request(cfg.socket_path, req2); });
  t1.join();
  t2.join();
  server.stop();

  // Each stream: 2 triads x 2 chips = 4 cells plus the done footer.
  ASSERT_EQ(r1.size(), 5u);
  ASSERT_EQ(r2.size(), 5u);
  EXPECT_NE(r1.back().find("\"done\":true,\"cells\":4"),
            std::string::npos);
  EXPECT_NE(r2.back().find("\"done\":true,\"cells\":4"),
            std::string::npos);

  // Offline reference: the same grids through run_campaign. The
  // daemon streams the stored cell form, so everything but the
  // wall-clock elapsed_s must match byte-for-byte.
  CampaignConfig offline;
  offline.circuits = {"rca16"};
  offline.backends = {ArithBackend::kModel};
  offline.max_triads = 2;
  offline.characterize_patterns = 300;
  offline.train_patterns = 800;
  offline.fleet.num_chips = 2;
  const auto strip = [](const std::string& line) {
    return line.substr(0, line.find("\"elapsed_s\""));
  };
  const std::vector<std::string>* streams[] = {&r1, &r2};
  const char* workloads[] = {"fir", "dot"};
  for (int i = 0; i < 2; ++i) {
    offline.workloads = {workloads[i]};
    CampaignStore store;
    const CampaignOutcome outcome = run_campaign(lib(), offline, store);
    ASSERT_EQ(outcome.cells.size(), 4u);
    for (std::size_t c = 0; c < outcome.cells.size(); ++c) {
      const auto stored = store.find(outcome.cells[c].key);
      ASSERT_TRUE(stored.has_value());
      EXPECT_EQ(strip((*streams[i])[c]),
                strip(CampaignStore::to_jsonl(*stored)))
          << workloads[i] << " cell " << c;
    }
  }
}

TEST(CampaignServer, WarmStoreAnswersRepeatRequests) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("warm");
  CampaignServer server(lib(), cfg);
  server.start();
  const std::string req =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":1,"
      "\"patterns\":300,\"train_patterns\":800}";
  const auto first = send_request(cfg.socket_path, req);
  const auto second = send_request(cfg.socket_path, req);
  server.stop();
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  // Pass 1 computes, pass 2 answers everything from the warm store.
  EXPECT_NE(first.back().find("\"reused\":0,\"computed\":1"),
            std::string::npos);
  EXPECT_NE(second.back().find("\"reused\":1,\"computed\":0"),
            std::string::npos);
  EXPECT_EQ(server.store().size(), 1u);
}

TEST(CampaignServer, RejectsBadRequestsAndBadSockets) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("errors");
  CampaignServer server(lib(), cfg);
  server.start();
  const auto no_cmd = send_request(cfg.socket_path, "{}");
  ASSERT_EQ(no_cmd.size(), 1u);
  EXPECT_EQ(no_cmd[0], "{\"error\":\"missing cmd\"}");
  // A campaign over an unknown workload streams an error, not a crash.
  const auto bad = send_request(
      cfg.socket_path,
      "{\"cmd\":\"campaign\",\"workloads\":\"nope\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("\"error\""), std::string::npos);
  server.stop();
  EXPECT_THROW(send_request(cfg.socket_path, "{\"cmd\":\"ping\"}"),
               std::runtime_error);
  CampaignServer unbindable(lib(), ServeConfig{});
  EXPECT_THROW(unbindable.start(), std::runtime_error);
}

TEST(CampaignServer, MalformedRequestJsonStreamsErrorsNotCrashes) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("malformed");
  CampaignServer server(lib(), cfg);
  server.start();
  const std::uint64_t errors0 =
      obs::metrics().counter("serve.errors").value();

  // Garbage, a request truncated mid-string, and a campaign over a
  // circuit the builder rejects: each gets exactly one error line.
  for (const char* req :
       {"this is not json", "{\"cmd\":\"campai",
        "{\"cmd\":\"campaign\",\"circuits\":\"nosuchcircuit\"}"}) {
    const auto reply = send_request(cfg.socket_path, req);
    ASSERT_EQ(reply.size(), 1u) << req;
    EXPECT_NE(reply[0].find("\"error\""), std::string::npos) << req;
  }
  EXPECT_EQ(obs::metrics().counter("serve.errors").value() - errors0, 3u);

  // The daemon shrugged all three off and still answers.
  const auto pong = send_request(cfg.socket_path, "{\"cmd\":\"ping\"}");
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0], "{\"ok\":true,\"cmd\":\"ping\"}");
  server.stop();
}

TEST(CampaignServer, SurvivesClientDisconnectMidStream) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("disconnect");
  CampaignServer server(lib(), cfg);
  server.start();
  const std::uint64_t gone0 =
      obs::metrics().counter("serve.disconnects").value();

  // A client that fires a campaign request and hangs up without reading
  // a byte. The daemon is deep in run_campaign when its first stream
  // write hits the closed peer — without MSG_NOSIGNAL that's a SIGPIPE
  // and a dead daemon.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, cfg.socket_path.c_str(),
              cfg.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string req =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":1,"
      "\"patterns\":300,\"train_patterns\":800}\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  ::close(fd);

  // The abandoned campaign still runs to completion (the store keeps
  // the cell) and the broken stream is counted, not fatal.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (obs::metrics().counter("serve.disconnects").value() == gone0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(obs::metrics().counter("serve.disconnects").value() - gone0,
            1u);
  EXPECT_EQ(server.store().size(), 1u);

  const auto pong = send_request(cfg.socket_path, "{\"cmd\":\"ping\"}");
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0], "{\"ok\":true,\"cmd\":\"ping\"}");
  server.stop();
}

TEST(CampaignServer, StatsVerbReportsManifestAndMetrics) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("stats");
  CampaignServer server(lib(), cfg);
  server.start();

  // Idle daemon: the stats request is itself the first served request.
  const auto idle = send_request(cfg.socket_path, "{\"cmd\":\"stats\"}");
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_NE(idle[0].find("\"ok\":true,\"cmd\":\"stats\""),
            std::string::npos);
  EXPECT_NE(idle[0].find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(idle[0].find("\"requests_served\":1"), std::string::npos);
  EXPECT_NE(idle[0].find("\"active_connections\":1"), std::string::npos);
  EXPECT_NE(idle[0].find("\"store_cells\":0"), std::string::npos);
  // The embedded run manifest identifies the daemon...
  EXPECT_NE(idle[0].find("\"manifest\":{\"vosim_manifest\":1"),
            std::string::npos);
  EXPECT_NE(idle[0].find("\"tool\":\"serve\""), std::string::npos);
  EXPECT_NE(idle[0].find("\"config_hash\":"), std::string::npos);
  // ...and the metrics block is the process-wide snapshot.
  EXPECT_NE(idle[0].find("\"metrics\":{\"counters\":{"),
            std::string::npos);

  // Busy daemon: after a campaign the store and counters have moved.
  const auto stream = send_request(
      cfg.socket_path,
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":1,"
      "\"patterns\":300,\"train_patterns\":800}");
  ASSERT_FALSE(stream.empty());
  const auto busy = send_request(cfg.socket_path, "{\"cmd\":\"stats\"}");
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_NE(busy[0].find("\"requests_served\":3"), std::string::npos);
  EXPECT_NE(busy[0].find("\"store_cells\":1"), std::string::npos);
  EXPECT_NE(busy[0].find("\"campaign.cache.miss\":"), std::string::npos);
  server.stop();
}

TEST(CampaignServer, UnknownVerbReturnsStructuredError) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("unknown");
  CampaignServer server(lib(), cfg);
  server.start();
  // The error line is self-diagnosing: it echoes the verb back and
  // enumerates the supported set, so a client can repair itself.
  const auto bad = send_request(cfg.socket_path, "{\"cmd\":\"nope\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0],
            "{\"error\":\"unknown cmd\",\"cmd\":\"nope\",\"known\":"
            "[\"campaign\",\"ping\",\"shutdown\",\"stats\",\"watch\"]}");
  server.stop();
}

TEST(CampaignServer, WatchVerbStreamsComputedCellsWithBacklog) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("watch");
  CampaignServer server(lib(), cfg);
  server.start();

  // A campaign computes 2 cells; each fans out to the watch log.
  const std::string campaign_fir =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800}";
  const auto stream = send_request(cfg.socket_path, campaign_fir);
  ASSERT_EQ(stream.size(), 3u);  // 2 cells + done footer
  EXPECT_EQ(server.watch_events(), 2u);

  // A late watcher still sees them: attach starts at the retained
  // backlog, so limit=2 drains the two events and closes with the
  // footer — no live campaign needed.
  const auto backlog =
      send_request(cfg.socket_path, "{\"cmd\":\"watch\",\"limit\":2}");
  ASSERT_EQ(backlog.size(), 4u);  // header + 2 cells + footer
  EXPECT_EQ(backlog[0], "{\"ok\":true,\"cmd\":\"watch\"}");
  EXPECT_EQ(backlog.back(),
            "{\"done\":true,\"cmd\":\"watch\",\"events\":2,"
            "\"dropped\":0}");
  // The streamed lines are the stored cell form, byte for byte.
  for (std::size_t i = 1; i + 1 < backlog.size(); ++i) {
    EXPECT_NE(backlog[i].find("\"workload\":\"fir\""),
              std::string::npos);
    EXPECT_NE(backlog[i].find("\"circuit\":\"rca16\""),
              std::string::npos);
  }

  // Reused cells never re-publish: the same grid again answers from
  // the warm store and the event log does not move.
  const auto warm = send_request(cfg.socket_path, campaign_fir);
  ASSERT_FALSE(warm.empty());
  EXPECT_NE(warm.back().find("\"reused\":2,\"computed\":0"),
            std::string::npos);
  EXPECT_EQ(server.watch_events(), 2u);

  // A live watcher: attach first, then compute 2 fresh cells. The
  // watcher's limit=4 stream is the 2-event backlog plus the 2 new
  // cells as they finish.
  std::vector<std::string> live;
  std::thread watcher([&] {
    live = send_request(cfg.socket_path,
                        "{\"cmd\":\"watch\",\"limit\":4}");
  });
  const auto dot = send_request(
      cfg.socket_path,
      "{\"cmd\":\"campaign\",\"workloads\":\"dot\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800}");
  ASSERT_EQ(dot.size(), 3u);
  watcher.join();
  ASSERT_EQ(live.size(), 6u);  // header + 4 cells + footer
  EXPECT_EQ(live.back(),
            "{\"done\":true,\"cmd\":\"watch\",\"events\":4,"
            "\"dropped\":0}");
  EXPECT_NE(live[4].find("\"workload\":\"dot\""), std::string::npos);

  // The stats verb surfaces the watch counters.
  const auto stats =
      send_request(cfg.socket_path, "{\"cmd\":\"stats\"}");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_NE(stats[0].find("\"watchers\":0"), std::string::npos);
  EXPECT_NE(stats[0].find("\"watch_events\":4"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace vosim
