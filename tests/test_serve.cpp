// Sweep-daemon tests: in-process CampaignServer on a Unix socket,
// concurrent campaign requests, and equivalence of the streamed cells
// with an offline run of the same grid.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/serve/server.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

/// Short socket path: sockaddr_un caps at ~100 chars and TempDir can
/// be long, so sockets live under /tmp with the test pid mixed in.
std::string socket_path(const std::string& tag) {
  return "/tmp/vosim_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(CampaignServer, PingAndShutdownRoundTrip) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("ping");
  CampaignServer server(lib(), cfg);
  server.start();
  EXPECT_TRUE(server.running());

  const auto pong = send_request(cfg.socket_path, "{\"cmd\":\"ping\"}");
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0], "{\"ok\":true,\"cmd\":\"ping\"}");

  const auto bad = send_request(cfg.socket_path, "{\"cmd\":\"nope\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("\"error\""), std::string::npos);

  const auto ack =
      send_request(cfg.socket_path, "{\"cmd\":\"shutdown\"}");
  ASSERT_EQ(ack.size(), 1u);
  EXPECT_EQ(ack[0], "{\"ok\":true,\"cmd\":\"shutdown\"}");
  server.wait();  // returns because shutdown was served
  server.stop();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(CampaignServer, ConcurrentRequestsMatchOfflineExecution) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("campaign");
  CampaignServer server(lib(), cfg);
  server.start();

  const std::string req1 =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800,\"chips\":2}";
  const std::string req2 =
      "{\"cmd\":\"campaign\",\"workloads\":\"dot\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":2,"
      "\"patterns\":300,\"train_patterns\":800,\"chips\":2}";

  std::vector<std::string> r1, r2;
  std::thread t1(
      [&] { r1 = send_request(cfg.socket_path, req1); });
  std::thread t2(
      [&] { r2 = send_request(cfg.socket_path, req2); });
  t1.join();
  t2.join();
  server.stop();

  // Each stream: 2 triads x 2 chips = 4 cells plus the done footer.
  ASSERT_EQ(r1.size(), 5u);
  ASSERT_EQ(r2.size(), 5u);
  EXPECT_NE(r1.back().find("\"done\":true,\"cells\":4"),
            std::string::npos);
  EXPECT_NE(r2.back().find("\"done\":true,\"cells\":4"),
            std::string::npos);

  // Offline reference: the same grids through run_campaign. The
  // daemon streams the stored cell form, so everything but the
  // wall-clock elapsed_s must match byte-for-byte.
  CampaignConfig offline;
  offline.circuits = {"rca16"};
  offline.backends = {ArithBackend::kModel};
  offline.max_triads = 2;
  offline.characterize_patterns = 300;
  offline.train_patterns = 800;
  offline.fleet.num_chips = 2;
  const auto strip = [](const std::string& line) {
    return line.substr(0, line.find("\"elapsed_s\""));
  };
  const std::vector<std::string>* streams[] = {&r1, &r2};
  const char* workloads[] = {"fir", "dot"};
  for (int i = 0; i < 2; ++i) {
    offline.workloads = {workloads[i]};
    CampaignStore store;
    const CampaignOutcome outcome = run_campaign(lib(), offline, store);
    ASSERT_EQ(outcome.cells.size(), 4u);
    for (std::size_t c = 0; c < outcome.cells.size(); ++c) {
      const auto stored = store.find(outcome.cells[c].key);
      ASSERT_TRUE(stored.has_value());
      EXPECT_EQ(strip((*streams[i])[c]),
                strip(CampaignStore::to_jsonl(*stored)))
          << workloads[i] << " cell " << c;
    }
  }
}

TEST(CampaignServer, WarmStoreAnswersRepeatRequests) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("warm");
  CampaignServer server(lib(), cfg);
  server.start();
  const std::string req =
      "{\"cmd\":\"campaign\",\"workloads\":\"fir\",\"circuits\":"
      "\"rca16\",\"backends\":\"model\",\"max_triads\":1,"
      "\"patterns\":300,\"train_patterns\":800}";
  const auto first = send_request(cfg.socket_path, req);
  const auto second = send_request(cfg.socket_path, req);
  server.stop();
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  // Pass 1 computes, pass 2 answers everything from the warm store.
  EXPECT_NE(first.back().find("\"reused\":0,\"computed\":1"),
            std::string::npos);
  EXPECT_NE(second.back().find("\"reused\":1,\"computed\":0"),
            std::string::npos);
  EXPECT_EQ(server.store().size(), 1u);
}

TEST(CampaignServer, RejectsBadRequestsAndBadSockets) {
  ServeConfig cfg;
  cfg.socket_path = socket_path("errors");
  CampaignServer server(lib(), cfg);
  server.start();
  const auto no_cmd = send_request(cfg.socket_path, "{}");
  ASSERT_EQ(no_cmd.size(), 1u);
  EXPECT_EQ(no_cmd[0], "{\"error\":\"missing cmd\"}");
  // A campaign over an unknown workload streams an error, not a crash.
  const auto bad = send_request(
      cfg.socket_path,
      "{\"cmd\":\"campaign\",\"workloads\":\"nope\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("\"error\""), std::string::npos);
  server.stop();
  EXPECT_THROW(send_request(cfg.socket_path, "{\"cmd\":\"ping\"}"),
               std::runtime_error);
  CampaignServer unbindable(lib(), ServeConfig{});
  EXPECT_THROW(unbindable.start(), std::runtime_error);
}

}  // namespace
}  // namespace vosim
