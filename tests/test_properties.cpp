// Cross-architecture property tests: invariants that must hold for every
// adder generator under the VOS flow, parameterized over architectures.
#include <gtest/gtest.h>

#include "src/characterize/characterizer.hpp"
#include "src/netlist/dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

class ArchPropertyTest : public ::testing::TestWithParam<AdderArch> {
 protected:
  static CharacterizeConfig config() {
    CharacterizeConfig cfg;
    cfg.num_patterns = 800;
    cfg.variation_sigma = 0.0;
    return cfg;
  }
};

TEST_P(ArchPropertyTest, BerMonotoneInSupply) {
  const DutNetlist adder = to_dut(build_adder(GetParam(), 8));
  const double cp = synthesize_report(adder.netlist, lib()).critical_path_ns;
  std::vector<OperatingTriad> triads;
  for (const double vdd : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5})
    triads.push_back({cp, vdd, 0.0});
  const auto res = characterize_dut(adder, lib(), triads, config());
  for (std::size_t i = 1; i < res.size(); ++i)
    EXPECT_GE(res[i].ber, res[i - 1].ber)
        << adder_arch_name(GetParam()) << " step " << i;
  EXPECT_EQ(res[0].ber, 0.0);   // nominal must close timing
  EXPECT_GT(res.back().ber, 0.0);  // deep VOS must not
}

TEST_P(ArchPropertyTest, ForwardBodyBiasNeverHurtsAccuracy) {
  const DutNetlist adder = to_dut(build_adder(GetParam(), 8));
  const double cp = synthesize_report(adder.netlist, lib()).critical_path_ns;
  for (const double vdd : {0.8, 0.6, 0.5}) {
    const auto res = characterize_dut(
        adder, lib(), {{cp, vdd, 0.0}, {cp, vdd, 2.0}}, config());
    EXPECT_LE(res[1].ber, res[0].ber)
        << adder_arch_name(GetParam()) << " at " << vdd;
  }
}

TEST_P(ArchPropertyTest, EnergyDropsWithSupplyWhileErrorFree) {
  const DutNetlist adder = to_dut(build_adder(GetParam(), 8));
  const double cp = synthesize_report(adder.netlist, lib()).critical_path_ns;
  const auto res = characterize_dut(
      adder, lib(), {{cp, 1.0, 0.0}, {cp, 0.9, 0.0}, {cp, 0.6, 2.0}},
      config());
  ASSERT_EQ(res[0].ber, 0.0);
  ASSERT_EQ(res[1].ber, 0.0);
  EXPECT_LT(res[1].energy_per_op_fj, res[0].energy_per_op_fj);
  if (res[2].ber == 0.0)
    EXPECT_LT(res[2].energy_per_op_fj, res[1].energy_per_op_fj);
}

TEST_P(ArchPropertyTest, BitwiseBerAveragesToTotalBer) {
  const DutNetlist adder = to_dut(build_adder(GetParam(), 8));
  const double cp = synthesize_report(adder.netlist, lib()).critical_path_ns;
  const auto res =
      characterize_dut(adder, lib(), {{cp, 0.65, 0.0}}, config());
  const TriadResult& r = res[0];
  double sum = 0.0;
  for (const double b : r.bitwise_ber) sum += b;
  EXPECT_NEAR(sum / static_cast<double>(r.bitwise_ber.size()), r.ber,
              1e-12);
}

TEST_P(ArchPropertyTest, LeakagePlusDynamicEqualsTotal) {
  const DutNetlist adder = to_dut(build_adder(GetParam(), 8));
  const double cp = synthesize_report(adder.netlist, lib()).critical_path_ns;
  const auto res =
      characterize_dut(adder, lib(), {{cp, 0.8, 0.0}}, config());
  EXPECT_NEAR(res[0].dynamic_energy_fj + res[0].leakage_energy_fj,
              res[0].energy_per_op_fj, 1e-9);
  EXPECT_GT(res[0].dynamic_energy_fj, res[0].leakage_energy_fj);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ArchPropertyTest,
    ::testing::Values(AdderArch::kRipple, AdderArch::kBrentKung,
                      AdderArch::kKoggeStone, AdderArch::kSklansky,
                      AdderArch::kCarrySelect, AdderArch::kCarrySkip,
                      AdderArch::kHanCarlson),
    [](const ::testing::TestParamInfo<AdderArch>& info) {
      return adder_arch_name(info.param);
    });

}  // namespace
}  // namespace vosim
