// Batch-vs-scalar equivalence of the clocked path: step_cycle_batch
// must be bit-exact against a scalar step_cycle loop — sampled and
// expected output words, per-cycle energy (same floating-point
// accumulation order), Razor flag words and the stage monitors'
// lifetime/window statistics — on every registry pipeline, on both
// engines, across the error-onset band, including operation counts
// that do not fill a whole 64-cycle lane word.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/runtime/closed_loop.hpp"
#include "src/runtime/error_monitor.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/tech/library.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() {
  static const CellLibrary& l = make_fdsoi28_lvt();
  return l;
}

std::vector<std::uint64_t> random_operands(const SeqDut& seq,
                                           std::size_t cycles,
                                           std::uint64_t seed) {
  const std::size_t nops = seq.num_operands();
  std::vector<std::uint64_t> ops(cycles * nops);
  Rng rng(seed);
  for (std::size_t c = 0; c < cycles; ++c)
    for (std::size_t o = 0; o < nops; ++o)
      ops[c * nops + o] = rng.bits(seq.operand_width(o));
  return ops;
}

/// Runs `cycles` scalar step_cycle calls and one step_cycle_batch over
/// the same operand stream on two identically-configured simulators and
/// asserts every per-cycle field and every stage monitor statistic
/// matches exactly.
void expect_batch_matches_scalar(const SeqDut& seq,
                                 const OperatingTriad& op,
                                 EngineKind engine, std::size_t cycles,
                                 std::uint64_t seed) {
  TimingSimConfig cfg;
  cfg.engine = engine;
  SeqSim scalar(seq, lib(), op, cfg);
  SeqSim batched(seq, lib(), op, cfg);
  const std::size_t nops = seq.num_operands();
  const std::vector<std::uint64_t> ops =
      random_operands(seq, cycles, seed);

  std::vector<SeqCycleResult> want(cycles);
  for (std::size_t c = 0; c < cycles; ++c)
    want[c] = scalar.step_cycle(
        std::span<const std::uint64_t>(ops.data() + c * nops, nops));

  std::vector<SeqCycleResult> got(cycles);
  batched.step_cycle_batch(ops, cycles, got);

  for (std::size_t c = 0; c < cycles; ++c) {
    ASSERT_EQ(want[c].output_valid, got[c].output_valid) << c;
    ASSERT_EQ(want[c].captured, got[c].captured) << c;
    ASSERT_EQ(want[c].expected, got[c].expected) << c;
    ASSERT_EQ(want[c].razor_flags, got[c].razor_flags) << c;
    ASSERT_DOUBLE_EQ(want[c].energy_fj, got[c].energy_fj) << c;
    ASSERT_DOUBLE_EQ(want[c].max_settle_ps, got[c].max_settle_ps) << c;
  }
  for (std::size_t k = 0; k < seq.num_stages(); ++k) {
    const DoubleSamplingMonitor& ms = scalar.stage_monitor(k);
    const DoubleSamplingMonitor& mb = batched.stage_monitor(k);
    EXPECT_EQ(ms.total_ops(), mb.total_ops()) << k;
    EXPECT_EQ(ms.total_flagged_ops(), mb.total_flagged_ops()) << k;
    EXPECT_DOUBLE_EQ(ms.lifetime_ber(), mb.lifetime_ber()) << k;
    EXPECT_EQ(ms.window_fill(), mb.window_fill()) << k;
    EXPECT_DOUBLE_EQ(ms.window_ber(), mb.window_ber()) << k;
    EXPECT_DOUBLE_EQ(ms.window_op_error_rate(),
                     mb.window_op_error_rate())
        << k;
  }
}

// Every registry pipeline, both engines, over the error-onset band
// (relaxed, at the knee, and past it) with a 130-cycle stream — two
// full lane words plus a ragged 2-lane tail.
TEST(SeqBatch, MatchesScalarAcrossRegistryEnginesAndOnsetBand) {
  for (const std::string& spec : seq_circuit_registry()) {
    const SeqDut seq = build_seq_circuit(spec);
    const double cp = seq_critical_path_ns(seq, lib());
    const std::vector<OperatingTriad> band = {
        {1.1 * cp, 1.0, 0.0},   // error-free
        {0.85 * cp, 1.0, 0.0},  // onset knee
        {0.6 * cp, 0.9, 0.0},   // saturated over-scale
    };
    for (const EngineKind engine :
         {EngineKind::kEvent, EngineKind::kLevelized}) {
      for (const OperatingTriad& op : band) {
        SCOPED_TRACE(spec);
        expect_batch_matches_scalar(seq, op, engine, 130, 99);
      }
    }
  }
}

// Ragged lane-word boundaries: a single cycle, one lane short of a
// word, exactly one word, one lane over, and a two-word ragged tail
// must all agree with the scalar loop.
TEST(SeqBatch, RaggedCountsMatchScalar) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  const OperatingTriad op{0.8 * cp, 1.0, 0.0};
  for (const std::size_t cycles : {std::size_t{1}, std::size_t{63},
                                   std::size_t{64}, std::size_t{65},
                                   std::size_t{130}})
    expect_batch_matches_scalar(seq, op, EngineKind::kLevelized, cycles,
                                7 + cycles);
}

// The monitor's word ingest is the batched path's contract: feeding
// record_word(sampled ^ settled) must report exactly what per-op
// observe() reports, including window semantics.
TEST(SeqBatch, RecordWordMatchesObserve) {
  DoubleSamplingMonitor a(16, 8);
  DoubleSamplingMonitor b(16, 8);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t sampled = rng.bits(16);
    // Bias towards agreement so flagged and clean ops both occur.
    const std::uint64_t settled =
        (i % 3 == 0) ? sampled ^ rng.bits(4) : sampled;
    a.observe(sampled, settled);
    b.record_word(sampled ^ settled);
    ASSERT_EQ(a.total_ops(), b.total_ops());
    ASSERT_EQ(a.total_flagged_ops(), b.total_flagged_ops());
    ASSERT_DOUBLE_EQ(a.window_ber(), b.window_ber());
    ASSERT_DOUBLE_EQ(a.window_op_error_rate(), b.window_op_error_rate());
    ASSERT_EQ(a.window_fill(), b.window_fill());
  }
}

// The closed-loop unit's run_batch must replay the scalar control
// trajectory exactly: same rung at every cycle, same captured words,
// same switch count, same accumulated energy.
TEST(SeqBatch, ClosedLoopRunBatchMatchesScalar) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  // Hand-built ladder — no characterization needed for equivalence.
  const std::vector<TriadRung> ladder = {
      {{1.1 * cp, 1.0, 0.0}, 0.0, 100.0},
      {{0.85 * cp, 1.0, 0.0}, 0.005, 70.0},
      {{0.7 * cp, 0.95, 0.0}, 0.05, 50.0},
  };
  ClosedLoopConfig cfg;
  cfg.window_cycles = 48;
  cfg.min_dwell_cycles = 48;
  cfg.op_error_margin = 0.1;
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;

  const std::size_t cycles = 700;  // several windows, ragged tail
  const std::vector<std::uint64_t> ops =
      random_operands(seq, cycles, 2024);

  ClosedLoopSeqUnit scalar(seq, lib(), ladder, cfg, sim_cfg);
  std::vector<ClosedLoopCycleResult> want(cycles);
  const std::size_t nops = seq.num_operands();
  for (std::size_t c = 0; c < cycles; ++c)
    want[c] = scalar.step_cycle(
        std::span<const std::uint64_t>(ops.data() + c * nops, nops));

  ClosedLoopSeqUnit batched(seq, lib(), ladder, cfg, sim_cfg);
  std::vector<ClosedLoopCycleResult> got(cycles);
  batched.run_batch(ops, cycles, got);

  for (std::size_t c = 0; c < cycles; ++c) {
    ASSERT_EQ(want[c].rung, got[c].rung) << c;
    ASSERT_EQ(want[c].cycle.captured, got[c].cycle.captured) << c;
    ASSERT_EQ(want[c].cycle.razor_flags, got[c].cycle.razor_flags) << c;
    ASSERT_DOUBLE_EQ(want[c].cycle.energy_fj, got[c].cycle.energy_fj)
        << c;
  }
  EXPECT_EQ(scalar.controller().switches(), batched.controller().switches());
  EXPECT_DOUBLE_EQ(scalar.mean_energy_fj(), batched.mean_energy_fj());
}

}  // namespace
}  // namespace vosim
