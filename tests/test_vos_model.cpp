// End-to-end statistical model tests: training against the timing
// simulator, fidelity, determinism and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/model/evaluation.hpp"
#include "src/model/vos_model.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double rca8_cp_ns() {
  static const double cp =
      analyze_timing(build_rca(8).netlist, lib(), {1, 1.0, 0.0})
          .critical_path_ps *
      1e-3;
  return cp;
}

/// A mid-VOS triad with a healthy error rate.
OperatingTriad stressed_triad() { return {rca8_cp_ns(), 0.7, 0.0}; }

TEST(VosModel, TrainedModelTracksSimulatorClosely) {
  const DutNetlist rca = to_dut(build_rca(8));
  VosDutSim train_sim(rca, lib(), stressed_triad());
  const HardwareOracle train_oracle = [&](std::uint64_t a, std::uint64_t b) {
    return train_sim.apply(a, b).sampled;
  };
  TrainerConfig cfg;
  cfg.num_patterns = 6000;
  const VosAdderModel model =
      train_vos_model(8, stressed_triad(), train_oracle, cfg);
  EXPECT_FALSE(model.is_exact());

  VosDutSim eval_sim(rca, lib(), stressed_triad());
  const HardwareOracle eval_oracle = [&](std::uint64_t a, std::uint64_t b) {
    return eval_sim.apply(a, b).sampled;
  };
  FidelityConfig fcfg;
  fcfg.num_patterns = 6000;
  const FidelityResult fr = evaluate_fidelity(model, eval_oracle, fcfg);
  EXPECT_GT(fr.oracle_ber, 0.0);
  EXPECT_GT(fr.snr_db, 8.0);
  EXPECT_LT(fr.normalized_hamming, 0.25);
  // The model's own error rate should be in the ballpark of the
  // hardware's (same order of magnitude).
  EXPECT_GT(fr.model_ber, 0.2 * fr.oracle_ber);
  EXPECT_LT(fr.model_ber, 5.0 * fr.oracle_ber);
}

TEST(VosModel, RelaxedTriadYieldsExactModel) {
  const DutNetlist rca = to_dut(build_rca(8));
  const OperatingTriad relaxed{rca8_cp_ns() * 2.0, 1.0, 0.0};
  VosDutSim sim(rca, lib(), relaxed);
  const HardwareOracle oracle = [&](std::uint64_t a, std::uint64_t b) {
    return sim.apply(a, b).sampled;
  };
  TrainerConfig cfg;
  cfg.num_patterns = 3000;
  const VosAdderModel model = train_vos_model(8, relaxed, oracle, cfg);
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(model.add(a, b, rng), a + b);
  }
}

TEST(VosModel, DeterministicGivenRngSeed) {
  CarryChainProbTable table(8);
  std::vector<std::vector<std::uint64_t>> counts(
      9, std::vector<std::uint64_t>(9, 0));
  for (int l = 0; l <= 8; ++l) {
    counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(l)] = 1;
    if (l >= 2) counts[static_cast<std::size_t>(l)][2] = 1;
  }
  const VosAdderModel model(
      8, stressed_triad(), DistanceMetric::kMse,
      CarryChainProbTable::from_counts(8, counts));
  Rng r1(123);
  Rng r2(123);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = r1.bits(8);
    const std::uint64_t b = r1.bits(8);
    const std::uint64_t a2 = r2.bits(8);
    const std::uint64_t b2 = r2.bits(8);
    ASSERT_EQ(model.add(a, b, r1), model.add(a2, b2, r2));
  }
}

TEST(VosModel, SaveLoadRoundTrip) {
  std::vector<std::vector<std::uint64_t>> counts(
      9, std::vector<std::uint64_t>(9, 0));
  counts[8][8] = 3;
  counts[8][5] = 1;
  counts[4][4] = 1;
  const VosAdderModel model(8, {0.28, 0.5, 2.0},
                            DistanceMetric::kWeightedHamming,
                            CarryChainProbTable::from_counts(8, counts));
  std::stringstream ss;
  model.save(ss);
  const VosAdderModel back = VosAdderModel::load(ss);
  EXPECT_EQ(back.width(), 8);
  EXPECT_EQ(back.triad(), model.triad());
  EXPECT_EQ(back.metric(), DistanceMetric::kWeightedHamming);
  EXPECT_EQ(back.table(), model.table());
}

TEST(ModelLibraryTest, TrainFindSaveLoad) {
  const AdderNetlist rca = build_rca(8);
  const std::vector<OperatingTriad> triads{
      {rca8_cp_ns() * 2.0, 1.0, 0.0},
      stressed_triad(),
  };
  TrainerConfig cfg;
  cfg.num_patterns = 1500;
  const ModelLibrary ml = train_model_library(rca, lib(), triads, cfg);
  EXPECT_EQ(ml.size(), 2u);
  ASSERT_NE(ml.find(stressed_triad()), nullptr);
  EXPECT_EQ(ml.find({9.9, 9.9, 9.9}), nullptr);
  EXPECT_TRUE(ml.find(triads[0])->is_exact());
  EXPECT_FALSE(ml.find(triads[1])->is_exact());

  std::stringstream ss;
  ml.save(ss);
  const ModelLibrary back = ModelLibrary::load(ss);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.find(stressed_triad())->table(),
            ml.find(stressed_triad())->table());
}

TEST(ModelLibraryTest, TrainingIsDeterministicAcrossThreadCounts) {
  const AdderNetlist rca = build_rca(8);
  const std::vector<OperatingTriad> triads{
      stressed_triad(), {rca8_cp_ns(), 0.6, 0.0}};
  TrainerConfig cfg;
  cfg.num_patterns = 1000;
  const ModelLibrary serial =
      train_model_library(rca, lib(), triads, cfg, {}, 1);
  const ModelLibrary parallel =
      train_model_library(rca, lib(), triads, cfg, {}, 0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < triads.size(); ++i)
    EXPECT_EQ(serial.find(triads[i])->table(),
              parallel.find(triads[i])->table());
}

TEST(FidelitySummaryTest, ExcludesErrorFreeTriads) {
  std::vector<FidelityResult> runs(3);
  runs[0].oracle_ber = 0.0;
  runs[0].exact_match = true;  // excluded
  runs[1].oracle_ber = 0.05;
  runs[1].snr_db = 20.0;
  runs[1].normalized_hamming = 0.1;
  runs[2].oracle_ber = 0.10;
  runs[2].snr_db = 10.0;
  runs[2].normalized_hamming = 0.2;
  const FidelitySummary s = summarize_fidelity(runs);
  EXPECT_EQ(s.error_free_triads, 1);
  EXPECT_EQ(s.evaluated_triads, 2);
  EXPECT_NEAR(s.mean_snr_db, 15.0, 1e-12);
  EXPECT_NEAR(s.mean_normalized_hamming, 0.15, 1e-12);
}

}  // namespace
}  // namespace vosim
