// Windowed ("modified") adder tests: exactness conditions, degenerate
// windows and equivalence with an O(n·C) brute-force reference.
#include <gtest/gtest.h>

#include "src/model/carry_chain.hpp"
#include "src/model/windowed_add.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

/// Straight-from-the-definition reference: carry into i iff some
/// generate j within [i-C, i-1] has an unbroken propagate run to i.
std::uint64_t brute_force_windowed(std::uint64_t a, std::uint64_t b,
                                   int width, int window) {
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;
  std::uint64_t result = 0;
  for (int i = 0; i <= width; ++i) {
    bool carry = false;
    for (int j = std::max(0, i - window); j < i; ++j) {
      if (bit_of(g, j) == 0) continue;
      bool run = true;
      for (int k = j + 1; k < i; ++k)
        if (bit_of(p, k) == 0) run = false;
      if (run) carry = true;
    }
    const bool bit = (i == width)
                         ? carry
                         : ((bit_of(p, i) != 0) != carry);
    if (bit) result |= (1ULL << i);
  }
  return result;
}

TEST(WindowedAdd, FullWindowIsExactExhaustively) {
  for (std::uint64_t a = 0; a < 256; ++a)
    for (std::uint64_t b = 0; b < 256; ++b)
      ASSERT_EQ(windowed_add(a, b, 8, 8), a + b) << a << "+" << b;
}

TEST(WindowedAdd, WindowAtLeastCthIsExact) {
  Rng rng(123);
  for (int t = 0; t < 5000; ++t) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    const int cth = theoretical_max_carry_chain(a, b, 16);
    for (int c = cth; c <= std::min(16, cth + 2); ++c)
      ASSERT_EQ(windowed_add(a, b, 16, c), a + b)
          << a << "+" << b << " C=" << c << " cth=" << cth;
  }
}

TEST(WindowedAdd, WindowBelowCthBreaksSomeAddition) {
  // For any pair with Cth >= 1, window Cth-1 must change the result of
  // *that* addition when the longest chain is unique... not necessarily
  // — but windows strictly below Cth must break at least the pair that
  // realizes the chain. Check on directed full-chain patterns.
  for (int width : {4, 8, 16}) {
    const std::uint64_t a = mask_n(width);
    const std::uint64_t b = 1;
    ASSERT_EQ(theoretical_max_carry_chain(a, b, width), width);
    for (int c = 0; c < width; ++c)
      ASSERT_NE(windowed_add(a, b, width, c), a + b) << "C=" << c;
  }
}

TEST(WindowedAdd, ZeroWindowIsXor) {
  Rng rng(7);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(12);
    const std::uint64_t b = rng.bits(12);
    ASSERT_EQ(windowed_add(a, b, 12, 0), a ^ b);
  }
}

TEST(WindowedAdd, MatchesBruteForceExhaustively) {
  for (int window : {0, 1, 2, 3, 5, 8}) {
    for (std::uint64_t a = 0; a < 256; a += 1)
      for (std::uint64_t b = 0; b < 256; b += 3)
        ASSERT_EQ(windowed_add(a, b, 8, window),
                  brute_force_windowed(a, b, 8, window))
            << a << "+" << b << " C=" << window;
  }
}

TEST(WindowedAdd, MatchesBruteForceRandomWide) {
  Rng rng(999);
  for (int t = 0; t < 3000; ++t) {
    const int width = 8 + static_cast<int>(rng.below(40));
    const int window = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(width) + 1));
    const std::uint64_t a = rng.bits(width);
    const std::uint64_t b = rng.bits(width);
    ASSERT_EQ(windowed_add(a, b, width, window),
              brute_force_windowed(a, b, width, window))
        << width << "/" << window << ": " << a << "+" << b;
  }
}

TEST(WindowedAdd, ErrorMagnitudeShrinksWithWindowOnAverage) {
  // Not monotone pair-by-pair, but the mean absolute error over many
  // pairs must decrease as the window widens.
  Rng rng(11);
  std::vector<std::uint64_t> as;
  std::vector<std::uint64_t> bs;
  for (int t = 0; t < 3000; ++t) {
    as.push_back(rng.bits(16));
    bs.push_back(rng.bits(16));
  }
  double prev = -1.0;
  for (int window : {0, 2, 4, 8, 16}) {
    double err = 0.0;
    for (std::size_t i = 0; i < as.size(); ++i) {
      const double d =
          static_cast<double>(windowed_add(as[i], bs[i], 16, window)) -
          static_cast<double>(as[i] + bs[i]);
      err += std::abs(d);
    }
    if (prev >= 0.0) EXPECT_LT(err, prev) << "window " << window;
    prev = err;
  }
}

TEST(WindowedAdd, ContractsEnforced) {
  EXPECT_THROW(windowed_add(0, 0, 8, -1), ContractViolation);
  EXPECT_THROW(windowed_add(0, 0, 8, 9), ContractViolation);
  EXPECT_THROW(windowed_add(0x100, 0, 8, 4), ContractViolation);
}

}  // namespace
}  // namespace vosim
