// Slack / arrival-distribution analysis tests.
#include <gtest/gtest.h>

#include "src/netlist/adders.hpp"
#include "src/sta/slack.hpp"
#include "src/sta/sta.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

TEST(Slack, PositiveAtRelaxedClockNegativeWhenOverclocked) {
  const AdderNetlist rca = build_rca(8);
  const double cp =
      synthesize_report(rca.netlist, lib()).tt_critical_path_ns;
  for (const OutputSlack& s :
       output_slacks(rca.netlist, lib(), {cp * 2.0, 1.0, 0.0}))
    EXPECT_GT(s.slack_ps, 0.0);
  EXPECT_EQ(failing_outputs(rca.netlist, lib(), {cp * 2.0, 1.0, 0.0}), 0);
  EXPECT_GT(failing_outputs(rca.netlist, lib(), {cp * 0.5, 1.0, 0.0}), 3);
}

TEST(Slack, VoltageScalingErodesSlack) {
  const AdderNetlist rca = build_rca(8);
  const double cp =
      synthesize_report(rca.netlist, lib()).critical_path_ns;
  const int at_nominal = failing_outputs(rca.netlist, lib(), {cp, 1.0, 0.0});
  const int at_low = failing_outputs(rca.netlist, lib(), {cp, 0.6, 0.0});
  EXPECT_EQ(at_nominal, 0);
  EXPECT_GT(at_low, at_nominal);
  // FBB restores the margin.
  EXPECT_EQ(failing_outputs(rca.netlist, lib(), {cp, 0.6, 2.0}), 0);
}

TEST(Slack, FailureOrderFollowsArrivalOrder) {
  // As the clock tightens, outputs fail from the latest-arriving first.
  const AdderNetlist rca = build_rca(8);
  const auto slacks =
      output_slacks(rca.netlist, lib(), {0.1, 1.0, 0.0});
  // MSB-side sum arrives later than LSB-side.
  EXPECT_LT(slacks[7].slack_ps, slacks[1].slack_ps);
}

TEST(Slack, ArrivalHistogramNormalized) {
  const AdderNetlist rca = build_rca(16);
  const Histogram h =
      arrival_histogram(rca.netlist, lib(), {1.0, 1.0, 0.0}, 8);
  EXPECT_EQ(h.total(), 17u);  // one entry per output
  // The latest bucket holds the critical output.
  EXPECT_GE(h.count(7), 1u);
}

TEST(Slack, BrentKungHasFewerArrivalClassesThanRca) {
  // The structural root of the staircase-vs-spread BER shapes.
  const AdderNetlist rca = build_rca(16);
  const AdderNetlist bka = build_brent_kung(16);
  const OperatingTriad op{1.0, 1.0, 0.0};
  // Class tolerance scaled to each design's own critical path (3%), so
  // load-induced ps-level jitter does not mask the structural classes.
  auto classes_of = [&](const Netlist& nl) {
    const double cp =
        analyze_timing(nl, lib(), op).critical_path_ps;
    return distinct_arrival_classes(nl, lib(), op, 0.03 * cp);
  };
  const int rca_classes = classes_of(rca.netlist);
  const int bka_classes = classes_of(bka.netlist);
  EXPECT_LT(bka_classes, rca_classes);
  EXPECT_GE(bka_classes, 2);
}

TEST(Slack, Validation) {
  const AdderNetlist rca = build_rca(4);
  EXPECT_THROW(output_slacks(rca.netlist, lib(), {0.0, 1.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(
      distinct_arrival_classes(rca.netlist, lib(), {1, 1.0, 0.0}, -1.0),
      ContractViolation);
}

}  // namespace
}  // namespace vosim
