// Cross-engine equivalence for non-adder DUTs: the bit-parallel
// levelized engine must agree with the event-driven reference
// bit-exactly at relaxed Tclk on multipliers and MAC trees, track its
// BER within tolerance when over-scaled, and stream identically through
// apply_batch — the multiplier/MAC mirror of test_sim_engine's adder
// suite (DESIGN.md §7/§8).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/patterns.hpp"
#include "src/characterize/triads.hpp"
#include "src/netlist/dut.hpp"
#include "src/runtime/adaptive_unit.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double critical_path_ns(const Netlist& nl, const OperatingTriad& op) {
  return analyze_timing(nl, lib(), op).critical_path_ps * 1e-3;
}

/// Exact arithmetic reference for the registry circuits under test.
std::uint64_t exact_fn(const DutNetlist& dut,
                       std::span<const std::uint64_t> ops) {
  if (dut.kind.rfind("mul", 0) == 0) return ops[0] * ops[1];
  std::uint64_t acc = 0;  // MAC tree
  for (std::size_t k = 0; k + 1 < ops.size(); k += 2)
    acc += ops[k] * ops[k + 1];
  return acc;
}

class DutEngineEquivalence : public ::testing::TestWithParam<const char*> {
};

// At generous Tclk both engines must agree bit-exactly with the exact
// arithmetic function — same stimuli, same per-gate variation die.
TEST_P(DutEngineEquivalence, RelaxedTclkBitExactAcrossEngines) {
  const DutNetlist dut = build_circuit(GetParam());
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  const OperatingTriad relaxed{2.0 * cp, 1.0, 0.0};

  TimingSimConfig cfg;
  cfg.variation_sigma = 0.03;
  cfg.variation_seed = 7;
  cfg.engine = EngineKind::kEvent;
  VosDutSim event_sim(dut, lib(), relaxed, cfg);
  cfg.engine = EngineKind::kLevelized;
  VosDutSim lev_sim(dut, lib(), relaxed, cfg);

  DutPatternStream patterns(PatternPolicy::kCarryBalanced,
                            dut.operand_widths(), 42);
  std::vector<std::uint64_t> ops(dut.num_operands());
  for (int i = 0; i < 200; ++i) {
    patterns.next(ops);
    const VosOpResult re = event_sim.apply(ops);
    const VosOpResult rl = lev_sim.apply(ops);
    const std::uint64_t golden = exact_fn(dut, ops);
    ASSERT_EQ(re.sampled, golden) << dut.kind << " op " << i;
    ASSERT_EQ(rl.sampled, golden) << dut.kind << " op " << i;
    ASSERT_EQ(re.settled, golden) << dut.kind << " op " << i;
    ASSERT_EQ(rl.settled, golden) << dut.kind << " op " << i;
  }
}

// Over-scaled: the levelized BER must track the event-sim BER within
// the documented tolerance (≤ 2 percentage points), on the same grid
// the multiplier bench gates in CI.
TEST_P(DutEngineEquivalence, OverscaledBerWithinTolerance) {
  const DutNetlist dut = build_circuit(GetParam());
  const double cp = critical_path_ns(dut.netlist, {1.0, 0.8, 0.0});
  std::vector<OperatingTriad> triads;
  for (const double ratio : {1.0, 0.8, 0.6, 0.45})
    triads.push_back({ratio * cp, 0.8, 0.0});

  CharacterizeConfig cfg;
  cfg.num_patterns = 2000;
  cfg.engine = EngineKind::kEvent;
  const auto event_res = characterize_dut(dut, lib(), triads, cfg);
  cfg.engine = EngineKind::kLevelized;
  const auto lev_res = characterize_dut(dut, lib(), triads, cfg);

  ASSERT_EQ(event_res.size(), lev_res.size());
  for (std::size_t t = 0; t < triads.size(); ++t) {
    EXPECT_NEAR(lev_res[t].ber, event_res[t].ber, 0.02)
        << dut.kind << " triad " << triad_label(triads[t]);
  }
  // The sweep actually exercises the error regime.
  EXPECT_GT(event_res.back().ber, 0.01) << dut.kind;
}

// apply_batch must reproduce per-apply streaming semantics exactly on
// both engines (values, energy, settle times).
TEST_P(DutEngineEquivalence, BatchMatchesApplyLoop) {
  const DutNetlist dut = build_circuit(GetParam());
  const double cp = critical_path_ns(dut.netlist, {1.0, 0.8, 0.0});
  const OperatingTriad stressed{0.6 * cp, 0.8, 0.0};
  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    TimingSimConfig cfg;
    cfg.engine = kind;
    VosDutSim stepper(dut, lib(), stressed, cfg);
    VosDutSim batcher(dut, lib(), stressed, cfg);

    const std::size_t nops = dut.num_operands();
    constexpr std::size_t n = 150;  // exercises multiple 64-lane passes
    DutPatternStream patterns(PatternPolicy::kCarryBalanced,
                              dut.operand_widths(), 5);
    std::vector<std::uint64_t> flat(n * nops);
    for (std::size_t i = 0; i < n; ++i)
      patterns.next({flat.data() + i * nops, nops});

    std::vector<VosOpResult> batched(n);
    batcher.apply_batch(flat, n, batched);
    for (std::size_t i = 0; i < n; ++i) {
      const VosOpResult r =
          stepper.apply({flat.data() + i * nops, nops});
      ASSERT_EQ(batched[i].sampled, r.sampled)
          << dut.kind << " " << engine_kind_name(kind) << " op " << i;
      ASSERT_EQ(batched[i].settled, r.settled);
      ASSERT_DOUBLE_EQ(batched[i].energy_fj, r.energy_fj);
      ASSERT_DOUBLE_EQ(batched[i].settle_time_ps, r.settle_time_ps);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, DutEngineEquivalence,
                         ::testing::Values("mul4-array", "mul4-wallace",
                                           "mul8-array", "mul8-wallace",
                                           "mac2x4"),
                         [](const ::testing::TestParamInfo<const char*>&
                                info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-' || c == 'x') c = '_';
                           return name;
                         });

// The characterizer's levelized grid fast path must match a per-triad
// levelized simulator on a multiplier, exactly as it does on adders.
TEST(DutEngines, SweepFastPathMatchesPerTriadLevelizedOnMul8) {
  const DutNetlist dut = build_circuit("mul8-array");
  const double cp = critical_path_ns(dut.netlist, {1.0, 0.8, 0.0});
  const std::vector<OperatingTriad> triads{
      {2.0 * cp, 1.0, 0.0}, {0.8 * cp, 0.8, 0.0}, {0.6 * cp, 0.7, 2.0}};
  CharacterizeConfig cfg;
  cfg.num_patterns = 1200;
  cfg.engine = EngineKind::kLevelized;
  const auto fast = characterize_dut(dut, lib(), triads, cfg);

  const std::size_t nops = dut.num_operands();
  std::vector<std::uint64_t> pats((cfg.num_patterns + 1) * nops);
  DutPatternStream ps(cfg.policy, dut.operand_widths(), cfg.pattern_seed);
  for (std::size_t p = 0; p <= cfg.num_patterns; ++p)
    ps.next({pats.data() + p * nops, nops});

  for (std::size_t t = 0; t < triads.size(); ++t) {
    TimingSimConfig sim_cfg;
    sim_cfg.variation_sigma = cfg.variation_sigma;
    sim_cfg.variation_seed = cfg.variation_seed;
    sim_cfg.engine = EngineKind::kLevelized;
    VosDutSim sim(dut, lib(), triads[t], sim_cfg);
    sim.reset({pats.data(), nops});
    ErrorAccumulator acc(dut.output_width());
    double energy = 0.0;
    for (std::size_t i = 1; i <= cfg.num_patterns; ++i) {
      const std::span<const std::uint64_t> ops{pats.data() + i * nops,
                                               nops};
      const VosOpResult r = sim.apply(ops);
      acc.add(r.settled, r.sampled);
      energy += r.energy_fj;
    }
    EXPECT_NEAR(fast[t].ber, acc.ber(), 1e-4) << triad_label(triads[t]);
    EXPECT_NEAR(fast[t].energy_per_op_fj,
                energy / static_cast<double>(cfg.num_patterns),
                1e-6 * energy)
        << triad_label(triads[t]);
  }
}

// A multiplier characterized at a relaxed grid point is error-free and
// MRED grows once over-scaled.
TEST(DutEngines, MultiplierTriadSweepMetrics) {
  const DutNetlist dut = build_circuit("mul8-wallace");
  const SynthesisReport rep = synthesize_report(dut.netlist, lib());
  const auto all = make_dut_triads(rep.critical_path_ns);
  EXPECT_EQ(all.size(), 43u);
  const std::vector<OperatingTriad> triads{
      all[0],                                  // relaxed nominal
      {0.6 * rep.critical_path_ns, 0.7, 0.0},  // deep over-scaling
  };
  CharacterizeConfig cfg;
  cfg.num_patterns = 1500;
  cfg.engine = EngineKind::kLevelized;
  const auto res = characterize_dut(dut, lib(), triads, cfg);
  EXPECT_EQ(res[0].ber, 0.0);
  EXPECT_EQ(res[0].mred, 0.0);
  EXPECT_EQ(res[0].bitwise_ber.size(), 16u);
  EXPECT_GT(res[1].ber, 0.01);
  EXPECT_GT(res[1].mred, 0.0);
  EXPECT_GT(res[1].op_error_rate, res[1].ber);  // many bits per bad op
}

// An external golden function (exact product) must agree with the
// settled-function default on an exact multiplier.
TEST(DutEngines, GoldenOverrideMatchesSettledOnExactCircuit) {
  const DutNetlist dut = build_circuit("mul4-array");
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  const std::vector<OperatingTriad> triads{{0.55 * cp, 1.0, 0.0}};
  CharacterizeConfig cfg;
  cfg.num_patterns = 1500;
  const auto settled_ref = characterize_dut(dut, lib(), triads, cfg);
  cfg.golden = [](std::span<const std::uint64_t> ops) {
    return ops[0] * ops[1];
  };
  const auto exact_ref = characterize_dut(dut, lib(), triads, cfg);
  EXPECT_DOUBLE_EQ(settled_ref[0].ber, exact_ref[0].ber);
  EXPECT_GT(settled_ref[0].ber, 0.0);
}

// The adaptive runtime walks a multiplier's triad ladder just like an
// adder's — the end-to-end generalization.
TEST(DutEngines, AdaptiveUnitRunsOnMultiplier) {
  const DutNetlist dut = build_circuit("mul4-array");
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  std::vector<TriadRung> ladder{
      {{cp * 1.6, 1.0, 0.0}, 0.0, 0.0},
      {{cp * 1.6, 0.8, 2.0}, 0.0, 0.0},  // FBB: still error-free
  };
  SpeculationConfig scfg;
  scfg.ber_margin = 0.05;
  scfg.window_ops = 64;
  scfg.min_dwell_ops = 64;
  AdaptiveVosUnit unit(dut, lib(), ladder, scfg);
  Rng rng(21);
  std::size_t final_rung = 0;
  for (int i = 0; i < 600; ++i)
    final_rung = unit.apply(rng.bits(4), rng.bits(4)).rung;
  EXPECT_EQ(final_rung, 1u);  // moved to the cheaper error-free rung
  EXPECT_GT(unit.mean_energy_fj(), 0.0);
}

}  // namespace
}  // namespace vosim
