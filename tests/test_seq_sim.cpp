// Clocked-simulation tests: engine step_cycle semantics, pipeline
// correctness at relaxed Tclk, cross-engine equivalence (bit-exact
// relaxed, bounded divergence over-scaled), Razor detection from
// simulator truth, energy accounting and characterize_seq_dut.
#include <gtest/gtest.h>

#include <cmath>

#include "src/characterize/characterizer.hpp"
#include "src/netlist/dut.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/library.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

/// A relaxed triad for a pipeline: every stage settles well inside the
/// cycle, so clocked operation must be functionally exact.
OperatingTriad relaxed_triad(const SeqDut& seq) {
  return {1.5 * seq_critical_path_ns(seq, lib()), 1.0, 0.0};
}

// ------------------------------------------------- engine step_cycle
TEST(StepCycle, MatchesStepWhenRelaxed) {
  // On a quiet circuit with a generous clock, step_cycle and step see
  // identical sampled/settled words on both engines.
  const DutNetlist dut = build_circuit("rca8");
  const double cp =
      1.5 * synthesize_report(dut.netlist, lib()).critical_path_ns;
  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    TimingSimConfig cfg;
    cfg.engine = kind;
    const auto cycle_eng =
        make_engine(dut.netlist, lib(), {cp, 1.0, 0.0}, cfg);
    const auto step_eng =
        make_engine(dut.netlist, lib(), {cp, 1.0, 0.0}, cfg);
    const DutPinMap pins(dut);
    Rng rng(3);
    std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0);
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t ops[2] = {rng() & 0xFF, rng() & 0xFF};
      std::fill(in.begin(), in.end(), 0);
      pins.fill_inputs(ops, in.data());
      const StepResult c = cycle_eng->step_cycle(in);
      const StepResult s = step_eng->step(in);
      EXPECT_EQ(c.sampled_outputs, s.sampled_outputs);
      EXPECT_EQ(c.settled_outputs, s.settled_outputs);
      EXPECT_EQ(pins.gather_output(c.sampled_outputs), ops[0] + ops[1]);
    }
  }
}

TEST(StepCycle, TruncatesAtTightClock) {
  // With the clock far below the carry chain's settle time the sampled
  // word must diverge from the settled word, on both engines, and the
  // error must persist as launch state instead of being settled away.
  const DutNetlist dut = build_circuit("rca8");
  const DutPinMap pins(dut);
  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    TimingSimConfig cfg;
    cfg.engine = kind;
    const auto eng =
        make_engine(dut.netlist, lib(), {0.02, 1.0, 0.0}, cfg);
    std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0);
    const std::uint64_t ops[2] = {0xFF, 0x01};  // full carry ripple
    pins.fill_inputs(ops, in.data());
    const StepResult st = eng->step_cycle(in);
    EXPECT_EQ(pins.gather_output(st.settled_outputs), 0x100u)
        << engine_kind_name(kind);
    EXPECT_NE(st.sampled_outputs, st.settled_outputs)
        << engine_kind_name(kind);
  }
}

TEST(StepCycle, EventInFlightEventsLandNextCycle) {
  // Event engine: transitions cut off by the edge stay in flight and
  // commit early in the next cycle — holding the same inputs for a few
  // cycles converges the sampled word to the settled sum.
  const DutNetlist dut = build_circuit("rca8");
  const DutPinMap pins(dut);
  TimingSimConfig cfg;  // event engine
  const auto eng = make_engine(dut.netlist, lib(), {0.06, 1.0, 0.0}, cfg);
  std::vector<std::uint8_t> in(dut.netlist.primary_inputs().size(), 0);
  const std::uint64_t ops[2] = {0xFF, 0x01};
  pins.fill_inputs(ops, in.data());
  StepResult st = eng->step_cycle(in);
  EXPECT_NE(st.sampled_outputs, st.settled_outputs);
  for (int c = 0; c < 20; ++c) st = eng->step_cycle(in);
  EXPECT_EQ(pins.gather_output(st.sampled_outputs), 0x100u);
}

// ------------------------------------------------------ pipeline sim
TEST(SeqSimTest, RelaxedPipelineIsExactAndRazorClean) {
  for (const char* spec : {"pipe2-mul8", "pipe3-mac4x8", "fir4-pipe"}) {
    const SeqDut seq = build_seq_circuit(spec);
    SeqSim sim(seq, lib(), relaxed_triad(seq));
    Rng rng(11);
    std::vector<std::uint64_t> ops(seq.num_operands());
    for (int c = 0; c < 80; ++c) {
      for (auto& o : ops) o = rng() & 0xFF;
      const SeqCycleResult r = sim.step_cycle(ops);
      EXPECT_EQ(r.razor_flags, 0u) << spec;
      EXPECT_EQ(r.output_valid, c + 1 >= (int)seq.latency_cycles());
      if (r.output_valid) EXPECT_EQ(r.captured, r.expected) << spec;
      EXPECT_GT(r.energy_fj, 0.0);
    }
    for (std::size_t k = 0; k < seq.num_stages(); ++k)
      EXPECT_EQ(sim.stage_monitor(k).total_flagged_ops(), 0u);
  }
}

TEST(SeqSimTest, CrossEngineBitExactAtRelaxedTclk) {
  for (const char* spec : {"pipe2-mul8", "pipe3-mac4x8"}) {
    const SeqDut seq = build_seq_circuit(spec);
    TimingSimConfig ev_cfg;
    ev_cfg.engine = EngineKind::kEvent;
    TimingSimConfig lev_cfg;
    lev_cfg.engine = EngineKind::kLevelized;
    SeqSim ev(seq, lib(), relaxed_triad(seq), ev_cfg);
    SeqSim lev(seq, lib(), relaxed_triad(seq), lev_cfg);
    Rng rng(23);
    std::vector<std::uint64_t> ops(seq.num_operands());
    for (int c = 0; c < 60; ++c) {
      for (auto& o : ops) o = rng() & 0xFF;
      const SeqCycleResult a = ev.step_cycle(ops);
      const SeqCycleResult b = lev.step_cycle(ops);
      EXPECT_EQ(a.captured, b.captured) << spec << " cycle " << c;
      EXPECT_EQ(a.razor_flags, b.razor_flags) << spec;
      EXPECT_EQ(a.expected, b.expected) << spec;
    }
  }
}

TEST(SeqSimTest, OverscaledRazorFlagsFire) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  SeqSim sim(seq, lib(), {0.45 * cp, 0.7, 0.0});
  Rng rng(5);
  std::uint64_t flagged = 0;
  int mismatches = 0;
  for (int c = 0; c < 200; ++c) {
    const SeqCycleResult r =
        sim.step_cycle(rng() & 0xFF, rng() & 0xFF);
    flagged |= r.razor_flags;
    if (r.output_valid && r.captured != r.expected) ++mismatches;
  }
  EXPECT_NE(flagged, 0u);
  EXPECT_GT(mismatches, 0);
  EXPECT_GT(sim.worst_stage_op_error_rate(), 0.0);
  // Razor truth drives the monitors: some stage saw flagged ops.
  std::uint64_t monitor_flags = 0;
  for (std::size_t k = 0; k < seq.num_stages(); ++k)
    monitor_flags += sim.stage_monitor(k).total_flagged_ops();
  EXPECT_GT(monitor_flags, 0u);
  // And reset_monitor_windows clears the windowed view only.
  sim.reset_monitor_windows();
  EXPECT_DOUBLE_EQ(sim.worst_stage_op_error_rate(), 0.0);
}

TEST(SeqSimTest, EnergyIncludesRegisterClock) {
  const SeqDut seq = build_seq_circuit("fir4-pipe");
  SeqSim sim(seq, lib(), relaxed_triad(seq));
  const double clock = sim.clock_energy_fj_per_cycle();
  EXPECT_DOUBLE_EQ(clock, seq_clock_energy_fj(seq, lib(), 1.0));
  // A cycle with zero switching still pays clock + leakage.
  const std::vector<std::uint64_t> zeros(seq.num_operands(), 0);
  sim.step_cycle(zeros);
  const SeqCycleResult r = sim.step_cycle(zeros);
  EXPECT_NEAR(r.energy_fj,
              clock + sim.leakage_energy_fj_per_cycle(), 1e-9);
}

// ------------------------------------------------- characterize_seq
TEST(CharacterizeSeq, RelaxedGridErrorFreeAndDeterministic) {
  const SeqDut seq = build_seq_circuit("fir4-pipe");
  const double cp = seq_critical_path_ns(seq, lib());
  CharacterizeConfig cfg;
  cfg.num_patterns = 300;
  cfg.engine = EngineKind::kLevelized;
  const std::vector<OperatingTriad> triads = {
      {1.5 * cp, 1.0, 0.0}, {1.0 * cp, 1.0, 0.0}, {0.5 * cp, 0.6, 0.0}};
  const auto a = characterize_seq_dut(seq, lib(), triads, cfg);
  const auto b = characterize_seq_dut(seq, lib(), triads, cfg);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].ber, 0.0);
  EXPECT_GT(a[2].ber, 0.0);  // deep over-scale must fail
  EXPECT_GT(a[0].energy_per_op_fj,
            a[0].leakage_energy_fj);  // clock energy is in there
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_DOUBLE_EQ(a[t].ber, b[t].ber);
    EXPECT_DOUBLE_EQ(a[t].energy_per_op_fj, b[t].energy_per_op_fj);
  }
}

TEST(CharacterizeSeq, CrossEngineWithinTwoPointsOnOverscaledGrid) {
  // The acceptance gate: event vs levelized step_cycle BER within 2pp
  // over the over-scaled grid, judged in the error-onset band (event
  // BER <= 2% — the regime an application quality floor can accept).
  // Past the knee the pipeline is saturated-broken, cross-cycle error
  // feedback is chaotic, and the levelized backend over-predicts
  // (conservative for the controller); DESIGN.md §10.
  for (const char* spec : {"pipe2-mul8", "pipe3-mac4x8"}) {
    const SeqDut seq = build_seq_circuit(spec);
    const double cp = seq_critical_path_ns(seq, lib());
    CharacterizeConfig ev;
    ev.num_patterns = 250;
    ev.engine = EngineKind::kEvent;
    CharacterizeConfig lev = ev;
    lev.engine = EngineKind::kLevelized;
    const std::vector<OperatingTriad> triads = {
        {1.0 * cp, 1.0, 0.0}, {0.8 * cp, 1.0, 0.0},
        {0.6 * cp, 1.0, 0.0}, {0.8 * cp, 0.9, 2.0},
        {0.6 * cp, 0.8, 2.0}, {0.5 * cp, 0.7, 0.0},
        {0.4 * cp, 0.6, 0.0}};
    const auto re = characterize_seq_dut(seq, lib(), triads, ev);
    const auto rl = characterize_seq_dut(seq, lib(), triads, lev);
    int onset_points = 0;
    for (std::size_t t = 0; t < triads.size(); ++t) {
      if (re[t].ber > 0.02) continue;  // saturated-broken regime
      ++onset_points;
      EXPECT_NEAR(re[t].ber, rl[t].ber, 0.02)
          << spec << " @ " << triad_label(triads[t]);
    }
    // The band must actually cover most of the grid, including at
    // least the mild over-scaled points.
    EXPECT_GE(onset_points, 5) << spec;
    // Relaxed rung: bit-exact zero on both engines.
    EXPECT_DOUBLE_EQ(re[0].ber, 0.0);
    EXPECT_DOUBLE_EQ(rl[0].ber, 0.0);
  }
}

}  // namespace
}  // namespace vosim
