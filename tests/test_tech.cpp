// Unit tests for src/tech: transistor model physics, cells, library and
// gate-level timing/energy evaluation.
#include <gtest/gtest.h>

#include <vector>

#include "src/tech/cell.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/tech/library.hpp"
#include "src/tech/operating_point.hpp"
#include "src/tech/transistor_model.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const TransistorModel& model() {
  static const TransistorModel m{};
  return m;
}

// ------------------------------------------------------------ triad labels
TEST(OperatingTriadTest, LabelMatchesPaperStyle) {
  EXPECT_EQ(triad_label({0.28, 0.5, 2.0}), "0.28,0.5,±2");
  EXPECT_EQ(triad_label({0.5, 1.0, 0.0}), "0.5,1.0,0");
  EXPECT_EQ(triad_label({0.13, 0.4, -2.0}), "0.13,0.4,-2");
}

TEST(OperatingTriadTest, NominalHelper) {
  const OperatingTriad t = nominal_triad(0.31);
  EXPECT_DOUBLE_EQ(t.tclk_ns, 0.31);
  EXPECT_DOUBLE_EQ(t.vdd_v, 1.0);
  EXPECT_DOUBLE_EQ(t.vbb_v, 0.0);
}

// -------------------------------------------------------- transistor model
TEST(TransistorModelTest, NominalScaleIsUnity) {
  EXPECT_NEAR(model().delay_scale(1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(model().leakage_scale(1.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(model().drive(1.0, 0.0), 1.0, 1e-12);
}

TEST(TransistorModelTest, DelayGrowsMonotonicallyAsVddDrops) {
  double prev = 0.0;
  for (double vdd = 1.0; vdd >= 0.4; vdd -= 0.05) {
    const double s = model().delay_scale(vdd, 0.0);
    EXPECT_GT(s, prev) << "at " << vdd;
    prev = s;
  }
}

TEST(TransistorModelTest, NearThresholdBlowup) {
  // Deep VOS must slow the circuit by an order of magnitude or more
  // (the paper's 0.4 V points sit far right of the BER cliff).
  EXPECT_GT(model().delay_scale(0.4, 0.0), 10.0);
  EXPECT_LT(model().delay_scale(0.9, 0.0), 1.5);
}

TEST(TransistorModelTest, ForwardBodyBiasSpeedsUp) {
  for (double vdd : {1.0, 0.8, 0.6, 0.5, 0.4}) {
    EXPECT_LT(model().delay_scale(vdd, 2.0), model().delay_scale(vdd, 0.0))
        << "FBB must reduce delay at " << vdd;
  }
}

TEST(TransistorModelTest, ReverseBodyBiasSlowsDown) {
  EXPECT_GT(model().delay_scale(1.0, -2.0), 1.0);
}

TEST(TransistorModelTest, PaperHeadlineOrdering) {
  // 0.5 V + 2 V FBB must be fast enough to fit within the ~1.55x signoff
  // margin while 0.8 V unbiased must not (Fig. 5 / Fig. 8a structure).
  const double margin = 1.55;
  EXPECT_LT(model().delay_scale(0.5, 2.0), margin);
  EXPECT_GT(model().delay_scale(0.8, 0.0), margin);
  EXPECT_LT(model().delay_scale(0.9, 0.0), margin);
}

TEST(TransistorModelTest, VtShiftLinearInBias) {
  const TransistorParams p;
  EXPECT_NEAR(model().vt_eff(0.0), p.vt0_v, 1e-12);
  EXPECT_NEAR(model().vt_eff(2.0), p.vt0_v - 2.0 * p.body_coeff_v_per_v,
              1e-12);
  EXPECT_NEAR(model().vt_eff(-2.0), p.vt0_v + 2.0 * p.body_coeff_v_per_v,
              1e-12);
  // Bias clamps at the supported range.
  EXPECT_NEAR(model().vt_eff(5.0), model().vt_eff(2.0), 1e-12);
}

TEST(TransistorModelTest, LeakageRisesWithForwardBias) {
  const double base = model().leakage_scale(1.0, 0.0);
  const double fbb = model().leakage_scale(1.0, 2.0);
  EXPECT_GT(fbb, 5.0 * base);   // exponential increase
  EXPECT_LT(fbb, 200.0 * base); // but bounded to stay a modest E/op share
  EXPECT_LT(model().leakage_scale(1.0, -2.0), base);  // RBB saves leakage
}

TEST(TransistorModelTest, LeakageDropsWithVdd) {
  EXPECT_LT(model().leakage_scale(0.5, 0.0), model().leakage_scale(1.0, 0.0));
}

TEST(TransistorModelTest, RejectsDeepSubthresholdSupply) {
  EXPECT_THROW(model().delay_scale(0.1, 0.0), ContractViolation);
}

TEST(TransistorModelTest, SmoothAroundThreshold) {
  // The EKV interpolation must not kink at Vdd == Vt.
  const double vt = model().vt_eff(0.0);
  const double eps = 1e-4;
  const double lo = model().delay_scale(vt - eps, 0.0);
  const double hi = model().delay_scale(vt + eps, 0.0);
  EXPECT_NEAR(lo / hi, 1.0, 0.01);
}

TEST(TransistorModelTest, InvalidParamsRejected) {
  TransistorParams p;
  p.alpha = 3.0;
  EXPECT_THROW(TransistorModel{p}, ContractViolation);
  TransistorParams q;
  q.nominal_vdd_v = 0.3;  // below Vt0
  EXPECT_THROW(TransistorModel{q}, ContractViolation);
}

// -------------------------------------------------------------------- cells
TEST(CellTest, TruthTablesMatchSemantics) {
  auto t = [](CellKind k, unsigned idx) {
    return ((cell_truth(k) >> idx) & 1u) != 0;
  };
  // INV / BUF
  EXPECT_TRUE(t(CellKind::kInv, 0));
  EXPECT_FALSE(t(CellKind::kInv, 1));
  // NAND2 vs AND2 complement
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_NE(t(CellKind::kNand2, i), t(CellKind::kAnd2, i));
  // XOR2
  EXPECT_FALSE(t(CellKind::kXor2, 0b00));
  EXPECT_TRUE(t(CellKind::kXor2, 0b01));
  EXPECT_TRUE(t(CellKind::kXor2, 0b10));
  EXPECT_FALSE(t(CellKind::kXor2, 0b11));
  // MAJ3 over all 8 minterms
  for (unsigned i = 0; i < 8; ++i) {
    const int ones = (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1);
    EXPECT_EQ(t(CellKind::kMaj3, i), ones >= 2) << i;
  }
  // AO21(a,b,c) = (a&b)|c with pins packed a=bit0,b=bit1,c=bit2
  for (unsigned i = 0; i < 8; ++i) {
    const bool a = i & 1, b = (i >> 1) & 1, c = (i >> 2) & 1;
    EXPECT_EQ(t(CellKind::kAo21, i), (a && b) || c) << i;
    EXPECT_EQ(t(CellKind::kAoi21, i), !((a && b) || c)) << i;
    EXPECT_EQ(t(CellKind::kOai21, i), !((a || b) && c)) << i;
  }
}

TEST(CellTest, EvalAgreesWithTruth) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const Cell& maj = lib.cell(CellKind::kMaj3);
  const bool in[3] = {true, false, true};
  EXPECT_TRUE(maj.eval({in, 3}));
  const bool in2[3] = {true, false, false};
  EXPECT_FALSE(maj.eval({in2, 3}));
}

TEST(CellTest, NamesAreUnique) {
  std::vector<std::string> names;
  for (int k = 0; k < cell_kind_count; ++k)
    names.push_back(cell_kind_name(static_cast<CellKind>(k)));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// ------------------------------------------------------------------ library
TEST(LibraryTest, AllKindsPresentAndSane) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  for (int k = 0; k < cell_kind_count; ++k) {
    const auto kind = static_cast<CellKind>(k);
    const Cell& c = lib.cell(kind);
    EXPECT_EQ(c.kind, kind);
    EXPECT_EQ(c.num_inputs, cell_num_inputs(kind));
    EXPECT_EQ(c.truth, cell_truth(kind));
    EXPECT_GT(c.area_um2, 0.0);
    if (c.num_inputs > 0) {
      EXPECT_GT(c.input_cap_ff, 0.0);
      EXPECT_GT(c.intrinsic_delay_ps, 0.0);
      EXPECT_GT(c.drive_ps_per_ff, 0.0);
    }
    EXPECT_GT(c.leakage_nw, 0.0);
  }
  EXPECT_GT(lib.wire_cap_ff(), 0.0);
  EXPECT_GT(lib.dff_area_um2(), 0.0);
  EXPECT_GT(lib.dff_d_cap_ff(), 0.0);
}

TEST(LibraryTest, XorSlowerThanNand) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  EXPECT_GT(lib.cell(CellKind::kXor2).intrinsic_delay_ps,
            lib.cell(CellKind::kNand2).intrinsic_delay_ps);
}

// -------------------------------------------------------------- gate timing
TEST(GateTiming, DelayLinearInLoad) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const Cell& inv = lib.cell(CellKind::kInv);
  const OperatingTriad op{1.0, 1.0, 0.0};
  const double d0 = gate_delay_ps(inv, 0.0, lib.transistor_model(), op);
  const double d2 = gate_delay_ps(inv, 2.0, lib.transistor_model(), op);
  EXPECT_DOUBLE_EQ(d0, inv.intrinsic_delay_ps);
  EXPECT_DOUBLE_EQ(d2 - d0, 2.0 * inv.drive_ps_per_ff);
}

TEST(GateTiming, DelayScalesWithVoltage) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const Cell& inv = lib.cell(CellKind::kInv);
  const double d_nom = gate_delay_ps(inv, 1.0, lib.transistor_model(),
                                     {1.0, 1.0, 0.0});
  const double d_low = gate_delay_ps(inv, 1.0, lib.transistor_model(),
                                     {1.0, 0.6, 0.0});
  EXPECT_NEAR(d_low / d_nom,
              lib.transistor_model().delay_scale(0.6, 0.0), 1e-9);
}

TEST(GateTiming, ToggleEnergyQuadraticInVdd) {
  EXPECT_DOUBLE_EQ(toggle_energy_fj(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(toggle_energy_fj(2.0, 0.5), 0.25);
  EXPECT_THROW(toggle_energy_fj(-1.0, 1.0), ContractViolation);
}

TEST(GateTiming, LeakagePowerTracksModel) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const Cell& inv = lib.cell(CellKind::kInv);
  const double nom =
      cell_leakage_nw(inv, lib.transistor_model(), {1.0, 1.0, 0.0});
  const double fbb =
      cell_leakage_nw(inv, lib.transistor_model(), {1.0, 1.0, 2.0});
  EXPECT_NEAR(nom, inv.leakage_nw, 1e-9);
  EXPECT_GT(fbb, nom);
}

}  // namespace
}  // namespace vosim
