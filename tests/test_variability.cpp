// Monte-Carlo variability study tests.
#include <gtest/gtest.h>

#include "src/characterize/variability.hpp"
#include "src/netlist/dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

VariabilityConfig small_config() {
  VariabilityConfig cfg;
  cfg.num_dies = 9;
  cfg.num_patterns = 800;
  return cfg;
}

TEST(Variability, SafeTriadYieldsAllCleanDies) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = synthesize_report(rca.netlist, lib()).critical_path_ns;
  const auto res = variability_study(rca, lib(), {{cp * 1.5, 1.0, 0.0}},
                                     small_config());
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].dies, 9);
  EXPECT_DOUBLE_EQ(res[0].error_free_die_fraction, 1.0);
  EXPECT_DOUBLE_EQ(res[0].ber.max, 0.0);
  EXPECT_GT(res[0].energy_fj.mean, 0.0);
}

TEST(Variability, MarginalTriadSplitsTheDies) {
  // Pick a point right at the pass/fail edge: with 5% per-gate sigma
  // some dies close timing and some do not.
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_tt = synthesize_report(rca.netlist, lib())
                           .tt_critical_path_ns;
  VariabilityConfig cfg = small_config();
  cfg.num_dies = 15;
  cfg.variation_sigma = 0.08;
  const auto res = variability_study(
      rca, lib(), {{cp_tt * 1.02, 1.0, 0.0}}, cfg);
  const VariabilityResult& r = res[0];
  EXPECT_GT(r.error_free_die_fraction, 0.0);
  EXPECT_LT(r.error_free_die_fraction, 1.0);
  EXPECT_GT(r.ber.max, r.ber.min);
}

TEST(Variability, DeepVosFailsEveryDie) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = synthesize_report(rca.netlist, lib()).critical_path_ns;
  const auto res =
      variability_study(rca, lib(), {{cp, 0.5, 0.0}}, small_config());
  EXPECT_DOUBLE_EQ(res[0].error_free_die_fraction, 0.0);
  EXPECT_GT(res[0].ber.median, 0.2);
}

TEST(Variability, SpreadQuantilesOrdered) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = synthesize_report(rca.netlist, lib()).critical_path_ns;
  VariabilityConfig cfg = small_config();
  cfg.variation_sigma = 0.10;
  const auto res =
      variability_study(rca, lib(), {{cp, 0.7, 0.0}}, cfg);
  const DieSpread& s = res[0].ber;
  EXPECT_LE(s.min, s.q25);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
  EXPECT_LE(s.q75, s.max);
  EXPECT_GE(s.stddev, 0.0);
}

TEST(Variability, DeterministicAcrossThreadCounts) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = synthesize_report(rca.netlist, lib()).critical_path_ns;
  VariabilityConfig cfg = small_config();
  cfg.num_dies = 6;
  const std::vector<OperatingTriad> triads{{cp, 0.7, 0.0},
                                           {cp, 0.8, 0.0}};
  VariabilityConfig serial = cfg;
  serial.jobs = 1;
  const auto a = variability_study(rca, lib(), triads, serial);
  const auto b = variability_study(rca, lib(), triads, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ber.mean, b[i].ber.mean);
    EXPECT_DOUBLE_EQ(a[i].energy_fj.mean, b[i].energy_fj.mean);
  }
}

TEST(Variability, Validation) {
  const DutNetlist rca = to_dut(build_rca(4));
  VariabilityConfig bad;
  bad.num_dies = 0;
  EXPECT_THROW(variability_study(rca, lib(), {{1.0, 1.0, 0.0}}, bad),
               ContractViolation);
  EXPECT_THROW(variability_study(rca, lib(), {}, VariabilityConfig{}),
               ContractViolation);
}

}  // namespace
}  // namespace vosim
