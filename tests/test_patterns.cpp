// Pattern-generation tests: determinism, range safety and carry-chain
// coverage of the stimulus policies.
#include <gtest/gtest.h>

#include <set>

#include "src/characterize/patterns.hpp"
#include "src/model/carry_chain.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

class PatternPolicyTest : public ::testing::TestWithParam<PatternPolicy> {};

TEST_P(PatternPolicyTest, DeterministicPerSeed) {
  PatternStream s1(GetParam(), 16, 42);
  PatternStream s2(GetParam(), 16, 42);
  for (int i = 0; i < 200; ++i) {
    const OperandPair a = s1.next();
    const OperandPair b = s2.next();
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
  }
}

TEST_P(PatternPolicyTest, OperandsFitWidth) {
  for (int width : {4, 8, 16, 32}) {
    PatternStream s(GetParam(), width, 7);
    for (int i = 0; i < 500; ++i) {
      const OperandPair p = s.next();
      EXPECT_EQ(p.a & ~mask_n(width), 0u);
      EXPECT_EQ(p.b & ~mask_n(width), 0u);
    }
  }
}

TEST_P(PatternPolicyTest, DifferentSeedsDiffer) {
  PatternStream s1(GetParam(), 16, 1);
  PatternStream s2(GetParam(), 16, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s1.next().a == s2.next().a) ++same;
  EXPECT_LT(same, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PatternPolicyTest,
    ::testing::Values(PatternPolicy::kUniform, PatternPolicy::kCarryBalanced,
                      PatternPolicy::kCorrelatedWalk),
    [](const ::testing::TestParamInfo<PatternPolicy>& info) {
      switch (info.param) {
        case PatternPolicy::kUniform: return "Uniform";
        case PatternPolicy::kCarryBalanced: return "CarryBalanced";
        case PatternPolicy::kCorrelatedWalk: return "Walk";
      }
      return "Unknown";
    });

TEST(CarryBalancedPatterns, CoverAllChainLengths) {
  // The paper requires stimuli that exercise every carry-chain length;
  // for an 8-bit adder all Cth values 0..8 must appear in 20k patterns.
  PatternStream s(PatternPolicy::kCarryBalanced, 8, 42);
  std::set<int> seen;
  for (int i = 0; i < 20000; ++i) {
    const OperandPair p = s.next();
    seen.insert(theoretical_max_carry_chain(p.a, p.b, 8));
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(CarryBalancedPatterns, LongChainsWellRepresented) {
  // Uniform stimuli almost never produce a full 16-bit chain; the
  // balanced policy must hit long chains regularly.
  PatternStream s(PatternPolicy::kCarryBalanced, 16, 42);
  int long_chains = 0;
  for (int i = 0; i < 20000; ++i) {
    const OperandPair p = s.next();
    if (theoretical_max_carry_chain(p.a, p.b, 16) >= 12) ++long_chains;
  }
  EXPECT_GT(long_chains, 200);
}

TEST(WalkPatterns, StepsAreLocal) {
  PatternStream s(PatternPolicy::kCorrelatedWalk, 16, 9);
  OperandPair prev = s.next();
  for (int i = 0; i < 200; ++i) {
    const OperandPair cur = s.next();
    const auto diff = static_cast<std::int64_t>(cur.a) -
                      static_cast<std::int64_t>(prev.a);
    // Steps are bounded (modulo wraparound at the ends).
    if (std::abs(diff) < (1 << 14))
      EXPECT_LE(std::abs(diff), 1 << 10);
    prev = cur;
  }
}

TEST(PatternStreamTest, WidthValidated) {
  EXPECT_THROW(PatternStream(PatternPolicy::kUniform, 0, 1),
               ContractViolation);
  EXPECT_THROW(PatternStream(PatternPolicy::kUniform, 64, 1),
               ContractViolation);
}

}  // namespace
}  // namespace vosim
