// SimEngine abstraction + cross-backend equivalence suite: the
// bit-parallel levelized engine must agree with the event-driven
// reference bit-exactly when timing is relaxed, and within a documented
// BER tolerance when over-scaled (DESIGN.md §7).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/patterns.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/approx_adders.hpp"
#include "src/netlist/eval.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/levelized_sim.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double critical_path_ns(const Netlist& nl, const OperatingTriad& op) {
  return analyze_timing(nl, lib(), op).critical_path_ps * 1e-3;
}

TEST(SimEngine, KindNamesRoundTrip) {
  EXPECT_EQ(engine_kind_name(EngineKind::kEvent), "event");
  EXPECT_EQ(engine_kind_name(EngineKind::kLevelized), "levelized");
  EXPECT_EQ(parse_engine_kind("event"), EngineKind::kEvent);
  EXPECT_EQ(parse_engine_kind("levelized"), EngineKind::kLevelized);
  EXPECT_THROW(parse_engine_kind("spice"), std::invalid_argument);
}

TEST(SimEngine, FactoryBuildsSelectedBackend) {
  const AdderNetlist rca = build_rca(4);
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;
  // An explicit lane_width beats the --lane-width override and the
  // VOSIM_LANE_WIDTH environment variable (dispatch precedence), so
  // the concrete instantiation is deterministic here.
  cfg.lane_width = 64;
  const auto lev = make_engine(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  EXPECT_EQ(lev->kind(), EngineKind::kLevelized);
  EXPECT_NE(dynamic_cast<LevelizedSimulator*>(lev.get()), nullptr);
  EXPECT_EQ(lev->lanes_per_pass(), 64u);
  cfg.lane_width = 256;
  const auto lev256 = make_engine(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  EXPECT_NE(dynamic_cast<LevelizedSimulator256*>(lev256.get()), nullptr);
  EXPECT_EQ(lev256->lanes_per_pass(), 256u);
  cfg.lane_width = 512;
  const auto lev512 = make_engine(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  EXPECT_NE(dynamic_cast<LevelizedSimulator512*>(lev512.get()), nullptr);
  EXPECT_EQ(lev512->lanes_per_pass(), 512u);
  cfg.lane_width = 0;
  cfg.engine = EngineKind::kEvent;
  const auto ev = make_engine(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  EXPECT_EQ(ev->kind(), EngineKind::kEvent);
  EXPECT_NE(dynamic_cast<TimingSimulator*>(ev.get()), nullptr);
}

// The packed 64-lane cell evaluator must agree with cell_truth() for
// every cell kind on every minterm.
TEST(SimEngine, PackedEvalMatchesTruthTables) {
  const CellKind kinds[] = {
      CellKind::kInv,   CellKind::kBuf,   CellKind::kNand2,
      CellKind::kNor2,  CellKind::kAnd2,  CellKind::kOr2,
      CellKind::kXor2,  CellKind::kXnor2, CellKind::kAoi21,
      CellKind::kOai21, CellKind::kAo21,  CellKind::kMaj3};
  for (const CellKind kind : kinds) {
    const int n = cell_num_inputs(kind);
    Netlist nl("cell_" + cell_kind_name(kind));
    std::vector<NetId> pis;
    for (int i = 0; i < n; ++i) pis.push_back(nl.add_input("i" + std::to_string(i)));
    NetId out = invalid_net;
    switch (n) {
      case 1: out = nl.add_gate(kind, {pis[0]}); break;
      case 2: out = nl.add_gate(kind, {pis[0], pis[1]}); break;
      default: out = nl.add_gate(kind, {pis[0], pis[1], pis[2]}); break;
    }
    nl.mark_output(out);
    nl.finalize();

    TimingSimConfig cfg;
    cfg.engine = EngineKind::kLevelized;
    // Generous clock: the evaluation is purely functional.
    LevelizedSimulator sim(nl, lib(), {100.0, 1.0, 0.0}, cfg);
    for (unsigned minterm = 0; minterm < (1u << n); ++minterm) {
      std::vector<std::uint8_t> in(static_cast<std::size_t>(n), 0);
      for (int i = 0; i < n; ++i)
        in[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((minterm >> i) & 1u);
      const StepResult r = sim.step(in);
      const auto expected =
          static_cast<std::uint64_t>((cell_truth(kind) >> minterm) & 1u);
      EXPECT_EQ(r.settled_outputs, expected)
          << cell_kind_name(kind) << " minterm " << minterm;
      EXPECT_EQ(r.sampled_outputs, expected)
          << cell_kind_name(kind) << " minterm " << minterm;
    }
  }
}

// At generous Tclk both engines must agree bit-exactly with the golden
// zero-delay evaluation on every adder architecture — same stimuli,
// same per-gate variation die.
TEST(SimEngine, GenerousTclkBitExactAcrossArchitectures) {
  const AdderArch archs[] = {
      AdderArch::kRipple,      AdderArch::kBrentKung, AdderArch::kKoggeStone,
      AdderArch::kSklansky,    AdderArch::kCarrySelect,
      AdderArch::kCarrySkip,   AdderArch::kHanCarlson};
  for (const AdderArch arch : archs) {
    const DutNetlist adder = to_dut(build_adder(arch, 8));
    const double cp = critical_path_ns(adder.netlist, {1.0, 1.0, 0.0});
    const OperatingTriad relaxed{2.0 * cp, 1.0, 0.0};

    TimingSimConfig cfg;
    cfg.variation_sigma = 0.03;
    cfg.variation_seed = 7;
    cfg.engine = EngineKind::kEvent;
    VosDutSim event_sim(adder, lib(), relaxed, cfg);
    cfg.engine = EngineKind::kLevelized;
    VosDutSim lev_sim(adder, lib(), relaxed, cfg);
    EXPECT_EQ(event_sim.engine_kind(), EngineKind::kEvent);
    EXPECT_EQ(lev_sim.engine_kind(), EngineKind::kLevelized);

    PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 42);
    for (int i = 0; i < 200; ++i) {
      const OperandPair p = patterns.next();
      const VosOpResult re = event_sim.apply(p.a, p.b);
      const VosOpResult rl = lev_sim.apply(p.a, p.b);
      const std::uint64_t golden = exact_add(p.a, p.b, 8);
      EXPECT_EQ(re.sampled, golden) << adder_arch_name(arch);
      EXPECT_EQ(rl.sampled, golden) << adder_arch_name(arch);
      EXPECT_EQ(re.settled, golden) << adder_arch_name(arch);
      EXPECT_EQ(rl.settled, golden) << adder_arch_name(arch);
    }
  }
}

// Approximate architectures: the engines must agree with each other and
// with the netlist's own functional (settled) behavior.
TEST(SimEngine, GenerousTclkApproxAdderAgreesAcrossEngines) {
  const DutNetlist loa = to_dut(build_lower_or(8, 3));
  const double cp = critical_path_ns(loa.netlist, {1.0, 1.0, 0.0});
  const OperatingTriad relaxed{2.0 * cp, 1.0, 0.0};
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kEvent;
  VosDutSim event_sim(loa, lib(), relaxed, cfg);
  cfg.engine = EngineKind::kLevelized;
  VosDutSim lev_sim(loa, lib(), relaxed, cfg);
  PatternStream patterns(PatternPolicy::kUniform, 8, 9);
  for (int i = 0; i < 200; ++i) {
    const OperandPair p = patterns.next();
    const VosOpResult re = event_sim.apply(p.a, p.b);
    const VosOpResult rl = lev_sim.apply(p.a, p.b);
    EXPECT_EQ(re.sampled, rl.sampled);
    EXPECT_EQ(re.settled, rl.settled);
  }
}

// Batched evaluation must reproduce the per-step streaming semantics of
// the levelized engine exactly (values, energy and settle times).
TEST(SimEngine, LevelizedBatchMatchesStep) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = critical_path_ns(rca.netlist, {1.0, 0.7, 0.0});
  const OperatingTriad stressed{0.6 * cp, 0.7, 0.0};
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;

  VosDutSim stepper(rca, lib(), stressed, cfg);
  VosDutSim batcher(rca, lib(), stressed, cfg);
  stepper.reset(1, 2);
  batcher.reset(1, 2);

  constexpr std::size_t n = 200;  // exercises several 64-lane passes
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 5);
  std::vector<std::uint64_t> a(n);
  std::vector<std::uint64_t> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const OperandPair p = patterns.next();
    a[i] = p.a;
    b[i] = p.b;
  }
  std::vector<VosOpResult> batched(n);
  batcher.apply_batch(a, b, batched);
  for (std::size_t i = 0; i < n; ++i) {
    const VosOpResult r = stepper.apply(a[i], b[i]);
    EXPECT_EQ(batched[i].sampled, r.sampled) << "pattern " << i;
    EXPECT_EQ(batched[i].settled, r.settled) << "pattern " << i;
    EXPECT_DOUBLE_EQ(batched[i].energy_fj, r.energy_fj) << "pattern " << i;
    EXPECT_DOUBLE_EQ(batched[i].settle_time_ps, r.settle_time_ps)
        << "pattern " << i;
  }
}

// Deep over-scaling: when every path misses the clock, each operation
// samples the previous operation's settled result — in both engines.
TEST(SimEngine, DeepOverscalingLatchesPreviousResult) {
  const DutNetlist rca = to_dut(build_rca(8));
  const OperatingTriad tiny{0.001, 1.0, 0.0};  // 1 ps: everything is late
  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    TimingSimConfig cfg;
    cfg.engine = kind;
    VosDutSim sim(rca, lib(), tiny, cfg);
    sim.reset(0, 0);
    std::uint64_t prev_settled = 0;  // sum of the reset state
    PatternStream patterns(PatternPolicy::kUniform, 8, 3);
    for (int i = 0; i < 100; ++i) {
      const OperandPair p = patterns.next();
      const VosOpResult r = sim.apply(p.a, p.b);
      EXPECT_EQ(r.sampled, prev_settled)
          << engine_kind_name(kind) << " op " << i;
      EXPECT_EQ(r.settled, exact_add(p.a, p.b, 8));
      prev_settled = r.settled;
    }
  }
}

// At over-scaled Tclk the levelized BER must track the event-sim BER
// within the documented tolerance (DESIGN.md §7: ≤ 2 percentage points
// on RCA8) — same patterns, same die.
TEST(SimEngine, OverscaledBerWithinToleranceOnRca8) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = critical_path_ns(rca.netlist, {1.0, 0.8, 0.0});
  std::vector<OperatingTriad> triads;
  for (const double ratio : {1.0, 0.85, 0.7, 0.55, 0.4})
    triads.push_back({ratio * cp, 0.8, 0.0});

  CharacterizeConfig cfg;
  cfg.num_patterns = 4000;
  cfg.engine = EngineKind::kEvent;
  const auto event_res = characterize_dut(rca, lib(), triads, cfg);
  cfg.engine = EngineKind::kLevelized;
  const auto lev_res = characterize_dut(rca, lib(), triads, cfg);

  ASSERT_EQ(event_res.size(), lev_res.size());
  for (std::size_t t = 0; t < triads.size(); ++t) {
    EXPECT_NEAR(lev_res[t].ber, event_res[t].ber, 0.02)
        << "triad " << triad_label(triads[t]);
  }
  // The sweep actually exercises the error regime.
  EXPECT_GT(event_res.back().ber, 0.01);
}

// The characterizer produces identical results through the batched
// streaming path as the seed's per-pattern loop did (event engine is
// the default and the reference).
TEST(SimEngine, CharacterizerDefaultsToEventEngine) {
  CharacterizeConfig cfg;
  EXPECT_EQ(cfg.engine, EngineKind::kEvent);
}

// The characterizer's levelized grid fast path (one normalized timing
// pass, per-triad capture thresholds) must reproduce what a per-triad
// levelized simulator computes: delay scaling is uniform in (Vdd, Vbb)
// and the engine's decisions are scale-invariant, so the two paths may
// differ only by floating-point rounding on knife-edge commits.
TEST(SimEngine, SweepFastPathMatchesPerTriadLevelized) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = critical_path_ns(rca.netlist, {1.0, 0.8, 0.0});
  const std::vector<OperatingTriad> triads{
      {2.0 * cp, 1.0, 0.0}, {0.8 * cp, 0.8, 0.0}, {0.6 * cp, 0.7, 2.0}};
  CharacterizeConfig cfg;
  cfg.num_patterns = 1500;
  cfg.engine = EngineKind::kLevelized;
  const auto fast = characterize_dut(rca, lib(), triads, cfg);

  const std::vector<OperandPair> pats = [&] {
    std::vector<OperandPair> out(cfg.num_patterns + 1);
    PatternStream ps(cfg.policy, 8, cfg.pattern_seed);
    for (OperandPair& p : out) p = ps.next();
    return out;
  }();
  for (std::size_t t = 0; t < triads.size(); ++t) {
    TimingSimConfig sim_cfg;
    sim_cfg.variation_sigma = cfg.variation_sigma;
    sim_cfg.variation_seed = cfg.variation_seed;
    sim_cfg.engine = EngineKind::kLevelized;
    VosDutSim sim(rca, lib(), triads[t], sim_cfg);
    sim.reset(pats[0].a, pats[0].b);
    ErrorAccumulator acc(9);
    double energy = 0.0;
    for (std::size_t i = 1; i <= cfg.num_patterns; ++i) {
      const VosOpResult r = sim.apply(pats[i].a, pats[i].b);
      acc.add(exact_add(pats[i].a, pats[i].b, 8), r.sampled);
      energy += r.energy_fj;
    }
    EXPECT_NEAR(fast[t].ber, acc.ber(), 1e-4)
        << triad_label(triads[t]);
    EXPECT_NEAR(fast[t].energy_per_op_fj,
                energy / static_cast<double>(cfg.num_patterns),
                1e-6 * energy) << triad_label(triads[t]);
  }
}

// Non-streaming (reset-per-op) characterization works on both engines.
TEST(SimEngine, NonStreamingCharacterizeBothEngines) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = critical_path_ns(rca.netlist, {1.0, 1.0, 0.0});
  const std::vector<OperatingTriad> relaxed{{2.0 * cp, 1.0, 0.0}};
  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    CharacterizeConfig cfg;
    cfg.num_patterns = 300;
    cfg.streaming_state = false;
    cfg.engine = kind;
    const auto res = characterize_dut(rca, lib(), relaxed, cfg);
    EXPECT_EQ(res[0].ber, 0.0) << engine_kind_name(kind);
    EXPECT_GT(res[0].energy_per_op_fj, 0.0);
  }
}

// The levelized arrival model must reproduce STA: its per-net arrivals
// at zero variation equal analyze_timing's, and its critical path too.
TEST(SimEngine, LevelizedArrivalsMatchSta) {
  const DutNetlist bk = to_dut(build_brent_kung(8));
  const OperatingTriad op{1.0, 0.6, 0.0};
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;
  LevelizedSimulator sim(bk.netlist, lib(), op, cfg);
  const TimingAnalysis sta = analyze_timing(bk.netlist, lib(), op);
  for (NetId n = 0; n < static_cast<NetId>(bk.netlist.num_nets()); ++n)
    EXPECT_NEAR(sim.arrival_ps(n), sta.arrival_ps[n], 1e-9);
  EXPECT_NEAR(sim.critical_path_ps(), sta.critical_path_ps, 1e-9);
}

// arrival_times_ps with externally supplied delays (the variation die)
// bounds every per-op settle time the levelized engine reports.
TEST(SimEngine, StaArrivalBoundsSettleTimes) {
  const DutNetlist rca = to_dut(build_rca(8));
  const OperatingTriad op{0.5, 0.7, 0.0};
  TimingSimConfig cfg;
  cfg.variation_sigma = 0.05;
  cfg.variation_seed = 11;
  cfg.engine = EngineKind::kLevelized;
  cfg.lane_width = 64;  // pin the instantiation for the cast below
  VosDutSim sim(rca, lib(), op, cfg);
  const LevelizedSimulator& eng =
      dynamic_cast<const LevelizedSimulator&>(sim.engine());
  double cp = 0.0;
  for (NetId n = 0; n < static_cast<NetId>(rca.netlist.num_nets()); ++n)
    cp = std::max(cp, eng.arrival_ps(n));
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 21);
  for (int i = 0; i < 200; ++i) {
    const OperandPair p = patterns.next();
    EXPECT_LE(sim.apply(p.a, p.b).settle_time_ps, cp + 1e-9);
  }
}

}  // namespace
}  // namespace vosim
