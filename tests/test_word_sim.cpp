// Generic word-operator simulation on multiplier DUTs (the paper's
// "different arithmetic configurations" extension), plus the deprecated
#include <gtest/gtest.h>

#include "src/netlist/dut.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double mul8_cp_ns() {
  static const double cp =
      analyze_timing(build_array_multiplier(8).netlist, lib(),
                     {1, 1.0, 0.0})
          .critical_path_ps *
      1e-3;
  return cp;
}

TEST(WordSim, MultiplierExactAtRelaxedClock) {
  const DutNetlist mul = to_dut(build_array_multiplier(8));
  VosDutSim sim(mul, lib(), {mul8_cp_ns() * 2.0, 1.0, 0.0});
  EXPECT_EQ(sim.num_operands(), 2u);
  EXPECT_EQ(sim.operand_width(0), 8);
  EXPECT_EQ(sim.output_width(), 16);
  EXPECT_EQ(mul.kind, "mul8-array");
  Rng rng(1);
  for (int t = 0; t < 800; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const VosOpResult r = sim.apply(a, b);
    ASSERT_EQ(r.sampled, a * b);
    ASSERT_EQ(r.settled, a * b);
  }
}

TEST(WordSim, MultiplierBreaksUnderVos) {
  const DutNetlist mul = to_dut(build_array_multiplier(8));
  VosDutSim sim(mul, lib(), {mul8_cp_ns(), 0.6, 0.0});
  Rng rng(2);
  int errors = 0;
  for (int t = 0; t < 800; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const VosOpResult r = sim.apply(a, b);
    ASSERT_EQ(r.settled, a * b);  // functionally still a multiplier
    if (r.sampled != a * b) ++errors;
  }
  EXPECT_GT(errors, 50);
}

TEST(WordSim, MultiplierMidProductBitsFailMost) {
  // The array multiplier's longest paths end in the middle product
  // columns — the same "middle bits dominate" signature as Fig. 5.
  const DutNetlist mul = to_dut(build_array_multiplier(8));
  VosDutSim sim(mul, lib(), {mul8_cp_ns() * 0.75, 1.0, 0.0});
  Rng rng(3);
  std::vector<int> bit_err(16, 0);
  for (int t = 0; t < 3000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const std::uint64_t diff = sim.apply(a, b).sampled ^ (a * b);
    for (int i = 0; i < 16; ++i)
      if (bit_of(diff, i) != 0) ++bit_err[static_cast<std::size_t>(i)];
  }
  int mid = 0;
  int low = 0;
  for (int i = 6; i <= 12; ++i) mid += bit_err[static_cast<std::size_t>(i)];
  for (int i = 0; i <= 3; ++i) low += bit_err[static_cast<std::size_t>(i)];
  EXPECT_GT(mid, 5 * std::max(low, 1));
}

TEST(WordSim, FbbRescuesMultiplierToo) {
  const DutNetlist mul = to_dut(build_array_multiplier(8));
  auto errors_at = [&](double vdd, double vbb) {
    VosDutSim sim(mul, lib(), {mul8_cp_ns() * 1.55, vdd, vbb});
    Rng rng(4);
    int errors = 0;
    for (int t = 0; t < 500; ++t) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      if (sim.apply(a, b).sampled != a * b) ++errors;
    }
    return errors;
  };
  EXPECT_GT(errors_at(0.6, 0.0), 0);
  EXPECT_EQ(errors_at(0.6, 2.0), 0);
}

TEST(WordSim, OperandValidation) {
  const DutNetlist mul = to_dut(build_array_multiplier(4));
  VosDutSim sim(mul, lib(), {10.0, 1.0, 0.0});
  EXPECT_THROW(sim.apply(0x10, 0), ContractViolation);  // 5 bits into 4
  const std::uint64_t one_op[1] = {0};
  EXPECT_THROW(sim.apply({one_op, 1}), ContractViolation);  // missing op
}

TEST(WordSim, BusNetsMustBePrimaryInputs) {
  const MultiplierNetlist mul = build_array_multiplier(4);
  std::vector<NetId> bogus{mul.prod[0]};  // an output net, not a PI
  const DutNetlist dut =
      make_dut(mul.netlist, {mul.a, bogus}, mul.prod);
  EXPECT_THROW(DutPinMap{dut}, ContractViolation);
}

TEST(WordSim, EnergyScalesWithActivity) {
  const DutNetlist mul = to_dut(build_array_multiplier(8));
  VosDutSim sim(mul, lib(), {mul8_cp_ns() * 2.0, 1.0, 0.0});
  sim.reset(0, 0);
  // Re-applying identical operands costs only leakage.
  const VosOpResult idle = sim.apply(0, 0);
  EXPECT_DOUBLE_EQ(idle.energy_fj, sim.leakage_energy_fj());
  const VosOpResult busy = sim.apply(0xFF, 0xFF);
  EXPECT_GT(busy.energy_fj, 10.0 * idle.energy_fj);
}

}  // namespace
}  // namespace vosim
