// VCD waveform export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/netlist/adders.hpp"
#include "src/sim/vcd.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Vcd, HeaderDeclaresEveryNet) {
  const AdderNetlist rca = build_rca(4);
  TimingSimConfig cfg;
  cfg.record_trace = true;
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  sim.step(in);

  std::ostringstream os;
  write_vcd(sim, os);
  const std::string vcd = os.str();
  EXPECT_EQ(count_occurrences(vcd, "$var wire 1 "),
            static_cast<int>(rca.netlist.num_nets()) + 1);  // + clk marker
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("clk_sample"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, TraceMatchesToggleCount) {
  const AdderNetlist rca = build_rca(8);
  TimingSimConfig cfg;
  cfg.record_trace = true;
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  TimingSimulator sim(rca.netlist, lib(), {2.0 * cp_ns, 1.0, 0.0}, cfg);
  std::vector<std::uint8_t> zeros(rca.netlist.primary_inputs().size(), 0);
  std::vector<std::uint8_t> ones(rca.netlist.primary_inputs().size(), 1);
  sim.settle(zeros);
  const StepResult r = sim.step(ones);
  EXPECT_EQ(sim.trace().size(), r.toggles_total);
  // Events are time-ordered.
  double prev = -1.0;
  for (const TraceEvent& e : sim.trace()) {
    EXPECT_GE(e.time_ps, prev);
    prev = e.time_ps;
  }
}

TEST(Vcd, RequiresTracing) {
  const AdderNetlist rca = build_rca(4);
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0});
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 1);
  sim.step(in);
  std::ostringstream os;
  EXPECT_THROW(write_vcd(sim, os), ContractViolation);
}

TEST(Vcd, TakeTraceTransfersOwnership) {
  const AdderNetlist rca = build_rca(4);
  TimingSimConfig cfg;
  cfg.record_trace = true;
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  const StepResult r = sim.step(in);

  std::vector<TraceEvent> trace = sim.take_trace();
  EXPECT_EQ(trace.size(), r.toggles_total);
  // The simulator no longer holds the events (or their allocation).
  EXPECT_EQ(sim.trace().size(), 0u);
  // The next traced step records into a fresh buffer.
  in[0] = 0;
  const StepResult r2 = sim.step(in);
  EXPECT_EQ(sim.trace().size(), r2.toggles_total);
  EXPECT_GT(sim.trace().size(), 0u);
}

TEST(Vcd, TraceClearedBetweenSteps) {
  const AdderNetlist rca = build_rca(4);
  TimingSimConfig cfg;
  cfg.record_trace = true;
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0}, cfg);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  sim.step(in);
  const std::size_t first = sim.trace().size();
  EXPECT_GT(first, 0u);
  // Identical inputs: nothing toggles in the second step.
  sim.step(in);
  EXPECT_EQ(sim.trace().size(), 0u);
}

}  // namespace
}  // namespace vosim
