// VCD waveform export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/netlist/adders.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/vcd.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/seq/seq_vcd.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Vcd, HeaderDeclaresEveryNet) {
  const AdderNetlist rca = build_rca(4);
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0});
  VcdObserver obs;
  sim.attach_observer(&obs);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  sim.step(in);

  std::ostringstream os;
  obs.write(os);
  const std::string vcd = os.str();
  EXPECT_EQ(count_occurrences(vcd, "$var wire 1 "),
            static_cast<int>(rca.netlist.num_nets()) + 1);  // + clk marker
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("clk_sample"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, TraceMatchesToggleCount) {
  const AdderNetlist rca = build_rca(8);
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  TimingSimulator sim(rca.netlist, lib(), {2.0 * cp_ns, 1.0, 0.0});
  TraceRecorder rec;
  sim.attach_observer(&rec);
  std::vector<std::uint8_t> zeros(rca.netlist.primary_inputs().size(), 0);
  std::vector<std::uint8_t> ones(rca.netlist.primary_inputs().size(), 1);
  sim.settle(zeros);
  const StepResult r = sim.step(ones);
  EXPECT_EQ(rec.trace().size(), r.toggles_total);
  // Events are time-ordered.
  double prev = -1.0;
  for (const TraceEvent& e : rec.trace()) {
    EXPECT_GE(e.time_ps, prev);
    prev = e.time_ps;
  }
}

TEST(Vcd, VcdObserverRequiresObservedStep) {
  // A VcdObserver that never saw a step has no baseline to dump.
  VcdObserver obs;
  std::ostringstream os;
  EXPECT_THROW(obs.write(os), ContractViolation);
}

TEST(Vcd, TakeTraceTransfersOwnership) {
  const AdderNetlist rca = build_rca(4);
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0});
  TraceRecorder rec;
  sim.attach_observer(&rec);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  const StepResult r = sim.step(in);

  std::vector<TraceEvent> trace = rec.take_trace();
  EXPECT_EQ(trace.size(), r.toggles_total);
  // The recorder no longer holds the events (or their allocation).
  EXPECT_EQ(rec.trace().size(), 0u);
  // The next traced step records into a fresh buffer.
  in[0] = 0;
  const StepResult r2 = sim.step(in);
  EXPECT_EQ(rec.trace().size(), r2.toggles_total);
  EXPECT_GT(rec.trace().size(), 0u);
}

TEST(Vcd, TraceClearedBetweenSteps) {
  const AdderNetlist rca = build_rca(4);
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0});
  TraceRecorder rec;
  sim.attach_observer(&rec);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  sim.step(in);
  const std::size_t first = rec.trace().size();
  EXPECT_GT(first, 0u);
  // Identical inputs: nothing toggles in the second step.
  sim.step(in);
  EXPECT_EQ(rec.trace().size(), 0u);
}

TEST(Vcd, DetachStopsRecording) {
  const AdderNetlist rca = build_rca(4);
  TimingSimulator sim(rca.netlist, lib(), {1.0, 1.0, 0.0});
  TraceRecorder rec;
  sim.attach_observer(&rec);
  std::vector<std::uint8_t> in(rca.netlist.primary_inputs().size(), 0);
  in[0] = 1;
  sim.step(in);
  EXPECT_GT(rec.trace().size(), 0u);
  sim.detach_observer(&rec);
  const std::size_t frozen = rec.trace().size();
  in[0] = 0;
  sim.step(in);
  // Detached: the recorder keeps the last observed step untouched.
  EXPECT_EQ(rec.trace().size(), frozen);
}

// ------------------------------------------------- multi-cycle writer
TEST(VcdWriterMultiCycle, PipelinedTraceSmoke) {
  // Satellite check: a pipelined multi-cycle run exports per-cycle
  // timestamps, stage scopes and register-bank words that a VCD viewer
  // can open — structural assertions on the emitted text.
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  TimingSimConfig cfg;
  cfg.record_trace = true;  // event engine (the default)
  SeqSim sim(seq, lib(), {1.5, 1.0, 0.0}, cfg);
  const int cycles = 5;
  for (int c = 0; c < cycles; ++c)
    sim.step_cycle(17 + 11 * c, 29 + 7 * c);
  ASSERT_EQ(sim.cycle_traces().size(), static_cast<std::size_t>(cycles));

  std::ostringstream os;
  write_seq_vcd(sim, os);
  const std::string vcd = os.str();

  // Scopes: one per stage plus the register module.
  EXPECT_NE(vcd.find("$scope module stage0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module stage1 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module registers $end"), std::string::npos);
  // Register banks as multi-bit words: 16-bit input bank, 32-bit
  // inter-stage bank, 18-bit output register.
  EXPECT_NE(vcd.find("$var wire 16 "), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 32 "), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 18 "), std::string::npos);
  EXPECT_NE(vcd.find("bank_in"), std::string::npos);
  EXPECT_NE(vcd.find("out_reg"), std::string::npos);
  // Every capture edge gets a timestamp (cycles are spaced by the
  // capture period Tclk − t_setup): #T, #2·T, … and the clk marker
  // pulses each cycle.
  const long tclk_ps = 1500 - static_cast<long>(lib().dff_setup_ps());
  for (int c = 1; c <= cycles; ++c)
    EXPECT_NE(vcd.find("#" + std::to_string(tclk_ps * c)),
              std::string::npos)
        << "cycle " << c;
  EXPECT_EQ(count_occurrences(vcd, "1~~"), cycles);
  // Binary word dumps are present (b<bits> <id> lines).
  EXPECT_GT(count_occurrences(vcd, "\nb"), cycles);

  // Timestamps strictly increase through the whole dump.
  long last = -1;
  std::istringstream is(vcd);
  std::string line;
  bool in_dump = false;
  while (std::getline(is, line)) {
    if (line == "$enddefinitions $end") in_dump = true;
    if (!in_dump || line.empty() || line[0] != '#') continue;
    const long t = std::stol(line.substr(1));
    EXPECT_GT(t, last);
    last = t;
  }
  EXPECT_GE(last, tclk_ps * cycles);

  // clear_traces empties the accumulator; writing then throws.
  sim.clear_traces();
  std::ostringstream os2;
  EXPECT_THROW(write_seq_vcd(sim, os2), ContractViolation);
}

TEST(VcdWriterMultiCycle, MergesScopesAndToleratesEmptyCycles) {
  // Two scopes, a bank word, and cycles where one or both scopes have
  // no transitions at all: the writer must still emit the launch-edge
  // word updates and the clk pulse for every cycle, with strictly
  // increasing timestamps.
  const AdderNetlist a = build_rca(2);
  const AdderNetlist b = build_rca(2);
  VcdWriter w(1000.0);
  const std::size_t s0 = w.add_scope("alpha", a.netlist);
  const std::size_t s1 = w.add_scope("beta", b.netlist);
  ASSERT_EQ(s0, 0u);
  ASSERT_EQ(s1, 1u);
  w.add_word("bank", 4);

  const std::size_t na = a.netlist.num_nets();
  const std::size_t nb = b.netlist.num_nets();
  w.begin({std::vector<std::uint8_t>(na, 0),
           std::vector<std::uint8_t>(nb, 0)});

  // Cycle 0: only scope alpha toggles.
  w.append_cycle({{TraceEvent{10.0, 0, 1}, TraceEvent{250.0, 1, 1}}, {}},
                 {0x5});
  // Cycle 1: completely event-free (both scopes quiet, word unchanged).
  w.append_cycle({{}, {}}, {0x5});
  // Cycle 2: only scope beta toggles; the bank word changes.
  w.append_cycle({{}, {TraceEvent{400.0, 2, 1}}}, {0xA});
  EXPECT_EQ(w.cycles(), 3u);

  std::ostringstream os;
  w.write(os);
  const std::string vcd = os.str();

  EXPECT_NE(vcd.find("$scope module alpha $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module beta $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 4 "), std::string::npos);
  // One clk pulse per cycle despite the empty cycle 1.
  EXPECT_EQ(count_occurrences(vcd, "1~~"), 3);
  // Capture-edge timestamps for all three cycles.
  EXPECT_NE(vcd.find("#1000"), std::string::npos);
  EXPECT_NE(vcd.find("#2000"), std::string::npos);
  EXPECT_NE(vcd.find("#3000"), std::string::npos);
  // The bank word is re-emitted only when it changes: initial 0101 and
  // the cycle-2 launch-edge 1010.
  EXPECT_EQ(count_occurrences(vcd, "b0101 "), 1);
  EXPECT_EQ(count_occurrences(vcd, "b1010 "), 1);

  // Timestamps strictly increase through the dump.
  long last = -1;
  std::istringstream is(vcd);
  std::string line;
  bool in_dump = false;
  while (std::getline(is, line)) {
    if (line == "$enddefinitions $end") in_dump = true;
    if (!in_dump || line.empty() || line[0] != '#') continue;
    const long t = std::stol(line.substr(1));
    EXPECT_GT(t, last);
    last = t;
  }
  EXPECT_EQ(last, 3000);
}

}  // namespace
}  // namespace vosim
