// Zero-delay logic evaluation tests, parameterized over every cell kind.
#include <gtest/gtest.h>

#include "src/sim/logic.hpp"
#include "src/tech/cell.hpp"
#include "src/util/contracts.hpp"

namespace vosim {
namespace {

class CellEvalTest : public ::testing::TestWithParam<CellKind> {};

TEST_P(CellEvalTest, SingleGateMatchesTruthTable) {
  const CellKind kind = GetParam();
  const int n_in = cell_num_inputs(kind);

  Netlist nl("one_gate");
  std::vector<NetId> ins;
  for (int i = 0; i < n_in; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  NetId out = invalid_net;
  switch (n_in) {
    case 0: out = nl.add_gate(kind, {}); break;
    case 1: out = nl.add_gate(kind, {ins[0]}); break;
    case 2: out = nl.add_gate(kind, {ins[0], ins[1]}); break;
    default: out = nl.add_gate(kind, {ins[0], ins[1], ins[2]}); break;
  }
  nl.mark_output(out);
  nl.finalize();

  const unsigned combos = 1u << n_in;
  for (unsigned idx = 0; idx < combos; ++idx) {
    std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n_in), 0);
    for (int i = 0; i < n_in; ++i)
      inputs[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((idx >> i) & 1u);
    const auto values = evaluate_logic(nl, inputs);
    EXPECT_EQ(values[out], (cell_truth(kind) >> idx) & 1u)
        << cell_kind_name(kind) << " minterm " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CellEvalTest,
    ::testing::Values(CellKind::kInv, CellKind::kBuf, CellKind::kNand2,
                      CellKind::kNor2, CellKind::kAnd2, CellKind::kOr2,
                      CellKind::kXor2, CellKind::kXnor2, CellKind::kAoi21,
                      CellKind::kOai21, CellKind::kAo21, CellKind::kMaj3,
                      CellKind::kTieLo, CellKind::kTieHi),
    [](const ::testing::TestParamInfo<CellKind>& info) {
      std::string n = cell_kind_name(info.param);
      return n.substr(0, n.find('_'));
    });

TEST(EvaluateLogic, InputArityChecked) {
  Netlist nl("x");
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(CellKind::kInv, {a}));
  nl.finalize();
  const std::vector<std::uint8_t> wrong(2, 0);
  EXPECT_THROW(evaluate_logic(nl, wrong), ContractViolation);
}

TEST(EvaluateLogic, MultiLevelNetwork) {
  // f = (a NAND b) XOR (a OR c)
  Netlist nl("f");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId nand_ab = nl.add_gate(CellKind::kNand2, {a, b});
  const NetId or_ac = nl.add_gate(CellKind::kOr2, {a, c});
  const NetId f = nl.add_gate(CellKind::kXor2, {nand_ab, or_ac});
  nl.mark_output(f);
  nl.finalize();
  for (unsigned idx = 0; idx < 8; ++idx) {
    const bool va = idx & 1, vb = (idx >> 1) & 1, vc = (idx >> 2) & 1;
    const bool expect = (!(va && vb)) != (va || vc);
    const std::vector<std::uint8_t> in{static_cast<std::uint8_t>(va),
                                       static_cast<std::uint8_t>(vb),
                                       static_cast<std::uint8_t>(vc)};
    EXPECT_EQ(evaluate_logic(nl, in)[f], expect ? 1 : 0) << idx;
  }
}

TEST(PackWord, PacksSelectedNets) {
  std::vector<std::uint8_t> values{1, 0, 1, 1};
  const std::vector<NetId> nets{3, 2, 0};
  // bit0 = net3 (1), bit1 = net2 (1), bit2 = net0 (1) => 0b111.
  EXPECT_EQ(pack_word(values, nets), 0b111u);
}

TEST(PackWord, ExplicitExample) {
  std::vector<std::uint8_t> values{0, 1, 0, 1};
  const std::vector<NetId> nets{1, 2, 3};
  // bit0 = net1 (1), bit1 = net2 (0), bit2 = net3 (1) => 0b101.
  EXPECT_EQ(pack_word(values, nets), 0b101u);
}

}  // namespace
}  // namespace vosim
