// Sequential subsystem structure tests: pipeline registry, stage
// boundary validation, settled (golden) functions, bank-word packing,
// flop counting, clock energy and the per-stage slack report.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/netlist/dut.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"
#include "src/util/fuzzy.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

TEST(SeqDutTest, RegistryShapes) {
  const SeqDut mul = build_seq_circuit("pipe2-mul8");
  EXPECT_EQ(mul.num_stages(), 2u);
  EXPECT_EQ(mul.num_operands(), 2u);
  EXPECT_EQ(mul.operand_width(0), 8);
  EXPECT_EQ(mul.operand_width(1), 8);
  EXPECT_EQ(mul.latency_cycles(), 2u);

  const SeqDut mac = build_seq_circuit("pipe3-mac4x8");
  EXPECT_EQ(mac.num_stages(), 3u);
  EXPECT_EQ(mac.num_operands(), 8u);
  EXPECT_EQ(mac.output_width(), 18);

  const SeqDut fir = build_seq_circuit("fir4-pipe");
  EXPECT_EQ(fir.num_stages(), 3u);
  EXPECT_EQ(fir.num_operands(), 4u);
  EXPECT_EQ(fir.output_width(), 11);
}

TEST(SeqDutTest, SettledFunctions) {
  const SeqDut mul = build_seq_circuit("pipe2-mul8");
  const SeqDut mac = build_seq_circuit("pipe3-mac4x8");
  const SeqDut fir = build_seq_circuit("fir4-pipe");
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng() & 0xFF;
    const std::uint64_t b = rng() & 0xFF;
    const std::uint64_t ops2[2] = {a, b};
    EXPECT_EQ(seq_settled_output(mul, ops2), a * b);

    std::uint64_t ops8[8];
    std::uint64_t acc = 0;
    for (int t = 0; t < 4; ++t) {
      ops8[2 * t] = rng() & 0xFF;
      ops8[2 * t + 1] = rng() & 0xFF;
      acc += ops8[2 * t] * ops8[2 * t + 1];
    }
    EXPECT_EQ(seq_settled_output(mac, ops8), acc);

    std::uint64_t ops4[4];
    std::uint64_t sum = 0;
    for (int t = 0; t < 4; ++t) {
      ops4[t] = rng() & 0xFF;
      sum += ops4[t];
    }
    EXPECT_EQ(seq_settled_output(fir, ops4), sum);
  }
}

TEST(SeqDutTest, StageBoundariesLineUp) {
  for (const std::string& spec : seq_circuit_registry()) {
    const SeqDut seq = build_seq_circuit(spec);
    for (std::size_t k = 1; k < seq.num_stages(); ++k) {
      int fed = 0;
      for (const int w : seq.stages[k].operand_widths()) fed += w;
      EXPECT_EQ(fed, seq.stages[k - 1].output_width()) << spec;
    }
  }
}

TEST(SeqDutTest, MisalignedStagesRejected) {
  // mul8-array registers 16 bits; an rca8 stage consumes 16 too — but
  // rca16 (32 consumed) does not.
  std::vector<DutNetlist> ok;
  ok.push_back(build_circuit("mul8-array"));
  ok.push_back(build_circuit("rca8"));
  EXPECT_NO_THROW(make_seq_dut(std::move(ok), "t", "t"));
  std::vector<DutNetlist> bad;
  bad.push_back(build_circuit("mul8-array"));
  bad.push_back(build_circuit("rca16"));
  EXPECT_THROW(make_seq_dut(std::move(bad), "t", "t"),
               ContractViolation);
  EXPECT_THROW(make_seq_dut({}, "t", "t"), ContractViolation);
}

TEST(SeqDutTest, WrapAsPipeline) {
  const SeqDut seq = wrap_as_pipeline(build_circuit("rca16"));
  EXPECT_EQ(seq.num_stages(), 1u);
  EXPECT_EQ(seq.kind, "seq(rca16)");
  EXPECT_EQ(seq.latency_cycles(), 1u);
  // Flops: 16 + 16 operand bits in, 17 result bits out.
  EXPECT_EQ(seq.num_flops(), 32 + 17);
  const std::uint64_t ops[2] = {1234, 4321};
  EXPECT_EQ(seq_settled_output(seq, ops), 1234u + 4321u);
}

TEST(SeqDutTest, FlopCountAndClockEnergy) {
  const SeqDut mul = build_seq_circuit("pipe2-mul8");
  // input bank 16 + stage0 out 32 + stage1 out 18.
  EXPECT_EQ(mul.num_flops(), 16 + 32 + 18);
  const CellLibrary& lib = make_fdsoi28_lvt();
  const double nominal = seq_clock_energy_fj(mul, lib, 1.0);
  EXPECT_DOUBLE_EQ(nominal, mul.num_flops() * lib.dff_clock_energy_fj());
  // CV² scaling: half the supply, a quarter of the clock energy.
  EXPECT_NEAR(seq_clock_energy_fj(mul, lib, 0.5), nominal / 4.0, 1e-12);
}

TEST(SeqDutTest, SplitBankWordRoundTrip) {
  const int widths[3] = {9, 8, 8};
  const std::uint64_t word = (0x55ULL << 17) | (0xA3ULL << 9) | 0x1F0ULL;
  const auto parts = split_bank_word(word, widths);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], word & 0x1FFULL);
  EXPECT_EQ(parts[1], (word >> 9) & 0xFFULL);
  EXPECT_EQ(parts[2], (word >> 17) & 0xFFULL);
}

TEST(SeqDutTest, UnknownSpecSuggestsNearMatch) {
  try {
    build_seq_circuit("pipe2-mul9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pipe2-mul8"),
              std::string::npos);
  }
  // The combinational registry suggests too (satellite: unknown
  // --circuit errors suggest near-matches).
  try {
    build_circuit("mul8-walace");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mul8-wallace"),
              std::string::npos);
  }
}

TEST(SeqDutTest, SpecRouting) {
  EXPECT_TRUE(is_seq_circuit_spec("pipe2-mul8"));
  EXPECT_TRUE(is_seq_circuit_spec("fir4-pipe"));
  EXPECT_FALSE(is_seq_circuit_spec("mul8-array"));
  EXPECT_FALSE(is_seq_circuit_spec("rca16"));
  // Every registry example still builds.
  for (const std::string& spec : circuit_registry_examples())
    EXPECT_NO_THROW(build_circuit(spec)) << spec;
}

TEST(FuzzyTest, EditDistanceAndClosestMatch) {
  EXPECT_EQ(edit_distance("rca8", "rca8"), 0u);
  EXPECT_EQ(edit_distance("rca8", "rca16"), 2u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  const std::vector<std::string> c = {"rca8", "bka16", "mul8-array"};
  EXPECT_EQ(closest_match("rca9", c), "rca8");
  EXPECT_EQ(closest_match("mul8-aray", c), "mul8-array");
  EXPECT_EQ(closest_match("zzzzzzzz", c), "");
}

TEST(SeqReportTest, StageSlacks) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const CellLibrary& lib = make_fdsoi28_lvt();
  const double cp_ns = seq_critical_path_ns(seq, lib);
  EXPECT_GT(cp_ns, 0.0);
  // At the pipeline's own signoff CP every stage has non-negative slack
  // and nothing misses the capture edge.
  const auto relaxed = seq_stage_slacks(seq, lib, {cp_ns, 1.0, 0.0});
  ASSERT_EQ(relaxed.size(), seq.num_stages());
  double min_slack = 1e18;
  for (const StageSlack& s : relaxed) {
    EXPECT_GT(s.critical_path_ps, 0.0);
    EXPECT_GE(s.slack_ps, 0.0);
    EXPECT_EQ(s.failing_outputs, 0);
    min_slack = std::min(min_slack, s.slack_ps);
  }
  // The slowest stage defines the constraint: its typical-corner path
  // leaves less slack than the signoff CP margin.
  EXPECT_LT(min_slack, cp_ns * 1e3);
  // Heavily over-scaled, the multiplier stage must start failing.
  const auto scaled = seq_stage_slacks(seq, lib, {cp_ns * 0.2, 0.5, 0.0});
  int failing = 0;
  for (const StageSlack& s : scaled) failing += s.failing_outputs;
  EXPECT_GT(failing, 0);
}

}  // namespace
}  // namespace vosim
