// Error-provenance acceptance pin (DESIGN.md §13): the per-bit BER
// derived from ErrorProvenance culprit attribution must reproduce the
// output-diff bitwise BER bit-exactly on both SimEngine backends — the
// primary-output net sits in its own fan-in cone and fails whenever
// its bit is erroneous, so attribution never loses a bit. Plus the
// accounting invariants (culprit totals, slack ordering, empty
// summaries when provenance is off) and the sequential per-stage
// labeling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/triads.hpp"
#include "src/netlist/dut.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

double critical_path_ns(const Netlist& nl, const OperatingTriad& op) {
  return analyze_timing(nl, lib(), op).critical_path_ps * 1e-3;
}

CharacterizeConfig provenance_config(EngineKind engine) {
  CharacterizeConfig cfg;
  cfg.num_patterns = 1500;
  cfg.engine = engine;
  cfg.provenance = true;
  cfg.top_culprits = 1024;  // keep every culprit: totals must balance
  return cfg;
}

class ProvenanceEquivalence : public ::testing::TestWithParam<const char*> {
};

// The satellite acceptance pin: over the error-onset band the
// attribution-derived per-bit error probabilities equal the
// output-diff ones bit for bit, on both engines, for adder and
// multiplier topologies alike.
TEST_P(ProvenanceEquivalence, BitwiseBerMatchesOutputDiffBitExactly) {
  const DutNetlist dut = build_circuit(GetParam());
  const double cp = critical_path_ns(dut.netlist, {1.0, 0.8, 0.0});
  std::vector<OperatingTriad> triads;
  for (const double ratio : {1.0, 0.75, 0.55})
    triads.push_back({ratio * cp, 0.8, 0.0});

  for (const EngineKind engine :
       {EngineKind::kEvent, EngineKind::kLevelized}) {
    const CharacterizeConfig cfg = provenance_config(engine);
    const auto results = characterize_dut(dut, lib(), triads, cfg);
    ASSERT_EQ(results.size(), triads.size());

    bool saw_errors = false;
    for (const TriadResult& r : results) {
      const ProvenanceSummary& p = r.provenance;
      SCOPED_TRACE(std::string(GetParam()) + " " +
                   triad_label(r.triad) + " engine " +
                   (engine == EngineKind::kEvent ? "event" : "lev"));
      EXPECT_EQ(p.ops, static_cast<std::uint64_t>(r.patterns));
      ASSERT_EQ(p.bitwise_ber.size(), r.bitwise_ber.size());
      for (std::size_t b = 0; b < r.bitwise_ber.size(); ++b)
        EXPECT_DOUBLE_EQ(p.bitwise_ber[b], r.bitwise_ber[b])
            << "bit " << b;
      EXPECT_NEAR(p.ber(), r.ber, 1e-12);

      // Accounting: every attributed bit lives in exactly one culprit
      // bucket (top_culprits is large enough to keep them all), the
      // histogram is sorted descending, and slack quantiles are
      // ordered.
      std::uint64_t culprit_total = 0;
      for (std::size_t c = 0; c < p.culprits.size(); ++c) {
        culprit_total += p.culprits[c].bits;
        EXPECT_FALSE(p.culprits[c].name.empty());
        EXPECT_GE(p.culprits[c].level, 0);
        if (c > 0)
          EXPECT_GE(p.culprits[c - 1].bits, p.culprits[c].bits);
      }
      EXPECT_EQ(culprit_total, p.attributed_bits);
      EXPECT_LE(p.erroneous_ops, p.ops);
      // Quantiles are bucket-interpolated (they can overshoot the true
      // max within one bucket width) but stay monotone.
      EXPECT_LE(p.slack_p50_ps, p.slack_p95_ps);
      EXPECT_GE(p.slack_max_ps, 0.0);
      if (engine == EngineKind::kEvent) EXPECT_EQ(p.lane_words, 0u);

      if (p.attributed_bits > 0) {
        saw_errors = true;
        EXPECT_GT(p.erroneous_ops, 0u);
        EXPECT_GT(p.slack_max_ps, 0.0);
        // "net=count,net=count" — the JSONL-safe culprit digest.
        const std::string top = p.top_culprits_string(2);
        EXPECT_NE(top.find('='), std::string::npos);
      }
    }
    // The onset band actually exercised the error regime.
    EXPECT_TRUE(saw_errors) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ProvenanceEquivalence,
                         ::testing::Values("rca8", "mul8-array"));

// A relaxed triad has no late arrivals: the summary stays all-zero
// (and proves clean sweeps don't fabricate culprits).
TEST(Provenance, RelaxedTriadAccumulatesNothing) {
  const DutNetlist dut = build_circuit("rca8");
  const double cp = critical_path_ns(dut.netlist, {1.0, 1.0, 0.0});
  const std::vector<OperatingTriad> relaxed{{2.0 * cp, 1.0, 0.0}};
  CharacterizeConfig cfg = provenance_config(EngineKind::kLevelized);
  cfg.num_patterns = 400;
  const auto res = characterize_dut(dut, lib(), relaxed, cfg);
  ASSERT_EQ(res.size(), 1u);
  const ProvenanceSummary& p = res[0].provenance;
  EXPECT_EQ(p.ops, 400u);
  EXPECT_EQ(p.erroneous_ops, 0u);
  EXPECT_EQ(p.attributed_bits, 0u);
  EXPECT_TRUE(p.culprits.empty());
  EXPECT_GT(p.lane_words, 0u);  // levelized passes were observed
  for (const double b : p.bitwise_ber) EXPECT_DOUBLE_EQ(b, 0.0);
  EXPECT_DOUBLE_EQ(p.slack_max_ps, 0.0);
  EXPECT_EQ(p.top_culprits_string(4), "");
}

// Provenance is strictly opt-in: the default sweep leaves the summary
// empty (and keeps the grid fast paths eligible).
TEST(Provenance, OffByDefaultLeavesSummaryEmpty) {
  const DutNetlist dut = build_circuit("rca8");
  const double cp = critical_path_ns(dut.netlist, {1.0, 0.8, 0.0});
  CharacterizeConfig cfg;
  cfg.num_patterns = 300;
  cfg.engine = EngineKind::kLevelized;
  const auto res =
      characterize_dut(dut, lib(), {{0.55 * cp, 0.8, 0.0}}, cfg);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].provenance.ops, 0u);
  EXPECT_TRUE(res[0].provenance.bitwise_ber.empty());
  EXPECT_TRUE(res[0].provenance.culprits.empty());
}

// Sequential sweeps attribute per stage: culprit names carry the
// "s<k>:" stage prefix, totals still balance, and the per-op error
// accounting covers every cycle observed.
TEST(Provenance, SeqSweepLabelsCulpritsPerStage) {
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib());
  CharacterizeConfig cfg = provenance_config(EngineKind::kLevelized);
  cfg.num_patterns = 600;
  const std::vector<OperatingTriad> triads{{0.55 * cp, 0.8, 0.0}};
  const auto res = characterize_seq_dut(seq, lib(), triads, cfg);
  ASSERT_EQ(res.size(), 1u);
  const ProvenanceSummary& p = res[0].provenance;
  EXPECT_GT(p.ops, 0u);
  EXPECT_GT(p.attributed_bits, 0u);
  ASSERT_FALSE(p.culprits.empty());
  std::uint64_t culprit_total = 0;
  for (const CulpritCount& c : p.culprits) {
    culprit_total += c.bits;
    EXPECT_EQ(c.name.rfind("s", 0), 0u) << c.name;
    EXPECT_NE(c.name.find(':'), std::string::npos) << c.name;
  }
  EXPECT_EQ(culprit_total, p.attributed_bits);
  // The output stage's local per-bit profile is present and sized to
  // the output register.
  EXPECT_FALSE(p.bitwise_ber.empty());
}

}  // namespace
}  // namespace vosim
