// Netlist pruning and equivalence-checking tests.
#include <gtest/gtest.h>

#include "src/netlist/adders.hpp"
#include "src/netlist/approx_adders.hpp"
#include "src/netlist/eval.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/netlist/optimize.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

TEST(Prune, RemovesUnreachableGates) {
  Netlist nl("dead");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId keep = nl.add_gate(CellKind::kAnd2, {a, b}, "keep");
  // Dead cone: two gates never reaching an output.
  const NetId d1 = nl.add_gate(CellKind::kOr2, {a, b}, "d1");
  nl.add_gate(CellKind::kInv, {d1}, "d2");
  nl.mark_output(keep);
  nl.finalize();

  PruneStats stats;
  const Netlist pruned = prune_dead_gates(nl, &stats);
  EXPECT_EQ(stats.gates_before, 3u);
  EXPECT_EQ(stats.gates_after, 1u);
  EXPECT_EQ(pruned.num_gates(), 1u);
  EXPECT_EQ(pruned.primary_inputs().size(), 2u);
  EXPECT_TRUE(probably_equivalent(nl, pruned));
}

TEST(Prune, ExactNetlistsAreAlreadyClean) {
  const AdderNetlist rca = build_rca(8);
  PruneStats stats;
  const Netlist pruned = prune_dead_gates(rca.netlist, &stats);
  EXPECT_EQ(stats.gates_before, stats.gates_after);
  EXPECT_TRUE(probably_equivalent(rca.netlist, pruned));
}

TEST(Prune, WallaceTopCarryConeIsPruned) {
  const MultiplierNetlist wal = build_wallace_multiplier(8);
  PruneStats stats;
  const Netlist pruned = prune_dead_gates(wal.netlist, &stats);
  EXPECT_LT(stats.gates_after, stats.gates_before);
  EXPECT_TRUE(probably_equivalent(wal.netlist, pruned, /*seed=*/7,
                                  /*random_trials=*/2000));
}

TEST(Prune, NetMapCoversOutputs) {
  const AdderNetlist rca = build_rca(4);
  std::vector<NetId> map;
  const Netlist pruned = prune_dead_gates(rca.netlist, nullptr, &map);
  for (const NetId po : rca.netlist.primary_outputs())
    EXPECT_NE(map.at(po), invalid_net);
  EXPECT_EQ(pruned.primary_outputs().size(),
            rca.netlist.primary_outputs().size());
}

TEST(Equivalence, DetectsDifferentFunctions) {
  // RCA vs LOA differ on carrying patterns.
  const AdderNetlist rca = build_rca(8);
  const AdderNetlist loa = build_lower_or(8, 4);
  EXPECT_FALSE(probably_equivalent(rca.netlist, loa.netlist));
}

TEST(Equivalence, ArchitecturesOfSameFunctionAgree) {
  const AdderNetlist rca = build_rca(8);
  for (const AdderArch arch :
       {AdderArch::kBrentKung, AdderArch::kKoggeStone, AdderArch::kSklansky,
        AdderArch::kHanCarlson}) {
    const AdderNetlist other = build_adder(arch, 8);
    EXPECT_TRUE(probably_equivalent(rca.netlist, other.netlist))
        << adder_arch_name(arch);
  }
}

TEST(Equivalence, ArrayAndWallaceMultipliersAgree) {
  const MultiplierNetlist arr = build_array_multiplier(6);
  const MultiplierNetlist wal = build_wallace_multiplier(6);
  EXPECT_TRUE(probably_equivalent(arr.netlist, wal.netlist));
}

TEST(Equivalence, ArityMismatchRejected) {
  const AdderNetlist a8 = build_rca(8);
  const AdderNetlist a4 = build_rca(4);
  EXPECT_THROW(probably_equivalent(a8.netlist, a4.netlist),
               ContractViolation);
}

}  // namespace
}  // namespace vosim
