// End-to-end pipeline tests on a small adder: characterize → report →
// ladder → model → fidelity, plus report-shaping invariants.
#include <gtest/gtest.h>

#include "src/characterize/report.hpp"
#include "src/characterize/triads.hpp"
#include "src/model/evaluation.hpp"
#include "src/model/vos_model.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

struct Pipeline {
  AdderNetlist adder = build_rca(8);
  DutNetlist dut = to_dut(build_rca(8));
  SynthesisReport report;
  std::vector<OperatingTriad> triads;
  std::vector<TriadResult> results;
};

const Pipeline& pipeline() {
  static const Pipeline p = [] {
    Pipeline q;
    q.report = synthesize_report(q.adder.netlist, lib());
    q.triads = make_paper_triads(AdderArch::kRipple, 8,
                                 q.report.critical_path_ns);
    CharacterizeConfig cfg;
    cfg.num_patterns = 2500;  // reduced for test runtime
    q.results = characterize_dut(q.dut, lib(), q.triads, cfg);
    return q;
  }();
  return p;
}

TEST(Integration, TriadSetHas43Entries) {
  EXPECT_EQ(pipeline().triads.size(), 43u);
  // First entry is the relaxed nominal baseline.
  EXPECT_DOUBLE_EQ(pipeline().triads[0].vdd_v, 1.0);
  EXPECT_DOUBLE_EQ(pipeline().triads[0].vbb_v, 0.0);
  EXPECT_GT(pipeline().triads[0].tclk_ns,
            pipeline().report.critical_path_ns);
}

TEST(Integration, BaselineTriadIsErrorFree) {
  const TriadResult& base = pipeline().results[0];
  EXPECT_EQ(base.ber, 0.0);
  EXPECT_GT(base.energy_per_op_fj, 0.0);
}

TEST(Integration, SweepContainsBothRegimes) {
  int error_free = 0;
  int erroneous = 0;
  for (const TriadResult& r : pipeline().results)
    (r.ber == 0.0 ? error_free : erroneous)++;
  // The paper's Table IV: a healthy mix of both (16 vs 27 for 8-RCA).
  EXPECT_GE(error_free, 8);
  EXPECT_GE(erroneous, 15);
}

TEST(Integration, Fig8SortIsMonotone) {
  const auto sorted = sort_for_fig8(pipeline().results);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    ASSERT_GE(sorted[i].ber, sorted[i - 1].ber);
    if (sorted[i].ber == sorted[i - 1].ber)
      ASSERT_GE(sorted[i].energy_per_op_fj,
                sorted[i - 1].energy_per_op_fj);
  }
}

TEST(Integration, Table4BandsPartitionTriads) {
  const double base_fj = pipeline().results[0].energy_per_op_fj;
  const auto bands = table4_bands(pipeline().results, base_fj);
  ASSERT_EQ(bands.size(), 4u);
  int covered = 0;
  for (const auto& b : bands) covered += b.triad_count;
  // Triads above 25% BER fall outside all bands, like the paper's table.
  EXPECT_LE(covered, static_cast<int>(pipeline().results.size()));
  EXPECT_GT(covered, 20);
  // The zero band's best triad has zero BER and positive saving.
  EXPECT_TRUE(bands[0].has_best);
  EXPECT_DOUBLE_EQ(bands[0].ber_at_max_pct, 0.0);
  EXPECT_GT(bands[0].max_efficiency_pct, 0.0);
}

TEST(Integration, EfficiencyGrowsAcrossBands) {
  // More tolerated error buys more energy saving (the paper's core
  // trade-off): the best saving in the >0 bands exceeds the 0% band's.
  const double base_fj = pipeline().results[0].energy_per_op_fj;
  const auto bands = table4_bands(pipeline().results, base_fj);
  double best_err_band = 0.0;
  for (std::size_t i = 1; i < bands.size(); ++i)
    if (bands[i].has_best)
      best_err_band = std::max(best_err_band, bands[i].max_efficiency_pct);
  EXPECT_GT(best_err_band, bands[0].max_efficiency_pct);
}

TEST(Integration, LadderFromResultsIsUsable) {
  const auto ladder = build_triad_ladder(pipeline().results);
  ASSERT_GE(ladder.size(), 3u);
  EXPECT_DOUBLE_EQ(ladder.front().expected_ber, 0.0);
  EXPECT_LT(ladder.back().energy_per_op_fj,
            ladder.front().energy_per_op_fj);
}

TEST(Integration, ModelsTrackSimulatorAcrossTriads) {
  // Train on three representative triads and check fidelity on held-out
  // patterns for each.
  const Pipeline& p = pipeline();
  std::vector<OperatingTriad> picks;
  for (const TriadResult& r : p.results) {
    if (picks.size() < 3 && r.ber > 0.005 && r.ber < 0.3)
      picks.push_back(r.triad);
  }
  ASSERT_GE(picks.size(), 2u);
  TrainerConfig tcfg;
  tcfg.num_patterns = 2500;
  const ModelLibrary ml = train_model_library(p.adder, lib(), picks, tcfg);
  for (const OperatingTriad& t : picks) {
    const VosAdderModel* m = ml.find(t);
    ASSERT_NE(m, nullptr);
    VosDutSim sim(p.dut, lib(), t);
    const HardwareOracle oracle = [&](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    FidelityConfig fcfg;
    fcfg.num_patterns = 2500;
    const FidelityResult fr = evaluate_fidelity(*m, oracle, fcfg);
    EXPECT_GT(fr.snr_db, 5.0) << triad_label(t);
    EXPECT_LT(fr.normalized_hamming, 0.3) << triad_label(t);
  }
}

TEST(Integration, Table3RowDescribesSweep) {
  const TextTable t = table3_rows("8-bit RCA", pipeline().triads);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Integration, CharacterizationIsThreadCountInvariant) {
  const Pipeline& p = pipeline();
  CharacterizeConfig cfg;
  cfg.num_patterns = 600;
  std::vector<OperatingTriad> few(p.triads.begin(), p.triads.begin() + 6);
  const auto serial = [&] {
    CharacterizeConfig c = cfg;
    c.threads = 1;
    return characterize_dut(p.dut, lib(), few, c);
  }();
  const auto parallel = characterize_dut(p.dut, lib(), few, cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].ber, parallel[i].ber);
    EXPECT_DOUBLE_EQ(serial[i].energy_per_op_fj,
                     parallel[i].energy_per_op_fj);
  }
}

TEST(Integration, PaperTclkRatiosMatchTableIII) {
  const auto r8 = paper_tclk_ratios(AdderArch::kRipple, 8);
  ASSERT_EQ(r8.size(), 4u);
  EXPECT_NEAR(r8[0], 0.5 / 0.28, 0.01);
  EXPECT_NEAR(r8[2], 0.19 / 0.28, 0.01);
  const auto b16 = paper_tclk_ratios(AdderArch::kBrentKung, 16);
  EXPECT_NEAR(b16[0], 0.7 / 0.25, 0.01);
  EXPECT_NEAR(b16[3], 0.15 / 0.25, 0.01);
}

}  // namespace
}  // namespace vosim
