// Event-driven timing simulator tests: correctness at relaxed clocks,
// timing-error generation under VOS, energy accounting, consistency with
// STA and determinism of the variation model.
#include <gtest/gtest.h>

#include <tuple>

#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

/// Relaxed clock: no timing errors possible.
OperatingTriad relaxed(const Netlist& nl) {
  const double cp =
      analyze_timing(nl, lib(), {1, 1.0, 0.0}).critical_path_ps;
  return {cp * 2.0e-3, 1.0, 0.0};
}

using ArchWidth = std::tuple<AdderArch, int>;
class EventSimExactTest : public ::testing::TestWithParam<ArchWidth> {};

TEST_P(EventSimExactTest, RelaxedClockMatchesGoldenStreaming) {
  const auto [arch, width] = GetParam();
  const DutNetlist adder = to_dut(build_adder(arch, width));
  VosDutSim sim(adder, lib(), relaxed(adder.netlist));
  Rng rng(55);
  for (int t = 0; t < 1500; ++t) {
    const std::uint64_t a = rng.bits(width);
    const std::uint64_t b = rng.bits(width);
    const VosOpResult r = sim.apply(a, b);
    ASSERT_EQ(r.sampled, a + b) << adder_arch_name(arch) << width;
    ASSERT_EQ(r.settled, a + b);
    ASSERT_GT(r.energy_fj, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Archs, EventSimExactTest,
    ::testing::Values(ArchWidth{AdderArch::kRipple, 8},
                      ArchWidth{AdderArch::kRipple, 16},
                      ArchWidth{AdderArch::kBrentKung, 8},
                      ArchWidth{AdderArch::kBrentKung, 16},
                      ArchWidth{AdderArch::kKoggeStone, 8},
                      ArchWidth{AdderArch::kSklansky, 8},
                      ArchWidth{AdderArch::kCarrySkip, 8},
                      ArchWidth{AdderArch::kHanCarlson, 8},
                      ArchWidth{AdderArch::kCarrySelect, 8}),
    [](const ::testing::TestParamInfo<ArchWidth>& info) {
      return adder_arch_name(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

TEST(EventSim, SettleTimeBoundedByStaCriticalPath) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ps =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  VosDutSim sim(rca, lib(), relaxed(rca.netlist));
  Rng rng(7);
  double worst = 0.0;
  for (int t = 0; t < 4000; ++t) {
    const VosOpResult r = sim.apply(rng.bits(8), rng.bits(8));
    ASSERT_LE(r.settle_time_ps, cp_ps + 1e-6);
    worst = std::max(worst, r.settle_time_ps);
  }
  // The worst observed settle should come close to the critical path
  // once a long carry chain has been excited.
  EXPECT_GT(worst, 0.6 * cp_ps);
}

TEST(EventSim, LongCarryChainExcitesCriticalPath) {
  const DutNetlist rca = to_dut(build_rca(8));
  VosDutSim sim(rca, lib(), relaxed(rca.netlist));
  sim.reset(0, 0);
  // 0xFF + 0x01: carry ripples through every stage.
  const VosOpResult r = sim.apply(0xFF, 0x01);
  EXPECT_EQ(r.sampled, 0x100u);
  const double cp_ps =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps;
  EXPECT_GT(r.settle_time_ps, 0.7 * cp_ps);
}

TEST(EventSim, OverclockingCausesErrors) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  VosDutSim sim(rca, lib(), {0.4 * cp_ns, 1.0, 0.0});
  Rng rng(11);
  int errors = 0;
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const VosOpResult r = sim.apply(a, b);
    ASSERT_EQ(r.settled, a + b);  // settles correctly eventually
    if (r.sampled != a + b) ++errors;
  }
  EXPECT_GT(errors, 100);
}

TEST(EventSim, ErrorsDecreaseWithSlackerClock) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  auto count_errors = [&](double tclk_ns) {
    VosDutSim sim(rca, lib(), {tclk_ns, 1.0, 0.0});
    Rng rng(13);
    int errors = 0;
    for (int t = 0; t < 1500; ++t) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      if (sim.apply(a, b).sampled != a + b) ++errors;
    }
    return errors;
  };
  const int tight = count_errors(0.35 * cp_ns);
  const int mid = count_errors(0.7 * cp_ns);
  const int loose = count_errors(1.05 * cp_ns);
  EXPECT_GT(tight, mid);
  EXPECT_GE(mid, loose);
  EXPECT_EQ(loose, 0);
}

TEST(EventSim, VoltageScalingCausesErrorsAtFixedClock) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  auto ber_at = [&](double vdd, double vbb) {
    VosDutSim sim(rca, lib(), {1.2 * cp_ns, vdd, vbb});
    Rng rng(17);
    int bit_errors = 0;
    for (int t = 0; t < 1200; ++t) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      bit_errors += hamming_distance(sim.apply(a, b).sampled, a + b, 9);
    }
    return bit_errors;
  };
  EXPECT_EQ(ber_at(1.0, 0.0), 0);
  EXPECT_GT(ber_at(0.6, 0.0), 0);
  EXPECT_GT(ber_at(0.5, 0.0), ber_at(0.6, 0.0));
  // Forward body-bias rescues the 0.6 V point (paper's key effect).
  EXPECT_EQ(ber_at(0.6, 2.0), 0);
}

TEST(EventSim, DynamicEnergyExactlyQuadraticAtZeroBer) {
  // With uniformly scaled delays the event sequence is identical, so
  // window energy scales exactly as Vdd^2 while no events are cut off.
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  const double tclk = 10.0 * cp_ns;  // everything settles far before Tclk
  VosDutSim nom(rca, lib(), {tclk, 1.0, 0.0});
  VosDutSim low(rca, lib(), {tclk, 0.8, 2.0});  // FBB keeps order same
  Rng r1(19);
  Rng r2(19);
  double e_nom = 0.0;
  double e_low = 0.0;
  for (int t = 0; t < 300; ++t) {
    const std::uint64_t a = r1.bits(8);
    const std::uint64_t b = r1.bits(8);
    const std::uint64_t a2 = r2.bits(8);
    const std::uint64_t b2 = r2.bits(8);
    ASSERT_EQ(a, a2);
    e_nom += nom.apply(a, b).energy_fj - nom.leakage_energy_fj();
    e_low += low.apply(a2, b2).energy_fj - low.leakage_energy_fj();
  }
  EXPECT_NEAR(e_low / e_nom, 0.8 * 0.8, 1e-6);
}

TEST(EventSim, DeepVosTruncatesSwitchingEnergy) {
  // Under deep VOS long carry chains never complete inside the clock
  // window, so dynamic energy per op drops below the quadratic scaling
  // (DESIGN.md §6.3; the paper's Fig. 8 energy taper).
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  auto dyn_energy = [&](double vdd) {
    VosDutSim sim(rca, lib(), {1.2 * cp_ns, vdd, 0.0});
    Rng rng(23);
    double e = 0.0;
    for (int t = 0; t < 800; ++t)
      e += sim.apply(rng.bits(8), rng.bits(8)).energy_fj -
           sim.leakage_energy_fj();
    return e / 800.0;
  };
  const double e_nom = dyn_energy(1.0);
  const double e_deep = dyn_energy(0.4);  // far past the error cliff
  EXPECT_LT(e_deep / e_nom, 0.16);        // stronger than Vdd^2 alone
}

TEST(EventSim, TotalEnergyCoversWindowEnergy) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  // Deep VOS: the full-ripple stimulus 0 -> (0xFF, 0x01) leaves carry
  // transitions stranded past the clock edge.
  TimingSimulator sim(rca.netlist, lib(), {0.4 * cp_ns, 1.0, 0.0});
  std::vector<std::uint8_t> zeros(rca.netlist.primary_inputs().size(), 0);
  std::vector<std::uint8_t> ripple(rca.netlist.primary_inputs().size(), 0);
  for (int i = 0; i < 8; ++i) ripple[static_cast<std::size_t>(i)] = 1;
  ripple[8] = 1;  // b = 0x01
  sim.settle(zeros);
  const StepResult r = sim.step(ripple);
  EXPECT_GT(r.total_energy_fj, r.window_energy_fj);
  // At a relaxed clock both accountings agree.
  TimingSimulator slow(rca.netlist, lib(), {10.0 * cp_ns, 1.0, 0.0});
  slow.settle(zeros);
  const StepResult rs = slow.step(ripple);
  EXPECT_DOUBLE_EQ(rs.total_energy_fj, rs.window_energy_fj);
}

TEST(EventSim, LeakageEnergyGrowsWithTclkAndFbb) {
  const DutNetlist rca = to_dut(build_rca(8));
  VosDutSim fast(rca, lib(), {0.5, 1.0, 0.0});
  VosDutSim slow(rca, lib(), {1.0, 1.0, 0.0});
  EXPECT_NEAR(slow.leakage_energy_fj() / fast.leakage_energy_fj(), 2.0,
              1e-9);
  VosDutSim fbb(rca, lib(), {0.5, 1.0, 2.0});
  EXPECT_GT(fbb.leakage_energy_fj(), fast.leakage_energy_fj());
}

TEST(EventSim, VariationIsDeterministicPerSeed) {
  const DutNetlist rca = to_dut(build_rca(8));
  TimingSimConfig cfg;
  cfg.variation_sigma = 0.05;
  cfg.variation_seed = 1234;
  const OperatingTriad op = relaxed(rca.netlist);
  TimingSimulator s1(rca.netlist, lib(), op, cfg);
  TimingSimulator s2(rca.netlist, lib(), op, cfg);
  for (GateId g = 0; g < rca.netlist.num_gates(); ++g)
    EXPECT_DOUBLE_EQ(s1.gate_delay(g), s2.gate_delay(g));
  cfg.variation_seed = 4321;
  TimingSimulator s3(rca.netlist, lib(), op, cfg);
  int differing = 0;
  for (GateId g = 0; g < rca.netlist.num_gates(); ++g)
    if (s1.gate_delay(g) != s3.gate_delay(g)) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(EventSim, ZeroTclkRejected) {
  const DutNetlist rca = to_dut(build_rca(4));
  EXPECT_THROW(TimingSimulator(rca.netlist, lib(), {0.0, 1.0, 0.0}),
               ContractViolation);
}

TEST(EventSim, GlitchSwallowedByInertialDelay) {
  // A NAND2 fed by complementary-delay paths can glitch; with a relaxed
  // clock the sampled value must still be the settled one.
  Netlist nl("glitch");
  const NetId a = nl.add_input("a");
  const NetId inv = nl.add_gate(CellKind::kInv, {a});
  const NetId out = nl.add_gate(CellKind::kAnd2, {a, inv});  // a & !a == 0
  nl.mark_output(out);
  nl.finalize();
  TimingSimulator sim(nl, lib(), {10.0, 1.0, 0.0});
  std::vector<std::uint8_t> in0{0};
  std::vector<std::uint8_t> in1{1};
  sim.settle(in0);
  const StepResult r = sim.step(in1);
  EXPECT_EQ(r.settled_outputs, 0u);
  EXPECT_EQ(r.sampled_outputs, 0u);
}

TEST(VosDutSimTest, OperandBoundsChecked) {
  const DutNetlist rca = to_dut(build_rca(8));
  VosDutSim sim(rca, lib(), relaxed(rca.netlist));
  EXPECT_THROW(sim.apply(0x100, 0), ContractViolation);
  EXPECT_THROW(sim.apply(0, 0x1FF), ContractViolation);
}

TEST(VosDutSimTest, StreamsAreReproducible) {
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  const OperatingTriad op{0.5 * cp_ns, 1.0, 0.0};  // error-prone
  VosDutSim s1(rca, lib(), op);
  VosDutSim s2(rca, lib(), op);
  Rng r1(3);
  Rng r2(3);
  for (int t = 0; t < 500; ++t) {
    const VosOpResult x = s1.apply(r1.bits(8), r1.bits(8));
    const VosOpResult y = s2.apply(r2.bits(8), r2.bits(8));
    ASSERT_EQ(x.sampled, y.sampled);
    ASSERT_DOUBLE_EQ(x.energy_fj, y.energy_fj);
  }
}

TEST(VosDutSimTest, ErrorsDependOnPreviousState) {
  // The same operand pair can fail or succeed depending on the previous
  // state — the signature of timing (not logic) errors.
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp_ns =
      analyze_timing(rca.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  VosDutSim sim(rca, lib(), {0.45 * cp_ns, 1.0, 0.0});
  // From a settled (0xFF, 0x01) state, re-adding the same pair is a
  // no-op: no transitions, so the sampled output stays correct.
  sim.reset(0xFF, 0x01);
  EXPECT_EQ(sim.apply(0xFF, 0x01).sampled, 0x100u);
  // From (0, 0), the full carry ripple cannot finish in 45% of the CP.
  sim.reset(0x00, 0x00);
  EXPECT_NE(sim.apply(0xFF, 0x01).sampled, 0x100u);
}

}  // namespace
}  // namespace vosim
