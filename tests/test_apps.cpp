// Application-kernel tests: routed arithmetic helpers, image pipeline,
// FIR filtering and dot/SAD kernels, with exact and degraded adders.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/apps/dot.hpp"
#include "src/apps/fir.hpp"
#include "src/apps/image.hpp"
#include "src/model/prob_table.hpp"
#include "src/util/bits.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

/// A deliberately degraded model: every chain longer than `window`
/// truncates to it (deterministic worst case of a VOS table).
VosAdderModel truncating_model(int width, int window) {
  const auto n = static_cast<std::size_t>(width) + 1;
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));
  for (int l = 0; l <= width; ++l)
    counts[static_cast<std::size_t>(l)]
          [static_cast<std::size_t>(std::min(l, window))] = 1;
  return VosAdderModel(width, {0.3, 0.5, 0.0}, DistanceMetric::kMse,
                       CarryChainProbTable::from_counts(width, counts));
}

// ------------------------------------------------------------ arith helpers
TEST(ApproxArith, ExactAdderFnIsPlus) {
  const AdderFn add = exact_adder_fn(16);
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(add(a, b), a + b);
  }
}

TEST(ApproxArith, SubViaTwosComplement) {
  const AdderFn add = exact_adder_fn(16);
  Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(16);
    const std::uint64_t b = rng.bits(16);
    ASSERT_EQ(approx_sub(add, 16, a, b), (a - b) & mask_n(16));
  }
}

TEST(ApproxArith, MulViaShiftAdd) {
  const AdderFn add = exact_adder_fn(16);
  Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    ASSERT_EQ(approx_mul(add, 16, a, b), (a * b) & mask_n(16));
  }
}

TEST(ApproxArith, SaturatingAdd) {
  const AdderFn add = exact_adder_fn(8);
  EXPECT_EQ(approx_add_sat(add, 8, 250, 10), 255u);
  EXPECT_EQ(approx_add_sat(add, 8, 100, 10), 110u);
}

// Width 63 is the widest the (width+1)-bit AdderFn contract supports
// (max_word_bits); width 64 still works for the masking-only helpers
// when the adder itself wraps. Pin both boundaries.
TEST(ApproxArith, Width63MaskingAndSaturation) {
  const AdderFn add = exact_adder_fn(63);
  const std::uint64_t m = mask_n(63);
  // Saturation at max operands: the exact 64-bit sum 2m overflows the
  // 63-bit range, so the saturating add must clamp to m.
  EXPECT_EQ(approx_add_sat(add, 63, m, m), m);
  EXPECT_EQ(approx_add_sat(add, 63, m, 1), m);
  EXPECT_EQ(approx_add_sat(add, 63, m - 1, 1), m);
  EXPECT_EQ(approx_add_sat(add, 63, 5, 6), 11u);
  // Subtraction wraps within the 63-bit mask.
  EXPECT_EQ(approx_sub(add, 63, 0, 1), m);
  EXPECT_EQ(approx_sub(add, 63, m, m), 0u);
  EXPECT_EQ(approx_sub(add, 63, 1, m), 2u);
  // Operands above the mask are masked before use, not trusted.
  EXPECT_EQ(approx_add_sat(add, 63, ~0ULL, 0), m);
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.bits(63);
    const std::uint64_t b = rng.bits(63);
    EXPECT_EQ(approx_sub(add, 63, a, b), (a - b) & m);
    EXPECT_EQ(approx_add_sat(add, 63, a, b),
              (a + b) > m ? m : (a + b));
  }
}

TEST(ApproxArith, Width63MulMasksPartialProducts) {
  const AdderFn add = exact_adder_fn(63);
  const std::uint64_t m = mask_n(63);
  // Max x max: the helper must mask every shifted partial product into
  // the 63-bit accumulator (native 64-bit wrap would differ).
  std::uint64_t expect = 0;
  for (int i = 0; i < 63; ++i) expect = (expect + ((m << i) & m)) & m;
  EXPECT_EQ(approx_mul(add, 63, m, m), expect);
  EXPECT_EQ(approx_mul(add, 63, m, 0), 0u);
  EXPECT_EQ(approx_mul(add, 63, m, 1), m);
  Rng rng(18);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t a = rng.bits(32);
    const std::uint64_t b = rng.bits(31);
    EXPECT_EQ(approx_mul(add, 63, a, b), (a * b) & m);
  }
}

TEST(ApproxArith, Width64HelpersWrapWithAWrappingAdder) {
  // exact_adder_fn stops at max_word_bits = 63; a plain wrapping lambda
  // stands in at 64, where mask_n(64) must behave as ~0 (no UB shift).
  const AdderFn wrap = [](std::uint64_t a, std::uint64_t b) {
    return a + b;
  };
  EXPECT_EQ(mask_n(64), ~0ULL);
  EXPECT_EQ(approx_sub(wrap, 64, 0, 1), ~0ULL);
  EXPECT_EQ(approx_sub(wrap, 64, 5, ~0ULL), 6u);
  EXPECT_EQ(approx_mul(wrap, 64, ~0ULL, ~0ULL), 1u);  // (-1)^2 mod 2^64
  Rng rng(19);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_EQ(approx_sub(wrap, 64, a, b), a - b);
    EXPECT_EQ(approx_mul(wrap, 64, a, b), a * b);
  }
  // At width 64 a carry-out is unrepresentable, so the saturating add
  // cannot detect overflow: it degrades to the wrapping sum. Pin that
  // boundary so a silent contract change is caught.
  EXPECT_EQ(approx_add_sat(wrap, 64, ~0ULL, 1), 0u);
  EXPECT_EQ(approx_add_sat(wrap, 64, 7, 8), 15u);
}

TEST(ApproxArith, ExactAdderFnRejectsOutOfRangeWidths) {
  EXPECT_THROW(exact_adder_fn(64), ContractViolation);
  EXPECT_THROW(exact_adder_fn(0), ContractViolation);
}

TEST(ApproxArith, ModelAdderFnUsesModel) {
  const VosAdderModel model = truncating_model(16, 0);  // adds become XOR
  Rng rng(4);
  const AdderFn add = model_adder_fn(model, rng);
  EXPECT_EQ(add(0b1100, 0b1010), 0b1100ull ^ 0b1010ull);
}

// ------------------------------------------------------------------- image
TEST(ImageKernels, SceneIsDeterministic) {
  const GrayImage a = make_synthetic_scene(64, 48, 5);
  const GrayImage b = make_synthetic_scene(64, 48, 5);
  EXPECT_EQ(a.pixels, b.pixels);
  const GrayImage c = make_synthetic_scene(64, 48, 6);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(ImageKernels, PsnrIdentityIsInfinite) {
  const GrayImage img = make_synthetic_scene(32, 32, 1);
  EXPECT_TRUE(std::isinf(psnr_db(img, img)));
}

TEST(ImageKernels, BlurWithExactAdderMatchesReference) {
  const GrayImage img = make_synthetic_scene(48, 40, 7);
  const GrayImage blurred = gaussian_blur3(img, exact_adder_fn(16));
  // Integer reference straight from the kernel definition.
  for (int y = 1; y + 1 < img.height; ++y) {
    for (int x = 1; x + 1 < img.width; ++x) {
      int acc = 0;
      const int w[3] = {1, 2, 1};
      for (int ky = -1; ky <= 1; ++ky)
        for (int kx = -1; kx <= 1; ++kx)
          acc += w[ky + 1] * w[kx + 1] * img.at(x + kx, y + ky);
      ASSERT_EQ(blurred.at(x, y), std::min(255, acc / 16))
          << "(" << x << "," << y << ")";
    }
  }
  // Borders pass through.
  EXPECT_EQ(blurred.at(0, 0), img.at(0, 0));
}

TEST(ImageKernels, BlurSmoothsNoise) {
  const GrayImage img = make_synthetic_scene(64, 64, 8);
  const GrayImage blurred = gaussian_blur3(img, exact_adder_fn(16));
  // Blur must reduce local variance (crude smoothness check).
  auto variance = [](const GrayImage& im) {
    double mean = 0.0;
    for (auto p : im.pixels) mean += p;
    mean /= static_cast<double>(im.pixels.size());
    double var = 0.0;
    for (auto p : im.pixels) var += (p - mean) * (p - mean);
    return var / static_cast<double>(im.pixels.size());
  };
  EXPECT_LT(variance(blurred), variance(img) * 1.01);
}

TEST(ImageKernels, SobelFindsVerticalEdges) {
  // A hard vertical step: Sobel magnitude must peak on the edge column.
  GrayImage img;
  img.width = 16;
  img.height = 16;
  img.pixels.assign(16 * 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 8; x < 16; ++x) img.set(x, y, 200);
  const GrayImage edges = sobel_magnitude(img, exact_adder_fn(16));
  EXPECT_GE(edges.at(8, 8), 200);  // saturated response on the step
  EXPECT_EQ(edges.at(3, 8), 0);    // flat region
  EXPECT_EQ(edges.at(13, 8), 0);
}

TEST(ImageKernels, QualityDegradesGracefullyWithWindow) {
  // Tighter carry windows (deeper VOS) must monotonically reduce PSNR,
  // and mild truncation should still be usable (paper's thesis).
  const GrayImage img = make_synthetic_scene(64, 64, 9);
  const GrayImage ref = gaussian_blur3(img, exact_adder_fn(16));
  double prev_psnr = std::numeric_limits<double>::infinity();
  for (const int window : {12, 8, 6, 4}) {
    const VosAdderModel model = truncating_model(16, window);
    Rng rng(10);
    const AdderFn add = model_adder_fn(model, rng);
    const GrayImage out = gaussian_blur3(img, add);
    const double p = psnr_db(ref, out);
    EXPECT_LE(p, prev_psnr) << "window " << window;
    prev_psnr = p;
  }
  // A 12-bit window on 16-bit accumulators barely hurts.
  const VosAdderModel mild = truncating_model(16, 12);
  Rng rng(11);
  const GrayImage out = gaussian_blur3(img, model_adder_fn(mild, rng));
  EXPECT_GT(psnr_db(ref, out), 30.0);
}

// --------------------------------------------------------------------- fir
TEST(FirKernels, SignalGeneratorBounds) {
  const FixedSignal s = make_test_signal(512, 12, 3);
  EXPECT_EQ(s.samples.size(), 512u);
  for (const auto v : s.samples) EXPECT_LE(v, mask_n(12));
}

TEST(FirKernels, ExactFilterMatchesReference) {
  const FixedSignal sig = make_test_signal(256, 12, 4);
  const FixedSignal out = fir_lowpass5(sig, exact_adder_fn(16));
  for (std::size_t i = 0; i < sig.samples.size(); ++i) {
    auto sample = [&](long k) {
      const long idx = std::min<long>(
          std::max<long>(k, 0), static_cast<long>(sig.samples.size()) - 1);
      return static_cast<long>(sig.samples[static_cast<std::size_t>(idx)]);
    };
    const auto si = static_cast<long>(i);
    const long acc = sample(si - 2) + 4 * sample(si - 1) + 6 * sample(si) +
                     4 * sample(si + 1) + sample(si + 2);
    ASSERT_EQ(out.samples[i], static_cast<std::uint64_t>(acc / 16)) << i;
  }
}

TEST(FirKernels, FilterAttenuatesNoise) {
  const FixedSignal sig = make_test_signal(1024, 12, 5);
  const FixedSignal out = fir_lowpass5(sig, exact_adder_fn(16));
  // The low-pass must track the signal (SNR well above 10 dB).
  EXPECT_GT(signal_snr_db(sig, out), 10.0);
}

TEST(FirKernels, SnrDegradesWithWindow) {
  const FixedSignal sig = make_test_signal(1024, 12, 6);
  const FixedSignal ref = fir_lowpass5(sig, exact_adder_fn(16));
  double prev = std::numeric_limits<double>::infinity();
  for (const int window : {12, 8, 5, 3}) {
    const VosAdderModel model = truncating_model(16, window);
    Rng rng(12);
    const FixedSignal out = fir_lowpass5(sig, model_adder_fn(model, rng));
    const double snr = signal_snr_db(ref, out);
    EXPECT_LE(snr, prev) << "window " << window;
    prev = snr;
  }
}

// --------------------------------------------------------------------- dot
TEST(DotKernels, ExactDotMatchesInteger) {
  Rng rng(13);
  std::vector<std::uint8_t> x(64);
  std::vector<std::uint8_t> y(64);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : y) v = static_cast<std::uint8_t>(rng.below(256));
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    expect += static_cast<std::uint64_t>(x[i]) * y[i];
  EXPECT_EQ(approx_dot(exact_adder_fn(24), x, y, 24), expect & mask_n(24));
}

TEST(DotKernels, ExactSadMatchesInteger) {
  Rng rng(14);
  std::vector<std::uint8_t> x(64);
  std::vector<std::uint8_t> y(64);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto& v : y) v = static_cast<std::uint8_t>(rng.below(256));
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    expect += static_cast<std::uint64_t>(
        x[i] > y[i] ? x[i] - y[i] : y[i] - x[i]);
  EXPECT_EQ(approx_sad(exact_adder_fn(20), x, y, 20), expect & mask_n(20));
}

TEST(DotKernels, ApproxSadStaysCorrelated) {
  // Even with a small window, SAD should preserve the ordering between a
  // matching block and a mismatched one (why block matching tolerates
  // approximation).
  Rng rng(15);
  std::vector<std::uint8_t> block(64);
  for (auto& v : block) v = static_cast<std::uint8_t>(rng.below(256));
  std::vector<std::uint8_t> near_match = block;
  for (std::size_t i = 0; i < 8; ++i)
    near_match[i * 8] = static_cast<std::uint8_t>(
        std::min(255, near_match[i * 8] + 3));
  std::vector<std::uint8_t> mismatch(64);
  for (auto& v : mismatch) v = static_cast<std::uint8_t>(rng.below(256));

  const VosAdderModel model = truncating_model(20, 8);
  Rng mrng(16);
  const AdderFn add = model_adder_fn(model, mrng);
  const std::uint64_t sad_near = approx_sad(add, block, near_match, 20);
  const std::uint64_t sad_far = approx_sad(add, block, mismatch, 20);
  EXPECT_LT(sad_near, sad_far);
}

}  // namespace
}  // namespace vosim
