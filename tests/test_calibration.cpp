// Calibration tests: the DESIGN.md §5 anchors that tie the simulator to
// the paper's qualitative results (Table II orderings, Fig. 5 shape,
// FBB rescue, energy-efficiency bands, BKA staircase).
#include <gtest/gtest.h>

#include <set>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/report.hpp"
#include "src/netlist/dut.hpp"
#include "src/characterize/triads.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

CharacterizeConfig fast_config() {
  CharacterizeConfig cfg;
  cfg.num_patterns = 2000;
  cfg.variation_sigma = 0.0;  // sharp thresholds for anchor checks
  return cfg;
}

TEST(Calibration, SynthesisCriticalPathsNearPaper) {
  // Paper Table II: 0.28 / 0.19 / 0.53 / 0.25 ns. Our library is
  // synthetic, so allow ±35% on absolutes but require the orderings.
  const double rca8 =
      synthesize_report(build_rca(8).netlist, lib()).critical_path_ns;
  const double bka8 =
      synthesize_report(build_brent_kung(8).netlist, lib()).critical_path_ns;
  const double rca16 =
      synthesize_report(build_rca(16).netlist, lib()).critical_path_ns;
  const double bka16 =
      synthesize_report(build_brent_kung(16).netlist, lib())
          .critical_path_ns;
  EXPECT_NEAR(rca8, 0.28, 0.28 * 0.35);
  EXPECT_NEAR(bka8, 0.19, 0.19 * 0.35);
  EXPECT_NEAR(rca16, 0.53, 0.53 * 0.35);
  EXPECT_NEAR(bka16, 0.25, 0.25 * 0.35);
  // Ratio anchors (paper: BKA8/RCA8 = 0.68, BKA16/RCA16 = 0.47).
  EXPECT_NEAR(bka8 / rca8, 0.68, 0.15);
  EXPECT_NEAR(bka16 / rca16, 0.47, 0.15);
}

TEST(Calibration, TableTwoAreaOrderings) {
  auto area = [&](const Netlist& nl) {
    return synthesize_report(nl, lib()).area_um2;
  };
  const double rca8 = area(build_rca(8).netlist);
  const double bka8 = area(build_brent_kung(8).netlist);
  const double rca16 = area(build_rca(16).netlist);
  const double bka16 = area(build_brent_kung(16).netlist);
  // Paper: 114.7 < 174.1 < 224.5 < 265.5 (same ordering, synthetic
  // absolute values).
  EXPECT_LT(rca8, bka8);
  EXPECT_LT(bka8, rca16);
  EXPECT_LT(rca16, bka16);
}

/// Characterizes the 8-bit RCA at its synthesis-period with Vdd steps
/// (Fig. 5 setup).
std::vector<TriadResult> fig5_results() {
  static const std::vector<TriadResult> results = [] {
    const DutNetlist rca = to_dut(build_rca(8));
    const double cp =
        synthesize_report(rca.netlist, lib()).critical_path_ns;
    std::vector<OperatingTriad> triads;
    for (const double vdd : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5})
      triads.push_back({cp, vdd, 0.0});
    for (const double vdd : {0.6, 0.5, 0.4})
      triads.push_back({cp, vdd, 2.0});
    return characterize_dut(rca, lib(), triads, fast_config());
  }();
  return results;
}

TEST(Calibration, Fig5ErrorOnsetBelow0p9V) {
  const auto res = fig5_results();
  EXPECT_EQ(res[0].ber, 0.0);  // 1.0 V
  EXPECT_EQ(res[1].ber, 0.0);  // 0.9 V (signoff margin holds)
  EXPECT_GT(res[2].ber, 0.0);  // 0.8 V: MSBs start to fail
  EXPECT_LT(res[2].ber, 0.05);
}

TEST(Calibration, Fig5MsbFailFirst) {
  const auto res = fig5_results();
  const auto& bw08 = res[2].bitwise_ber;  // 0.8 V
  // Low bits clean, the top sum bits carry the first failures.
  EXPECT_EQ(bw08[0], 0.0);
  EXPECT_EQ(bw08[1], 0.0);
  EXPECT_EQ(bw08[2], 0.0);
  const double msb_side = bw08[6] + bw08[7] + bw08[8];
  EXPECT_GT(msb_side, 0.0);
}

TEST(Calibration, Fig5MidBitsDominateAtDeepVos) {
  const auto res = fig5_results();
  const auto& bw05 = res[5].bitwise_ber;  // 0.5 V
  // Paper: "all the middle order bits reach BER of 50% and above".
  double mid_max = 0.0;
  for (int i = 2; i <= 6; ++i)
    mid_max = std::max(mid_max, bw05[static_cast<std::size_t>(i)]);
  EXPECT_GE(mid_max, 0.40);
  // Bit 0 never errs: its path is a single XOR.
  EXPECT_EQ(bw05[0], 0.0);
  // Mid bits err at least as much as the carry-out at deep VOS.
  EXPECT_GE(mid_max, bw05[8]);
}

TEST(Calibration, Fig5MonotoneDegradationWithVdd) {
  const auto res = fig5_results();
  for (int i = 1; i <= 5; ++i)
    EXPECT_GE(res[static_cast<std::size_t>(i)].ber,
              res[static_cast<std::size_t>(i - 1)].ber)
        << "Vdd step " << i;
}

TEST(Calibration, ForwardBodyBiasRescuesNearThreshold) {
  const auto res = fig5_results();
  // 0.6 V and 0.5 V with 2 V FBB: error-free (paper's 0%-BER region).
  EXPECT_EQ(res[6].ber, 0.0);
  EXPECT_GT(res[4].ber, 0.0);  // 0.6 V unbiased fails
  EXPECT_EQ(res[7].ber, 0.0);  // 0.5 V FBB: the headline operating point
  EXPECT_GT(res[5].ber, 0.10);  // 0.5 V unbiased is deeply broken
  // 0.4 V FBB: small but nonzero BER (the cheap approximate mode).
  EXPECT_GT(res[8].ber, 0.0);
  EXPECT_LT(res[8].ber, 0.2);
}

TEST(Calibration, EnergyEfficiencyAnchors) {
  const auto res = fig5_results();
  // Baseline for Fig. 5-style sweep: the 1.0 V point at the same clock.
  const double base = res[0].energy_per_op_fj;
  const double ee_05_fbb = energy_efficiency(res[7].energy_per_op_fj, base);
  // Paper: 76% saving at 0.5 V FBB with 0% BER (quadratic + body bias).
  EXPECT_GT(ee_05_fbb, 0.60);
  EXPECT_LT(ee_05_fbb, 0.85);
  // 0.4 V FBB buys more at small BER (paper: 87%).
  const double ee_04_fbb = energy_efficiency(res[8].energy_per_op_fj, base);
  EXPECT_GT(ee_04_fbb, ee_05_fbb);
  EXPECT_GT(ee_04_fbb, 0.75);
}

TEST(Calibration, DeepVosEnergySuperQuadratic) {
  const auto res = fig5_results();
  const double base_dyn = res[0].dynamic_energy_fj;
  const double deep_dyn = res[5].dynamic_energy_fj;  // 0.5 V, broken
  // Quadratic alone would give 0.25; truncated switching drops below.
  EXPECT_LT(deep_dyn / base_dyn, 0.25);
}

TEST(Calibration, BkaShowsStaircaseRcaShowsSpread) {
  // The parallel-prefix BKA has few distinct path-length classes, so
  // sweeping Vdd produces clustered (staircase) BER values; the RCA's
  // serial chain produces a broader spread (paper Fig. 8 discussion).
  auto distinct_levels = [&](const DutNetlist& adder) {
    const double cp =
        synthesize_report(adder.netlist, lib()).critical_path_ns;
    std::vector<OperatingTriad> triads;
    for (double vdd = 1.0; vdd > 0.395; vdd -= 0.05)
      triads.push_back({cp, vdd, 0.0});
    const auto res = characterize_dut(adder, lib(), triads, fast_config());
    // Quantize BER to 2% buckets and count distinct non-zero levels.
    std::set<int> levels;
    for (const auto& r : res)
      if (r.ber > 0.0) levels.insert(static_cast<int>(r.ber * 50.0));
    return static_cast<int>(levels.size());
  };
  const DutNetlist rca = to_dut(build_rca(8));
  const DutNetlist bka = to_dut(build_brent_kung(8));
  EXPECT_LT(distinct_levels(bka), distinct_levels(rca));
}

TEST(Calibration, SixteenBitZeroBerSavingsSmallerThanEightBit) {
  // Paper Table IV: 16-bit adders reach lower 0%-BER savings (60% vs
  // 76%) because their longer paths leave less margin.
  auto best_zero_ber_ee = [&](const DutNetlist& adder, AdderArch arch,
                              int width) {
    const double cp =
        synthesize_report(adder.netlist, lib()).critical_path_ns;
    const auto triads = make_paper_triads(arch, width, cp);
    CharacterizeConfig cfg = fast_config();
    cfg.num_patterns = 1200;
    const auto res = characterize_dut(adder, lib(), triads, cfg);
    const double base = res[0].energy_per_op_fj;
    double best = 0.0;
    for (const auto& r : res)
      if (r.ber == 0.0)
        best = std::max(best, energy_efficiency(r.energy_per_op_fj, base));
    return best;
  };
  const DutNetlist rca8 = to_dut(build_rca(8));
  const DutNetlist rca16 = to_dut(build_rca(16));
  const double ee8 = best_zero_ber_ee(rca8, AdderArch::kRipple, 8);
  const double ee16 = best_zero_ber_ee(rca16, AdderArch::kRipple, 16);
  EXPECT_GT(ee8, 0.55);
  EXPECT_GT(ee16, 0.40);
}

}  // namespace
}  // namespace vosim
