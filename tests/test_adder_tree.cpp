// Adder-tree generator tests: functional reduction, VOS behaviour and
// the error concentration in the final stage.
#include <gtest/gtest.h>

#include <numeric>
#include <span>

#include "src/netlist/adder_tree.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/logic.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

std::uint64_t functional_sum(const AdderTreeNetlist& tree,
                             const std::vector<std::uint64_t>& xs) {
  std::vector<std::uint8_t> inputs(tree.netlist.primary_inputs().size(), 0);
  std::size_t slot = 0;
  for (const std::uint64_t x : xs)
    for (int i = 0; i < tree.leaf_width; ++i)
      inputs[slot++] = static_cast<std::uint8_t>((x >> i) & 1u);
  const auto values = evaluate_logic(tree.netlist, inputs);
  return pack_word(values, tree.sum);
}

class AdderTreeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdderTreeTest, SumsOperandsExactly) {
  const auto [leaves, width] = GetParam();
  const AdderTreeNetlist tree = build_adder_tree(leaves, width);
  EXPECT_EQ(tree.leaves.size(), static_cast<std::size_t>(leaves));
  EXPECT_EQ(tree.sum.size(),
            static_cast<std::size_t>(width) +
                static_cast<std::size_t>(std::bit_width(
                    static_cast<unsigned>(leaves - 1))));
  Rng rng(100 + static_cast<std::uint64_t>(leaves * width));
  for (int t = 0; t < 400; ++t) {
    std::vector<std::uint64_t> xs;
    std::uint64_t expect = 0;
    for (int l = 0; l < leaves; ++l) {
      xs.push_back(rng.bits(width));
      expect += xs.back();
    }
    ASSERT_EQ(functional_sum(tree, xs), expect);
  }
  // All-max corner.
  std::vector<std::uint64_t> maxed(static_cast<std::size_t>(leaves),
                                   mask_n(width));
  ASSERT_EQ(functional_sum(tree, maxed),
            static_cast<std::uint64_t>(leaves) * mask_n(width));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdderTreeTest,
    ::testing::Values(std::tuple{2, 8}, std::tuple{4, 8}, std::tuple{8, 8},
                      std::tuple{16, 4}, std::tuple{4, 12},
                      std::tuple{32, 6}),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AdderTree, Validation) {
  EXPECT_THROW(build_adder_tree(3, 8), ContractViolation);
  EXPECT_THROW(build_adder_tree(0, 8), ContractViolation);
  EXPECT_THROW(build_adder_tree(4, 1), ContractViolation);
}

TEST(AdderTree, VosErrorsConcentrateInUpperBits) {
  // Under mild VOS the final (widest) stage fails first: upper result
  // bits err while the low bits stay clean.
  const DutNetlist tree = to_dut(build_adder_tree(8, 8));
  const double cp_ns =
      analyze_timing(tree.netlist, lib(), {1, 1.0, 0.0}).critical_path_ps *
      1e-3;
  VosDutSim sim(tree, lib(), {0.85 * cp_ns, 1.0, 0.0});
  Rng rng(7);
  const int out_bits = tree.output_width();
  std::vector<int> bit_err(static_cast<std::size_t>(out_bits), 0);
  int err_ops = 0;
  for (int t = 0; t < 2500; ++t) {
    std::vector<std::uint64_t> xs;
    std::uint64_t expect = 0;
    for (int l = 0; l < 8; ++l) {
      xs.push_back(rng.bits(8));
      expect += xs.back();
    }
    const std::uint64_t diff =
        sim.apply(std::span<const std::uint64_t>(xs)).sampled ^ expect;
    if (diff != 0) ++err_ops;
    for (int i = 0; i < out_bits; ++i)
      if (bit_of(diff, i) != 0) ++bit_err[static_cast<std::size_t>(i)];
  }
  ASSERT_GT(err_ops, 20);  // the operating point does stress the tree
  int low = 0;
  int high = 0;
  for (int i = 0; i < 4; ++i) low += bit_err[static_cast<std::size_t>(i)];
  for (int i = out_bits - 4; i < out_bits; ++i)
    high += bit_err[static_cast<std::size_t>(i)];
  EXPECT_GT(high, 3 * std::max(low, 1));
}

TEST(AdderTree, DepthGrowsLogarithmically) {
  const double cp2 = analyze_timing(build_adder_tree(2, 8).netlist, lib(),
                                    {1, 1.0, 0.0})
                         .critical_path_ps;
  const double cp8 = analyze_timing(build_adder_tree(8, 8).netlist, lib(),
                                    {1, 1.0, 0.0})
                         .critical_path_ps;
  const double cp16 = analyze_timing(build_adder_tree(16, 8).netlist,
                                     lib(), {1, 1.0, 0.0})
                          .critical_path_ps;
  // Depth adds roughly one ripple stage per level, far from linear in
  // the number of leaves.
  EXPECT_LT(cp16, cp2 * 4.0);
  EXPECT_GT(cp16, cp8);
}

}  // namespace
}  // namespace vosim
