// Functional verification of every exact adder generator: exhaustive at
// small widths, randomized at large widths, plus structural properties.
#include <gtest/gtest.h>

#include <tuple>

#include "src/netlist/adders.hpp"
#include "src/sim/logic.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {
namespace {

/// Functional evaluation of an adder netlist (zero-delay).
std::uint64_t functional_add(const AdderNetlist& adder, std::uint64_t a,
                             std::uint64_t b) {
  std::vector<std::uint8_t> inputs(adder.netlist.primary_inputs().size(), 0);
  // Inputs were created a-bits-first, then b-bits (then optional cin).
  for (int i = 0; i < adder.width; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((a >> i) & 1u);
    inputs[static_cast<std::size_t>(adder.width + i)] =
        static_cast<std::uint8_t>((b >> i) & 1u);
  }
  const auto values = evaluate_logic(adder.netlist, inputs);
  return pack_word(values, adder.sum);
}

using ArchWidth = std::tuple<AdderArch, int>;

class ExactAdderTest : public ::testing::TestWithParam<ArchWidth> {};

TEST_P(ExactAdderTest, MatchesExhaustiveOrRandomAddition) {
  const auto [arch, width] = GetParam();
  const AdderNetlist adder = build_adder(arch, width);
  EXPECT_EQ(adder.width, width);
  ASSERT_EQ(adder.sum.size(), static_cast<std::size_t>(width) + 1);

  if (width <= 6) {
    const std::uint64_t n = 1ULL << width;
    for (std::uint64_t a = 0; a < n; ++a)
      for (std::uint64_t b = 0; b < n; ++b)
        ASSERT_EQ(functional_add(adder, a, b), a + b)
            << adder_arch_name(arch) << width << ": " << a << "+" << b;
  } else {
    Rng rng(2024 + static_cast<std::uint64_t>(width));
    for (int k = 0; k < 3000; ++k) {
      const std::uint64_t a = rng.bits(width);
      const std::uint64_t b = rng.bits(width);
      ASSERT_EQ(functional_add(adder, a, b), a + b)
          << adder_arch_name(arch) << width << ": " << a << "+" << b;
    }
    // Directed corners: all-ones, alternating, single carry chains.
    const std::uint64_t m = mask_n(width);
    for (const auto& [a, b] :
         {std::pair<std::uint64_t, std::uint64_t>{m, m},
          {m, 1},
          {0x5555555555555555ULL & m, 0xAAAAAAAAAAAAAAAAULL & m},
          {m - 1, 1},
          {1ULL << (width - 1), 1ULL << (width - 1)}}) {
      ASSERT_EQ(functional_add(adder, a, b), a + b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ExactAdderTest,
    ::testing::Values(
        ArchWidth{AdderArch::kRipple, 2}, ArchWidth{AdderArch::kRipple, 4},
        ArchWidth{AdderArch::kRipple, 5}, ArchWidth{AdderArch::kRipple, 8},
        ArchWidth{AdderArch::kRipple, 13}, ArchWidth{AdderArch::kRipple, 16},
        ArchWidth{AdderArch::kRipple, 32},
        ArchWidth{AdderArch::kBrentKung, 2},
        ArchWidth{AdderArch::kBrentKung, 4},
        ArchWidth{AdderArch::kBrentKung, 8},
        ArchWidth{AdderArch::kBrentKung, 16},
        ArchWidth{AdderArch::kBrentKung, 32},
        ArchWidth{AdderArch::kKoggeStone, 2},
        ArchWidth{AdderArch::kKoggeStone, 4},
        ArchWidth{AdderArch::kKoggeStone, 7},
        ArchWidth{AdderArch::kKoggeStone, 8},
        ArchWidth{AdderArch::kKoggeStone, 11},
        ArchWidth{AdderArch::kKoggeStone, 16},
        ArchWidth{AdderArch::kSklansky, 4},
        ArchWidth{AdderArch::kSklansky, 8},
        ArchWidth{AdderArch::kSklansky, 16},
        ArchWidth{AdderArch::kCarrySkip, 4},
        ArchWidth{AdderArch::kCarrySkip, 8},
        ArchWidth{AdderArch::kCarrySkip, 11},
        ArchWidth{AdderArch::kCarrySkip, 16},
        ArchWidth{AdderArch::kHanCarlson, 2},
        ArchWidth{AdderArch::kHanCarlson, 4},
        ArchWidth{AdderArch::kHanCarlson, 8},
        ArchWidth{AdderArch::kHanCarlson, 16},
        ArchWidth{AdderArch::kHanCarlson, 32},
        ArchWidth{AdderArch::kCarrySelect, 4},
        ArchWidth{AdderArch::kCarrySelect, 8},
        ArchWidth{AdderArch::kCarrySelect, 10},
        ArchWidth{AdderArch::kCarrySelect, 16}),
    [](const ::testing::TestParamInfo<ArchWidth>& info) {
      return adder_arch_name(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

TEST(AdderBuilders, RcaWithCarryIn) {
  const AdderNetlist adder = build_rca(8, /*with_cin=*/true);
  ASSERT_NE(adder.cin, invalid_net);
  std::vector<std::uint8_t> inputs(adder.netlist.primary_inputs().size(), 0);
  Rng rng(5);
  for (int k = 0; k < 500; ++k) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    const bool cin = rng.flip(0.5);
    for (int i = 0; i < 8; ++i) {
      inputs[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((a >> i) & 1u);
      inputs[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>((b >> i) & 1u);
    }
    inputs[16] = cin ? 1 : 0;
    const auto values = evaluate_logic(adder.netlist, inputs);
    ASSERT_EQ(pack_word(values, adder.sum), a + b + (cin ? 1u : 0u));
  }
}

TEST(AdderBuilders, PowerOfTwoRequiredWhereDocumented) {
  EXPECT_THROW(build_brent_kung(12), ContractViolation);
  EXPECT_THROW(build_sklansky(6), ContractViolation);
  EXPECT_THROW(build_han_carlson(10), ContractViolation);
  EXPECT_NO_THROW(build_kogge_stone(12));
  EXPECT_NO_THROW(build_carry_skip(10));
}

TEST(AdderStructure, HanCarlsonSparserThanKoggeStone) {
  // Han-Carlson trades one extra level for roughly half the prefix
  // cells of Kogge-Stone.
  const AdderNetlist hc = build_han_carlson(16);
  const AdderNetlist ks = build_kogge_stone(16);
  EXPECT_LT(hc.netlist.num_gates(), ks.netlist.num_gates());
}

TEST(AdderBuilders, WidthBoundsEnforced) {
  EXPECT_THROW(build_rca(1), ContractViolation);
  EXPECT_THROW(build_rca(64), ContractViolation);
  EXPECT_THROW(build_adder(AdderArch::kLowerOr, 8), ContractViolation);
}

TEST(AdderStructure, BrentKungLargerButShallowerThanRca) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const AdderNetlist rca = build_rca(16);
  const AdderNetlist bka = build_brent_kung(16);
  // Parallel prefix trades area for logic depth (paper Table II).
  EXPECT_GT(bka.netlist.cell_area_um2(lib), rca.netlist.cell_area_um2(lib));
  EXPECT_GT(bka.netlist.num_gates(), rca.netlist.num_gates());
}

TEST(AdderStructure, KoggeStoneAtLeastAsLargeAsBrentKung) {
  const AdderNetlist ks = build_kogge_stone(16);
  const AdderNetlist bk = build_brent_kung(16);
  EXPECT_GE(ks.netlist.num_gates(), bk.netlist.num_gates());
}

TEST(AdderStructure, ArchNamesDistinct) {
  EXPECT_EQ(adder_arch_name(AdderArch::kRipple), "RCA");
  EXPECT_EQ(adder_arch_name(AdderArch::kBrentKung), "BKA");
  EXPECT_NE(adder_arch_name(AdderArch::kKoggeStone),
            adder_arch_name(AdderArch::kSklansky));
}

}  // namespace
}  // namespace vosim
