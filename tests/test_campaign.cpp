// Campaign subsystem tests: workload registry, JSONL store round-trip
// and resume, cache-hit identity across thread counts, Pareto
// extraction, model-vs-gate-level quality agreement, and the
// determinism the content-keyed cache depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/campaign/report.hpp"
#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/campaign/workload.hpp"
#include "src/obs/manifest.hpp"
#include "src/characterize/triads.hpp"
#include "src/model/prob_table.hpp"
#include "src/netlist/dut.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// A probabilistic table (chains may fall short by two) so the model's
/// Rng actually matters.
VosAdderModel lossy_model(int width) {
  const auto n = static_cast<std::size_t>(width) + 1;
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));
  for (int l = 0; l <= width; ++l) {
    counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(l)] = 1;
    if (l >= 6)
      counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(l - 2)] =
          1;
  }
  return VosAdderModel(16, {0.3, 0.5, 0.0}, DistanceMetric::kMse,
                       CarryChainProbTable::from_counts(width, counts));
}

// -------------------------------------------------------------- registry
TEST(WorkloadRegistry, KnowsTheFiveAppKernels) {
  const auto& reg = workload_registry();
  ASSERT_EQ(reg.size(), 5u);
  for (const char* name : {"fir", "blur", "sobel", "kmeans", "dot"}) {
    const Workload* w = find_workload(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->width, 16) << name;
    EXPECT_TRUE(static_cast<bool>(w->run)) << name;
  }
  EXPECT_EQ(find_workload("nope"), nullptr);
  EXPECT_EQ(resolve_workloads({"all"}).size(), reg.size());
  EXPECT_EQ(resolve_workloads({"fir", "dot"}).size(), 2u);
  EXPECT_THROW(resolve_workloads({"fir", "nope"}), std::invalid_argument);
  EXPECT_THROW(resolve_workloads({}), std::invalid_argument);
}

TEST(WorkloadRegistry, ExactAdderRunsAreDeterministicAndTopQuality) {
  for (const Workload& w : workload_registry()) {
    const QualityResult a = w.run(exact_adder_fn(w.width), 7);
    const QualityResult b = w.run(exact_adder_fn(w.width), 7);
    EXPECT_EQ(a.value, b.value) << w.name;
    EXPECT_EQ(a.adds, b.adds) << w.name;
    EXPECT_GT(a.adds, 0u) << w.name;
    EXPECT_GE(a.normalized, 0.0) << w.name;
    EXPECT_LE(a.normalized, 1.0) << w.name;
    EXPECT_EQ(a.metric, w.metric) << w.name;
    // Exact arithmetic: reference-equal output for the error-metric
    // workloads (kmeans scores against ground-truth labels instead,
    // so "exact" need not be perfect — only near it).
    if (w.name != "kmeans")
      EXPECT_DOUBLE_EQ(a.normalized, 1.0) << w.name;
    else
      EXPECT_GE(a.normalized, 0.8) << w.name;
  }
}

TEST(WorkloadRegistry, SeedChangesStimuli) {
  // Through a lossy adder the injected errors land on different data,
  // so the quality outcome must move with the seed (exact runs cannot
  // show this: their quality is reference-equal for every seed).
  const Workload* fir = find_workload("fir");
  ASSERT_NE(fir, nullptr);
  auto run_with_seed = [&](std::uint64_t seed) {
    const VosAdderModel model = lossy_model(16);
    Rng rng(99);
    return fir->run(model_adder_fn(model, rng), seed).value;
  };
  EXPECT_NE(run_with_seed(7), run_with_seed(8));
}

TEST(WorkloadRegistry, NormalizedQualityMapping) {
  EXPECT_DOUBLE_EQ(normalized_quality("snr_db", 30.0), 0.5);
  EXPECT_DOUBLE_EQ(normalized_quality("psnr_db", 1e9), 1.0);
  EXPECT_DOUBLE_EQ(normalized_quality("snr_db", -5.0), 0.0);
  EXPECT_DOUBLE_EQ(normalized_quality("accuracy", 0.42), 0.42);
  EXPECT_DOUBLE_EQ(normalized_quality("mred", 0.1), 0.9);
  EXPECT_DOUBLE_EQ(normalized_quality("mred", 2.0), 0.0);
  EXPECT_THROW(normalized_quality("watts", 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- backend
TEST(ArithBackends, ParseAndNameRoundTrip) {
  for (const ArithBackend b :
       {ArithBackend::kExact, ArithBackend::kModel, ArithBackend::kSimEvent,
        ArithBackend::kSimLevelized, ArithBackend::kSimSeq})
    EXPECT_EQ(parse_arith_backend(arith_backend_name(b)), b);
  EXPECT_EQ(parse_arith_backend("sim"), ArithBackend::kSimLevelized);
  EXPECT_THROW(parse_arith_backend("spice"), std::invalid_argument);
}

// ------------------------------------------------------------------ store
CampaignCell sample_cell() {
  CampaignCell cell;
  cell.key.workload = "fir";
  cell.key.circuit = "rca16";
  cell.key.backend = "model";
  cell.key.triad = {0.1 + 0.2, 0.7, 2.0};  // non-representable double
  cell.key.seed = 42;
  cell.key.train_patterns = 4000;
  cell.metric = "snr_db";
  cell.quality = 23.456789012345678;
  cell.normalized = 0.3909464835390946;
  cell.energy_per_op_fj = 12.25;
  cell.baseline_fj = 57.5;
  cell.ber = 1e-17;
  cell.adds = 4608;
  cell.elapsed_s = 0.25;
  return cell;
}

TEST(CampaignStore, JsonlRoundTripIsExact) {
  const CampaignCell cell = sample_cell();
  const auto parsed = CampaignStore::parse_jsonl(
      CampaignStore::to_jsonl(cell));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, cell.key);
  EXPECT_EQ(parsed->key.to_string(), cell.key.to_string());
  EXPECT_EQ(parsed->metric, cell.metric);
  EXPECT_EQ(parsed->quality, cell.quality);
  EXPECT_EQ(parsed->normalized, cell.normalized);
  EXPECT_EQ(parsed->energy_per_op_fj, cell.energy_per_op_fj);
  EXPECT_EQ(parsed->baseline_fj, cell.baseline_fj);
  EXPECT_EQ(parsed->ber, cell.ber);
  EXPECT_EQ(parsed->adds, cell.adds);
  EXPECT_EQ(parsed->elapsed_s, cell.elapsed_s);
}

TEST(CampaignStore, RejectsMalformedLines) {
  EXPECT_FALSE(CampaignStore::parse_jsonl("").has_value());
  EXPECT_FALSE(CampaignStore::parse_jsonl("not json").has_value());
  EXPECT_FALSE(
      CampaignStore::parse_jsonl("{\"workload\":\"fir\"}").has_value());
  // A numeric field holding garbage.
  std::string line = CampaignStore::to_jsonl(sample_cell());
  const auto at = line.find("\"quality\":");
  line.replace(at, std::string("\"quality\":").size(), "\"quality\":x");
  EXPECT_FALSE(CampaignStore::parse_jsonl(line).has_value());
  // An unsigned field gone negative must not wrap through strtoull.
  std::string neg = CampaignStore::to_jsonl(sample_cell());
  const auto seed_at = neg.find("\"seed\":42");
  neg.replace(seed_at, std::string("\"seed\":42").size(), "\"seed\":-1");
  EXPECT_FALSE(CampaignStore::parse_jsonl(neg).has_value());
}

TEST(CampaignStore, LoadOnStartSkipsGarbageAndKeepsLastWrite) {
  const std::string path = temp_path("store_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    CampaignStore store(path);
    EXPECT_EQ(store.size(), 0u);
    CampaignCell cell = sample_cell();
    store.insert(cell);
    cell.key.backend = "exact";
    cell.quality = 60.0;
    store.insert(cell);
  }
  // Corrupt the file with a partial line and a rewrite of the first key.
  {
    std::ofstream f(path, std::ios::app);
    f << "{\"workload\":\"fir\",\"circu\n";
    CampaignCell updated = sample_cell();
    updated.quality = 99.0;
    f << CampaignStore::to_jsonl(updated) << "\n";
  }
  CampaignStore reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  const auto hit = reopened.find(sample_cell().key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->quality, 99.0);  // last occurrence wins
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- pareto
CampaignCell point(double energy, double norm) {
  CampaignCell cell;
  cell.key.workload = "fir";
  cell.key.backend = "model";
  cell.energy_per_op_fj = energy;
  cell.normalized = norm;
  return cell;
}

TEST(CampaignReport, ParetoFrontDropsDominatedCells) {
  const std::vector<CampaignCell> cells = {
      point(30.0, 1.0), point(15.0, 0.4), point(20.0, 0.9),
      point(10.0, 0.5), point(20.0, 0.8), point(25.0, 0.9)};
  const auto front = pareto_front(cells);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].energy_per_op_fj, 10.0);
  EXPECT_DOUBLE_EQ(front[0].normalized, 0.5);
  EXPECT_DOUBLE_EQ(front[1].energy_per_op_fj, 20.0);
  EXPECT_DOUBLE_EQ(front[1].normalized, 0.9);
  EXPECT_DOUBLE_EQ(front[2].energy_per_op_fj, 30.0);
  EXPECT_DOUBLE_EQ(front[2].normalized, 1.0);
}

TEST(CampaignReport, MinEnergyAtFloor) {
  const std::vector<CampaignCell> cells = {
      point(30.0, 1.0), point(20.0, 0.9), point(10.0, 0.5)};
  const auto pick = min_energy_at_floor(cells, 0.85);
  ASSERT_TRUE(pick.has_value());
  EXPECT_DOUBLE_EQ(pick->energy_per_op_fj, 20.0);
  EXPECT_FALSE(min_energy_at_floor(cells, 1.0 + 1e-9).has_value());
}

// ----------------------------------------------------------------- triads
TEST(CampaignTriads, CircuitTriadsMatchPaperForExactAdders) {
  const DutNetlist rca = build_circuit("rca8");
  const auto triads = make_circuit_triads(rca, 1.0);
  const auto expect = make_paper_triads(AdderArch::kRipple, 8, 1.0);
  ASSERT_EQ(triads.size(), 43u);
  EXPECT_EQ(triads, expect);
  // Non-adder DUTs get the generic grid.
  const DutNetlist mul = build_circuit("mul8-array");
  EXPECT_EQ(make_circuit_triads(mul, 1.0), make_dut_triads(1.0));
}

// ------------------------------------------------------------ determinism
TEST(CampaignDeterminism, ModelAdderStreamReproducesPerSeed) {
  const VosAdderModel model = lossy_model(16);
  std::vector<std::uint64_t> first;
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(2024);
    const AdderFn add = model_adder_fn(model, rng);
    Rng data(5);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 2000; ++i)
      out.push_back(add(data.bits(16), data.bits(16)));
    if (pass == 0) {
      first = out;
    } else {
      EXPECT_EQ(out, first);  // identical injected-error stream
    }
  }
  // A different model seed must produce a different stream somewhere.
  Rng rng(2025);
  const AdderFn add = model_adder_fn(model, rng);
  Rng data(5);
  std::vector<std::uint64_t> other;
  for (int i = 0; i < 2000; ++i)
    other.push_back(add(data.bits(16), data.bits(16)));
  EXPECT_NE(other, first);
}

// ----------------------------------------------------------- campaign runs
CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.workloads = {"fir"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  // Nominal + one error-free FBB point + one stressed supply.
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.6, 2.0}, {1.0, 0.65, 0.0}};
  cfg.characterize_patterns = 300;
  cfg.train_patterns = 1500;
  return cfg;
}

TEST(CampaignRunner, ResumeRecomputesOnlyMissingCells) {
  const std::string path = temp_path("campaign_resume.jsonl");
  std::remove(path.c_str());
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();

  CampaignStore store(path);
  const CampaignOutcome first = run_campaign(lib, cfg, store);
  EXPECT_EQ(first.cells.size(), 3u);
  EXPECT_EQ(first.computed, 3u);
  EXPECT_EQ(first.reused, 0u);

  // Full resume: nothing recomputed, identical cells.
  CampaignStore reopened(path);
  const CampaignOutcome second = run_campaign(lib, cfg, reopened);
  EXPECT_EQ(second.computed, 0u);
  EXPECT_EQ(second.reused, 3u);
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(second.cells[i].key.to_string(),
              first.cells[i].key.to_string());
    EXPECT_EQ(second.cells[i].quality, first.cells[i].quality);
    EXPECT_EQ(second.cells[i].energy_per_op_fj,
              first.cells[i].energy_per_op_fj);
  }

  // Partial resume: growing the grid recomputes only the new cells.
  cfg.triad_specs.push_back({1.0, 0.5, 2.0});
  CampaignStore grown(path);
  const CampaignOutcome third = run_campaign(lib, cfg, grown);
  EXPECT_EQ(third.cells.size(), 4u);
  EXPECT_EQ(third.reused, 3u);
  EXPECT_EQ(third.computed, 1u);
  std::remove(path.c_str());
}

TEST(CampaignRunner, CacheKeyIdentityAcrossThreadCounts) {
  // The cache is only sound if a cell's value never depends on worker
  // scheduling: serial and 4-way runs must produce bit-identical cells.
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.workloads = {"fir", "kmeans"};

  cfg.jobs = 1;
  CampaignStore serial;
  const CampaignOutcome a = run_campaign(lib, cfg, serial);
  cfg.jobs = 4;
  CampaignStore parallel;
  const CampaignOutcome b = run_campaign(lib, cfg, parallel);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(CampaignStore::to_jsonl(a.cells[i]).substr(
                  0, CampaignStore::to_jsonl(a.cells[i]).find("elapsed")),
              CampaignStore::to_jsonl(b.cells[i]).substr(
                  0, CampaignStore::to_jsonl(b.cells[i]).find("elapsed")))
        << i;
  }
}

TEST(CampaignRunner, ModelTracksGateLevelOnReducedGrid) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg;
  cfg.workloads = {"fir", "kmeans"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel, ArithBackend::kSimLevelized};
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.9, 0.0}, {1.0, 0.7, 2.0},
                     {1.0, 0.6, 2.0}};
  cfg.characterize_patterns = 400;
  cfg.train_patterns = 2000;
  CampaignStore store;
  const CampaignOutcome outcome = run_campaign(lib, cfg, store);
  const QualityDeviation dev = model_quality_deviation(outcome.cells);
  EXPECT_EQ(dev.cells, 8u);  // 2 workloads x 4 triads
  // These triads are error-free or mildly stressed: the trained model
  // must track the gate-level replay closely.
  EXPECT_LE(dev.max_pp, 10.0);
  EXPECT_LE(dev.mean_pp, 5.0);
}

TEST(CampaignRunner, SimSeqBackendRunsAndChargesRegisterEnergy) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg;
  cfg.workloads = {"fir"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kSimLevelized, ArithBackend::kSimSeq};
  cfg.triad_specs = {{1.2, 1.0, 0.0}, {1.0, 0.8, 2.0}};
  cfg.characterize_patterns = 300;
  CampaignStore store;
  const CampaignOutcome outcome = run_campaign(lib, cfg, store);
  ASSERT_EQ(outcome.cells.size(), 4u);
  for (const CampaignCell& seq_cell : outcome.cells) {
    if (seq_cell.key.backend != "sim-seq") continue;
    // Its combinational sibling at the same triad.
    const CampaignCell* comb = nullptr;
    for (const CampaignCell& c : outcome.cells)
      if (c.key.backend == "sim-levelized" &&
          c.key.triad == seq_cell.key.triad)
        comb = &c;
    ASSERT_NE(comb, nullptr);
    // The registered adder pays the bank clock/latch energy on top of
    // the identical characterized combinational energy.
    const double expected_extra = seq_clock_energy_fj(
        wrap_as_pipeline(build_circuit("rca16")), lib,
        seq_cell.key.triad.vdd_v);
    EXPECT_NEAR(seq_cell.energy_per_op_fj - comb->energy_per_op_fj,
                expected_extra, 1e-9);
    // At a relaxed triad the clocked replay is quality-equivalent.
    if (seq_cell.key.triad.vdd_v == 1.0)
      EXPECT_NEAR(seq_cell.normalized, comb->normalized, 1e-12);
    // Savings baselines rebase per energy class: a registered cell's
    // baseline pays the flops (at the baseline triad's nominal Vdd), a
    // combinational cell's does not — the sim-seq register energy must
    // never leak into the combinational backends' savings.
    EXPECT_NEAR(seq_cell.baseline_fj - comb->baseline_fj,
                seq_clock_energy_fj(
                    wrap_as_pipeline(build_circuit("rca16")), lib, 1.0),
                1e-9);
  }
}

TEST(CampaignRunner, RejectsCircuitsThatCannotBackTheWorkloads) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.circuits = {"mul8-array"};  // not a 16-bit adder
  CampaignStore store;
  EXPECT_THROW(run_campaign(lib, cfg, store), std::invalid_argument);
  cfg.circuits = {"rca8"};  // adder, wrong width
  EXPECT_THROW(run_campaign(lib, cfg, store), std::invalid_argument);
}

TEST(CampaignRunner, DuplicateAxisEntriesComputeOnce) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.workloads = {"fir", "fir"};
  cfg.backends = {ArithBackend::kModel, ArithBackend::kModel};
  CampaignStore store;
  const CampaignOutcome outcome = run_campaign(lib, cfg, store);
  EXPECT_EQ(outcome.cells.size(), 3u);  // one per triad, not four
  EXPECT_EQ(outcome.computed, 3u);
}

TEST(CampaignRunner, BaselineIsGridOrderInvariant) {
  // The savings baseline is chosen by triad content (most relaxed
  // point), not by grid position, so reordering the specs must not
  // change any cell's baseline.
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  CampaignStore a_store;
  const CampaignOutcome a = run_campaign(lib, cfg, a_store);
  std::reverse(cfg.triad_specs.begin(), cfg.triad_specs.end());
  CampaignStore b_store;
  const CampaignOutcome b = run_campaign(lib, cfg, b_store);
  ASSERT_FALSE(a.cells.empty());
  for (const CampaignCell& cell : b.cells)
    EXPECT_EQ(cell.baseline_fj, a.cells.front().baseline_fj);
}

TEST(CampaignRunner, ReusedCellsAreRebasedOnTheCurrentGrid) {
  // Cells persisted by a stressed-only grid carry that grid's baseline;
  // resuming with the relaxed-nominal triad added must rebase every
  // reported cell on the new most-relaxed energy, so one table never
  // mixes savings baselines.
  const std::string path = temp_path("campaign_rebase.jsonl");
  std::remove(path.c_str());
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.triad_specs = {{1.0, 0.8, 0.0}};  // stressed-only grid
  CampaignStore store(path);
  const CampaignOutcome first = run_campaign(lib, cfg, store);
  ASSERT_EQ(first.cells.size(), 1u);
  EXPECT_EQ(first.cells[0].baseline_fj, first.cells[0].energy_per_op_fj);

  cfg.triad_specs.push_back({1.5, 1.0, 0.0});  // add relaxed nominal
  CampaignStore grown(path);
  const CampaignOutcome second = run_campaign(lib, cfg, grown);
  ASSERT_EQ(second.cells.size(), 2u);
  EXPECT_EQ(second.reused, 1u);
  const CampaignCell& stressed = second.cells[0];
  const CampaignCell& nominal = second.cells[1];
  ASSERT_GT(nominal.energy_per_op_fj, stressed.energy_per_op_fj);
  EXPECT_EQ(stressed.baseline_fj, nominal.energy_per_op_fj);
  EXPECT_EQ(nominal.baseline_fj, nominal.energy_per_op_fj);
  std::remove(path.c_str());
}

// ------------------------------------------------- chip axis + merge
std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

TEST(CampaignStore, ChipFieldRoundTripsAndDefaultsToNominal) {
  CampaignCell cell = sample_cell();
  cell.key.chip = 5;
  const std::string line = CampaignStore::to_jsonl(cell);
  EXPECT_NE(line.find("\"chip\":5"), std::string::npos);
  const auto parsed = CampaignStore::parse_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key.chip, 5u);
  EXPECT_EQ(parsed->key, cell.key);

  // A pre-fleet line (no chip field) is the nominal die, not garbage.
  std::string legacy = line;
  const auto at = legacy.find(",\"chip\":5");
  ASSERT_NE(at, std::string::npos);
  legacy.erase(at, std::string(",\"chip\":5").size());
  const auto old = CampaignStore::parse_jsonl(legacy);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->key.chip, 0u);

  // Present-but-garbled chip must reject the line, not default it.
  std::string bad = line;
  bad.replace(bad.find("\"chip\":5"), std::string("\"chip\":5").size(),
              "\"chip\":x");
  EXPECT_FALSE(CampaignStore::parse_jsonl(bad).has_value());
}

TEST(CampaignStore, MergeKeepsLastWriteOnOverlappingKeys) {
  const std::string a = temp_path("merge_a.jsonl");
  const std::string b = temp_path("merge_b.jsonl");
  const std::string out = temp_path("merge_out.jsonl");
  {
    std::ofstream fa(a), fb(b);
    CampaignCell cell = sample_cell();
    cell.quality = 1.0;
    fa << CampaignStore::to_jsonl(cell) << "\n";
    CampaignCell other = sample_cell();
    other.key.workload = "dot";
    fa << CampaignStore::to_jsonl(other) << "\n";
    cell.quality = 2.0;  // same key, later file: must win
    fb << CampaignStore::to_jsonl(cell) << "\n";
  }
  const MergeStats stats = merge_stores({a, b}, out);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.cells, 2u);
  CampaignStore merged(out);
  const auto hit = merged.find(sample_cell().key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->quality, 2.0);
  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

TEST(CampaignStore, MergeSkipsMalformedLinesAndThrowsOnMissingInput) {
  const std::string a = temp_path("merge_bad.jsonl");
  const std::string out = temp_path("merge_bad_out.jsonl");
  {
    std::ofstream fa(a);
    fa << "not json\n";
    fa << CampaignStore::to_jsonl(sample_cell()) << "\n";
    fa << "{\"workload\":\"fir\",\"circu\n";
  }
  const MergeStats stats = merge_stores({a}, out);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.cells, 1u);
  EXPECT_THROW(merge_stores({temp_path("nope_missing.jsonl")}, out),
               std::runtime_error);
  for (const std::string& p : {a, out}) std::remove(p.c_str());
}

TEST(CampaignStore, ManifestHeaderWritesOnceAndSurvivesReload) {
  const std::string path = temp_path("store_manifest.jsonl");
  std::remove(path.c_str());
  obs::RunManifest m;
  m.tool = "campaign";
  m.config = "campaign --workloads=fir";
  {
    CampaignStore store(path);
    EXPECT_EQ(store.manifest_line(), "");
    store.write_header(m.to_jsonl());
    EXPECT_EQ(store.manifest_line(), m.to_jsonl());
    // Second writer (a resumed run) must not duplicate the header.
    obs::RunManifest other = m;
    other.config = "campaign --workloads=dot";
    store.write_header(other.to_jsonl());
    EXPECT_EQ(store.manifest_line(), m.to_jsonl());
    store.insert(sample_cell());
  }
  // Reload finds the header AND the cell: the manifest line is not a
  // cell and a cell line is not a manifest.
  CampaignStore reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.manifest_line(), m.to_jsonl());
  EXPECT_TRUE(reopened.find(sample_cell().key).has_value());
  // In-memory stores have nowhere to put a header.
  CampaignStore memory;
  memory.write_header(m.to_jsonl());
  EXPECT_EQ(memory.manifest_line(), "");
  std::remove(path.c_str());
}

TEST(CampaignStore, ResumeWorksAcrossManifestHeaderVersions) {
  // Store-format backward compatibility, both directions. A pre-manifest
  // store (what every store written before the telemetry layer looks
  // like: cells only, no header) must fully resume under the current
  // reader; and a store WITH a manifest header must resume identically,
  // because the header parses-as-absent to the cell loader.
  const std::string path = temp_path("store_old_format.jsonl");
  std::remove(path.c_str());
  const CellLibrary& lib = make_fdsoi28_lvt();
  const CampaignConfig cfg = small_campaign();

  // run_campaign writes no header itself — this file IS the old format.
  CampaignStore old_store(path);
  const CampaignOutcome first = run_campaign(lib, cfg, old_store);
  EXPECT_EQ(first.computed, 3u);
  {
    std::ifstream f(path);
    std::string contents((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents.find("vosim_manifest"), std::string::npos);
  }

  CampaignStore resumed(path);
  EXPECT_EQ(resumed.manifest_line(), "");
  const CampaignOutcome second = run_campaign(lib, cfg, resumed);
  EXPECT_EQ(second.reused, 3u);
  EXPECT_EQ(second.computed, 0u);

  // Upgrade the store in place (what the CLI does on its next run) and
  // resume again: the header changes nothing about cell identity.
  obs::RunManifest m;
  m.tool = "campaign";
  m.config = "campaign fir";
  CampaignStore upgraded(path);
  upgraded.write_header(m.to_jsonl());
  const CampaignOutcome third = run_campaign(lib, cfg, upgraded);
  EXPECT_EQ(third.reused, 3u);
  EXPECT_EQ(third.computed, 0u);

  CampaignStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 3u);
  EXPECT_EQ(reloaded.manifest_line(), m.to_jsonl());
  std::remove(path.c_str());
}

TEST(CampaignStore, MergeExcludesManifestHeaders) {
  // merge-store unifies shard stores that each carry their own manifest;
  // the merged output must contain cells only (the merge is a new run
  // context, and --strip-timing canonicalization must not be defeated
  // by per-shard headers).
  const std::string a = temp_path("merge_manifest_a.jsonl");
  const std::string b = temp_path("merge_manifest_b.jsonl");
  const std::string out = temp_path("merge_manifest_out.jsonl");
  obs::RunManifest m;
  m.tool = "campaign";
  m.shard = "0/2";
  m.config = "campaign --shard=0/2";
  {
    std::ofstream fa(a), fb(b);
    fa << m.to_jsonl() << "\n";
    fa << CampaignStore::to_jsonl(sample_cell()) << "\n";
    m.shard = "1/2";
    fb << m.to_jsonl() << "\n";
    CampaignCell other = sample_cell();
    other.key.workload = "dot";
    fb << CampaignStore::to_jsonl(other) << "\n";
  }
  const MergeStats stats = merge_stores({a, b}, out, /*strip_timing=*/true);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.manifests, 2u);
  EXPECT_EQ(stats.skipped, 0u);  // manifests are headers, not garbage
  EXPECT_EQ(stats.cells, 2u);
  {
    std::ifstream f(out);
    std::string contents((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents.find("vosim_manifest"), std::string::npos);
    EXPECT_NE(contents.find("\"elapsed_s\":0"), std::string::npos);
  }
  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

TEST(CampaignRunner, ShardedFleetCampaignMergesBitIdentical) {
  // The sharded-store contract end to end: an N-shard fleet campaign,
  // merged, must be byte-for-byte the canonicalized single-process
  // store (elapsed_s stripped — the only wall-clock field).
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.65, 0.0}};
  cfg.fleet.num_chips = 6;
  cfg.jobs = 2;

  const std::string single = temp_path("shard_single.jsonl");
  const std::string canon = temp_path("shard_canon.jsonl");
  const std::string merged = temp_path("shard_merged.jsonl");
  std::vector<std::string> shard_paths;
  for (int i = 0; i < 3; ++i)
    shard_paths.push_back(temp_path("shard_" + std::to_string(i) +
                                    ".jsonl"));
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  std::remove(single.c_str());

  CampaignStore whole(single);
  const CampaignOutcome all = run_campaign(lib, cfg, whole);
  EXPECT_EQ(all.cells.size(), 12u);  // 2 triads x 6 chips

  std::size_t shard_cells = 0;
  cfg.shard_count = 3;
  for (std::size_t i = 0; i < 3; ++i) {
    cfg.shard_index = i;
    CampaignStore shard(shard_paths[i]);
    shard_cells += run_campaign(lib, cfg, shard).computed;
  }
  EXPECT_EQ(shard_cells, all.cells.size());  // disjoint, exhaustive

  merge_stores(shard_paths, merged, /*strip_timing=*/true);
  merge_stores({single}, canon, /*strip_timing=*/true);
  const std::string merged_bytes = read_file(merged);
  EXPECT_FALSE(merged_bytes.empty());
  EXPECT_EQ(merged_bytes, read_file(canon));

  std::remove(single.c_str());
  std::remove(canon.c_str());
  std::remove(merged.c_str());
  for (const std::string& p : shard_paths) std::remove(p.c_str());
}

TEST(CampaignRunner, ShardValidation) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  CampaignStore store;
  cfg.shard_count = 0;
  EXPECT_THROW(run_campaign(lib, cfg, store), std::invalid_argument);
  cfg.shard_count = 2;
  cfg.shard_index = 2;
  EXPECT_THROW(run_campaign(lib, cfg, store), std::invalid_argument);
}

TEST(CampaignRunner, MaxTriadsTruncatesTheGrid) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg = small_campaign();
  cfg.triad_specs.clear();  // full 43-triad Table-III grid...
  cfg.max_triads = 2;       // ...truncated
  CampaignStore store;
  const CampaignOutcome outcome = run_campaign(lib, cfg, store);
  EXPECT_EQ(outcome.cells.size(), 2u);
}

}  // namespace
}  // namespace vosim
