// Telemetry-layer tests: metrics registry correctness under threads,
// latency-histogram quantiles, Chrome-trace span sessions, run
// manifests, and the acceptance pin — a campaign's cache-hit counters
// exactly match the runner's reused/computed cell counts, and its
// characterize/train counters match the calls actually made.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/tech/library.hpp"

namespace vosim {
namespace {

TEST(Metrics, CounterSumsAcrossThreads) {
  obs::Counter& c = obs::metrics().counter("test.obs.threads");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksUpAndDown) {
  obs::Gauge& g = obs::metrics().gauge("test.obs.gauge");
  g.reset();
  g.add(3.0);
  g.add(2.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::metrics().counter("test.obs.stable");
  obs::Counter& b = obs::metrics().counter("test.obs.stable");
  EXPECT_EQ(&a, &b);  // cached static-local refs stay valid
}

TEST(Metrics, LatencyHistogramQuantilesAndSnapshot) {
  obs::LatencyHisto& h = obs::metrics().histogram("test.obs.latency");
  h.reset();
  // 90 fast observations and 10 slow ones: p50 lands in the fast
  // cluster, p99 in the slow one. The estimate is bucket-interpolated
  // (6 buckets/decade), so compare within half a decade.
  for (int i = 0; i < 90; ++i) h.observe(1e-4);
  for (int i = 0; i < 10; ++i) h.observe(1e-1);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.mean, 0.9 * 1e-4 + 0.1 * 1e-1, 1e-6);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 1e-1);
  EXPECT_GT(snap.p50, 1e-5);
  EXPECT_LT(snap.p50, 1e-3);
  EXPECT_GT(snap.p99, 1e-2);
  EXPECT_LT(snap.p99, 1.0);
}

TEST(Metrics, SnapshotJsonIsSingleLineWithEveryKind) {
  obs::metrics().counter("test.obs.json.counter").add(5);
  obs::metrics().gauge("test.obs.json.gauge").set(2.5);
  obs::metrics().histogram("test.obs.json.histo").observe(0.01);
  const std::string json = obs::metrics().snapshot().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.histo\":{\"count\":"),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::tracing());
  {
    obs::ScopedSpan span("test.noop", "test");
    span.arg("k", std::string("v"));
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, SessionRecordsChromeCompleteEvents) {
  obs::start_trace();
  {
    obs::ScopedSpan outer("test.outer", "test");
    outer.arg("label", std::string("quoted \"value\""))
        .arg("n", std::uint64_t{42});
    obs::ScopedSpan inner("test.inner", "test");
  }
  std::thread worker([] { obs::ScopedSpan span("test.worker", "test"); });
  worker.join();
  EXPECT_EQ(obs::trace_event_count(), 3u);
  const std::string doc = obs::stop_trace_json();
  EXPECT_FALSE(obs::tracing());
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"test.worker\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"label\":\"quoted \\\"value\\\"\","
                     "\"n\":\"42\"}"),
            std::string::npos);
  // The worker thread got its own track (tid 2 after the main thread).
  EXPECT_NE(doc.find("\"tid\":2"), std::string::npos);
  // Stopping drained the session.
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, RestartDropsThePreviousSession) {
  obs::start_trace();
  { obs::ScopedSpan span("test.stale", "test"); }
  obs::start_trace();  // new session: the stale event must not leak in
  { obs::ScopedSpan span("test.fresh", "test"); }
  const std::string doc = obs::stop_trace_json();
  EXPECT_EQ(doc.find("test.stale"), std::string::npos);
  EXPECT_NE(doc.find("test.fresh"), std::string::npos);
}

TEST(Manifest, RoundTripsThroughJsonl) {
  obs::RunManifest m;
  m.tool = "campaign";
  m.engine = "levelized";
  m.lane_width = 256;
  m.shard = "2/4";
  m.config = "campaign --workloads=fir";
  const std::string line = m.to_jsonl();
  EXPECT_TRUE(obs::RunManifest::is_manifest_line(line));
  const auto parsed = obs::RunManifest::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tool, "campaign");
  EXPECT_EQ(parsed->engine, "levelized");
  EXPECT_EQ(parsed->lane_width, 256u);
  EXPECT_EQ(parsed->shard, "2/4");
  EXPECT_EQ(parsed->store_version, obs::kStoreVersion);
  EXPECT_EQ(parsed->parsed_hash, m.config_hash());
  // Different configs hash differently (FNV-1a content hash).
  obs::RunManifest other = m;
  other.config = "campaign --workloads=dot";
  EXPECT_NE(other.config_hash(), m.config_hash());
  // The backward-compat linchpin: a manifest line is NOT a cell.
  EXPECT_FALSE(CampaignStore::parse_jsonl(line).has_value());
  EXPECT_FALSE(obs::RunManifest::parse("{\"workload\":\"fir\"}")
                   .has_value());
}

TEST(Campaign, CacheCountersMatchRunnerOutcome) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  auto& reg = obs::metrics();
  CampaignConfig cfg;
  cfg.workloads = {"fir"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  cfg.max_triads = 2;
  cfg.characterize_patterns = 300;
  cfg.train_patterns = 400;

  CampaignStore store;  // in-memory: pass 2 resumes from pass 1
  const std::uint64_t hit0 =
      reg.counter("campaign.cache.hit").value();
  const std::uint64_t miss0 =
      reg.counter("campaign.cache.miss").value();
  const std::uint64_t char0 =
      reg.counter("campaign.characterize.calls").value();
  const std::uint64_t train0 =
      reg.counter("campaign.train.calls").value();

  const CampaignOutcome first = run_campaign(lib, cfg, store);
  EXPECT_EQ(first.reused, 0u);
  EXPECT_EQ(first.computed, 2u);
  EXPECT_EQ(reg.counter("campaign.cache.hit").value() - hit0,
            first.reused);
  EXPECT_EQ(reg.counter("campaign.cache.miss").value() - miss0,
            first.computed);
  // One pending circuit -> one characterize_dut call; two model-backend
  // triads -> two trained models.
  EXPECT_EQ(reg.counter("campaign.characterize.calls").value() - char0,
            1u);
  EXPECT_EQ(reg.counter("campaign.train.calls").value() - train0, 2u);

  const CampaignOutcome second = run_campaign(lib, cfg, store);
  EXPECT_EQ(second.reused, 2u);
  EXPECT_EQ(second.computed, 0u);
  EXPECT_EQ(reg.counter("campaign.cache.hit").value() - hit0,
            first.reused + second.reused);
  EXPECT_EQ(reg.counter("campaign.cache.miss").value() - miss0,
            first.computed + second.computed);
  // A fully-resumed campaign touches no simulator: no new
  // characterization and no new models.
  EXPECT_EQ(reg.counter("campaign.characterize.calls").value() - char0,
            1u);
  EXPECT_EQ(reg.counter("campaign.train.calls").value() - train0, 2u);
  // The per-backend wall-time histogram saw exactly the computed cells.
  EXPECT_GE(reg.histogram("campaign.cell.seconds.model").snapshot().count,
            2u);
}

TEST(Campaign, TraceCoversCampaignPhases) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  CampaignConfig cfg;
  cfg.workloads = {"fir"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kExact};
  cfg.max_triads = 1;
  cfg.characterize_patterns = 200;

  obs::start_trace();
  CampaignStore store;
  run_campaign(lib, cfg, store);
  const std::string doc = obs::stop_trace_json();
  EXPECT_NE(doc.find("\"name\":\"campaign.synth\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"campaign.characterize\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"campaign.execute\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"campaign.cell\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\":\"exact\""), std::string::npos);
}

}  // namespace
}  // namespace vosim
