// Image-processing demo: Gaussian blur quality vs energy when the
// accumulating adder is voltage over-scaled — the error-resilient
// application class of the paper's introduction.
//
// For each triad of the 16-bit RCA sweep we train a statistical model,
// run the blur with it, and report PSNR against the exact-adder result
// next to the characterized energy saving.
#include <cmath>
#include <iostream>
#include <string>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== image blur under voltage over-scaling ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist adder = to_dut(build_rca(16));
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);

  // A ladder of representative triads at the synthesis clock: nominal,
  // near-threshold + FBB (error-free), and three over-scaled points.
  const std::vector<OperatingTriad> triads{
      {rep.critical_path_ns, 1.0, 0.0}, {rep.critical_path_ns, 0.6, 2.0},
      {rep.critical_path_ns, 0.5, 2.0}, {rep.critical_path_ns, 0.4, 2.0},
      {rep.critical_path_ns, 0.7, 0.0}, {rep.critical_path_ns, 0.6, 0.0},
  };
  CharacterizeConfig ccfg;
  ccfg.num_patterns = 4000;
  const auto results = characterize_dut(adder, lib, triads, ccfg);
  const double base_fj = results[0].energy_per_op_fj;

  const GrayImage scene = make_synthetic_scene(96, 96, 2024);
  const GrayImage reference = gaussian_blur3(scene, exact_adder_fn(16));

  TextTable t({"triad", "adder BER [%]", "blur PSNR [dB]",
               "energy saving [%]"});
  for (const TriadResult& r : results) {
    // Train the model for this triad and run the blur with it.
    VosDutSim sim(adder, lib, r.triad);
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    TrainerConfig tcfg;
    tcfg.num_patterns = 6000;
    const VosAdderModel model = train_vos_model(16, r.triad, oracle, tcfg);
    Rng rng(5);
    const GrayImage blurred =
        gaussian_blur3(scene, model_adder_fn(model, rng));
    const double psnr = psnr_db(reference, blurred);
    t.add_row({triad_label(r.triad), format_double(r.ber * 100.0, 2),
               std::isinf(psnr) ? std::string("inf")
                                : format_double(psnr, 1),
               format_double(
                   energy_efficiency(r.energy_per_op_fj, base_fj) * 100.0,
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: near-threshold + forward body-bias buys large"
               " savings at infinite/high PSNR; pushing Vdd lower trades"
               " visible quality for the last few percent — the knob the"
               " paper exposes to error-resilient applications.\n";
  return 0;
}
