// Image-processing demo: Gaussian blur quality vs energy when the
// accumulating adder is voltage over-scaled — the error-resilient
// application class of the paper's introduction.
//
// For each triad of the 16-bit RCA ladder the campaign subsystem
// trains a statistical model, runs the blur with it, and reports PSNR
// against the exact-adder result next to the characterized energy
// saving — the hand-rolled sweep of the original demo reduced to a
// grid declaration.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== image blur under voltage over-scaling ==\n";

  CampaignConfig cfg;
  cfg.workloads = {"blur"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  // A ladder of representative triads at the synthesis clock: nominal,
  // near-threshold + FBB (error-free), and over-scaled points.
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.6, 2.0}, {1.0, 0.5, 2.0},
                     {1.0, 0.4, 2.0}, {1.0, 0.7, 0.0}, {1.0, 0.6, 0.0}};
  cfg.characterize_patterns = 4000;
  cfg.train_patterns = 6000;

  CampaignStore store;
  const CampaignOutcome outcome =
      run_campaign(make_fdsoi28_lvt(), cfg, store);
  campaign_table(outcome.cells).print(std::cout);

  std::cout << "\nreading: near-threshold + forward body-bias buys large"
               " savings at infinite/high PSNR; pushing Vdd lower trades"
               " visible quality for the last few percent — the knob the"
               " paper exposes to error-resilient applications.\n";
  return 0;
}
