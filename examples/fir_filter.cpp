// Signal-processing demo: fixed-point FIR low-pass filtering with a
// voltage-over-scaled adder (the soft-DSP workload of paper ref. [4]).
// Reports output SNR vs energy saving across triads.
#include <cmath>
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== FIR filtering under voltage over-scaling ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist adder = to_dut(build_rca(16));
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);

  const std::vector<OperatingTriad> triads{
      {rep.critical_path_ns, 1.0, 0.0}, {rep.critical_path_ns, 0.6, 2.0},
      {rep.critical_path_ns, 0.5, 2.0}, {rep.critical_path_ns, 0.4, 2.0},
      {rep.critical_path_ns, 0.65, 0.0},
  };
  CharacterizeConfig ccfg;
  ccfg.num_patterns = 4000;
  const auto results = characterize_dut(adder, lib, triads, ccfg);
  const double base_fj = results[0].energy_per_op_fj;

  const FixedSignal signal = make_test_signal(2048, 12, 99);
  const FixedSignal reference = fir_lowpass5(signal, exact_adder_fn(16));

  TextTable t({"triad", "adder BER [%]", "FIR SNR [dB]",
               "energy saving [%]"});
  for (const TriadResult& r : results) {
    VosDutSim sim(adder, lib, r.triad);
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    TrainerConfig tcfg;
    tcfg.num_patterns = 6000;
    const VosAdderModel model = train_vos_model(16, r.triad, oracle, tcfg);
    Rng rng(6);
    const FixedSignal filtered =
        fir_lowpass5(signal, model_adder_fn(model, rng));
    const double snr = signal_snr_db(reference, filtered);
    t.add_row({triad_label(r.triad), format_double(r.ber * 100.0, 2),
               std::isinf(snr) ? std::string("inf")
                               : format_double(snr, 1),
               format_double(
                   energy_efficiency(r.energy_per_op_fj, base_fj) * 100.0,
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: audio/DSP pipelines tolerate tens of dB of SNR"
               " loss before artifacts matter; VOS exposes that headroom"
               " as energy savings without redesigning the filter.\n";
  return 0;
}
