// Signal-processing demo: fixed-point FIR low-pass filtering with a
// voltage-over-scaled adder (the soft-DSP workload of paper ref. [4]).
// Reports output SNR vs energy saving across triads.
//
// The triad loop, model training and quality/energy bookkeeping all
// live in the campaign subsystem (src/campaign/) — the example only
// declares the grid.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== FIR filtering under voltage over-scaling ==\n";

  CampaignConfig cfg;
  cfg.workloads = {"fir"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  // The triad ladder of the original demo, relative to the adder's own
  // synthesis critical path: nominal, three over-scaled supplies with
  // forward body-bias, and one plain near-threshold point.
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.6, 2.0}, {1.0, 0.5, 2.0},
                     {1.0, 0.4, 2.0}, {1.0, 0.65, 0.0}};
  cfg.characterize_patterns = 4000;
  cfg.train_patterns = 6000;

  CampaignStore store;  // in-memory; pass a path to make the run resumable
  const CampaignOutcome outcome =
      run_campaign(make_fdsoi28_lvt(), cfg, store);
  campaign_table(outcome.cells).print(std::cout);

  std::cout << "\nreading: audio/DSP pipelines tolerate tens of dB of SNR"
               " loss before artifacts matter; VOS exposes that headroom"
               " as energy savings without redesigning the filter.\n";
  return 0;
}
