// Debugging workflow demo: export a netlist to structural Verilog and a
// single voltage-over-scaled operation to a VCD waveform, to inspect in
// a standard viewer exactly which transition missed the clock edge.
#include <fstream>
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== netlist + waveform export ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();
  const AdderNetlist adder = build_rca(8);
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);

  // 1. Structural Verilog of the operator.
  {
    std::ofstream f("rca8.v");
    write_verilog(adder.netlist, f);
  }
  std::cout << "wrote rca8.v (" << adder.netlist.num_gates()
            << " cell instances)\n";

  // 2. One worst-case operation at a VOS triad, with a VcdObserver
  //    attached: 0x00+0x00 -> 0xFF+0x01 excites the full carry ripple.
  const OperatingTriad triad{rep.critical_path_ns, 0.7, 0.0};
  TimingSimulator sim(adder.netlist, lib, triad);
  VcdObserver vcd;
  sim.attach_observer(&vcd);
  std::vector<std::uint8_t> zeros(adder.netlist.primary_inputs().size(), 0);
  sim.settle(zeros);
  std::vector<std::uint8_t> stim(adder.netlist.primary_inputs().size(), 0);
  for (int i = 0; i < 8; ++i) stim[static_cast<std::size_t>(i)] = 1;  // a=0xFF
  stim[8] = 1;                                                        // b=0x01
  const StepResult r = sim.step(stim);

  {
    std::ofstream f("rca8_vos.vcd");
    vcd.write(f);
  }
  const std::uint64_t sampled = pack_word(sim.sampled_values(), adder.sum);
  std::cout << "wrote rca8_vos.vcd: " << r.toggles_total
            << " transitions, settle "
            << format_double(r.settle_time_ps, 1) << " ps vs Tclk "
            << format_double(triad.tclk_ns * 1e3, 1) << " ps\n"
            << "sampled 0xFF+0x01 = " << sampled << " (exact 256): the "
            << (sampled == 256 ? "capture made it" : "carry was cut off")
            << "\n"
            << "open rca8_vos.vcd in GTKWave and watch the carry chain"
               " race the clk_sample marker.\n";
  return 0;
}
