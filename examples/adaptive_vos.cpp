// Dynamic speculation demo (paper Section V + ref. [17]): an adder that
// walks the characterized triad ladder at run time under a user error
// margin, using double-sampling error detection — the "accurate mode to
// approximate mode" switching the paper proposes.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== adaptive voltage over-scaling ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist adder = to_dut(build_rca(8));
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);

  // Characterize the paper's 43-triad sweep, then distill the Pareto
  // ladder the controller will climb.
  const auto triads =
      make_paper_triads(AdderArch::kRipple, 8, rep.critical_path_ns);
  CharacterizeConfig ccfg;
  ccfg.num_patterns = 3000;
  const auto results = characterize_dut(adder, lib, triads, ccfg);
  const double base_fj = results[0].energy_per_op_fj;
  const auto ladder = build_triad_ladder(results);
  std::cout << "\nPareto triad ladder (" << ladder.size() << " rungs):\n";
  TextTable lt({"rung", "triad", "expected BER [%]", "E/op [fJ]"});
  for (std::size_t i = 0; i < ladder.size(); ++i)
    lt.add_row({std::to_string(i), triad_label(ladder[i].triad),
                format_double(ladder[i].expected_ber * 100.0, 2),
                format_double(ladder[i].energy_per_op_fj, 2)});
  lt.print(std::cout);

  // Run a workload with a 5% BER budget and watch the controller move.
  SpeculationConfig scfg;
  scfg.ber_margin = 0.05;
  scfg.window_ops = 256;
  scfg.min_dwell_ops = 256;
  AdaptiveVosUnit runtime(adder, lib, ladder, scfg);

  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 4242);
  ErrorAccumulator acc(9);
  std::size_t last_rung = 0;
  std::cout << "\nworkload trace (switches only):\n";
  const int ops = 20000;
  for (int i = 0; i < ops; ++i) {
    const OperandPair p = patterns.next();
    const AdaptiveOpResult r = runtime.apply(p.a, p.b);
    acc.add(p.a + p.b, r.sampled);
    if (r.rung != last_rung) {
      std::cout << "  op " << i << ": rung " << last_rung << " -> "
                << r.rung << "  (now "
                << triad_label(runtime.current_triad()) << ", window BER "
                << format_double(runtime.controller().window_ber() * 100.0,
                                 2)
                << "%)\n";
      last_rung = r.rung;
    }
  }

  std::cout << "\nsummary after " << ops << " ops:\n"
            << "  final triad     : "
            << triad_label(runtime.current_triad()) << "\n"
            << "  workload BER    : "
            << format_double(acc.ber() * 100.0, 2) << " % (budget 5%)\n"
            << "  mean energy/op  : "
            << format_double(runtime.mean_energy_fj(), 2) << " fJ ("
            << format_double(
                   energy_efficiency(runtime.mean_energy_fj(), base_fj) *
                       100.0,
                   1)
            << "% saving vs nominal " << format_double(base_fj, 2)
            << " fJ)\n"
            << "  triad switches  : " << runtime.controller().switches()
            << "\n";
  std::cout << "\nreading: the controller glides to the cheapest rung whose"
               " measured error rate honours the margin — no design-time"
               " freeze of the accuracy/energy point.\n";
  return 0;
}
