// Quickstart: the library's whole flow on one page.
//
//   1. build an 8-bit ripple-carry adder netlist
//   2. "synthesize" it (area / power / critical path report)
//   3. run it at a voltage-over-scaled triad in the timing simulator
//   4. train the paper's statistical model (Algorithm 1) against it
//   5. use the model as a drop-in approximate adder at algorithm level
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== vosim quickstart ==\n\n";

  // 1. The operator under study, wrapped as a generic DUT.
  const DutNetlist adder = to_dut(build_rca(8));
  const CellLibrary& lib = make_fdsoi28_lvt();

  // 2. Synthesis-style report (paper Table II flavour).
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);
  std::cout << "design " << rep.design << ": " << rep.num_gates
            << " gates, " << format_double(rep.area_um2, 1) << " um2, "
            << format_double(rep.total_power_uw, 1) << " uW, CP "
            << format_double(rep.critical_path_ns, 3) << " ns\n";

  // 3. Voltage over-scaling: run at the synthesis clock but only 0.6 V.
  const OperatingTriad vos{rep.critical_path_ns, 0.6, 0.0};
  VosDutSim sim(adder, lib, vos);
  std::cout << "\noperating triad " << triad_label(vos) << ":\n";
  ErrorAccumulator acc(9);
  PatternStream patterns(PatternPolicy::kCarryBalanced, 8, 42);
  double energy = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const OperandPair p = patterns.next();
    const VosOpResult r = sim.apply(p.a, p.b);
    acc.add(p.a + p.b, r.sampled);
    energy += r.energy_fj;
  }
  std::cout << "  BER  = " << format_double(acc.ber() * 100.0, 2)
            << " %   (errors are timing errors: the circuit settles to"
               " the right answer, too late)\n"
            << "  E/op = " << format_double(energy / 5000.0, 2) << " fJ\n";

  // 4. Train the statistical model against the simulator (Algorithm 1).
  const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
    return sim.apply(a, b).sampled;
  };
  TrainerConfig tcfg;
  tcfg.num_patterns = 10000;
  const VosAdderModel model = train_vos_model(8, vos, oracle, tcfg);
  std::cout << "\ntrained P(Cmax|Cth) table:\n";
  model.table().to_table(2).print(std::cout);

  // 5. Use the model at algorithm level: fast approximate additions.
  Rng rng(7);
  std::cout << "\nmodel in action (a + b -> sampled-like result):\n";
  for (const auto& [a, b] : {std::pair<std::uint64_t, std::uint64_t>{
                                 0xFF, 0x01},
                             {0x55, 0x55},
                             {0x0F, 0x11}}) {
    std::cout << "  " << a << " + " << b << " = " << (a + b)
              << "  ->  model: " << model.add(a, b, rng) << "\n";
  }

  // Fidelity of the model against held-out simulator behaviour.
  VosDutSim eval_sim(adder, lib, vos);
  const HardwareOracle eval_oracle = [&eval_sim](std::uint64_t a,
                                                 std::uint64_t b) {
    return eval_sim.apply(a, b).sampled;
  };
  FidelityConfig fcfg;
  fcfg.num_patterns = 5000;
  const FidelityResult fr = evaluate_fidelity(model, eval_oracle, fcfg);
  std::cout << "\nmodel vs simulator on held-out patterns: SNR "
            << format_double(fr.snr_db, 1) << " dB, normalized Hamming "
            << format_double(fr.normalized_hamming, 3) << "\n";
  std::cout << "\ndone — see examples/image_blur, examples/fir_filter,"
               " examples/adaptive_vos, examples/design_space.\n";
  return 0;
}
