// Machine-learning demo: k-means clustering quality vs energy when the
// distance datapath runs on a voltage-over-scaled adder — the "data
// mining / machine learning" error-resilient workload of the paper's
// introduction.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== k-means clustering under voltage over-scaling ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist adder = to_dut(build_rca(16));
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);

  const std::vector<OperatingTriad> triads{
      {rep.critical_path_ns, 1.0, 0.0}, {rep.critical_path_ns, 0.5, 2.0},
      {rep.critical_path_ns, 0.4, 2.0}, {rep.critical_path_ns, 0.65, 0.0},
      {rep.critical_path_ns, 0.6, 0.0},
  };
  CharacterizeConfig ccfg;
  ccfg.num_patterns = 4000;
  const auto results = characterize_dut(adder, lib, triads, ccfg);
  const double base_fj = results[0].energy_per_op_fj;

  const ClusterDataset data = make_cluster_dataset(4, 120, 2026);
  const KmeansResult exact = kmeans(data.points, 4, exact_adder_fn(16));
  std::cout << "exact-adder accuracy: "
            << format_double(clustering_accuracy(data, exact.assignment) *
                                 100.0,
                             1)
            << " % (" << exact.iterations << " iterations)\n\n";

  TextTable t({"triad", "adder BER [%]", "accuracy [%]", "iterations",
               "energy saving [%]"});
  for (const TriadResult& r : results) {
    VosDutSim sim(adder, lib, r.triad);
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    TrainerConfig tcfg;
    tcfg.num_patterns = 6000;
    const VosAdderModel model = train_vos_model(16, r.triad, oracle, tcfg);
    Rng rng(3);
    const AdderFn add = model_adder_fn(model, rng);
    const KmeansResult res = kmeans(data.points, 4, add);
    t.add_row({triad_label(r.triad), format_double(r.ber * 100.0, 2),
               format_double(
                   clustering_accuracy(data, res.assignment) * 100.0, 1),
               std::to_string(res.iterations),
               format_double(
                   energy_efficiency(r.energy_per_op_fj, base_fj) * 100.0,
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: cluster assignment only needs distance"
               " *orderings*, so k-means shrugs off double-digit BER —"
               " the archetype of the error resilience the paper exploits.\n";
  return 0;
}
