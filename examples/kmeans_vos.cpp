// Machine-learning demo: k-means clustering quality vs energy when the
// distance datapath runs on a voltage-over-scaled adder — the "data
// mining / machine learning" error-resilient workload of the paper's
// introduction. The sweep itself is one campaign over the kmeans
// workload; the Pareto front shows the cheapest triad that still
// clusters correctly.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== k-means clustering under voltage over-scaling ==\n";

  CampaignConfig cfg;
  cfg.workloads = {"kmeans"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.5, 2.0}, {1.0, 0.4, 2.0},
                     {1.0, 0.65, 0.0}, {1.0, 0.6, 0.0}};
  cfg.characterize_patterns = 4000;
  cfg.train_patterns = 6000;

  CampaignStore store;
  const CampaignOutcome outcome =
      run_campaign(make_fdsoi28_lvt(), cfg, store);
  campaign_table(outcome.cells).print(std::cout);

  const auto front = pareto_front(
      select_cells(outcome.cells, "kmeans", "model"));
  std::cout << "\nPareto front (accuracy vs energy):\n";
  pareto_table(front).print(std::cout);

  std::cout << "\nreading: cluster assignment only needs distance"
               " *orderings*, so k-means shrugs off double-digit BER —"
               " the archetype of the error resilience the paper exploits.\n";
  return 0;
}
