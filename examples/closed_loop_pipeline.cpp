// Closed-loop VOS on a clocked pipeline, end to end: build pipe2-mul8,
// characterize a small ladder, then let the controller walk it from
// measured Razor rates while an open-loop baseline pins the
// guard-banded rung. See DESIGN.md §10.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  const CellLibrary& lib = make_fdsoi28_lvt();
  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  const double cp = seq_critical_path_ns(seq, lib);
  std::cout << seq.display_name << ": " << seq.num_stages()
            << " stages, " << seq.num_gates() << " gates, "
            << seq.num_flops() << " flops, pipeline CP "
            << format_double(cp, 3) << " ns\n";

  // Characterize a short ladder on the levelized clocked path.
  CharacterizeConfig cfg;
  cfg.num_patterns = 500;
  cfg.engine = EngineKind::kLevelized;
  const std::vector<OperatingTriad> triads = {
      {1.5 * cp, 1.0, 0.0},  // guard-banded signoff point
      {0.8 * cp, 0.8, 2.0}, {0.8 * cp, 0.6, 2.0},
      {0.8 * cp, 0.5, 2.0}, {0.6 * cp, 0.4, 2.0}};
  const auto results = characterize_seq_dut(seq, lib, triads, cfg);
  std::vector<TriadRung> ladder = build_triad_ladder(results);
  if (!(ladder.front().triad == triads[0]))
    ladder.insert(ladder.begin(),
                  TriadRung{triads[0], results[0].ber,
                            results[0].energy_per_op_fj});

  ClosedLoopConfig cl;
  cl.op_error_margin = 0.05;
  cl.window_cycles = 128;
  cl.min_dwell_cycles = 128;
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;
  ClosedLoopSeqUnit unit(seq, lib, ladder, cl, sim_cfg);

  Rng rng(7);
  std::uint64_t flagged = 0;
  const int cycles = 4000;
  for (int c = 0; c < cycles; ++c) {
    const auto r = unit.step_cycle(rng() & 0xFF, rng() & 0xFF);
    if (r.cycle.razor_flags != 0) ++flagged;
  }
  const double baseline = ladder.front().energy_per_op_fj;
  std::cout << "ladder rungs: " << ladder.size() << ", final rung "
            << unit.controller().rung() << " ("
            << triad_label(unit.current_triad()) << "), switches "
            << unit.controller().switches() << "\n"
            << "Razor-flagged cycles: " << flagged << "/" << cycles
            << " (floor " << format_double(cl.op_error_margin * 100, 0)
            << "%)\n"
            << "mean energy " << format_double(unit.mean_energy_fj(), 1)
            << " fJ/cycle vs guard-banded "
            << format_double(baseline, 1) << " fJ/cycle ("
            << format_double(
                   100.0 * (1.0 - unit.mean_energy_fj() / baseline), 1)
            << "% saved)\n";
  return 0;
}
