// Design-space exploration demo: sweep several adder architectures
// (serial vs parallel prefix vs carry-select, plus static approximate
// designs) through the same VOS characterization and print the combined
// energy/accuracy landscape — the kind of study the library enables
// beyond the paper's two benchmark architectures.
#include <iostream>

#include "src/vosim.hpp"

int main() {
  using namespace vosim;
  std::cout << "== adder design space under voltage over-scaling ==\n";

  const CellLibrary& lib = make_fdsoi28_lvt();

  struct Entry {
    std::string name;
    DutNetlist dut;
  };
  std::vector<Entry> designs;
  designs.push_back({"RCA8", to_dut(build_rca(8))});
  designs.push_back({"BKA8", to_dut(build_brent_kung(8))});
  designs.push_back({"KSA8", to_dut(build_kogge_stone(8))});
  designs.push_back({"SKL8", to_dut(build_sklansky(8))});
  designs.push_back({"CSeL8", to_dut(build_carry_select(8, 4))});
  designs.push_back({"SPECW8 w=4", to_dut(build_speculative_window(8, 4))});
  designs.push_back({"LOA8 k=4", to_dut(build_lower_or(8, 4))});

  TextTable t({"design", "area [um2]", "CP [ns]", "triad", "BER [%]",
               "E/op [fJ]"});
  CharacterizeConfig cfg;
  cfg.num_patterns = 3000;
  // A design-space walk multiplies operators × triads — exactly the
  // workload the bit-parallel levelized engine accelerates ~10x+ while
  // staying within a couple BER percentage points of the event-driven
  // reference (DESIGN.md §7).
  cfg.engine = EngineKind::kLevelized;
  for (const Entry& e : designs) {
    const SynthesisReport rep = synthesize_report(e.dut.netlist, lib);
    // Three operating points: nominal, the aggressive error-free FBB
    // point, and one over-scaled point at the design's own clock.
    const std::vector<OperatingTriad> triads{
        {rep.critical_path_ns, 1.0, 0.0},
        {rep.critical_path_ns, 0.5, 2.0},
        {rep.critical_path_ns, 0.6, 0.0},
    };
    const auto results = characterize_dut(e.dut, lib, triads, cfg);
    for (const TriadResult& r : results) {
      t.add_row({e.name, format_double(rep.area_um2, 1),
                 format_double(rep.critical_path_ns, 3),
                 triad_label(r.triad), format_double(r.ber * 100.0, 2),
                 format_double(r.energy_per_op_fj, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nreading: parallel-prefix adders run faster clocks but"
               " spend more area/energy per op; static approximate designs"
               " start cheaper yet carry structural errors everywhere —"
               " VOS on an exact adder spans both worlds dynamically.\n";
  return 0;
}
