// Ablation (ours): energy accounting inside the clock window vs until
// quiescence. The windowed accounting (what a pipeline really pays)
// produces the super-quadratic savings and the taper of the paper's
// Fig. 8 energy curves; charging all transitions flattens that effect.
// This isolates DESIGN.md decision §6.3.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/logic.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/util/bits.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Ablation — clock-window energy accounting vs full-settle",
      "DESIGN.md §6.3 / paper Fig. 8 energy taper");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const AdderNetlist rca = build_rca(8);
  const SynthesisReport rep = synthesize_report(rca.netlist, lib);
  const std::size_t patterns =
      std::min<std::size_t>(pattern_budget(), 8000);

  TextTable t({"triad", "BER [%]", "window E [fJ]", "settle E [fJ]",
               "window/settle", "window EE [%]", "settle EE [%]"});
  double base_window = 0.0;
  double base_settle = 0.0;
  for (const double vdd : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4}) {
    const OperatingTriad triad{rep.critical_path_ns, vdd, 0.0};
    TimingSimulator sim(rca.netlist, lib, triad);
    // Drive the raw simulator so both energies are visible.
    std::vector<std::uint8_t> inputs(
        rca.netlist.primary_inputs().size(), 0);
    Rng rng(23);
    std::uint64_t bit_errors = 0;
    double window_e = 0.0;
    double settle_e = 0.0;
    for (std::size_t i = 0; i < patterns; ++i) {
      const std::uint64_t a = rng.bits(8);
      const std::uint64_t b = rng.bits(8);
      for (int k = 0; k < 8; ++k) {
        inputs[static_cast<std::size_t>(k)] =
            static_cast<std::uint8_t>((a >> k) & 1u);
        inputs[static_cast<std::size_t>(8 + k)] =
            static_cast<std::uint8_t>((b >> k) & 1u);
      }
      const StepResult r = sim.step(inputs);
      window_e += r.window_energy_fj;
      settle_e += r.total_energy_fj;
      bit_errors += static_cast<std::uint64_t>(
          hamming_distance(pack_word(sim.sampled_values(),
                                     rca.sum),
                           a + b, 9));
    }
    window_e /= static_cast<double>(patterns);
    settle_e /= static_cast<double>(patterns);
    if (vdd == 1.0) {
      base_window = window_e;
      base_settle = settle_e;
    }
    t.add_row(
        {triad_label(triad),
         format_double(100.0 * static_cast<double>(bit_errors) /
                           (static_cast<double>(patterns) * 9.0),
                       2),
         format_double(window_e, 2), format_double(settle_e, 2),
         format_double(window_e / settle_e, 3),
         format_double((1.0 - window_e / base_window) * 100.0, 1),
         format_double((1.0 - settle_e / base_settle) * 100.0, 1)});
  }
  t.print(std::cout);
  write_csv(t, "ablation_energywindow.csv");
  std::cout << "\nreading: at 0% BER both accountings agree (ratio 1); past"
               " the error cliff the window accounting drops extra energy"
               " because truncated carry chains never switch — the source"
               " of the paper's >quadratic savings at deep VOS.\n"
            << "CSV: ablation_energywindow.csv\n";
  return 0;
}
