// Shared plumbing for the benchmark harness binaries: the four paper
// benchmarks, their synthesis reports and triad sweeps, plus pattern
// budget control via the VOSIM_PATTERNS environment variable.
#ifndef VOSIM_BENCH_BENCH_COMMON_HPP
#define VOSIM_BENCH_BENCH_COMMON_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/triads.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/library.hpp"

namespace vosim::bench {

/// One of the paper's four benchmark operators. `adder` keeps the
/// architecture-specific view for the carry-chain/energy model benches;
/// `dut` is the same netlist as the generic DUT every simulator and
/// sweep consumes.
struct Benchmark {
  std::string name;  ///< e.g. "8-bit RCA"
  AdderArch arch;
  int width;
  AdderNetlist adder;
  DutNetlist dut;
  SynthesisReport report;
  std::vector<OperatingTriad> triads;  ///< Table III sweep (43 triads)
};

/// Builds the paper's benchmark set: 8/16-bit RCA and BKA.
std::vector<Benchmark> paper_benchmarks();

/// Pattern count per triad: paper uses 20000; override with the
/// VOSIM_PATTERNS environment variable (min 200) to trade fidelity for
/// runtime.
std::size_t pattern_budget();

/// Default characterization config for benches (paper settings, with
/// pattern_budget() applied).
CharacterizeConfig bench_config();

/// Prints a section header for harness output.
void print_header(const std::string& title, const std::string& paper_ref);

/// Registers the exit-time BENCH_METRICS_JSON telemetry line (once per
/// process). print_header does this implicitly; benches without a
/// header (google-benchmark mains) call it directly.
void emit_metrics_at_exit();

}  // namespace vosim::bench

#endif  // VOSIM_BENCH_BENCH_COMMON_HPP
