// Extension bench (ours): the per-segment statistical model (the
// paper's "perspectives" direction — richer parameter sets) against the
// single-window base model, across the full 43-triad sweep of each
// benchmark. Expected: clear gains on the parallel-prefix adders whose
// failure depth varies across the output word.
#include <algorithm>
#include <array>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/metrics.hpp"
#include "src/model/segmented_model.hpp"
#include "src/model/vos_model.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Extension — segmented (per-region) statistical model vs base model",
      "paper Section IV model + Section VI perspectives");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const std::size_t budget = pattern_budget() / 2;
  const int segments = 3;

  TextTable t({"Adder", "base SNR [dB]", "seg SNR [dB]",
               "base nHamming", "seg nHamming", "triads"});
  for (const Benchmark& b : paper_benchmarks()) {
    std::vector<std::array<double, 4>> rows(b.triads.size(),
                                            {0.0, 0.0, 0.0, 0.0});
    std::vector<std::uint8_t> informative(b.triads.size(), 0);

    parallel_for(b.triads.size(), [&](std::size_t ti) {
      const OperatingTriad& triad = b.triads[ti];
      TrainerConfig cfg;
      cfg.num_patterns = budget;

      VosDutSim train_base(b.dut, lib, triad);
      const HardwareOracle obase = [&](std::uint64_t x, std::uint64_t y) {
        return train_base.apply(x, y).sampled;
      };
      const VosAdderModel base =
          train_vos_model(b.width, triad, obase, cfg);

      VosDutSim train_seg(b.dut, lib, triad);
      const HardwareOracle oseg = [&](std::uint64_t x, std::uint64_t y) {
        return train_seg.apply(x, y).sampled;
      };
      const SegmentedVosModel seg =
          train_segmented_model(b.width, triad, oseg, segments, cfg);

      VosDutSim eval_base(b.dut, lib, triad);
      VosDutSim eval_seg(b.dut, lib, triad);
      PatternStream pat_base(PatternPolicy::kCarryBalanced, b.width, 1729);
      PatternStream pat_seg(PatternPolicy::kCarryBalanced, b.width, 1729);
      Rng rng_base(9);
      Rng rng_seg(9);
      ErrorAccumulator acc_base(b.width + 1);
      ErrorAccumulator acc_seg(b.width + 1);
      bool oracle_errs = false;
      for (std::size_t i = 0; i < budget; ++i) {
        const OperandPair pb = pat_base.next();
        const std::uint64_t hwb = eval_base.apply(pb.a, pb.b).sampled;
        oracle_errs |= hwb != pb.a + pb.b;
        acc_base.add(hwb, base.add(pb.a, pb.b, rng_base));
        const OperandPair ps = pat_seg.next();
        acc_seg.add(eval_seg.apply(ps.a, ps.b).sampled,
                    seg.add(ps.a, ps.b, rng_seg));
      }
      if (!oracle_errs) return;
      informative[ti] = 1;
      rows[ti] = {std::min(acc_base.snr_db(), snr_display_cap_db),
                  std::min(acc_seg.snr_db(), snr_display_cap_db),
                  acc_base.normalized_hamming(),
                  acc_seg.normalized_hamming()};
    });

    RunningStats base_snr;
    RunningStats seg_snr;
    RunningStats base_h;
    RunningStats seg_h;
    for (std::size_t ti = 0; ti < rows.size(); ++ti) {
      if (!informative[ti]) continue;
      base_snr.add(rows[ti][0]);
      seg_snr.add(rows[ti][1]);
      base_h.add(rows[ti][2]);
      seg_h.add(rows[ti][3]);
    }
    t.add_row({b.name, format_double(base_snr.mean(), 1),
               format_double(seg_snr.mean(), 1),
               format_double(base_h.mean(), 4),
               format_double(seg_h.mean(), 4),
               std::to_string(base_snr.count())});
  }
  t.print(std::cout);
  write_csv(t, "ext_model_segmented.csv");
  std::cout << "\nreading: per-segment windows recover the fidelity the"
               " single-parameter model loses on parallel-prefix adders,"
               " at the cost of S tables instead of one — the natural"
               " next step the paper's Section VI sketches.\n"
            << "CSV: ext_model_segmented.csv\n";
  return 0;
}
