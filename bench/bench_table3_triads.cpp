// Table III reproduction: the operating triads used for every benchmark
// (clock periods derived from our synthesis reports with the paper's
// per-benchmark ratios; supplies 1.0→0.4 V; body-bias {0, ±2 V}).
#include <iostream>
#include <set>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Table III — Operating triads used in the VOS sweeps",
               "paper Table III");

  TextTable all({"Benchmark", "Tclk (ns)", "Vdd (V)", "Vbb (V)", "#triads"});
  for (const Benchmark& b : paper_benchmarks()) {
    const TextTable row = table3_rows(b.name, b.triads);
    // table3_rows returns a one-row table; merge into the overview.
    all.add_row({b.name,
                 [&] {
                   std::string s;
                   std::set<double> tclk;
                   for (const auto& t : b.triads) tclk.insert(t.tclk_ns);
                   for (auto it = tclk.rbegin(); it != tclk.rend(); ++it) {
                     if (!s.empty()) s += ", ";
                     s += format_double(*it, 3);
                   }
                   return s;
                 }(),
                 "1.0 to 0.4", "0, ±2", std::to_string(b.triads.size())});
  }
  all.print(std::cout);
  write_csv(all, "table3_triads.csv");
  std::cout << "\npaper reference: 43 triads per benchmark; 8-bit RCA Tclk"
               " {0.5, 0.28, 0.19, 0.13} ns etc.\nCSV: table3_triads.csv\n";
  return 0;
}
