// Extension bench (ours): the characterization flow applied to other
// arithmetic configurations — 8x8 array and Wallace-tree multipliers and
// an 8-leaf adder tree. The paper's Section IV claims the methodology is
// "compliant with different arithmetic configurations"; this regenerates
// the Fig. 5-style per-bit error profile and the BER/energy trade-off
// for each of them.
#include <algorithm>
#include <functional>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/netlist/adder_tree.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/sim/word_sim.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/util/bits.hpp"
#include "src/util/table.hpp"

namespace {

using namespace vosim;
using namespace vosim::bench;

/// Characterizes one word operator across a Vdd sweep and prints a
/// Fig. 5-style per-bit profile (even bits shown to keep rows readable).
void sweep_operator(const std::string& name, const Netlist& netlist,
                    const std::vector<std::vector<NetId>>& input_buses,
                    const std::vector<NetId>& output_bus,
                    const std::function<std::uint64_t(
                        const std::vector<std::uint64_t>&)>& golden) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const SynthesisReport rep = synthesize_report(netlist, lib);
  std::cout << "\n-- " << name << ": " << rep.num_gates << " gates, "
            << format_double(rep.area_um2, 1) << " um2, CP "
            << format_double(rep.critical_path_ns, 3) << " ns --\n";

  const std::size_t patterns =
      std::min<std::size_t>(pattern_budget(), 8000);
  const int out_bits = static_cast<int>(output_bus.size());

  std::vector<std::string> header{"triad", "BER [%]", "E/op [fJ]"};
  for (int i = 0; i < out_bits; i += 2)
    header.push_back("b" + std::to_string(i));
  TextTable t(header);

  for (const double vdd : {1.0, 0.9, 0.8, 0.7, 0.6}) {
    for (const double vbb : {0.0, 2.0}) {
      if (vdd >= 0.9 && vbb > 0.0) continue;  // uninteresting corner
      const OperatingTriad triad{rep.critical_path_ns, vdd, vbb};
      VosWordSim sim(netlist, lib, triad, input_buses, output_bus);
      Rng rng(17);
      std::vector<std::uint64_t> bit_err(
          static_cast<std::size_t>(out_bits), 0);
      double energy = 0.0;
      for (std::size_t i = 0; i < patterns; ++i) {
        std::vector<std::uint64_t> ops;
        ops.reserve(input_buses.size());
        for (const auto& bus : input_buses)
          ops.push_back(rng.bits(static_cast<int>(bus.size())));
        const WordOpResult r = sim.apply(ops);
        const std::uint64_t diff = r.sampled ^ golden(ops);
        for (int k = 0; k < out_bits; ++k)
          if (bit_of(diff, k) != 0)
            ++bit_err[static_cast<std::size_t>(k)];
        energy += r.energy_fj;
      }
      std::uint64_t errs = 0;
      for (const auto e : bit_err) errs += e;
      std::vector<std::string> row{
          triad_label(triad),
          format_double(100.0 * static_cast<double>(errs) /
                            (static_cast<double>(patterns) * out_bits),
                        2),
          format_double(energy / static_cast<double>(patterns), 1)};
      for (int k = 0; k < out_bits; k += 2)
        row.push_back(format_double(
            100.0 *
                static_cast<double>(bit_err[static_cast<std::size_t>(k)]) /
                static_cast<double>(patterns),
            0));
      t.add_row(std::move(row));
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  print_header(
      "Extension — VOS characterization of multipliers and an adder tree",
      "paper Section IV generalization claim");

  const MultiplierNetlist arr = build_array_multiplier(8);
  sweep_operator("8x8 array multiplier", arr.netlist, {arr.a, arr.b},
                 arr.prod, [](const std::vector<std::uint64_t>& ops) {
                   return ops[0] * ops[1];
                 });

  const MultiplierNetlist wal = build_wallace_multiplier(8);
  sweep_operator("8x8 Wallace multiplier", wal.netlist, {wal.a, wal.b},
                 wal.prod, [](const std::vector<std::uint64_t>& ops) {
                   return ops[0] * ops[1];
                 });

  const AdderTreeNetlist tree = build_adder_tree(8, 8);
  std::vector<std::vector<NetId>> leaves(tree.leaves.begin(),
                                         tree.leaves.end());
  sweep_operator("8-leaf adder tree (8-bit)", tree.netlist, leaves,
                 tree.sum, [](const std::vector<std::uint64_t>& ops) {
                   std::uint64_t s = 0;
                   for (const auto v : ops) s += v;
                   return s;
                 });

  std::cout << "\nreading: all three operators show the VOS signature the"
               " paper identified on adders — the bits fed by the longest"
               " carry/reduction paths fail first and forward body-bias"
               " restores the margin. The Wallace tree runs a ~1.5x faster"
               " clock for the same function, and its denser path-depth"
               " distribution makes its BER rise steeper once over-scaled"
               " (the multiplier analogue of the BKA-vs-RCA contrast).\n";
  return 0;
}
