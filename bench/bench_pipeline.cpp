// Sequential pipeline bench: clocked multi-stage operators under VOS
// and the closed-loop controller that exploits them.
//
// Part 1 — per-stage synthesis/slack and the 43-triad sweep of every
// registry pipeline (pipe2-mul8, pipe3-mac4x8, fir4-pipe) on both
// engines' batched step_cycle paths. Machine-readable lines:
//   SEQ_LEVELIZED_SPEEDUP  event/levelized wall-clock ratio, summed
//                          over all pipelines (gated >= 10 in
//                          run_benches.sh/CI), plus one
//                          SEQ_LEVELIZED_SPEEDUP_<spec> line per
//                          pipeline
//   SEQ_BER_DEV_PP         max |event-lev| BER over the error-onset
//                          band (event BER <= 2%, the regime a quality
//                          floor can accept; past the knee the
//                          pipeline is saturated-broken and the
//                          levelized backend is conservative —
//                          DESIGN.md §10). Gated <= 2pp.
//
// Part 2 — closed-loop VOS control (Kaul-style timing-error-correction
// DVS): a ClosedLoopSeqUnit walks the measured-Razor ladder while the
// open-loop baseline pins the guard-banded signoff rung. Prints
//   CLOSED_LOOP_SAVINGS_PCT  mean closed-loop energy vs the safest
//                            rung, gated >= 10% in run_benches.sh/CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"
#include "src/runtime/closed_loop.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/util/lanes.hpp"
#include "src/util/rng.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  using clock = std::chrono::steady_clock;
  print_header("Sequential pipelines — clocked VOS + closed-loop control",
               "Kaul et al. DVS / Bahoo et al. block-level VOS");

  const CellLibrary& lib = make_fdsoi28_lvt();
  double event_seconds = 0.0;
  double levelized_seconds = 0.0;
  double onset_dev_pp = 0.0;

  std::vector<TriadRung> mul_ladder;  // reused by part 2
  OperatingTriad mul_nominal{};
  double mul_nominal_energy = 0.0;

  std::vector<std::pair<std::string, double>> per_spec;
  for (const char* spec : {"pipe2-mul8", "pipe3-mac4x8", "fir4-pipe"}) {
    const SeqDut seq = build_seq_circuit(spec);
    const double cp = seq_critical_path_ns(seq, lib);
    const auto triads = make_dut_triads(cp);

    std::cout << "\n--- " << seq.display_name << ": " << seq.num_stages()
              << " stages, " << seq.num_gates() << " gates, "
              << seq.num_flops() << " flops, pipeline CP "
              << format_double(cp, 3) << " ns ---\n";
    TextTable slack_t({"stage", "CP (ps)", "slack @CP (ps)"});
    for (const StageSlack& s :
         seq_stage_slacks(seq, lib, {cp, 1.0, 0.0}))
      slack_t.add_row({std::to_string(s.stage),
                       format_double(s.critical_path_ps, 1),
                       format_double(s.slack_ps, 1)});
    slack_t.print(std::cout);

    CharacterizeConfig cfg = bench_config();
    const auto t0 = clock::now();
    const auto ev = characterize_seq_dut(seq, lib, triads, cfg);
    const auto t1 = clock::now();
    cfg.engine = EngineKind::kLevelized;
    const auto lev = characterize_seq_dut(seq, lib, triads, cfg);
    const auto t2 = clock::now();
    const double ev_s = std::chrono::duration<double>(t1 - t0).count();
    const double lev_s = std::chrono::duration<double>(t2 - t1).count();
    event_seconds += ev_s;
    levelized_seconds += lev_s;
    per_spec.emplace_back(spec, lev_s > 0.0 ? ev_s / lev_s : 0.0);

    double dev = 0.0;
    int onset_points = 0;
    double full_dev = 0.0;
    for (std::size_t t = 0; t < triads.size(); ++t) {
      const double d = std::abs(ev[t].ber - lev[t].ber);
      full_dev = std::max(full_dev, d);
      if (ev[t].ber <= 0.02) {
        dev = std::max(dev, d);
        ++onset_points;
      }
    }
    onset_dev_pp = std::max(onset_dev_pp, dev * 100.0);

    const double baseline = ev[0].energy_per_op_fj;
    fig8_table(sort_for_fig8(ev), baseline).print(std::cout);
    std::cout << "onset band (event BER <= 2%): " << onset_points << "/"
              << triads.size() << " triads, engine dev "
              << format_double(dev * 100.0, 3)
              << " pp (full grid incl. saturated-broken: "
              << format_double(full_dev * 100.0, 2) << " pp)\n";

    if (std::string(spec) == "pipe2-mul8") {
      mul_ladder = build_triad_ladder(lev);
      mul_nominal = triads[0];
      mul_nominal_energy = lev[0].energy_per_op_fj;
    }
  }

  // ---- Part 2: closed-loop control vs the guard-banded safest rung.
  // The ladder's safest rung is pinned to the signoff (relaxed-nominal)
  // triad — the operating point an open-loop design must hold because,
  // without runtime error feedback, the synthesis guard band cannot be
  // shaved safely.
  if (mul_ladder.empty() ||
      !(mul_ladder.front().triad == mul_nominal))
    mul_ladder.insert(mul_ladder.begin(),
                      TriadRung{mul_nominal, 0.0, mul_nominal_energy});

  const SeqDut seq = build_seq_circuit("pipe2-mul8");
  ClosedLoopConfig cl_cfg;
  cl_cfg.op_error_margin = 0.05;  // quality floor: <=5% flagged cycles
  cl_cfg.window_cycles = 128;
  cl_cfg.min_dwell_cycles = 128;
  TimingSimConfig sim_cfg;
  sim_cfg.engine = EngineKind::kLevelized;
  ClosedLoopSeqUnit unit(seq, lib, mul_ladder, cl_cfg, sim_cfg);

  const std::size_t cycles = std::max<std::size_t>(
      3000, pattern_budget() * 10);
  Rng rng(2024);
  std::vector<std::size_t> rung_cycles(mul_ladder.size(), 0);
  std::uint64_t razor_cycles = 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    const ClosedLoopCycleResult r =
        unit.step_cycle(rng() & 0xFF, rng() & 0xFF);
    ++rung_cycles[r.rung];
    if (r.cycle.razor_flags != 0) ++razor_cycles;
  }

  const double baseline = mul_ladder.front().energy_per_op_fj;
  const double mean = unit.mean_energy_fj();
  const double savings = 100.0 * (1.0 - mean / baseline);
  std::cout << "\n--- closed-loop VOS control: " << seq.display_name
            << ", " << cycles << " cycles, floor "
            << format_double(cl_cfg.op_error_margin * 100.0, 0)
            << "% flagged cycles ---\n";
  TextTable cl_t({"rung", "triad", "E/cycle [fJ]", "char. BER [%]",
                  "cycles"});
  for (std::size_t r = 0; r < mul_ladder.size(); ++r)
    cl_t.add_row({std::to_string(r), triad_label(mul_ladder[r].triad),
                  format_double(mul_ladder[r].energy_per_op_fj, 1),
                  format_double(mul_ladder[r].expected_ber * 100.0, 2),
                  std::to_string(rung_cycles[r])});
  cl_t.print(std::cout);
  std::cout << "switches: " << unit.controller().switches()
            << ", Razor-flagged cycles: " << razor_cycles << "/" << cycles
            << "\nmean energy " << format_double(mean, 1)
            << " fJ/cycle vs safest rung "
            << format_double(baseline, 1) << " fJ/cycle\n";

  std::cout << "\nreading: with in-simulator Razor feedback the"
               " controller leaves the guard-banded signoff rung on"
               " measured evidence, something open-loop speculation"
               " cannot justify; the measured per-stage error rate —"
               " not the characterized BER table — rejects rungs past"
               " the quality floor.\n";

  // ---- Per-width clocked sweep timing: the pipe2-mul8 43-triad sweep
  // on the levelized batched step_cycle path at 64 lanes vs the widest
  // accelerated lane width (explicitly requested — auto defaults to
  // 64, lanes.hpp). Results are bit-exact across widths
  // (tests/test_lanes_wide.cpp), so this is a pure wall-clock A/B.
  {
    const std::size_t width = lanes::max_supported_lane_width();
    const SeqDut mul = build_seq_circuit("pipe2-mul8");
    const auto triads =
        make_dut_triads(seq_critical_path_ns(mul, lib));
    CharacterizeConfig cfg = bench_config();
    cfg.engine = EngineKind::kLevelized;
    double sink = 0.0;
    const auto time_width = [&](std::size_t w) {
      cfg.lane_width = w;
      const auto t0 = clock::now();
      for (const TriadResult& r : characterize_seq_dut(mul, lib, triads, cfg))
        sink += r.ber;
      return std::chrono::duration<double>(clock::now() - t0).count();
    };
    time_width(64);  // warm-up (touches caches and the thread pool)
    const double t64 = time_width(64);
    std::cout << "\nSEQ_SIMD_COMPILED " << lanes::simd_compiled_name()
              << "\nSEQ_WIDE_WIDTH " << width << "\nSEQ_WIDE_T64_MS "
              << format_double(t64 * 1e3, 2);
    if (width != 64) {
      const double tw = time_width(width);
      std::cout << "\nSEQ_WIDE_T" << width << "_MS "
                << format_double(tw * 1e3, 2) << "\nSEQ_WIDE_SPEEDUP "
                << format_double(tw > 0.0 ? t64 / tw : 0.0, 2);
    } else {
      std::cout << "\nSEQ_WIDE_SPEEDUP 1.00";
    }
    if (sink < 0.0) std::cout << "";  // keep the sweeps observable
  }

  // ---- Observers-off noise-floor probe on the clocked batched path
  // (same methodology as bench_perf_speedup: two interleaved min-of-k
  // legs of the identical observers-off sweep — a real regression of
  // the one-branch dispatch guard must exceed this deviation; CI gates
  // PROVENANCE_OVERHEAD_PCT <= 2%).
  {
    const SeqDut mul = build_seq_circuit("pipe2-mul8");
    const auto triads = make_dut_triads(seq_critical_path_ns(mul, lib));
    CharacterizeConfig cfg = bench_config();
    cfg.engine = EngineKind::kLevelized;
    double sink = 0.0;
    const auto run_once = [&] {
      const auto t0 = clock::now();
      for (const TriadResult& r :
           characterize_seq_dut(mul, lib, triads, cfg))
        sink += r.ber;
      return std::chrono::duration<double>(clock::now() - t0).count();
    };
    run_once();  // warm-up
    double min_a = 1e300;
    double min_b = 1e300;
    for (int k = 0; k < 3; ++k) {
      min_a = std::min(min_a, run_once());
      min_b = std::min(min_b, run_once());
    }
    const double overhead =
        100.0 * std::abs(min_a - min_b) / std::min(min_a, min_b);
    if (sink < 0.0) std::cout << "";  // keep the sweeps observable
    std::cout << "\nPROVENANCE_LEG_A_MS " << format_double(min_a * 1e3, 2)
              << "\nPROVENANCE_LEG_B_MS " << format_double(min_b * 1e3, 2)
              << "\nPROVENANCE_OVERHEAD_PCT " << format_double(overhead, 2);
  }

  std::cout << "\nSEQ_LEVELIZED_SPEEDUP "
            << format_double(levelized_seconds > 0.0
                                 ? event_seconds / levelized_seconds
                                 : 0.0,
                             2);
  for (const auto& [name, ratio] : per_spec)
    std::cout << "\nSEQ_LEVELIZED_SPEEDUP_" << name << " "
              << format_double(ratio, 2);
  std::cout << "\nSEQ_BER_DEV_PP " << format_double(onset_dev_pp, 3)
            << "\nCLOSED_LOOP_SAVINGS_PCT " << format_double(savings, 1)
            << "\n";
  return 0;
}
