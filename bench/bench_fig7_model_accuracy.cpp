// Fig. 7 reproduction: estimation error of the statistical model for
// the four adders and the three calibration distance metrics —
// (a) mean SNR of model vs simulated hardware, (b) mean normalized
// Hamming distance — aggregated over the 43-triad sweep, evaluated on
// held-out patterns.
//
// Paper shape: SNR ranks MSE >= weighted Hamming > Hamming; normalized
// Hamming distance is lowest for the plain Hamming metric; 16-bit RCA
// models are the most faithful in SNR.
#include <iostream>

#include "src/sim/vos_dut.hpp"
#include "src/util/table.hpp"

#include "bench/bench_common.hpp"
#include "src/model/evaluation.hpp"
#include "src/model/vos_model.hpp"
#include "src/util/parallel.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Fig. 7 — Estimation error of the statistical model (SNR / "
      "normalized Hamming)",
      "paper Fig. 7a and 7b");

  const CellLibrary& lib = make_fdsoi28_lvt();
  // Training uses half the per-triad budget, evaluation the other half,
  // on different seeds (held-out stimuli).
  const std::size_t budget = pattern_budget() / 2;

  TextTable ta({"Adder", "metric", "mean SNR [dB]",
                "mean norm. Hamming", "informative triads",
                "error-free triads"});
  for (const Benchmark& b : paper_benchmarks()) {
    for (const DistanceMetric metric :
         {DistanceMetric::kMse, DistanceMetric::kHamming,
          DistanceMetric::kWeightedHamming}) {
      std::vector<FidelityResult> runs(b.triads.size());
      parallel_for(b.triads.size(), [&](std::size_t t) {
        const OperatingTriad& triad = b.triads[t];
        VosDutSim train_sim(b.dut, lib, triad);
        const HardwareOracle train_oracle = [&](std::uint64_t x,
                                                std::uint64_t y) {
          return train_sim.apply(x, y).sampled;
        };
        TrainerConfig tcfg;
        tcfg.num_patterns = budget;
        tcfg.metric = metric;
        const VosAdderModel model =
            train_vos_model(b.width, triad, train_oracle, tcfg);

        VosDutSim eval_sim(b.dut, lib, triad);
        const HardwareOracle eval_oracle = [&](std::uint64_t x,
                                               std::uint64_t y) {
          return eval_sim.apply(x, y).sampled;
        };
        FidelityConfig fcfg;
        fcfg.num_patterns = budget;
        runs[t] = evaluate_fidelity(model, eval_oracle, fcfg);
      });
      const FidelitySummary s = summarize_fidelity(runs);
      ta.add_row({b.name, distance_metric_name(metric),
                  format_double(s.mean_snr_db, 1),
                  format_double(s.mean_normalized_hamming, 4),
                  std::to_string(s.evaluated_triads),
                  std::to_string(s.error_free_triads)});
    }
  }
  ta.print(std::cout);
  write_csv(ta, "fig7_model_accuracy.csv");
  std::cout << "\npaper shape: mean SNR 5-30 dB; MSE & weighted-Hamming"
               " calibration beat plain Hamming on SNR; normalized Hamming"
               " distance <= ~0.2 everywhere.\n"
            << "note: error-free triads (identity models) carry no"
               " modeling information and are excluded from means.\n"
            << "CSV: fig7_model_accuracy.csv\n";
  return 0;
}
