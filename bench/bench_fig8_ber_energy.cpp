// Fig. 8 reproduction: Bit-Error-Rate and Energy/Operation across the
// 43 operating triads for the 8/16-bit RCA and BKA (sub-figures a-d).
// Triads are printed in the paper's x-axis order (BER ascending, ties
// by energy), with energy efficiency vs the relaxed nominal baseline.
//
// The sweep runs on both SimEngine backends: the event-driven engine
// produces the reported tables; the bit-parallel levelized engine runs
// the identical grid afterwards, and the bench prints machine-readable
// LEVELIZED_SPEEDUP / LEVELIZED_BER_DEV_PP lines that
// tools/run_benches.sh and CI gate on (speedup floor 5×, BER deviation
// ≤ 2 percentage points on the 8-bit RCA).
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  using clock = std::chrono::steady_clock;
  print_header("Fig. 8 — BER vs Energy/Operation across 43 triads",
               "paper Fig. 8a-d");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const char* subfig = "abcd";
  int idx = 0;
  double event_seconds = 0.0;
  double levelized_seconds = 0.0;
  double rca8_ber_dev_pp = 0.0;
  for (const Benchmark& b : paper_benchmarks()) {
    const auto t0 = clock::now();
    const auto results =
        characterize_dut(b.dut, lib, b.triads, bench_config());
    const auto t1 = clock::now();
    CharacterizeConfig lev_cfg = bench_config();
    lev_cfg.engine = EngineKind::kLevelized;
    const auto lev_results =
        characterize_dut(b.dut, lib, b.triads, lev_cfg);
    const auto t2 = clock::now();
    event_seconds += std::chrono::duration<double>(t1 - t0).count();
    levelized_seconds += std::chrono::duration<double>(t2 - t1).count();
    double dev = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i)
      dev = std::max(dev,
                     std::abs(results[i].ber - lev_results[i].ber));
    if (b.arch == AdderArch::kRipple && b.width == 8)
      rca8_ber_dev_pp = dev * 100.0;
    const double baseline = results[0].energy_per_op_fj;
    const auto sorted = sort_for_fig8(results);

    std::cout << "\n--- Fig. 8" << subfig[idx] << ": " << b.name
              << " (baseline " << format_double(baseline, 2)
              << " fJ/op at " << triad_label(results[0].triad) << ") ---\n";
    const TextTable t = fig8_table(sorted, baseline);
    t.print(std::cout);
    const std::string csv =
        std::string("fig8") + subfig[idx] + "_" +
        (b.width == 8 ? "8" : "16") + adder_arch_name(b.arch) + ".csv";
    write_csv(t, csv);
    std::cout << "CSV: " << csv << "\n";

    // Headline claims of Section V for quick eyeballing.
    int zero_ber = 0;
    for (const auto& r : results)
      if (r.ber == 0.0) ++zero_ber;
    std::cout << "triads at 0% BER: " << zero_ber
              << "  (paper: 16/14/15/18 for 8RCA/8BKA/16RCA/16BKA)\n";
    std::cout << "levelized engine max |BER - event BER|: "
              << format_double(dev * 100.0, 2) << " pp\n";
    ++idx;
  }

  // Machine-readable engine comparison for tools/run_benches.sh / CI.
  const double speedup =
      levelized_seconds > 0.0 ? event_seconds / levelized_seconds : 0.0;
  std::cout << "\n--- engine comparison (all four sweeps, equal patterns) ---\n"
            << "event engine:     " << format_double(event_seconds, 3)
            << " s\n"
            << "levelized engine: " << format_double(levelized_seconds, 3)
            << " s\n"
            << "LEVELIZED_SPEEDUP " << format_double(speedup, 2) << "\n"
            << "LEVELIZED_BER_DEV_PP " << format_double(rca8_ber_dev_pp, 3)
            << "\n";
  return 0;
}
