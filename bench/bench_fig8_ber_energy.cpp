// Fig. 8 reproduction: Bit-Error-Rate and Energy/Operation across the
// 43 operating triads for the 8/16-bit RCA and BKA (sub-figures a-d).
// Triads are printed in the paper's x-axis order (BER ascending, ties
// by energy), with energy efficiency vs the relaxed nominal baseline.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Fig. 8 — BER vs Energy/Operation across 43 triads",
               "paper Fig. 8a-d");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const char* subfig = "abcd";
  int idx = 0;
  for (const Benchmark& b : paper_benchmarks()) {
    const auto results =
        characterize_adder(b.adder, lib, b.triads, bench_config());
    const double baseline = results[0].energy_per_op_fj;
    const auto sorted = sort_for_fig8(results);

    std::cout << "\n--- Fig. 8" << subfig[idx] << ": " << b.name
              << " (baseline " << format_double(baseline, 2)
              << " fJ/op at " << triad_label(results[0].triad) << ") ---\n";
    const TextTable t = fig8_table(sorted, baseline);
    t.print(std::cout);
    const std::string csv =
        std::string("fig8") + subfig[idx] + "_" +
        (b.width == 8 ? "8" : "16") + adder_arch_name(b.arch) + ".csv";
    write_csv(t, csv);
    std::cout << "CSV: " << csv << "\n";

    // Headline claims of Section V for quick eyeballing.
    int zero_ber = 0;
    for (const auto& r : results)
      if (r.ber == 0.0) ++zero_ber;
    std::cout << "triads at 0% BER: " << zero_ber
              << "  (paper: 16/14/15/18 for 8RCA/8BKA/16RCA/16BKA)\n";
    ++idx;
  }
  return 0;
}
