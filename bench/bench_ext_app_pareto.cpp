// Extension bench: application-level quality-energy Pareto fronts from
// the campaign subsystem — the paper's Section IV "error-resilient
// applications" story at production scale (Fig. 8's BER axis replaced
// by each workload's own quality metric).
//
// Part 1 sweeps every registered workload over the full Table-III
// 43-triad grid of the 16-bit RCA on the statistical-model backend and
// prints per-workload Pareto points plus the minimum-energy triad at a
// 0.9 quality floor. As a benchmark it must measure fresh compute, so
// it deletes any previous campaign_pareto.jsonl first; the store it
// writes is kept for inspection and CI artifact upload (the resume
// path is exercised by the campaign_smoke pseudo-bench in
// tools/run_benches.sh and by tests/test_campaign.cpp).
//
// Part 2 replays two workloads through the gate-level levelized
// simulator on a reduced triad ladder and prints machine-readable
// MODEL_QUALITY_DEV / MODEL_QUALITY_DEV_MEAN lines (normalized quality
// percentage points) that tools/run_benches.sh and CI gate on — the
// model backend must track gate-level truth at application level, not
// just at BER level.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/campaign/report.hpp"
#include "src/campaign/runner.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Application Pareto — quality vs energy campaigns",
               "paper Section IV / Fig. 8, application level");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const std::size_t budget = pattern_budget();
  const double floor = 0.9;

  // ---- Part 1: full 43-triad grid, model backend, every workload ----
  CampaignConfig cfg;
  cfg.workloads = {"fir", "blur", "sobel", "kmeans", "dot"};
  cfg.circuits = {"rca16"};
  cfg.backends = {ArithBackend::kModel};
  cfg.characterize_patterns = budget;
  cfg.train_patterns = budget * 5;  // Algorithm-1 histograms need depth
  cfg.progress = &std::cerr;
  std::remove("campaign_pareto.jsonl");  // benchmark = fresh compute
  CampaignStore store("campaign_pareto.jsonl");
  const CampaignOutcome outcome = run_campaign(lib, cfg, store);
  std::cout << "grid: " << outcome.cells.size() << " cells ("
            << outcome.reused << " reused, " << outcome.computed
            << " computed), store campaign_pareto.jsonl\n";

  for (const std::string& workload : cfg.workloads) {
    const auto group = select_cells(outcome.cells, workload, "model");
    const auto front = pareto_front(group);
    std::cout << "\n--- Pareto front: " << workload << " (model, 43 triads)"
              << " ---\n";
    const TextTable t = pareto_table(front);
    t.print(std::cout);
    write_csv(t, "pareto_" + workload + ".csv");
    const auto pick = min_energy_at_floor(group, floor);
    std::cout << "PARETO_POINTS_" << workload << " " << front.size()
              << "\n";
    if (pick.has_value())
      std::cout << "quality floor " << format_double(floor, 2)
                << " -> min energy "
                << format_double(pick->energy_per_op_fj, 2) << " fJ/op at "
                << triad_label(pick->key.triad) << " (saving "
                << format_double(energy_efficiency(pick->energy_per_op_fj,
                                                   pick->baseline_fj) *
                                     100.0,
                                 1)
                << "%)\n";
    else
      std::cout << "quality floor " << format_double(floor, 2)
                << " -> unreachable on this grid\n";
  }

  // ---- Part 2: model vs gate level on a reduced ladder -------------
  CampaignConfig dev_cfg;
  dev_cfg.workloads = {"fir", "kmeans"};
  dev_cfg.circuits = {"rca16"};
  dev_cfg.backends = {ArithBackend::kModel, ArithBackend::kSimLevelized};
  // Nominal, the error-free FBB region and the quality cliff — the
  // places where model fidelity matters most.
  dev_cfg.triad_specs = {{1.0, 1.0, 0.0}, {1.0, 0.9, 0.0}, {1.0, 0.8, 0.0},
                         {1.0, 0.7, 2.0}, {1.0, 0.7, 0.0}, {1.0, 0.6, 2.0},
                         {1.0, 0.5, 2.0}, {1.0, 0.6, 0.0}};
  dev_cfg.characterize_patterns = budget;
  dev_cfg.train_patterns = budget * 5;
  dev_cfg.progress = &std::cerr;
  CampaignStore dev_store;  // in-memory: always measured fresh
  const CampaignOutcome dev_outcome = run_campaign(lib, dev_cfg, dev_store);
  const QualityDeviation dev = model_quality_deviation(dev_outcome.cells);

  std::cout << "\n--- model vs gate-level quality ("
            << dev.cells << " cell pairs, levelized engine) ---\n";
  campaign_table(dev_outcome.cells).print(std::cout);
  std::cout << "MODEL_QUALITY_DEV " << format_double(dev.max_pp, 3) << "\n"
            << "MODEL_QUALITY_DEV_MEAN " << format_double(dev.mean_pp, 3)
            << "\n";
  return 0;
}
