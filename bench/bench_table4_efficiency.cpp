// Table IV reproduction: number of triads, maximum energy efficiency and
// BER at maximum efficiency per BER band (0%, 1-10%, 11-20%, 21-25%) for
// all four benchmarks, plus the Section V accurate→approximate switch
// narrative (0.5 V → 0.4 V at FBB and the 16-bit 0.6 V → 0.4 V switch).
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Table IV — Energy efficiency and BER per BER band",
               "paper Table IV + Section V switch points");

  const CellLibrary& lib = make_fdsoi28_lvt();
  TextTable t({"BER band", "Benchmark", "#Triads", "Max EE [%]",
               "BER at max EE [%]", "best triad"});
  std::vector<std::vector<TriadResult>> all_results;
  for (const Benchmark& b : paper_benchmarks()) {
    const auto results =
        characterize_dut(b.dut, lib, b.triads, bench_config());
    const double baseline = results[0].energy_per_op_fj;
    for (const EfficiencyBand& band : table4_bands(results, baseline)) {
      t.add_row({band.label, b.name, std::to_string(band.triad_count),
                 band.has_best ? format_double(band.max_efficiency_pct, 1)
                               : "-",
                 band.has_best ? format_double(band.ber_at_max_pct, 1) : "-",
                 band.has_best ? triad_label(band.best_triad) : "-"});
    }
    all_results.push_back(results);
  }
  t.print(std::cout);
  write_csv(t, "table4_efficiency.csv");

  std::cout << "\npaper reference (max EE %): 0%-band 76/75.3/60.5/73.3;"
               " 1-10% 87/65.3/83.6/84; 11-20% 74/89/86.2/73.3;"
               " 21-25% 92/82.8/90.8/-\n";

  // Section V: accurate -> approximate switching at fixed Tclk with FBB.
  std::cout << "\n--- Section V switch points (FBB = 2 V, Tclk = synthesis"
               " CP) ---\n";
  TextTable sw({"Benchmark", "accurate triad", "EE [%]", "approx triad",
                "EE [%]", "BER cost [%]"});
  const auto benches = paper_benchmarks();
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const auto& results = all_results[i];
    const double baseline = results[0].energy_per_op_fj;
    // Accurate mode: cheapest 0%-BER triad with FBB; approximate mode:
    // the 0.4 V FBB triad at the same clock period.
    const TriadResult* accurate = nullptr;
    for (const auto& r : results)
      if (r.ber == 0.0 && r.triad.vbb_v > 0.0 &&
          (!accurate ||
           r.energy_per_op_fj < accurate->energy_per_op_fj))
        accurate = &r;
    const TriadResult* approx = nullptr;
    if (accurate != nullptr) {
      for (const auto& r : results)
        if (r.triad.vbb_v > 0.0 && r.triad.vdd_v < accurate->triad.vdd_v &&
            r.triad.tclk_ns == accurate->triad.tclk_ns &&
            (!approx || r.energy_per_op_fj < approx->energy_per_op_fj))
          approx = &r;
    }
    if (accurate == nullptr || approx == nullptr) continue;
    sw.add_row({benches[i].name, triad_label(accurate->triad),
                format_double(
                    energy_efficiency(accurate->energy_per_op_fj, baseline) *
                        100.0,
                    1),
                triad_label(approx->triad),
                format_double(
                    energy_efficiency(approx->energy_per_op_fj, baseline) *
                        100.0,
                    1),
                format_double(approx->ber * 100.0, 1)});
  }
  sw.print(std::cout);
  std::cout << "paper: 8-bit 76%->87% EE at 8% BER; 16-bit 60%->84% EE at"
               " 6-9% BER\nCSV: table4_efficiency.csv\n";
  return 0;
}
