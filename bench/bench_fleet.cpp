// Fleet-scale Monte-Carlo bench: a population of chip instances (die
// corners drawn from FleetConfig) each running the pipe2-mul8
// closed-loop controller over a shared workload stream. The ladder is
// characterized once on the nominal die; the per-chip serving phase is
// what a sharded campaign parallelizes across processes.
//
// Machine-readable lines:
//   FLEET_CHIPS                population size
//   FLEET_THROUGHPUT           chips/sec of the serving phase (shared
//                              pool, default jobs) — gated in
//                              run_benches.sh via VOSIM_MIN_FLEET_TPS
//   FLEET_PARALLEL_EFFICIENCY  serial-serve time / (threads x parallel
//                              serve time): the in-process analogue of
//                              the multi-process shard efficiency
//                              run_benches.sh measures (fleet_shard)
//   FLEET_ENERGY_SPREAD_PCT    (max-min)/mean of per-chip energy — the
//                              fleet answer a fixed guard band hides
#include <algorithm>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"
#include "src/fleet/fleet.hpp"
#include "src/util/parallel.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Fleet campaign — chip-instance Monte-Carlo",
               "die-to-die corners over the closed-loop ladder");

  const CellLibrary& lib = make_fdsoi28_lvt();

  FleetStudyConfig cfg;
  cfg.circuit = "pipe2-mul8";
  cfg.fleet.num_chips = std::max<std::size_t>(32, pattern_budget() / 8);
  cfg.ladder_patterns = pattern_budget();
  cfg.cycles = std::max<std::size_t>(1024, pattern_budget() * 4);
  cfg.control.op_error_margin = 0.05;
  cfg.control.window_cycles = 128;
  cfg.control.min_dwell_cycles = 128;

  // Warm-up + serial reference: jobs=1 serves every chip on the
  // submitting thread, giving the single-worker baseline the
  // efficiency figure is measured against.
  cfg.jobs = 1;
  const FleetOutcome serial = run_fleet_study(lib, cfg);
  cfg.jobs = 0;  // shared-pool default (hardware threads)
  const FleetOutcome out = run_fleet_study(lib, cfg);

  std::cout << "\n--- " << cfg.circuit << ": " << cfg.fleet.num_chips
            << " chips, " << cfg.cycles << " cycles each, ladder "
            << out.ladder.size() << " rungs ("
            << format_double(out.ladder_seconds, 2)
            << " s characterization, shared) ---\n";
  TextTable rung_t({"rung", "E/cycle [fJ]", "chips"});
  for (std::size_t r = 0; r < out.ladder.size(); ++r)
    rung_t.add_row({std::to_string(r),
                    format_double(out.ladder[r].energy_per_op_fj, 1),
                    std::to_string(out.rung_histogram[r])});
  rung_t.print(std::cout);

  TextTable spread_t({"metric", "mean", "min", "median", "max", "sigma"});
  const auto spread_row = [&](const std::string& name,
                              const DieSpread& s, int prec) {
    spread_t.add_row({name, format_double(s.mean, prec),
                      format_double(s.min, prec),
                      format_double(s.median, prec),
                      format_double(s.max, prec),
                      format_double(s.stddev, prec)});
  };
  spread_row("energy [fJ/cycle]", out.energy_fj, 1);
  spread_row("final rung", out.final_rung, 2);
  spread_t.print(std::cout);

  const unsigned hw = hardware_parallelism();
  const double tps = out.serve_seconds > 0.0
                         ? static_cast<double>(cfg.fleet.num_chips) /
                               out.serve_seconds
                         : 0.0;
  const double eff =
      (out.serve_seconds > 0.0 && hw > 0)
          ? serial.serve_seconds / (hw * out.serve_seconds)
          : 0.0;
  const double spread_pct =
      out.energy_fj.mean > 0.0
          ? 100.0 * (out.energy_fj.max - out.energy_fj.min) /
                out.energy_fj.mean
          : 0.0;

  std::cout << "serve phase: "
            << format_double(serial.serve_seconds, 2) << " s serial, "
            << format_double(out.serve_seconds, 2) << " s on " << hw
            << " hardware threads\n";
  std::cout << "\nFLEET_CHIPS " << cfg.fleet.num_chips
            << "\nFLEET_THROUGHPUT " << format_double(tps, 2)
            << "\nFLEET_PARALLEL_EFFICIENCY " << format_double(eff, 2)
            << "\nFLEET_ENERGY_SPREAD_PCT "
            << format_double(spread_pct, 1) << "\n";
  return 0;
}
