#include "bench/bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "src/obs/metrics.hpp"

namespace vosim::bench {

std::vector<Benchmark> paper_benchmarks() {
  const CellLibrary& lib = make_fdsoi28_lvt();
  std::vector<Benchmark> out;
  const struct {
    const char* name;
    AdderArch arch;
    int width;
  } specs[] = {
      {"8-bit RCA", AdderArch::kRipple, 8},
      {"8-bit BKA", AdderArch::kBrentKung, 8},
      {"16-bit RCA", AdderArch::kRipple, 16},
      {"16-bit BKA", AdderArch::kBrentKung, 16},
  };
  for (const auto& s : specs) {
    Benchmark b{s.name, s.arch, s.width, build_adder(s.arch, s.width),
                {},     {},     {}};
    b.dut = to_dut(b.adder);  // one generation, one copy
    b.report = synthesize_report(b.adder.netlist, lib);
    b.triads =
        make_paper_triads(s.arch, s.width, b.report.critical_path_ns);
    out.push_back(std::move(b));
  }
  return out;
}

std::size_t pattern_budget() {
  if (const char* env = std::getenv("VOSIM_PATTERNS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(std::max(200L, v));
  }
  return 20000;  // the paper's per-triad SPICE budget
}

CharacterizeConfig bench_config() {
  CharacterizeConfig cfg;
  cfg.num_patterns = pattern_budget();
  return cfg;
}

void emit_metrics_at_exit() {
  // One exit-time metrics line per bench process: run_benches.sh folds
  // it into the bench's BENCH_*.json as a "metrics" block.
  // <iostream>'s ios_base::Init keeps std::cout alive through atexit
  // handlers.
  static const bool metrics_registered = [] {
    std::atexit([] {
      std::cout << "BENCH_METRICS_JSON "
                << obs::metrics().snapshot().to_json() << "\n";
    });
    return true;
  }();
  (void)metrics_registered;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  emit_metrics_at_exit();
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "patterns/triad: " << pattern_budget()
            << " (override with VOSIM_PATTERNS)\n"
            << "================================================================\n";
}

}  // namespace vosim::bench
