// Fig. 5 reproduction: distribution of BER across the output bit
// positions of the 8-bit RCA under voltage over-scaling (Vdd 0.8, 0.7,
// 0.6, 0.5 V at the synthesis clock period, no body-bias).
//
// Paper shape: at 0.8 V the MSBs start to fail; at 0.7-0.6 V the middle
// bits dominate; at 0.5 V all middle bits reach >= 50% BER; bit 0 never
// fails (single-XOR path).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/netlist/dut.hpp"
#include "src/characterize/report.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Fig. 5 — BER vs output bit position, 8-bit RCA under VOS",
      "paper Fig. 5");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist rca = to_dut(build_rca(8));
  const double cp = synthesize_report(rca.netlist, lib).critical_path_ns;
  std::cout << "Tclk = synthesis critical path = " << format_double(cp, 3)
            << " ns, no body-bias\n";

  std::vector<OperatingTriad> triads;
  for (const double vdd : {0.8, 0.7, 0.6, 0.5})
    triads.push_back({cp, vdd, 0.0});
  const auto results = characterize_dut(rca, lib, triads, bench_config());

  std::vector<std::string> header{"Vdd [V]"};
  for (int i = 0; i <= 8; ++i)
    header.push_back("bit" + std::to_string(i) + " [%]");
  header.push_back("overall BER [%]");
  TextTable t(header);
  for (const TriadResult& r : results) {
    std::vector<std::string> row{format_double(r.triad.vdd_v, 1)};
    for (const double b : r.bitwise_ber)
      row.push_back(format_double(b * 100.0, 1));
    row.push_back(format_double(r.ber * 100.0, 2));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  write_csv(t, "fig5_ber_bitpos.csv");

  // Provenance cross-check: rerun the same sweep with ErrorProvenance
  // observers attached and derive the per-bit BER from culprit
  // attribution instead of output diffing. The PO net sits in its own
  // fan-in cone, so attribution must reproduce the table above —
  // FIG5_PROV_DEV_PP is the max per-bit deviation in percentage
  // points, gated <= 0.5 pp in run_benches.sh/CI.
  CharacterizeConfig prov_cfg = bench_config();
  prov_cfg.provenance = true;
  const auto prov = characterize_dut(rca, lib, triads, prov_cfg);
  double dev_pp = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& attributed = prov[i].provenance.bitwise_ber;
    for (std::size_t bit = 0; bit < results[i].bitwise_ber.size(); ++bit) {
      const double a = bit < attributed.size() ? attributed[bit] : 0.0;
      dev_pp = std::max(
          dev_pp, std::abs(a - results[i].bitwise_ber[bit]) * 100.0);
    }
  }
  std::cout << "\nprovenance attribution: "
            << prov.back().provenance.attributed_bits
            << " erroneous bits attributed at Vdd 0.5V, top culprits "
            << prov.back().provenance.top_culprits_string(3) << "\n";
  std::cout << "FIG5_PROV_DEV_PP " << format_double(dev_pp, 3) << "\n";

  std::cout << "\npaper shape check: 0.8V -> MSB onset; 0.7/0.6V -> middle"
               " bits grow; 0.5V -> middle bits ~50%; bit0 = 0 always.\n"
            << "CSV: fig5_ber_bitpos.csv\n";
  return 0;
}
