// Table-III-style triad sweep over 8x8 multipliers (ours): the paper's
// characterization methodology applied beyond adders — Section IV claims
// it is "compliant with different arithmetic configurations". The array
// multiplier (deep carry-save rows) and the Wallace tree (shallow
// compressor tree) have very different failure topologies, the
// multiplier analogue of the RCA-vs-BKA contrast of Fig. 8.
//
// Each multiplier's 43-triad grid runs on both SimEngine backends: the
// event-driven engine produces the reported tables; the bit-parallel
// levelized engine runs the identical grid through its one-pass
// step_batch_sweep fast path, and the bench prints machine-readable
// LEVELIZED_SPEEDUP / LEVELIZED_BER_DEV_PP lines that
// tools/run_benches.sh and CI gate on (speedup floor 5x, BER deviation
// <= 2 percentage points), mirroring the fig8 adder gate. A MAC-tree
// sweep (levelized only) closes with the composite-DUT view.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"
#include "src/netlist/dut.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  using clock = std::chrono::steady_clock;
  print_header("Table III extension — 43-triad sweep of 8x8 multipliers",
               "paper Section IV generalization claim");

  const CellLibrary& lib = make_fdsoi28_lvt();
  double event_seconds = 0.0;
  double levelized_seconds = 0.0;
  double ber_dev_pp = 0.0;

  for (const char* spec : {"mul8-array", "mul8-wallace"}) {
    const DutNetlist dut = build_circuit(spec);
    const SynthesisReport rep = synthesize_report(dut.netlist, lib);
    const auto triads = make_dut_triads(rep.critical_path_ns);

    const auto t0 = clock::now();
    const auto results = characterize_dut(dut, lib, triads, bench_config());
    const auto t1 = clock::now();
    CharacterizeConfig lev_cfg = bench_config();
    lev_cfg.engine = EngineKind::kLevelized;
    const auto lev_results = characterize_dut(dut, lib, triads, lev_cfg);
    const auto t2 = clock::now();
    event_seconds += std::chrono::duration<double>(t1 - t0).count();
    levelized_seconds += std::chrono::duration<double>(t2 - t1).count();

    double dev = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i)
      dev = std::max(dev,
                     std::abs(results[i].ber - lev_results[i].ber));
    ber_dev_pp = std::max(ber_dev_pp, dev * 100.0);

    const double baseline = results[0].energy_per_op_fj;
    std::cout << "\n--- " << dut.display_name << ": " << rep.num_gates
              << " gates, " << format_double(rep.area_um2, 1)
              << " um2, CP " << format_double(rep.critical_path_ns, 3)
              << " ns (baseline " << format_double(baseline, 2)
              << " fJ/op at " << triad_label(results[0].triad)
              << ") ---\n";
    fig8_table(sort_for_fig8(results), baseline).print(std::cout);

    int zero_ber = 0;
    for (const auto& r : results)
      if (r.ber == 0.0) ++zero_ber;
    std::cout << "triads at 0% BER: " << zero_ber << "/"
              << results.size()
              << "; levelized engine max |BER - event BER|: "
              << format_double(dev * 100.0, 2) << " pp\n";
  }

  // Composite DUT: a 4-term MAC tree, swept on the levelized fast path
  // only (the grid collapses into one normalized timing pass).
  {
    const DutNetlist mac = build_circuit("mac4x8");
    const SynthesisReport rep = synthesize_report(mac.netlist, lib);
    CharacterizeConfig cfg = bench_config();
    cfg.engine = EngineKind::kLevelized;
    const auto triads = make_dut_triads(rep.critical_path_ns);
    const auto results = characterize_dut(mac, lib, triads, cfg);
    const double baseline = results[0].energy_per_op_fj;
    std::cout << "\n--- " << mac.display_name << ": " << rep.num_gates
              << " gates, CP " << format_double(rep.critical_path_ns, 3)
              << " ns (levelized sweep) ---\n";
    fig8_table(sort_for_fig8(results), baseline).print(std::cout);
  }

  std::cout << "\nreading: both multipliers show the VOS signature the"
               " paper identified on adders — the bits fed by the longest"
               " reduction paths fail first and forward body-bias restores"
               " margin. The Wallace tree clocks ~1.5x faster for the same"
               " function, and its denser path-depth distribution makes"
               " its BER rise steeper once over-scaled.\n";

  // Machine-readable engine comparison for tools/run_benches.sh / CI.
  const double speedup =
      levelized_seconds > 0.0 ? event_seconds / levelized_seconds : 0.0;
  std::cout << "\n--- engine comparison (both mul8 sweeps, equal patterns)"
               " ---\n"
            << "event engine:     " << format_double(event_seconds, 3)
            << " s\n"
            << "levelized engine: " << format_double(levelized_seconds, 3)
            << " s\n"
            << "LEVELIZED_SPEEDUP " << format_double(speedup, 2) << "\n"
            << "LEVELIZED_BER_DEV_PP " << format_double(ber_dev_pp, 3)
            << "\n";
  return 0;
}
