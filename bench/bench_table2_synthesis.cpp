// Table II reproduction: synthesis results (area, total power, critical
// path) of the 8/16-bit RCA and BKA at 1.0 V without body-bias.
//
// Paper values (28nm FDSOI LVT, Design Compiler class flow):
//   8-bit RCA : 114.7 µm², 170.0 µW, 0.28 ns
//   8-bit BKA : 174.1 µm², 267.7 µW, 0.19 ns
//   16-bit RCA: 224.5 µm², 341.0 µW, 0.53 ns
//   16-bit BKA: 265.5 µm², 363.4 µW, 0.25 ns
// Our library is synthetic, so absolute numbers differ; the orderings
// and ratios are the reproduction target (EXPERIMENTS.md).
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header("Table II — Synthesis results of 8/16-bit RCA and BKA",
               "paper Table II");

  TextTable t({"Benchmark", "Gates", "Flops", "Area (um2)",
               "Total Power (uW)", "Critical Path (ns)",
               "TT Path (ns)"});
  for (const Benchmark& b : paper_benchmarks()) {
    t.add_row({b.name, std::to_string(b.report.num_gates),
               std::to_string(b.report.num_flops),
               format_double(b.report.area_um2, 1),
               format_double(b.report.total_power_uw, 1),
               format_double(b.report.critical_path_ns, 3),
               format_double(b.report.tt_critical_path_ns, 3)});
  }
  t.print(std::cout);
  write_csv(t, "table2_synthesis.csv");
  std::cout << "\npaper reference rows: 114.7/170.0/0.28 | 174.1/267.7/0.19"
               " | 224.5/341.0/0.53 | 265.5/363.4/0.25\n"
            << "CSV: table2_synthesis.csv\n";
  return 0;
}
