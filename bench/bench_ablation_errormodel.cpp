// Ablation (ours): the paper's carry-chain statistical model vs a naive
// uniform bit-flip error model with the same BER budget.
//
// Both models are fitted to the same simulated hardware at each triad;
// fidelity is measured on held-out patterns. The carry-chain model
// should win decisively because VOS errors are structured (long-chain
// truncation), not i.i.d. bit noise — this is the modelling insight of
// Section IV.
#include <algorithm>
#include <array>
#include <iostream>

#include "src/sim/vos_dut.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

#include "bench/bench_common.hpp"
#include "src/characterize/metrics.hpp"
#include "src/model/evaluation.hpp"
#include "src/model/vos_model.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace vosim;

/// Naive baseline: flips each output bit independently with the
/// per-position probability measured on the training set.
class BitFlipModel {
 public:
  BitFlipModel(int width, std::vector<double> flip_prob)
      : width_(width), flip_prob_(std::move(flip_prob)) {}

  std::uint64_t add(std::uint64_t a, std::uint64_t b, Rng& rng) const {
    std::uint64_t out = a + b;
    for (int i = 0; i <= width_; ++i)
      if (rng.flip(flip_prob_[static_cast<std::size_t>(i)]))
        out ^= (1ULL << i);
    return out;
  }

 private:
  int width_;
  std::vector<double> flip_prob_;
};

}  // namespace

int main() {
  using namespace vosim::bench;
  print_header(
      "Ablation — carry-chain model vs naive uniform bit-flip model",
      "paper Section IV modelling rationale");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const std::size_t budget = pattern_budget() / 2;

  TextTable t({"Adder", "chain SNR [dB]", "flip SNR [dB]",
               "chain nHamming", "flip nHamming", "triads"});
  for (const Benchmark& b : paper_benchmarks()) {
    RunningStats chain_snr;
    RunningStats flip_snr;
    RunningStats chain_h;
    RunningStats flip_h;
    std::vector<std::array<double, 4>> rows(b.triads.size(),
                                            {0, 0, 0, 0});
    std::vector<std::uint8_t> informative(b.triads.size(), 0);

    parallel_for(b.triads.size(), [&](std::size_t ti) {
      const OperatingTriad& triad = b.triads[ti];
      // --- fit both models on the training stream ---
      VosDutSim train_sim(b.dut, lib, triad);
      ErrorAccumulator train_acc(b.width + 1);
      PatternStream train_patterns(PatternPolicy::kCarryBalanced, b.width,
                                   42);
      // Shared pass: collect bitwise flip stats for the naive model.
      for (std::size_t i = 0; i < budget; ++i) {
        const OperandPair p = train_patterns.next();
        const std::uint64_t hw = train_sim.apply(p.a, p.b).sampled;
        train_acc.add(p.a + p.b, hw);
      }
      if (train_acc.ber() == 0.0) return;  // uninformative triad
      informative[ti] = 1;

      const BitFlipModel flip_model(b.width,
                                    train_acc.bitwise_error_probability());
      // Carry-chain model trained from a replay oracle over the same
      // stream (deterministic streaming semantics).
      VosDutSim replay_sim(b.dut, lib, triad);
      const HardwareOracle oracle = [&](std::uint64_t x, std::uint64_t y) {
        return replay_sim.apply(x, y).sampled;
      };
      TrainerConfig tcfg;
      tcfg.num_patterns = budget;
      const VosAdderModel chain_model =
          train_vos_model(b.width, triad, oracle, tcfg);

      // --- evaluate both on held-out patterns ---
      VosDutSim eval_sim(b.dut, lib, triad);
      PatternStream eval_patterns(PatternPolicy::kCarryBalanced, b.width,
                                  1729);
      Rng chain_rng(99);
      Rng flip_rng(98);
      ErrorAccumulator chain_acc(b.width + 1);
      ErrorAccumulator flip_acc(b.width + 1);
      for (std::size_t i = 0; i < budget; ++i) {
        const OperandPair p = eval_patterns.next();
        const std::uint64_t hw = eval_sim.apply(p.a, p.b).sampled;
        chain_acc.add(hw, chain_model.add(p.a, p.b, chain_rng));
        flip_acc.add(hw, flip_model.add(p.a, p.b, flip_rng));
      }
      rows[ti] = {std::min(chain_acc.snr_db(), snr_display_cap_db),
                  std::min(flip_acc.snr_db(), snr_display_cap_db),
                  chain_acc.normalized_hamming(),
                  flip_acc.normalized_hamming()};
    });

    for (std::size_t ti = 0; ti < rows.size(); ++ti) {
      if (!informative[ti]) continue;
      chain_snr.add(rows[ti][0]);
      flip_snr.add(rows[ti][1]);
      chain_h.add(rows[ti][2]);
      flip_h.add(rows[ti][3]);
    }
    t.add_row({b.name, format_double(chain_snr.mean(), 1),
               format_double(flip_snr.mean(), 1),
               format_double(chain_h.mean(), 4),
               format_double(flip_h.mean(), 4),
               std::to_string(chain_snr.count())});
  }
  t.print(std::cout);
  write_csv(t, "ablation_errormodel.csv");
  std::cout << "\nreading: the carry-chain model should dominate the naive"
               " bit-flip model on SNR — VOS errors are structured by the"
               " input carry chains, not i.i.d.\n"
            << "CSV: ablation_errormodel.csv\n";
  return 0;
}
