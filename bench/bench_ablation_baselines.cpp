// Ablation (ours): VOS-based dynamic approximation vs static
// approximate adders (truncated, lower-part OR, carry-cut, speculative
// window) on the same energy-accuracy plane.
//
// The paper argues (Section II) that voltage-scaling approximation is
// preferable because it is *dynamic* — this bench quantifies where each
// static design sits against the VOS sweep of the exact RCA.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/report.hpp"
#include "src/netlist/approx_adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/util/bits.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Ablation — static approximate adders vs VOS dynamic approximation",
      "paper Section II discussion (Fig. 1 baselines)");

  const CellLibrary& lib = make_fdsoi28_lvt();
  CharacterizeConfig cfg = bench_config();
  // This bench compares designs on the same plane, so every BER is
  // measured against exact addition — the static designs' structural
  // approximation error is the whole point (the default settled-
  // function reference would hide it).
  cfg.golden = [](std::span<const std::uint64_t> ops) {
    return exact_add(ops[0], ops[1], 8);
  };

  // VOS sweep of the exact 8-bit RCA (the paper's approach).
  const DutNetlist rca = to_dut(build_rca(8));
  const SynthesisReport rep = synthesize_report(rca.netlist, lib);
  const auto triads = make_paper_triads(AdderArch::kRipple, 8,
                                        rep.critical_path_ns);
  const auto vos = characterize_dut(rca, lib, triads, cfg);
  const double baseline_fj = vos[0].energy_per_op_fj;

  TextTable t({"design", "operating point", "BER [%]", "MSE",
               "Energy/Op [fJ]", "EE vs baseline [%]"});
  auto add_row = [&](const std::string& name, const TriadResult& r) {
    t.add_row({name, triad_label(r.triad), format_double(r.ber * 100.0, 2),
               format_double(r.mse, 1),
               format_double(r.energy_per_op_fj, 2),
               format_double(
                   energy_efficiency(r.energy_per_op_fj, baseline_fj) * 100.0,
                   1)});
  };

  // Representative VOS points: best 0%-BER triad and the 1-10% band best.
  const TriadResult* best_zero = nullptr;
  const TriadResult* best_small = nullptr;
  for (const auto& r : vos) {
    if (r.ber == 0.0 &&
        (!best_zero || r.energy_per_op_fj < best_zero->energy_per_op_fj))
      best_zero = &r;
    if (r.ber > 0.0 && r.ber <= 0.10 &&
        (!best_small || r.energy_per_op_fj < best_small->energy_per_op_fj))
      best_small = &r;
  }
  add_row("RCA8 (exact, nominal)", vos[0]);
  if (best_zero) add_row("RCA8 + VOS (0% BER)", *best_zero);
  if (best_small) add_row("RCA8 + VOS (<=10% BER)", *best_small);

  // Static designs characterized at their own nominal (relaxed) triad
  // and at a scaled-supply error-free point: their BER is structural.
  struct StaticDesign {
    std::string name;
    DutNetlist dut;
  };
  std::vector<StaticDesign> designs;
  designs.push_back({"TRUNC8 k=2", to_dut(build_truncated(8, 2))});
  designs.push_back({"TRUNC8 k=4", to_dut(build_truncated(8, 4))});
  designs.push_back({"LOA8 k=2", to_dut(build_lower_or(8, 2))});
  designs.push_back({"LOA8 k=4", to_dut(build_lower_or(8, 4))});
  designs.push_back({"CUT8 k=4", to_dut(build_carry_cut(8, 4))});
  designs.push_back({"SPECW8 w=4", to_dut(build_speculative_window(8, 4))});
  designs.push_back({"SPECW8 w=6", to_dut(build_speculative_window(8, 6))});

  for (const StaticDesign& d : designs) {
    const SynthesisReport r = synthesize_report(d.dut.netlist, lib);
    // Run each static adder at its own relaxed nominal clock and at a
    // near-threshold FBB point where its (shorter) paths still close.
    const std::vector<OperatingTriad> pts{
        {rep.critical_path_ns * paper_tclk_ratios(AdderArch::kRipple, 8)[0],
         1.0, 0.0},
        {r.critical_path_ns, 0.5, 2.0},
    };
    const auto res = characterize_dut(d.dut, lib, pts, cfg);
    add_row(d.name + " @nominal", res[0]);
    add_row(d.name + " @0.5V FBB", res[1]);
  }

  t.print(std::cout);
  write_csv(t, "ablation_baselines.csv");
  std::cout << "\nreading: static designs pay their BER at every operating"
               " point; VOS pays only when over-scaled and can return to"
               " 0% BER at runtime (the paper's dynamicity argument).\n"
            << "CSV: ablation_baselines.csv\n";
  return 0;
}
