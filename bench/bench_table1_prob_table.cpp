// Table I reproduction: the carry-propagation probability table
// P(Cmax | Cth_max) of a modified 4-bit adder. The paper's Table I shows
// the *template* (lower-triangular, column-stochastic); here we print an
// actual table trained with Algorithm 1 against the timing simulator at
// a voltage-over-scaled triad, plus the template structure check.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/model/trainer.hpp"
#include "src/model/vos_model.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Table I — Carry propagation probability table, modified 4-bit adder",
      "paper Table I (template) + Section IV Algorithm 1");

  const CellLibrary& lib = make_fdsoi28_lvt();
  const DutNetlist rca = to_dut(build_rca(4));
  const double cp = synthesize_report(rca.netlist, lib).critical_path_ns;

  // A mid-VOS triad: deep enough that long chains truncate.
  const OperatingTriad triad{cp, 0.62, 0.0};
  std::cout << "triad: " << triad_label(triad) << "  (Tclk = synthesis CP)\n";

  VosDutSim sim(rca, lib, triad);
  const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
    return sim.apply(a, b).sampled;
  };
  TrainerConfig cfg;
  cfg.num_patterns = pattern_budget();
  const CarryChainProbTable table = train_carry_table(4, oracle, cfg);

  const TextTable t = table.to_table(3);
  t.print(std::cout);
  write_csv(t, "table1_prob_table.csv");

  // Structural checks mirroring the paper's template.
  bool lower_triangular = true;
  for (int l = 0; l <= 4; ++l)
    for (int k = l + 1; k <= 4; ++k)
      if (table.prob(k, l) != 0.0) lower_triangular = false;
  std::cout << "\nlower-triangular (P(k|l)=0 for k>l): "
            << (lower_triangular ? "yes" : "NO") << "\n";
  std::cout << "column expectations E[Cmax|Cth]:";
  for (int l = 0; l <= 4; ++l)
    std::cout << " " << format_double(table.expected(l), 2);
  std::cout << "\nCSV: table1_prob_table.csv\n";
  return 0;
}
