// Performance claims, measured: Section IV's "fast simulations at the
// algorithm level" (statistical model vs gate-level simulation) and the
// SimEngine acceptance target — the bit-parallel levelized backend must
// run the Table-3 triad sweep ≥ 10× faster than the event-driven
// reference at equal pattern count (it exceeds that by amortizing one
// normalized timing pass over the whole Vdd/Vbs/Tclk grid).
//
// google-benchmark comparison groups:
//   BM_NativeAdd / BM_WindowedAdd / BM_StatisticalModelAdd — model costs
//   BM_EventDrivenTimingSim / BM_LevelizedTimingSim — per-add engines
//   BM_LevelizedBatchAdd — 64-lane packed streaming
//   BM_CharacterizeOneTriad/0|1 — one-triad sweep, event|levelized
//   BM_Table3Sweep/0|1 — the full 43-triad grid, event|levelized
//   BM_DispatchSpawnThreads / BM_DispatchThreadPool — fork-join overhead
//     of spawning threads per sweep vs the shared persistent pool
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_common.hpp"
#include "src/model/vos_model.hpp"
#include "src/model/windowed_add.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/util/lanes.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace vosim;

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

const DutNetlist& rca8() {
  static const DutNetlist a = to_dut(build_rca(8));
  return a;
}

OperatingTriad stressed() {
  static const double cp =
      synthesize_report(rca8().netlist, lib()).critical_path_ns;
  return {cp, 0.7, 0.0};
}

const std::vector<OperatingTriad>& table3_triads() {
  static const std::vector<OperatingTriad> t = [] {
    const double cp =
        synthesize_report(rca8().netlist, lib()).critical_path_ns;
    return make_paper_triads(AdderArch::kRipple, 8, cp);
  }();
  return t;
}

const VosAdderModel& trained_model() {
  static const VosAdderModel model = [] {
    VosDutSim sim(rca8(), lib(), stressed());
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    TrainerConfig cfg;
    cfg.num_patterns = 5000;
    return train_vos_model(8, stressed(), oracle, cfg);
  }();
  return model;
}

void BM_NativeAdd(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc += a + b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeAdd);

void BM_WindowedAdd(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= windowed_add(a, b, 8, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedAdd);

void BM_StatisticalModelAdd(benchmark::State& state) {
  const VosAdderModel& model = trained_model();
  Rng rng(3);
  Rng model_rng(4);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= model.add(a, b, model_rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatisticalModelAdd);

void BM_EventDrivenTimingSim(benchmark::State& state) {
  VosDutSim sim(rca8(), lib(), stressed());
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= sim.apply(a, b).sampled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDrivenTimingSim);

void BM_LevelizedTimingSim(benchmark::State& state) {
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;
  VosDutSim sim(rca8(), lib(), stressed(), cfg);
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= sim.apply(a, b).sampled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LevelizedTimingSim);

void BM_LevelizedBatchAdd(benchmark::State& state) {
  TimingSimConfig cfg;
  cfg.engine = EngineKind::kLevelized;
  VosDutSim sim(rca8(), lib(), stressed(), cfg);
  Rng rng(6);
  constexpr std::size_t kBatch = 64;
  std::vector<std::uint64_t> a(kBatch);
  std::vector<std::uint64_t> b(kBatch);
  std::vector<VosOpResult> out(kBatch);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      a[i] = rng.bits(8);
      b[i] = rng.bits(8);
    }
    sim.apply_batch(a, b, out);
    benchmark::DoNotOptimize(acc ^= out[kBatch - 1].sampled);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBatch));
}
BENCHMARK(BM_LevelizedBatchAdd);

void BM_CharacterizeOneTriad(benchmark::State& state) {
  // End-to-end cost of characterizing one triad with N patterns;
  // arg 1 selects the backend (0 = event, 1 = levelized).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto engine =
      state.range(1) == 0 ? EngineKind::kEvent : EngineKind::kLevelized;
  for (auto _ : state) {
    CharacterizeConfig cfg;
    cfg.num_patterns = n;
    cfg.threads = 1;
    cfg.engine = engine;
    const std::vector<OperatingTriad> one{stressed()};
    benchmark::DoNotOptimize(
        characterize_dut(rca8(), lib(), one, cfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_CharacterizeOneTriad)->Args({1000, 0})->Args({1000, 1});

void BM_Table3Sweep(benchmark::State& state) {
  // The acceptance workload: all 43 Table-3 triads of the 8-bit RCA at
  // equal pattern count; arg selects the backend (0 = event,
  // 1 = levelized). The levelized grid fast path shares one normalized
  // timing pass across the whole grid and lands far beyond the 10×
  // target (see tools/run_benches.sh for the CI floor).
  const auto engine =
      state.range(0) == 0 ? EngineKind::kEvent : EngineKind::kLevelized;
  const std::size_t patterns = 1000;
  for (auto _ : state) {
    CharacterizeConfig cfg;
    cfg.num_patterns = patterns;
    cfg.engine = engine;
    benchmark::DoNotOptimize(
        characterize_dut(rca8(), lib(), table3_triads(), cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(patterns * 43));
}
BENCHMARK(BM_Table3Sweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DispatchSpawnThreads(benchmark::State& state) {
  // Fork-join dispatch cost when every sweep spawns fresh threads —
  // what characterize_dut paid per call before the shared pool.
  const unsigned n = std::max(2u, hardware_parallelism());
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(n);
    std::atomic<std::size_t> next{0};
    for (unsigned t = 0; t < n; ++t)
      pool.emplace_back([&] {
        while (next.fetch_add(1) < 64) benchmark::ClobberMemory();
      });
    for (auto& th : pool) th.join();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchSpawnThreads);

void BM_DispatchThreadPool(benchmark::State& state) {
  // Same fork-join through the persistent shared pool.
  for (auto _ : state) {
    parallel_for(64, [](std::size_t) { benchmark::ClobberMemory(); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchThreadPool);

/// Wall-clock of one full Table-3 mul8 levelized sweep at the given
/// lane width, single-threaded, repeated until the leg accumulates
/// ~0.3 s so the ratio is stable on a shared machine.
double time_mul8_sweep_s(const DutNetlist& dut,
                         const std::vector<OperatingTriad>& triads,
                         std::size_t lane_width) {
  CharacterizeConfig cfg;
  cfg.num_patterns = bench::pattern_budget();
  cfg.threads = 1;
  cfg.engine = EngineKind::kLevelized;
  cfg.lane_width = lane_width;

  using clock = std::chrono::steady_clock;
  const auto run_once = [&] {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(characterize_dut(dut, lib(), triads, cfg));
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  double total = run_once();  // warm-up + first sample
  std::size_t reps = 1;
  while (total < 0.3) {
    total += run_once();
    ++reps;
  }
  return total / static_cast<double>(reps);
}

/// The wide-lane A/B the CI gate parses: the Table-3 mul8 sweep at 64
/// lanes vs the widest accelerated width on the same single thread.
/// Auto dispatch deliberately defaults to 64 (lanes.hpp — per-lane
/// event walks dominate these sweeps, so wide words sit near parity),
/// so the A/B requests the wide width explicitly. run_benches.sh fails
/// the build if a SIMD build cannot deliver wide lane words
/// (WIDE_LANES_PER_PASS != WIDE_WIDTH — a broken dispatch would pass
/// every correctness test and quietly ship only the scalar engine) or
/// WIDE_SPEEDUP falls below its regression floor.
void report_wide_speedup() {
  const std::size_t width = lanes::max_supported_lane_width();
  std::printf("SIMD_COMPILED %s\n", lanes::simd_compiled_name());
  std::printf("LANE_WIDTH_AUTO %zu\n", lanes::resolve_lane_width(0));
  std::printf("WIDE_WIDTH %zu\n", width);
  {
    // Prove the dispatch chain delivers the wide engine, not just the
    // templated fast path: an explicit lane_width request must come
    // back as that many lanes per pass.
    TimingSimConfig cfg;
    cfg.engine = EngineKind::kLevelized;
    cfg.lane_width = width;
    const auto probe = make_engine(rca8().netlist, lib(), stressed(), cfg);
    std::printf("WIDE_LANES_PER_PASS %zu\n", probe->lanes_per_pass());
  }
  const DutNetlist dut = build_circuit("mul8-array");
  const std::vector<OperatingTriad> triads = make_circuit_triads(
      dut, synthesize_report(dut.netlist, lib()).critical_path_ns);
  const double t64 = time_mul8_sweep_s(dut, triads, 64);
  if (width == 64) {
    // Nothing wider to compare against: the portable baseline races
    // itself by definition.
    std::printf("WIDE_SPEEDUP 1.00\n");
    return;
  }
  const double tw = time_mul8_sweep_s(dut, triads, width);
  std::printf("WIDE_T64_MS %.2f\nWIDE_T%zu_MS %.2f\n", t64 * 1e3, width,
              tw * 1e3);
  std::printf("WIDE_SPEEDUP %.2f\n", t64 / tw);
}

/// Observers-off hot-path cost check (DESIGN.md §13). The SimObserver
/// support costs one `!observers_.empty()` branch per dispatch site; a
/// true A/B against a binary compiled without the branch cannot live
/// inside one binary, so this times the identical observers-off event
/// sweep as two interleaved legs (each the min of k samples) and
/// reports their relative deviation — the measurement noise floor that
/// any real branch regression would have to climb above. CI gates
/// PROVENANCE_OVERHEAD_PCT <= 2% (run_benches.sh), so a future change
/// that makes the observers-off path genuinely slower — a lock, an
/// allocation, a virtual call before the empty check — fails the gate
/// even though the branch itself is noise-level.
void report_provenance_overhead() {
  CharacterizeConfig cfg;
  cfg.num_patterns = 1000;
  cfg.threads = 1;
  cfg.engine = EngineKind::kEvent;  // per-transition dispatch sites
  const std::vector<OperatingTriad> one{stressed()};
  using clock = std::chrono::steady_clock;
  const auto run_once = [&] {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(characterize_dut(rca8(), lib(), one, cfg));
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  run_once();  // warm-up
  double min_a = 1e300;
  double min_b = 1e300;
  for (int k = 0; k < 5; ++k) {
    min_a = std::min(min_a, run_once());
    min_b = std::min(min_b, run_once());
  }
  const double overhead =
      100.0 * std::abs(min_a - min_b) / std::min(min_a, min_b);
  std::printf("PROVENANCE_LEG_A_MS %.2f\nPROVENANCE_LEG_B_MS %.2f\n",
              min_a * 1e3, min_b * 1e3);
  std::printf("PROVENANCE_OVERHEAD_PCT %.2f\n", overhead);
}

}  // namespace

int main(int argc, char** argv) {
  vosim::bench::emit_metrics_at_exit();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_wide_speedup();
  report_provenance_overhead();
  return 0;
}
