// Performance claim of Section IV: the statistical model "allows fast
// simulations at the algorithm level". google-benchmark comparison of
// adds/second: native add, windowed model add, trained statistical
// model add, and the event-driven timing simulation it replaces.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/model/vos_model.hpp"
#include "src/model/windowed_add.hpp"
#include "src/sim/vos_adder.hpp"
#include "src/sta/synthesis_report.hpp"

namespace {

using namespace vosim;

const CellLibrary& lib() { return make_fdsoi28_lvt(); }

const AdderNetlist& rca8() {
  static const AdderNetlist a = build_rca(8);
  return a;
}

OperatingTriad stressed() {
  static const double cp =
      synthesize_report(rca8().netlist, lib()).critical_path_ns;
  return {cp, 0.7, 0.0};
}

const VosAdderModel& trained_model() {
  static const VosAdderModel model = [] {
    VosAdderSim sim(rca8(), lib(), stressed());
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.add(a, b).sampled;
    };
    TrainerConfig cfg;
    cfg.num_patterns = 5000;
    return train_vos_model(8, stressed(), oracle, cfg);
  }();
  return model;
}

void BM_NativeAdd(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc += a + b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeAdd);

void BM_WindowedAdd(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= windowed_add(a, b, 8, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedAdd);

void BM_StatisticalModelAdd(benchmark::State& state) {
  const VosAdderModel& model = trained_model();
  Rng rng(3);
  Rng model_rng(4);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= model.add(a, b, model_rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatisticalModelAdd);

void BM_EventDrivenTimingSim(benchmark::State& state) {
  VosAdderSim sim(rca8(), lib(), stressed());
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(8);
    const std::uint64_t b = rng.bits(8);
    benchmark::DoNotOptimize(acc ^= sim.add(a, b).sampled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDrivenTimingSim);

void BM_CharacterizeOneTriad(benchmark::State& state) {
  // End-to-end cost of characterizing one triad with N patterns.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    CharacterizeConfig cfg;
    cfg.num_patterns = n;
    cfg.threads = 1;
    const std::vector<OperatingTriad> one{stressed()};
    benchmark::DoNotOptimize(
        characterize_adder(rca8(), lib(), one, cfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_CharacterizeOneTriad)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
