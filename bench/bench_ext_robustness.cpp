// Extension bench (ours): robustness of the paper's headline operating
// points against temperature corners and within-die process variation —
// the variability concerns the paper raises in Sections II-III.
//
// Part 1: the 8-bit RCA 0%-BER FBB points across -40/25/85/125 °C.
// Part 2: Monte-Carlo die-to-die spread (BER quantiles, parametric
//         yield) at the aggressive triads.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/characterize/variability.hpp"
#include "src/netlist/dut.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace vosim;
  using namespace vosim::bench;
  print_header(
      "Extension — temperature corners and Monte-Carlo variability",
      "paper Sections II-III variability discussion");

  const DutNetlist rca = to_dut(build_rca(8));
  const double cp =
      synthesize_report(rca.netlist, make_fdsoi28_lvt()).critical_path_ns;

  // --- Part 1: temperature corners -------------------------------------
  std::cout << "\n-- temperature corners (Tclk = " << format_double(cp, 3)
            << " ns) --\n";
  TextTable tc({"corner", "triad", "BER [%]", "E/op [fJ]",
                "leak share [%]"});
  CharacterizeConfig cfg = bench_config();
  cfg.num_patterns = std::min<std::size_t>(cfg.num_patterns, 5000);
  for (const double temp : {-40.0, 25.0, 85.0, 125.0}) {
    const CellLibrary lib_t = make_fdsoi28_lvt_at(temp);
    const std::vector<OperatingTriad> triads{
        {cp, 0.5, 2.0},  // headline 0%-BER point
        {cp, 0.8, 0.0},  // first failing unbiased point
    };
    const auto res = characterize_dut(rca, lib_t, triads, cfg);
    for (const TriadResult& r : res) {
      tc.add_row({format_double(temp, 0) + "C", triad_label(r.triad),
                  format_double(r.ber * 100.0, 2),
                  format_double(r.energy_per_op_fj, 2),
                  format_double(100.0 * r.leakage_energy_fj /
                                    r.energy_per_op_fj,
                                1)});
    }
  }
  tc.print(std::cout);
  write_csv(tc, "ext_corners.csv");
  std::cout << "reading: with 2 V FBB the 0.5 V point still sits in"
               " moderate inversion, so the hot corners lose mobility and"
               " start to fail while leakage share climbs — the 0%-BER"
               " label of a triad is corner-dependent.\n";

  // --- Part 2: Monte-Carlo variability ----------------------------------
  std::cout << "\n-- die-to-die variability (sigma = 5% per gate) --\n";
  VariabilityConfig vcfg;
  vcfg.num_dies = 31;
  vcfg.num_patterns = std::min<std::size_t>(pattern_budget(), 3000);
  const std::vector<OperatingTriad> points{
      {cp, 0.6, 2.0},  // comfortable margin
      {cp, 0.5, 2.0},  // headline point
      {cp, 0.45, 2.0}, // between the headline and the cliff
      {cp, 0.4, 2.0},  // paper's approximate mode
  };
  const auto study =
      variability_study(rca, make_fdsoi28_lvt(), points, vcfg);
  TextTable tv({"triad", "clean dies [%]", "BER p25 [%]", "BER median [%]",
                "BER p75 [%]", "BER max [%]"});
  for (const VariabilityResult& r : study) {
    tv.add_row({triad_label(r.triad),
                format_double(r.error_free_die_fraction * 100.0, 0),
                format_double(r.ber.q25 * 100.0, 2),
                format_double(r.ber.median * 100.0, 2),
                format_double(r.ber.q75 * 100.0, 2),
                format_double(r.ber.max * 100.0, 2)});
  }
  tv.print(std::cout);
  write_csv(tv, "ext_variability.csv");
  std::cout << "reading: at the margin's edge the *same* triad splits the"
               " die population — why the paper pairs VOS with runtime"
               " error monitoring instead of open-loop tables.\n";
  return 0;
}
