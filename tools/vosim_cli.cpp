// vosim command-line tool: synthesize, characterize, train models and
// export netlists without writing C++ — for any supported DUT circuit.
//
//   vosim_cli synth <circuit>
//   vosim_cli characterize <circuit> [--patterns N] [--csv out.csv]
//                          [--engine event|levelized]
//                          [--provenance] [--top-culprits N]
//   vosim_cli train <circuit> --tclk T --vdd V [--vbb B]
//                   [--metric mse|hamming|whamming] [--out model.txt]
//                   [--engine event|levelized]      (adders only)
//   vosim_cli verilog <circuit> [--prune]
//   vosim_cli triads <circuit>
//   vosim_cli variability <circuit> [--dies N] [--sigma S]
//                         [--tclk NS --vdd V --vbb V]
//                         [--engine event|levelized]
//   vosim_cli campaign [--workloads W1,W2|all] [--circuits C1,C2]
//                      [--backends exact|model|sim-event|sim-levelized]
//                      [--store campaign.jsonl] [--quality-floor F]
//                      [--patterns N] [--train-patterns N] [--seed S]
//                      [--max-triads N] [--jobs N] [--csv out.csv]
//                      [--chips N] [--fleet-seed S] [--shard i/N]
//                      [--provenance] [--top-culprits N]
//   vosim_cli merge-store <out.jsonl> <in1.jsonl> [in2.jsonl ...]
//                      [--strip-timing]
//   vosim_cli fleet [circuit] [--chips N] [--cycles N] [--patterns N]
//                      [--speed-sigma S] [--leakage-sigma S] [--jobs N]
//   vosim_cli serve --socket PATH [--store FILE] [--jobs N]
//   vosim_cli request --socket PATH --json '{"cmd":"..."}'
//
// Every subcommand additionally accepts the telemetry options
//   --trace out.json     write a Chrome-trace (Perfetto-loadable) span
//                        timeline of the run
//   --metrics-json FILE  write {"manifest":{...},"metrics":{...}} —
//                        the run manifest plus a counters/gauges/
//                        histograms snapshot (DESIGN.md §12). Written
//                        atomically (temp file + rename), so a watcher
//                        tailing FILE never reads a torn snapshot.
//
// --provenance (characterize, campaign) attaches ErrorProvenance
// observers (DESIGN.md §13): per-net culprit attribution, per-bit BER
// and slack-consumption histograms; --top-culprits N bounds the
// reported nets. Forces the generic per-triad sweep (the fast grid
// paths never dispatch observers), so expect the sweep itself to slow
// down — observers-off runs are unaffected.
//
// <circuit> is either a registry spec — rca8, bka16, mul8-array,
// mul8-wallace, tree8x8, mac4x8, loa8-4, … (also accepted via
// --circuit SPEC) — or the legacy "<arch> <width>" positional pair
// with <arch> ∈ {rca, bka, ksa, skl, csel, cska, hca}.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "src/util/args.hpp"
#include "src/util/lanes.hpp"
#include "src/vosim.hpp"

namespace {

using namespace vosim;

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program
      << " <command> (<circuit> | <arch> <width> | --circuit SPEC)"
         " [options]\n"
      << "commands:\n"
      << "  synth         area / power / critical-path report\n"
      << "                (pipelines: per-stage report + slack)\n"
      << "  variability   Monte-Carlo die-to-die spread at one triad\n"
      << "  characterize  43-triad VOS sweep (BER + energy/op)\n"
      << "  train         fit a statistical model at one triad (adders)\n"
      << "  verilog       dump the structural netlist\n"
      << "  triads        list the Table-III operating triads\n"
      << "  campaign      resumable workload x circuit x triad x backend\n"
      << "                quality-energy sweep with Pareto fronts\n"
      << "  merge-store   content-keyed union of shard-local stores\n"
      << "  fleet         closed-loop rung/energy distribution across a\n"
      << "                population of process-corner chip instances\n"
      << "  serve         long-lived sweep daemon on a Unix socket\n"
      << "  request       send one JSON request to a serve daemon\n"
      << known_circuits_help() << "\n"
      << known_seq_circuits_help() << "\n"
      << known_workloads_help() << "\n"
      << "options: --patterns N --csv FILE --tclk NS --vdd V --vbb V\n"
      << "         --metric mse|hamming|whamming --out FILE\n"
      << "         --engine event|levelized (simulation backend;\n"
      << "           levelized = bit-parallel, ~10x+ faster sweeps)\n"
      << "         --lane-width 64|256|512|auto (levelized lanes per\n"
      << "           pass; auto = 64 — wide words are bit-exact but\n"
      << "           only pay off on low-activity workloads, see\n"
      << "           DESIGN.md)\n"
      << "         --list-circuits (print the whole circuit registry\n"
      << "           with operand widths and gate counts, then exit)\n"
      << "         --trace FILE (Chrome-trace span timeline; load in\n"
      << "           Perfetto / chrome://tracing)\n"
      << "         --metrics-json FILE (run manifest + metrics snapshot;\n"
      << "           atomic temp-file + rename write)\n"
      << "         --provenance (characterize/campaign: per-net culprit\n"
      << "           attribution + per-bit BER + slack histograms on the\n"
      << "           sim engines; forces the generic sweep paths)\n"
      << "         --top-culprits N (culprit nets reported per result)\n"
      << "campaign: --workloads L --circuits L --backends L (comma lists;\n"
      << "          backends: exact model sim-event sim-levelized sim-seq)\n"
      << "          --store FILE (JSONL; resumes finished cells)\n"
      << "          --quality-floor F --train-patterns N --seed S\n"
      << "          --max-triads N --jobs N\n"
      << "          --chips N (fleet chip axis) --fleet-seed S\n"
      << "          --shard i/N (this process computes the content-hashed\n"
      << "            1/N of the grid; merge-store unions shard stores)\n";
  return 2;
}

/// --list-circuits: builds every registry example and prints one row
/// per spec with its pinout and size — combinational and pipelined.
int list_circuits() {
  TextTable t({"spec", "display", "operands", "out bits", "gates",
               "stages"});
  for (const std::string& spec : circuit_registry_examples()) {
    const DutNetlist dut = build_circuit(spec);
    std::string widths;
    for (std::size_t i = 0; i < dut.num_operands(); ++i) {
      if (!widths.empty()) widths += ",";
      widths += std::to_string(dut.operand_width(i));
    }
    t.add_row({spec, dut.display_name,
               std::to_string(dut.num_operands()) + "x" + widths,
               std::to_string(dut.output_width()),
               std::to_string(dut.netlist.num_gates()), "-"});
  }
  for (const std::string& spec : seq_circuit_registry()) {
    const SeqDut seq = build_seq_circuit(spec);
    std::string widths;
    for (std::size_t i = 0; i < seq.num_operands(); ++i) {
      if (!widths.empty()) widths += ",";
      widths += std::to_string(seq.operand_width(i));
    }
    t.add_row({spec, seq.display_name,
               std::to_string(seq.num_operands()) + "x" + widths,
               std::to_string(seq.output_width()),
               std::to_string(seq.num_gates()),
               std::to_string(seq.num_stages())});
  }
  t.print(std::cout);
  return 0;
}

/// Per-triad provenance digest printed under the sweep table when
/// --provenance is on: error counts, worst-case slack consumption and
/// the top culprit nets of every triad that saw at least one operation
/// (triads the generic sweep skipped stay silent).
void print_provenance(const std::vector<TriadResult>& results,
                      std::size_t top_k) {
  TextTable t({"triad", "err ops", "attrib bits", "slack p95 (ps)",
               "slack max (ps)", "top culprits"});
  for (const TriadResult& r : results) {
    const ProvenanceSummary& p = r.provenance;
    if (p.ops == 0) continue;
    t.add_row({triad_label(r.triad), std::to_string(p.erroneous_ops),
               std::to_string(p.attributed_bits),
               format_double(p.slack_p95_ps, 1),
               format_double(p.slack_max_ps, 1),
               p.attributed_bits == 0 ? "-" : p.top_culprits_string(top_k)});
  }
  std::cout << "\n--- error provenance (per-net culprit attribution) ---\n";
  t.print(std::cout);
}

/// Pipelined circuits route synth/triads/characterize through the
/// sequential subsystem; the remaining commands are combinational-only.
int run_seq(const ArgParser& args, const std::string& command,
            const std::string& spec) {
  const CellLibrary& lib = make_fdsoi28_lvt();
  const SeqDut seq = build_seq_circuit(spec);
  const EngineKind engine = parse_engine_kind(args.get("engine", "event"));
  const double cp_ns = seq_critical_path_ns(seq, lib);

  if (command == "synth") {
    const std::vector<SynthesisReport> reports =
        seq_stage_reports(seq, lib);
    TextTable t({"stage", "gates", "area (um2)", "power (uW)", "CP (ns)",
                 "slack @CP (ps)"});
    const OperatingTriad nominal{cp_ns, 1.0, 0.0};
    const std::vector<StageSlack> slacks =
        seq_stage_slacks(seq, lib, nominal);
    for (std::size_t k = 0; k < reports.size(); ++k) {
      const SynthesisReport& r = reports[k];
      t.add_row({std::to_string(k), std::to_string(r.num_gates),
                 format_double(r.area_um2, 1),
                 format_double(r.total_power_uw, 1),
                 format_double(r.critical_path_ns, 3),
                 format_double(slacks[k].slack_ps, 1)});
    }
    t.print(std::cout);
    std::cout << seq.display_name << ": " << seq.num_stages()
              << " stages, " << seq.num_gates() << " gates, "
              << seq.num_flops() << " flops, pipeline CP "
              << format_double(cp_ns, 3) << " ns\n";
    return 0;
  }

  const auto triads = make_dut_triads(cp_ns);

  if (command == "triads") {
    TextTable t({"#", "triad"});
    for (std::size_t i = 0; i < triads.size(); ++i)
      t.add_row({std::to_string(i), triad_label(triads[i])});
    t.print(std::cout);
    return 0;
  }

  if (command == "characterize") {
    CharacterizeConfig cfg;
    cfg.num_patterns =
        static_cast<std::size_t>(args.get_int("patterns", 20000));
    cfg.engine = engine;
    cfg.provenance = args.has("provenance");
    cfg.top_culprits = static_cast<std::size_t>(
        args.get_int("top-culprits", static_cast<long>(cfg.top_culprits)));
    std::cerr << "pipeline: " << seq.display_name
              << ", engine: " << engine_kind_name(engine) << "\n";
    const auto results = characterize_seq_dut(seq, lib, triads, cfg);
    const double baseline = results[0].energy_per_op_fj;
    const TextTable t = fig8_table(sort_for_fig8(results), baseline);
    t.print(std::cout);
    if (args.has("csv"))
      std::cout << "CSV: " << write_csv(t, args.get("csv", "sweep.csv"))
                << "\n";
    if (cfg.provenance)
      print_provenance(sort_for_fig8(results), cfg.top_culprits);
    return 0;
  }

  throw std::invalid_argument(
      "command '" + command + "' supports combinational circuits only; "
      "pipelines support synth | triads | characterize");
}

/// The circuit spec from --circuit, one positional ("rca8") or the
/// legacy positional pair ("rca 8").
std::string circuit_spec(const ArgParser& args) {
  if (args.has("circuit")) return args.get("circuit", "");
  if (args.positional().size() >= 3)
    return args.positional()[1] + args.positional()[2];
  if (args.positional().size() >= 2) return args.positional()[1];
  throw std::invalid_argument("missing circuit spec");
}

DistanceMetric parse_metric(const std::string& name) {
  if (name == "mse") return DistanceMetric::kMse;
  if (name == "hamming") return DistanceMetric::kHamming;
  if (name == "whamming") return DistanceMetric::kWeightedHamming;
  throw std::invalid_argument("unknown metric: " + name);
}

/// Parses "--shard i/N" into the config's shard fields.
void parse_shard(const ArgParser& args, CampaignConfig& cfg) {
  if (!args.has("shard")) return;
  const std::string spec = args.get("shard", "0/1");
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos)
    throw std::invalid_argument("bad --shard (expected i/N)");
  cfg.shard_index =
      static_cast<std::size_t>(std::stoul(spec.substr(0, slash)));
  cfg.shard_count =
      static_cast<std::size_t>(std::stoul(spec.substr(slash + 1)));
}

/// The run manifest stamped into campaign stores and --metrics-json
/// files: what produced this data, with which engine/lane width/shard,
/// hashed over the full canonical invocation.
obs::RunManifest make_manifest(const ArgParser& args,
                               const std::string& command) {
  obs::RunManifest m;
  m.tool = command;
  // campaign/fleet/serve run the bit-parallel engine internally; the
  // per-circuit commands default to the event engine unless asked.
  const bool levelized_tool = command == "campaign" ||
                              command == "fleet" || command == "serve";
  m.engine = args.get("engine", levelized_tool ? "levelized" : "event");
  m.lane_width = lanes::resolve_lane_width(0);
  m.shard = args.get("shard", "0/1");
  m.config = args.canonical();
  return m;
}

/// The campaign subcommand: a resumable quality-energy sweep over the
/// workload x circuit x triad x backend grid with Pareto aggregation.
int run_campaign_command(const ArgParser& args) {
  CampaignConfig cfg;
  cfg.workloads = args.get_list("workloads", cfg.workloads);
  cfg.circuits = args.get_list("circuits", cfg.circuits);
  cfg.backends.clear();
  for (const std::string& name : args.get_list("backends", {"model"}))
    cfg.backends.push_back(parse_arith_backend(name));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.characterize_patterns =
      static_cast<std::size_t>(args.get_int("patterns", 2000));
  cfg.train_patterns =
      static_cast<std::size_t>(args.get_int("train-patterns", 4000));
  cfg.max_triads =
      static_cast<std::size_t>(args.get_int("max-triads", 0));
  cfg.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  cfg.fleet.num_chips =
      static_cast<std::size_t>(args.get_int("chips", 0));
  cfg.fleet.seed =
      static_cast<std::uint64_t>(args.get_int("fleet-seed", 7));
  cfg.fleet.speed_sigma =
      args.get_double("chip-speed-sigma", cfg.fleet.speed_sigma);
  cfg.fleet.leakage_sigma =
      args.get_double("chip-leakage-sigma", cfg.fleet.leakage_sigma);
  cfg.provenance = args.has("provenance");
  cfg.top_culprits = static_cast<std::size_t>(
      args.get_int("top-culprits", static_cast<long>(cfg.top_culprits)));
  parse_shard(args, cfg);
  cfg.progress = &std::cerr;
  const double floor = args.get_double("quality-floor", 0.9);

  CampaignStore store(args.get("store", ""));
  // Stamp a fresh file-backed store with this run's manifest (no-op on
  // stores that already carry one — the first producer wins).
  store.write_header(make_manifest(args, "campaign").to_jsonl());
  const CampaignOutcome outcome =
      run_campaign(make_fdsoi28_lvt(), cfg, store);
  std::cout << "campaign: " << outcome.cells.size() << " cells ("
            << outcome.reused << " reused, " << outcome.computed
            << " computed)";
  if (!store.path().empty()) std::cout << ", store: " << store.path();
  std::cout << "\n\n";

  const TextTable grid = campaign_table(outcome.cells);
  grid.print(std::cout);
  if (args.has("csv"))
    std::cout << "CSV: " << write_csv(grid, args.get("csv", "campaign.csv"))
              << "\n";

  if (cfg.provenance) {
    // Culprit nets of every gate-level sim cell (model/exact cells
    // carry none — provenance needs an engine to observe).
    TextTable pt({"workload", "circuit", "backend", "triad", "chip",
                  "culprits"});
    for (const CampaignCell& cell : outcome.cells)
      if (!cell.culprits.empty())
        pt.add_row({cell.key.workload, cell.key.circuit, cell.key.backend,
                    triad_label(cell.key.triad),
                    std::to_string(cell.key.chip), cell.culprits});
    std::cout << "\n--- culprit nets (per sim cell) ---\n";
    pt.print(std::cout);
  }

  // Resolve again so the "all" alias expands to real workload names
  // (cell keys never contain the alias).
  for (const Workload& workload_entry : resolve_workloads(cfg.workloads)) {
    const std::string& workload = workload_entry.name;
    for (const ArithBackend backend : cfg.backends) {
      if (backend == ArithBackend::kExact) continue;  // flat quality
      const auto group = select_cells(outcome.cells, workload,
                                      arith_backend_name(backend));
      if (group.empty()) continue;
      std::cout << "\n--- Pareto front: " << workload << " / "
                << arith_backend_name(backend) << " ---\n";
      pareto_table(pareto_front(group)).print(std::cout);
      const auto pick = min_energy_at_floor(group, floor);
      std::cout << "quality floor " << format_double(floor, 2) << ": ";
      if (pick.has_value())
        std::cout << "min energy " << format_double(pick->energy_per_op_fj, 2)
                  << " fJ/op at " << triad_label(pick->key.triad) << " ("
                  << pick->metric << " "
                  << format_double(pick->quality, 3) << ")\n";
      else
        std::cout << "unreachable on this grid\n";
    }
  }

  const QualityDeviation dev = model_quality_deviation(outcome.cells);
  if (dev.cells > 0)
    std::cout << "\nMODEL_QUALITY_DEV " << format_double(dev.max_pp, 3)
              << "\nmodel vs gate-level quality deviation over "
              << dev.cells << " cells: mean "
              << format_double(dev.mean_pp, 2) << " pp, max "
              << format_double(dev.max_pp, 2) << " pp\n";
  return 0;
}

/// merge-store <out> <in...>: content-keyed last-write-wins union of
/// shard-local stores, written in canonical key order (also a
/// canonicalizer for a single store — see merge_stores()).
int run_merge_store(const ArgParser& args) {
  const auto& pos = args.positional();
  if (pos.size() < 3)
    throw std::invalid_argument(
        "merge-store needs <out.jsonl> <in1.jsonl> [in2.jsonl ...]");
  const std::vector<std::string> inputs(pos.begin() + 2, pos.end());
  const MergeStats stats =
      merge_stores(inputs, pos[1], args.has("strip-timing"));
  std::cout << "merged " << stats.files << " stores: " << stats.lines
            << " lines, " << stats.skipped << " skipped, "
            << stats.manifests << " manifests excluded, "
            << stats.cells << " cells -> " << pos[1] << "\n";
  return 0;
}

/// fleet [circuit]: the closed-loop rung/energy distribution across a
/// population of content-hashed process-corner chip instances.
int run_fleet_command(const ArgParser& args) {
  FleetStudyConfig cfg;
  if (args.has("circuit")) cfg.circuit = args.get("circuit", cfg.circuit);
  else if (args.positional().size() >= 2) cfg.circuit = args.positional()[1];
  cfg.fleet.num_chips =
      static_cast<std::size_t>(args.get_int("chips", 25));
  cfg.fleet.seed =
      static_cast<std::uint64_t>(args.get_int("fleet-seed", 7));
  cfg.fleet.speed_sigma =
      args.get_double("speed-sigma", cfg.fleet.speed_sigma);
  cfg.fleet.leakage_sigma =
      args.get_double("leakage-sigma", cfg.fleet.leakage_sigma);
  cfg.fleet.within_die_sigma =
      args.get_double("within-sigma", cfg.fleet.within_die_sigma);
  cfg.ladder_patterns =
      static_cast<std::size_t>(args.get_int("patterns", 2000));
  cfg.cycles = static_cast<std::size_t>(args.get_int("cycles", 4096));
  cfg.jobs = static_cast<unsigned>(args.get_int("jobs", 0));

  const FleetOutcome out = run_fleet_study(make_fdsoi28_lvt(), cfg);
  std::cout << "fleet: " << cfg.circuit << ", "
            << cfg.fleet.num_chips << " chips, " << cfg.cycles
            << " cycles each, " << out.ladder.size()
            << "-rung ladder\n\n";
  TextTable ladder_t({"rung", "triad", "E/cycle [fJ]", "char. BER [%]",
                      "chips ending here"});
  for (std::size_t r = 0; r < out.ladder.size(); ++r)
    ladder_t.add_row({std::to_string(r), triad_label(out.ladder[r].triad),
                      format_double(out.ladder[r].energy_per_op_fj, 1),
                      format_double(out.ladder[r].expected_ber * 100.0, 2),
                      std::to_string(out.rung_histogram[r])});
  ladder_t.print(std::cout);

  TextTable spread_t({"metric", "mean", "stddev", "min", "median", "max"});
  spread_t.add_row({"E/cycle [fJ]", format_double(out.energy_fj.mean, 2),
                    format_double(out.energy_fj.stddev, 2),
                    format_double(out.energy_fj.min, 2),
                    format_double(out.energy_fj.median, 2),
                    format_double(out.energy_fj.max, 2)});
  spread_t.add_row({"final rung", format_double(out.final_rung.mean, 2),
                    format_double(out.final_rung.stddev, 2),
                    format_double(out.final_rung.min, 0),
                    format_double(out.final_rung.median, 0),
                    format_double(out.final_rung.max, 0)});
  spread_t.print(std::cout);
  return 0;
}

/// serve: the long-lived sweep daemon. Runs until a client sends
/// {"cmd":"shutdown"}.
int run_serve_command(const ArgParser& args) {
  ServeConfig cfg;
  cfg.socket_path = args.get("socket", "");
  if (cfg.socket_path.empty())
    throw std::invalid_argument("serve needs --socket PATH");
  cfg.store_path = args.get("store", "");
  cfg.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  CampaignServer server(make_fdsoi28_lvt(), cfg);
  server.start();
  std::cout << "serving on " << server.socket_path()
            << (cfg.store_path.empty() ? ""
                                       : " (store: " + cfg.store_path + ")")
            << "\n"
            << std::flush;
  server.wait();
  server.stop();
  std::cout << "served " << server.requests_served()
            << " requests, shutting down\n";
  return 0;
}

/// request: one-shot client for the serve daemon; prints every
/// streamed response line.
int run_request_command(const ArgParser& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty())
    throw std::invalid_argument("request needs --socket PATH");
  const std::string json = args.get("json", "{\"cmd\":\"ping\"}");
  for (const std::string& line : send_request(socket, json))
    std::cout << line << "\n";
  return 0;
}

int run_command(const ArgParser& args) {
  if (args.has("list-circuits")) return list_circuits();
  if (args.positional().empty()) return usage(args.program());
  const std::string command = args.positional()[0];
  if (command == "campaign") return run_campaign_command(args);
  if (command == "merge-store") return run_merge_store(args);
  if (command == "fleet") return run_fleet_command(args);
  if (command == "serve") return run_serve_command(args);
  if (command == "request") return run_request_command(args);
  std::string spec;
  try {
    spec = circuit_spec(args);
  } catch (const std::invalid_argument&) {
    return usage(args.program());
  }
  if (is_seq_circuit_spec(spec)) return run_seq(args, command, spec);

  const CellLibrary& lib = make_fdsoi28_lvt();
  DutNetlist dut;
  try {
    dut = build_circuit(spec);
  } catch (const std::invalid_argument&) {
    // Re-diagnose across both registries so a pipeline typo that fell
    // through the combinational parser still suggests the pipeline.
    throw std::invalid_argument(unknown_circuit_message(spec));
  }
  const SynthesisReport rep = synthesize_report(dut.netlist, lib);
  const EngineKind engine = parse_engine_kind(args.get("engine", "event"));

  if (command == "synth") {
    TextTable t({"design", "gates", "flops", "area (um2)", "power (uW)",
                 "CP (ns)", "TT CP (ns)"});
    t.add_row({rep.design, std::to_string(rep.num_gates),
               std::to_string(rep.num_flops),
               format_double(rep.area_um2, 1),
               format_double(rep.total_power_uw, 1),
               format_double(rep.critical_path_ns, 3),
               format_double(rep.tt_critical_path_ns, 3)});
    t.print(std::cout);
    return 0;
  }

  if (command == "verilog") {
    if (args.has("prune")) {
      PruneStats stats;
      const Netlist pruned = prune_dead_gates(dut.netlist, &stats);
      std::cerr << "pruned " << (stats.gates_before - stats.gates_after)
                << " dead gates\n";
      write_verilog(pruned, std::cout);
    } else {
      write_verilog(dut.netlist, std::cout);
    }
    return 0;
  }

  if (command == "variability") {
    VariabilityConfig vcfg;
    vcfg.num_dies = static_cast<int>(args.get_int("dies", 25));
    vcfg.variation_sigma = args.get_double("sigma", 0.05);
    vcfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 3000));
    vcfg.jobs = static_cast<unsigned>(args.get_int("jobs", 0));
    vcfg.engine = engine;
    const OperatingTriad triad{
        args.get_double("tclk", rep.critical_path_ns),
        args.get_double("vdd", 0.5), args.get_double("vbb", 2.0)};
    const auto study = variability_study(dut, lib, {triad}, vcfg);
    const VariabilityResult& r = study[0];
    TextTable t({"triad", "dies", "clean [%]", "BER med [%]",
                 "BER max [%]", "E/op med [fJ]"});
    t.add_row({triad_label(r.triad), std::to_string(r.dies),
               format_double(r.error_free_die_fraction * 100.0, 0),
               format_double(r.ber.median * 100.0, 2),
               format_double(r.ber.max * 100.0, 2),
               format_double(r.energy_fj.median, 2)});
    t.print(std::cout);
    return 0;
  }

  const auto triads = make_circuit_triads(dut, rep.critical_path_ns);

  if (command == "triads") {
    table3_rows(rep.design, triads).print(std::cout);
    TextTable t({"#", "triad"});
    for (std::size_t i = 0; i < triads.size(); ++i)
      t.add_row({std::to_string(i), triad_label(triads[i])});
    t.print(std::cout);
    return 0;
  }

  if (command == "characterize") {
    CharacterizeConfig cfg;
    cfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 20000));
    cfg.engine = engine;
    cfg.provenance = args.has("provenance");
    cfg.top_culprits = static_cast<std::size_t>(
        args.get_int("top-culprits", static_cast<long>(cfg.top_culprits)));
    std::cerr << "circuit: " << dut.display_name
              << ", engine: " << engine_kind_name(engine) << "\n";
    const auto results = characterize_dut(dut, lib, triads, cfg);
    const double baseline = results[0].energy_per_op_fj;
    const TextTable t = fig8_table(sort_for_fig8(results), baseline);
    t.print(std::cout);
    if (args.has("csv"))
      std::cout << "CSV: " << write_csv(t, args.get("csv", "sweep.csv"))
                << "\n";
    if (cfg.provenance)
      print_provenance(sort_for_fig8(results), cfg.top_culprits);
    return 0;
  }

  if (command == "train") {
    // The carry-chain model is an adder model: two equal operands and
    // a (width+1)-bit sum word.
    if (dut.num_operands() != 2 ||
        dut.operand_width(0) != dut.operand_width(1) ||
        dut.output_width() != dut.operand_width(0) + 1)
      throw std::invalid_argument(
          "train fits the carry-chain adder model; circuit '" + spec +
          "' is not an adder");
    const int width = dut.operand_width(0);
    const OperatingTriad triad{
        args.get_double("tclk", rep.critical_path_ns),
        args.get_double("vdd", 0.7), args.get_double("vbb", 0.0)};
    TrainerConfig cfg;
    cfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 20000));
    cfg.metric = parse_metric(args.get("metric", "mse"));
    TimingSimConfig sim_cfg;
    sim_cfg.engine = engine;
    VosDutSim sim(dut, lib, triad, sim_cfg);
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.apply(a, b).sampled;
    };
    const VosAdderModel model =
        train_vos_model(width, triad, oracle, cfg);
    std::cout << "trained model at " << triad_label(triad) << " ("
              << distance_metric_name(cfg.metric) << ", "
              << engine_kind_name(engine) << " engine)\n";
    model.table().to_table(3).print(std::cout);
    // Held-out fidelity check against a fresh simulator.
    VosDutSim eval_sim(dut, lib, triad, sim_cfg);
    const HardwareOracle eval_oracle = [&eval_sim](std::uint64_t a,
                                                   std::uint64_t b) {
      return eval_sim.apply(a, b).sampled;
    };
    FidelityConfig fcfg;
    fcfg.num_patterns = cfg.num_patterns;
    const FidelityResult fr = evaluate_fidelity(model, eval_oracle, fcfg);
    std::cout << "held-out fidelity: SNR "
              << format_double(std::min(fr.snr_db, snr_display_cap_db), 1)
              << " dB, normalized Hamming "
              << format_double(fr.normalized_hamming, 4) << ", hardware BER "
              << format_double(fr.oracle_ber * 100.0, 2) << "%\n";
    if (args.has("out")) {
      const std::string path = args.get("out", "model.txt");
      std::ofstream f(path);
      if (!f) throw std::runtime_error("cannot open " + path);
      model.save(f);
      std::cout << "saved: " << path << "\n";
    }
    return 0;
  }

  return usage(args.program());
}

/// Telemetry envelope around the dispatch: lane-width override first
/// (the manifest records the resolved width), then an optional trace
/// session and a manifest + metrics-snapshot dump. Both files are
/// written even when the command throws, so a failed run still leaves
/// its telemetry behind.
int run(const ArgParser& args) {
  // Process-wide levelized lane-width override: beats VOSIM_LANE_WIDTH
  // and the 64-lane auto default everywhere downstream (make_engine,
  // the characterizer fast paths), but loses to an explicit
  // TimingSimConfig::lane_width request.
  if (args.has("lane-width")) {
    std::size_t width = 0;
    if (!lanes::parse_lane_width(args.get("lane-width", "auto"), width))
      throw std::invalid_argument(
          "bad --lane-width (expected 64|256|512|auto)");
    lanes::set_lane_width_override(width);
  }
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics-json", "");
  if (!trace_path.empty()) obs::start_trace();
  const auto flush_telemetry = [&] {
    if (!trace_path.empty()) {
      if (obs::write_trace_file(trace_path))
        std::cerr << "trace: " << trace_path << "\n";
      else
        std::cerr << "error: cannot write trace " << trace_path << "\n";
    }
    if (metrics_path.empty()) return;
    const std::string command =
        args.positional().empty() ? "vosim" : args.positional()[0];
    // Atomic publish: write a sibling temp file, then rename() over the
    // target — a reader tailing the file (or a crash mid-write) never
    // sees a torn half-snapshot. rename() is atomic within a
    // filesystem, and the temp name keeps it on the target's.
    const std::string tmp_path = metrics_path + ".tmp";
    {
      std::ofstream out(tmp_path);
      if (!out) {
        std::cerr << "error: cannot write metrics " << tmp_path << "\n";
        return;
      }
      out << "{\"manifest\":" << make_manifest(args, command).to_jsonl()
          << ",\"metrics\":" << obs::metrics().snapshot().to_json()
          << "}\n";
      out.flush();
      if (!out) {
        std::cerr << "error: cannot write metrics " << tmp_path << "\n";
        std::remove(tmp_path.c_str());
        return;
      }
    }
    if (std::rename(tmp_path.c_str(), metrics_path.c_str()) != 0) {
      std::cerr << "error: cannot rename " << tmp_path << " to "
                << metrics_path << "\n";
      std::remove(tmp_path.c_str());
      return;
    }
    std::cerr << "metrics: " << metrics_path << "\n";
  };
  try {
    const int rc = run_command(args);
    flush_telemetry();
    return rc;
  } catch (...) {
    flush_telemetry();
    throw;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(ArgParser(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
