// vosim command-line tool: synthesize, characterize, train models and
// export netlists without writing C++.
//
//   vosim_cli synth <arch> <width>
//   vosim_cli characterize <arch> <width> [--patterns N] [--csv out.csv]
//                          [--engine event|levelized]
//   vosim_cli train <arch> <width> --tclk T --vdd V [--vbb B]
//                   [--metric mse|hamming|whamming] [--out model.txt]
//                   [--engine event|levelized]
//   vosim_cli verilog <arch> <width> [--prune]
//   vosim_cli triads <arch> <width>
//   vosim_cli variability <arch> <width> [--dies N] [--sigma S]
//                         [--tclk NS --vdd V --vbb V]
//                         [--engine event|levelized]
//
// <arch> ∈ {rca, bka, ksa, skl, csel, cska, hca}; widths 2..63 (power of
// two for bka/skl/hca).
#include <fstream>
#include <iostream>

#include "src/util/args.hpp"
#include "src/vosim.hpp"

namespace {

using namespace vosim;

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program << " <command> <arch> <width> [options]\n"
      << "commands:\n"
      << "  synth         area / power / critical-path report\n"
      << "  variability   Monte-Carlo die-to-die spread at one triad\n"
      << "  characterize  43-triad VOS sweep (BER + energy/op)\n"
      << "  train         fit a statistical model at one triad\n"
      << "  verilog       dump the structural netlist\n"
      << "  triads        list the Table-III operating triads\n"
      << "arch: rca | bka | ksa | skl | csel\n"
      << "options: --patterns N --csv FILE --tclk NS --vdd V --vbb V\n"
      << "         --metric mse|hamming|whamming --out FILE\n"
      << "         --engine event|levelized (simulation backend;\n"
      << "           levelized = bit-parallel, ~10x+ faster sweeps)\n";
  return 2;
}

AdderArch parse_arch(const std::string& name) {
  if (name == "rca") return AdderArch::kRipple;
  if (name == "bka") return AdderArch::kBrentKung;
  if (name == "ksa") return AdderArch::kKoggeStone;
  if (name == "skl") return AdderArch::kSklansky;
  if (name == "csel") return AdderArch::kCarrySelect;
  if (name == "cska") return AdderArch::kCarrySkip;
  if (name == "hca") return AdderArch::kHanCarlson;
  throw std::invalid_argument("unknown architecture: " + name);
}

DistanceMetric parse_metric(const std::string& name) {
  if (name == "mse") return DistanceMetric::kMse;
  if (name == "hamming") return DistanceMetric::kHamming;
  if (name == "whamming") return DistanceMetric::kWeightedHamming;
  throw std::invalid_argument("unknown metric: " + name);
}

int run(const ArgParser& args) {
  if (args.positional().size() < 3) return usage(args.program());
  const std::string command = args.positional()[0];
  const AdderArch arch = parse_arch(args.positional()[1]);
  const int width = static_cast<int>(std::stol(args.positional()[2]));

  const CellLibrary& lib = make_fdsoi28_lvt();
  const AdderNetlist adder = build_adder(arch, width);
  const SynthesisReport rep = synthesize_report(adder.netlist, lib);
  const EngineKind engine = parse_engine_kind(args.get("engine", "event"));

  if (command == "synth") {
    TextTable t({"design", "gates", "flops", "area (um2)", "power (uW)",
                 "CP (ns)", "TT CP (ns)"});
    t.add_row({rep.design, std::to_string(rep.num_gates),
               std::to_string(rep.num_flops),
               format_double(rep.area_um2, 1),
               format_double(rep.total_power_uw, 1),
               format_double(rep.critical_path_ns, 3),
               format_double(rep.tt_critical_path_ns, 3)});
    t.print(std::cout);
    return 0;
  }

  if (command == "verilog") {
    if (args.has("prune")) {
      PruneStats stats;
      const Netlist pruned = prune_dead_gates(adder.netlist, &stats);
      std::cerr << "pruned " << (stats.gates_before - stats.gates_after)
                << " dead gates\n";
      write_verilog(pruned, std::cout);
    } else {
      write_verilog(adder.netlist, std::cout);
    }
    return 0;
  }

  if (command == "variability") {
    VariabilityConfig vcfg;
    vcfg.num_dies = static_cast<int>(args.get_int("dies", 25));
    vcfg.variation_sigma = args.get_double("sigma", 0.05);
    vcfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 3000));
    vcfg.engine = engine;
    const OperatingTriad triad{
        args.get_double("tclk", rep.critical_path_ns),
        args.get_double("vdd", 0.5), args.get_double("vbb", 2.0)};
    const auto study = variability_study(adder, lib, {triad}, vcfg);
    const VariabilityResult& r = study[0];
    TextTable t({"triad", "dies", "clean [%]", "BER med [%]",
                 "BER max [%]", "E/op med [fJ]"});
    t.add_row({triad_label(r.triad), std::to_string(r.dies),
               format_double(r.error_free_die_fraction * 100.0, 0),
               format_double(r.ber.median * 100.0, 2),
               format_double(r.ber.max * 100.0, 2),
               format_double(r.energy_fj.median, 2)});
    t.print(std::cout);
    return 0;
  }

  const auto triads =
      make_paper_triads(arch, width, rep.critical_path_ns);

  if (command == "triads") {
    table3_rows(rep.design, triads).print(std::cout);
    TextTable t({"#", "triad"});
    for (std::size_t i = 0; i < triads.size(); ++i)
      t.add_row({std::to_string(i), triad_label(triads[i])});
    t.print(std::cout);
    return 0;
  }

  if (command == "characterize") {
    CharacterizeConfig cfg;
    cfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 20000));
    cfg.engine = engine;
    std::cerr << "engine: " << engine_kind_name(engine) << "\n";
    const auto results = characterize_adder(adder, lib, triads, cfg);
    const double baseline = results[0].energy_per_op_fj;
    const TextTable t = fig8_table(sort_for_fig8(results), baseline);
    t.print(std::cout);
    if (args.has("csv"))
      std::cout << "CSV: " << write_csv(t, args.get("csv", "sweep.csv"))
                << "\n";
    return 0;
  }

  if (command == "train") {
    const OperatingTriad triad{
        args.get_double("tclk", rep.critical_path_ns),
        args.get_double("vdd", 0.7), args.get_double("vbb", 0.0)};
    TrainerConfig cfg;
    cfg.num_patterns = static_cast<std::size_t>(
        args.get_int("patterns", 20000));
    cfg.metric = parse_metric(args.get("metric", "mse"));
    TimingSimConfig sim_cfg;
    sim_cfg.engine = engine;
    VosAdderSim sim(adder, lib, triad, sim_cfg);
    const HardwareOracle oracle = [&sim](std::uint64_t a, std::uint64_t b) {
      return sim.add(a, b).sampled;
    };
    const VosAdderModel model =
        train_vos_model(width, triad, oracle, cfg);
    std::cout << "trained model at " << triad_label(triad) << " ("
              << distance_metric_name(cfg.metric) << ", "
              << engine_kind_name(engine) << " engine)\n";
    model.table().to_table(3).print(std::cout);
    // Held-out fidelity check against a fresh simulator.
    VosAdderSim eval_sim(adder, lib, triad, sim_cfg);
    const HardwareOracle eval_oracle = [&eval_sim](std::uint64_t a,
                                                   std::uint64_t b) {
      return eval_sim.add(a, b).sampled;
    };
    FidelityConfig fcfg;
    fcfg.num_patterns = cfg.num_patterns;
    const FidelityResult fr = evaluate_fidelity(model, eval_oracle, fcfg);
    std::cout << "held-out fidelity: SNR "
              << format_double(std::min(fr.snr_db, snr_display_cap_db), 1)
              << " dB, normalized Hamming "
              << format_double(fr.normalized_hamming, 4) << ", hardware BER "
              << format_double(fr.oracle_ber * 100.0, 2) << "%\n";
    if (args.has("out")) {
      const std::string path = args.get("out", "model.txt");
      std::ofstream f(path);
      if (!f) throw std::runtime_error("cannot open " + path);
      model.save(f);
      std::cout << "saved: " << path << "\n";
    }
    return 0;
  }

  return usage(args.program());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(ArgParser(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
