#!/usr/bin/env bash
# Runs the vosim benchmark binaries and emits one machine-readable
# BENCH_<name>.json per bench with wall-clock time, pattern budget and
# exit status — the start of the repo's perf trajectory.
#
# Usage:
#   tools/run_benches.sh [BUILD_DIR] [BENCH_NAME...]
#
#   BUILD_DIR     directory containing the bench_* binaries (default: build)
#   BENCH_NAME    optional subset, e.g. "bench_fig5_ber_bitpos"; default is
#                 every bench_* binary found in BUILD_DIR.
#
# Environment:
#   VOSIM_PATTERNS   patterns per triad (default 200 here; the binaries
#                    themselves default to the paper's 20000).
#   VOSIM_BENCH_OUT  output directory for BENCH_*.json and bench CSVs
#                    (default: BUILD_DIR).
#   VOSIM_MIN_ENGINE_SPEEDUP
#                    floor for the levelized-vs-event speedup printed by
#                    bench_fig8_ber_energy (adders) and
#                    bench_table3_multiplier (mul8 array/Wallace)
#                    (default 5; the run fails if a measured
#                    LEVELIZED_SPEEDUP drops below it).
#   VOSIM_MAX_BER_DEV_PP
#                    ceiling for the BER deviation between engines
#                    (RCA8 for fig8, mul8 for table3_multiplier), in
#                    percentage points (default 2.0).
set -u

build_dir="${1:-build}"
shift 2>/dev/null || true

if [ ! -d "${build_dir}" ]; then
  echo "error: build dir '${build_dir}' not found (run cmake first)" >&2
  exit 2
fi

build_dir="$(cd "${build_dir}" && pwd)"
export VOSIM_PATTERNS="${VOSIM_PATTERNS:-200}"
out_dir="${VOSIM_BENCH_OUT:-${build_dir}}"
mkdir -p "${out_dir}"
out_dir="$(cd "${out_dir}" && pwd)"

if [ "$#" -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for f in "${build_dir}"/bench_*; do
    [ -x "$f" ] && [ ! -d "$f" ] && benches+=("$(basename "$f")")
  done
fi

if [ "${#benches[@]}" -eq 0 ]; then
  echo "error: no bench_* binaries in '${build_dir}'" >&2
  exit 2
fi

echo "running ${#benches[@]} benches with VOSIM_PATTERNS=${VOSIM_PATTERNS}"
failures=0
for name in "${benches[@]}"; do
  bin="${build_dir}/${name}"
  if [ ! -x "${bin}" ]; then
    echo "error: missing bench binary '${bin}'" >&2
    failures=$((failures + 1))
    continue
  fi
  log="${out_dir}/${name}.log"
  start_ns=$(date +%s%N)
  (cd "${out_dir}" && "${build_dir}/${name}" >"${name}.log" 2>&1)
  status=$?
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  json="${out_dir}/BENCH_${name#bench_}.json"
  # bench_fig8_ber_energy (adders) and bench_table3_multiplier (mul8)
  # run their sweeps on both engines and print machine-readable
  # comparison lines; carry them into the JSON and enforce the speedup
  # floor / BER-deviation ceiling.
  engine_fields=""
  if { [ "${name}" = "bench_fig8_ber_energy" ] || \
       [ "${name}" = "bench_table3_multiplier" ]; } && \
     [ "${status}" -eq 0 ]; then
    speedup=$(sed -n 's/^LEVELIZED_SPEEDUP //p' "${log}" | tail -n 1)
    ber_dev=$(sed -n 's/^LEVELIZED_BER_DEV_PP //p' "${log}" | tail -n 1)
    if [ -n "${speedup}" ] && [ -n "${ber_dev}" ]; then
      engine_fields=",
  \"levelized_speedup\": ${speedup},
  \"levelized_ber_dev_pp\": ${ber_dev}"
      min_speedup="${VOSIM_MIN_ENGINE_SPEEDUP:-5}"
      max_dev="${VOSIM_MAX_BER_DEV_PP:-2.0}"
      if ! awk -v s="${speedup}" -v m="${min_speedup}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: levelized speedup ${speedup}x < ${min_speedup}x floor" >&2
        status=1
      fi
      if ! awk -v d="${ber_dev}" -v m="${max_dev}" \
           'BEGIN{exit !(d <= m)}'; then
        echo "FAIL ${name}: BER deviation ${ber_dev}pp > ${max_dev}pp ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing LEVELIZED_SPEEDUP/LEVELIZED_BER_DEV_PP in log" >&2
      status=1
    fi
  fi
  cat >"${json}" <<EOF
{
  "bench": "${name}",
  "patterns_per_triad": ${VOSIM_PATTERNS},
  "wall_seconds": ${wall_s},
  "exit_code": ${status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "$(basename "${log}")"${engine_fields}
}
EOF
  if [ "${status}" -ne 0 ]; then
    echo "FAIL ${name} (exit ${status}, ${wall_s}s) -> ${json}"
    failures=$((failures + 1))
  else
    echo "ok   ${name} (${wall_s}s) -> ${json}"
  fi
done

echo "bench results: $((${#benches[@]} - failures))/${#benches[@]} ok, JSON in ${out_dir}"
[ "${failures}" -eq 0 ]
