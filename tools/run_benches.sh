#!/usr/bin/env bash
# Runs the vosim benchmark binaries and emits one machine-readable
# BENCH_<name>.json per bench with wall-clock time, pattern budget and
# exit status — the start of the repo's perf trajectory.
#
# Usage:
#   tools/run_benches.sh [BUILD_DIR] [BENCH_NAME...]
#
#   BUILD_DIR     directory containing the bench_* binaries (default: build)
#   BENCH_NAME    optional subset, e.g. "bench_fig5_ber_bitpos"; default is
#                 every bench_* binary found in BUILD_DIR.
#
# Environment:
#   VOSIM_PATTERNS   patterns per triad (default 200 here; the binaries
#                    themselves default to the paper's 20000).
#   VOSIM_BENCH_OUT  output directory for BENCH_*.json and bench CSVs
#                    (default: BUILD_DIR).
#   VOSIM_MIN_ENGINE_SPEEDUP
#                    floor for the levelized-vs-event speedup printed by
#                    bench_fig8_ber_energy (adders) and
#                    bench_table3_multiplier (mul8 array/Wallace)
#                    (default 5; the run fails if a measured
#                    LEVELIZED_SPEEDUP drops below it).
#   VOSIM_MAX_BER_DEV_PP
#                    ceiling for the BER deviation between engines
#                    (RCA8 for fig8, mul8 for table3_multiplier), in
#                    percentage points (default 2.0).
#   VOSIM_MAX_MODEL_QUALITY_DEV_PP
#                    ceiling for the model-vs-gate-level application
#                    quality deviation printed by bench_ext_app_pareto
#                    (normalized quality percentage points, default 35).
#   VOSIM_MIN_CLOSED_LOOP_SAVINGS_PCT
#                    floor for the closed-loop-vs-safest-rung energy
#                    saving printed by bench_pipeline (default 10; the
#                    run fails if CLOSED_LOOP_SAVINGS_PCT drops below
#                    it). bench_pipeline's SEQ_BER_DEV_PP (cross-engine
#                    step_cycle BER deviation over the error-onset
#                    band) is gated by VOSIM_MAX_BER_DEV_PP too.
#   VOSIM_MIN_WIDE_SPEEDUP
#                    floor for the wide-lane-word vs 64-lane wall-clock
#                    ratio printed by bench_perf_speedup (default 0.4 —
#                    a regression tripwire, not an aspiration: the
#                    deep-VOS sweep is dominated by per-lane event
#                    walks, so wide words sit near parity at large
#                    pattern counts and below it at small ones). A SIMD
#                    build whose auto dispatch reports 64-lane words
#                    fails unconditionally (silent fallback).
#   VOSIM_MIN_FLEET_TPS
#                    floor for FLEET_THROUGHPUT (chips/sec of the fleet
#                    serving phase) printed by bench_fleet (default 20
#                    at the default 200-pattern budget — a regression
#                    tripwire for the per-chip closed-loop path).
#   VOSIM_MIN_SHARD_EFFICIENCY
#                    floor for the 4-shard parallel efficiency measured
#                    by the fleet_shard pseudo-bench (default 0.7).
#                    Enforced only when nproc >= 4: on fewer cores the
#                    four concurrent shard processes time-share one
#                    machine, so the figure is reported, not gated.
#   VOSIM_MIN_CACHE_HIT_RATE
#                    floor for CACHE_HIT_RATE (resumed/total cells of
#                    the campaign_smoke second pass, default 0 — the
#                    line and the BENCH field are the tripwire; the
#                    resume check above it already demands 1.0).
#   VOSIM_MAX_PROVENANCE_OVERHEAD_PCT
#                    ceiling for PROVENANCE_OVERHEAD_PCT printed by
#                    bench_perf_speedup (event engine) and
#                    bench_pipeline (clocked levelized path): the
#                    relative deviation of two interleaved observers-off
#                    sweep legs (default 2 — the SimObserver dispatch
#                    guard is one branch; anything a real regression
#                    adds to the observers-off path must climb above
#                    this noise floor; DESIGN.md §13).
#   VOSIM_MAX_FIG5_PROV_DEV_PP
#                    ceiling for FIG5_PROV_DEV_PP printed by
#                    bench_fig5_ber_bitpos: max per-bit deviation
#                    between attribution-derived BER (ErrorProvenance)
#                    and the output-diff BER table, in percentage
#                    points (default 0.5; attribution is bit-exact by
#                    construction, so this is effectively an equality
#                    gate with float-print slack).
#
# Every bench binary prints one BENCH_METRICS_JSON line at exit (the
# process-wide telemetry snapshot, src/obs); it is folded into the
# bench's BENCH_*.json as a "metrics" object. The campaign_smoke
# second pass also runs with --trace/--metrics-json and both files are
# validated as JSON (python3, when available) and kept for CI upload.
#
# After the bench set, a tiny smoke campaign (2 workloads x 1 circuit x
# 4 triads on the model backend) runs twice through vosim_cli: the
# second pass must resume every cell from the JSONL store. Emits
# BENCH_campaign_smoke.json; the store is kept as campaign_smoke.jsonl
# for CI artifact upload.
#
# Two more pseudo-benches ride along (DESIGN.md §11):
#   fleet_shard  runs a 1000-chip fleet campaign once single-process
#                and once as 4 concurrent shard processes, merges the
#                shard stores (content-keyed, last-write-wins) and
#                fails unless the merged store is bit-identical to the
#                canonicalized single-process one. The merged store is
#                kept as fleet_shard_merged.jsonl for CI upload.
#   serve_smoke  starts the vosim_cli daemon on a Unix socket, issues
#                two concurrent campaign requests, and fails unless the
#                streamed cells are bit-identical to the same grids run
#                offline.
#
# Finally the BENCH_*.json set is copied to the repo root so the perf
# trajectory is tracked in-tree.
set -u

build_dir="${1:-build}"
shift 2>/dev/null || true

if [ ! -d "${build_dir}" ]; then
  echo "error: build dir '${build_dir}' not found (run cmake first)" >&2
  exit 2
fi

build_dir="$(cd "${build_dir}" && pwd)"
export VOSIM_PATTERNS="${VOSIM_PATTERNS:-200}"
out_dir="${VOSIM_BENCH_OUT:-${build_dir}}"
mkdir -p "${out_dir}"
out_dir="$(cd "${out_dir}" && pwd)"

# "campaign_smoke", "fleet_shard" and "serve_smoke" are pseudo-benches:
# they select the vosim_cli-driven checks below instead of a bench_*
# binary. With no arguments the full bench set and every pseudo-bench
# run.
run_smoke=0
run_fleet_shard=0
run_serve=0
if [ "$#" -gt 0 ]; then
  benches=()
  for name in "$@"; do
    case "${name}" in
      campaign_smoke) run_smoke=1 ;;
      fleet_shard) run_fleet_shard=1 ;;
      serve_smoke) run_serve=1 ;;
      *) benches+=("${name}") ;;
    esac
  done
else
  run_smoke=1
  run_fleet_shard=1
  run_serve=1
  benches=()
  for f in "${build_dir}"/bench_*; do
    [ -x "$f" ] && [ ! -d "$f" ] && benches+=("$(basename "$f")")
  done
fi

if [ "${#benches[@]}" -eq 0 ] && [ "${run_smoke}" -eq 0 ] && \
   [ "${run_fleet_shard}" -eq 0 ] && [ "${run_serve}" -eq 0 ]; then
  echo "error: no bench_* binaries in '${build_dir}'" >&2
  exit 2
fi

echo "running ${#benches[@]} benches with VOSIM_PATTERNS=${VOSIM_PATTERNS}"
failures=0
for name in ${benches[@]+"${benches[@]}"}; do
  bin="${build_dir}/${name}"
  if [ ! -x "${bin}" ]; then
    echo "error: missing bench binary '${bin}'" >&2
    failures=$((failures + 1))
    continue
  fi
  log="${out_dir}/${name}.log"
  start_ns=$(date +%s%N)
  (cd "${out_dir}" && "${build_dir}/${name}" >"${name}.log" 2>&1)
  status=$?
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  json="${out_dir}/BENCH_${name#bench_}.json"
  # bench_fig8_ber_energy (adders) and bench_table3_multiplier (mul8)
  # run their sweeps on both engines and print machine-readable
  # comparison lines; carry them into the JSON and enforce the speedup
  # floor / BER-deviation ceiling.
  engine_fields=""
  if { [ "${name}" = "bench_fig8_ber_energy" ] || \
       [ "${name}" = "bench_table3_multiplier" ]; } && \
     [ "${status}" -eq 0 ]; then
    speedup=$(sed -n 's/^LEVELIZED_SPEEDUP //p' "${log}" | tail -n 1)
    ber_dev=$(sed -n 's/^LEVELIZED_BER_DEV_PP //p' "${log}" | tail -n 1)
    if [ -n "${speedup}" ] && [ -n "${ber_dev}" ]; then
      engine_fields=",
  \"levelized_speedup\": ${speedup},
  \"levelized_ber_dev_pp\": ${ber_dev}"
      min_speedup="${VOSIM_MIN_ENGINE_SPEEDUP:-5}"
      max_dev="${VOSIM_MAX_BER_DEV_PP:-2.0}"
      if ! awk -v s="${speedup}" -v m="${min_speedup}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: levelized speedup ${speedup}x < ${min_speedup}x floor" >&2
        status=1
      fi
      if ! awk -v d="${ber_dev}" -v m="${max_dev}" \
           'BEGIN{exit !(d <= m)}'; then
        echo "FAIL ${name}: BER deviation ${ber_dev}pp > ${max_dev}pp ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing LEVELIZED_SPEEDUP/LEVELIZED_BER_DEV_PP in log" >&2
      status=1
    fi
  fi
  # bench_pipeline sweeps the pipelined circuits on both engines'
  # clocked step_cycle paths and runs the closed-loop controller; gate
  # the cross-engine BER deviation (error-onset band), the closed-loop
  # energy saving vs the safest rung, and the batched levelized
  # clocked sweep's speedup over the event engine.
  if [ "${name}" = "bench_pipeline" ] && [ "${status}" -eq 0 ]; then
    seq_dev=$(sed -n 's/^SEQ_BER_DEV_PP //p' "${log}" | tail -n 1)
    cl_savings=$(sed -n 's/^CLOSED_LOOP_SAVINGS_PCT //p' "${log}" | tail -n 1)
    seq_speedup=$(sed -n 's/^SEQ_LEVELIZED_SPEEDUP //p' "${log}" | tail -n 1)
    seq_lane_width=$(sed -n 's/^SEQ_WIDE_WIDTH //p' "${log}" | tail -n 1)
    seq_wide=$(sed -n 's/^SEQ_WIDE_SPEEDUP //p' "${log}" | tail -n 1)
    if [ -n "${seq_dev}" ] && [ -n "${cl_savings}" ] && \
       [ -n "${seq_speedup}" ]; then
      engine_fields=",
  \"seq_levelized_speedup\": ${seq_speedup},
  \"seq_ber_dev_pp\": ${seq_dev},
  \"closed_loop_savings_pct\": ${cl_savings},
  \"seq_wide_width\": ${seq_lane_width:-64},
  \"seq_wide_speedup\": ${seq_wide:-1.00}"
      max_dev="${VOSIM_MAX_BER_DEV_PP:-2.0}"
      min_savings="${VOSIM_MIN_CLOSED_LOOP_SAVINGS_PCT:-10}"
      min_seq_speedup="${VOSIM_MIN_SEQ_ENGINE_SPEEDUP:-10}"
      if ! awk -v d="${seq_dev}" -v m="${max_dev}" \
           'BEGIN{exit !(d <= m)}'; then
        echo "FAIL ${name}: sequential BER deviation ${seq_dev}pp > ${max_dev}pp ceiling" >&2
        status=1
      fi
      if ! awk -v s="${cl_savings}" -v m="${min_savings}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: closed-loop savings ${cl_savings}% < ${min_savings}% floor" >&2
        status=1
      fi
      if ! awk -v s="${seq_speedup}" -v m="${min_seq_speedup}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: sequential levelized speedup ${seq_speedup}x < ${min_seq_speedup}x floor" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing SEQ_BER_DEV_PP/CLOSED_LOOP_SAVINGS_PCT/SEQ_LEVELIZED_SPEEDUP in log" >&2
      status=1
    fi
    # Same observers-off noise-floor gate on the clocked batched path.
    prov_oh=$(sed -n 's/^PROVENANCE_OVERHEAD_PCT //p' "${log}" | tail -n 1)
    if [ -n "${prov_oh}" ]; then
      engine_fields="${engine_fields},
  \"provenance_overhead_pct\": ${prov_oh}"
      max_oh="${VOSIM_MAX_PROVENANCE_OVERHEAD_PCT:-2}"
      if ! awk -v o="${prov_oh}" -v m="${max_oh}" \
           'BEGIN{exit !(o <= m)}'; then
        echo "FAIL ${name}: observers-off overhead ${prov_oh}% > ${max_oh}% ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing PROVENANCE_OVERHEAD_PCT in log" >&2
      status=1
    fi
  fi
  # bench_fig5_ber_bitpos reruns its VOS sweep with ErrorProvenance
  # observers attached and derives the per-bit BER from culprit
  # attribution; the attributed table must reproduce the output-diff
  # table (the PO net is in its own fan-in cone, so attribution is
  # exact by construction — DESIGN.md §13).
  if [ "${name}" = "bench_fig5_ber_bitpos" ] && [ "${status}" -eq 0 ]; then
    prov_dev=$(sed -n 's/^FIG5_PROV_DEV_PP //p' "${log}" | tail -n 1)
    if [ -n "${prov_dev}" ]; then
      engine_fields=",
  \"fig5_prov_dev_pp\": ${prov_dev}"
      max_prov_dev="${VOSIM_MAX_FIG5_PROV_DEV_PP:-0.5}"
      if ! awk -v d="${prov_dev}" -v m="${max_prov_dev}" \
           'BEGIN{exit !(d <= m)}'; then
        echo "FAIL ${name}: provenance per-bit BER deviation ${prov_dev}pp > ${max_prov_dev}pp ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing FIG5_PROV_DEV_PP in log" >&2
      status=1
    fi
  fi
  # bench_ext_app_pareto replays workloads through the statistical
  # model and the gate-level simulator; gate the application-level
  # quality deviation between the two.
  if [ "${name}" = "bench_ext_app_pareto" ] && [ "${status}" -eq 0 ]; then
    q_dev=$(sed -n 's/^MODEL_QUALITY_DEV //p' "${log}" | tail -n 1)
    q_dev_mean=$(sed -n 's/^MODEL_QUALITY_DEV_MEAN //p' "${log}" | tail -n 1)
    if [ -n "${q_dev}" ] && [ -n "${q_dev_mean}" ]; then
      engine_fields=",
  \"model_quality_dev_pp\": ${q_dev},
  \"model_quality_dev_mean_pp\": ${q_dev_mean}"
      max_q_dev="${VOSIM_MAX_MODEL_QUALITY_DEV_PP:-35}"
      if ! awk -v d="${q_dev}" -v m="${max_q_dev}" \
           'BEGIN{exit !(d <= m)}'; then
        echo "FAIL ${name}: model quality deviation ${q_dev}pp > ${max_q_dev}pp ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing MODEL_QUALITY_DEV in log" >&2
      status=1
    fi
  fi
  # bench_perf_speedup ends with the wide-lane A/B: the Table-3 mul8
  # sweep at 64 lanes vs the widest accelerated lane width. Three
  # checks: a build that compiled SIMD acceleration must report a wide
  # width (> 64) at all, an explicit wide request must actually deliver
  # that many lanes per pass (a broken CPUID/dispatch path would
  # otherwise pass every correctness test and quietly ship only the
  # scalar engine), and the wide/64 wall-clock ratio must stay above a
  # coarse floor. The floor is a regression tripwire, not a performance
  # claim: at deep over-scaling the sweep is dominated by per-lane
  # serial event walks (width-invariant work), so wide words hover near
  # parity — which is also why auto dispatch defaults to 64 — see
  # DESIGN.md §7 for the measured breakdown.
  if [ "${name}" = "bench_perf_speedup" ] && [ "${status}" -eq 0 ]; then
    simd_compiled=$(sed -n 's/^SIMD_COMPILED //p' "${log}" | tail -n 1)
    wide_width=$(sed -n 's/^WIDE_WIDTH //p' "${log}" | tail -n 1)
    wide_lpp=$(sed -n 's/^WIDE_LANES_PER_PASS //p' "${log}" | tail -n 1)
    wide_speedup=$(sed -n 's/^WIDE_SPEEDUP //p' "${log}" | tail -n 1)
    if [ -n "${simd_compiled}" ] && [ -n "${wide_width}" ] && \
       [ -n "${wide_speedup}" ]; then
      engine_fields=",
  \"simd_compiled\": \"${simd_compiled}\",
  \"wide_width\": ${wide_width},
  \"wide_speedup\": ${wide_speedup}"
      if [ "${simd_compiled}" != "none" ] && [ "${wide_width}" = "64" ]; then
        echo "FAIL ${name}: SIMD build (${simd_compiled}) reports no wide lane width" >&2
        status=1
      fi
      if [ "${wide_lpp:-0}" != "${wide_width}" ]; then
        echo "FAIL ${name}: requested ${wide_width}-lane engine delivered ${wide_lpp:-?} lanes/pass" >&2
        status=1
      fi
      min_wide="${VOSIM_MIN_WIDE_SPEEDUP:-0.4}"
      if ! awk -v s="${wide_speedup}" -v m="${min_wide}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: wide-lane speedup ${wide_speedup}x < ${min_wide}x floor" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing SIMD_COMPILED/WIDE_WIDTH/WIDE_SPEEDUP in log" >&2
      status=1
    fi
    # Observers-off noise-floor gate: the SimObserver dispatch guard
    # must stay a single branch (DESIGN.md §13).
    prov_oh=$(sed -n 's/^PROVENANCE_OVERHEAD_PCT //p' "${log}" | tail -n 1)
    if [ -n "${prov_oh}" ]; then
      engine_fields="${engine_fields},
  \"provenance_overhead_pct\": ${prov_oh}"
      max_oh="${VOSIM_MAX_PROVENANCE_OVERHEAD_PCT:-2}"
      if ! awk -v o="${prov_oh}" -v m="${max_oh}" \
           'BEGIN{exit !(o <= m)}'; then
        echo "FAIL ${name}: observers-off overhead ${prov_oh}% > ${max_oh}% ceiling" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing PROVENANCE_OVERHEAD_PCT in log" >&2
      status=1
    fi
  fi
  # bench_fleet characterizes the pipe2-mul8 ladder once and serves it
  # to a chip-instance Monte-Carlo population; gate the serving-phase
  # throughput (chips/sec — a regression tripwire for the per-chip
  # closed-loop path) and carry the in-process parallel efficiency and
  # fleet-wide energy spread into the JSON.
  if [ "${name}" = "bench_fleet" ] && [ "${status}" -eq 0 ]; then
    fleet_tps=$(sed -n 's/^FLEET_THROUGHPUT //p' "${log}" | tail -n 1)
    fleet_eff=$(sed -n 's/^FLEET_PARALLEL_EFFICIENCY //p' "${log}" | tail -n 1)
    fleet_spread=$(sed -n 's/^FLEET_ENERGY_SPREAD_PCT //p' "${log}" | tail -n 1)
    if [ -n "${fleet_tps}" ]; then
      engine_fields=",
  \"fleet_throughput_cps\": ${fleet_tps},
  \"fleet_parallel_efficiency\": ${fleet_eff:-0},
  \"fleet_energy_spread_pct\": ${fleet_spread:-0}"
      min_tps="${VOSIM_MIN_FLEET_TPS:-20}"
      if ! awk -v s="${fleet_tps}" -v m="${min_tps}" \
           'BEGIN{exit !(s >= m)}'; then
        echo "FAIL ${name}: fleet throughput ${fleet_tps} chips/s < ${min_tps} floor" >&2
        status=1
      fi
    else
      echo "FAIL ${name}: missing FLEET_THROUGHPUT in log" >&2
      status=1
    fi
  fi
  # The exit-time telemetry snapshot every bench prints (src/obs):
  # carried into the JSON so a perf regression comes with its own
  # counters (patterns simulated, lane words, cache traffic).
  metrics_field=""
  metrics_json=$(sed -n 's/^BENCH_METRICS_JSON //p' "${log}" | tail -n 1)
  if [ -n "${metrics_json}" ]; then
    metrics_field=",
  \"metrics\": ${metrics_json}"
  fi
  cat >"${json}" <<EOF
{
  "bench": "${name}",
  "patterns_per_triad": ${VOSIM_PATTERNS},
  "wall_seconds": ${wall_s},
  "exit_code": ${status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "$(basename "${log}")"${engine_fields}${metrics_field}
}
EOF
  if [ "${status}" -ne 0 ]; then
    echo "FAIL ${name} (exit ${status}, ${wall_s}s) -> ${json}"
    failures=$((failures + 1))
  else
    echo "ok   ${name} (${wall_s}s) -> ${json}"
  fi
done

# ---- smoke campaign: tiny grid + resume check through vosim_cli ----
total="${#benches[@]}"
if [ "${run_smoke}" -eq 1 ]; then
  total=$((total + 1))
  cli="${build_dir}/vosim_cli"
  smoke_status=0
  store="${out_dir}/campaign_smoke.jsonl"
  log="${out_dir}/campaign_smoke.log"
  smoke_patterns=300
  smoke_args=(campaign --workloads fir,kmeans --circuits rca16
              --backends model --max-triads 4 --patterns "${smoke_patterns}"
              --train-patterns 1000 --store "${store}")
  trace_file="${out_dir}/campaign_smoke_trace.json"
  metrics_file="${out_dir}/campaign_smoke_metrics.json"
  rm -f "${store}" "${trace_file}" "${metrics_file}"
  hit_rate=0
  start_ns=$(date +%s%N)
  if [ -x "${cli}" ]; then
    # Pass 1 computes the 2x1x4 grid; pass 2 must answer every cell
    # from the JSONL store (resume semantics, DESIGN.md §9). The
    # second pass doubles as the telemetry smoke: --trace must produce
    # a Perfetto-loadable trace and --metrics-json a parseable
    # snapshot (DESIGN.md §12).
    (cd "${out_dir}" && "${cli}" "${smoke_args[@]}" >"${log}" 2>&1) || smoke_status=1
    cells=$(sed -n 's/^campaign: \([0-9]*\) cells.*/\1/p' "${log}" | tail -n 1)
    (cd "${out_dir}" && "${cli}" "${smoke_args[@]}" \
       --trace "${trace_file}" --metrics-json "${metrics_file}" \
       >>"${log}" 2>&1) || smoke_status=1
    reused=$(sed -n 's/^campaign: [0-9]* cells (\([0-9]*\) reused.*/\1/p' "${log}" | tail -n 1)
    if [ "${smoke_status}" -eq 0 ] && { [ -z "${cells}" ] || \
         [ "${cells}" -eq 0 ] || [ "${reused:-0}" != "${cells}" ]; }; then
      echo "FAIL campaign_smoke: resume reused ${reused:-?} of ${cells:-?} cells" >&2
      smoke_status=1
    fi
    # Provenance artifact (DESIGN.md §13): a tiny gate-level campaign
    # with ErrorProvenance on. The metrics snapshot must carry the
    # provenance.campaign counters — proof the observers attached and
    # published — and both files ride the CI artifact upload.
    prov_store="${out_dir}/campaign_smoke_prov.jsonl"
    prov_metrics="${out_dir}/campaign_smoke_prov_metrics.json"
    rm -f "${prov_store}" "${prov_metrics}"
    (cd "${out_dir}" && "${cli}" campaign --workloads fir --circuits rca16 \
       --backends sim-levelized --max-triads 3 --patterns 200 \
       --provenance --top-culprits 3 --store "${prov_store}" \
       --metrics-json "${prov_metrics}" >>"${log}" 2>&1) || smoke_status=1
    if ! grep -q '"provenance.campaign' "${prov_metrics}" 2>/dev/null; then
      echo "FAIL campaign_smoke: provenance counters missing from $(basename "${prov_metrics}")" >&2
      smoke_status=1
    fi
    for f in "${trace_file}" "${metrics_file}" "${prov_metrics}"; do
      if [ ! -s "${f}" ]; then
        echo "FAIL campaign_smoke: telemetry file $(basename "${f}") missing or empty" >&2
        smoke_status=1
      elif command -v python3 >/dev/null 2>&1; then
        if ! python3 -c 'import json, sys; json.load(open(sys.argv[1]))' \
             "${f}" 2>>"${log}"; then
          echo "FAIL campaign_smoke: $(basename "${f}") is not valid JSON" >&2
          smoke_status=1
        fi
      fi
    done
    hit_rate=$(awk -v r="${reused:-0}" -v c="${cells:-0}" \
               'BEGIN{printf "%.3f", (c > 0) ? r / c : 0}')
    echo "CACHE_HIT_RATE ${hit_rate}"
    min_hit="${VOSIM_MIN_CACHE_HIT_RATE:-0}"
    if ! awk -v h="${hit_rate}" -v m="${min_hit}" 'BEGIN{exit !(h >= m)}'; then
      echo "FAIL campaign_smoke: cache hit rate ${hit_rate} < ${min_hit} floor" >&2
      smoke_status=1
    fi
  else
    echo "FAIL campaign_smoke: missing ${cli}" >&2
    smoke_status=1
    cells=0
    reused=0
  fi
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  # The pass-2 snapshot file is one JSON object per line; embed it so
  # the committed BENCH json carries the campaign's own counters.
  telemetry_field=""
  if [ -s "${metrics_file}" ]; then
    telemetry_field=",
  \"telemetry\": $(tail -n 1 "${metrics_file}")"
  fi
  cat >"${out_dir}/BENCH_campaign_smoke.json" <<EOF
{
  "bench": "campaign_smoke",
  "patterns_per_triad": ${smoke_patterns},
  "wall_seconds": ${wall_s},
  "exit_code": ${smoke_status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "campaign_smoke.log",
  "grid_cells": ${cells:-0},
  "resumed_cells": ${reused:-0},
  "cache_hit_rate": ${hit_rate},
  "trace": "campaign_smoke_trace.json",
  "store": "campaign_smoke.jsonl",
  "provenance_store": "campaign_smoke_prov.jsonl",
  "provenance_metrics": "campaign_smoke_prov_metrics.json"${telemetry_field}
}
EOF
  if [ "${smoke_status}" -ne 0 ]; then
    echo "FAIL campaign_smoke (${wall_s}s) -> BENCH_campaign_smoke.json"
    failures=$((failures + 1))
  else
    echo "ok   campaign_smoke (${wall_s}s, ${reused}/${cells} cells resumed, hit rate ${hit_rate}) -> BENCH_campaign_smoke.json"
  fi
fi

# ---- fleet_shard: sharded fleet campaign, merge bit-identity ----
# A 1000-chip Monte-Carlo grid (fir on rca16, per-chip gate-level
# levelized sim) runs once in a single process and once as 4 shard
# processes. Chip corners and the shard partition are content-hashed
# (DESIGN.md §11), so the merged shard stores must be bit-identical to
# the canonicalized single-process store; elapsed_s is the only
# legitimately differing field and --strip-timing zeroes it.
if [ "${run_fleet_shard}" -eq 1 ]; then
  total=$((total + 1))
  cli="${build_dir}/vosim_cli"
  fs_status=0
  fs_dir="${out_dir}/fleet_shard"
  log="${out_dir}/fleet_shard.log"
  fs_chips=1000
  fs_shards=4
  fs_args=(campaign --workloads fir --circuits rca16
           --backends sim-levelized --max-triads 1
           --chips "${fs_chips}" --patterns 300 --jobs 1)
  rm -rf "${fs_dir}"
  mkdir -p "${fs_dir}"
  : >"${log}"
  cells=0
  single_s=0
  shard_s=0
  eff=0
  start_ns=$(date +%s%N)
  if [ -x "${cli}" ]; then
    t0=$(date +%s%N)
    (cd "${fs_dir}" && "${cli}" "${fs_args[@]}" --store single.jsonl \
       >>"${log}" 2>&1) || fs_status=1
    t1=$(date +%s%N)
    # The shard processes run concurrently: shard wall time vs the
    # single-process time is the parallel-efficiency measurement.
    pids=()
    for i in $(seq 0 $((fs_shards - 1))); do
      (cd "${fs_dir}" && "${cli}" "${fs_args[@]}" \
         --shard "${i}/${fs_shards}" --store "shard${i}.jsonl" \
         >>"${log}" 2>&1) &
      pids+=($!)
    done
    for pid in "${pids[@]}"; do
      wait "${pid}" || fs_status=1
    done
    t2=$(date +%s%N)
    single_s=$(awk -v a="${t0}" -v b="${t1}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
    shard_s=$(awk -v a="${t1}" -v b="${t2}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
    shard_files=()
    for i in $(seq 0 $((fs_shards - 1))); do
      shard_files+=("shard${i}.jsonl")
    done
    (cd "${fs_dir}" && "${cli}" merge-store merged.jsonl \
       "${shard_files[@]}" --strip-timing >>"${log}" 2>&1) || fs_status=1
    (cd "${fs_dir}" && "${cli}" merge-store canonical.jsonl single.jsonl \
       --strip-timing >>"${log}" 2>&1) || fs_status=1
    if ! cmp -s "${fs_dir}/merged.jsonl" "${fs_dir}/canonical.jsonl"; then
      echo "FAIL fleet_shard: ${fs_shards}-shard merge differs from the single-process store" >&2
      fs_status=1
    fi
    cells=$(wc -l <"${fs_dir}/canonical.jsonl" 2>/dev/null || echo 0)
    if [ "${cells:-0}" -lt "${fs_chips}" ]; then
      echo "FAIL fleet_shard: ${cells} cells < ${fs_chips} chip instances" >&2
      fs_status=1
    fi
    eff=$(awk -v s="${single_s}" -v p="${shard_s}" -v n="${fs_shards}" \
          'BEGIN{printf "%.3f", (p > 0) ? s / (n * p) : 0}')
    min_eff="${VOSIM_MIN_SHARD_EFFICIENCY:-0.7}"
    cores=$(nproc 2>/dev/null || echo 1)
    if [ "${cores}" -ge "${fs_shards}" ]; then
      if ! awk -v e="${eff}" -v m="${min_eff}" 'BEGIN{exit !(e >= m)}'; then
        echo "FAIL fleet_shard: shard efficiency ${eff} < ${min_eff} floor on ${cores} cores" >&2
        fs_status=1
      fi
    else
      echo "note fleet_shard: efficiency ${eff} reported, gate skipped (${cores} < ${fs_shards} cores)"
    fi
    cp -f "${fs_dir}/merged.jsonl" "${out_dir}/fleet_shard_merged.jsonl"
  else
    echo "FAIL fleet_shard: missing ${cli}" >&2
    fs_status=1
  fi
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  cat >"${out_dir}/BENCH_fleet_shard.json" <<EOF
{
  "bench": "fleet_shard",
  "chips": ${fs_chips},
  "shards": ${fs_shards},
  "grid_cells": ${cells:-0},
  "single_process_seconds": ${single_s},
  "sharded_wall_seconds": ${shard_s},
  "shard_efficiency": ${eff},
  "wall_seconds": ${wall_s},
  "exit_code": ${fs_status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "fleet_shard.log",
  "store": "fleet_shard_merged.jsonl"
}
EOF
  if [ "${fs_status}" -ne 0 ]; then
    echo "FAIL fleet_shard (${wall_s}s) -> BENCH_fleet_shard.json"
    failures=$((failures + 1))
  else
    echo "ok   fleet_shard (${wall_s}s, ${cells} cells, efficiency ${eff}) -> BENCH_fleet_shard.json"
  fi
fi

# ---- serve_smoke: the daemon answers concurrent requests exactly ----
# Starts vosim_cli serve on a Unix socket, issues two campaign
# requests concurrently, then proves the streamed cells are
# bit-identical to the same grids run offline (after canonicalization;
# elapsed_s is wall clock and gets stripped on both sides).
if [ "${run_serve}" -eq 1 ]; then
  total=$((total + 1))
  cli="${build_dir}/vosim_cli"
  sv_status=0
  sv_dir="${out_dir}/serve_smoke"
  log="${out_dir}/serve_smoke.log"
  rm -rf "${sv_dir}"
  mkdir -p "${sv_dir}"
  : >"${log}"
  sock="${sv_dir}/vosim.sock"
  req1='{"cmd":"campaign","workloads":"fir","circuits":"rca16","backends":"model","max_triads":2,"patterns":300,"train_patterns":800,"chips":3}'
  req2='{"cmd":"campaign","workloads":"dot","circuits":"rca16","backends":"model","max_triads":2,"patterns":300,"train_patterns":800,"chips":3}'
  start_ns=$(date +%s%N)
  if [ -x "${cli}" ]; then
    (cd "${sv_dir}" && "${cli}" serve --socket "${sock}" \
       --store serve_store.jsonl >>"${log}" 2>&1) &
    serve_pid=$!
    for _ in $(seq 1 100); do
      [ -S "${sock}" ] && break
      sleep 0.1
    done
    if [ ! -S "${sock}" ]; then
      echo "FAIL serve_smoke: daemon socket never appeared" >&2
      sv_status=1
      kill "${serve_pid}" 2>/dev/null
    else
      "${cli}" request --socket "${sock}" --json "${req1}" \
        >"${sv_dir}/r1.txt" 2>>"${log}" &
      p1=$!
      "${cli}" request --socket "${sock}" --json "${req2}" \
        >"${sv_dir}/r2.txt" 2>>"${log}" &
      p2=$!
      wait "${p1}" || sv_status=1
      wait "${p2}" || sv_status=1
      "${cli}" request --socket "${sock}" --json '{"cmd":"shutdown"}' \
        >>"${log}" 2>&1 || sv_status=1
    fi
    wait "${serve_pid}" || sv_status=1
    for r in r1 r2; do
      if ! grep -q '"done":true' "${sv_dir}/${r}.txt" 2>/dev/null; then
        echo "FAIL serve_smoke: request ${r} missing the done footer" >&2
        sv_status=1
      fi
    done
    grep -hv '"done":true' "${sv_dir}/r1.txt" "${sv_dir}/r2.txt" \
      2>/dev/null >"${sv_dir}/served_cells.jsonl"
    (cd "${sv_dir}" && "${cli}" campaign --workloads fir,dot \
       --circuits rca16 --backends model --max-triads 2 --patterns 300 \
       --train-patterns 800 --chips 3 --store offline.jsonl \
       >>"${log}" 2>&1) || sv_status=1
    (cd "${sv_dir}" && "${cli}" merge-store served_canon.jsonl \
       served_cells.jsonl --strip-timing >>"${log}" 2>&1) || sv_status=1
    (cd "${sv_dir}" && "${cli}" merge-store offline_canon.jsonl \
       offline.jsonl --strip-timing >>"${log}" 2>&1) || sv_status=1
    if ! cmp -s "${sv_dir}/served_canon.jsonl" \
         "${sv_dir}/offline_canon.jsonl"; then
      echo "FAIL serve_smoke: served cells differ from the offline campaign" >&2
      sv_status=1
    fi
  else
    echo "FAIL serve_smoke: missing ${cli}" >&2
    sv_status=1
  fi
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  served=$(wc -l <"${sv_dir}/served_cells.jsonl" 2>/dev/null || echo 0)
  cat >"${out_dir}/BENCH_serve_smoke.json" <<EOF
{
  "bench": "serve_smoke",
  "served_cells": ${served:-0},
  "wall_seconds": ${wall_s},
  "exit_code": ${sv_status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "serve_smoke.log"
}
EOF
  if [ "${sv_status}" -ne 0 ]; then
    echo "FAIL serve_smoke (${wall_s}s) -> BENCH_serve_smoke.json"
    failures=$((failures + 1))
  else
    echo "ok   serve_smoke (${wall_s}s, ${served} cells served) -> BENCH_serve_smoke.json"
  fi
fi

# Track the perf trajectory in-tree: whatever BENCH_*.json this run
# refreshed is copied to the repo root (the canonical committed set).
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
if [ "${out_dir}" != "${repo_root}" ]; then
  cp -f "${out_dir}"/BENCH_*.json "${repo_root}/" 2>/dev/null || true
fi

echo "bench results: $((total - failures))/${total} ok, JSON in ${out_dir}"
[ "${failures}" -eq 0 ]
