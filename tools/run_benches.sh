#!/usr/bin/env bash
# Runs the vosim benchmark binaries and emits one machine-readable
# BENCH_<name>.json per bench with wall-clock time, pattern budget and
# exit status — the start of the repo's perf trajectory.
#
# Usage:
#   tools/run_benches.sh [BUILD_DIR] [BENCH_NAME...]
#
#   BUILD_DIR     directory containing the bench_* binaries (default: build)
#   BENCH_NAME    optional subset, e.g. "bench_fig5_ber_bitpos"; default is
#                 every bench_* binary found in BUILD_DIR.
#
# Environment:
#   VOSIM_PATTERNS   patterns per triad (default 200 here; the binaries
#                    themselves default to the paper's 20000).
#   VOSIM_BENCH_OUT  output directory for BENCH_*.json and bench CSVs
#                    (default: BUILD_DIR).
set -u

build_dir="${1:-build}"
shift 2>/dev/null || true

if [ ! -d "${build_dir}" ]; then
  echo "error: build dir '${build_dir}' not found (run cmake first)" >&2
  exit 2
fi

build_dir="$(cd "${build_dir}" && pwd)"
export VOSIM_PATTERNS="${VOSIM_PATTERNS:-200}"
out_dir="${VOSIM_BENCH_OUT:-${build_dir}}"
mkdir -p "${out_dir}"
out_dir="$(cd "${out_dir}" && pwd)"

if [ "$#" -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for f in "${build_dir}"/bench_*; do
    [ -x "$f" ] && [ ! -d "$f" ] && benches+=("$(basename "$f")")
  done
fi

if [ "${#benches[@]}" -eq 0 ]; then
  echo "error: no bench_* binaries in '${build_dir}'" >&2
  exit 2
fi

echo "running ${#benches[@]} benches with VOSIM_PATTERNS=${VOSIM_PATTERNS}"
failures=0
for name in "${benches[@]}"; do
  bin="${build_dir}/${name}"
  if [ ! -x "${bin}" ]; then
    echo "error: missing bench binary '${bin}'" >&2
    failures=$((failures + 1))
    continue
  fi
  log="${out_dir}/${name}.log"
  start_ns=$(date +%s%N)
  (cd "${out_dir}" && "${build_dir}/${name}" >"${name}.log" 2>&1)
  status=$?
  end_ns=$(date +%s%N)
  wall_s=$(awk -v a="${start_ns}" -v b="${end_ns}" 'BEGIN{printf "%.3f", (b-a)/1e9}')
  json="${out_dir}/BENCH_${name#bench_}.json"
  cat >"${json}" <<EOF
{
  "bench": "${name}",
  "patterns_per_triad": ${VOSIM_PATTERNS},
  "wall_seconds": ${wall_s},
  "exit_code": ${status},
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "log": "$(basename "${log}")"
}
EOF
  if [ "${status}" -ne 0 ]; then
    echo "FAIL ${name} (exit ${status}, ${wall_s}s) -> ${json}"
    failures=$((failures + 1))
  else
    echo "ok   ${name} (${wall_s}s) -> ${json}"
  fi
done

echo "bench results: $((${#benches[@]} - failures))/${#benches[@]} ok, JSON in ${out_dir}"
[ "${failures}" -eq 0 ]
