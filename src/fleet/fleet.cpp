#include "src/fleet/fleet.hpp"

#include <chrono>
#include <cmath>

#include "src/characterize/characterizer.hpp"
#include "src/characterize/triads.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace vosim {

std::uint64_t fleet_content_hash(std::uint64_t seed,
                                 const std::string& tag) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ChipInstance draw_chip_instance(const FleetConfig& config,
                                std::uint64_t chip) {
  VOSIM_EXPECTS(config.speed_sigma >= 0.0);
  VOSIM_EXPECTS(config.leakage_sigma >= 0.0);
  ChipInstance inst;
  inst.chip = chip;
  if (chip == 0) return inst;  // the nominal die
  // One Rng per chip, seeded by content: the draw order inside a chip
  // is fixed (speed, then leakage), so adding distributions later must
  // append draws, never reorder these two.
  Rng rng(fleet_content_hash(config.seed,
                             "chip|" + std::to_string(chip)));
  inst.delay_scale = std::exp(config.speed_sigma * rng.gaussian());
  inst.leakage_scale = std::exp(config.leakage_sigma * rng.gaussian());
  inst.variation_seed = fleet_content_hash(
      config.seed, "chip-die|" + std::to_string(chip));
  return inst;
}

TimingSimConfig apply_chip(const TimingSimConfig& base,
                           const ChipInstance& chip,
                           double within_die_sigma) {
  if (chip.chip == 0) return base;
  TimingSimConfig cfg = base;
  cfg.delay_scale = chip.delay_scale;
  cfg.leakage_scale = chip.leakage_scale;
  cfg.variation_sigma = within_die_sigma;
  cfg.variation_seed = chip.variation_seed;
  return cfg;
}

FleetOutcome run_fleet_study(const CellLibrary& lib,
                             const FleetStudyConfig& config) {
  VOSIM_EXPECTS(config.fleet.num_chips >= 1);
  VOSIM_EXPECTS(config.cycles > 0);

  const SeqDut seq = build_seq_circuit(config.circuit);
  const double cp_ns = seq_critical_path_ns(seq, lib);
  const auto triads = make_dut_triads(cp_ns);

  // Ladder characterization happens once, on the nominal die: the
  // controller's menu is a design-time artifact every chip shares —
  // per-chip truth comes from each die's own Razor monitors at run
  // time, not from re-characterizing the grid per chip.
  CharacterizeConfig ccfg;
  ccfg.num_patterns = config.ladder_patterns;
  ccfg.policy = config.policy;
  ccfg.pattern_seed = config.pattern_seed;
  ccfg.engine = EngineKind::kLevelized;
  ccfg.threads = config.jobs;
  const auto t0 = std::chrono::steady_clock::now();
  const auto lev = [&] {
    obs::ScopedSpan span("fleet.ladder", "fleet");
    span.arg("circuit", config.circuit)
        .arg("triads", static_cast<std::uint64_t>(triads.size()));
    return characterize_seq_dut(seq, lib, triads, ccfg);
  }();
  const auto t1 = std::chrono::steady_clock::now();

  FleetOutcome out;
  out.ladder_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.ladder = build_triad_ladder(lev);
  // Pin the safest rung to the signoff (relaxed-nominal) triad: the
  // operating point an open-loop fleet would have to hold.
  if (out.ladder.empty() || !(out.ladder.front().triad == triads[0]))
    out.ladder.insert(out.ladder.begin(),
                      TriadRung{triads[0], 0.0, lev[0].energy_per_op_fj});

  // One shared operand stream, generated once and reused by every chip
  // (the fleet serves the same workload; regenerating it per chip
  // would dominate small-circuit runs).
  const std::size_t nops = seq.num_operands();
  std::vector<std::uint64_t> operands(config.cycles * nops, 0);
  {
    DutPatternStream patterns(config.policy, seq.operand_widths(),
                              config.pattern_seed);
    for (std::size_t c = 0; c < config.cycles; ++c)
      patterns.next(std::span<std::uint64_t>(
          operands.data() + c * nops, nops));
  }

  TimingSimConfig base_cfg;
  base_cfg.engine = EngineKind::kLevelized;

  out.chips.resize(config.fleet.num_chips);
  auto& chips = out.chips;
  obs::metrics().counter("fleet.chips").add(config.fleet.num_chips);
  obs::LatencyHisto& chip_seconds =
      obs::metrics().histogram("fleet.chip.seconds");
  obs::Counter& switch_counter =
      obs::metrics().counter("fleet.controller.switches");
  obs::Counter& flagged_counter =
      obs::metrics().counter("fleet.cycles.flagged");
  obs::ScopedSpan serve_span("fleet.serve", "fleet");
  serve_span.arg("chips",
                 static_cast<std::uint64_t>(config.fleet.num_chips));
  const auto t2 = std::chrono::steady_clock::now();
  parallel_for(
      config.fleet.num_chips,
      [&](std::size_t i) {
        obs::ScopedSpan chip_span("fleet.chip", "fleet");
        chip_span.arg("chip", static_cast<std::uint64_t>(i + 1));
        obs::ScopedTimer chip_timer(chip_seconds);
        const ChipInstance chip =
            draw_chip_instance(config.fleet, i + 1);  // chips are 1-based
        ClosedLoopSeqUnit unit(
            seq, lib, out.ladder, config.control,
            apply_chip(base_cfg, chip, config.fleet.within_die_sigma));
        std::vector<ClosedLoopCycleResult> results(config.cycles);
        unit.run_batch(operands, config.cycles, results);

        ChipOutcome& oc = chips[i];
        oc.chip = chip;
        oc.final_rung = unit.controller().rung();
        oc.mean_energy_fj = unit.mean_energy_fj();
        oc.switches = unit.controller().switches();
        std::uint64_t flagged = 0, valid = 0, wrong = 0;
        for (const ClosedLoopCycleResult& r : results) {
          if (r.cycle.razor_flags != 0) ++flagged;
          if (!r.cycle.output_valid) continue;
          ++valid;
          if (r.cycle.captured != r.cycle.expected) ++wrong;
        }
        switch_counter.add(oc.switches);
        flagged_counter.add(flagged);
        oc.flagged_rate = static_cast<double>(flagged) /
                          static_cast<double>(config.cycles);
        oc.error_rate =
            valid > 0 ? static_cast<double>(wrong) /
                            static_cast<double>(valid)
                      : 0.0;
      },
      config.jobs);
  out.serve_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t2)
                          .count();

  std::vector<double> energies, rungs;
  energies.reserve(chips.size());
  rungs.reserve(chips.size());
  out.rung_histogram.assign(out.ladder.size(), 0);
  for (const ChipOutcome& oc : chips) {
    energies.push_back(oc.mean_energy_fj);
    rungs.push_back(static_cast<double>(oc.final_rung));
    ++out.rung_histogram[oc.final_rung];
  }
  out.energy_fj = spread_of(std::move(energies));
  out.final_rung = spread_of(std::move(rungs));
  return out;
}

}  // namespace vosim
