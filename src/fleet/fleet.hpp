// Fleet-scale Monte-Carlo: a population of chip instances, each a
// die-to-die process corner (delay/leakage scaling plus a within-die
// per-gate variation draw), serving a shared workload stream. The
// MPSoC voltage-margins literature (PAPERS.md, arXiv 2209.12134) shows
// guardbands are a per-chip *distribution*; this subsystem answers the
// fleet question — which ladder rung does the closed-loop controller
// pick on each die, and what is the fleet-wide energy/quality spread.
//
// Chip identity is content-hashed: chip i's corner derives from the
// fleet seed and the index alone, never from scheduling, shard or
// engine — so chip i is the same die on any engine, shard, or thread
// count (the same contract CampaignStore keys rely on, DESIGN.md §11).
#ifndef VOSIM_FLEET_FLEET_HPP
#define VOSIM_FLEET_FLEET_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/characterize/patterns.hpp"
#include "src/characterize/variability.hpp"
#include "src/runtime/closed_loop.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/library.hpp"

namespace vosim {

/// Die-to-die population parameters. num_chips == 0 disables the chip
/// axis (the single nominal die — chip id 0); a fleet draws chips
/// 1..num_chips from the log-normal corner distributions below.
struct FleetConfig {
  std::size_t num_chips = 0;
  /// Log-normal sigma of the die-wide gate-delay multiplier (the
  /// slow/fast-corner spread across dies).
  double speed_sigma = 0.05;
  /// Log-normal sigma of the die-wide leakage multiplier. Leakage
  /// spreads much wider than delay across real dies.
  double leakage_sigma = 0.15;
  /// Per-gate within-die sigma applied inside each chip instance
  /// (TimingSimConfig::variation_sigma), on top of the die corner.
  double within_die_sigma = 0.03;
  /// Fleet seed: every chip's corner and within-die draw is hashed
  /// from this and the chip index.
  std::uint64_t seed = 7;
};

/// One die of the fleet. Chip 0 is the nominal die (unit scales);
/// fleet members are 1-based.
struct ChipInstance {
  std::uint64_t chip = 0;
  double delay_scale = 1.0;
  double leakage_scale = 1.0;
  /// Within-die per-gate draw (TimingSimConfig::variation_seed).
  std::uint64_t variation_seed = 7;
};

/// FNV-1a of `tag` mixed with `seed` — the schedule-independent
/// content hash shared by chip drawing and store sharding.
std::uint64_t fleet_content_hash(std::uint64_t seed,
                                 const std::string& tag);

/// Draws chip `chip`'s corner from the fleet distributions. Pure
/// content: two calls agree on any process/thread/shard. Chip 0 always
/// returns the nominal die regardless of the sigmas.
ChipInstance draw_chip_instance(const FleetConfig& config,
                                std::uint64_t chip);

/// Applies a chip's corner to a simulator config: delay/leakage scale,
/// within-die sigma and the chip's own variation seed. Chip 0 returns
/// `base` untouched (bit-compatible with pre-fleet behavior).
TimingSimConfig apply_chip(const TimingSimConfig& base,
                           const ChipInstance& chip,
                           double within_die_sigma);

/// Closed-loop fleet study configuration: one pipelined circuit, one
/// shared ladder and workload stream, `fleet.num_chips` dies.
struct FleetStudyConfig {
  std::string circuit = "pipe2-mul8";  ///< seq registry spec
  FleetConfig fleet{.num_chips = 25};
  /// Ladder characterization budget (patterns per triad, nominal die).
  std::size_t ladder_patterns = 2000;
  /// Workload cycles each chip serves.
  std::size_t cycles = 4096;
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;  ///< shared stream across chips
  ClosedLoopConfig control;
  unsigned jobs = 0;  ///< shared-pool worker cap (0 = default)
};

/// One chip's closed-loop outcome.
struct ChipOutcome {
  ChipInstance chip;
  std::size_t final_rung = 0;   ///< rung held at the end of the run
  double mean_energy_fj = 0.0;  ///< per cycle, register energy included
  double flagged_rate = 0.0;    ///< Razor-flagged cycles / cycles
  double error_rate = 0.0;      ///< wrong valid outputs / valid outputs
  std::uint64_t switches = 0;   ///< controller rung switches
};

/// The fleet answer: per-chip outcomes (chip order) plus the
/// population distributions.
struct FleetOutcome {
  std::vector<TriadRung> ladder;  ///< safest (signoff) rung first
  std::vector<ChipOutcome> chips;
  DieSpread energy_fj;            ///< mean energy/cycle across chips
  DieSpread final_rung;           ///< rung index across chips
  /// Chips whose controller ended on each rung (ladder order).
  std::vector<std::size_t> rung_histogram;
  /// Wall-clock split: the shared one-time ladder characterization vs
  /// the per-chip serving phase (what FLEET_THROUGHPUT measures).
  double ladder_seconds = 0.0;
  double serve_seconds = 0.0;
};

/// Runs the study: characterizes the circuit's ladder once on the
/// nominal die (levelized grid fast path), generates one shared
/// operand stream, then walks every chip's closed-loop controller over
/// it in parallel on the shared pool. Bit-deterministic for a fixed
/// config across thread counts.
FleetOutcome run_fleet_study(const CellLibrary& lib,
                             const FleetStudyConfig& config);

}  // namespace vosim

#endif  // VOSIM_FLEET_FLEET_HPP
