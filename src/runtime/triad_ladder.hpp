// Triad ladder: the ordered menu of operating points the dynamic
// speculation controller climbs between (safest/most expensive first,
// most aggressive/cheapest last).
#ifndef VOSIM_RUNTIME_TRIAD_LADDER_HPP
#define VOSIM_RUNTIME_TRIAD_LADDER_HPP

#include <vector>

#include "src/characterize/characterizer.hpp"

namespace vosim {

/// One rung: an operating point with its characterized statistics.
struct TriadRung {
  OperatingTriad triad;
  double expected_ber = 0.0;
  double energy_per_op_fj = 0.0;
};

/// Builds a Pareto-filtered ladder from characterization results:
/// rungs are sorted by energy descending; any triad that is both more
/// expensive and more error-prone than another is dropped.
std::vector<TriadRung> build_triad_ladder(
    const std::vector<TriadResult>& results);

}  // namespace vosim

#endif  // VOSIM_RUNTIME_TRIAD_LADDER_HPP
