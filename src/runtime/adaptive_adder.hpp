// Deprecated adder-specific adaptive runtime, kept as a thin shim over
// AdaptiveVosUnit (src/runtime/adaptive_unit.hpp), which manages any
// DutNetlist — including multipliers and MAC trees — under the same
// dynamic speculation controller.
#ifndef VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP
#define VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP

#include "src/runtime/adaptive_unit.hpp"
#include "src/sim/vos_adder.hpp"

namespace vosim {

/// Result of one adaptive addition (alias of the generic result).
using AdaptiveAddResult = AdaptiveOpResult;

/// Deprecated: a copy-converting wrapper over AdaptiveVosUnit.
class [[deprecated("use AdaptiveVosUnit over to_dut(adder)")]]
AdaptiveVosAdder : private detail::DutHolder,
                   public AdaptiveVosUnit {
 public:
  AdaptiveVosAdder(const AdderNetlist& adder, const CellLibrary& lib,
                   std::vector<TriadRung> ladder,
                   const SpeculationConfig& config = {},
                   const TimingSimConfig& sim_config = {})
      : detail::DutHolder{to_dut(adder)},
        AdaptiveVosUnit(detail::DutHolder::dut, lib, std::move(ladder),
                        config, sim_config) {}

  // Not movable: the AdaptiveVosUnit base references the DutHolder base
  // of this same object, so a move would dangle into the moved-from
  // shim.
  AdaptiveVosAdder(AdaptiveVosAdder&&) = delete;
  AdaptiveVosAdder& operator=(AdaptiveVosAdder&&) = delete;

  AdaptiveAddResult add(std::uint64_t a, std::uint64_t b) {
    return apply(a, b);
  }
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP
