// Adaptive VOS adder: a hardware adder whose operating triad is managed
// at run time by the dynamic speculation controller — the end-to-end
// demonstration of the paper's "accurate to approximate mode" switching.
#ifndef VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP
#define VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP

#include <memory>
#include <vector>

#include "src/runtime/speculation.hpp"
#include "src/sim/vos_adder.hpp"

namespace vosim {

/// Result of one adaptive addition.
struct AdaptiveAddResult {
  std::uint64_t sampled = 0;
  std::uint64_t settled = 0;
  double energy_fj = 0.0;
  SpeculationAction action = SpeculationAction::kHold;
  std::size_t rung = 0;
};

/// Owns one timing-simulation engine per ladder rung (created lazily)
/// and routes every addition through the controller's current rung,
/// feeding the double-sampling observations back. The rung simulators
/// run on the backend selected by `sim_config.engine` — the levelized
/// engine makes long adaptive traces (e.g. the runtime benches) cheap
/// while the controller logic stays backend-agnostic.
class AdaptiveVosAdder {
 public:
  AdaptiveVosAdder(const AdderNetlist& adder, const CellLibrary& lib,
                   std::vector<TriadRung> ladder,
                   const SpeculationConfig& config = {},
                   const TimingSimConfig& sim_config = {});

  AdaptiveAddResult add(std::uint64_t a, std::uint64_t b);

  const DynamicSpeculationController& controller() const noexcept {
    return controller_;
  }
  const OperatingTriad& current_triad() const {
    return controller_.current().triad;
  }
  /// Backend every rung simulates on (from the TimingSimConfig).
  EngineKind engine_kind() const noexcept { return sim_config_.engine; }
  /// Mean energy per operation so far (fJ).
  double mean_energy_fj() const noexcept;

 private:
  VosAdderSim& sim_for_rung(std::size_t rung);

  const AdderNetlist& adder_;
  const CellLibrary& lib_;
  TimingSimConfig sim_config_;
  DynamicSpeculationController controller_;
  std::vector<std::unique_ptr<VosAdderSim>> sims_;  // one per rung, lazy
  std::uint64_t last_a_ = 0;
  std::uint64_t last_b_ = 0;
  double energy_total_fj_ = 0.0;
  std::uint64_t ops_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_ADAPTIVE_ADDER_HPP
