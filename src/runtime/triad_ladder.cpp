#include "src/runtime/triad_ladder.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// Energies within one part in 10⁹ are one rung cost-wise: measured
/// energies are floating-point sums, so exact == would let two triads
/// that cost the same (up to rounding noise) both survive the Pareto
/// filter with different BERs — the ladder would then contain a rung
/// strictly worse than its neighbor.
bool same_energy(double x, double y) {
  return std::abs(x - y) <=
         1e-9 * std::max(1.0, std::max(std::abs(x), std::abs(y)));
}

}  // namespace

std::vector<TriadRung> build_triad_ladder(
    const std::vector<TriadResult>& results) {
  VOSIM_EXPECTS(!results.empty());
  std::vector<TriadRung> all;
  all.reserve(results.size());
  for (const TriadResult& r : results)
    all.push_back(TriadRung{r.triad, r.ber, r.energy_per_op_fj});

  // Energy ascending, ties by BER ascending.
  std::sort(all.begin(), all.end(),
            [](const TriadRung& x, const TriadRung& y) {
              if (x.energy_per_op_fj != y.energy_per_op_fj)
                return x.energy_per_op_fj < y.energy_per_op_fj;
              return x.expected_ber < y.expected_ber;
            });

  // Pareto frontier: walking toward more expensive triads, keep a rung
  // only when it buys a strictly lower BER than everything cheaper.
  // Rungs whose energies tie (within tolerance) collapse onto the
  // lower-BER one — only it can sit on the frontier.
  std::vector<TriadRung> frontier;
  for (const TriadRung& rung : all) {
    if (!frontier.empty() &&
        same_energy(rung.energy_per_op_fj,
                    frontier.back().energy_per_op_fj)) {
      if (rung.expected_ber < frontier.back().expected_ber)
        frontier.back() = rung;
      continue;
    }
    if (frontier.empty() || rung.expected_ber < frontier.back().expected_ber)
      frontier.push_back(rung);
  }

  // Ladder convention: safest (most expensive) first.
  std::reverse(frontier.begin(), frontier.end());
  VOSIM_ENSURES(!frontier.empty());
  return frontier;
}

}  // namespace vosim
