#include "src/runtime/triad_ladder.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace vosim {

std::vector<TriadRung> build_triad_ladder(
    const std::vector<TriadResult>& results) {
  VOSIM_EXPECTS(!results.empty());
  std::vector<TriadRung> all;
  all.reserve(results.size());
  for (const TriadResult& r : results)
    all.push_back(TriadRung{r.triad, r.ber, r.energy_per_op_fj});

  // Energy ascending, ties by BER ascending.
  std::sort(all.begin(), all.end(),
            [](const TriadRung& x, const TriadRung& y) {
              if (x.energy_per_op_fj != y.energy_per_op_fj)
                return x.energy_per_op_fj < y.energy_per_op_fj;
              return x.expected_ber < y.expected_ber;
            });

  // Pareto frontier: walking toward more expensive triads, keep a rung
  // only when it buys a strictly lower BER than everything cheaper.
  std::vector<TriadRung> frontier;
  for (const TriadRung& rung : all) {
    if (frontier.empty() || rung.expected_ber < frontier.back().expected_ber)
      frontier.push_back(rung);
  }

  // Ladder convention: safest (most expensive) first.
  std::reverse(frontier.begin(), frontier.end());
  VOSIM_ENSURES(!frontier.empty());
  return frontier;
}

}  // namespace vosim
