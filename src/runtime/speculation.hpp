// Dynamic speculation controller (paper Section V last paragraphs,
// following the dynamic-speculation idea of reference [17]): monitor the
// runtime error rate with double sampling and move along the triad
// ladder to the cheapest operating point that respects a user-defined
// error margin.
#ifndef VOSIM_RUNTIME_SPECULATION_HPP
#define VOSIM_RUNTIME_SPECULATION_HPP

#include <cstdint>
#include <vector>

#include "src/runtime/error_monitor.hpp"
#include "src/runtime/triad_ladder.hpp"

namespace vosim {

/// Controller tuning.
struct SpeculationConfig {
  double ber_margin = 0.05;       ///< user-defined tolerable BER
  std::size_t window_ops = 512;   ///< estimation window per decision
  /// Step down (cheaper) only when the window BER is below
  /// margin * step_down_fraction — hysteresis against flapping.
  double step_down_fraction = 0.5;
  /// Minimum operations to dwell on a rung before another decision.
  std::size_t min_dwell_ops = 512;
};

/// Decision issued after an observation.
enum class SpeculationAction : std::uint8_t {
  kHold,
  kStepDown,  ///< move to a cheaper, riskier rung
  kStepUp,    ///< back off to a safer rung
};

/// Walks a triad ladder under a BER budget using double-sampled outputs.
class DynamicSpeculationController {
 public:
  DynamicSpeculationController(std::vector<TriadRung> ladder, int word_bits,
                               const SpeculationConfig& config = {});

  /// Feeds one operation's (sampled, settled) pair; returns the action
  /// taken after this observation.
  SpeculationAction observe(std::uint64_t sampled, std::uint64_t settled);

  const TriadRung& current() const { return ladder_.at(rung_); }
  std::size_t rung_index() const noexcept { return rung_; }
  const std::vector<TriadRung>& ladder() const noexcept { return ladder_; }
  const SpeculationConfig& config() const noexcept { return config_; }

  std::uint64_t switches() const noexcept { return switches_; }
  std::uint64_t ops_seen() const noexcept { return monitor_.total_ops(); }
  double window_ber() const noexcept { return monitor_.window_ber(); }

 private:
  SpeculationAction decide();

  std::vector<TriadRung> ladder_;
  SpeculationConfig config_;
  DoubleSamplingMonitor monitor_;
  std::size_t rung_ = 0;  // start at the safest rung
  std::size_t dwell_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_SPECULATION_HPP
