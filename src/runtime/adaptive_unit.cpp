#include "src/runtime/adaptive_unit.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

AdaptiveVosUnit::AdaptiveVosUnit(const DutNetlist& dut,
                                 const CellLibrary& lib,
                                 std::vector<TriadRung> ladder,
                                 const SpeculationConfig& config,
                                 const TimingSimConfig& sim_config)
    : dut_(dut),
      lib_(lib),
      sim_config_(sim_config),
      controller_(std::move(ladder), dut.output_width(), config),
      last_ops_(dut.num_operands(), 0) {
  sims_.resize(controller_.ladder().size());
}

VosDutSim& AdaptiveVosUnit::sim_for_rung(std::size_t rung) {
  VOSIM_EXPECTS(rung < sims_.size());
  if (!sims_[rung]) {
    sims_[rung] = std::make_unique<VosDutSim>(
        dut_, lib_, controller_.ladder()[rung].triad, sim_config_);
    // A freshly powered rung settles on the previous operands, like a
    // datapath after a DVFS transition completes.
    sims_[rung]->reset(last_ops_);
  }
  return *sims_[rung];
}

AdaptiveOpResult AdaptiveVosUnit::apply(
    std::span<const std::uint64_t> operands) {
  VOSIM_EXPECTS(operands.size() == last_ops_.size());
  const std::size_t rung = controller_.rung_index();
  VosDutSim& sim = sim_for_rung(rung);
  const VosOpResult r = sim.apply(operands);
  last_ops_.assign(operands.begin(), operands.end());
  energy_total_fj_ += r.energy_fj;
  ++ops_;

  AdaptiveOpResult out;
  out.sampled = r.sampled;
  out.settled = r.settled;
  out.energy_fj = r.energy_fj;
  out.action = controller_.observe(r.sampled, r.settled);
  if (out.action != SpeculationAction::kHold) {
    // Align the new rung's state with current data so its first
    // operation transitions from the right previous vector.
    sim_for_rung(controller_.rung_index()).reset(last_ops_);
  }
  out.rung = controller_.rung_index();
  return out;
}

AdaptiveOpResult AdaptiveVosUnit::apply(std::uint64_t a, std::uint64_t b) {
  VOSIM_EXPECTS(last_ops_.size() == 2);
  const std::uint64_t ops[2] = {a, b};
  return apply({ops, 2});
}

double AdaptiveVosUnit::mean_energy_fj() const noexcept {
  if (ops_ == 0) return 0.0;
  return energy_total_fj_ / static_cast<double>(ops_);
}

}  // namespace vosim
