// Closed-loop VOS control: climbs the TriadRung ladder from *measured*
// per-stage Razor error rates instead of open-loop speculation. The
// sensors are the DoubleSamplingMonitors inside the clocked pipeline
// simulator (src/seq/seq_sim.hpp) — shadow-vs-main samples produced by
// the simulator itself, the in-silicon feedback loop of
// timing-error-correction DVS (Kaul et al.) closed over our gate-level
// truth.
#ifndef VOSIM_RUNTIME_CLOSED_LOOP_HPP
#define VOSIM_RUNTIME_CLOSED_LOOP_HPP

#include <memory>
#include <vector>

#include "src/runtime/speculation.hpp"
#include "src/seq/seq_sim.hpp"

namespace vosim {

/// Controller tuning. The regulated signal is the worst per-stage
/// flagged-operation rate over the Razor monitor window — a rate the
/// hardware actually observes, unlike output BER.
struct ClosedLoopConfig {
  /// Tolerable flagged-op rate per stage (the quality floor).
  double op_error_margin = 0.05;
  /// Razor monitor window (cycles) per stage.
  std::size_t window_cycles = 256;
  /// Step down (cheaper) only when the measured rate is below
  /// margin × step_down_fraction — hysteresis against flapping.
  double step_down_fraction = 0.5;
  /// Minimum cycles on a rung before another decision.
  std::size_t min_dwell_cycles = 256;
  /// Re-probe backoff: after retreating from a rung that violated the
  /// floor, that rung is barred for this many decision windows, and the
  /// bar doubles on every failed re-probe (capped at ×64). Without it
  /// the controller would re-enter the bad rung after every dwell and
  /// the steady-state error rate would exceed the floor it promises.
  std::size_t reprobe_backoff_windows = 4;
};

/// The ladder-walking policy: feed it the measured worst-stage rate
/// every cycle; it answers hold / step-up / step-down. Pure decision
/// logic, so it is unit-testable without a simulator.
class ClosedLoopController {
 public:
  ClosedLoopController(std::size_t num_rungs,
                       const ClosedLoopConfig& config = {});

  /// One cycle's measurement: the worst windowed per-stage flagged-op
  /// rate and whether the window has filled since the last switch.
  /// Returns the action taken (the caller switches rungs and resets
  /// the monitors on anything but kHold).
  SpeculationAction observe(double worst_stage_rate, bool window_full);

  /// Number of upcoming observe() calls guaranteed to return kHold
  /// without evaluating the measured rate, because the minimum dwell or
  /// the sensor window cannot be satisfied earlier. Always >= 1: the
  /// n-th call is the first that may actually decide.
  /// `window_fill`/`window_capacity` describe the monitor window
  /// feeding observe() (one observation lands per cycle).
  std::size_t cycles_until_decision(std::size_t window_fill,
                                    std::size_t window_capacity) const;

  /// Accounts `n` guaranteed-hold observations at once — equivalent to
  /// n observe() calls that return early with kHold (they only bump the
  /// dwell counter). Precondition: n < cycles_until_decision(...).
  void advance_dwell(std::size_t n) noexcept { dwell_ += n; }

  std::size_t rung() const noexcept { return rung_; }
  std::size_t num_rungs() const noexcept { return num_rungs_; }
  std::uint64_t switches() const noexcept { return switches_; }
  const ClosedLoopConfig& config() const noexcept { return config_; }

  /// Rung currently barred by the re-probe backoff (num_rungs() when
  /// none).
  std::size_t barred_rung() const noexcept { return barred_rung_; }

 private:
  std::size_t num_rungs_;
  ClosedLoopConfig config_;
  std::size_t rung_ = 0;  // safest first
  std::size_t dwell_ = 0;
  std::uint64_t switches_ = 0;
  std::size_t barred_rung_;       // failed rung under backoff
  std::size_t barred_cooldown_ = 0;  // suppressed probes remaining
  std::size_t barred_penalty_ = 1;   // doubles per failed re-probe
};

/// Outcome of one closed-loop pipeline cycle.
struct ClosedLoopCycleResult {
  SeqCycleResult cycle;
  SpeculationAction action = SpeculationAction::kHold;
  std::size_t rung = 0;
};

/// A pipelined operator under closed-loop VOS control: one clocked
/// simulator per ladder rung (created lazily), every cycle routed
/// through the current rung, the controller fed from that rung's own
/// Razor monitors. A rung switch resets the new rung's pipeline (the
/// refill penalty a real DVS transition pays; refill outputs report
/// output_valid = false).
class ClosedLoopSeqUnit {
 public:
  /// `ladder` follows the build_triad_ladder convention: safest (most
  /// expensive) rung first.
  ClosedLoopSeqUnit(const SeqDut& seq, const CellLibrary& lib,
                    std::vector<TriadRung> ladder,
                    const ClosedLoopConfig& config = {},
                    const TimingSimConfig& sim_config = {});

  ClosedLoopCycleResult step_cycle(std::span<const std::uint64_t> operands);
  ClosedLoopCycleResult step_cycle(std::uint64_t a, std::uint64_t b);

  /// Runs `count` cycles (cycle c's operands at
  /// operands[c*num_operands(), ...), outcome in results[c]),
  /// equivalent to `count` step_cycle() calls. Cycles that the
  /// controller is guaranteed to hold through — the minimum dwell and
  /// the window refill after every rung switch — are streamed through
  /// the active rung's SeqSim::step_cycle_batch in one call; the
  /// controller then observes once with the dwell advanced in bulk.
  /// Once a rung's window is full and its dwell is served, decisions
  /// are due every cycle and the batch degenerates to scalar stepping,
  /// exactly like the scalar loop.
  void run_batch(std::span<const std::uint64_t> operands, std::size_t count,
                 std::span<ClosedLoopCycleResult> results);

  const ClosedLoopController& controller() const noexcept {
    return controller_;
  }
  const std::vector<TriadRung>& ladder() const noexcept { return ladder_; }
  const OperatingTriad& current_triad() const {
    return ladder_.at(controller_.rung()).triad;
  }
  const SeqDut& seq() const noexcept { return seq_; }
  /// Mean energy per cycle so far, register clock energy included (fJ).
  double mean_energy_fj() const noexcept;
  std::uint64_t cycles() const noexcept { return cycles_; }
  /// The active rung's simulator (e.g. to read its stage monitors).
  const SeqSim& current_sim() const;

 private:
  SeqSim& sim_for_rung(std::size_t rung);

  const SeqDut& seq_;
  const CellLibrary& lib_;
  std::vector<TriadRung> ladder_;
  ClosedLoopConfig config_;
  TimingSimConfig sim_config_;
  ClosedLoopController controller_;
  std::vector<std::unique_ptr<SeqSim>> sims_;  // one per rung, lazy
  std::vector<SeqCycleResult> batch_cycles_;   // run_batch scratch
  double energy_total_fj_ = 0.0;
  std::uint64_t cycles_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_CLOSED_LOOP_HPP
