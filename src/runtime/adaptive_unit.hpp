// Adaptive VOS unit: a hardware datapath operator (adder, multiplier,
// MAC tree — any DutNetlist) whose operating triad is managed at run
// time by the dynamic speculation controller — the end-to-end
// demonstration of the paper's "accurate to approximate mode"
// switching, generalized beyond adders.
#ifndef VOSIM_RUNTIME_ADAPTIVE_UNIT_HPP
#define VOSIM_RUNTIME_ADAPTIVE_UNIT_HPP

#include <memory>
#include <vector>

#include "src/runtime/speculation.hpp"
#include "src/sim/vos_dut.hpp"

namespace vosim {

/// Result of one adaptive operation.
struct AdaptiveOpResult {
  std::uint64_t sampled = 0;
  std::uint64_t settled = 0;
  double energy_fj = 0.0;
  SpeculationAction action = SpeculationAction::kHold;
  std::size_t rung = 0;
};

/// Owns one timing-simulation engine per ladder rung (created lazily)
/// and routes every operation through the controller's current rung,
/// feeding the double-sampling observations back. The rung simulators
/// run on the backend selected by `sim_config.engine` — the levelized
/// engine makes long adaptive traces (e.g. the runtime benches) cheap
/// while the controller logic stays backend-agnostic.
class AdaptiveVosUnit {
 public:
  AdaptiveVosUnit(const DutNetlist& dut, const CellLibrary& lib,
                  std::vector<TriadRung> ladder,
                  const SpeculationConfig& config = {},
                  const TimingSimConfig& sim_config = {});

  /// One clocked operation through the current rung.
  AdaptiveOpResult apply(std::span<const std::uint64_t> operands);
  /// Two-operand convenience (adders, multipliers).
  AdaptiveOpResult apply(std::uint64_t a, std::uint64_t b);

  const DynamicSpeculationController& controller() const noexcept {
    return controller_;
  }
  const OperatingTriad& current_triad() const {
    return controller_.current().triad;
  }
  const DutNetlist& dut() const noexcept { return dut_; }
  /// Backend every rung simulates on (from the TimingSimConfig).
  EngineKind engine_kind() const noexcept { return sim_config_.engine; }
  /// Mean energy per operation so far (fJ).
  double mean_energy_fj() const noexcept;

 private:
  VosDutSim& sim_for_rung(std::size_t rung);

  const DutNetlist& dut_;
  const CellLibrary& lib_;
  TimingSimConfig sim_config_;
  DynamicSpeculationController controller_;
  std::vector<std::unique_ptr<VosDutSim>> sims_;  // one per rung, lazy
  std::vector<std::uint64_t> last_ops_;
  double energy_total_fj_ = 0.0;
  std::uint64_t ops_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_ADAPTIVE_UNIT_HPP
