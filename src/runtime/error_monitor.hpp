// Runtime error estimation, emulating the double-sampling shadow
// registers of the paper's dynamic speculation reference [17]: the main
// register samples at Tclk, the shadow register samples after the
// circuit settled; a mismatch flags a timing error.
#ifndef VOSIM_RUNTIME_ERROR_MONITOR_HPP
#define VOSIM_RUNTIME_ERROR_MONITOR_HPP

#include <cstdint>
#include <deque>

namespace vosim {

/// Sliding-window bit-error-rate estimator over double-sampled outputs.
class DoubleSamplingMonitor {
 public:
  /// `word_bits` compared bits per operation; `window_ops` sliding
  /// window length used for the running estimate.
  DoubleSamplingMonitor(int word_bits, std::size_t window_ops);

  /// Feeds one operation: the value captured at the clock edge and the
  /// shadow (settled) value. Equivalent to record_word(sampled ^
  /// settled).
  void observe(std::uint64_t sampled, std::uint64_t settled);

  /// Word ingest for the batched clocked path: feeds one operation
  /// given the main-vs-shadow XOR difference directly (flagged bits =
  /// popcount of the word restricted to the compared width). Identical
  /// statistics to observe() — the batch path must not change what the
  /// monitor reports.
  void record_word(std::uint64_t diff);

  /// BER estimate over the current window.
  double window_ber() const noexcept;
  /// Fraction of operations in the window with any flagged bit.
  double window_op_error_rate() const noexcept;
  /// Lifetime counters.
  std::uint64_t total_ops() const noexcept { return total_ops_; }
  std::uint64_t total_flagged_ops() const noexcept { return total_err_ops_; }
  double lifetime_ber() const noexcept;

  std::size_t window_fill() const noexcept { return window_.size(); }
  std::size_t window_capacity() const noexcept { return window_ops_; }
  bool window_full() const noexcept { return window_.size() == window_ops_; }
  /// Clears the sliding window (used after a triad switch).
  void reset_window();

 private:
  int word_bits_;
  std::size_t window_ops_;
  std::deque<std::uint8_t> window_;  // flagged-bit count per op
  std::uint64_t window_bit_errors_ = 0;
  std::uint64_t window_err_ops_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_bit_errors_ = 0;
  std::uint64_t total_err_ops_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_RUNTIME_ERROR_MONITOR_HPP
