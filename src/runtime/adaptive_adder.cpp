#include "src/runtime/adaptive_adder.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

AdaptiveVosAdder::AdaptiveVosAdder(const AdderNetlist& adder,
                                   const CellLibrary& lib,
                                   std::vector<TriadRung> ladder,
                                   const SpeculationConfig& config,
                                   const TimingSimConfig& sim_config)
    : adder_(adder),
      lib_(lib),
      sim_config_(sim_config),
      controller_(std::move(ladder), adder.width + 1, config) {
  sims_.resize(controller_.ladder().size());
}

VosAdderSim& AdaptiveVosAdder::sim_for_rung(std::size_t rung) {
  VOSIM_EXPECTS(rung < sims_.size());
  if (!sims_[rung]) {
    sims_[rung] = std::make_unique<VosAdderSim>(
        adder_, lib_, controller_.ladder()[rung].triad, sim_config_);
    // A freshly powered rung settles on the previous operands, like a
    // datapath after a DVFS transition completes.
    sims_[rung]->reset(last_a_, last_b_);
  }
  return *sims_[rung];
}

AdaptiveAddResult AdaptiveVosAdder::add(std::uint64_t a, std::uint64_t b) {
  const std::size_t rung = controller_.rung_index();
  VosAdderSim& sim = sim_for_rung(rung);
  const VosAddResult r = sim.add(a, b);
  last_a_ = a;
  last_b_ = b;
  energy_total_fj_ += r.energy_fj;
  ++ops_;

  AdaptiveAddResult out;
  out.sampled = r.sampled;
  out.settled = r.settled;
  out.energy_fj = r.energy_fj;
  out.action = controller_.observe(r.sampled, r.settled);
  if (out.action != SpeculationAction::kHold) {
    // Align the new rung's state with current data so its first
    // operation transitions from the right previous vector.
    sim_for_rung(controller_.rung_index()).reset(a, b);
  }
  out.rung = controller_.rung_index();
  return out;
}

double AdaptiveVosAdder::mean_energy_fj() const noexcept {
  if (ops_ == 0) return 0.0;
  return energy_total_fj_ / static_cast<double>(ops_);
}

}  // namespace vosim
