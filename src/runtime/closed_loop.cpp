#include "src/runtime/closed_loop.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace vosim {

ClosedLoopController::ClosedLoopController(std::size_t num_rungs,
                                           const ClosedLoopConfig& config)
    : num_rungs_(num_rungs), config_(config), barred_rung_(num_rungs) {
  VOSIM_EXPECTS(num_rungs >= 1);
  VOSIM_EXPECTS(config.op_error_margin >= 0.0);
  VOSIM_EXPECTS(config.window_cycles >= 1);
  VOSIM_EXPECTS(config.step_down_fraction > 0.0 &&
                config.step_down_fraction <= 1.0);
}

SpeculationAction ClosedLoopController::observe(double worst_stage_rate,
                                                bool window_full) {
  ++dwell_;
  if (dwell_ < config_.min_dwell_cycles || !window_full)
    return SpeculationAction::kHold;

  // A measured violation backs off immediately toward the safe end and
  // bars the failing rung (exponential re-probe backoff): without the
  // bar, the controller would re-enter the bad rung after every dwell
  // and its steady-state error rate would exceed the promised floor.
  if (worst_stage_rate > config_.op_error_margin && rung_ > 0) {
    if (rung_ == barred_rung_) {
      barred_penalty_ = std::min<std::size_t>(barred_penalty_ * 2, 64);
    } else {
      barred_rung_ = rung_;
      barred_penalty_ = 1;
    }
    barred_cooldown_ = config_.reprobe_backoff_windows * barred_penalty_;
    --rung_;
    ++switches_;
    dwell_ = 0;
    return SpeculationAction::kStepUp;
  }
  // Surviving a full decision window on the barred rung clears the bar.
  if (rung_ == barred_rung_) {
    barred_rung_ = num_rungs_;
    barred_penalty_ = 1;
  }
  if (worst_stage_rate <
          config_.op_error_margin * config_.step_down_fraction &&
      rung_ + 1 < num_rungs_) {
    if (rung_ + 1 == barred_rung_ && barred_cooldown_ > 0) {
      --barred_cooldown_;  // suppressed probe
      dwell_ = 0;          // wait a fresh window before reconsidering
      return SpeculationAction::kHold;
    }
    ++rung_;
    ++switches_;
    dwell_ = 0;
    return SpeculationAction::kStepDown;
  }
  return SpeculationAction::kHold;
}

std::size_t ClosedLoopController::cycles_until_decision(
    std::size_t window_fill, std::size_t window_capacity) const {
  // observe() returns kHold before reading the rate whenever
  // dwell_ + i < min_dwell_cycles or the window is not yet full; one
  // observation lands per cycle, so the first call that may decide is
  // the max of the two deficits (and never before the very next call).
  const std::size_t need_dwell = config_.min_dwell_cycles > dwell_
                                     ? config_.min_dwell_cycles - dwell_
                                     : 0;
  const std::size_t need_fill =
      window_capacity > window_fill ? window_capacity - window_fill : 0;
  return std::max<std::size_t>({need_dwell, need_fill, 1});
}

ClosedLoopSeqUnit::ClosedLoopSeqUnit(const SeqDut& seq,
                                     const CellLibrary& lib,
                                     std::vector<TriadRung> ladder,
                                     const ClosedLoopConfig& config,
                                     const TimingSimConfig& sim_config)
    : seq_(seq),
      lib_(lib),
      ladder_(std::move(ladder)),
      config_(config),
      sim_config_(sim_config),
      controller_(ladder_.size(), config) {
  VOSIM_EXPECTS(!ladder_.empty());
  sims_.resize(ladder_.size());
}

SeqSim& ClosedLoopSeqUnit::sim_for_rung(std::size_t rung) {
  auto& slot = sims_.at(rung);
  if (!slot)
    slot = std::make_unique<SeqSim>(seq_, lib_, ladder_[rung].triad,
                                    sim_config_, config_.window_cycles);
  return *slot;
}

const SeqSim& ClosedLoopSeqUnit::current_sim() const {
  const auto& slot = sims_.at(controller_.rung());
  VOSIM_EXPECTS(slot != nullptr);
  return *slot;
}

ClosedLoopCycleResult ClosedLoopSeqUnit::step_cycle(
    std::span<const std::uint64_t> operands) {
  const std::size_t rung = controller_.rung();
  SeqSim& sim = sim_for_rung(rung);

  ClosedLoopCycleResult r;
  r.cycle = sim.step_cycle(operands);
  r.rung = rung;
  energy_total_fj_ += r.cycle.energy_fj;
  ++cycles_;

  r.action = controller_.observe(sim.worst_stage_op_error_rate(),
                                 sim.stage_monitor(0).window_full());
  if (r.action != SpeculationAction::kHold) {
    // The DVS transition flushes the new rung's pipeline: refill from a
    // clean state, and measure the new rung with fresh windows.
    SeqSim& next = sim_for_rung(controller_.rung());
    next.reset();
  }
  return r;
}

void ClosedLoopSeqUnit::run_batch(std::span<const std::uint64_t> operands,
                                  std::size_t count,
                                  std::span<ClosedLoopCycleResult> results) {
  const std::size_t nops = seq_.num_operands();
  VOSIM_EXPECTS(operands.size() == count * nops);
  VOSIM_EXPECTS(results.size() >= count);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t rung = controller_.rung();
    SeqSim& sim = sim_for_rung(rung);
    const DoubleSamplingMonitor& mon = sim.stage_monitor(0);
    const std::size_t n =
        std::min(count - done, controller_.cycles_until_decision(
                                   mon.window_fill(), mon.window_capacity()));
    batch_cycles_.resize(n);
    sim.step_cycle_batch(operands.subspan(done * nops, n * nops), n,
                         batch_cycles_);
    for (std::size_t i = 0; i < n; ++i) {
      ClosedLoopCycleResult& r = results[done + i];
      r.cycle = batch_cycles_[i];
      r.rung = rung;
      r.action = SpeculationAction::kHold;
      energy_total_fj_ += r.cycle.energy_fj;
      ++cycles_;
    }
    // The first n-1 observations are guaranteed early holds; fold them
    // into the dwell counter and run the real decision on the last one.
    controller_.advance_dwell(n - 1);
    ClosedLoopCycleResult& last = results[done + n - 1];
    last.action = controller_.observe(sim.worst_stage_op_error_rate(),
                                      sim.stage_monitor(0).window_full());
    if (last.action != SpeculationAction::kHold) {
      // The DVS transition flushes the new rung's pipeline (see
      // step_cycle).
      sim_for_rung(controller_.rung()).reset();
    }
    done += n;
  }
}

ClosedLoopCycleResult ClosedLoopSeqUnit::step_cycle(std::uint64_t a,
                                                    std::uint64_t b) {
  const std::uint64_t ops[2] = {a, b};
  return step_cycle(std::span<const std::uint64_t>(ops, 2));
}

double ClosedLoopSeqUnit::mean_energy_fj() const noexcept {
  return cycles_ == 0 ? 0.0
                      : energy_total_fj_ / static_cast<double>(cycles_);
}

}  // namespace vosim
