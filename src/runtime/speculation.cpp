#include "src/runtime/speculation.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

DynamicSpeculationController::DynamicSpeculationController(
    std::vector<TriadRung> ladder, int word_bits,
    const SpeculationConfig& config)
    : ladder_(std::move(ladder)),
      config_(config),
      monitor_(word_bits, config.window_ops) {
  VOSIM_EXPECTS(!ladder_.empty());
  VOSIM_EXPECTS(config_.ber_margin >= 0.0 && config_.ber_margin <= 1.0);
  VOSIM_EXPECTS(config_.step_down_fraction > 0.0 &&
                config_.step_down_fraction <= 1.0);
}

SpeculationAction DynamicSpeculationController::observe(
    std::uint64_t sampled, std::uint64_t settled) {
  monitor_.observe(sampled, settled);
  ++dwell_;
  if (dwell_ < config_.min_dwell_ops || !monitor_.window_full())
    return SpeculationAction::kHold;
  // Decisions happen once per epoch, not per operation: re-evaluating a
  // nearly unchanged window every cycle would multiply the chance of a
  // noise-induced switch (flapping).
  dwell_ = 0;
  return decide();
}

SpeculationAction DynamicSpeculationController::decide() {
  const double ber = monitor_.window_ber();

  if (ber > config_.ber_margin && rung_ > 0) {
    --rung_;  // too many errors: back off toward the safe end
    ++switches_;
    monitor_.reset_window();
    dwell_ = 0;
    return SpeculationAction::kStepUp;
  }
  if (ber < config_.ber_margin * config_.step_down_fraction &&
      rung_ + 1 < ladder_.size()) {
    // Clean margin: speculate on the next cheaper rung only if its
    // characterized BER also fits the budget (design-time prior).
    if (ladder_[rung_ + 1].expected_ber <= config_.ber_margin) {
      ++rung_;
      ++switches_;
      monitor_.reset_window();
      dwell_ = 0;
      return SpeculationAction::kStepDown;
    }
  }
  return SpeculationAction::kHold;
}

}  // namespace vosim
