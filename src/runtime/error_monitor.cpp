#include "src/runtime/error_monitor.hpp"

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

DoubleSamplingMonitor::DoubleSamplingMonitor(int word_bits,
                                             std::size_t window_ops)
    : word_bits_(word_bits), window_ops_(window_ops) {
  VOSIM_EXPECTS(word_bits >= 1 && word_bits <= 64);
  VOSIM_EXPECTS(window_ops >= 1);
}

void DoubleSamplingMonitor::observe(std::uint64_t sampled,
                                    std::uint64_t settled) {
  record_word(sampled ^ settled);
}

void DoubleSamplingMonitor::record_word(std::uint64_t diff) {
  const int flagged = popcount_u64(diff & mask_n(word_bits_));
  ++total_ops_;
  total_bit_errors_ += static_cast<std::uint64_t>(flagged);
  if (flagged > 0) ++total_err_ops_;

  window_.push_back(static_cast<std::uint8_t>(flagged));
  window_bit_errors_ += static_cast<std::uint64_t>(flagged);
  if (flagged > 0) ++window_err_ops_;
  if (window_.size() > window_ops_) {
    const std::uint8_t old = window_.front();
    window_.pop_front();
    window_bit_errors_ -= old;
    if (old > 0) --window_err_ops_;
  }
}

double DoubleSamplingMonitor::window_ber() const noexcept {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_bit_errors_) /
         (static_cast<double>(window_.size()) * word_bits_);
}

double DoubleSamplingMonitor::window_op_error_rate() const noexcept {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_err_ops_) /
         static_cast<double>(window_.size());
}

double DoubleSamplingMonitor::lifetime_ber() const noexcept {
  if (total_ops_ == 0) return 0.0;
  return static_cast<double>(total_bit_errors_) /
         (static_cast<double>(total_ops_) * word_bits_);
}

void DoubleSamplingMonitor::reset_window() {
  window_.clear();
  window_bit_errors_ = 0;
  window_err_ops_ = 0;
}

}  // namespace vosim
