#include "src/netlist/eval.hpp"

#include <algorithm>

#include "src/tech/cell.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::vector<std::uint8_t> evaluate_logic(
    const Netlist& netlist, std::span<const std::uint8_t> inputs) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(inputs.size() == netlist.primary_inputs().size());
  std::vector<std::uint8_t> values(netlist.num_nets(), 0);
  const auto pis = netlist.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    values[pis[i]] = inputs[i] ? 1 : 0;

  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    unsigned idx = 0;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i)
      idx |= static_cast<unsigned>(values[g.in[i]] & 1u) << i;
    values[g.out] =
        static_cast<std::uint8_t>((cell_truth(g.kind) >> idx) & 1u);
  }
  return values;
}

void evaluate_logic_packed(const Netlist& netlist,
                           std::span<const lanes::Word> pi_words,
                           std::span<lanes::Word> values) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(pi_words.size() == netlist.primary_inputs().size());
  VOSIM_EXPECTS(values.size() == netlist.num_nets());
  std::fill(values.begin(), values.end(), lanes::Word{0});
  const auto pis = netlist.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) values[pis[i]] = pi_words[i];
  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    values[g.out] = eval_cell_packed(
        g.kind, g.num_inputs > 0 ? values[g.in[0]] : lanes::Word{0},
        g.num_inputs > 1 ? values[g.in[1]] : lanes::Word{0},
        g.num_inputs > 2 ? values[g.in[2]] : lanes::Word{0});
  }
}

std::uint64_t pack_word(std::span<const std::uint8_t> values,
                        std::span<const NetId> nets) {
  VOSIM_EXPECTS(nets.size() <= 64);
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < nets.size(); ++i)
    if (values[nets[i]] != 0) w |= (1ULL << i);
  return w;
}

}  // namespace vosim
