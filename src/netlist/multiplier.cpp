#include "src/netlist/multiplier.hpp"

#include <string>
#include <utility>

#include "src/util/contracts.hpp"

namespace vosim {

std::string mul_arch_name(MulArch arch) {
  switch (arch) {
    case MulArch::kArray: return "array";
    case MulArch::kWallace: return "wallace";
  }
  return "?";
}

namespace {

struct SumCarry {
  NetId sum;
  NetId carry;
};

/// Full adder from library cells (two XORs plus a MAJ3 carry).
SumCarry full_adder(Netlist& nl, NetId x, NetId y, NetId z) {
  const NetId p = nl.add_gate(CellKind::kXor2, {x, y});
  return SumCarry{nl.add_gate(CellKind::kXor2, {p, z}),
                  nl.add_gate(CellKind::kMaj3, {x, y, z})};
}

/// Half adder (XOR/AND).
SumCarry half_adder(Netlist& nl, NetId x, NetId y) {
  return SumCarry{nl.add_gate(CellKind::kXor2, {x, y}),
                  nl.add_gate(CellKind::kAnd2, {x, y})};
}

}  // namespace

MultiplierNetlist build_array_multiplier(int width) {
  VOSIM_EXPECTS(width >= 2 && width <= 16);
  MultiplierNetlist out{.netlist = Netlist("mul" + std::to_string(width)),
                        .a = {},
                        .b = {},
                        .prod = {},
                        .width = width,
                        .arch = MulArch::kArray};
  Netlist& nl = out.netlist;
  for (int i = 0; i < width; ++i)
    out.a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    out.b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto uw = static_cast<std::size_t>(width);
  out.prod.assign(2 * uw, invalid_net);

  auto pp = [&](int i, int j) {
    return nl.add_gate(CellKind::kAnd2,
                       {out.a[static_cast<std::size_t>(i)],
                        out.b[static_cast<std::size_t>(j)]},
                       "pp" + std::to_string(i) + "_" + std::to_string(j));
  };

  // acc[i] holds the running-sum bit of weight (i + row); acc[width] is
  // the carry-out of the previous row (weight width + row - 1), which
  // aligns with this row's top column.
  std::vector<NetId> acc(uw + 1, invalid_net);
  for (int i = 0; i < width; ++i) acc[static_cast<std::size_t>(i)] = pp(i, 0);
  out.prod[0] = acc[0];

  for (int j = 1; j < width; ++j) {
    std::vector<NetId> next(uw + 1, invalid_net);
    NetId carry = invalid_net;
    for (int i = 0; i < width; ++i) {
      const NetId ppij = pp(i, j);
      const NetId prev = acc[static_cast<std::size_t>(i) + 1];
      SumCarry sc{invalid_net, invalid_net};
      if (prev == invalid_net && carry == invalid_net) {
        next[static_cast<std::size_t>(i)] = ppij;
        continue;
      }
      if (prev == invalid_net) {
        sc = half_adder(nl, ppij, carry);
      } else if (carry == invalid_net) {
        sc = half_adder(nl, ppij, prev);
      } else {
        sc = full_adder(nl, ppij, prev, carry);
      }
      next[static_cast<std::size_t>(i)] = sc.sum;
      carry = sc.carry;
    }
    next[uw] = carry;
    out.prod[static_cast<std::size_t>(j)] = next[0];
    acc = std::move(next);
  }

  // Remaining accumulator bits are the top product bits.
  for (int i = 1; i <= width; ++i)
    out.prod[uw - 1 + static_cast<std::size_t>(i)] =
        acc[static_cast<std::size_t>(i)];

  for (NetId bit : out.prod) {
    VOSIM_ENSURES(bit != invalid_net);
    nl.mark_output(bit);
  }
  nl.finalize();
  return out;
}

MultiplierNetlist build_wallace_multiplier(int width) {
  VOSIM_EXPECTS(width >= 2 && width <= 16);
  MultiplierNetlist out{.netlist = Netlist("wal" + std::to_string(width)),
                        .a = {},
                        .b = {},
                        .prod = {},
                        .width = width,
                        .arch = MulArch::kWallace};
  Netlist& nl = out.netlist;
  for (int i = 0; i < width; ++i)
    out.a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    out.b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto uw = static_cast<std::size_t>(width);
  out.prod.assign(2 * uw, invalid_net);

  // columns[c] holds the nets of weight c awaiting reduction.
  std::vector<std::vector<NetId>> columns(2 * uw);
  for (int i = 0; i < width; ++i)
    for (int j = 0; j < width; ++j)
      columns[static_cast<std::size_t>(i + j)].push_back(nl.add_gate(
          CellKind::kAnd2,
          {out.a[static_cast<std::size_t>(i)],
           out.b[static_cast<std::size_t>(j)]},
          "pp" + std::to_string(i) + "_" + std::to_string(j)));

  // Wallace reduction: compress every column with full/half adders until
  // no column holds more than two bits.
  auto needs_reduction = [&columns] {
    for (const auto& col : columns)
      if (col.size() > 2) return true;
    return false;
  };
  while (needs_reduction()) {
    std::vector<std::vector<NetId>> next(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const SumCarry sc =
            full_adder(nl, col[i], col[i + 1], col[i + 2]);
        next[c].push_back(sc.sum);
        if (c + 1 < next.size()) next[c + 1].push_back(sc.carry);
        i += 3;
      }
      if (col.size() - i == 2) {
        const SumCarry sc = half_adder(nl, col[i], col[i + 1]);
        next[c].push_back(sc.sum);
        if (c + 1 < next.size()) next[c + 1].push_back(sc.carry);
        i += 2;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
  }

  // Final two-row addition with a ripple of half/full adders.
  NetId carry = invalid_net;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const auto& col = columns[c];
    std::vector<NetId> addends(col.begin(), col.end());
    if (carry != invalid_net) addends.push_back(carry);
    carry = invalid_net;
    NetId sum = invalid_net;
    switch (addends.size()) {
      case 0: sum = nl.add_gate(CellKind::kTieLo, {}); break;
      case 1: sum = addends[0]; break;
      case 2: {
        const SumCarry sc = half_adder(nl, addends[0], addends[1]);
        sum = sc.sum;
        carry = sc.carry;
        break;
      }
      default: {
        VOSIM_ENSURES(addends.size() == 3);
        const SumCarry sc =
            full_adder(nl, addends[0], addends[1], addends[2]);
        sum = sc.sum;
        carry = sc.carry;
        break;
      }
    }
    out.prod[c] = sum;
  }
  // A structural carry out of the top column can exist, but it is
  // provably zero (w·w products fit in 2w bits); it is left unconnected
  // exactly as a synthesis flow would prune it.

  for (NetId bit : out.prod) {
    VOSIM_ENSURES(bit != invalid_net);
    nl.mark_output(bit);
  }
  nl.finalize();
  return out;
}

}  // namespace vosim
