// Structural Verilog export: lets generated netlists round-trip into a
// conventional EDA flow (simulation, synthesis cross-checks), like the
// gate-level HDL at the top of the paper's characterization flow
// (Fig. 4).
#ifndef VOSIM_NETLIST_VERILOG_HPP
#define VOSIM_NETLIST_VERILOG_HPP

#include <iosfwd>
#include <string>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// Writes the finalized netlist as a structural Verilog module using the
/// library cell names (INV_X1, NAND2_X1, ...). Input pins are A, B, C in
/// gate pin order; the output pin is Y. Tie cells become assigns.
void write_verilog(const Netlist& netlist, std::ostream& os);

/// Convenience wrapper returning the module text.
std::string to_verilog(const Netlist& netlist);

}  // namespace vosim

#endif  // VOSIM_NETLIST_VERILOG_HPP
