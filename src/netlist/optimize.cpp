#include "src/netlist/optimize.hpp"

#include <algorithm>

#include "src/netlist/eval.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

Netlist prune_dead_gates(const Netlist& netlist, PruneStats* stats,
                         std::vector<NetId>* net_map) {
  VOSIM_EXPECTS(netlist.finalized());

  // Mark nets reaching a primary output by walking drivers backwards.
  std::vector<std::uint8_t> live(netlist.num_nets(), 0);
  std::vector<NetId> stack(netlist.primary_outputs().begin(),
                           netlist.primary_outputs().end());
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = 1;
    const GateId g = netlist.driver(n);
    if (g == invalid_gate) continue;
    const Gate& gate = netlist.gate(g);
    for (std::uint8_t i = 0; i < gate.num_inputs; ++i)
      stack.push_back(gate.in[i]);
  }

  Netlist out(netlist.name());
  std::vector<NetId> map(netlist.num_nets(), invalid_net);
  // Keep all primary inputs, in order, to preserve the pinout.
  for (const NetId pi : netlist.primary_inputs())
    map[pi] = out.add_input(netlist.net_name(pi));
  // Re-emit live gates in topological order.
  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    if (!live[g.out]) continue;
    switch (g.num_inputs) {
      case 0:
        map[g.out] = out.add_gate(g.kind, {}, netlist.net_name(g.out));
        break;
      case 1:
        map[g.out] = out.add_gate(g.kind, {map[g.in[0]]},
                                  netlist.net_name(g.out));
        break;
      case 2:
        map[g.out] = out.add_gate(g.kind, {map[g.in[0]], map[g.in[1]]},
                                  netlist.net_name(g.out));
        break;
      default:
        map[g.out] =
            out.add_gate(g.kind, {map[g.in[0]], map[g.in[1]], map[g.in[2]]},
                         netlist.net_name(g.out));
        break;
    }
    VOSIM_ENSURES(map[g.out] != invalid_net);
  }
  for (const NetId po : netlist.primary_outputs()) {
    VOSIM_ENSURES(map[po] != invalid_net);
    out.mark_output(map[po]);
  }
  out.finalize();

  if (stats != nullptr) {
    stats->gates_before = netlist.num_gates();
    stats->gates_after = out.num_gates();
    stats->nets_before = netlist.num_nets();
    stats->nets_after = out.num_nets();
  }
  if (net_map != nullptr) *net_map = std::move(map);
  return out;
}

bool probably_equivalent(const Netlist& a, const Netlist& b,
                         std::uint64_t seed, int random_trials,
                         int exhaustive_limit_bits) {
  VOSIM_EXPECTS(a.finalized() && b.finalized());
  VOSIM_EXPECTS(a.primary_inputs().size() == b.primary_inputs().size());
  VOSIM_EXPECTS(a.primary_outputs().size() == b.primary_outputs().size());
  const auto n_in = static_cast<int>(a.primary_inputs().size());

  auto outputs_match = [&](const std::vector<std::uint8_t>& inputs) {
    const auto va = evaluate_logic(a, inputs);
    const auto vb = evaluate_logic(b, inputs);
    return pack_word(va, a.primary_outputs()) ==
           pack_word(vb, b.primary_outputs());
  };

  if (n_in <= exhaustive_limit_bits) {
    const std::uint64_t combos = 1ULL << n_in;
    for (std::uint64_t v = 0; v < combos; ++v) {
      std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n_in), 0);
      for (int i = 0; i < n_in; ++i)
        inputs[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((v >> i) & 1u);
      if (!outputs_match(inputs)) return false;
    }
    return true;
  }

  Rng rng(seed);
  for (int t = 0; t < random_trials; ++t) {
    std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n_in), 0);
    for (int i = 0; i < n_in; ++i)
      inputs[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rng.flip(0.5) ? 1 : 0);
    if (!outputs_match(inputs)) return false;
  }
  return true;
}

}  // namespace vosim
