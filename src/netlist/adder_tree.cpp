#include "src/netlist/adder_tree.hpp"

#include <bit>
#include <string>
#include <utility>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// Ripple-carry addition of two equal-width buses; returns the
/// (width+1)-bit result bus.
std::vector<NetId> ripple_sum(Netlist& nl, const std::vector<NetId>& x,
                              const std::vector<NetId>& y,
                              const std::string& tag) {
  VOSIM_EXPECTS(x.size() == y.size());
  const int width = static_cast<int>(x.size());
  std::vector<NetId> out(static_cast<std::size_t>(width) + 1, invalid_net);
  NetId c = invalid_net;
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const NetId p = nl.add_gate(CellKind::kXor2, {x[ui], y[ui]});
    if (c == invalid_net) {
      out[ui] = p;
      c = nl.add_gate(CellKind::kAnd2, {x[ui], y[ui]},
                      tag + "_c" + std::to_string(i + 1));
    } else {
      out[ui] = nl.add_gate(CellKind::kXor2, {p, c});
      c = nl.add_gate(CellKind::kMaj3, {x[ui], y[ui], c},
                      tag + "_c" + std::to_string(i + 1));
    }
  }
  out[static_cast<std::size_t>(width)] = c;
  return out;
}

constexpr bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

}  // namespace

AdderTreeNetlist build_adder_tree(int num_leaves, int leaf_width) {
  VOSIM_EXPECTS(is_pow2(num_leaves) && num_leaves >= 2);
  VOSIM_EXPECTS(leaf_width >= 2);
  VOSIM_EXPECTS(leaf_width + std::bit_width(
                    static_cast<unsigned>(num_leaves - 1)) <= max_word_bits);

  AdderTreeNetlist out{
      .netlist = Netlist("tree" + std::to_string(num_leaves) + "x" +
                         std::to_string(leaf_width)),
      .leaves = {},
      .sum = {},
      .leaf_width = leaf_width,
      .num_leaves = num_leaves};
  Netlist& nl = out.netlist;

  for (int l = 0; l < num_leaves; ++l) {
    std::vector<NetId> leaf;
    for (int i = 0; i < leaf_width; ++i)
      leaf.push_back(nl.add_input("x" + std::to_string(l) + "_" +
                                  std::to_string(i)));
    out.leaves.push_back(std::move(leaf));
  }

  // Reduce level by level; each level's adders emit one extra bit, so
  // all buses at a level share the same width and no precision is lost.
  std::vector<std::vector<NetId>> level = out.leaves;
  int depth = 0;
  while (level.size() > 1) {
    ++depth;
    std::vector<std::vector<NetId>> next;
    for (std::size_t k = 0; k + 1 < level.size(); k += 2)
      next.push_back(ripple_sum(nl, level[k], level[k + 1],
                                "l" + std::to_string(depth) + "_" +
                                    std::to_string(k / 2)));
    level = std::move(next);
  }
  out.sum = level.front();
  for (const NetId bit : out.sum) nl.mark_output(bit);
  nl.finalize();
  return out;
}

}  // namespace vosim
