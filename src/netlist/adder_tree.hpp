// Balanced adder-tree generator: the reduction datapath of dot products,
// FIR filters and convolution engines. Under VOS the final (widest)
// stage holds the longest carry chains, concentrating the errors —
// another "arithmetic configuration" for the paper's methodology.
#ifndef VOSIM_NETLIST_ADDER_TREE_HPP
#define VOSIM_NETLIST_ADDER_TREE_HPP

#include <vector>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// A generated reduction tree: leaves[i] is the i-th input bus
/// (LSB-first), sum is the full-precision result bus of width
/// leaf_width + ceil(log2(num_leaves)).
struct AdderTreeNetlist {
  Netlist netlist;
  std::vector<std::vector<NetId>> leaves;
  std::vector<NetId> sum;
  int leaf_width = 0;
  int num_leaves = 0;
};

/// Builds a balanced tree of ripple-carry adders summing `num_leaves`
/// operands of `leaf_width` bits without precision loss. num_leaves must
/// be a power of two >= 2.
AdderTreeNetlist build_adder_tree(int num_leaves, int leaf_width);

}  // namespace vosim

#endif  // VOSIM_NETLIST_ADDER_TREE_HPP
