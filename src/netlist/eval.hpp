// Zero-delay functional ("golden") evaluation of a netlist. Lives in
// the netlist module (it needs only the canonical cell truth tables) so
// structural passes can use it without depending on the simulators.
#ifndef VOSIM_NETLIST_EVAL_HPP
#define VOSIM_NETLIST_EVAL_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/cell.hpp"
#include "src/util/lanes.hpp"

namespace vosim {

/// Evaluates every net of the finalized netlist given primary-input
/// values (in primary-input order). Returns one 0/1 value per net.
std::vector<std::uint8_t> evaluate_logic(const Netlist& netlist,
                                         std::span<const std::uint8_t> inputs);

/// Lane-parallel evaluation of one cell function: bit k of the result
/// is cell_truth(kind) applied to bit k of each input word. Lane-wise
/// identical to the truth tables (SimEngine.PackedEvalMatchesTruthTables
/// checks every kind against every minterm). Templated on the lane word
/// so the 64-, 256- and 512-lane engines share one definition.
template <class W = lanes::Word>
constexpr W eval_cell_packed(CellKind kind, W a, W b, W c) {
  switch (kind) {
    case CellKind::kInv: return ~a;
    case CellKind::kBuf: return a;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kAnd2: return a & b;
    case CellKind::kOr2: return a | b;
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXnor2: return ~(a ^ b);
    case CellKind::kAoi21: return ~((a & b) | c);
    case CellKind::kOai21: return ~((a | b) & c);
    case CellKind::kAo21: return (a & b) | c;
    case CellKind::kMaj3: return (a & b) | (c & (a | b));
    case CellKind::kTieLo: return W{};
    case CellKind::kTieHi: return ~W{};
  }
  return W{};
}

/// Lane-parallel evaluate_logic: pi_words[i] holds one input pattern
/// per lane for primary input i; `values` (sized num_nets) receives one
/// packed word per net. Bit-for-bit the per-lane evaluate_logic result.
void evaluate_logic_packed(const Netlist& netlist,
                           std::span<const lanes::Word> pi_words,
                           std::span<lanes::Word> values);

/// Packs selected net values into a word, bit i = value of nets[i].
std::uint64_t pack_word(std::span<const std::uint8_t> values,
                        std::span<const NetId> nets);

}  // namespace vosim

#endif  // VOSIM_NETLIST_EVAL_HPP
