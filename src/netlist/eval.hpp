// Zero-delay functional ("golden") evaluation of a netlist. Lives in
// the netlist module (it needs only the canonical cell truth tables) so
// structural passes can use it without depending on the simulators.
#ifndef VOSIM_NETLIST_EVAL_HPP
#define VOSIM_NETLIST_EVAL_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// Evaluates every net of the finalized netlist given primary-input
/// values (in primary-input order). Returns one 0/1 value per net.
std::vector<std::uint8_t> evaluate_logic(const Netlist& netlist,
                                         std::span<const std::uint8_t> inputs);

/// Packs selected net values into a word, bit i = value of nets[i].
std::uint64_t pack_word(std::span<const std::uint8_t> values,
                        std::span<const NetId> nets);

}  // namespace vosim

#endif  // VOSIM_NETLIST_EVAL_HPP
