#include "src/netlist/approx_adders.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// Creates operand inputs (shared with adders.cpp semantics).
void make_operands(Netlist& nl, int width, std::vector<NetId>& a,
                   std::vector<NetId>& b) {
  for (int i = 0; i < width; ++i)
    a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(nl.add_input("b" + std::to_string(i)));
}

/// Accurate ripple chain over bits [lo, width): fills sum bits and
/// returns the carry-out. `cin` may be invalid_net (constant zero).
NetId ripple_upper(Netlist& nl, const std::vector<NetId>& a,
                   const std::vector<NetId>& b, int lo, int width, NetId cin,
                   std::vector<NetId>& sum) {
  NetId c = cin;
  for (int i = lo; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const NetId p = nl.add_gate(CellKind::kXor2, {a[ui], b[ui]},
                                "p" + std::to_string(i));
    if (c == invalid_net) {
      sum[ui] = p;
      c = nl.add_gate(CellKind::kAnd2, {a[ui], b[ui]},
                      "c" + std::to_string(i + 1));
    } else {
      sum[ui] = nl.add_gate(CellKind::kXor2, {p, c}, "sum" + std::to_string(i));
      c = nl.add_gate(CellKind::kMaj3, {a[ui], b[ui], c},
                      "c" + std::to_string(i + 1));
    }
  }
  return c;
}

AdderNetlist make_shell(const std::string& name, int width, AdderArch arch) {
  AdderNetlist out{.netlist = Netlist(name),
                   .a = {},
                   .b = {},
                   .cin = invalid_net,
                   .sum = {},
                   .width = width,
                   .arch = arch};
  make_operands(out.netlist, width, out.a, out.b);
  out.sum.resize(static_cast<std::size_t>(width) + 1, invalid_net);
  return out;
}

void finish(AdderNetlist& out) {
  for (NetId s : out.sum) out.netlist.mark_output(s);
  out.netlist.finalize();
}

}  // namespace

AdderNetlist build_lower_or(int width, int approx_bits) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(approx_bits >= 1 && approx_bits < width);
  AdderNetlist out = make_shell(
      "loa" + std::to_string(width) + "_" + std::to_string(approx_bits),
      width, AdderArch::kLowerOr);
  Netlist& nl = out.netlist;

  for (int i = 0; i < approx_bits; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    out.sum[ui] = nl.add_gate(CellKind::kOr2, {out.a[ui], out.b[ui]},
                              "sum" + std::to_string(i));
  }
  // Carry prediction into the accurate part: both MSBs of the lower
  // segment set means a carry almost surely crosses the boundary.
  const auto k = static_cast<std::size_t>(approx_bits - 1);
  const NetId cpred =
      nl.add_gate(CellKind::kAnd2, {out.a[k], out.b[k]}, "cpred");
  const NetId cout =
      ripple_upper(nl, out.a, out.b, approx_bits, width, cpred, out.sum);
  out.sum[static_cast<std::size_t>(width)] = cout;
  finish(out);
  return out;
}

AdderNetlist build_truncated(int width, int approx_bits) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(approx_bits >= 1 && approx_bits < width);
  AdderNetlist out = make_shell(
      "trunc" + std::to_string(width) + "_" + std::to_string(approx_bits),
      width, AdderArch::kTruncated);
  Netlist& nl = out.netlist;

  for (int i = 0; i < approx_bits; ++i)
    out.sum[static_cast<std::size_t>(i)] =
        nl.add_gate(CellKind::kTieLo, {}, "sum" + std::to_string(i));
  const NetId cout = ripple_upper(nl, out.a, out.b, approx_bits, width,
                                  invalid_net, out.sum);
  out.sum[static_cast<std::size_t>(width)] = cout;
  finish(out);
  return out;
}

AdderNetlist build_carry_cut(int width, int cut_bit) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(cut_bit >= 1 && cut_bit < width);
  AdderNetlist out = make_shell(
      "cut" + std::to_string(width) + "_" + std::to_string(cut_bit), width,
      AdderArch::kCarryCut);
  Netlist& nl = out.netlist;

  // Lower segment: accurate, but its carry-out is dropped.
  NetId dropped =
      ripple_upper(nl, out.a, out.b, 0, cut_bit, invalid_net, out.sum);
  // Keep the net observable so the netlist has no dangling logic; it is
  // not part of the arithmetic result.
  nl.mark_output(nl.add_gate(CellKind::kBuf, {dropped}, "cut_carry"));
  const NetId cout = ripple_upper(nl, out.a, out.b, cut_bit, width,
                                  invalid_net, out.sum);
  out.sum[static_cast<std::size_t>(width)] = cout;
  finish(out);
  return out;
}

AdderNetlist build_speculative_window(int width, int window) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(window >= 1 && window <= width);
  AdderNetlist out = make_shell(
      "specw" + std::to_string(width) + "_" + std::to_string(window), width,
      AdderArch::kSpeculativeWindow);
  Netlist& nl = out.netlist;

  std::vector<NetId> g(static_cast<std::size_t>(width));
  std::vector<NetId> p(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    p[ui] = nl.add_gate(CellKind::kXor2, {out.a[ui], out.b[ui]},
                        "p" + std::to_string(i));
    g[ui] = nl.add_gate(CellKind::kAnd2, {out.a[ui], out.b[ui]},
                        "g" + std::to_string(i));
  }

  // Carry into bit i from a window of `window` positions:
  //   c_i = OR_{j=i-window}^{i-1} ( g_j & p_{j+1} & ... & p_{i-1} )
  auto window_carry = [&](int i) -> NetId {
    const int lo = std::max(0, i - window);
    NetId acc = invalid_net;        // OR accumulation
    NetId prun = invalid_net;       // running AND of p_{j+1..i-1}
    for (int j = i - 1; j >= lo; --j) {
      NetId term;
      if (j == i - 1) {
        term = g[static_cast<std::size_t>(j)];
      } else {
        prun = (prun == invalid_net)
                   ? p[static_cast<std::size_t>(j + 1)]
                   : nl.add_gate(CellKind::kAnd2,
                                 {prun, p[static_cast<std::size_t>(j + 1)]});
        term = nl.add_gate(CellKind::kAnd2,
                           {g[static_cast<std::size_t>(j)], prun});
      }
      acc = (acc == invalid_net)
                ? term
                : nl.add_gate(CellKind::kOr2, {acc, term});
    }
    VOSIM_ENSURES(acc != invalid_net);
    return acc;
  };

  out.sum[0] = p[0];
  for (int i = 1; i < width; ++i) {
    const NetId c = window_carry(i);
    out.sum[static_cast<std::size_t>(i)] = nl.add_gate(
        CellKind::kXor2, {p[static_cast<std::size_t>(i)], c},
        "sum" + std::to_string(i));
  }
  out.sum[static_cast<std::size_t>(width)] = window_carry(width);
  finish(out);
  return out;
}

}  // namespace vosim
