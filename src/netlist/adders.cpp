#include "src/netlist/adders.hpp"

#include "src/util/bits.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/util/contracts.hpp"

namespace vosim {

std::string adder_arch_name(AdderArch arch) {
  switch (arch) {
    case AdderArch::kRipple: return "RCA";
    case AdderArch::kBrentKung: return "BKA";
    case AdderArch::kKoggeStone: return "KSA";
    case AdderArch::kSklansky: return "SKL";
    case AdderArch::kCarrySelect: return "CSeL";
    case AdderArch::kCarrySkip: return "CSkA";
    case AdderArch::kHanCarlson: return "HCA";
    case AdderArch::kLowerOr: return "LOA";
    case AdderArch::kTruncated: return "TRUNC";
    case AdderArch::kCarryCut: return "CUT";
    case AdderArch::kSpeculativeWindow: return "SPECW";
  }
  return "?";
}

namespace {

constexpr bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

/// Creates the operand input nets a[0..n), b[0..n).
void make_operands(Netlist& nl, int width, std::vector<NetId>& a,
                   std::vector<NetId>& b) {
  a.reserve(static_cast<std::size_t>(width));
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(nl.add_input("b" + std::to_string(i)));
}

/// Generate/propagate leaf pair for bit i.
struct GpPair {
  NetId g = invalid_net;
  NetId p = invalid_net;
  int span_lo = 0;  ///< lowest bit covered by this (G,P) group
};

/// Prefix combine: (G,P)hi ∘ (G,P)lo. Produces the P term only when the
/// group does not already reach bit 0 (then no later combine needs it).
GpPair combine(Netlist& nl, const GpPair& hi, const GpPair& lo,
               const std::string& tag) {
  VOSIM_EXPECTS(hi.g != invalid_net && lo.g != invalid_net);
  GpPair out;
  out.span_lo = lo.span_lo;
  // G = (P_hi & G_lo) | G_hi, one speed-skewed AO21 per level.
  out.g = nl.add_gate(CellKind::kAo21, {hi.p, lo.g, hi.g}, "G" + tag);
  if (lo.span_lo > 0) {
    VOSIM_EXPECTS(lo.p != invalid_net);
    out.p = nl.add_gate(CellKind::kAnd2, {hi.p, lo.p}, "P" + tag);
  }
  return out;
}

/// Builds XOR sum bits from per-bit propagate and the carry-in of each
/// position; carries[i] is the carry *into* bit i (invalid_net => zero).
void make_sums(Netlist& nl, int width, const std::vector<NetId>& p,
               const std::vector<NetId>& carries, NetId cout,
               std::vector<NetId>& sum) {
  sum.resize(static_cast<std::size_t>(width) + 1, invalid_net);
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (carries[ui] == invalid_net) {
      sum[ui] = p[ui];  // carry-in is zero: sum is just the propagate bit
    } else {
      sum[ui] = nl.add_gate(CellKind::kXor2, {p[ui], carries[ui]},
                            "sum" + std::to_string(i));
    }
  }
  sum[static_cast<std::size_t>(width)] = cout;
  for (NetId s : sum) nl.mark_output(s);
}

/// Shared prefix-adder shell: builds leaves, lets `run_tree` fill in the
/// prefix network (updating gp[] in place so gp[i] covers [0..i]), then
/// generates the sum row.
AdderNetlist build_prefix_adder(int width, AdderArch arch,
                                const std::string& name,
                                void (*run_tree)(Netlist&,
                                                 std::vector<GpPair>&)) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  AdderNetlist out{.netlist = Netlist(name),
                   .a = {},
                   .b = {},
                   .cin = invalid_net,
                   .sum = {},
                   .width = width,
                   .arch = arch};
  Netlist& nl = out.netlist;
  make_operands(nl, width, out.a, out.b);

  std::vector<GpPair> gp(static_cast<std::size_t>(width));
  std::vector<NetId> p(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    p[ui] = nl.add_gate(CellKind::kXor2, {out.a[ui], out.b[ui]},
                        "p" + std::to_string(i));
    gp[ui].p = p[ui];
    gp[ui].g = nl.add_gate(CellKind::kAnd2, {out.a[ui], out.b[ui]},
                           "g" + std::to_string(i));
    gp[ui].span_lo = i;
  }

  run_tree(nl, gp);
  for (int i = 0; i < width; ++i)
    VOSIM_ENSURES(gp[static_cast<std::size_t>(i)].span_lo == 0);

  // Carry into bit i is the group generate over [0 .. i-1].
  std::vector<NetId> carries(static_cast<std::size_t>(width), invalid_net);
  for (int i = 1; i < width; ++i)
    carries[static_cast<std::size_t>(i)] =
        gp[static_cast<std::size_t>(i - 1)].g;
  const NetId cout = gp[static_cast<std::size_t>(width - 1)].g;

  make_sums(nl, width, p, carries, cout, out.sum);
  nl.finalize();
  return out;
}

void kogge_stone_tree(Netlist& nl, std::vector<GpPair>& gp) {
  const int n = static_cast<int>(gp.size());
  for (int offset = 1; offset < n; offset <<= 1) {
    // Combine from high to low so each level reads the previous level's
    // values (gp[i-offset] at indices below `offset` are never touched).
    std::vector<GpPair> next = gp;
    for (int i = n - 1; i >= offset; --i) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(i - offset);
      if (gp[ui].span_lo == 0) continue;  // already a full prefix
      next[ui] = combine(nl, gp[ui], gp[uj],
                         std::to_string(i) + "_" + std::to_string(offset));
    }
    gp = std::move(next);
  }
}

void brent_kung_tree(Netlist& nl, std::vector<GpPair>& gp) {
  const int n = static_cast<int>(gp.size());
  VOSIM_EXPECTS(is_pow2(n));
  const int levels = std::bit_width(static_cast<unsigned>(n)) - 1;
  // Up-sweep: aligned blocks of doubling size.
  for (int d = 1; d <= levels; ++d) {
    const int step = 1 << d;
    for (int i = step - 1; i < n; i += step) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(i - step / 2);
      gp[ui] = combine(nl, gp[ui], gp[uj],
                       "u" + std::to_string(d) + "_" + std::to_string(i));
    }
  }
  // Down-sweep: fill the intermediate positions with full prefixes.
  for (int d = levels - 1; d >= 1; --d) {
    const int step = 1 << d;
    for (int i = step + step / 2 - 1; i < n; i += step) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(i - step / 2);
      VOSIM_EXPECTS(gp[uj].span_lo == 0);
      gp[ui] = combine(nl, gp[ui], gp[uj],
                       "d" + std::to_string(d) + "_" + std::to_string(i));
    }
  }
}

void han_carlson_tree(Netlist& nl, std::vector<GpPair>& gp) {
  const int n = static_cast<int>(gp.size());
  VOSIM_EXPECTS(is_pow2(n));
  // Stage 1: pair every odd position with its even neighbour.
  for (int i = 1; i < n; i += 2) {
    const auto ui = static_cast<std::size_t>(i);
    gp[ui] = combine(nl, gp[ui], gp[ui - 1], "h1_" + std::to_string(i));
  }
  // Stage 2: Kogge-Stone among the odd positions only.
  for (int offset = 2; offset < n; offset <<= 1) {
    std::vector<GpPair> next = gp;
    for (int i = n - 1; i >= 1 + offset; i -= 2) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(i - offset);
      if (gp[ui].span_lo == 0) continue;
      next[ui] = combine(nl, gp[ui], gp[uj],
                         "h2_" + std::to_string(i) + "_" +
                             std::to_string(offset));
    }
    gp = std::move(next);
  }
  // Stage 3: each even position (>= 2) takes one combine from the odd
  // prefix just below it.
  for (int i = 2; i < n; i += 2) {
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(i - 1);
    VOSIM_EXPECTS(gp[uj].span_lo == 0);
    gp[ui] = combine(nl, gp[ui], gp[uj], "h3_" + std::to_string(i));
  }
}

void sklansky_tree(Netlist& nl, std::vector<GpPair>& gp) {
  const int n = static_cast<int>(gp.size());
  VOSIM_EXPECTS(is_pow2(n));
  for (int d = 1; (1 << d) <= n; ++d) {
    const int block = 1 << d;
    for (int base = 0; base < n; base += block) {
      const int mid = base + block / 2;
      const auto pivot = static_cast<std::size_t>(mid - 1);
      for (int i = mid; i < base + block; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        gp[ui] = combine(nl, gp[ui], gp[pivot],
                         "s" + std::to_string(d) + "_" + std::to_string(i));
      }
    }
  }
}

}  // namespace

AdderNetlist build_rca(int width, bool with_cin) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  AdderNetlist out{.netlist =
                       Netlist("rca" + std::to_string(width)),
                   .a = {},
                   .b = {},
                   .cin = invalid_net,
                   .sum = {},
                   .width = width,
                   .arch = AdderArch::kRipple};
  Netlist& nl = out.netlist;
  make_operands(nl, width, out.a, out.b);
  if (with_cin) out.cin = nl.add_input("cin");

  std::vector<NetId> p(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    p[ui] = nl.add_gate(CellKind::kXor2, {out.a[ui], out.b[ui]},
                        "p" + std::to_string(i));
  }

  // Serial carry chain: MAJ3 mirror-carry stages (AND2 for the first
  // stage when there is no carry-in, since MAJ(a,b,0) == a&b).
  std::vector<NetId> carries(static_cast<std::size_t>(width), invalid_net);
  NetId c = out.cin;  // carry into bit 0 (may be invalid == constant 0)
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    carries[ui] = c;
    const std::string cname = "c" + std::to_string(i + 1);
    if (c == invalid_net) {
      c = nl.add_gate(CellKind::kAnd2, {out.a[ui], out.b[ui]}, cname);
    } else {
      c = nl.add_gate(CellKind::kMaj3, {out.a[ui], out.b[ui], c}, cname);
    }
  }

  make_sums(nl, width, p, carries, c, out.sum);
  nl.finalize();
  return out;
}

AdderNetlist build_brent_kung(int width) {
  VOSIM_EXPECTS(is_pow2(width));
  return build_prefix_adder(width, AdderArch::kBrentKung,
                            "bka" + std::to_string(width), brent_kung_tree);
}

AdderNetlist build_kogge_stone(int width) {
  return build_prefix_adder(width, AdderArch::kKoggeStone,
                            "ksa" + std::to_string(width), kogge_stone_tree);
}

AdderNetlist build_sklansky(int width) {
  VOSIM_EXPECTS(is_pow2(width));
  return build_prefix_adder(width, AdderArch::kSklansky,
                            "skl" + std::to_string(width), sklansky_tree);
}

AdderNetlist build_carry_select(int width, int block) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(block >= 1);
  AdderNetlist out{.netlist = Netlist("csel" + std::to_string(width)),
                   .a = {},
                   .b = {},
                   .cin = invalid_net,
                   .sum = {},
                   .width = width,
                   .arch = AdderArch::kCarrySelect};
  Netlist& nl = out.netlist;
  make_operands(nl, width, out.a, out.b);
  out.sum.resize(static_cast<std::size_t>(width) + 1, invalid_net);

  // 2:1 mux from basic gates: sel ? d1 : d0.
  auto mux = [&nl](NetId sel, NetId d0, NetId d1, const std::string& name) {
    const NetId nsel = nl.add_gate(CellKind::kInv, {sel});
    const NetId t1 = nl.add_gate(CellKind::kAnd2, {sel, d1});
    const NetId t0 = nl.add_gate(CellKind::kAnd2, {nsel, d0});
    return nl.add_gate(CellKind::kOr2, {t0, t1}, name);
  };

  // Ripple block with an optional assumed carry-in constant. Returns the
  // block carry-out; fills sums[lo..hi).
  auto ripple_block = [&](int lo, int hi, NetId cin_net,
                          std::vector<NetId>& sums) -> NetId {
    NetId c = cin_net;
    for (int i = lo; i < hi; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const NetId p =
          nl.add_gate(CellKind::kXor2, {out.a[ui], out.b[ui]});
      if (c == invalid_net) {
        sums[static_cast<std::size_t>(i - lo)] = p;
        c = nl.add_gate(CellKind::kAnd2, {out.a[ui], out.b[ui]});
      } else {
        sums[static_cast<std::size_t>(i - lo)] =
            nl.add_gate(CellKind::kXor2, {p, c});
        c = nl.add_gate(CellKind::kMaj3, {out.a[ui], out.b[ui], c});
      }
    }
    return c;
  };

  NetId carry = invalid_net;  // carry leaving the previous block
  for (int lo = 0; lo < width; lo += block) {
    const int hi = std::min(lo + block, width);
    const auto blk_len = static_cast<std::size_t>(hi - lo);
    if (lo == 0) {
      std::vector<NetId> sums(blk_len);
      carry = ripple_block(lo, hi, invalid_net, sums);
      for (int i = lo; i < hi; ++i)
        out.sum[static_cast<std::size_t>(i)] =
            sums[static_cast<std::size_t>(i - lo)];
      continue;
    }
    // Speculative copies under carry-in = 0 and carry-in = 1.
    const NetId one = nl.add_gate(CellKind::kTieHi, {});
    std::vector<NetId> sums0(blk_len);
    std::vector<NetId> sums1(blk_len);
    const NetId cout0 = ripple_block(lo, hi, invalid_net, sums0);
    const NetId cout1 = ripple_block(lo, hi, one, sums1);
    for (int i = lo; i < hi; ++i) {
      const auto k = static_cast<std::size_t>(i - lo);
      out.sum[static_cast<std::size_t>(i)] =
          mux(carry, sums0[k], sums1[k], "sum" + std::to_string(i));
    }
    carry = mux(carry, cout0, cout1, "bc" + std::to_string(hi));
  }
  out.sum[static_cast<std::size_t>(width)] = carry;
  for (NetId s : out.sum) nl.mark_output(s);
  nl.finalize();
  return out;
}

AdderNetlist build_carry_skip(int width, int block) {
  VOSIM_EXPECTS(width >= 2 && width <= max_word_bits);
  VOSIM_EXPECTS(block >= 2);
  AdderNetlist out{.netlist = Netlist("cska" + std::to_string(width)),
                   .a = {},
                   .b = {},
                   .cin = invalid_net,
                   .sum = {},
                   .width = width,
                   .arch = AdderArch::kCarrySkip};
  Netlist& nl = out.netlist;
  make_operands(nl, width, out.a, out.b);
  out.sum.resize(static_cast<std::size_t>(width) + 1, invalid_net);

  std::vector<NetId> p(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    p[ui] = nl.add_gate(CellKind::kXor2, {out.a[ui], out.b[ui]},
                        "p" + std::to_string(i));
  }

  auto mux = [&nl](NetId sel, NetId d0, NetId d1, const std::string& name) {
    const NetId nsel = nl.add_gate(CellKind::kInv, {sel});
    const NetId t1 = nl.add_gate(CellKind::kAnd2, {sel, d1});
    const NetId t0 = nl.add_gate(CellKind::kAnd2, {nsel, d0});
    return nl.add_gate(CellKind::kOr2, {t0, t1}, name);
  };

  NetId c = invalid_net;  // effective carry entering the current block
  for (int lo = 0; lo < width; lo += block) {
    const int hi = std::min(lo + block, width);
    const NetId block_cin = c;
    // Ripple through the block.
    for (int i = lo; i < hi; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (c == invalid_net) {
        out.sum[ui] = p[ui];
        c = nl.add_gate(CellKind::kAnd2, {out.a[ui], out.b[ui]},
                        "c" + std::to_string(i + 1));
      } else {
        out.sum[ui] = nl.add_gate(CellKind::kXor2, {p[ui], c},
                                  "sum" + std::to_string(i));
        c = nl.add_gate(CellKind::kMaj3, {out.a[ui], out.b[ui], c},
                        "c" + std::to_string(i + 1));
      }
    }
    if (block_cin == invalid_net) continue;  // first block: nothing to skip
    // Block propagate: every bit would pass the carry straight through.
    NetId pblk = p[static_cast<std::size_t>(lo)];
    for (int i = lo + 1; i < hi; ++i)
      pblk = nl.add_gate(CellKind::kAnd2,
                         {pblk, p[static_cast<std::size_t>(i)]});
    // Skip mux: a fully-propagating block forwards its carry-in; the
    // ripple result is logically identical but arrives much later.
    c = mux(pblk, c, block_cin, "skip" + std::to_string(hi));
  }
  out.sum[static_cast<std::size_t>(width)] = c;
  for (NetId s : out.sum) nl.mark_output(s);
  nl.finalize();
  return out;
}

AdderNetlist build_han_carlson(int width) {
  VOSIM_EXPECTS(is_pow2(width));
  return build_prefix_adder(width, AdderArch::kHanCarlson,
                            "hca" + std::to_string(width),
                            han_carlson_tree);
}

AdderNetlist build_adder(AdderArch arch, int width) {
  switch (arch) {
    case AdderArch::kRipple: return build_rca(width);
    case AdderArch::kBrentKung: return build_brent_kung(width);
    case AdderArch::kKoggeStone: return build_kogge_stone(width);
    case AdderArch::kSklansky: return build_sklansky(width);
    case AdderArch::kCarrySelect: return build_carry_select(width);
    case AdderArch::kCarrySkip: return build_carry_skip(width);
    case AdderArch::kHanCarlson: return build_han_carlson(width);
    default: break;
  }
  throw ContractViolation(
      "build_adder: approximate architectures have dedicated builders");
}

}  // namespace vosim
