// Technology-mapped adder generators: the operator configurations the
// paper characterizes (RCA, Brent-Kung) plus further parallel-prefix and
// carry-select architectures used by tests and ablation studies.
#ifndef VOSIM_NETLIST_ADDERS_HPP
#define VOSIM_NETLIST_ADDERS_HPP

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// Adder architectures. The first two are the paper's benchmarks; the
/// last four are static approximate baselines (Section II related work).
enum class AdderArch {
  kRipple,
  kBrentKung,
  kKoggeStone,
  kSklansky,
  kCarrySelect,
  kCarrySkip,
  kHanCarlson,
  kLowerOr,            // LOA: k LSBs computed by OR gates [14]
  kTruncated,          // k LSBs forced to zero
  kCarryCut,           // accurate halves, carry chain cut at bit k
  kSpeculativeWindow,  // per-bit carry from a w-bit window (ETAII-like)
};

/// Short display name, e.g. "RCA", "BKA".
std::string adder_arch_name(AdderArch arch);

/// A generated adder: the gate netlist plus its operand/result pinout.
/// `sum` holds the n sum bits LSB-first followed by the carry-out, so it
/// always has width+1 entries; outputs are read as one (width+1)-bit word.
struct AdderNetlist {
  Netlist netlist;
  std::vector<NetId> a;  ///< operand A bits, LSB first
  std::vector<NetId> b;  ///< operand B bits, LSB first
  NetId cin = invalid_net;  ///< carry-in net if built with one
  std::vector<NetId> sum;   ///< sum bits + carry-out (size width+1)
  int width = 0;
  AdderArch arch = AdderArch::kRipple;
};

/// Ripple-carry adder (serial prefix; paper Section III). `with_cin`
/// adds a carry-in primary input (used when composing split adders).
AdderNetlist build_rca(int width, bool with_cin = false);

/// Brent-Kung parallel-prefix adder (paper Fig. 3). Width must be a
/// power of two >= 2.
AdderNetlist build_brent_kung(int width);

/// Kogge-Stone parallel-prefix adder; any width >= 2.
AdderNetlist build_kogge_stone(int width);

/// Sklansky (divide-and-conquer) prefix adder. Width must be a power of
/// two >= 2.
AdderNetlist build_sklansky(int width);

/// Carry-select adder with `block`-bit blocks (duplicated RCAs + mux).
AdderNetlist build_carry_select(int width, int block = 4);

/// Carry-skip adder: ripple blocks whose carries bypass fully-
/// propagating blocks through a skip mux.
AdderNetlist build_carry_skip(int width, int block = 4);

/// Han-Carlson prefix adder (Kogge-Stone on the odd positions, one final
/// combine for the even ones); width must be a power of two >= 2.
AdderNetlist build_han_carlson(int width);

/// Dispatch for the exact architectures above (approximate baselines have
/// their own builders in approx_adders.hpp). Throws for approx kinds.
AdderNetlist build_adder(AdderArch arch, int width);

}  // namespace vosim

#endif  // VOSIM_NETLIST_ADDERS_HPP
