// Generic datapath DUT ("device under test"): the one abstraction the
// whole VOS stack above the netlist layer is built on. A DutNetlist is
// a finalized gate netlist plus named operand input buses, one output
// bus word, and display metadata; adders, multipliers, adder trees and
// MAC trees all convert into it, so the simulators (VosDutSim), the
// characterizer (characterize_dut), the variability study and the
// adaptive runtime work for any arithmetic configuration — the paper's
// Section IV claim ("compliant with different arithmetic
// configurations") made structural.
#ifndef VOSIM_NETLIST_DUT_HPP
#define VOSIM_NETLIST_DUT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/adder_tree.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/netlist/netlist.hpp"

namespace vosim {

/// One named operand bus: LSB-first primary-input nets.
struct DutBus {
  std::string name;
  std::vector<NetId> nets;
};

/// A generic DUT. Primary inputs not covered by any operand bus (e.g.
/// a carry-in) are held at logic zero by every consumer. The output is
/// read as a single LSB-first bus word.
struct DutNetlist {
  Netlist netlist = Netlist("dut");
  std::vector<DutBus> inputs;   ///< operand buses, LSB-first nets
  std::vector<NetId> outputs;   ///< result bus, LSB first
  std::string kind;             ///< registry spec, e.g. "mul8-wallace"
  std::string display_name;     ///< e.g. "8x8 Wallace multiplier"

  std::size_t num_operands() const noexcept { return inputs.size(); }
  int operand_width(std::size_t i) const {
    return static_cast<int>(inputs.at(i).nets.size());
  }
  int output_width() const noexcept {
    return static_cast<int>(outputs.size());
  }
  /// Widths of every operand bus, in order.
  std::vector<int> operand_widths() const;
};

/// Pin mapping of a DUT: positions of every operand bit in the
/// primary-input vector and of the output bits in the packed
/// primary-output word. Shared by the simulators (VosDutSim) and the
/// characterizer's packed-lane grid fast path so operand scatter and
/// output gather cannot diverge between them. Construction validates
/// the bus contracts loudly (ContractViolation with a message naming
/// the offending bus): operand buses are limited to max_word_bits (63)
/// bits, the output bus to 64 (it is packed into one std::uint64_t —
/// wide product buses up to 2·width bits are fine, silent truncation
/// is not), every operand net must be a primary input, every output
/// net a primary output, and the netlist may expose at most 64 primary
/// outputs (StepResult packs them into one word).
class DutPinMap {
 public:
  explicit DutPinMap(const DutNetlist& dut);

  /// Scatters operand words into a primary-input value vector (one
  /// entry per PI). Uncovered pins are left untouched, so a
  /// zero-initialized buffer holds them at zero. Operand k must fit in
  /// operand_width(k) bits.
  void fill_inputs(std::span<const std::uint64_t> operands,
                   std::uint8_t* inputs) const;

  /// Extracts the output bus word from values packed in primary-output
  /// order (bit i = primary output i).
  std::uint64_t gather_output(std::uint64_t po_word) const;

  std::size_t num_operands() const noexcept { return in_slots_.size(); }
  int operand_width(std::size_t i) const {
    return static_cast<int>(in_slots_.at(i).size());
  }
  int output_width() const noexcept {
    return static_cast<int>(out_slot_.size());
  }

  /// PI position of every bit of operand bus `i` (bit order). Exposed
  /// so batched simulators can scatter operand bits directly instead of
  /// going through a per-cycle fill_inputs round-trip.
  std::span<const std::size_t> input_slots(std::size_t i) const {
    return in_slots_.at(i);
  }
  /// PO position of every output-bus bit (bit order).
  std::span<const std::size_t> output_slots() const noexcept {
    return out_slot_;
  }

 private:
  std::vector<std::vector<std::size_t>> in_slots_;  ///< PI positions
  std::vector<std::size_t> out_slot_;               ///< PO positions
};

/// Wraps an already-built netlist and its buses as a DUT (the netlist
/// is copied). Bus contracts are checked by the first DutPinMap built
/// over the result.
DutNetlist make_dut(const Netlist& netlist,
                    std::vector<std::vector<NetId>> input_buses,
                    std::vector<NetId> output_bus,
                    std::string kind = "dut");

/// Adapts a generated adder: buses a/b, output = sum bits + carry-out.
DutNetlist to_dut(AdderNetlist adder);

/// Adapts a generated multiplier: buses a/b, output = the 2·width-bit
/// product.
DutNetlist to_dut(MultiplierNetlist mul);

/// Adapts a generated reduction tree: one bus per leaf.
DutNetlist to_dut(AdderTreeNetlist tree);

/// Builds a MAC reduction tree DUT: `terms` products a[t]·b[t] of
/// `width`-bit operands, summed without precision loss by a balanced
/// adder tree (output width 2·width + log2(terms)). `terms` must be a
/// power of two >= 2; widths 2..16. Composed from the array-multiplier
/// and adder-tree generators via append_copy.
DutNetlist build_mac_dut(int terms, int width);

/// Builds a DUT from a circuit spec string — the `--circuit` registry:
///   rca8 bka16 ksa12 skl8 csel16 cska8 hca8    exact adders
///   loa8-4 trunc8-4 cut8-4 specw8-3            approximate adders
///                                              (width-k, k defaults
///                                               to width/2)
///   mul8-array mul8-wallace                    multipliers
///   tree8x8                                    adder tree (leaves x
///                                              leaf width)
///   mac4x8                                     MAC tree (terms x
///                                              operand width)
/// Throws std::invalid_argument with the supported grammar on a
/// malformed spec.
DutNetlist build_circuit(const std::string& spec);

/// One-line list of supported circuit spec forms (for CLI usage text).
std::string known_circuits_help();

/// Canonical example specs covering every combinational registry family
/// (one buildable spec per form) — the corpus behind `--list-circuits`
/// and the registry's "did you mean …?" suggestions.
std::vector<std::string> circuit_registry_examples();

}  // namespace vosim

#endif  // VOSIM_NETLIST_DUT_HPP
