// Netlist cleanup passes: dead-gate pruning and lightweight random
// equivalence checking — the hygiene steps a synthesis flow performs
// after structural generation (e.g. the Wallace multiplier's provably-
// zero top carry, the carry-cut adder's diagnostic buffer).
#ifndef VOSIM_NETLIST_OPTIMIZE_HPP
#define VOSIM_NETLIST_OPTIMIZE_HPP

#include <cstdint>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// Statistics of a pruning pass.
struct PruneStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t nets_before = 0;
  std::size_t nets_after = 0;
};

/// Returns a copy of the netlist with every gate removed whose output
/// reaches no primary output (transitively). Primary inputs are kept
/// even when unused, preserving the operand pinout. The result is
/// finalized. `stats` (optional) receives before/after counts.
Netlist prune_dead_gates(const Netlist& netlist, PruneStats* stats = nullptr,
                         /// Mapping from old net ids to new ones
                         /// (invalid_net for pruned nets); resized by the
                         /// call. Pass nullptr when not needed.
                         std::vector<NetId>* net_map = nullptr);

/// Randomized + (for small input counts) exhaustive equivalence check of
/// two finalized netlists with identical PI/PO arity: simulates both on
/// the same stimuli and compares packed outputs. Returns true when no
/// mismatch is found; a probabilistic "yes" for wide inputs.
bool probably_equivalent(const Netlist& a, const Netlist& b,
                         std::uint64_t seed = 1, int random_trials = 4096,
                         int exhaustive_limit_bits = 12);

}  // namespace vosim

#endif  // VOSIM_NETLIST_OPTIMIZE_HPP
