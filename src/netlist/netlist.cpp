#include "src/netlist/netlist.hpp"

#include <algorithm>
#include <utility>

#include "src/util/contracts.hpp"

namespace vosim {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NetId Netlist::new_net(std::string name) {
  const NetId id = static_cast<NetId>(net_names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  net_names_.push_back(std::move(name));
  driver_.push_back(invalid_gate);
  return id;
}

NetId Netlist::add_input(std::string name) {
  VOSIM_EXPECTS(!finalized_);
  const NetId id = new_net(std::move(name));
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_gate(CellKind kind, std::initializer_list<NetId> inputs,
                        std::string out_name) {
  VOSIM_EXPECTS(!finalized_);
  VOSIM_EXPECTS(inputs.size() <= 3);
  Gate g;
  g.kind = kind;
  g.num_inputs = static_cast<std::uint8_t>(inputs.size());
  std::size_t slot = 0;
  for (NetId in : inputs) {
    VOSIM_EXPECTS(in < net_names_.size());
    g.in[slot++] = in;
  }
  g.out = new_net(std::move(out_name));
  driver_[g.out] = static_cast<GateId>(gates_.size());
  gates_.push_back(g);
  return g.out;
}

NetId Netlist::add_gate(CellKind kind, std::span<const NetId> inputs,
                        std::string out_name) {
  VOSIM_EXPECTS(inputs.size() <= 3);
  switch (inputs.size()) {
    case 1: return add_gate(kind, {inputs[0]}, std::move(out_name));
    case 2: return add_gate(kind, {inputs[0], inputs[1]}, std::move(out_name));
    case 3:
      return add_gate(kind, {inputs[0], inputs[1], inputs[2]},
                      std::move(out_name));
    default: break;
  }
  VOSIM_EXPECTS(!inputs.empty());
  return invalid_net;
}

void Netlist::mark_output(NetId net) {
  VOSIM_EXPECTS(!finalized_);
  VOSIM_EXPECTS(net < net_names_.size());
  VOSIM_EXPECTS(std::find(outputs_.begin(), outputs_.end(), net) ==
                outputs_.end());
  outputs_.push_back(net);
}

bool Netlist::is_primary_input(NetId net) const {
  return std::find(inputs_.begin(), inputs_.end(), net) != inputs_.end();
}

void Netlist::finalize() {
  VOSIM_EXPECTS(!finalized_);
  VOSIM_EXPECTS(!outputs_.empty());

  // Every non-input net must have a driver (tie cells drive constants).
  for (NetId n = 0; n < net_names_.size(); ++n) {
    if (driver_[n] == invalid_gate) {
      VOSIM_EXPECTS(is_primary_input(n));
    }
  }

  // Fanout CSR.
  std::vector<std::uint32_t> counts(net_names_.size() + 1, 0);
  for (const Gate& g : gates_)
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) ++counts[g.in[i] + 1];
  fanout_offset_.assign(counts.begin(), counts.end());
  for (std::size_t i = 1; i < fanout_offset_.size(); ++i)
    fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_gates_.resize(fanout_offset_.back());
  {
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (GateId gid = 0; gid < gates_.size(); ++gid) {
      const Gate& g = gates_[gid];
      for (std::uint8_t i = 0; i < g.num_inputs; ++i)
        fanout_gates_[cursor[g.in[i]]++] = gid;
    }
  }

  // Kahn topological sort over gates; detects combinational cycles.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  for (GateId gid = 0; gid < gates_.size(); ++gid) {
    const Gate& g = gates_[gid];
    std::uint32_t deps = 0;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i)
      if (driver_[g.in[i]] != invalid_gate) ++deps;
    pending[gid] = deps;
    if (deps == 0) ready.push_back(gid);
  }
  topo_.clear();
  topo_.reserve(gates_.size());
  while (!ready.empty()) {
    const GateId gid = ready.back();
    ready.pop_back();
    topo_.push_back(gid);
    const NetId out = gates_[gid].out;
    const auto begin = fanout_offset_[out];
    const auto end = fanout_offset_[out + 1];
    for (auto k = begin; k < end; ++k) {
      const GateId user = fanout_gates_[k];
      // A gate may read the same net on several pins.
      const Gate& ug = gates_[user];
      std::uint32_t times = 0;
      for (std::uint8_t i = 0; i < ug.num_inputs; ++i)
        if (ug.in[i] == out) ++times;
      VOSIM_ENSURES(times >= 1);
      pending[user] -= 1;
      if (pending[user] == 0) ready.push_back(user);
    }
  }
  // Duplicate pins appear several times in the CSR, so pending may hit
  // zero more than once only if we guarded; simpler: verify all done.
  VOSIM_ENSURES(topo_.size() == gates_.size());

  finalized_ = true;
}

std::span<const GateId> Netlist::topo_order() const {
  VOSIM_EXPECTS(finalized_);
  return topo_;
}

std::span<const GateId> Netlist::fanout(NetId net) const {
  VOSIM_EXPECTS(finalized_);
  VOSIM_EXPECTS(net < net_names_.size());
  const auto begin = fanout_offset_[net];
  const auto end = fanout_offset_[net + 1];
  return {fanout_gates_.data() + begin, end - begin};
}

std::vector<double> Netlist::compute_net_loads(const CellLibrary& lib) const {
  VOSIM_EXPECTS(finalized_);
  std::vector<double> load(net_names_.size(), lib.wire_cap_ff());
  for (const Gate& g : gates_) {
    const double pin_cap = lib.cell(g.kind).input_cap_ff;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) load[g.in[i]] += pin_cap;
  }
  for (NetId out : outputs_) load[out] += lib.dff_d_cap_ff();
  return load;
}

double Netlist::cell_area_um2(const CellLibrary& lib) const {
  double area = 0.0;
  for (const Gate& g : gates_) area += lib.cell(g.kind).area_um2;
  return area;
}

double Netlist::cell_leakage_nw(const CellLibrary& lib) const {
  double leak = 0.0;
  for (const Gate& g : gates_) leak += lib.cell(g.kind).leakage_nw;
  return leak;
}

std::vector<NetId> append_copy(Netlist& dst, const Netlist& src,
                               std::span<const NetId> pi_substitutes,
                               const std::string& prefix) {
  VOSIM_EXPECTS(!dst.finalized());
  VOSIM_EXPECTS(pi_substitutes.size() == src.primary_inputs().size());
  std::vector<NetId> map(src.num_nets(), invalid_net);
  const auto pis = src.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    map[pis[i]] = pi_substitutes[i];
  // Gates were appended in construction order, which is topological
  // (a gate's inputs always exist before the gate), so one pass maps
  // every internal net.
  for (const Gate& g : src.gates()) {
    std::array<NetId, 3> in{};
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) {
      VOSIM_EXPECTS(map[g.in[i]] != invalid_net);
      in[i] = map[g.in[i]];
    }
    map[g.out] = dst.add_gate(g.kind, {in.data(), g.num_inputs},
                              prefix + src.net_name(g.out));
  }
  return map;
}

}  // namespace vosim
