// Static approximate adders: the related-work baselines of the paper's
// Section II (accurate/approximate split of Fig. 1, lower-part OR [14],
// truncation, and speculative/window adders [13][16]).
//
// These trade accuracy at *design time*; the paper's VOS operators trade
// it at *run time*. bench_ablation_baselines compares the two families.
#ifndef VOSIM_NETLIST_APPROX_ADDERS_HPP
#define VOSIM_NETLIST_APPROX_ADDERS_HPP

#include "src/netlist/adders.hpp"

namespace vosim {

/// Lower-part OR adder: the k LSBs are approximated by OR gates, the
/// upper bits use an accurate ripple chain seeded with carry
/// AND(a[k-1], b[k-1]) (paper Fig. 1 principle).
AdderNetlist build_lower_or(int width, int approx_bits);

/// Truncated adder: the k LSBs are forced to zero and no carry enters
/// the accurate upper part.
AdderNetlist build_truncated(int width, int approx_bits);

/// Carry-cut adder: both halves are accurate ripple adders, but the
/// carry crossing bit k is dropped (segmented/speculative block adder).
AdderNetlist build_carry_cut(int width, int cut_bit);

/// Speculative window adder: every carry is computed from at most
/// `window` previous positions — the hardware twin of the paper's
/// add_modified model (Section IV).
AdderNetlist build_speculative_window(int width, int window);

}  // namespace vosim

#endif  // VOSIM_NETLIST_APPROX_ADDERS_HPP
