// Gate-level combinational netlist: the structural representation the
// paper's flow synthesizes and then characterizes in SPICE (Fig. 4).
#ifndef VOSIM_NETLIST_NETLIST_HPP
#define VOSIM_NETLIST_NETLIST_HPP

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/tech/cell.hpp"
#include "src/tech/library.hpp"

namespace vosim {

using NetId = std::uint32_t;
using GateId = std::uint32_t;

inline constexpr NetId invalid_net = 0xFFFFFFFFu;
inline constexpr GateId invalid_gate = 0xFFFFFFFFu;

/// One gate instance: a library cell wired to up to three input nets and
/// driving exactly one output net.
struct Gate {
  CellKind kind = CellKind::kInv;
  std::array<NetId, 3> in{invalid_net, invalid_net, invalid_net};
  std::uint8_t num_inputs = 0;
  NetId out = invalid_net;
};

/// Directed acyclic gate network with named primary inputs/outputs.
///
/// Build with add_input/add_gate/mark_output, then call finalize() once;
/// finalize validates the structure (single driver per net, no cycles)
/// and computes the topological order and fanout index that STA and the
/// simulators consume. The netlist is immutable afterwards.
class Netlist {
 public:
  explicit Netlist(std::string name);

  // -- construction ------------------------------------------------------
  /// Creates a primary input net.
  NetId add_input(std::string name);
  /// Creates a gate plus its output net; returns the output net.
  NetId add_gate(CellKind kind, std::initializer_list<NetId> inputs,
                 std::string out_name = "");
  /// Same, from a dynamically-sized input list (still at most 3 nets).
  NetId add_gate(CellKind kind, std::span<const NetId> inputs,
                 std::string out_name = "");
  /// Declares an existing net to be a primary output (order preserved;
  /// a net may be marked at most once).
  void mark_output(NetId net);
  /// Validates and freezes the netlist. Throws ContractViolation on
  /// structural errors (undriven nets, multiple drivers, cycles).
  void finalize();

  // -- observers ---------------------------------------------------------
  const std::string& name() const noexcept { return name_; }
  bool finalized() const noexcept { return finalized_; }
  std::size_t num_nets() const noexcept { return net_names_.size(); }
  std::size_t num_gates() const noexcept { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  std::span<const Gate> gates() const noexcept { return gates_; }
  const std::string& net_name(NetId net) const { return net_names_.at(net); }
  std::span<const NetId> primary_inputs() const noexcept { return inputs_; }
  std::span<const NetId> primary_outputs() const noexcept { return outputs_; }
  bool is_primary_input(NetId net) const;
  /// Driving gate of a net, or invalid_gate for primary inputs.
  GateId driver(NetId net) const { return driver_.at(net); }

  // -- derived structure (available after finalize) ----------------------
  /// Gates in topological order (inputs before users).
  std::span<const GateId> topo_order() const;
  /// Gates reading a net.
  std::span<const GateId> fanout(NetId net) const;
  /// Capacitive load on a net at the library's wire model: fanout input
  /// pins + wire + a register D pin for primary outputs (fF).
  std::vector<double> compute_net_loads(const CellLibrary& lib) const;

  /// Total combinational cell area (µm²).
  double cell_area_um2(const CellLibrary& lib) const;
  /// Total combinational leakage at the nominal corner (nW).
  double cell_leakage_nw(const CellLibrary& lib) const;

 private:
  NetId new_net(std::string name);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::string> net_names_;
  std::vector<GateId> driver_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  bool finalized_ = false;
  std::vector<GateId> topo_;
  std::vector<std::uint32_t> fanout_offset_;  // CSR over nets
  std::vector<GateId> fanout_gates_;
};

/// Instantiates a copy of `src` (finalized) inside `dst` (under
/// construction): every src gate is replicated, with src primary input
/// i replaced by the existing dst net pi_substitutes[i]. Returns a
/// src-net -> dst-net map (primary inputs map to their substitutes).
/// Net names are copied with `prefix` prepended so instances stay
/// distinguishable. Nothing is marked as a dst output — the caller
/// decides which mapped nets are visible. This is how composite DUTs
/// (e.g. MAC trees: multipliers feeding an adder tree) are assembled
/// from the single-operator generators.
std::vector<NetId> append_copy(Netlist& dst, const Netlist& src,
                               std::span<const NetId> pi_substitutes,
                               const std::string& prefix = "");

}  // namespace vosim

#endif  // VOSIM_NETLIST_NETLIST_HPP
