// Unsigned array multiplier — an extension operator showing that the
// characterization flow generalizes beyond adders (paper Section IV:
// "compliant with different arithmetic configurations").
#ifndef VOSIM_NETLIST_MULTIPLIER_HPP
#define VOSIM_NETLIST_MULTIPLIER_HPP

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace vosim {

/// Multiplier architectures: deep carry-save array vs shallow Wallace
/// tree — two very different VOS failure topologies.
enum class MulArch {
  kArray,
  kWallace,
};

/// Short display name, e.g. "array", "wallace".
std::string mul_arch_name(MulArch arch);

/// A generated multiplier: netlist plus operand/product pinout.
struct MultiplierNetlist {
  Netlist netlist;
  std::vector<NetId> a;     ///< operand A bits, LSB first (width bits)
  std::vector<NetId> b;     ///< operand B bits, LSB first (width bits)
  std::vector<NetId> prod;  ///< product bits, LSB first (2·width bits)
  int width = 0;
  MulArch arch = MulArch::kArray;
};

/// Builds a classic ripple array multiplier (AND partial products,
/// full-adder rows). Supported widths: 2..16.
MultiplierNetlist build_array_multiplier(int width);

/// Builds a Wallace-tree multiplier: the partial-product columns are
/// reduced with 3:2/2:2 compressors until two rows remain, then summed
/// by a ripple stage. Much shallower than the array multiplier — a
/// different VOS failure topology. Supported widths: 2..16.
MultiplierNetlist build_wallace_multiplier(int width);

}  // namespace vosim

#endif  // VOSIM_NETLIST_MULTIPLIER_HPP
