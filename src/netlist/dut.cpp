#include "src/netlist/dut.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "src/netlist/approx_adders.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/fuzzy.hpp"

namespace vosim {

namespace {

constexpr bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

/// Registry token for an adder architecture (lowercase CLI spelling).
std::string adder_arch_token(AdderArch arch) {
  switch (arch) {
    case AdderArch::kRipple: return "rca";
    case AdderArch::kBrentKung: return "bka";
    case AdderArch::kKoggeStone: return "ksa";
    case AdderArch::kSklansky: return "skl";
    case AdderArch::kCarrySelect: return "csel";
    case AdderArch::kCarrySkip: return "cska";
    case AdderArch::kHanCarlson: return "hca";
    case AdderArch::kLowerOr: return "loa";
    case AdderArch::kTruncated: return "trunc";
    case AdderArch::kCarryCut: return "cut";
    case AdderArch::kSpeculativeWindow: return "specw";
  }
  return "?";
}

std::size_t net_slot(std::span<const NetId> nets, NetId net,
                     const char* what, const std::string& bus) {
  const auto it = std::find(nets.begin(), nets.end(), net);
  if (it == nets.end())
    throw ContractViolation(std::string("DutPinMap: net ") +
                            std::to_string(net) + " of bus '" + bus +
                            "' is not a primary " + what +
                            " of the netlist");
  return static_cast<std::size_t>(it - nets.begin());
}

}  // namespace

std::vector<int> DutNetlist::operand_widths() const {
  std::vector<int> w;
  w.reserve(inputs.size());
  for (const DutBus& bus : inputs)
    w.push_back(static_cast<int>(bus.nets.size()));
  return w;
}

DutPinMap::DutPinMap(const DutNetlist& dut) {
  const auto pis = dut.netlist.primary_inputs();
  const auto pos = dut.netlist.primary_outputs();
  if (dut.inputs.empty())
    throw ContractViolation("DutPinMap: DUT '" + dut.kind +
                            "' declares no operand buses");
  if (pos.size() > 64)
    throw ContractViolation(
        "DutPinMap: netlist '" + dut.netlist.name() + "' has " +
        std::to_string(pos.size()) +
        " primary outputs; the packed-word simulators support at most 64");
  for (const DutBus& bus : dut.inputs) {
    if (bus.nets.empty() ||
        bus.nets.size() > static_cast<std::size_t>(max_word_bits))
      throw ContractViolation(
          "DutPinMap: operand bus '" + bus.name + "' is " +
          std::to_string(bus.nets.size()) +
          " bits; operand words support 1.." +
          std::to_string(max_word_bits) + " bits (max_word_bits)");
    std::vector<std::size_t> slots;
    slots.reserve(bus.nets.size());
    for (const NetId net : bus.nets)
      slots.push_back(net_slot(pis, net, "input", bus.name));
    in_slots_.push_back(std::move(slots));
  }
  if (dut.outputs.empty() || dut.outputs.size() > 64)
    throw ContractViolation(
        "DutPinMap: output bus of '" + dut.kind + "' is " +
        std::to_string(dut.outputs.size()) +
        " bits; packed std::uint64_t output words support 1..64 bits");
  out_slot_.reserve(dut.outputs.size());
  for (const NetId net : dut.outputs)
    out_slot_.push_back(net_slot(pos, net, "output", "out"));
}

void DutPinMap::fill_inputs(std::span<const std::uint64_t> operands,
                            std::uint8_t* inputs) const {
  VOSIM_EXPECTS(operands.size() == in_slots_.size());
  for (std::size_t k = 0; k < operands.size(); ++k) {
    const auto& slots = in_slots_[k];
    VOSIM_EXPECTS((operands[k] &
                   ~mask_n(static_cast<int>(slots.size()))) == 0);
    for (std::size_t i = 0; i < slots.size(); ++i)
      inputs[slots[i]] =
          static_cast<std::uint8_t>((operands[k] >> i) & 1ULL);
  }
}

std::uint64_t DutPinMap::gather_output(std::uint64_t po_word) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < out_slot_.size(); ++i)
    out |= ((po_word >> out_slot_[i]) & 1ULL) << i;
  return out;
}

DutNetlist make_dut(const Netlist& netlist,
                    std::vector<std::vector<NetId>> input_buses,
                    std::vector<NetId> output_bus, std::string kind) {
  DutNetlist dut{.netlist = netlist,
                 .inputs = {},
                 .outputs = std::move(output_bus),
                 .kind = kind,
                 .display_name = std::move(kind)};
  dut.inputs.reserve(input_buses.size());
  for (std::size_t k = 0; k < input_buses.size(); ++k)
    dut.inputs.push_back(
        DutBus{"op" + std::to_string(k), std::move(input_buses[k])});
  return dut;
}

DutNetlist to_dut(AdderNetlist adder) {
  const std::string token =
      adder_arch_token(adder.arch) + std::to_string(adder.width);
  DutNetlist dut{.netlist = std::move(adder.netlist),
                 .inputs = {DutBus{"a", std::move(adder.a)},
                            DutBus{"b", std::move(adder.b)}},
                 .outputs = std::move(adder.sum),
                 .kind = token,
                 .display_name = std::to_string(adder.width) + "-bit " +
                                 adder_arch_name(adder.arch)};
  return dut;
}

DutNetlist to_dut(MultiplierNetlist mul) {
  const std::string w = std::to_string(mul.width);
  DutNetlist dut{.netlist = std::move(mul.netlist),
                 .inputs = {DutBus{"a", std::move(mul.a)},
                            DutBus{"b", std::move(mul.b)}},
                 .outputs = std::move(mul.prod),
                 .kind = "mul" + w + "-" + mul_arch_name(mul.arch),
                 .display_name = w + "x" + w + " " +
                                 mul_arch_name(mul.arch) + " multiplier"};
  return dut;
}

DutNetlist to_dut(AdderTreeNetlist tree) {
  DutNetlist dut{.netlist = std::move(tree.netlist),
                 .inputs = {},
                 .outputs = std::move(tree.sum),
                 .kind = "tree" + std::to_string(tree.num_leaves) + "x" +
                         std::to_string(tree.leaf_width),
                 .display_name = std::to_string(tree.num_leaves) +
                                 "-leaf adder tree (" +
                                 std::to_string(tree.leaf_width) + "-bit)"};
  dut.inputs.reserve(tree.leaves.size());
  for (std::size_t t = 0; t < tree.leaves.size(); ++t)
    dut.inputs.push_back(
        DutBus{"x" + std::to_string(t), std::move(tree.leaves[t])});
  return dut;
}

DutNetlist build_mac_dut(int terms, int width) {
  VOSIM_EXPECTS(is_pow2(terms) && terms >= 2);
  VOSIM_EXPECTS(width >= 2 && width <= 16);
  DutNetlist dut{
      .netlist = Netlist("mac" + std::to_string(terms) + "x" +
                         std::to_string(width)),
      .inputs = {},
      .outputs = {},
      .kind = "mac" + std::to_string(terms) + "x" + std::to_string(width),
      .display_name = std::to_string(terms) + "-term " +
                      std::to_string(width) + "x" + std::to_string(width) +
                      " MAC tree"};
  Netlist& nl = dut.netlist;

  // One multiplier instance per term (the generator output is used as a
  // template and stamped down via append_copy), products collected as
  // the leaves of one reduction tree.
  const MultiplierNetlist mul = build_array_multiplier(width);
  const AdderTreeNetlist tree = build_adder_tree(terms, 2 * width);
  const auto mul_pis = mul.netlist.primary_inputs();
  std::vector<std::vector<NetId>> products;
  for (int t = 0; t < terms; ++t) {
    DutBus a{"a" + std::to_string(t), {}};
    DutBus b{"b" + std::to_string(t), {}};
    for (int i = 0; i < width; ++i)
      a.nets.push_back(nl.add_input(a.name + "_" + std::to_string(i)));
    for (int i = 0; i < width; ++i)
      b.nets.push_back(nl.add_input(b.name + "_" + std::to_string(i)));
    // Substitutes in the template's own PI order.
    std::vector<NetId> subs(mul_pis.size(), invalid_net);
    for (int i = 0; i < width; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      subs[static_cast<std::size_t>(
          std::find(mul_pis.begin(), mul_pis.end(), mul.a[ui]) -
          mul_pis.begin())] = a.nets[ui];
      subs[static_cast<std::size_t>(
          std::find(mul_pis.begin(), mul_pis.end(), mul.b[ui]) -
          mul_pis.begin())] = b.nets[ui];
    }
    const std::vector<NetId> map = append_copy(
        nl, mul.netlist, subs, "m" + std::to_string(t) + "_");
    std::vector<NetId> prod;
    prod.reserve(mul.prod.size());
    for (const NetId p : mul.prod) prod.push_back(map[p]);
    products.push_back(std::move(prod));
    dut.inputs.push_back(std::move(a));
    dut.inputs.push_back(std::move(b));
  }

  const auto tree_pis = tree.netlist.primary_inputs();
  std::vector<NetId> tree_subs(tree_pis.size(), invalid_net);
  for (int t = 0; t < terms; ++t) {
    const auto& leaf = tree.leaves[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < leaf.size(); ++i)
      tree_subs[static_cast<std::size_t>(
          std::find(tree_pis.begin(), tree_pis.end(), leaf[i]) -
          tree_pis.begin())] = products[static_cast<std::size_t>(t)][i];
  }
  const std::vector<NetId> tmap =
      append_copy(nl, tree.netlist, tree_subs, "acc_");
  dut.outputs.reserve(tree.sum.size());
  for (const NetId s : tree.sum) {
    dut.outputs.push_back(tmap[s]);
    nl.mark_output(tmap[s]);
  }
  nl.finalize();
  return dut;
}

namespace {

[[noreturn]] void bad_spec(const std::string& spec) {
  std::string msg =
      "unknown circuit spec '" + spec + "'; " + known_circuits_help();
  const std::vector<std::string> examples = circuit_registry_examples();
  const std::string near = closest_match(spec, examples);
  if (!near.empty()) msg += " — did you mean '" + near + "'?";
  throw std::invalid_argument(msg);
}

/// Parses the decimal run starting at spec[pos]; advances pos.
int parse_num(const std::string& spec, std::size_t& pos) {
  if (pos >= spec.size() ||
      !std::isdigit(static_cast<unsigned char>(spec[pos])))
    bad_spec(spec);
  int v = 0;
  while (pos < spec.size() &&
         std::isdigit(static_cast<unsigned char>(spec[pos])))
    v = v * 10 + (spec[pos++] - '0');
  return v;
}

}  // namespace

DutNetlist build_circuit(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size() &&
         std::isalpha(static_cast<unsigned char>(spec[pos])))
    ++pos;
  const std::string token = spec.substr(0, pos);
  if (token.empty()) bad_spec(spec);

  if (token == "mul") {
    const int width = parse_num(spec, pos);
    if (spec.compare(pos, std::string::npos, "-array") == 0)
      return to_dut(build_array_multiplier(width));
    if (spec.compare(pos, std::string::npos, "-wallace") == 0)
      return to_dut(build_wallace_multiplier(width));
    bad_spec(spec);
  }
  if (token == "tree" || token == "mac") {
    const int n = parse_num(spec, pos);
    if (pos >= spec.size() || spec[pos] != 'x') bad_spec(spec);
    ++pos;
    const int width = parse_num(spec, pos);
    if (pos != spec.size()) bad_spec(spec);
    return token == "tree" ? to_dut(build_adder_tree(n, width))
                           : build_mac_dut(n, width);
  }

  // Adder families: exact archs take just a width; approximate archs
  // take width[-k] with k defaulting to width/2.
  const struct {
    const char* tok;
    AdderArch arch;
    bool approx;
  } adders[] = {
      {"rca", AdderArch::kRipple, false},
      {"bka", AdderArch::kBrentKung, false},
      {"ksa", AdderArch::kKoggeStone, false},
      {"skl", AdderArch::kSklansky, false},
      {"csel", AdderArch::kCarrySelect, false},
      {"cska", AdderArch::kCarrySkip, false},
      {"hca", AdderArch::kHanCarlson, false},
      {"loa", AdderArch::kLowerOr, true},
      {"trunc", AdderArch::kTruncated, true},
      {"cut", AdderArch::kCarryCut, true},
      {"specw", AdderArch::kSpeculativeWindow, true},
  };
  for (const auto& entry : adders) {
    if (token != entry.tok) continue;
    const int width = parse_num(spec, pos);
    if (!entry.approx) {
      if (pos != spec.size()) bad_spec(spec);
      return to_dut(build_adder(entry.arch, width));
    }
    int k = width / 2;
    if (pos < spec.size()) {
      if (spec[pos] != '-') bad_spec(spec);
      ++pos;
      k = parse_num(spec, pos);
      if (pos != spec.size()) bad_spec(spec);
    }
    switch (entry.arch) {
      case AdderArch::kLowerOr: return to_dut(build_lower_or(width, k));
      case AdderArch::kTruncated:
        return to_dut(build_truncated(width, k));
      case AdderArch::kCarryCut:
        return to_dut(build_carry_cut(width, k));
      default: return to_dut(build_speculative_window(width, k));
    }
  }
  bad_spec(spec);
}

std::string known_circuits_help() {
  return "supported circuits: rca<w> bka<w> ksa<w> skl<w> csel<w> "
         "cska<w> hca<w> | loa<w>[-k] trunc<w>[-k] cut<w>[-k] "
         "specw<w>[-k] | mul<w>-array mul<w>-wallace | "
         "tree<leaves>x<w> | mac<terms>x<w> (e.g. rca8, mul8-wallace, "
         "mac4x8)";
}

std::vector<std::string> circuit_registry_examples() {
  return {"rca8",     "rca16",   "bka8",        "bka16",       "ksa16",
          "skl16",    "csel16",  "cska16",      "hca16",       "loa8-4",
          "trunc8-4", "cut8-4",  "specw8-3",    "mul8-array",
          "mul8-wallace", "tree8x8", "mac4x8"};
}

}  // namespace vosim
