// Streaming and batch statistics used by metrics accumulation and reports.
#ifndef VOSIM_UTIL_STATS_HPP
#define VOSIM_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace vosim {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch quantile of a sample (linear interpolation between order
/// statistics). `q` in [0,1]; the input vector is copied, not mutated.
double quantile(std::vector<double> sample, double q);

/// Several quantiles of one sample with a single sort (quantile()
/// copies and sorts the whole sample per call). Returns one value per
/// entry of `qs`, each in [0,1], in the same order.
std::vector<double> quantiles(std::vector<double> sample,
                              const std::vector<double>& qs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const noexcept { return total_; }
  /// Center value of a bucket.
  double center(std::size_t bucket) const;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Adds another histogram's counts (parallel / per-thread-shard
  /// reduction). Both histograms must share lo, hi and bucket count.
  void merge(const Histogram& other);

  /// Bucket-interpolated quantile estimate: walks the cumulative
  /// counts and interpolates linearly inside the target bucket. `q` in
  /// [0,1]; returns lo() for an empty histogram. Resolution is one
  /// bucket width — cheap and allocation-free, unlike quantile() on a
  /// raw sample.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vosim

#endif  // VOSIM_UTIL_STATS_HPP
