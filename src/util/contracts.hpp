// Lightweight contract checking (C++ Core Guidelines I.6/I.8 style).
//
// VOSIM_EXPECTS checks a precondition, VOSIM_ENSURES a postcondition.
// Both throw vosim::ContractViolation so that tests can assert on misuse
// and applications can fail loudly instead of corrupting results.
#ifndef VOSIM_UTIL_CONTRACTS_HPP
#define VOSIM_UTIL_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace vosim {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vosim

#define VOSIM_EXPECTS(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vosim::detail::contract_fail("precondition", #cond, __FILE__,    \
                                     __LINE__);                          \
  } while (false)

#define VOSIM_ENSURES(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vosim::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                     __LINE__);                          \
  } while (false)

#endif  // VOSIM_UTIL_CONTRACTS_HPP
