// Runtime lane-width selection: compiled SIMD tier, CPU capability
// probe and the override/environment/auto resolution chain declared in
// lanes.hpp.
#include "src/util/lanes.hpp"

#include <atomic>
#include <cstdlib>

namespace vosim::lanes {
namespace {

std::atomic<std::size_t> g_override{0};

/// VOSIM_LANE_WIDTH, parsed once per process (0 when unset/invalid,
/// which falls through to auto).
std::size_t env_lane_width() noexcept {
  static const std::size_t cached = [] {
    std::size_t w = 0;
    if (const char* e = std::getenv("VOSIM_LANE_WIDTH"))
      parse_lane_width(e, w);
    return w;
  }();
  return cached;
}

}  // namespace

std::size_t max_compiled_lane_width() noexcept {
#if defined(__AVX512F__)
  return 512;
#elif defined(__AVX2__)
  return 256;
#else
  return 64;
#endif
}

const char* simd_compiled_name() noexcept {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "none";
#endif
}

std::size_t max_supported_lane_width() noexcept {
  std::size_t w = max_compiled_lane_width();
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (w >= 512 && !__builtin_cpu_supports("avx512f")) w = 256;
  if (w >= 256 && !__builtin_cpu_supports("avx2")) w = 64;
#endif
  return w;
}

void set_lane_width_override(std::size_t width) noexcept {
  if (width == 0 || is_lane_width(width))
    g_override.store(width, std::memory_order_relaxed);
}

std::size_t lane_width_override() noexcept {
  return g_override.load(std::memory_order_relaxed);
}

std::size_t resolve_lane_width(std::size_t requested) noexcept {
  if (is_lane_width(requested)) return requested;
  const std::size_t ovr = lane_width_override();
  if (is_lane_width(ovr)) return ovr;
  const std::size_t env = env_lane_width();
  if (is_lane_width(env)) return env;
  // Auto is 64, not max_supported_lane_width(): the wide engines are
  // bit-exact but measure at or below parity on walk-dominated VOS
  // sweeps (lanes.hpp, DESIGN.md §7), so widening is opt-in.
  return 64;
}

bool parse_lane_width(std::string_view text, std::size_t& width) noexcept {
  if (text == "auto") {
    width = 0;
    return true;
  }
  if (text == "64") {
    width = 64;
    return true;
  }
  if (text == "256") {
    width = 256;
    return true;
  }
  if (text == "512") {
    width = 512;
    return true;
  }
  return false;
}

}  // namespace vosim::lanes
