#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vosim {

unsigned hardware_parallelism() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned max_threads) {
  if (count == 0) return;
  unsigned workers = max_threads == 0 ? hardware_parallelism() : max_threads;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, count));

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    // Check the stop flag in the claim loop so that once any worker
    // fails, pending iterations are cancelled instead of drained — a
    // contract violation at index 3 of a million-pattern sweep must not
    // burn the remaining million-minus-three bodies.
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vosim
