#include "src/util/parallel.hpp"

#include <algorithm>
#include <limits>

namespace vosim {

namespace {
// Set while a thread executes pool work; reentrant parallel() calls from
// such a thread run inline instead of deadlocking on the sleeping pool.
thread_local bool in_pool_body = false;
}  // namespace

unsigned hardware_parallelism() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_parallelism() - 1;
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

void ThreadPool::work_on(Job& job, std::unique_lock<std::mutex>& lk) {
  // Claim indices one at a time under the pool lock; bodies are coarse
  // (whole-triad characterizations), so claim cost is negligible. Once
  // any body fails, job.stop cancels the unclaimed remainder — a
  // contract violation at index 3 of a large sweep must not burn the
  // remaining bodies.
  ++busy_;
  while (!job.stop && job.next < job.count) {
    const std::size_t i = job.next++;
    lk.unlock();
    std::exception_ptr err;
    const bool was_in_body = in_pool_body;
    in_pool_body = true;
    try {
      (*job.body)(i);
    } catch (...) {
      err = std::current_exception();
    }
    in_pool_body = was_in_body;
    lk.lock();
    if (err) {
      if (!job.error) job.error = err;
      job.stop = true;
    }
  }
  --busy_;
  done_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(m_);
  std::uint64_t seen = 0;
  for (;;) {
    wake_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr || job->participants >= job->max_participants)
      continue;
    ++job->participants;
    work_on(*job, lk);
  }
}

void ThreadPool::parallel(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          unsigned max_threads) {
  if (count == 0) return;
  const std::size_t cap =
      max_threads == 0 ? std::numeric_limits<std::size_t>::max() : max_threads;
  if (in_pool_body || workers_.empty() || cap <= 1 || count == 1) {
    // Serial (or reentrant) path: in index order on the calling thread.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_m_);
  Job job;
  job.count = count;
  job.body = &body;
  job.max_participants = static_cast<unsigned>(
      std::min({cap, count, workers_.size() + 1}));
  {
    std::unique_lock<std::mutex> lk(m_);
    job_ = &job;
    ++generation_;
    wake_cv_.notify_all();
    ++job.participants;  // the submitter works too
    work_on(job, lk);
    done_cv_.wait(lk, [&] { return busy_ == 0; });
    job_ = nullptr;  // late-waking workers must not touch the dead job
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& shared_thread_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  unsigned max_threads) {
  shared_thread_pool().parallel(count, body, max_threads);
}

}  // namespace vosim
