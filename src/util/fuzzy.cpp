#include "src/util/fuzzy.hpp"

#include <algorithm>
#include <vector>

namespace vosim {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[m];
}

std::string closest_match(std::string_view name,
                          std::span<const std::string> candidates) {
  const std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
  std::size_t best = budget + 1;
  std::string pick;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best) {
      best = d;
      pick = c;
    }
  }
  return pick;
}

}  // namespace vosim
