// Deterministic, fast pseudo-random number generation.
//
// Characterization sweeps fan out one Rng per (triad, worker) derived from a
// master seed, so multi-threaded runs are bit-reproducible (DESIGN.md §6.4).
// xoshiro256** is used instead of std::mt19937_64 because pattern generation
// sits on the hot path of million-operation sweeps.
#ifndef VOSIM_UTIL_RNG_HPP
#define VOSIM_UTIL_RNG_HPP

#include <array>
#include <cstdint>

#include "src/util/contracts.hpp"

namespace vosim {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64 uniformly random bits.
  std::uint64_t operator()() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool flip(double p) noexcept;

  /// Standard normal variate (Box-Muller, stateless variant).
  double gaussian() noexcept;

  /// A word whose low `bits` bits are uniformly random. Precondition:
  /// bits <= 64.
  std::uint64_t bits(int nbits);

  /// Derives an independent child generator; used to give each worker or
  /// triad its own stream.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vosim

#endif  // VOSIM_UTIL_RNG_HPP
