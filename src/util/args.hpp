// Minimal command-line argument parsing for the vosim tools: positional
// arguments plus --key=value / --key value options and --flags. A bare
// "--" ends option parsing; everything after it is positional.
#ifndef VOSIM_UTIL_ARGS_HPP
#define VOSIM_UTIL_ARGS_HPP

#include <optional>
#include <string>
#include <vector>

namespace vosim {

/// Parsed argv. Options may appear anywhere; everything else is
/// positional in order.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);
  /// Convenience for tests.
  explicit ArgParser(const std::vector<std::string>& args);

  const std::string& program() const noexcept { return program_; }
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True when --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Option value; empty optional when absent, "" for a bare flag.
  std::optional<std::string> value(const std::string& name) const;

  /// Typed getters with defaults. Throw std::invalid_argument on
  /// malformed numbers, and when the option is present but has no value
  /// (e.g. "--patterns --csv=x" — the value-taking key must not be
  /// silently demoted to a flag).
  std::string get(const std::string& name,
                  const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// List-valued option: every occurrence of --name contributes its
  /// comma-separated items in order ("--w fir,blur --w dot" ->
  /// {fir, blur, dot}); empty items are dropped. Returns `fallback`
  /// when the option never appears, and throws std::invalid_argument
  /// when any occurrence is a bare value-less flag.
  std::vector<std::string> get_list(
      const std::string& name,
      const std::vector<std::string>& fallback = {}) const;

  /// Canonical one-line reconstruction of the invocation (positionals
  /// in order, then options in parse order as --key=value / --key).
  /// Stable for identical invocations — the run-manifest config hash
  /// is computed over this string.
  std::string canonical() const;

 private:
  void parse(const std::vector<std::string>& args);
  /// Like value(), but throws std::invalid_argument when the option is
  /// present as a bare flag — used by the value-taking getters.
  std::optional<std::string> required_value(const std::string& name) const;

  std::string program_ = "vosim";
  std::vector<std::string> positional_;
  // nullopt value = bare flag; "" = explicitly empty value (--key=).
  std::vector<std::pair<std::string, std::optional<std::string>>> options_;
};

}  // namespace vosim

#endif  // VOSIM_UTIL_ARGS_HPP
