#include "src/util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "src/util/contracts.hpp"

namespace vosim {

std::string format_double(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one decimal ("1.50" -> "1.5").
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VOSIM_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  VOSIM_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row_values(std::initializer_list<double> values,
                               int prec) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(format_double(v, prec));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << row[c] << " |";
    os << '\n';
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string write_csv(const TextTable& table, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV output file: " + path);
  table.print_csv(f);
  return path;
}

}  // namespace vosim
