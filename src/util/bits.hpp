// Bit-level helpers shared by adder generators, carry-chain analysis and
// error metrics. All operands are std::uint64_t words holding <= 63-bit
// values (DESIGN.md §6.1).
#ifndef VOSIM_UTIL_BITS_HPP
#define VOSIM_UTIL_BITS_HPP

#include <bit>
#include <cstddef>
#include <cstdint>

#include "src/util/contracts.hpp"
#include "src/util/lanes.hpp"

namespace vosim {

/// Maximum operand width supported by the word-based arithmetic paths.
inline constexpr int max_word_bits = 63;

/// Mask with the low `n` bits set. Precondition: 0 <= n <= 64.
/// Forwards to lanes::mask — the single home of the mask/popcount
/// helpers, which also defines the 256/512-lane wide versions.
constexpr std::uint64_t mask_n(int n) {
  return lanes::mask(static_cast<std::size_t>(n));
}

/// Value of bit `i` of `x` as 0/1.
constexpr int bit_of(std::uint64_t x, int i) {
  return static_cast<int>((x >> i) & 1ULL);
}

/// `x` with bit `i` set to `v`.
constexpr std::uint64_t with_bit(std::uint64_t x, int i, bool v) {
  return v ? (x | (1ULL << i)) : (x & ~(1ULL << i));
}

/// Number of set bits. Forwards to lanes::popcount (see mask_n).
constexpr int popcount_u64(std::uint64_t x) { return lanes::popcount(x); }

/// Hamming distance between two words restricted to their low `n` bits.
constexpr int hamming_distance(std::uint64_t a, std::uint64_t b, int n) {
  return std::popcount((a ^ b) & mask_n(n));
}

/// Length of the longest run of consecutive 1-bits in the low `n` bits.
constexpr int longest_one_run(std::uint64_t x, int n) {
  x &= mask_n(n);
  int len = 0;
  // Each AND-with-shift peels one bit off every run; the number of
  // iterations until the word dies is the longest run length.
  while (x != 0) {
    x &= (x << 1);
    ++len;
  }
  return len;
}

/// Reference n-bit addition: returns the (n+1)-bit exact result
/// (sum plus carry-out in bit n). Preconditions: operands fit in n bits.
inline std::uint64_t exact_add(std::uint64_t a, std::uint64_t b, int n,
                               bool carry_in = false) {
  VOSIM_EXPECTS(n >= 1 && n <= max_word_bits);
  VOSIM_EXPECTS((a & ~mask_n(n)) == 0 && (b & ~mask_n(n)) == 0);
  return (a + b + (carry_in ? 1u : 0u)) & mask_n(n + 1);
}

}  // namespace vosim

#endif  // VOSIM_UTIL_BITS_HPP
