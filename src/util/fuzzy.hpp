// Small fuzzy string matching for "did you mean …?" diagnostics (the
// circuit registries use it to turn an unknown spec into a suggestion).
#ifndef VOSIM_UTIL_FUZZY_HPP
#define VOSIM_UTIL_FUZZY_HPP

#include <span>
#include <string>
#include <string_view>

namespace vosim {

/// Levenshtein edit distance (insert/delete/substitute, each cost 1).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name`, or "" when nothing is close enough:
/// a match must be within max(2, |name| / 3) edits. Ties keep the first
/// candidate, so registry order decides.
std::string closest_match(std::string_view name,
                          std::span<const std::string> candidates);

}  // namespace vosim

#endif  // VOSIM_UTIL_FUZZY_HPP
