// Fork-join parallelism for the characterization sweeps.
//
// ThreadPool keeps its workers alive across calls, so a bench that
// characterizes many triad grids back-to-back pays thread creation once
// instead of per sweep; shared_thread_pool() is the process-wide
// instance every sweep dispatches through (bench_perf_speedup measures
// the dispatch overhead against spawn-per-call).
#ifndef VOSIM_UTIL_PARALLEL_HPP
#define VOSIM_UTIL_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vosim {

/// Number of hardware threads, at least 1.
unsigned hardware_parallelism() noexcept;

/// Persistent fork-join worker pool. Workers are spawned once at
/// construction and sleep between jobs; parallel() wakes them, has the
/// calling thread participate, and joins when every claimed index has
/// run. One job runs at a time (concurrent submitters are serialized).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware default minus one, so a
  /// participating submitter saturates the machine).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resident worker threads (not counting submitters).
  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs body(i) for i in [0, count) on up to `max_threads` threads
  /// (0 = all workers + the caller). Indices are claimed one at a time,
  /// so bodies should be coarse (a triad characterization, not a single
  /// addition). Exceptions: the first is rethrown after the job drains;
  /// once any body throws, unclaimed indices are cancelled. Reentrant
  /// calls from inside a body run inline and serially on the caller.
  void parallel(std::size_t count,
                const std::function<void(std::size_t)>& body,
                unsigned max_threads = 0);

 private:
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t next = 0;            // next unclaimed index
    bool stop = false;               // cancel unclaimed indices
    unsigned max_participants = 0;   // including the submitter
    unsigned participants = 0;
    std::exception_ptr error;        // first failure wins
  };

  void worker_loop();
  void work_on(Job& job, std::unique_lock<std::mutex>& lk);

  std::vector<std::thread> workers_;
  std::mutex m_;  // guards job_, generation_, shutdown_, busy_, Job fields
  std::condition_variable wake_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // submitter waits for busy_ == 0
  std::mutex submit_m_;              // serializes parallel() submitters
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  unsigned busy_ = 0;  // workers currently executing job bodies
};

/// The process-wide pool used by characterize_dut and parallel_for.
ThreadPool& shared_thread_pool();

/// Runs `body(index)` for index in [0, count) across up to `max_threads`
/// threads (0 = hardware default) on the shared pool. The caller is
/// responsible for making bodies independent. Exceptions thrown by
/// bodies are rethrown (first one wins) after all threads join; once any
/// body throws, not-yet-claimed indices are cancelled, so a failing
/// sweep stops promptly instead of draining the remaining work.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned max_threads = 0);

}  // namespace vosim

#endif  // VOSIM_UTIL_PARALLEL_HPP
