// Minimal fork-join parallel loop used by the characterization sweeps.
#ifndef VOSIM_UTIL_PARALLEL_HPP
#define VOSIM_UTIL_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace vosim {

/// Number of hardware threads, at least 1.
unsigned hardware_parallelism() noexcept;

/// Runs `body(index)` for index in [0, count) across up to `max_threads`
/// threads (0 = hardware default). Indices are dealt in contiguous chunks;
/// the caller is responsible for making bodies independent. Exceptions
/// thrown by bodies are rethrown (first one wins) after all threads join;
/// once any body throws, not-yet-claimed indices are cancelled, so a
/// failing sweep stops promptly instead of draining the remaining work.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned max_threads = 0);

}  // namespace vosim

#endif  // VOSIM_UTIL_PARALLEL_HPP
