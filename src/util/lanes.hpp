// Lane-word layer for bit-parallel simulation: one machine word holds
// one logic value per *lane*, where a lane is either an independent
// input pattern (streaming sweeps) or a consecutive clock cycle
// (batched sequential simulation, DESIGN.md §10).
//
// Everything that packs, masks, or iterates lanes goes through this
// header so that widening the word (e.g. 256/512 lanes with AVX2 /
// AVX-512 intrinsics) only changes the definitions here, not the
// engines built on top of them.
#ifndef VOSIM_UTIL_LANES_HPP
#define VOSIM_UTIL_LANES_HPP

#include <bit>
#include <cstddef>
#include <cstdint>

namespace vosim::lanes {

/// The lane word. All per-net simulator state (settled / stale /
/// sampled values, pulse flags) is stored as one Word per net.
using Word = std::uint64_t;

/// Number of lanes a Word carries (one bit per lane).
inline constexpr std::size_t kWordLanes = 64;

/// Word with only lane `k` set. Precondition: k < kWordLanes.
constexpr Word bit(std::size_t k) { return Word{1} << k; }

/// Mask selecting the low `n` lanes. Precondition: 0 <= n <= kWordLanes.
constexpr Word mask(std::size_t n) {
  return n >= kWordLanes ? ~Word{0} : (bit(n) - Word{1});
}

/// Number of set lanes in `w`.
constexpr int popcount(Word w) { return std::popcount(w); }

/// Value of lane `k` of `w` as 0/1.
constexpr std::uint8_t lane_bit(Word w, std::size_t k) {
  return static_cast<std::uint8_t>((w >> k) & Word{1});
}

/// Calls `fn(k)` for each set lane `k` of `w`, in ascending lane order.
/// Ascending order matters for the cycle-batch path, where lane k
/// depends on lane k-1 of the same word (DESIGN.md §10).
template <class Fn>
constexpr void for_each_lane(Word w, Fn&& fn) {
  while (w != 0) {
    const std::size_t k = static_cast<std::size_t>(std::countr_zero(w));
    fn(k);
    w &= w - Word{1};
  }
}

}  // namespace vosim::lanes

#endif  // VOSIM_UTIL_LANES_HPP
