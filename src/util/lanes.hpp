// Lane-word layer for bit-parallel simulation: one machine word holds
// one logic value per *lane*, where a lane is either an independent
// input pattern (streaming sweeps) or a consecutive clock cycle
// (batched sequential simulation, DESIGN.md §10).
//
// Everything that packs, masks, or iterates lanes goes through this
// header. Three lane words exist (DESIGN.md §7):
//
//   Word            64 lanes, plain uint64_t — the portable baseline
//   Word256        256 lanes, 4×uint64_t sub-words (AVX2-sized)
//   Word512        512 lanes, 8×uint64_t sub-words (AVX-512-sized)
//
// The wide words are plain sub-word arrays with element-wise bitwise
// operators: built with -mavx2/-mavx512f the compiler lowers them to
// single vector ops, and built without any SIMD flags they are still
// correct (just scalar), so every instantiation can be compiled — and
// forced via --lane-width / VOSIM_LANE_WIDTH — on every host. The
// runtime dispatch below picks the widest width that is both compiled
// in and supported by the CPU.
#ifndef VOSIM_UTIL_LANES_HPP
#define VOSIM_UTIL_LANES_HPP

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace vosim::lanes {

/// The default lane word. All per-net simulator state (settled / stale
/// / sampled values, pulse flags) is stored as one lane word per net.
using Word = std::uint64_t;

/// Number of lanes a Word carries (one bit per lane).
inline constexpr std::size_t kWordLanes = 64;

/// Wide lane word: NSub uint64_t sub-words, lane k living in bit
/// (k % 64) of sub-word (k / 64). Bitwise operators are element-wise
/// loops the compiler auto-vectorizes when the matching ISA is enabled.
template <std::size_t NSub>
struct alignas(8 * NSub) WideWord {
  static_assert(NSub >= 2 && (NSub & (NSub - 1)) == 0,
                "sub-word count must be a power of two >= 2");
  std::uint64_t s[NSub];

  constexpr WideWord& operator&=(const WideWord& o) {
    for (std::size_t i = 0; i < NSub; ++i) s[i] &= o.s[i];
    return *this;
  }
  constexpr WideWord& operator|=(const WideWord& o) {
    for (std::size_t i = 0; i < NSub; ++i) s[i] |= o.s[i];
    return *this;
  }
  constexpr WideWord& operator^=(const WideWord& o) {
    for (std::size_t i = 0; i < NSub; ++i) s[i] ^= o.s[i];
    return *this;
  }
  friend constexpr WideWord operator&(WideWord a, const WideWord& b) {
    return a &= b;
  }
  friend constexpr WideWord operator|(WideWord a, const WideWord& b) {
    return a |= b;
  }
  friend constexpr WideWord operator^(WideWord a, const WideWord& b) {
    return a ^= b;
  }
  friend constexpr WideWord operator~(WideWord a) {
    for (std::size_t i = 0; i < NSub; ++i) a.s[i] = ~a.s[i];
    return a;
  }
  friend constexpr bool operator==(const WideWord&,
                                   const WideWord&) = default;
};

/// 256-lane word (AVX2-sized) — 4 uint64_t sub-words.
using Word256 = WideWord<4>;
/// 512-lane word (AVX-512-sized) — 8 uint64_t sub-words.
using Word512 = WideWord<8>;

/// Lane traits: lane and sub-word counts of a lane word type.
template <class W>
struct LaneTraits;
template <>
struct LaneTraits<Word> {
  static constexpr std::size_t kLanes = kWordLanes;
  static constexpr std::size_t kSubwords = 1;
};
template <std::size_t NSub>
struct LaneTraits<WideWord<NSub>> {
  static constexpr std::size_t kLanes = NSub * kWordLanes;
  static constexpr std::size_t kSubwords = NSub;
};

template <class W>
inline constexpr std::size_t lane_count_v = LaneTraits<W>::kLanes;
template <class W>
inline constexpr std::size_t subword_count_v = LaneTraits<W>::kSubwords;

/// Sub-word `i` of a lane word (the whole word for plain Word).
constexpr std::uint64_t subword(Word w, std::size_t) { return w; }
template <std::size_t N>
constexpr std::uint64_t subword(const WideWord<N>& w, std::size_t i) {
  assert(i < N);
  return w.s[i];
}

/// Replaces sub-word `i` of a lane word.
constexpr void set_subword(Word& w, std::size_t, std::uint64_t v) {
  w = v;
}
template <std::size_t N>
constexpr void set_subword(WideWord<N>& w, std::size_t i,
                           std::uint64_t v) {
  assert(i < N);
  w.s[i] = v;
}

/// Word with only lane `k` set. Precondition: k < lane_count_v<W>.
template <class W = Word>
constexpr W bit(std::size_t k) {
  assert(k < lane_count_v<W>);
  if constexpr (std::is_same_v<W, Word>) {
    return Word{1} << k;
  } else {
    W r{};
    r.s[k / kWordLanes] = std::uint64_t{1} << (k % kWordLanes);
    return r;
  }
}

/// Mask selecting the low `n` lanes. Precondition: n <= lane_count_v<W>.
template <class W = Word>
constexpr W mask(std::size_t n) {
  assert(n <= lane_count_v<W>);
  if constexpr (std::is_same_v<W, Word>) {
    return n >= kWordLanes ? ~Word{0} : ((Word{1} << n) - Word{1});
  } else {
    W r{};
    for (std::size_t i = 0; i < subword_count_v<W>; ++i) {
      const std::size_t lo = i * kWordLanes;
      r.s[i] = n >= lo + kWordLanes ? ~std::uint64_t{0}
               : n > lo ? ((std::uint64_t{1} << (n - lo)) - 1)
                        : std::uint64_t{0};
    }
    return r;
  }
}

/// Number of set lanes in `w`.
constexpr int popcount(Word w) { return std::popcount(w); }
template <std::size_t N>
constexpr int popcount(const WideWord<N>& w) {
  int c = 0;
  for (std::size_t i = 0; i < N; ++i) c += std::popcount(w.s[i]);
  return c;
}

/// Value of lane `k` of `w` as 0/1. Precondition: k < lane_count_v<W>.
constexpr std::uint8_t lane_bit(Word w, std::size_t k) {
  assert(k < kWordLanes);
  return static_cast<std::uint8_t>((w >> k) & Word{1});
}
template <std::size_t N>
constexpr std::uint8_t lane_bit(const WideWord<N>& w, std::size_t k) {
  assert(k < N * kWordLanes);
  return static_cast<std::uint8_t>((w.s[k / kWordLanes] >>
                                    (k % kWordLanes)) &
                                   std::uint64_t{1});
}

/// Toggles lane `k` of `w` in place (single-sub-word op on wide words,
/// cheaper than w ^= bit<W>(k) for the per-lane serial walks).
constexpr void toggle_lane(Word& w, std::size_t k) {
  assert(k < kWordLanes);
  w ^= Word{1} << k;
}
template <std::size_t N>
constexpr void toggle_lane(WideWord<N>& w, std::size_t k) {
  assert(k < N * kWordLanes);
  w.s[k / kWordLanes] ^= std::uint64_t{1} << (k % kWordLanes);
}

/// Sets lane `k` of `w` in place (see toggle_lane).
constexpr void set_lane(Word& w, std::size_t k) {
  assert(k < kWordLanes);
  w |= Word{1} << k;
}
template <std::size_t N>
constexpr void set_lane(WideWord<N>& w, std::size_t k) {
  assert(k < N * kWordLanes);
  w.s[k / kWordLanes] |= std::uint64_t{1} << (k % kWordLanes);
}

/// Sets lane `k` of `w` to `v` in place.
constexpr void assign_lane(Word& w, std::size_t k, bool v) {
  assert(k < kWordLanes);
  const Word b = Word{1} << k;
  w = v ? (w | b) : (w & ~b);
}
template <std::size_t N>
constexpr void assign_lane(WideWord<N>& w, std::size_t k, bool v) {
  assert(k < N * kWordLanes);
  assign_lane(w.s[k / kWordLanes], k % kWordLanes, v);
}

/// True iff any lane of `w` is set.
constexpr bool any(Word w) { return w != Word{0}; }
template <std::size_t N>
constexpr bool any(const WideWord<N>& w) {
  std::uint64_t o = 0;
  for (std::size_t i = 0; i < N; ++i) o |= w.s[i];
  return o != 0;
}

/// Whole-word shift up by one lane, shifting `low` into lane 0: the
/// stale-value recurrence stale(k) = settled(k-1) of streaming mode.
constexpr Word shift1_in(Word w, std::uint8_t low) {
  return (w << 1) | Word{static_cast<std::uint64_t>(low & 1)};
}
template <std::size_t N>
constexpr WideWord<N> shift1_in(const WideWord<N>& w, std::uint8_t low) {
  // No loop-carried dependency: sub-word i reads sub-word i-1's top
  // bit directly, so the loop vectorizes instead of serializing on a
  // carry chain.
  WideWord<N> r{};
  r.s[0] = (w.s[0] << 1) | static_cast<std::uint64_t>(low & 1);
  for (std::size_t i = 1; i < N; ++i)
    r.s[i] = (w.s[i] << 1) | (w.s[i - 1] >> (kWordLanes - 1));
  return r;
}

/// a AND NOT b, lane-wise.
template <class W>
constexpr W andn(const W& a, const W& b) {
  return a & ~b;
}

/// Lane-wise select: lane k of the result is a(k) where m(k)=1, else
/// b(k).
template <class W>
constexpr W select(const W& m, const W& a, const W& b) {
  return (a & m) | (b & ~m);
}

/// Calls `fn(k)` for each set lane `k` of `w`, in ascending lane order.
/// Ascending order matters for the cycle-batch path, where lane k
/// depends on lane k-1 of the same word (DESIGN.md §10).
template <class Fn>
constexpr void for_each_lane(Word w, Fn&& fn) {
  while (w != 0) {
    const std::size_t k = static_cast<std::size_t>(std::countr_zero(w));
    fn(k);
    w &= w - Word{1};
  }
}
template <std::size_t N, class Fn>
constexpr void for_each_lane(const WideWord<N>& w, Fn&& fn) {
  for (std::size_t i = 0; i < N; ++i) {
    std::uint64_t ws = w.s[i];
    const std::size_t base = i * kWordLanes;
    while (ws != 0) {
      fn(base + static_cast<std::size_t>(std::countr_zero(ws)));
      ws &= ws - 1;
    }
  }
}

// ---- Runtime lane-width selection (lanes.cpp) -----------------------
//
// A lane width is 64, 256 or 512 (lanes per simulator pass). Width
// resolution precedence, first valid wins:
//   1. an explicit per-engine request (TimingSimConfig::lane_width)
//   2. the process-wide override (--lane-width via
//      set_lane_width_override)
//   3. the VOSIM_LANE_WIDTH environment variable ("64"/"256"/"512")
//   4. auto: 64
// Explicit requests are honored even beyond what the build or CPU can
// accelerate — every instantiation is compiled portably, wider words
// just lower to scalar sub-word loops. Auto deliberately stays at 64
// rather than the widest accelerated width: on the deep over-scaling
// sweeps this simulator exists for, per-lane serial event walks
// dominate wall-clock (the packed word recurrence is a minority of the
// profile), so 256/512-lane words measure at or below parity with the
// 64-lane engine (DESIGN.md §7). Wide words are a measured, bit-exact
// opt-in for low-activity workloads, not a default.

/// True iff `width` is a valid lane width (64, 256 or 512).
constexpr bool is_lane_width(std::size_t width) {
  return width == 64 || width == 256 || width == 512;
}

/// Widest lane width the build was compiled to accelerate: 512 with
/// AVX-512F, 256 with AVX2, else 64.
std::size_t max_compiled_lane_width() noexcept;

/// Widest lane width that is compiled in AND supported by this CPU.
std::size_t max_supported_lane_width() noexcept;

/// Name of the widest compiled SIMD tier: "avx512", "avx2" or "none".
const char* simd_compiled_name() noexcept;

/// Sets (width 64/256/512) or clears (width 0) the process-wide lane
/// width override. Invalid widths are ignored.
void set_lane_width_override(std::size_t width) noexcept;

/// Current process-wide override, 0 if none.
std::size_t lane_width_override() noexcept;

/// Resolves a lane-width request (0 = auto) against the override, the
/// VOSIM_LANE_WIDTH environment variable and the host capabilities.
/// Always returns 64, 256 or 512.
std::size_t resolve_lane_width(std::size_t requested) noexcept;

/// Parses "auto"/"64"/"256"/"512" into a width (auto -> 0). Returns
/// false on anything else.
bool parse_lane_width(std::string_view text, std::size_t& width) noexcept;

}  // namespace vosim::lanes

#endif  // VOSIM_UTIL_LANES_HPP
