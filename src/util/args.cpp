#include "src/util/args.hpp"

#include <stdexcept>

#include "src/util/contracts.hpp"

namespace vosim {

ArgParser::ArgParser(int argc, const char* const* argv) {
  VOSIM_EXPECTS(argc >= 1);
  program_ = argv[0];
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

void ArgParser::parse(const std::vector<std::string>& args) {
  bool options_ended = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (options_ended || arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    // "--" ends option parsing; every later token is positional even if
    // it starts with "--".
    if (arg == "--") {
      options_ended = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // "--key value" when the next token is not an option itself;
    // otherwise a bare flag (no value). Flags are kept distinct from
    // empty-valued options so the typed getters can reject "--key
    // --other" loudly instead of misparsing --key as a flag.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      options_.emplace_back(body, args[i + 1]);
      ++i;
    } else {
      options_.emplace_back(body, std::nullopt);
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  for (const auto& [key, value] : options_)
    if (key == name) return true;
  return false;
}

std::optional<std::string> ArgParser::value(const std::string& name) const {
  for (const auto& [key, val] : options_)
    if (key == name) return val.value_or("");
  return std::nullopt;
}

std::optional<std::string> ArgParser::required_value(
    const std::string& name) const {
  for (const auto& [key, val] : options_) {
    if (key != name) continue;
    if (!val.has_value())
      throw std::invalid_argument("missing value for option --" + name);
    return val;
  }
  return std::nullopt;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto v = required_value(name);
  return v.has_value() ? *v : fallback;
}

long ArgParser::get_int(const std::string& name, long fallback) const {
  const auto v = required_value(name);
  if (!v.has_value()) return fallback;
  std::size_t used = 0;
  const long out = std::stol(*v, &used);
  if (used != v->size())
    throw std::invalid_argument("not an integer: --" + name + "=" + *v);
  return out;
}

std::vector<std::string> ArgParser::get_list(
    const std::string& name,
    const std::vector<std::string>& fallback) const {
  std::vector<std::string> items;
  bool present = false;
  for (const auto& [key, val] : options_) {
    if (key != name) continue;
    present = true;
    if (!val.has_value())
      throw std::invalid_argument("missing value for option --" + name);
    std::size_t begin = 0;
    while (begin <= val->size()) {
      std::size_t end = val->find(',', begin);
      if (end == std::string::npos) end = val->size();
      if (end > begin) items.push_back(val->substr(begin, end - begin));
      begin = end + 1;
    }
  }
  return present ? items : fallback;
}

std::string ArgParser::canonical() const {
  std::string out;
  for (const std::string& p : positional_) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  for (const auto& [key, val] : options_) {
    if (!out.empty()) out += ' ';
    out += "--" + key;
    if (val.has_value()) out += "=" + *val;
  }
  return out;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = required_value(name);
  if (!v.has_value()) return fallback;
  std::size_t used = 0;
  const double out = std::stod(*v, &used);
  if (used != v->size())
    throw std::invalid_argument("not a number: --" + name + "=" + *v);
  return out;
}

}  // namespace vosim
