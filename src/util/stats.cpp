#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace vosim {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

/// Order-statistic interpolation on an already-sorted sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double quantile(std::vector<double> sample, double q) {
  VOSIM_EXPECTS(!sample.empty());
  VOSIM_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  return sorted_quantile(sample, q);
}

std::vector<double> quantiles(std::vector<double> sample,
                              const std::vector<double>& qs) {
  VOSIM_EXPECTS(!sample.empty());
  std::sort(sample.begin(), sample.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    VOSIM_EXPECTS(q >= 0.0 && q <= 1.0);
    out.push_back(sorted_quantile(sample, q));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  VOSIM_EXPECTS(bins >= 1);
  VOSIM_EXPECTS(hi > lo);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::center(std::size_t bucket) const {
  VOSIM_EXPECTS(bucket < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bucket) + 0.5);
}

void Histogram::merge(const Histogram& other) {
  VOSIM_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_ &&
                counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  VOSIM_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto n = static_cast<double>(counts_[i]);
    if (cum + n >= target && n > 0.0) {
      const double frac = (target - cum) / n;
      return lo_ + width * (static_cast<double>(i) + frac);
    }
    cum += n;
  }
  return hi_;
}

}  // namespace vosim
