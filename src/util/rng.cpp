#include "src/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace vosim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro256** must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  VOSIM_EXPECTS(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::in_range(std::uint64_t lo, std::uint64_t hi) {
  VOSIM_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return (*this)();
  return lo + below(span + 1);
}

double Rng::uniform() noexcept {
  // 53 high-quality bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::flip(double p) noexcept { return uniform() < p; }

double Rng::gaussian() noexcept {
  // Box-Muller; draws two uniforms per variate (simple and branch-free
  // enough for the variation model, which is not on the innermost loop).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t Rng::bits(int nbits) {
  VOSIM_EXPECTS(nbits >= 0 && nbits <= 64);
  if (nbits == 0) return 0;
  return (*this)() >> (64 - nbits);
}

Rng Rng::split() noexcept {
  Rng child(0);
  child.state_ = {(*this)(), (*this)(), (*this)(), (*this)()};
  if ((child.state_[0] | child.state_[1] | child.state_[2] |
       child.state_[3]) == 0)
    child.state_[0] = 1;
  return child;
}

}  // namespace vosim
