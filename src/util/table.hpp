// Console table and CSV rendering for benchmark harness output.
//
// Every bench binary prints the paper's rows with TextTable and can dump
// the same data as CSV for plotting.
#ifndef VOSIM_UTIL_TABLE_HPP
#define VOSIM_UTIL_TABLE_HPP

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace vosim {

/// Formats a double with `prec` significant decimals, trimming a bare ".".
std::string format_double(double v, int prec = 3);

/// Column-aligned text table with a header row, markdown-ish separators.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats every cell (doubles via format_double).
  void add_row_values(std::initializer_list<double> values, int prec = 3);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with padded columns, `|` separators and a dashed rule.
  void print(std::ostream& os) const;

  /// Renders as CSV (no padding, comma separated, header first).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a CSV file; throws std::runtime_error if the file cannot be
/// opened. Returns the path for logging convenience.
std::string write_csv(const TextTable& table, const std::string& path);

}  // namespace vosim

#endif  // VOSIM_UTIL_TABLE_HPP
