#include "src/sta/synthesis_report.hpp"

#include "src/sta/sta.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

SynthesisReport synthesize_report(const Netlist& netlist,
                                  const CellLibrary& lib,
                                  const SynthesisOptions& opt) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(opt.signoff_margin >= 1.0);
  SynthesisReport r;
  r.design = netlist.name();
  r.num_gates = static_cast<int>(netlist.num_gates());
  r.num_flops = static_cast<int>(netlist.primary_inputs().size() +
                                 netlist.primary_outputs().size());

  r.comb_area_um2 = netlist.cell_area_um2(lib);
  r.reg_area_um2 = lib.dff_area_um2() * r.num_flops;
  r.area_um2 = r.comb_area_um2 + r.reg_area_um2;

  const OperatingTriad op{0.0, opt.vdd_v, opt.vbb_v};
  const TimingAnalysis ta = analyze_timing(netlist, lib, op);
  r.tt_critical_path_ns = ta.critical_path_ps * 1e-3;
  r.critical_path_ns = r.tt_critical_path_ns * opt.signoff_margin;

  // Power report at the synthesis clock (the reported critical path).
  const double tclk_ns = r.critical_path_ns;
  double switched_fj = 0.0;
  const std::vector<double> loads = netlist.compute_net_loads(lib);
  for (std::size_t n = 0; n < loads.size(); ++n)
    switched_fj += toggle_energy_fj(loads[n], opt.vdd_v);
  const double flop_fj = lib.dff_clock_energy_fj() * r.num_flops *
                         (opt.vdd_v * opt.vdd_v);
  // fJ per ns == µW.
  r.dynamic_power_uw =
      (opt.default_activity * switched_fj + flop_fj) / tclk_ns;

  double leak_nw = netlist.cell_leakage_nw(lib) +
                   lib.dff_leakage_nw() * r.num_flops;
  leak_nw *= lib.transistor_model().leakage_scale(opt.vdd_v, opt.vbb_v);
  r.leakage_power_uw = leak_nw * 1e-3;
  r.total_power_uw = r.dynamic_power_uw + r.leakage_power_uw;
  return r;
}

}  // namespace vosim
