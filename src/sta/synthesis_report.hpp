// Synthesis-style reporting (area / power / critical path), reproducing
// the kind of numbers in the paper's Table II. The reported critical
// path includes a signoff pessimism margin over the typical corner —
// the paper notes that "EDA tools introduce additional timing margin in
// the datapaths during STA due to clock path pessimism" (Section III);
// that margin is exactly why mild voltage over-scaling is error-free.
#ifndef VOSIM_STA_SYNTHESIS_REPORT_HPP
#define VOSIM_STA_SYNTHESIS_REPORT_HPP

#include <string>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Knobs of the pseudo-synthesis flow.
struct SynthesisOptions {
  /// Ratio of the signoff (reported) critical path to the typical-corner
  /// one: slow process corner, on-chip variation and clock margins.
  double signoff_margin = 1.55;
  /// Average switching activity assumed for the power report.
  double default_activity = 0.30;
  /// Supply/bias for the report (Table II reports 1 V, no body bias).
  double vdd_v = 1.0;
  double vbb_v = 0.0;
};

/// The numbers a synthesis tool would report for a registered operator.
struct SynthesisReport {
  std::string design;
  int num_gates = 0;
  int num_flops = 0;  ///< registered inputs + outputs
  double comb_area_um2 = 0.0;
  double reg_area_um2 = 0.0;
  double area_um2 = 0.0;  ///< total
  double dynamic_power_uw = 0.0;
  double leakage_power_uw = 0.0;
  double total_power_uw = 0.0;
  double tt_critical_path_ns = 0.0;  ///< typical-corner (event-sim truth)
  double critical_path_ns = 0.0;     ///< reported, includes signoff margin
};

/// Runs STA + area/power accounting on a finalized netlist.
SynthesisReport synthesize_report(const Netlist& netlist,
                                  const CellLibrary& lib,
                                  const SynthesisOptions& opt = {});

}  // namespace vosim

#endif  // VOSIM_STA_SYNTHESIS_REPORT_HPP
