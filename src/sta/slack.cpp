#include "src/sta/slack.hpp"

#include <algorithm>

#include "src/sta/sta.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::vector<OutputSlack> output_slacks(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op) {
  VOSIM_EXPECTS(op.tclk_ns > 0.0);
  const TimingAnalysis ta = analyze_timing(netlist, lib, op);
  const double tclk_ps = op.tclk_ns * 1e3;
  std::vector<OutputSlack> out;
  const auto pos = netlist.primary_outputs();
  out.reserve(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out.push_back(OutputSlack{pos[i], ta.output_arrival_ps[i],
                              tclk_ps - ta.output_arrival_ps[i]});
  }
  return out;
}

int failing_outputs(const Netlist& netlist, const CellLibrary& lib,
                    const OperatingTriad& op) {
  int n = 0;
  for (const OutputSlack& s : output_slacks(netlist, lib, op))
    if (s.slack_ps < 0.0) ++n;
  return n;
}

Histogram arrival_histogram(const Netlist& netlist, const CellLibrary& lib,
                            const OperatingTriad& op, std::size_t bins) {
  const TimingAnalysis ta = analyze_timing(netlist, lib, op);
  VOSIM_EXPECTS(ta.critical_path_ps > 0.0);
  Histogram h(0.0, 1.0, bins);
  for (const double a : ta.output_arrival_ps)
    h.add(a / ta.critical_path_ps);
  return h;
}

int distinct_arrival_classes(const Netlist& netlist, const CellLibrary& lib,
                             const OperatingTriad& op,
                             double tolerance_ps) {
  VOSIM_EXPECTS(tolerance_ps >= 0.0);
  TimingAnalysis ta = analyze_timing(netlist, lib, op);
  std::vector<double> arr = ta.output_arrival_ps;
  std::sort(arr.begin(), arr.end());
  int classes = 0;
  double last = -1e18;
  for (const double a : arr) {
    if (a - last > tolerance_ps) {
      ++classes;
      last = a;
    }
  }
  return classes;
}

std::vector<StageSlack> stage_slacks(std::span<const Netlist* const> stages,
                                     const CellLibrary& lib,
                                     const OperatingTriad& op) {
  VOSIM_EXPECTS(!stages.empty());
  VOSIM_EXPECTS(op.tclk_ns > 0.0);
  // Judge against the capture edge the sequential simulator samples at.
  const double capture_ps = op.tclk_ns * 1e3 - lib.dff_setup_ps();
  std::vector<StageSlack> out;
  out.reserve(stages.size());
  for (std::size_t k = 0; k < stages.size(); ++k) {
    const TimingAnalysis ta = analyze_timing(*stages[k], lib, op);
    StageSlack s;
    s.stage = static_cast<int>(k);
    s.critical_path_ps = ta.critical_path_ps;
    s.slack_ps = capture_ps - ta.critical_path_ps;
    for (const double a : ta.output_arrival_ps)
      if (a > capture_ps) ++s.failing_outputs;
    out.push_back(s);
  }
  return out;
}

}  // namespace vosim
