// Static timing analysis at an operating point.
//
// Provides per-net arrival times and critical-path extraction; the
// characterization flow uses it to pick clock periods (Table III) and the
// calibration tests use it to cross-check the event-driven simulator.
#ifndef VOSIM_STA_STA_HPP
#define VOSIM_STA_STA_HPP

#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Result of a timing analysis run.
struct TimingAnalysis {
  /// Worst-case arrival time per net (ps); primary inputs arrive at 0.
  std::vector<double> arrival_ps;
  /// Latest primary-output arrival (ps) — the critical path delay.
  double critical_path_ps = 0.0;
  /// Nets on the critical path, input to output order.
  std::vector<NetId> critical_nets;
  /// Arrival time of each primary output, in primary-output order (ps).
  std::vector<double> output_arrival_ps;
};

/// Longest-path analysis with the library delay model scaled to `op`.
/// Only the voltage part of the triad matters here (Tclk is a constraint,
/// not an input to arrival times).
TimingAnalysis analyze_timing(const Netlist& netlist, const CellLibrary& lib,
                              const OperatingTriad& op);

/// Worst-case arrival time per net when the per-gate delays are supplied
/// externally, e.g. with a process-variation sample applied (the same
/// "die" the simulators use): primary inputs arrive at 0 and
/// arrival[gate.out] = max over gate inputs + gate_delay_ps[gate].
/// `gate_delay_ps` must have one entry per gate. This is the arrival
/// model the levelized simulation backend latches stale values against
/// (src/sim/levelized_sim.hpp).
std::vector<double> arrival_times_ps(const Netlist& netlist,
                                     std::span<const double> gate_delay_ps);

/// Shortest-path (contamination) delay per primary output at `op` (ps).
std::vector<double> contamination_delays_ps(const Netlist& netlist,
                                            const CellLibrary& lib,
                                            const OperatingTriad& op);

}  // namespace vosim

#endif  // VOSIM_STA_STA_HPP
