// Slack and path-depth analysis: how much timing margin each output has
// at an operating triad, and how the endpoint arrival times distribute.
// The arrival distribution explains the BER-vs-triad *shape*: few
// distinct arrival classes → staircase (Brent-Kung), a dense spread →
// smooth/exponential (ripple-carry) — the paper's Fig. 8 observation.
#ifndef VOSIM_STA_SLACK_HPP
#define VOSIM_STA_SLACK_HPP

#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"
#include "src/util/stats.hpp"

namespace vosim {

/// Slack of one primary output at a triad.
struct OutputSlack {
  NetId net = invalid_net;
  double arrival_ps = 0.0;
  double slack_ps = 0.0;  ///< Tclk - arrival (negative = will miss)
};

/// Per-output slacks at the triad (uses the triad's Tclk).
std::vector<OutputSlack> output_slacks(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op);

/// Number of outputs with negative slack at the triad.
int failing_outputs(const Netlist& netlist, const CellLibrary& lib,
                    const OperatingTriad& op);

/// Histogram of primary-output arrival times normalized to the critical
/// path (buckets over [0, 1]).
Histogram arrival_histogram(const Netlist& netlist, const CellLibrary& lib,
                            const OperatingTriad& op, std::size_t bins = 10);

/// Count of *distinct* output-arrival classes (arrivals that differ by
/// more than `tolerance_ps`). Low counts produce staircase BER curves.
int distinct_arrival_classes(const Netlist& netlist, const CellLibrary& lib,
                             const OperatingTriad& op,
                             double tolerance_ps = 1.0);

/// Timing of one pipeline stage at a triad (see src/seq): the stage's
/// critical path against the shared clock's capture edge.
struct StageSlack {
  int stage = 0;
  double critical_path_ps = 0.0;  ///< worst output arrival in the stage
  double slack_ps = 0.0;  ///< Tclk − t_setup − critical path
  int failing_outputs = 0;        ///< outputs that miss the capture edge
};

/// Per-stage slack report of a multi-stage datapath sharing one clock:
/// every netlist is analyzed at the triad's voltage and judged against
/// the capture edge Tclk − t_setup (the library's flop setup — the
/// same edge the clocked simulator samples at, so the stage this
/// report names as failing first is the stage whose Razor monitors
/// fire first). The minimum slack names the stage the closed-loop
/// controller watches.
std::vector<StageSlack> stage_slacks(std::span<const Netlist* const> stages,
                                     const CellLibrary& lib,
                                     const OperatingTriad& op);

}  // namespace vosim

#endif  // VOSIM_STA_SLACK_HPP
