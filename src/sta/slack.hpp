// Slack and path-depth analysis: how much timing margin each output has
// at an operating triad, and how the endpoint arrival times distribute.
// The arrival distribution explains the BER-vs-triad *shape*: few
// distinct arrival classes → staircase (Brent-Kung), a dense spread →
// smooth/exponential (ripple-carry) — the paper's Fig. 8 observation.
#ifndef VOSIM_STA_SLACK_HPP
#define VOSIM_STA_SLACK_HPP

#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"
#include "src/util/stats.hpp"

namespace vosim {

/// Slack of one primary output at a triad.
struct OutputSlack {
  NetId net = invalid_net;
  double arrival_ps = 0.0;
  double slack_ps = 0.0;  ///< Tclk - arrival (negative = will miss)
};

/// Per-output slacks at the triad (uses the triad's Tclk).
std::vector<OutputSlack> output_slacks(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op);

/// Number of outputs with negative slack at the triad.
int failing_outputs(const Netlist& netlist, const CellLibrary& lib,
                    const OperatingTriad& op);

/// Histogram of primary-output arrival times normalized to the critical
/// path (buckets over [0, 1]).
Histogram arrival_histogram(const Netlist& netlist, const CellLibrary& lib,
                            const OperatingTriad& op, std::size_t bins = 10);

/// Count of *distinct* output-arrival classes (arrivals that differ by
/// more than `tolerance_ps`). Low counts produce staircase BER curves.
int distinct_arrival_classes(const Netlist& netlist, const CellLibrary& lib,
                             const OperatingTriad& op,
                             double tolerance_ps = 1.0);

}  // namespace vosim

#endif  // VOSIM_STA_SLACK_HPP
