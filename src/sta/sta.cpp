#include "src/sta/sta.hpp"

#include <algorithm>

#include "src/tech/gate_timing.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

TimingAnalysis analyze_timing(const Netlist& netlist, const CellLibrary& lib,
                              const OperatingTriad& op) {
  VOSIM_EXPECTS(netlist.finalized());
  TimingAnalysis out;
  out.arrival_ps.assign(netlist.num_nets(), 0.0);
  const std::vector<double> load = netlist.compute_net_loads(lib);
  // argmax input per gate output, for path tracing.
  std::vector<NetId> worst_input(netlist.num_nets(), invalid_net);

  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    double in_arr = 0.0;
    NetId argmax = invalid_net;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) {
      const double a = out.arrival_ps[g.in[i]];
      if (argmax == invalid_net || a > in_arr) {
        in_arr = a;
        argmax = g.in[i];
      }
    }
    const double d = gate_delay_ps(lib.cell(g.kind), load[g.out],
                                   lib.transistor_model(), op);
    out.arrival_ps[g.out] = in_arr + d;
    worst_input[g.out] = argmax;
  }

  NetId worst_po = invalid_net;
  for (const NetId po : netlist.primary_outputs()) {
    out.output_arrival_ps.push_back(out.arrival_ps[po]);
    if (worst_po == invalid_net ||
        out.arrival_ps[po] > out.arrival_ps[worst_po])
      worst_po = po;
  }
  VOSIM_ENSURES(worst_po != invalid_net);
  out.critical_path_ps = out.arrival_ps[worst_po];

  // Trace back from the worst output to a primary input.
  for (NetId n = worst_po; n != invalid_net; n = worst_input[n])
    out.critical_nets.push_back(n);
  std::reverse(out.critical_nets.begin(), out.critical_nets.end());
  return out;
}

std::vector<double> arrival_times_ps(const Netlist& netlist,
                                     std::span<const double> gate_delay_ps) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(gate_delay_ps.size() == netlist.num_gates());
  std::vector<double> arrival(netlist.num_nets(), 0.0);
  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    double in_arr = 0.0;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i)
      in_arr = std::max(in_arr, arrival[g.in[i]]);
    arrival[g.out] = in_arr + gate_delay_ps[gid];
  }
  return arrival;
}

std::vector<double> contamination_delays_ps(const Netlist& netlist,
                                            const CellLibrary& lib,
                                            const OperatingTriad& op) {
  VOSIM_EXPECTS(netlist.finalized());
  std::vector<double> earliest(netlist.num_nets(), 0.0);
  const std::vector<double> load = netlist.compute_net_loads(lib);
  for (const GateId gid : netlist.topo_order()) {
    const Gate& g = netlist.gate(gid);
    double in_arr = 0.0;
    bool first = true;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) {
      const double a = earliest[g.in[i]];
      in_arr = first ? a : std::min(in_arr, a);
      first = false;
    }
    const double d = gate_delay_ps(lib.cell(g.kind), load[g.out],
                                   lib.transistor_model(), op);
    earliest[g.out] = in_arr + d;
  }
  std::vector<double> out;
  out.reserve(netlist.primary_outputs().size());
  for (const NetId po : netlist.primary_outputs())
    out.push_back(earliest[po]);
  return out;
}

}  // namespace vosim
