// Umbrella header for the vosim library: voltage over-scaling
// characterization and statistical error modeling for approximate
// arithmetic operators (reproduction of Ragavan et al., DATE 2017).
//
// Typical flow:
//   1. build a DUT               (src/netlist/dut.hpp — adders,
//                                 multipliers, adder/MAC trees)
//   2. synthesize a report       (src/sta/synthesis_report.hpp)
//   3. derive the triad sweep    (src/characterize/triads.hpp)
//   4. characterize under VOS    (src/characterize/characterizer.hpp)
//   5. train statistical models  (src/model/vos_model.hpp)
//   6. run applications on them  (src/apps/*.hpp)
//   7. adapt triads at runtime   (src/runtime/adaptive_unit.hpp)
//   8. pipeline + close the loop (src/seq/*.hpp,
//                                 src/runtime/closed_loop.hpp)
//   9. scale to a fleet          (src/fleet/fleet.hpp — chip-instance
//                                 Monte-Carlo, sharded campaigns;
//                                 src/serve/server.hpp — sweep daemon)
#ifndef VOSIM_VOSIM_HPP
#define VOSIM_VOSIM_HPP

#include "src/apps/approx_arith.hpp"
#include "src/apps/dot.hpp"
#include "src/apps/fir.hpp"
#include "src/apps/image.hpp"
#include "src/apps/kmeans.hpp"
#include "src/campaign/report.hpp"
#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/campaign/workload.hpp"
#include "src/characterize/characterizer.hpp"
#include "src/characterize/metrics.hpp"
#include "src/characterize/patterns.hpp"
#include "src/characterize/report.hpp"
#include "src/characterize/variability.hpp"
#include "src/characterize/triads.hpp"
#include "src/fleet/fleet.hpp"
#include "src/model/carry_chain.hpp"
#include "src/model/distance.hpp"
#include "src/model/energy_model.hpp"
#include "src/model/evaluation.hpp"
#include "src/model/prob_table.hpp"
#include "src/model/segmented_model.hpp"
#include "src/model/trainer.hpp"
#include "src/model/vos_model.hpp"
#include "src/model/windowed_add.hpp"
#include "src/netlist/adder_tree.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/netlist/eval.hpp"
#include "src/netlist/optimize.hpp"
#include "src/netlist/approx_adders.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/netlist/netlist.hpp"
#include "src/netlist/verilog.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/probe.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/adaptive_unit.hpp"
#include "src/runtime/closed_loop.hpp"
#include "src/runtime/error_monitor.hpp"
#include "src/runtime/speculation.hpp"
#include "src/runtime/triad_ladder.hpp"
#include "src/serve/server.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_report.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/seq/seq_vcd.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/levelized_sim.hpp"
#include "src/sim/logic.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/sim/vcd.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/slack.hpp"
#include "src/sta/sta.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/tech/cell.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/tech/library.hpp"
#include "src/tech/operating_point.hpp"
#include "src/tech/transistor_model.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/fuzzy.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

#endif  // VOSIM_VOSIM_HPP
