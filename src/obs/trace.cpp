#include "src/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/campaign/store.hpp"  // jsonl::num

namespace vosim::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct SpanEvent {
  const char* name;
  const char* cat;
  double ts_us;
  double dur_us;
  std::uint32_t tid;
  std::vector<std::pair<std::string, std::string>> args;
};

struct ThreadBuf {
  std::uint32_t tid = 0;
  std::vector<SpanEvent> events;
};

/// One recording session. Buffers are owned here (not thread_local) so
/// worker threads may exit before the trace is serialized; the
/// generation counter invalidates stale thread-local pointers when a
/// new session starts.
struct Session {
  std::mutex m;
  std::vector<std::unique_ptr<ThreadBuf>> buffers;
  std::chrono::steady_clock::time_point t0;
  std::atomic<std::uint64_t> generation{0};
};

Session& session() {
  static Session* s = new Session();  // never destroyed
  return *s;
}

std::uint64_t now_ns(const Session& s) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - s.t0)
          .count());
}

/// The calling thread's buffer for the current session, registering a
/// fresh one when the session generation moved on.
ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = nullptr;
  thread_local std::uint64_t buf_gen = 0;
  Session& s = session();
  const std::uint64_t gen = s.generation.load(std::memory_order_acquire);
  if (buf == nullptr || buf_gen != gen) {
    std::lock_guard<std::mutex> lock(s.m);
    s.buffers.push_back(std::make_unique<ThreadBuf>());
    buf = s.buffers.back().get();
    buf->tid = static_cast<std::uint32_t>(s.buffers.size());
    buf_gen = gen;
  }
  return *buf;
}

/// JSON string escaping for arg values (names/cats are literals and
/// assumed clean).
std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void start_trace() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.m);
  s.buffers.clear();
  s.t0 = std::chrono::steady_clock::now();
  s.generation.fetch_add(1, std::memory_order_release);
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

std::string stop_trace_json() {
  // Spans append to their thread buffer without the session mutex, so
  // callers must stop only after worker threads have joined (the CLI
  // and tests both serialize after the run completes).
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.m);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : s.buffers) {
    // Thread-name metadata event so Perfetto labels the tracks.
    out << (first ? "" : ",")
        << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << buf->tid << ",\"args\":{\"name\":\"vosim-" << buf->tid << "\"}}";
    first = false;
    for (const SpanEvent& e : buf->events) {
      out << ",{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
          << "\",\"ph\":\"X\",\"ts\":" << jsonl::num(e.ts_us)
          << ",\"dur\":" << jsonl::num(e.dur_us)
          << ",\"pid\":1,\"tid\":" << e.tid;
      if (!e.args.empty()) {
        out << ",\"args\":{";
        bool afirst = true;
        for (const auto& [k, v] : e.args) {
          out << (afirst ? "" : ",") << '"' << escape(k) << "\":\""
              << escape(v) << '"';
          afirst = false;
        }
        out << '}';
      }
      out << '}';
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  s.buffers.clear();
  return out.str();
}

bool write_trace_file(const std::string& path) {
  const std::string doc = stop_trace_json();
  std::ofstream out(path);
  if (!out) return false;
  out << doc << '\n';
  return static_cast<bool>(out);
}

std::size_t trace_event_count() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.m);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) n += buf->events.size();
  return n;
}

ScopedSpan::ScopedSpan(const char* name, const char* cat) noexcept
    : name_(name), cat_(cat) {
  if (!tracing()) return;
  active_ = true;
  start_ns_ = now_ns(session());
}

ScopedSpan::~ScopedSpan() {
  if (!active_ || !tracing()) return;
  Session& s = session();
  const std::uint64_t end_ns = now_ns(s);
  ThreadBuf& buf = thread_buf();
  buf.events.push_back(SpanEvent{
      name_, cat_, static_cast<double>(start_ns_) * 1e-3,
      static_cast<double>(end_ns - start_ns_) * 1e-3, buf.tid,
      std::move(args_)});
}

ScopedSpan& ScopedSpan::arg(const char* key, std::string value) {
  if (active_) args_.emplace_back(key, std::move(value));
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::uint64_t value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, double value) {
  if (active_) args_.emplace_back(key, jsonl::num(value));
  return *this;
}

}  // namespace vosim::obs
