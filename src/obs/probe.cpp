#include "src/obs/probe.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/obs/metrics.hpp"
#include "src/sim/vcd.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

// ------------------------------------------------------- TraceRecorder

void TraceRecorder::on_step_begin(const SimEngine&,
                                  std::span<const std::uint8_t> initial) {
  trace_.clear();
  initial_.assign(initial.begin(), initial.end());
}

void TraceRecorder::on_transition(const SimEngine&, const TraceEvent& ev) {
  trace_.push_back(ev);
}

// -------------------------------------------------------- VcdObserver

void VcdObserver::on_step_begin(const SimEngine& engine,
                                std::span<const std::uint8_t> initial) {
  engine_ = &engine;
  trace_.clear();
  initial_.assign(initial.begin(), initial.end());
}

void VcdObserver::on_transition(const SimEngine&, const TraceEvent& ev) {
  trace_.push_back(ev);
}

void VcdObserver::write(std::ostream& os) const {
  if (engine_ == nullptr)
    throw ContractViolation(
        "VcdObserver::write: no step observed yet (attach the observer "
        "to an event engine and run step() first)");
  write_vcd(engine_->netlist(), engine_->triad().tclk_ns * 1e3, initial_,
            trace_, os);
}

// -------------------------------------------------- ProvenanceSummary

double ProvenanceSummary::ber() const noexcept {
  const std::uint64_t cells =
      ops * static_cast<std::uint64_t>(bitwise_ber.size());
  return cells == 0 ? 0.0
                    : static_cast<double>(attributed_bits) /
                          static_cast<double>(cells);
}

std::string ProvenanceSummary::top_culprits_string(std::size_t k) const {
  std::string out;
  for (std::size_t i = 0; i < culprits.size() && i < k; ++i) {
    if (!out.empty()) out += ',';
    out += culprits[i].name;
    out += '=';
    out += std::to_string(culprits[i].bits);
  }
  return out;
}

// --------------------------------------------------- ErrorProvenance

namespace {
// Slack histogram range: [0, 10 ns] covers every sane VOS overrun; the
// clamping edge bucket absorbs pathological settles.
constexpr double kSlackHiPs = 1e4;
constexpr std::size_t kSlackBins = 128;
}  // namespace

ErrorProvenance::ErrorProvenance(const Netlist& netlist,
                                 const DutPinMap& pins, int stage)
    : slack_hist_(0.0, kSlackHiPs, kSlackBins) {
  init(netlist, pins.output_slots(), stage);
}

ErrorProvenance::ErrorProvenance(const DutNetlist& dut)
    : slack_hist_(0.0, kSlackHiPs, kSlackBins) {
  const DutPinMap pins(dut);
  init(dut.netlist, pins.output_slots(), -1);
}

void ErrorProvenance::init(const Netlist& netlist,
                           std::span<const std::size_t> out_slots,
                           int stage) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(out_slots.size() <= 64);
  netlist_ = &netlist;
  stage_ = stage;

  const auto pos = netlist.primary_outputs();
  out_net_.reserve(out_slots.size());
  for (const std::size_t s : out_slots) out_net_.push_back(pos[s]);

  const std::size_t nnets = netlist.num_nets();
  level_.assign(nnets, 0);
  cone_mask_.assign(nnets, 0);
  for (std::size_t i = 0; i < out_net_.size(); ++i)
    cone_mask_[out_net_[i]] |= 1ULL << i;

  const auto topo = netlist.topo_order();
  for (const GateId gid : topo) {
    const Gate& g = netlist.gate(gid);
    int lvl = 0;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i)
      lvl = std::max(lvl, level_[g.in[i]]);
    level_[g.out] = lvl + 1;
  }
  // Backward cone propagation: walking gates in reverse topological
  // order, a gate's inputs inherit every output bit its own net can
  // reach — exact fan-in-cone membership in one pass.
  for (std::size_t t = topo.size(); t-- > 0;) {
    const Gate& g = netlist.gate(topo[t]);
    const std::uint64_t m = cone_mask_[g.out];
    if (m == 0) continue;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i) cone_mask_[g.in[i]] |= m;
  }

  // Attribution scan order: gate-output nets by (level, NetId). Primary
  // inputs are excluded — they switch at the launch edge and can never
  // miss the capture.
  nets_by_level_.reserve(netlist.num_gates());
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid)
    nets_by_level_.push_back(netlist.gate(gid).out);
  std::sort(nets_by_level_.begin(), nets_by_level_.end(),
            [this](NetId a, NetId b) {
              return level_[a] != level_[b] ? level_[a] < level_[b] : a < b;
            });

  culprit_bits_.assign(nnets, 0);
  bit_err_.assign(out_net_.size(), 0);
}

void ErrorProvenance::on_step_end(const SimEngine& engine,
                                  std::span<const std::uint8_t> sampled,
                                  std::span<const std::uint8_t> settled,
                                  const StepResult& result) {
  ++ops_;
  std::uint64_t err = 0;
  for (std::size_t i = 0; i < out_net_.size(); ++i)
    err |= static_cast<std::uint64_t>((sampled[out_net_[i]] ^
                                       settled[out_net_[i]]) &
                                      1u)
           << i;
  if (err == 0) return;
  ++erroneous_ops_;

  const double tclk_ps = engine.triad().tclk_ns * 1e3;
  const double slack = std::max(0.0, result.settle_time_ps - tclk_ps);
  slack_hist_.add(slack);
  slack_max_ps_ = std::max(slack_max_ps_, slack);

  // Lowest-level failing net inside each erroneous bit's cone. The PO
  // net of bit i is in its own cone and fails exactly when bit i is
  // erroneous, so every bit finds a culprit.
  std::uint64_t remaining = err;
  for (const NetId net : nets_by_level_) {
    const std::uint64_t hit = cone_mask_[net] & remaining;
    if (hit == 0 || ((sampled[net] ^ settled[net]) & 1u) == 0) continue;
    culprit_bits_[net] += static_cast<std::uint64_t>(std::popcount(hit));
    remaining &= ~hit;
    if (remaining == 0) break;
  }
  VOSIM_ENSURES(remaining == 0);

  attributed_bits_ += static_cast<std::uint64_t>(std::popcount(err));
  for (std::size_t i = 0; i < bit_err_.size(); ++i)
    bit_err_[i] += (err >> i) & 1ULL;
}

void ErrorProvenance::on_lane_word(const SimEngine&, const LaneWordSummary&) {
  ++lane_words_;
}

ProvenanceSummary ErrorProvenance::summary() const {
  ProvenanceSummary s;
  s.ops = ops_;
  s.erroneous_ops = erroneous_ops_;
  s.attributed_bits = attributed_bits_;
  s.lane_words = lane_words_;
  s.bitwise_ber.resize(bit_err_.size(), 0.0);
  if (ops_ > 0)
    for (std::size_t i = 0; i < bit_err_.size(); ++i)
      s.bitwise_ber[i] =
          static_cast<double>(bit_err_[i]) / static_cast<double>(ops_);
  for (NetId net = 0; net < static_cast<NetId>(culprit_bits_.size()); ++net) {
    if (culprit_bits_[net] == 0) continue;
    CulpritCount c;
    c.net = net;
    c.level = level_[net];
    c.bits = culprit_bits_[net];
    c.name = stage_ >= 0
                 ? "s" + std::to_string(stage_) + ":" + netlist_->net_name(net)
                 : netlist_->net_name(net);
    s.culprits.push_back(std::move(c));
  }
  std::sort(s.culprits.begin(), s.culprits.end(),
            [](const CulpritCount& a, const CulpritCount& b) {
              return a.bits != b.bits ? a.bits > b.bits : a.net < b.net;
            });
  s.slack_p50_ps = slack_hist_.quantile(0.5);
  s.slack_p95_ps = slack_hist_.quantile(0.95);
  s.slack_max_ps = slack_max_ps_;
  return s;
}

void ErrorProvenance::publish(const std::string& prefix,
                              std::size_t top_k) const {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.counter(prefix + ".ops").add(ops_);
  reg.counter(prefix + ".erroneous_ops").add(erroneous_ops_);
  reg.counter(prefix + ".attributed_bits").add(attributed_bits_);
  reg.counter(prefix + ".lane_words").add(lane_words_);
  for (std::size_t i = 0; i < bit_err_.size(); ++i)
    if (bit_err_[i] != 0)
      reg.counter(prefix + ".bit" + std::to_string(i)).add(bit_err_[i]);
  const ProvenanceSummary s = summary();
  for (std::size_t i = 0; i < s.culprits.size() && i < top_k; ++i)
    reg.counter(prefix + ".culprit." + s.culprits[i].name)
        .add(s.culprits[i].bits);
  // Slack distribution on the registry's log10 latency scale: ps
  // recorded as ns (1 ps -> 1e-3), so typical VOS overruns land in the
  // resolvable bucket range.
  obs::LatencyHisto& slack = reg.histogram(prefix + ".slack");
  for (std::size_t b = 0; b < slack_hist_.bucket_count(); ++b)
    for (std::size_t n = 0; n < slack_hist_.count(b); ++n)
      slack.observe(slack_hist_.center(b) * 1e-3);
}

void ErrorProvenance::merge(const ErrorProvenance& other) {
  VOSIM_EXPECTS(culprit_bits_.size() == other.culprit_bits_.size());
  VOSIM_EXPECTS(bit_err_.size() == other.bit_err_.size());
  ops_ += other.ops_;
  erroneous_ops_ += other.erroneous_ops_;
  attributed_bits_ += other.attributed_bits_;
  lane_words_ += other.lane_words_;
  for (std::size_t i = 0; i < culprit_bits_.size(); ++i)
    culprit_bits_[i] += other.culprit_bits_[i];
  for (std::size_t i = 0; i < bit_err_.size(); ++i)
    bit_err_[i] += other.bit_err_[i];
  slack_hist_.merge(other.slack_hist_);
  slack_max_ps_ = std::max(slack_max_ps_, other.slack_max_ps_);
}

}  // namespace vosim
