#include "src/obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "src/campaign/store.hpp"  // jsonl::num — shortest decimal form

namespace vosim::obs {
namespace {

/// Log10-seconds bucket range: 100 ns .. 100 s, 6 buckets per decade.
constexpr double kLogLo = -7.0;
constexpr double kLogHi = 2.0;
constexpr std::size_t kLogBins = 54;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SpinGuard {
  explicit SpinGuard(std::atomic_flag& f) noexcept : flag(f) {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag.clear(std::memory_order_release); }
  std::atomic_flag& flag;
};

}  // namespace

unsigned thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricShards);
  return slot;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::add(double d) noexcept {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d,
                                   std::memory_order_relaxed)) {
  }
}

LatencyHisto::Shard::Shard() : hist(kLogLo, kLogHi, kLogBins) {}

LatencyHisto::LatencyHisto() : shards_(new Shard[kMetricShards]) {}

void LatencyHisto::observe(double seconds) noexcept {
  const double log_s = std::log10(std::max(seconds, 1e-9));
  Shard& s = shards_[thread_shard()];
  SpinGuard g(s.lock);
  s.hist.add(log_s);
  s.stats.add(seconds);
}

LatencyHisto::Snapshot LatencyHisto::snapshot() const {
  Histogram merged(kLogLo, kLogHi, kLogBins);
  RunningStats stats;
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    const Shard& s = shards_[i];
    SpinGuard g(s.lock);
    merged.merge(s.hist);
    stats.merge(s.stats);
  }
  Snapshot snap;
  snap.count = stats.count();
  if (snap.count == 0) return snap;
  snap.mean = stats.mean();
  snap.min = stats.min();
  snap.max = stats.max();
  snap.p50 = std::pow(10.0, merged.quantile(0.50));
  snap.p95 = std::pow(10.0, merged.quantile(0.95));
  snap.p99 = std::pow(10.0, merged.quantile(0.99));
  return snap;
}

void LatencyHisto::reset() noexcept {
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    Shard& s = shards_[i];
    SpinGuard g(s.lock);
    s.hist = Histogram(kLogLo, kLogHi, kLogBins);
    s.stats = RunningStats();
  }
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    out << (first ? "" : ",") << '"' << name << "\":" << jsonl::num(v);
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count
        << ",\"mean\":" << jsonl::num(h.mean)
        << ",\"min\":" << jsonl::num(h.min)
        << ",\"max\":" << jsonl::num(h.max)
        << ",\"p50\":" << jsonl::num(h.p50)
        << ",\"p95\":" << jsonl::num(h.p95)
        << ",\"p99\":" << jsonl::num(h.p99) << '}';
    first = false;
  }
  out << "}}";
  return out.str();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHisto& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = histos_.find(name);
  if (it == histos_.end()) {
    it = histos_
             .emplace(std::string(name), std::make_unique<LatencyHisto>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(m_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histos_) snap.histograms[name] = h->snapshot();
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histos_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

ScopedTimer::ScopedTimer(LatencyHisto& h) noexcept
    : histo_(h), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  histo_.observe(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

}  // namespace vosim::obs
