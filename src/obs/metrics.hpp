// Process-wide telemetry metrics: named counters, gauges, and latency
// histograms behind a single registry (DESIGN.md §12).
//
// Hot-path writes are lock-free: each Counter holds a small array of
// cache-line-padded atomic shards and a thread picks its shard once
// (thread-local), so concurrent increments from the thread pool never
// contend on one line. Latency histograms shard the same way, each
// shard guarded by a spinlock that is only ever contended by
// snapshot(). The registry mutex is touched only on first lookup of a
// name and on snapshot — instrumented code caches the returned
// reference in a function-local static. Registered metrics are never
// deallocated (reset() zeroes values in place), so cached references
// stay valid for the life of the process.
//
// Naming scheme: dot-separated lowercase path, subsystem first —
// "campaign.cache.hit", "serve.request.seconds", "sim.levelized.patterns".
// Histograms observe seconds on a log10 scale.
#ifndef VOSIM_OBS_METRICS_HPP
#define VOSIM_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/util/stats.hpp"

namespace vosim::obs {

/// Number of per-thread shards per counter/histogram. Threads hash to
/// a shard by a process-wide round-robin thread slot; more threads
/// than shards just share (correctness is unaffected, only contention).
inline constexpr std::size_t kMetricShards = 16;

/// Round-robin slot for the calling thread, assigned on first use.
unsigned thread_shard() noexcept;

/// Monotonic event counter. Increments are relaxed atomic adds on a
/// thread-local shard; value() sums the shards (racy reads are fine —
/// the value is monotonic and snapshot consistency is per-counter).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-value / up-down metric (e.g. concurrent connections). A single
/// atomic double; add() is a CAS loop — gauges are not hot-path.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Latency distribution in seconds: fixed log10-second buckets
/// (1e-7 s .. 1e2 s) plus running mean/min/max, sharded per thread.
/// observe() takes a spinlock on the caller's shard — uncontended in
/// steady state, so the cost is two atomic ops plus the bucket add.
class LatencyHisto {
 public:
  LatencyHisto();

  void observe(double seconds) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;  ///< bucket-interpolated (one-bucket resolution)
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Merges the shards (Histogram::merge / RunningStats::merge) and
  /// interpolates the quantiles out of the log-bucket counts.
  Snapshot snapshot() const;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    Histogram hist;
    RunningStats stats;
    Shard();
  };
  std::unique_ptr<Shard[]> shards_;
};

/// Full registry snapshot, ready for JSON serialization.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHisto::Snapshot> histograms;

  /// Single-line JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":
  ///  {"count":N,"mean":...,"p50":...,...},...}}
  std::string to_json() const;
};

/// Name -> metric registry. Lookup locks a mutex; instrumented code
/// should cache the returned reference (function-local static) so the
/// hot path never sees the lock.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHisto& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every registered metric in place (references stay valid).
  void reset();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHisto>, std::less<>> histos_;
};

/// The process-wide registry every subsystem reports into.
MetricsRegistry& metrics();

/// RAII wall-clock timer feeding a LatencyHisto on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHisto& h) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHisto& histo_;
  std::uint64_t start_ns_;
};

}  // namespace vosim::obs

#endif  // VOSIM_OBS_METRICS_HPP
