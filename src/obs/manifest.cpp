#include "src/obs/manifest.hpp"

#include <cstdlib>
#include <sstream>

#include "src/campaign/store.hpp"  // jsonl field accessors

namespace vosim::obs {
namespace {

constexpr char kMarker[] = "\"vosim_manifest\":";

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex;
  out.width(16);
  out.fill('0');
  out << v;
  return out.str();
}

}  // namespace

std::uint64_t RunManifest::config_hash() const noexcept {
  return fnv1a(config);
}

std::string RunManifest::to_jsonl() const {
  std::ostringstream out;
  out << '{' << kMarker << "1,\"store_version\":" << store_version
      << ",\"tool\":\"" << tool << "\",\"engine\":\"" << engine
      << "\",\"lane_width\":" << lane_width << ",\"shard\":\"" << shard
      << "\",\"config_hash\":\"" << hex64(config_hash()) << "\"}";
  return out.str();
}

bool RunManifest::is_manifest_line(const std::string& line) {
  return line.find(kMarker) != std::string::npos;
}

std::optional<RunManifest> RunManifest::parse(const std::string& line) {
  if (!is_manifest_line(line)) return std::nullopt;
  RunManifest m;
  std::string raw;
  if (!jsonl::raw_field(line, "tool", raw)) return std::nullopt;
  m.tool = raw;
  if (jsonl::raw_field(line, "engine", raw)) m.engine = raw;
  if (jsonl::raw_field(line, "shard", raw)) m.shard = raw;
  std::uint64_t u = 0;
  if (jsonl::u64_field(line, "lane_width", u)) m.lane_width = u;
  double v = 0.0;
  if (jsonl::num_field(line, "store_version", v)) {
    m.store_version = static_cast<int>(v);
  }
  if (jsonl::raw_field(line, "config_hash", raw)) {
    m.parsed_hash = std::strtoull(raw.c_str(), nullptr, 16);
  }
  return m;
}

}  // namespace vosim::obs
