// Per-run manifest: which tool/engine/lane-width/shard produced a
// store or a daemon, plus an FNV-1a hash of the launch configuration.
//
// The manifest is written as the first line of a file-backed campaign
// store ("{\"vosim_manifest\":1,...}") and returned by the serve
// daemon's `stats` verb. Backward compatibility is structural: the
// line has no "workload" field, so CampaignStore::parse_jsonl rejects
// it and pre-manifest readers skip it as an unparseable line, while
// merge_stores counts and excludes it explicitly (DESIGN.md §12).
#ifndef VOSIM_OBS_MANIFEST_HPP
#define VOSIM_OBS_MANIFEST_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace vosim::obs {

/// Store-format revision stamped into manifests (PR 9 introduced it).
inline constexpr int kStoreVersion = 9;

struct RunManifest {
  std::string tool;              ///< CLI subcommand or "serve"
  std::string engine = "event";  ///< backend engine token
  std::uint64_t lane_width = 64;
  std::string shard = "0/1";     ///< "index/count"
  /// Canonical launch configuration (hashed, never serialized).
  std::string config;
  int store_version = kStoreVersion;

  /// FNV-1a of `config`.
  std::uint64_t config_hash() const noexcept;

  /// Single-line JSON object (doubles as a store header line):
  /// {"vosim_manifest":1,"store_version":9,"tool":"campaign",
  ///  "engine":"levelized","lane_width":64,"shard":"0/1",
  ///  "config_hash":"deadbeef01234567"}
  std::string to_jsonl() const;

  /// True when `line` is a manifest line (cheap substring probe).
  static bool is_manifest_line(const std::string& line);
  /// Parses a to_jsonl() line; nullopt when it is not a manifest.
  /// `config` cannot be recovered (only its hash travels); the parsed
  /// hash is exposed via `parsed_hash`.
  static std::optional<RunManifest> parse(const std::string& line);

  /// Hash recovered by parse() (config itself is not serialized).
  std::uint64_t parsed_hash = 0;
};

}  // namespace vosim::obs

#endif  // VOSIM_OBS_MANIFEST_HPP
