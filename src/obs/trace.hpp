// Chrome trace-event spans: RAII timers that record complete ("ph":"X")
// events into per-thread buffers and serialize them as a
// chrome://tracing / Perfetto-loadable JSON document (DESIGN.md §12).
//
// Tracing is off by default and gated on a single relaxed atomic bool:
// a disabled ScopedSpan constructor is one load and no stores, so
// instrumentation can stay in hot paths permanently. When a session is
// active each thread appends to its own buffer (registered under a
// mutex once per thread per session); the session owns the buffers, so
// threads may exit before the trace is written.
//
// Span phases used across the stack: "campaign.synth",
// "campaign.characterize", "campaign.train", "campaign.execute",
// "campaign.cell", "fleet.ladder", "fleet.serve", "fleet.chip",
// "serve.request".
#ifndef VOSIM_OBS_TRACE_HPP
#define VOSIM_OBS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vosim::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while a trace session is recording.
inline bool tracing() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts a fresh trace session (drops any unsaved previous session).
void start_trace();

/// Stops the session and returns the whole Chrome trace document:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}. Returns an empty
/// document when no session was active.
std::string stop_trace_json();

/// stop_trace_json() straight to a file; false on I/O failure.
bool write_trace_file(const std::string& path);

/// Number of span events recorded in the current session (tests).
std::size_t trace_event_count();

/// RAII complete-event span. `name` and `cat` must be literals (or
/// outlive the span); string args are copied. All methods are no-ops
/// when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "vosim") noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value to the event's "args" object. Chainable.
  ScopedSpan& arg(const char* key, std::string value);
  ScopedSpan& arg(const char* key, std::uint64_t value);
  ScopedSpan& arg(const char* key, double value);

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace vosim::obs

#endif  // VOSIM_OBS_TRACE_HPP
