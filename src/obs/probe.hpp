// Simulation introspection: the SimObserver callback interface both
// SimEngine backends dispatch into, plus the bundled observers —
// TraceRecorder (per-step transition capture, the replacement for the
// old TimingSimulator::take_trace() plumbing), VcdObserver (single-step
// waveform export) and ErrorProvenance (per-net culprit attribution of
// erroneous output bits, per-bit-position BER from attribution, and
// slack-consumption statistics). DESIGN.md §13.
//
// Observers are borrowed raw pointers attached with
// SimEngine::attach_observer(); with none attached the engines pay
// exactly one !observers_.empty() branch per hot-path site. Callback
// coverage differs by backend:
//
//   event      on_step_begin, on_transition (every committed net
//              transition), on_late_arrival (transitions at/after the
//              capture edge), on_step_end.
//   levelized  on_step_end once per evaluated lane (per-net values
//              transposed out of the lane words) and on_lane_word once
//              per packed pass. No per-transition callbacks — the
//              levelized model has no global event wheel — and the
//              multi-threshold sweep path (step_batch_sweep) does not
//              dispatch at all (characterize_dut's provenance mode
//              routes around it).
#ifndef VOSIM_OBS_PROBE_HPP
#define VOSIM_OBS_PROBE_HPP

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/dut.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/util/stats.hpp"

namespace vosim {

/// Summary of one levelized packed pass (a lane word of patterns or
/// cycles), emitted via SimObserver::on_lane_word.
struct LaneWordSummary {
  /// Lanes evaluated in this pass (<= the engine's lanes_per_pass()).
  std::size_t lanes = 0;
  /// Lanes whose sampled output word differs from the settled one.
  std::size_t failing_lanes = 0;
  /// Failing net (sampled != settled in some lane) with the lowest
  /// topological level, ties broken towards the earlier topo position;
  /// invalid_net when no lane failed.
  NetId first_failing_net = invalid_net;
  /// Topological level of first_failing_net (-1 when none failed).
  int first_failing_level = -1;
  /// Worst slack consumed past the capture edge across the pass:
  /// max(0, settle_time - Tclk) in ps.
  double slack_consumed_ps = 0.0;
};

/// Callback interface for simulation introspection. All callbacks have
/// empty default bodies so observers override only what they consume;
/// they are invoked synchronously on the simulating thread.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Launch edge of a step/step_cycle: `initial` holds the per-net
  /// values before the new inputs are applied (the trace baseline).
  /// Event engine only.
  virtual void on_step_begin(const SimEngine& engine,
                             std::span<const std::uint8_t> initial) {
    (void)engine;
    (void)initial;
  }

  /// One committed net transition (event engine only), in commit order.
  virtual void on_transition(const SimEngine& engine, const TraceEvent& ev) {
    (void)engine;
    (void)ev;
  }

  /// A transition that arrived at or after the capture edge — the
  /// timing-error mechanism itself. `slack_ps` = arrival - Tclk >= 0.
  /// Event engine only; in step_cycle the still-in-flight events at the
  /// edge are reported before they carry into the next cycle.
  virtual void on_late_arrival(const SimEngine& engine, NetId net,
                               double arrival_ps, double slack_ps) {
    (void)engine;
    (void)net;
    (void)arrival_ps;
    (void)slack_ps;
  }

  /// End of one simulated operation (or one lane of a levelized pass):
  /// per-net values sampled at the capture edge and fully settled, plus
  /// the operation's StepResult. Both engines.
  virtual void on_step_end(const SimEngine& engine,
                           std::span<const std::uint8_t> sampled,
                           std::span<const std::uint8_t> settled,
                           const StepResult& result) {
    (void)engine;
    (void)sampled;
    (void)settled;
    (void)result;
  }

  /// One levelized packed pass finished (after the per-lane
  /// on_step_end calls). Levelized engine only.
  virtual void on_lane_word(const SimEngine& engine,
                            const LaneWordSummary& summary) {
    (void)engine;
    (void)summary;
  }
};

/// Bundled observer: records the last step's committed transitions and
/// the pre-step baseline values — the replacement for the removed
/// TimingSimulator record_trace/take_trace plumbing. Event engine only
/// (the levelized backend emits no transitions).
class TraceRecorder final : public SimObserver {
 public:
  void on_step_begin(const SimEngine& engine,
                     std::span<const std::uint8_t> initial) override;
  void on_transition(const SimEngine& engine, const TraceEvent& ev) override;

  /// Transitions of the last observed step, in commit order. The buffer
  /// is cleared at the next step's launch edge; use take_trace() to
  /// assume ownership.
  std::span<const TraceEvent> trace() const noexcept { return trace_; }

  /// Moves the last step's trace out of the recorder, releasing its
  /// storage; the next observed step records into a fresh buffer.
  std::vector<TraceEvent> take_trace() noexcept {
    std::vector<TraceEvent> out = std::move(trace_);
    trace_ = {};
    return out;
  }

  /// Net values at the start of the last observed step.
  std::span<const std::uint8_t> initial_values() const noexcept {
    return initial_;
  }

 private:
  std::vector<TraceEvent> trace_;
  std::vector<std::uint8_t> initial_;
};

/// Bundled observer: captures one step's trace and writes it as a VCD
/// waveform (all nets declared, baseline at #0, every transition at
/// 1 ps resolution, a clk_sample marker at Tclk). The replacement for
/// the old write_vcd(TimingSimulator&) entry point. Event engine only.
class VcdObserver final : public SimObserver {
 public:
  void on_step_begin(const SimEngine& engine,
                     std::span<const std::uint8_t> initial) override;
  void on_transition(const SimEngine& engine, const TraceEvent& ev) override;

  /// Writes the last observed step as a VCD dump. Throws
  /// ContractViolation when no step has been observed yet.
  void write(std::ostream& os) const;

 private:
  const SimEngine* engine_ = nullptr;
  std::vector<TraceEvent> trace_;
  std::vector<std::uint8_t> initial_;
};

/// One culprit net and the number of erroneous output bits attributed
/// to it.
struct CulpritCount {
  NetId net = invalid_net;
  int level = 0;              ///< topological level of the net
  std::uint64_t bits = 0;     ///< erroneous output bits attributed
  std::string name;           ///< netlist net name (optionally staged)
};

/// Aggregated provenance of one characterization stream.
struct ProvenanceSummary {
  std::uint64_t ops = 0;             ///< operations observed
  std::uint64_t erroneous_ops = 0;   ///< ops with >= 1 erroneous bit
  std::uint64_t attributed_bits = 0; ///< erroneous bits attributed (all)
  std::uint64_t lane_words = 0;      ///< levelized passes observed
  /// Per-output-bit error probability derived from attribution — by
  /// construction identical to ErrorAccumulator's output-diff bitwise
  /// BER when the golden reference is the settled value.
  std::vector<double> bitwise_ber;
  /// Culprit histogram, sorted by attributed bits descending.
  std::vector<CulpritCount> culprits;
  /// Slack consumed past the capture edge per erroneous op (ps).
  double slack_p50_ps = 0.0;
  double slack_p95_ps = 0.0;
  double slack_max_ps = 0.0;

  /// Overall BER from attribution: attributed bits / (ops × width).
  double ber() const noexcept;
  /// "net=count,net=count" line of the top-K culprits (JSONL-safe).
  std::string top_culprits_string(std::size_t k) const;
};

/// Bundled observer: attributes every erroneous output bit of every
/// observed operation to its culprit net — the failing net (sampled !=
/// settled at the capture edge) with the lowest topological level
/// inside that output bit's fan-in cone, ties broken towards the lower
/// NetId. The primary-output net itself is part of its own cone and by
/// definition fails whenever its bit is erroneous, so attribution
/// always succeeds and the attributed per-bit error counts equal the
/// output-diff counts bit-exactly (DESIGN.md §13). Works on both
/// engines via on_step_end; single-threaded like the engines it
/// observes.
class ErrorProvenance final : public SimObserver {
 public:
  /// Observes a combinational DUT: output bit i is primary output
  /// pins.output_slots()[i] of `netlist`. Both must outlive the
  /// observer. `stage` labels culprit names ("s<k>:<net>") for
  /// pipelined DUTs; pass -1 for unstaged.
  ErrorProvenance(const Netlist& netlist, const DutPinMap& pins,
                  int stage = -1);
  /// Convenience: builds the pin map from the DUT.
  explicit ErrorProvenance(const DutNetlist& dut);

  void on_step_end(const SimEngine& engine,
                   std::span<const std::uint8_t> sampled,
                   std::span<const std::uint8_t> settled,
                   const StepResult& result) override;
  void on_lane_word(const SimEngine& engine,
                    const LaneWordSummary& summary) override;

  /// Snapshot of everything accumulated so far.
  ProvenanceSummary summary() const;

  /// Folds the accumulated counts into the process-wide
  /// MetricsRegistry under `prefix` (counters prefix.ops,
  /// prefix.erroneous_ops, prefix.attributed_bits, prefix.lane_words,
  /// prefix.bit<N>, prefix.culprit.<net> for the top `top_k` culprits)
  /// and the slack distribution into the prefix.slack latency
  /// histogram (ps recorded as ns on the log10 scale).
  void publish(const std::string& prefix, std::size_t top_k) const;

  /// Merges another observer's accumulation (same netlist shape).
  void merge(const ErrorProvenance& other);

 private:
  void init(const Netlist& netlist, std::span<const std::size_t> out_slots,
            int stage);

  const Netlist* netlist_ = nullptr;
  int stage_ = -1;
  std::vector<NetId> out_net_;    ///< PO net per output-bus bit
  std::vector<int> level_;        ///< topological level per net
  /// Per net: output bits whose fan-in cone contains the net.
  std::vector<std::uint64_t> cone_mask_;
  /// Gate-output nets sorted by (level, NetId) — the attribution scan
  /// order (primary inputs never fail: they have no arrival to miss).
  std::vector<NetId> nets_by_level_;
  std::vector<std::uint64_t> culprit_bits_;  ///< per net, attributed bits
  std::vector<std::uint64_t> bit_err_;       ///< per output bit
  std::uint64_t ops_ = 0;
  std::uint64_t erroneous_ops_ = 0;
  std::uint64_t attributed_bits_ = 0;
  std::uint64_t lane_words_ = 0;
  Histogram slack_hist_;  ///< slack consumed per erroneous op (ps)
  double slack_max_ps_ = 0.0;
};

}  // namespace vosim

#endif  // VOSIM_OBS_PROBE_HPP
