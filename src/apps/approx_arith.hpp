// Building blocks for error-resilient applications: all arithmetic is
// routed through a pluggable adder so kernels run identically on the
// exact adder, the timing simulator or the statistical VOS model —
// "mapping error-resilient applications onto approximate operator
// models" (paper Sections I and IV).
#ifndef VOSIM_APPS_APPROX_ARITH_HPP
#define VOSIM_APPS_APPROX_ARITH_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/model/vos_model.hpp"
#include "src/sim/vos_dut.hpp"

namespace vosim {

/// An n-bit adder returning the (n+1)-bit sum. The kernel masks or
/// saturates as it needs.
using AdderFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

/// A streaming n-bit adder: element-wise `out[i] = a[i] + b[i]` over
/// equal-length spans. Kernels whose additions are independent within a
/// pass use this to stream whole operand vectors through a clocked
/// pipeline back-to-back (one add per cycle, no per-call round trip).
using BatchAdderFn = std::function<void(
    std::span<const std::uint64_t>, std::span<const std::uint64_t>,
    std::span<std::uint64_t>)>;

/// Exact reference adder.
AdderFn exact_adder_fn(int width);

/// Statistical VOS model as an adder; `rng` must outlive the function.
AdderFn model_adder_fn(const VosAdderModel& model, Rng& rng);

/// A gate-level VOS simulation as an adder (sampled, possibly faulty
/// outputs); `sim` must be a two-operand DUT and outlive the function.
/// The engine behind `sim` (event-driven or levelized) is whatever it
/// was built with, so kernels run identically on either backend.
AdderFn sim_adder_fn(VosDutSim& sim);

class SeqSim;

/// A clocked (registered) pipeline simulation as an adder: each call is
/// one clock cycle, and because a single-stage pipeline's result
/// registers at the very next edge, the captured output IS this call's
/// sum. `sim` must wrap a two-operand single-stage SeqDut (see
/// wrap_as_pipeline) and outlive the function. This is the campaign's
/// sim-seq backend: truncating clocked semantics, per-flop setup
/// margin, register energy — the sequential view of the same adder.
AdderFn seq_adder_fn(SeqSim& sim);

/// The streaming view of the same clocked adder: the operand vectors
/// latch back-to-back through SeqSim::step_cycle_batch, one element per
/// cycle on the packed-lane path. Error patterns follow the streamed
/// schedule (each add launches from the previous element's at-edge
/// state), exactly as the registered datapath would see them.
BatchAdderFn seq_batch_adder_fn(SeqSim& sim);

/// Subtraction a-b via two's complement (two routed additions); result
/// masked to `width` bits (wraps like hardware).
std::uint64_t approx_sub(const AdderFn& add, int width, std::uint64_t a,
                         std::uint64_t b);

/// Shift-and-add multiplication: every partial-product accumulation goes
/// through the routed adder. Result masked to `width` bits.
std::uint64_t approx_mul(const AdderFn& add, int width, std::uint64_t x,
                         std::uint64_t y);

/// Adds with saturation at 2^width - 1 instead of wrap-around.
std::uint64_t approx_add_sat(const AdderFn& add, int width, std::uint64_t a,
                             std::uint64_t b);

}  // namespace vosim

#endif  // VOSIM_APPS_APPROX_ARITH_HPP
