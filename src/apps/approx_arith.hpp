// Building blocks for error-resilient applications: all arithmetic is
// routed through a pluggable adder so kernels run identically on the
// exact adder, the timing simulator or the statistical VOS model —
// "mapping error-resilient applications onto approximate operator
// models" (paper Sections I and IV).
#ifndef VOSIM_APPS_APPROX_ARITH_HPP
#define VOSIM_APPS_APPROX_ARITH_HPP

#include <cstdint>
#include <functional>

#include "src/model/vos_model.hpp"
#include "src/sim/vos_dut.hpp"

namespace vosim {

/// An n-bit adder returning the (n+1)-bit sum. The kernel masks or
/// saturates as it needs.
using AdderFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

/// Exact reference adder.
AdderFn exact_adder_fn(int width);

/// Statistical VOS model as an adder; `rng` must outlive the function.
AdderFn model_adder_fn(const VosAdderModel& model, Rng& rng);

/// A gate-level VOS simulation as an adder (sampled, possibly faulty
/// outputs); `sim` must be a two-operand DUT and outlive the function.
/// The engine behind `sim` (event-driven or levelized) is whatever it
/// was built with, so kernels run identically on either backend.
AdderFn sim_adder_fn(VosDutSim& sim);

class SeqSim;

/// A clocked (registered) pipeline simulation as an adder: each call is
/// one clock cycle, and because a single-stage pipeline's result
/// registers at the very next edge, the captured output IS this call's
/// sum. `sim` must wrap a two-operand single-stage SeqDut (see
/// wrap_as_pipeline) and outlive the function. This is the campaign's
/// sim-seq backend: truncating clocked semantics, per-flop setup
/// margin, register energy — the sequential view of the same adder.
AdderFn seq_adder_fn(SeqSim& sim);

/// Subtraction a-b via two's complement (two routed additions); result
/// masked to `width` bits (wraps like hardware).
std::uint64_t approx_sub(const AdderFn& add, int width, std::uint64_t a,
                         std::uint64_t b);

/// Shift-and-add multiplication: every partial-product accumulation goes
/// through the routed adder. Result masked to `width` bits.
std::uint64_t approx_mul(const AdderFn& add, int width, std::uint64_t x,
                         std::uint64_t y);

/// Adds with saturation at 2^width - 1 instead of wrap-around.
std::uint64_t approx_add_sat(const AdderFn& add, int width, std::uint64_t a,
                             std::uint64_t b);

}  // namespace vosim

#endif  // VOSIM_APPS_APPROX_ARITH_HPP
