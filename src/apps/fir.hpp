// Fixed-point FIR filtering with routed arithmetic — the signal-
// processing error-resilient workload (soft-DSP lineage, paper ref [4]).
#ifndef VOSIM_APPS_FIR_HPP
#define VOSIM_APPS_FIR_HPP

#include <cstdint>
#include <vector>

#include "src/apps/approx_arith.hpp"

namespace vosim {

/// Unsigned fixed-point samples (offset binary), `sample_bits` wide.
struct FixedSignal {
  int sample_bits = 12;
  std::vector<std::uint64_t> samples;
};

/// Two tones plus noise, centered at half scale. Deterministic per seed.
FixedSignal make_test_signal(std::size_t length, int sample_bits,
                             std::uint64_t seed);

/// Symmetric low-pass FIR (taps 1,4,6,4,1, /16). All multiply-accumulate
/// steps run through `add` at 16-bit width; output is rescaled to the
/// input's sample width.
FixedSignal fir_lowpass5(const FixedSignal& input, const AdderFn& add);

/// Streaming variant for clocked pipelines: the same filter issued as
/// six whole-signal passes (one per tap term). Within a pass every
/// sample's addition is independent, so each pass streams the full
/// signal through the adder back-to-back; only the six accumulation
/// passes serialize. Add count and masking match the scalar variant;
/// under timing errors the error pattern follows the streamed schedule.
FixedSignal fir_lowpass5(const FixedSignal& input,
                         const BatchAdderFn& add);

/// Signal-to-noise ratio of `test` against `reference` (dB, +inf when
/// identical): the reference signal is the "signal", their difference
/// the "noise".
double signal_snr_db(const FixedSignal& reference, const FixedSignal& test);

}  // namespace vosim

#endif  // VOSIM_APPS_FIR_HPP
