#include "src/apps/kmeans.hpp"

#include <algorithm>
#include <climits>
#include <numeric>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {

constexpr int acc_bits = 16;

/// Manhattan distance through the routed adder: |dx| + |dy|, with the
/// subtractions done at coordinate width (8 bits).
std::uint64_t manhattan(const AdderFn& add, const Point2D& p,
                        const Point2D& c) {
  const std::uint64_t dx =
      p.x >= c.x ? approx_sub(add, 8, p.x, c.x) : approx_sub(add, 8, c.x, p.x);
  const std::uint64_t dy =
      p.y >= c.y ? approx_sub(add, 8, p.y, c.y) : approx_sub(add, 8, c.y, p.y);
  return add(dx, dy) & mask_n(acc_bits);
}

}  // namespace

ClusterDataset make_cluster_dataset(int k, int points_per_cluster,
                                    std::uint64_t seed) {
  VOSIM_EXPECTS(k >= 2 && k <= 8);
  VOSIM_EXPECTS(points_per_cluster >= 1);
  ClusterDataset data;
  Rng rng(seed);
  // Centers on a coarse grid, far apart.
  for (int c = 0; c < k; ++c) {
    Point2D center;
    center.x = static_cast<std::uint8_t>(40 + 170 * (c % 2) +
                                         static_cast<int>(rng.below(30)));
    center.y = static_cast<std::uint8_t>(40 + 80 * (c / 2) +
                                         static_cast<int>(rng.below(30)));
    data.true_center.push_back(center);
    for (int i = 0; i < points_per_cluster; ++i) {
      const double gx = 8.0 * rng.gaussian();
      const double gy = 8.0 * rng.gaussian();
      Point2D p;
      p.x = static_cast<std::uint8_t>(
          std::clamp(center.x + gx, 0.0, 255.0));
      p.y = static_cast<std::uint8_t>(
          std::clamp(center.y + gy, 0.0, 255.0));
      data.points.push_back(p);
      data.true_label.push_back(c);
    }
  }
  // Deterministic Fisher-Yates shuffle: consumers that seed centers from
  // the first k points must not start inside a single blob.
  for (std::size_t i = data.points.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(data.points[i - 1], data.points[j]);
    std::swap(data.true_label[i - 1], data.true_label[j]);
  }
  return data;
}

KmeansResult kmeans(const std::vector<Point2D>& points, int k,
                    const AdderFn& add, int max_iterations) {
  VOSIM_EXPECTS(k >= 1);
  VOSIM_EXPECTS(points.size() >= static_cast<std::size_t>(k));
  KmeansResult res;
  // Farthest-point initialization (deterministic, exact arithmetic —
  // seeding is control logic, only the clustering loop is approximate).
  res.centers.push_back(points.front());
  while (static_cast<int>(res.centers.size()) < k) {
    std::size_t best_i = 0;
    long best_d = -1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      long nearest = LONG_MAX;
      for (const Point2D& c : res.centers) {
        const long d = std::abs(static_cast<long>(points[i].x) - c.x) +
                       std::abs(static_cast<long>(points[i].y) - c.y);
        nearest = std::min(nearest, d);
      }
      if (nearest > best_d) {
        best_d = nearest;
        best_i = i;
      }
    }
    res.centers.push_back(points[best_i]);
  }
  res.assignment.assign(points.size(), 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    ++res.iterations;
    bool changed = false;
    // Assignment step: routed-arithmetic distances.
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      std::uint64_t best_d = ~0ULL;
      for (int c = 0; c < k; ++c) {
        const std::uint64_t d =
            manhattan(add, points[i], res.centers[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) {
      res.converged = true;
      break;
    }
    // Update step (exact control arithmetic).
    std::vector<long> sx(static_cast<std::size_t>(k), 0);
    std::vector<long> sy(static_cast<std::size_t>(k), 0);
    std::vector<long> count(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      sx[c] += points[i].x;
      sy[c] += points[i].y;
      ++count[c];
    }
    for (int c = 0; c < k; ++c) {
      const auto uc = static_cast<std::size_t>(c);
      if (count[uc] == 0) continue;  // empty cluster keeps its center
      res.centers[uc].x =
          static_cast<std::uint8_t>(sx[uc] / count[uc]);
      res.centers[uc].y =
          static_cast<std::uint8_t>(sy[uc] / count[uc]);
    }
  }
  return res;
}

double clustering_accuracy(const ClusterDataset& data,
                           const std::vector<int>& assignment) {
  VOSIM_EXPECTS(assignment.size() == data.points.size());
  const int k = static_cast<int>(data.true_center.size());
  VOSIM_EXPECTS(k >= 1 && k <= 5);
  std::vector<int> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  double best = 0.0;
  do {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      const int mapped = perm[static_cast<std::size_t>(assignment[i])];
      if (mapped == data.true_label[i]) ++hits;
    }
    best = std::max(best,
                    static_cast<double>(hits) /
                        static_cast<double>(assignment.size()));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace vosim
