#include "src/apps/approx_arith.hpp"

#include "src/seq/seq_sim.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

AdderFn exact_adder_fn(int width) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  return [width](std::uint64_t a, std::uint64_t b) {
    return exact_add(a & mask_n(width), b & mask_n(width), width);
  };
}

AdderFn model_adder_fn(const VosAdderModel& model, Rng& rng) {
  return [&model, &rng](std::uint64_t a, std::uint64_t b) {
    return model.add(a & mask_n(model.width()), b & mask_n(model.width()),
                     rng);
  };
}

AdderFn sim_adder_fn(VosDutSim& sim) {
  VOSIM_EXPECTS(sim.num_operands() == 2);
  return [&sim](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ma = mask_n(sim.operand_width(0));
    const std::uint64_t mb = mask_n(sim.operand_width(1));
    return sim.apply(a & ma, b & mb).sampled;
  };
}

AdderFn seq_adder_fn(SeqSim& sim) {
  VOSIM_EXPECTS(sim.num_operands() == 2);
  VOSIM_EXPECTS(sim.latency_cycles() == 1);
  return [&sim](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ma = mask_n(sim.seq().operand_width(0));
    const std::uint64_t mb = mask_n(sim.seq().operand_width(1));
    return sim.step_cycle(a & ma, b & mb).captured;
  };
}

BatchAdderFn seq_batch_adder_fn(SeqSim& sim) {
  VOSIM_EXPECTS(sim.num_operands() == 2);
  VOSIM_EXPECTS(sim.latency_cycles() == 1);
  return [&sim](std::span<const std::uint64_t> a,
                std::span<const std::uint64_t> b,
                std::span<std::uint64_t> out) {
    VOSIM_EXPECTS(a.size() == b.size() && a.size() == out.size());
    const std::uint64_t ma = mask_n(sim.seq().operand_width(0));
    const std::uint64_t mb = mask_n(sim.seq().operand_width(1));
    const std::size_t n = a.size();
    std::vector<std::uint64_t> ops(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      ops[2 * i] = a[i] & ma;
      ops[2 * i + 1] = b[i] & mb;
    }
    std::vector<SeqCycleResult> rs(n);
    sim.step_cycle_batch(ops, n, rs);
    for (std::size_t i = 0; i < n; ++i) out[i] = rs[i].captured;
  };
}

std::uint64_t approx_sub(const AdderFn& add, int width, std::uint64_t a,
                         std::uint64_t b) {
  const std::uint64_t m = mask_n(width);
  const std::uint64_t nb = (~b) & m;
  const std::uint64_t t = add(a & m, nb) & m;
  return add(t, 1) & m;
}

std::uint64_t approx_mul(const AdderFn& add, int width, std::uint64_t x,
                         std::uint64_t y) {
  const std::uint64_t m = mask_n(width);
  x &= m;
  y &= m;
  std::uint64_t acc = 0;
  for (int i = 0; i < width && y != 0; ++i, y >>= 1) {
    if ((y & 1ULL) != 0) acc = add(acc, (x << i) & m) & m;
  }
  return acc;
}

std::uint64_t approx_add_sat(const AdderFn& add, int width, std::uint64_t a,
                             std::uint64_t b) {
  const std::uint64_t m = mask_n(width);
  const std::uint64_t s = add(a & m, b & m);
  return (s > m) ? m : s;
}

}  // namespace vosim
