// K-means clustering with routed arithmetic — the data-mining /
// machine-learning class of error-resilient applications from the
// paper's introduction. Distances are Manhattan (sums of absolute
// differences), so the whole inner loop is additions through the
// pluggable adder.
#ifndef VOSIM_APPS_KMEANS_HPP
#define VOSIM_APPS_KMEANS_HPP

#include <cstdint>
#include <vector>

#include "src/apps/approx_arith.hpp"

namespace vosim {

/// A 2-D point with unsigned 8-bit coordinates.
struct Point2D {
  std::uint8_t x = 0;
  std::uint8_t y = 0;
};

/// Labeled synthetic dataset: `k` Gaussian-ish blobs on the 8-bit grid.
struct ClusterDataset {
  std::vector<Point2D> points;
  std::vector<int> true_label;  ///< generating blob of each point
  std::vector<Point2D> true_center;
};

ClusterDataset make_cluster_dataset(int k, int points_per_cluster,
                                    std::uint64_t seed);

/// Result of a k-means run.
struct KmeansResult {
  std::vector<Point2D> centers;
  std::vector<int> assignment;
  int iterations = 0;
  bool converged = false;
};

/// Lloyd's algorithm with Manhattan distances computed through `add`
/// (16-bit accumulators). Centroid updates use exact integer division
/// (the control path the paper leaves precise — only the datapath is
/// approximate). Deterministic: centers start from the first k points.
KmeansResult kmeans(const std::vector<Point2D>& points, int k,
                    const AdderFn& add, int max_iterations = 32);

/// Fraction of points whose cluster matches the generating blob under
/// the best label permutation (brute-force over k! for k <= 5).
double clustering_accuracy(const ClusterDataset& data,
                           const std::vector<int>& assignment);

}  // namespace vosim

#endif  // VOSIM_APPS_KMEANS_HPP
