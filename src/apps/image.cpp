#include "src/apps/image.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {
constexpr int kernel_width = 16;  // accumulator word width for 3x3 kernels
}  // namespace

GrayImage make_synthetic_scene(int width, int height, std::uint64_t seed) {
  VOSIM_EXPECTS(width >= 8 && height >= 8);
  GrayImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) *
                    static_cast<std::size_t>(height));
  Rng rng(seed);

  const double cx = 0.35 * width;
  const double cy = 0.40 * height;
  const double r = 0.18 * std::min(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Diagonal gradient base.
      double v = 40.0 + 120.0 * (static_cast<double>(x + y) /
                                 static_cast<double>(width + height));
      // Bright disk.
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy < r * r) v += 80.0;
      // Vertical bars in the right third (edge content for Sobel).
      if (x > 2 * width / 3 && ((x / 4) % 2 == 0)) v += 60.0;
      // Mild sensor noise.
      v += 4.0 * rng.gaussian();
      img.set(x, y,
              static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return img;
}

double psnr_db(const GrayImage& reference, const GrayImage& test) {
  VOSIM_EXPECTS(reference.width == test.width &&
                reference.height == test.height);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < reference.pixels.size(); ++i) {
    const double d = static_cast<double>(reference.pixels[i]) -
                     static_cast<double>(test.pixels[i]);
    sum_sq += d * d;
  }
  if (sum_sq == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sum_sq / static_cast<double>(reference.pixels.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

GrayImage gaussian_blur3(const GrayImage& src, const AdderFn& add) {
  GrayImage out = src;  // borders keep their source values
  const std::uint64_t m = mask_n(kernel_width);
  for (int y = 1; y + 1 < src.height; ++y) {
    for (int x = 1; x + 1 < src.width; ++x) {
      // Σ w_ij · p_ij with w ∈ {1,2,4}: weights are shifts, every
      // accumulation is a routed 16-bit addition.
      std::uint64_t acc = 0;
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          const int shift = 2 - std::abs(kx) - std::abs(ky);  // log2 w
          const std::uint64_t term =
              (static_cast<std::uint64_t>(src.at(x + kx, y + ky)) << shift) &
              m;
          acc = add(acc, term) & m;
        }
      }
      out.set(x, y, static_cast<std::uint8_t>(
                        std::min<std::uint64_t>(255, acc >> 4)));
    }
  }
  return out;
}

GrayImage sobel_magnitude(const GrayImage& src, const AdderFn& add) {
  GrayImage out = src;
  const std::uint64_t m = mask_n(kernel_width);
  auto px = [&src](int x, int y) {
    return static_cast<std::uint64_t>(src.at(x, y));
  };
  for (int y = 1; y + 1 < src.height; ++y) {
    for (int x = 1; x + 1 < src.width; ++x) {
      // gx = (p(+1,·) weighted) − (p(−1,·) weighted); likewise gy.
      // Accumulate the positive and negative lobes separately, then
      // subtract through the routed adder and take |·| manually.
      auto lobe3 = [&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        std::uint64_t acc = add(a, (b << 1) & m) & m;
        return add(acc, c) & m;
      };
      const std::uint64_t gxp =
          lobe3(px(x + 1, y - 1), px(x + 1, y), px(x + 1, y + 1));
      const std::uint64_t gxn =
          lobe3(px(x - 1, y - 1), px(x - 1, y), px(x - 1, y + 1));
      const std::uint64_t gyp =
          lobe3(px(x - 1, y + 1), px(x, y + 1), px(x + 1, y + 1));
      const std::uint64_t gyn =
          lobe3(px(x - 1, y - 1), px(x, y - 1), px(x + 1, y - 1));

      auto abs_diff = [&](std::uint64_t p, std::uint64_t n) {
        return (p >= n) ? approx_sub(add, kernel_width, p, n)
                        : approx_sub(add, kernel_width, n, p);
      };
      const std::uint64_t gx = abs_diff(gxp, gxn);
      const std::uint64_t gy = abs_diff(gyp, gyn);
      const std::uint64_t mag = add(gx, gy) & m;
      out.set(x, y,
              static_cast<std::uint8_t>(std::min<std::uint64_t>(255, mag)));
    }
  }
  return out;
}

}  // namespace vosim
