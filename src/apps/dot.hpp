// Dot-product and sum-of-absolute-differences kernels with routed
// arithmetic — the data-mining / motion-estimation style workloads of
// the paper's error-resilient application class.
#ifndef VOSIM_APPS_DOT_HPP
#define VOSIM_APPS_DOT_HPP

#include <cstdint>
#include <span>

#include "src/apps/approx_arith.hpp"

namespace vosim {

/// Dot product of two u8 vectors; multiplies are shift-and-add through
/// the routed adder, accumulation is `acc_bits` wide (wraps as hardware
/// would).
std::uint64_t approx_dot(const AdderFn& add, std::span<const std::uint8_t> x,
                         std::span<const std::uint8_t> y, int acc_bits = 24);

/// Sum of absolute differences of two u8 vectors (block matching).
std::uint64_t approx_sad(const AdderFn& add, std::span<const std::uint8_t> x,
                         std::span<const std::uint8_t> y, int acc_bits = 20);

}  // namespace vosim

#endif  // VOSIM_APPS_DOT_HPP
