#include "src/apps/dot.hpp"

#include <algorithm>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::uint64_t approx_dot(const AdderFn& add, std::span<const std::uint8_t> x,
                         std::span<const std::uint8_t> y, int acc_bits) {
  VOSIM_EXPECTS(x.size() == y.size());
  VOSIM_EXPECTS(acc_bits >= 16 && acc_bits <= max_word_bits);
  const std::uint64_t m = mask_n(acc_bits);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::uint64_t prod = approx_mul(add, acc_bits, x[i], y[i]);
    acc = add(acc, prod) & m;
  }
  return acc;
}

std::uint64_t approx_sad(const AdderFn& add, std::span<const std::uint8_t> x,
                         std::span<const std::uint8_t> y, int acc_bits) {
  VOSIM_EXPECTS(x.size() == y.size());
  VOSIM_EXPECTS(acc_bits >= 12 && acc_bits <= max_word_bits);
  const std::uint64_t m = mask_n(acc_bits);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::uint64_t hi = std::max(x[i], y[i]);
    const std::uint64_t lo = std::min(x[i], y[i]);
    // Subtract at the operand width: an 8-bit subtractor keeps carry
    // chains short, whereas a full-accumulator-width two's complement
    // would always excite a maximum-length chain and melt under VOS.
    const std::uint64_t diff = approx_sub(add, 8, hi, lo);
    acc = add(acc, diff) & m;
  }
  return acc;
}

}  // namespace vosim
