#include "src/apps/fir.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

FixedSignal make_test_signal(std::size_t length, int sample_bits,
                             std::uint64_t seed) {
  VOSIM_EXPECTS(length >= 8);
  VOSIM_EXPECTS(sample_bits >= 8 && sample_bits <= 16);
  FixedSignal sig;
  sig.sample_bits = sample_bits;
  sig.samples.reserve(length);
  Rng rng(seed);
  const double full = static_cast<double>(mask_n(sample_bits));
  const double mid = full / 2.0;
  for (std::size_t i = 0; i < length; ++i) {
    const double t = static_cast<double>(i);
    double v = mid;
    v += 0.30 * mid * std::sin(2.0 * std::numbers::pi * t / 64.0);
    v += 0.15 * mid * std::sin(2.0 * std::numbers::pi * t / 9.0);
    v += 0.02 * mid * rng.gaussian();
    v = std::min(std::max(v, 0.0), full);
    sig.samples.push_back(static_cast<std::uint64_t>(v));
  }
  return sig;
}

FixedSignal fir_lowpass5(const FixedSignal& input, const AdderFn& add) {
  constexpr int acc_bits = 16;
  const std::uint64_t m = mask_n(acc_bits);
  FixedSignal out;
  out.sample_bits = input.sample_bits;
  out.samples.resize(input.samples.size(), 0);

  const auto n = input.samples.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Clamped-edge convolution with taps {1,4,6,4,1}.
    auto sample = [&](long k) {
      const long idx =
          std::min<long>(std::max<long>(k, 0), static_cast<long>(n) - 1);
      return input.samples[static_cast<std::size_t>(idx)];
    };
    const auto si = static_cast<long>(i);
    std::uint64_t acc = 0;
    // tap weight 1: x[i-2], x[i+2]
    acc = add(acc, sample(si - 2) & m) & m;
    acc = add(acc, sample(si + 2) & m) & m;
    // tap weight 4: x[i-1]<<2, x[i+1]<<2
    acc = add(acc, (sample(si - 1) << 2) & m) & m;
    acc = add(acc, (sample(si + 1) << 2) & m) & m;
    // tap weight 6 = 4 + 2: (x[i]<<2) + (x[i]<<1)
    acc = add(acc, (sample(si) << 2) & m) & m;
    acc = add(acc, (sample(si) << 1) & m) & m;
    out.samples[i] = (acc >> 4) & mask_n(input.sample_bits);
  }
  return out;
}

FixedSignal fir_lowpass5(const FixedSignal& input,
                         const BatchAdderFn& add) {
  constexpr int acc_bits = 16;
  const std::uint64_t m = mask_n(acc_bits);
  FixedSignal out;
  out.sample_bits = input.sample_bits;
  const auto n = input.samples.size();
  out.samples.resize(n, 0);

  const auto sample = [&](long k) {
    const long idx =
        std::min<long>(std::max<long>(k, 0), static_cast<long>(n) - 1);
    return input.samples[static_cast<std::size_t>(idx)];
  };
  // One term vector per accumulation pass, mirroring the scalar
  // clamped-edge convolution with taps {1,4,6,4,1}.
  std::vector<std::uint64_t> acc(n, 0);
  std::vector<std::uint64_t> term(n);
  const auto pass = [&](auto&& term_of) {
    for (std::size_t i = 0; i < n; ++i)
      term[i] = term_of(static_cast<long>(i)) & m;
    add(acc, term, acc);
    for (std::size_t i = 0; i < n; ++i) acc[i] &= m;
  };
  pass([&](long i) { return sample(i - 2); });
  pass([&](long i) { return sample(i + 2); });
  pass([&](long i) { return sample(i - 1) << 2; });
  pass([&](long i) { return sample(i + 1) << 2; });
  pass([&](long i) { return sample(i) << 2; });
  pass([&](long i) { return sample(i) << 1; });
  for (std::size_t i = 0; i < n; ++i)
    out.samples[i] = (acc[i] >> 4) & mask_n(input.sample_bits);
  return out;
}

double signal_snr_db(const FixedSignal& reference, const FixedSignal& test) {
  VOSIM_EXPECTS(reference.samples.size() == test.samples.size());
  double sig = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < reference.samples.size(); ++i) {
    const double r = static_cast<double>(reference.samples[i]);
    const double d = r - static_cast<double>(test.samples[i]);
    sig += r * r;
    noise += d * d;
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(sig / noise);
}

}  // namespace vosim
