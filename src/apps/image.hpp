// Grayscale image kernels (Gaussian blur, Sobel) with routed arithmetic —
// the video/image-processing class of error-resilient applications the
// paper's introduction motivates.
#ifndef VOSIM_APPS_IMAGE_HPP
#define VOSIM_APPS_IMAGE_HPP

#include <cstdint>
#include <vector>

#include "src/apps/approx_arith.hpp"

namespace vosim {

/// Row-major 8-bit grayscale image.
struct GrayImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;

  std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
  void set(int x, int y, std::uint8_t v) {
    pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
           static_cast<std::size_t>(x)] = v;
  }
};

/// Deterministic synthetic test scene: gradients, disks, bars and mild
/// noise — enough structure for blur/edge quality to be meaningful.
GrayImage make_synthetic_scene(int width, int height, std::uint64_t seed);

/// Peak signal-to-noise ratio between two same-sized images (dB);
/// +infinity for identical images.
double psnr_db(const GrayImage& reference, const GrayImage& test);

/// 3x3 Gaussian blur (kernel 1-2-1 / 2-4-2 / 1-2-1, /16). All pixel
/// accumulation runs through `add` at 16-bit width. Border pixels are
/// copied through.
GrayImage gaussian_blur3(const GrayImage& src, const AdderFn& add);

/// Sobel gradient magnitude (|gx| + |gy|, saturated to 255), with all
/// additions/subtractions routed through `add` at 16-bit width.
GrayImage sobel_magnitude(const GrayImage& src, const AdderFn& add);

}  // namespace vosim

#endif  // VOSIM_APPS_IMAGE_HPP
