#include "src/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/lanes.hpp"

namespace vosim {

namespace {

/// Splits a comma list ("fir,dot") into its non-empty tokens.
std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Writes the whole buffer, riding out short writes. Returns false on
/// a broken connection (the client went away mid-stream).
/// MSG_NOSIGNAL turns the SIGPIPE a disconnected peer would raise into
/// an EPIPE return, so a vanishing client never kills the daemon.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  return write_all(fd, line + "\n");
}

/// Reads until the first newline or EOF (the request is one line).
std::string read_request_line(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0 || c == '\n') break;
    line.push_back(c);
    if (line.size() > 1 << 16)
      break;  // a sane request is a few hundred bytes
  }
  return line;
}

/// The campaign request body -> CampaignConfig. Absent fields keep
/// the campaign defaults; `default_jobs` is the daemon-wide cap.
CampaignConfig parse_campaign_request(const std::string& line,
                                      unsigned default_jobs) {
  CampaignConfig cfg;
  cfg.jobs = default_jobs;
  std::string raw;
  if (jsonl::raw_field(line, "workloads", raw))
    cfg.workloads = split_list(raw);
  if (jsonl::raw_field(line, "circuits", raw))
    cfg.circuits = split_list(raw);
  if (jsonl::raw_field(line, "backends", raw)) {
    cfg.backends.clear();
    for (const std::string& name : split_list(raw))
      cfg.backends.push_back(parse_arith_backend(name));
  }
  std::uint64_t u = 0;
  if (jsonl::u64_field(line, "seed", u)) cfg.seed = u;
  if (jsonl::u64_field(line, "patterns", u))
    cfg.characterize_patterns = u;
  if (jsonl::u64_field(line, "train_patterns", u)) cfg.train_patterns = u;
  if (jsonl::u64_field(line, "max_triads", u)) cfg.max_triads = u;
  if (jsonl::u64_field(line, "jobs", u))
    cfg.jobs = static_cast<unsigned>(u);
  if (jsonl::u64_field(line, "chips", u)) cfg.fleet.num_chips = u;
  if (jsonl::u64_field(line, "fleet_seed", u)) cfg.fleet.seed = u;
  double d = 0.0;
  if (jsonl::num_field(line, "speed_sigma", d))
    cfg.fleet.speed_sigma = d;
  if (jsonl::num_field(line, "leakage_sigma", d))
    cfg.fleet.leakage_sigma = d;
  if (jsonl::u64_field(line, "provenance", u)) cfg.provenance = u != 0;
  if (jsonl::u64_field(line, "top_culprits", u)) cfg.top_culprits = u;
  return cfg;
}

/// Decrements a gauge on scope exit (watcher lifetime accounting).
struct GaugeGuard {
  obs::Gauge& g;
  ~GaugeGuard() { g.add(-1.0); }
};

}  // namespace

CampaignServer::CampaignServer(const CellLibrary& lib, ServeConfig config)
    : lib_(lib),
      config_(std::move(config)),
      store_(config_.store_path) {
  manifest_.tool = "serve";
  manifest_.engine = "levelized";
  manifest_.lane_width = lanes::resolve_lane_width(0);
  manifest_.config = "socket=" + config_.socket_path +
                     "|store=" + config_.store_path +
                     "|jobs=" + std::to_string(config_.jobs);
  // Stamp the warm store with this daemon's manifest (no-op for
  // in-memory stores or stores that already carry one).
  if (!config_.store_path.empty())
    store_.write_header(manifest_.to_jsonl());
}

CampaignServer::~CampaignServer() { stop(); }

void CampaignServer::start() {
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: bad socket path '" +
                             config_.socket_path + "'");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("serve: socket() failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());  // a stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind " + config_.socket_path);
  }
  running_.store(true);
  started_ = std::chrono::steady_clock::now();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void CampaignServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // EINTR and friends
    }
    std::lock_guard<std::mutex> lock(conn_m_);
    connections_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
}

void CampaignServer::handle_connection(int fd) {
  auto& reg = obs::metrics();
  reg.gauge("serve.connections.active").add(1.0);
  reg.counter("serve.requests").add();
  std::uint64_t bytes = 0;
  bool alive = true;
  {
    obs::ScopedTimer timer(reg.histogram("serve.request.seconds"));
    alive = dispatch(fd, bytes);
  }
  reg.counter("serve.bytes.streamed").add(bytes);
  if (!alive) reg.counter("serve.disconnects").add();
  reg.gauge("serve.connections.active").add(-1.0);
  ::close(fd);
}

bool CampaignServer::dispatch(int fd, std::uint64_t& bytes) {
  // Successful lines count toward serve.bytes.streamed (+1: newline).
  const auto send_line = [fd, &bytes](const std::string& line) {
    if (!write_line(fd, line)) return false;
    bytes += line.size() + 1;
    return true;
  };
  const std::string line = read_request_line(fd);
  std::string cmd;
  if (!jsonl::raw_field(line, "cmd", cmd)) {
    obs::metrics().counter("serve.errors").add();
    return send_line("{\"error\":\"missing cmd\"}");
  }
  requests_.fetch_add(1);
  obs::ScopedSpan span("serve.request", "serve");
  span.arg("cmd", cmd);
  if (cmd == "ping") {
    return send_line("{\"ok\":true,\"cmd\":\"ping\"}");
  }
  if (cmd == "shutdown") {
    const bool ok = send_line("{\"ok\":true,\"cmd\":\"shutdown\"}");
    shutdown_requested_.store(true);
    wait_cv_.notify_all();
    // Wake watchers so open `watch` streams drain their footer and
    // close; the empty critical section orders the store above against
    // a watcher's predicate check (no lost wakeup).
    { std::lock_guard<std::mutex> lock(watch_m_); }
    watch_cv_.notify_all();
    return ok;
  }
  if (cmd == "stats") {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    // One snapshot serves both the metrics blob and the provenance
    // census, so the two never disagree within a line.
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    std::size_t provenance_counters = 0;
    for (const auto& [name, value] : snap.counters)
      if (name.rfind("provenance.", 0) == 0) ++provenance_counters;
    std::ostringstream out;
    out << "{\"ok\":true,\"cmd\":\"stats\",\"uptime_s\":"
        << jsonl::num(uptime)
        << ",\"requests_served\":" << requests_.load()
        << ",\"active_connections\":"
        << static_cast<std::int64_t>(
               obs::metrics().gauge("serve.connections.active").value())
        << ",\"watchers\":"
        << static_cast<std::int64_t>(
               obs::metrics().gauge("serve.watchers.active").value())
        << ",\"watch_events\":" << watch_events_.load()
        << ",\"store_cells\":" << store_.size()
        << ",\"provenance_counters\":" << provenance_counters
        << ",\"manifest\":" << manifest_.to_jsonl()
        << ",\"metrics\":" << snap.to_json() << "}";
    return send_line(out.str());
  }
  if (cmd == "watch") {
    std::uint64_t limit = 0;  // 0 = follow until shutdown
    jsonl::u64_field(line, "limit", limit);
    return serve_watch(fd, limit, bytes);
  }
  if (cmd == "campaign") {
    try {
      CampaignConfig cfg = parse_campaign_request(line, config_.jobs);
      // Every computed cell fans out to the watch log as it finishes,
      // so `watch` clients follow any in-flight campaign live.
      cfg.on_cell = [this](const CampaignCell& cell) {
        publish_event(CampaignStore::to_jsonl(cell));
      };
      const CampaignOutcome outcome = run_campaign(lib_, cfg, store_);
      // Stream the *stored* form of each cell, not the in-memory
      // post-rebase view: stored lines carry the shard-independent
      // baseline, so a served stream is byte-comparable (modulo
      // elapsed_s) with any offline store of the same grid.
      for (const CampaignCell& cell : outcome.cells) {
        const auto stored = store_.find(cell.key);
        if (!send_line(CampaignStore::to_jsonl(stored ? *stored : cell)))
          return false;  // client went away mid-stream
      }
      std::ostringstream footer;
      footer << "{\"done\":true,\"cells\":" << outcome.cells.size()
             << ",\"reused\":" << outcome.reused
             << ",\"computed\":" << outcome.computed << "}";
      return send_line(footer.str());
    } catch (const std::exception& e) {
      obs::metrics().counter("serve.errors").add();
      return send_line(std::string("{\"error\":\"") + e.what() + "\"}");
    }
  }
  // Unknown verbs get a structured, self-diagnosing error line (verb
  // echoed back plus the supported set) instead of a bare message.
  obs::metrics().counter("serve.errors").add();
  return send_line(
      "{\"error\":\"unknown cmd\",\"cmd\":\"" + cmd +
      "\",\"known\":[\"campaign\",\"ping\",\"shutdown\",\"stats\","
      "\"watch\"]}");
}

void CampaignServer::publish_event(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(watch_m_);
    watch_log_.push_back(line);
    if (watch_log_.size() > kWatchLogCap) {
      // O(cap) front eviction on a ≤1024-string vector is noise next
      // to the simulation work that produced the event.
      watch_log_.erase(watch_log_.begin());
      ++watch_base_;
    }
    watch_events_.fetch_add(1);
  }
  watch_cv_.notify_all();
  obs::metrics().counter("serve.watch.events_published").add();
}

bool CampaignServer::serve_watch(int fd, std::uint64_t limit,
                                 std::uint64_t& bytes) {
  auto& reg = obs::metrics();
  reg.counter("serve.watch.requests").add();
  reg.gauge("serve.watchers.active").add(1.0);
  GaugeGuard guard{reg.gauge("serve.watchers.active")};
  const auto send_line = [fd, &bytes](const std::string& l) {
    if (!write_line(fd, l)) return false;
    bytes += l.size() + 1;
    return true;
  };
  std::uint64_t cursor = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(watch_m_);
    cursor = watch_base_;   // start with the retained backlog
    dropped = watch_base_;  // evictions that predate this watcher
  }
  if (!send_line("{\"ok\":true,\"cmd\":\"watch\"}")) return false;
  std::uint64_t sent = 0;
  bool stopping = false;
  while (!stopping && (limit == 0 || sent < limit)) {
    std::vector<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(watch_m_);
      // The timeout is a belt-and-braces net; publish_event, shutdown
      // and stop() all notify under/after taking watch_m_.
      watch_cv_.wait_for(lock, std::chrono::milliseconds(250), [&] {
        return !running_.load() || shutdown_requested_.load() ||
               watch_base_ + watch_log_.size() > cursor;
      });
      if (cursor < watch_base_) cursor = watch_base_;  // fell behind
      while (cursor < watch_base_ + watch_log_.size() &&
             (limit == 0 || sent + batch.size() < limit)) {
        batch.push_back(watch_log_[cursor - watch_base_]);
        ++cursor;
      }
      stopping = batch.empty() &&
                 (!running_.load() || shutdown_requested_.load());
    }
    for (const std::string& l : batch) {
      if (!send_line(l)) return false;  // watcher went away
      ++sent;
    }
  }
  reg.counter("serve.watch.events_streamed").add(sent);
  std::ostringstream footer;
  footer << "{\"done\":true,\"cmd\":\"watch\",\"events\":" << sent
         << ",\"dropped\":" << dropped << "}";
  return send_line(footer.str());
}

void CampaignServer::wait() {
  std::unique_lock<std::mutex> lock(wait_m_);
  wait_cv_.wait(lock, [this] { return shutdown_requested_.load(); });
}

void CampaignServer::stop() {
  if (!running_.exchange(false)) return;
  // Wake blocked watchers before joining their connection threads
  // (same lost-wakeup fence as the shutdown verb).
  { std::lock_guard<std::mutex> lock(watch_m_); }
  watch_cv_.notify_all();
  // Unblock accept(): shut the listener down before joining.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_m_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  shutdown_requested_.store(true);  // release any wait()er
  wait_cv_.notify_all();
}

std::vector<std::string> send_request(const std::string& socket_path,
                                      const std::string& request) {
  sockaddr_un addr{};
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("request: bad socket path '" + socket_path +
                             "'");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("request: socket() failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("request: cannot connect to " + socket_path);
  }
  if (!write_line(fd, request)) {
    ::close(fd);
    throw std::runtime_error("request: send failed");
  }
  std::vector<std::string> lines;
  std::string current;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current.push_back(buf[i]);
      }
    }
  }
  if (!current.empty()) lines.push_back(current);
  ::close(fd);
  return lines;
}

}  // namespace vosim
