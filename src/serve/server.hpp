// Long-lived sweep daemon: a Unix-domain-socket server that accepts
// campaign requests, runs them concurrently on the shared persistent
// ThreadPool with warm caches (one content-keyed CampaignStore lives
// for the daemon's lifetime, so repeated or overlapping requests
// answer finished cells without touching a simulator), and streams
// JSONL results back — the "heavy traffic" serving story from the
// ROADMAP north star. DESIGN.md §11 documents the wire format.
//
// Wire protocol (newline-delimited JSON, one request per connection):
//   client sends one line:  {"cmd":"ping"} | {"cmd":"shutdown"} |
//     {"cmd":"stats"} |
//     {"cmd":"campaign","workloads":"fir,dot","circuits":"rca16",
//      "backends":"model","seed":1,"patterns":2000,
//      "train_patterns":4000,"max_triads":3,"chips":0,"jobs":0}
//   server streams back:
//     campaign — one CampaignStore::to_jsonl line per cell (canonical
//       grid order, the *stored* form with the shard-independent
//       baseline, so streams are byte-comparable with offline stores
//       modulo elapsed_s), then a footer
//       {"done":true,"cells":N,"reused":R,"computed":C}
//     ping — {"ok":true,"cmd":"ping"}
//     stats — one line with daemon introspection (DESIGN.md §12):
//       {"ok":true,"cmd":"stats","uptime_s":...,"requests_served":N,
//        "active_connections":A,"store_cells":S,
//        "manifest":{...RunManifest...},"metrics":{...snapshot...}}
//     shutdown — {"ok":true,"cmd":"shutdown"}, then the accept loop
//       winds down and wait() returns
//   errors — {"error":"<message>"} and the connection closes.
#ifndef VOSIM_SERVE_SERVER_HPP
#define VOSIM_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/obs/manifest.hpp"
#include "src/tech/library.hpp"

namespace vosim {

/// Daemon configuration.
struct ServeConfig {
  /// Filesystem path of the Unix-domain socket (created on start(),
  /// unlinked on stop()). Must fit sockaddr_un (~100 chars).
  std::string socket_path;
  /// Warm store backing file ("" = in-memory only): every request's
  /// finished cells land here and pre-answer later requests.
  std::string store_path;
  /// Default worker cap for requests that do not send "jobs".
  unsigned jobs = 0;
};

/// The daemon. start() binds and listens synchronously (the socket
/// exists when it returns), then serves each connection on its own
/// thread; the simulation work inside a request parallelizes on the
/// shared ThreadPool, which serializes concurrent submitters — so two
/// in-flight requests interleave safely instead of oversubscribing.
class CampaignServer {
 public:
  CampaignServer(const CellLibrary& lib, ServeConfig config);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Binds the socket and starts accepting. Throws std::runtime_error
  /// when the socket cannot be created/bound.
  void start();
  /// Blocks until a shutdown request has been served (returns
  /// immediately if one already was).
  void wait();
  /// Stops accepting, joins every connection thread, unlinks the
  /// socket. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(); }
  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }
  /// The warm store (e.g. to inspect cached cells in tests).
  CampaignStore& store() noexcept { return store_; }
  /// This daemon's run manifest (also served by the `stats` verb).
  const obs::RunManifest& manifest() const noexcept { return manifest_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Parses and answers one request; returns false when the client
  /// went away mid-stream. `bytes` accumulates payload written.
  bool dispatch(int fd, std::uint64_t& bytes);

  const CellLibrary& lib_;
  ServeConfig config_;
  obs::RunManifest manifest_;
  CampaignStore store_;
  std::chrono::steady_clock::time_point started_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread acceptor_;
  std::mutex conn_m_;
  std::vector<std::thread> connections_;
  std::mutex wait_m_;
  std::condition_variable wait_cv_;
};

/// Client helper: connects to the daemon, sends one request line and
/// returns every response line until the server closes the
/// connection. Throws std::runtime_error when the socket is
/// unreachable.
std::vector<std::string> send_request(const std::string& socket_path,
                                      const std::string& request);

}  // namespace vosim

#endif  // VOSIM_SERVE_SERVER_HPP
