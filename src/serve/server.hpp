// Long-lived sweep daemon: a Unix-domain-socket server that accepts
// campaign requests, runs them concurrently on the shared persistent
// ThreadPool with warm caches (one content-keyed CampaignStore lives
// for the daemon's lifetime, so repeated or overlapping requests
// answer finished cells without touching a simulator), and streams
// JSONL results back — the "heavy traffic" serving story from the
// ROADMAP north star. DESIGN.md §11 documents the wire format.
//
// Wire protocol (newline-delimited JSON, one request per connection):
//   client sends one line:  {"cmd":"ping"} | {"cmd":"shutdown"} |
//     {"cmd":"stats"} | {"cmd":"watch","limit":N} |
//     {"cmd":"campaign","workloads":"fir,dot","circuits":"rca16",
//      "backends":"model","seed":1,"patterns":2000,
//      "train_patterns":4000,"max_triads":3,"chips":0,"jobs":0,
//      "provenance":1,"top_culprits":4}
//   server streams back:
//     campaign — one CampaignStore::to_jsonl line per cell (canonical
//       grid order, the *stored* form with the shard-independent
//       baseline, so streams are byte-comparable with offline stores
//       modulo elapsed_s), then a footer
//       {"done":true,"cells":N,"reused":R,"computed":C}
//     ping — {"ok":true,"cmd":"ping"}
//     stats — one line with daemon introspection (DESIGN.md §12):
//       {"ok":true,"cmd":"stats","uptime_s":...,"requests_served":N,
//        "active_connections":A,"watchers":W,"watch_events":E,
//        "store_cells":S,"provenance_counters":P,
//        "manifest":{...RunManifest...},"metrics":{...snapshot...}}
//       (provenance_counters = registered "provenance.*" counters, so a
//       client can tell whether any served campaign ran attribution)
//     watch — live campaign progress (DESIGN.md §13): a header
//       {"ok":true,"cmd":"watch"}, then one CampaignStore::to_jsonl
//       line per cell *computed* by any concurrently-served campaign
//       (reused cells never stream; with "provenance":1 each line
//       carries its "culprits" field), as the cells finish — the
//       watcher first drains the bounded in-daemon event log (last
//       1024 events), then follows live. Ends with
//       {"done":true,"cmd":"watch","events":N,"dropped":D} after
//       "limit":N events (0/absent = until shutdown); D counts log
//       evictions that happened before this watcher attached.
//     shutdown — {"ok":true,"cmd":"shutdown"}, then the accept loop
//       winds down and wait() returns
//   errors — one structured JSON line, then the connection closes:
//     unknown verbs answer {"error":"unknown cmd","cmd":"<verb>",
//     "known":["campaign","ping","shutdown","stats","watch"]} rather
//     than silently dropping the connection, so misspelled clients can
//     self-diagnose; other failures answer {"error":"<message>"}.
#ifndef VOSIM_SERVE_SERVER_HPP
#define VOSIM_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.hpp"
#include "src/campaign/store.hpp"
#include "src/obs/manifest.hpp"
#include "src/tech/library.hpp"

namespace vosim {

/// Daemon configuration.
struct ServeConfig {
  /// Filesystem path of the Unix-domain socket (created on start(),
  /// unlinked on stop()). Must fit sockaddr_un (~100 chars).
  std::string socket_path;
  /// Warm store backing file ("" = in-memory only): every request's
  /// finished cells land here and pre-answer later requests.
  std::string store_path;
  /// Default worker cap for requests that do not send "jobs".
  unsigned jobs = 0;
};

/// The daemon. start() binds and listens synchronously (the socket
/// exists when it returns), then serves each connection on its own
/// thread; the simulation work inside a request parallelizes on the
/// shared ThreadPool, which serializes concurrent submitters — so two
/// in-flight requests interleave safely instead of oversubscribing.
class CampaignServer {
 public:
  CampaignServer(const CellLibrary& lib, ServeConfig config);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Binds the socket and starts accepting. Throws std::runtime_error
  /// when the socket cannot be created/bound.
  void start();
  /// Blocks until a shutdown request has been served (returns
  /// immediately if one already was).
  void wait();
  /// Stops accepting, joins every connection thread, unlinks the
  /// socket. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(); }
  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  std::uint64_t requests_served() const noexcept {
    return requests_.load();
  }
  /// Total events ever published to the watch log (monotonic; the
  /// bounded log may have evicted the oldest ones).
  std::uint64_t watch_events() const noexcept {
    return watch_events_.load();
  }
  /// The warm store (e.g. to inspect cached cells in tests).
  CampaignStore& store() noexcept { return store_; }
  /// This daemon's run manifest (also served by the `stats` verb).
  const obs::RunManifest& manifest() const noexcept { return manifest_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Parses and answers one request; returns false when the client
  /// went away mid-stream. `bytes` accumulates payload written.
  bool dispatch(int fd, std::uint64_t& bytes);
  /// Appends one event line to the bounded watch log and wakes every
  /// watcher. Called from pool worker threads (campaign on_cell).
  void publish_event(const std::string& line);
  /// Serves one watch subscription; returns false when the watcher
  /// went away mid-stream.
  bool serve_watch(int fd, std::uint64_t limit, std::uint64_t& bytes);

  /// Bounded watch log capacity: old events are evicted front-first so
  /// a daemon nobody watches never grows without bound.
  static constexpr std::size_t kWatchLogCap = 1024;

  const CellLibrary& lib_;
  ServeConfig config_;
  obs::RunManifest manifest_;
  CampaignStore store_;
  std::chrono::steady_clock::time_point started_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread acceptor_;
  std::mutex conn_m_;
  std::vector<std::thread> connections_;
  std::mutex wait_m_;
  std::condition_variable wait_cv_;
  /// Watch machinery: a bounded event log (deque semantics on a
  /// vector) under its own mutex. `watch_base_` is the monotonic
  /// sequence number of watch_log_.front(); a watcher's cursor is a
  /// sequence number, so eviction never corrupts an attached stream —
  /// a slow watcher that falls behind simply skips evicted events.
  std::mutex watch_m_;
  std::condition_variable watch_cv_;
  std::vector<std::string> watch_log_;
  std::uint64_t watch_base_ = 0;
  std::atomic<std::uint64_t> watch_events_{0};
};

/// Client helper: connects to the daemon, sends one request line and
/// returns every response line until the server closes the
/// connection. Throws std::runtime_error when the socket is
/// unreachable.
std::vector<std::string> send_request(const std::string& socket_path,
                                      const std::string& request);

}  // namespace vosim

#endif  // VOSIM_SERVE_SERVER_HPP
