#include "src/characterize/triads.hpp"

#include <cctype>
#include <string>

#include "src/netlist/dut.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::vector<double> paper_tclk_ratios(AdderArch arch, int width) {
  // Table III, normalized to each benchmark's synthesis critical path:
  //   8-bit RCA : 0.5, 0.28, 0.19, 0.13   (/0.28)
  //   8-bit BKA : 0.5, 0.19, 0.13, 0.064  (/0.19)
  //   16-bit RCA: 0.7, 0.53, 0.25, 0.20   (/0.53)
  //   16-bit BKA: 0.7, 0.25, 0.20, 0.15   (/0.25)
  if (arch == AdderArch::kBrentKung && width >= 16)
    return {2.80, 1.0, 0.80, 0.60};
  if (arch == AdderArch::kBrentKung)
    return {2.632, 1.0, 0.684, 0.337};
  if (width >= 16) return {1.321, 1.0, 0.472, 0.377};
  return {1.786, 1.0, 0.679, 0.464};
}

std::vector<double> paper_vdd_steps() {
  return {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
}

std::vector<double> paper_vbb_steps() { return {0.0, 2.0}; }

std::vector<OperatingTriad> make_triad_set(
    const std::vector<double>& tclk_ns) {
  VOSIM_EXPECTS(tclk_ns.size() >= 2);
  for (double t : tclk_ns) VOSIM_EXPECTS(t > 0.0);
  std::vector<OperatingTriad> out;
  out.push_back(OperatingTriad{tclk_ns.front(), 1.0, 0.0});
  for (std::size_t k = 1; k < tclk_ns.size(); ++k)
    for (const double vdd : paper_vdd_steps())
      for (const double vbb : paper_vbb_steps())
        out.push_back(OperatingTriad{tclk_ns[k], vdd, vbb});
  // 1 + 3·7·2 == 43 for the paper's four-period sets.
  return out;
}

std::vector<OperatingTriad> make_paper_triads(AdderArch arch, int width,
                                              double synthesis_cp_ns) {
  VOSIM_EXPECTS(synthesis_cp_ns > 0.0);
  std::vector<double> tclk;
  for (const double r : paper_tclk_ratios(arch, width))
    tclk.push_back(r * synthesis_cp_ns);
  return make_triad_set(tclk);
}

std::vector<OperatingTriad> make_dut_triads(double synthesis_cp_ns) {
  VOSIM_EXPECTS(synthesis_cp_ns > 0.0);
  const double ratios[] = {1.5, 1.0, 0.8, 0.6};
  std::vector<double> tclk;
  for (const double r : ratios) tclk.push_back(r * synthesis_cp_ns);
  return make_triad_set(tclk);
}

std::vector<OperatingTriad> make_circuit_triads(const DutNetlist& dut,
                                                double synthesis_cp_ns) {
  const struct {
    const char* tok;
    AdderArch arch;
  } adders[] = {
      {"rca", AdderArch::kRipple},       {"bka", AdderArch::kBrentKung},
      {"ksa", AdderArch::kKoggeStone},   {"skl", AdderArch::kSklansky},
      {"csel", AdderArch::kCarrySelect}, {"cska", AdderArch::kCarrySkip},
      {"hca", AdderArch::kHanCarlson},
  };
  for (const auto& entry : adders) {
    const std::string tok = entry.tok;
    if (dut.kind.size() > tok.size() &&
        dut.kind.compare(0, tok.size(), tok) == 0 &&
        std::isdigit(static_cast<unsigned char>(dut.kind[tok.size()]))) {
      const int width = std::stoi(dut.kind.substr(tok.size()));
      return make_paper_triads(entry.arch, width, synthesis_cp_ns);
    }
  }
  return make_dut_triads(synthesis_cp_ns);
}

}  // namespace vosim
