// Shaping characterization results into the paper's tables and figures.
#ifndef VOSIM_CHARACTERIZE_REPORT_HPP
#define VOSIM_CHARACTERIZE_REPORT_HPP

#include <string>
#include <vector>

#include "src/characterize/characterizer.hpp"
#include "src/util/table.hpp"

namespace vosim {

/// Fig. 8 x-axis ordering: BER ascending, ties broken by energy
/// ascending (the paper's plots show the 0%-BER region ordered by
/// rising energy, then the error region by rising BER).
std::vector<TriadResult> sort_for_fig8(std::vector<TriadResult> results);

/// One row of Table IV (a BER band of the triad population).
struct EfficiencyBand {
  std::string label;        ///< e.g. "1% to 10%"
  double lo_pct = 0.0;      ///< exclusive lower edge (except the 0 band)
  double hi_pct = 0.0;      ///< inclusive upper edge
  int triad_count = 0;
  bool has_best = false;
  double max_efficiency_pct = 0.0;  ///< best energy saving in the band
  double ber_at_max_pct = 0.0;      ///< BER of that best triad
  OperatingTriad best_triad{};
};

/// Bands of Table IV: 0%, 1-10%, 11-20%, 21-25%. Efficiency is relative
/// to `baseline_fj` (the relaxed nominal triad's energy/op).
std::vector<EfficiencyBand> table4_bands(
    const std::vector<TriadResult>& results, double baseline_fj);

/// Fig. 8 as text: one row per triad with BER and energy/op.
TextTable fig8_table(const std::vector<TriadResult>& sorted_results,
                     double baseline_fj);

/// Triad listing (Table III style) for one benchmark.
TextTable table3_rows(const std::string& benchmark,
                      const std::vector<OperatingTriad>& triads);

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_REPORT_HPP
