#include "src/characterize/characterizer.hpp"

#include "src/sim/vos_adder.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace vosim {

std::vector<TriadResult> characterize_adder(
    const AdderNetlist& adder, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config) {
  VOSIM_EXPECTS(!triads.empty());
  VOSIM_EXPECTS(config.num_patterns > 0);
  std::vector<TriadResult> results(triads.size());

  parallel_for(
      triads.size(),
      [&](std::size_t t) {
        const OperatingTriad& op = triads[t];
        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        VosAdderSim sim(adder, lib, op, sim_cfg);

        // Identical stimulus sequence at every triad (paper testbench).
        PatternStream patterns(config.policy, adder.width,
                               config.pattern_seed);
        ErrorAccumulator acc(adder.width + 1);
        double energy = 0.0;
        double dyn = 0.0;
        double settle = 0.0;

        // Establish a settled initial state from the first pattern.
        const OperandPair first = patterns.next();
        sim.reset(first.a, first.b);

        for (std::size_t i = 0; i < config.num_patterns; ++i) {
          const OperandPair pat = patterns.next();
          if (!config.streaming_state) sim.reset(first.a, first.b);
          const VosAddResult r = sim.add(pat.a, pat.b);
          const std::uint64_t golden =
              exact_add(pat.a, pat.b, adder.width);
          acc.add(golden, r.sampled);
          energy += r.energy_fj;
          dyn += r.energy_fj - sim.leakage_energy_fj();
          settle += r.settle_time_ps;
        }

        TriadResult& res = results[t];
        res.triad = op;
        res.ber = acc.ber();
        res.bitwise_ber = acc.bitwise_error_probability();
        res.op_error_rate = acc.op_error_rate();
        res.mse = acc.mse();
        const auto n = static_cast<double>(config.num_patterns);
        res.energy_per_op_fj = energy / n;
        res.dynamic_energy_fj = dyn / n;
        res.leakage_energy_fj = sim.leakage_energy_fj();
        res.mean_settle_ps = settle / n;
        res.patterns = config.num_patterns;
      },
      config.threads);

  return results;
}

double energy_efficiency(double energy_fj, double baseline_fj) {
  VOSIM_EXPECTS(baseline_fj > 0.0);
  return 1.0 - energy_fj / baseline_fj;
}

}  // namespace vosim
