#include "src/characterize/characterizer.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/sim/levelized_sim.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/lanes.hpp"
#include "src/util/parallel.hpp"

namespace vosim {

namespace {

/// The shared stimulus sequence, flattened pattern-major (pattern p's
/// operands at [p*nops, (p+1)*nops)): patterns[0] settles the initial
/// state, patterns[1..num_patterns] are streamed — identical at every
/// triad (paper testbench), generated once per sweep instead of per
/// triad.
std::vector<std::uint64_t> generate_patterns(
    const CharacterizeConfig& config, const DutNetlist& dut) {
  const std::size_t nops = dut.num_operands();
  std::vector<std::uint64_t> pats((config.num_patterns + 1) * nops);
  DutPatternStream stream(config.policy, dut.operand_widths(),
                          config.pattern_seed);
  for (std::size_t p = 0; p <= config.num_patterns; ++p)
    stream.next({pats.data() + p * nops, nops});
  return pats;
}

/// Reference output for one pattern: the user-provided golden function,
/// or the DUT's own settled value (timing errors only — correct for
/// approximate units and non-adders alike).
std::uint64_t golden_of(const CharacterizeConfig& config,
                        std::span<const std::uint64_t> ops,
                        std::uint64_t settled) {
  return config.golden ? config.golden(ops) : settled;
}

/// Pipeline provenance roll-up from the per-stage observers: culprit
/// histograms aggregate across stages (names carry the "s<k>:" prefix),
/// bitwise_ber is the output stage's local per-bit probability, and the
/// slack figures take the worst stage. `ops` comes from the output
/// stage (every stage observes every cycle).
ProvenanceSummary combine_stage_summaries(
    std::span<const ProvenanceSummary> stages, std::size_t top_k) {
  ProvenanceSummary out;
  VOSIM_EXPECTS(!stages.empty());
  out.ops = stages.back().ops;
  out.bitwise_ber = stages.back().bitwise_ber;
  for (const ProvenanceSummary& s : stages) {
    out.erroneous_ops += s.erroneous_ops;
    out.attributed_bits += s.attributed_bits;
    out.lane_words += s.lane_words;
    out.culprits.insert(out.culprits.end(), s.culprits.begin(),
                        s.culprits.end());
    out.slack_p50_ps = std::max(out.slack_p50_ps, s.slack_p50_ps);
    out.slack_p95_ps = std::max(out.slack_p95_ps, s.slack_p95_ps);
    out.slack_max_ps = std::max(out.slack_max_ps, s.slack_max_ps);
  }
  std::sort(out.culprits.begin(), out.culprits.end(),
            [](const CulpritCount& a, const CulpritCount& b) {
              return a.bits != b.bits ? a.bits > b.bits
                                      : a.name < b.name;
            });
  if (out.culprits.size() > top_k) out.culprits.resize(top_k);
  return out;
}

/// Grid fast path for the levelized engine: supply and body bias scale
/// every gate delay by one common factor (delay_scale), and the
/// levelized engine's inertial/glitch decisions are invariant under
/// that scaling — so the whole Tclk/Vdd/Vbb grid shares one normalized
/// timing structure per die. One step_batch_sweep pass evaluates every
/// pattern against all triads at once: triad t becomes capture
/// threshold tclk·scale_ref/scale_t, with window energy scaled by
/// (Vdd/Vdd_ref)² and leakage computed per triad. The pattern stream
/// is split into segments with exact warm starts (the streaming state
/// is purely functional: the previous pattern's settled values), so
/// segment-parallel results are bit-identical to the sequential chain.
/// Nothing in the pass depends on the DUT being an adder — the same
/// code serves multipliers and MAC trees. Templated on the lane word:
/// characterize_dut dispatches on the resolved lane width, and every
/// instantiation produces bit-identical statistics (the per-lane commit
/// order and FP accumulation order are width-invariant).
template <class LW>
std::vector<TriadResult> characterize_levelized_sweep(
    const DutNetlist& dut, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config,
    std::span<const std::uint64_t> pats) {
  const std::size_t nthr = triads.size();
  const std::size_t num_patterns = config.num_patterns;
  const TransistorModel& tm = lib.transistor_model();

  const OperatingTriad ref{1.0, 1.0, 0.0};
  const double scale_ref = tm.delay_scale(ref.vdd_v, ref.vbb_v);
  const double leak_nw_base = dut.netlist.cell_leakage_nw(lib);

  std::vector<double> tau(nthr);     // threshold in the ref time base
  std::vector<double> escale(nthr);  // dynamic-energy scale vs ref
  std::vector<double> sscale(nthr);  // settle-time scale vs ref
  std::vector<double> leak_fj(nthr);
  for (std::size_t t = 0; t < nthr; ++t) {
    const OperatingTriad& op = triads[t];
    const double s_t = tm.delay_scale(op.vdd_v, op.vbb_v);
    tau[t] = op.tclk_ns * 1e3 * scale_ref / s_t;
    escale[t] = (op.vdd_v / ref.vdd_v) * (op.vdd_v / ref.vdd_v);
    sscale[t] = s_t / scale_ref;
    leak_fj[t] = leak_nw_base * tm.leakage_scale(op.vdd_v, op.vbb_v) *
                 1e-3 * op.tclk_ns * 1e3 * 1e-3;
  }
  std::vector<std::size_t> order(nthr);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return tau[x] < tau[y]; });
  std::vector<double> sorted_tau(nthr);
  std::vector<std::size_t> pos(nthr);  // triad -> sorted position
  for (std::size_t j = 0; j < nthr; ++j) {
    sorted_tau[j] = tau[order[j]];
    pos[order[j]] = j;
  }

  // The same operand-scatter / output-gather mapping VosDutSim uses, so
  // the fast path cannot diverge from the per-triad path.
  const DutPinMap pins(dut);
  const std::size_t nops = pins.num_operands();
  const int out_bits = pins.output_width();
  const std::size_t npis = dut.netlist.primary_inputs().size();

  // Segment the stream across the pool; each segment is large enough
  // to amortize its simulator construction and to fill at least a
  // couple of lane words at the widest instantiations.
  constexpr std::size_t kChunk = LevelizedSimulatorT<LW>::kLanes;
  const std::size_t min_seg = std::max<std::size_t>(256, 2 * kChunk);
  const unsigned workers =
      config.threads == 0 ? hardware_parallelism() : config.threads;
  const std::size_t nseg = std::clamp<std::size_t>(
      std::min<std::size_t>(workers, num_patterns / min_seg), 1, 64);

  struct Partial {
    ErrorAccumulator acc;
    double energy = 0.0;
    double dyn = 0.0;
    double settle = 0.0;
  };
  std::vector<std::vector<Partial>> parts(nseg);
  for (auto& seg : parts) {
    seg.reserve(nthr);
    for (std::size_t t = 0; t < nthr; ++t)
      seg.push_back(Partial{ErrorAccumulator(out_bits), 0.0, 0.0, 0.0});
  }

  shared_thread_pool().parallel(
      nseg,
      [&](std::size_t s) {
        // Stream indices [begin, end) of patterns; begin-1 settles.
        const std::size_t begin = 1 + s * num_patterns / nseg;
        const std::size_t end = 1 + (s + 1) * num_patterns / nseg;

        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        LevelizedSimulatorT<LW> eng(dut.netlist, lib, ref, sim_cfg);

        std::vector<std::uint8_t> in(npis, 0);
        pins.fill_inputs({pats.data() + (begin - 1) * nops, nops},
                         in.data());
        eng.reset(in);

        std::vector<std::uint8_t> bytes(kChunk * npis, 0);
        std::vector<StepResult> res(kChunk * nthr);
        std::vector<Partial>& seg = parts[s];

        for (std::size_t c = begin; c < end; c += kChunk) {
          const std::size_t n = std::min(kChunk, end - c);
          std::fill(bytes.begin(), bytes.begin() + n * npis, 0);
          for (std::size_t i = 0; i < n; ++i)
            pins.fill_inputs({pats.data() + (c + i) * nops, nops},
                             bytes.data() + i * npis);
          eng.step_batch_sweep({bytes.data(), n * npis}, n, sorted_tau,
                               res);
          for (std::size_t i = 0; i < n; ++i) {
            const std::span<const std::uint64_t> ops{
                pats.data() + (c + i) * nops, nops};
            // Settled outputs are functional, hence identical across
            // the thresholds of one pattern — read them once.
            const std::uint64_t settled =
                pins.gather_output(res[i * nthr].settled_outputs);
            const std::uint64_t golden =
                golden_of(config, ops, settled);
            for (std::size_t t = 0; t < nthr; ++t) {
              const StepResult& st = res[i * nthr + pos[t]];
              const std::uint64_t sampled =
                  pins.gather_output(st.sampled_outputs);
              Partial& acc = seg[t];
              acc.acc.add(golden, sampled);
              const double win = st.window_energy_fj * escale[t];
              acc.energy += win + leak_fj[t];
              acc.dyn += win;
              acc.settle += st.settle_time_ps * sscale[t];
            }
          }
        }
      },
      config.threads);

  std::vector<TriadResult> results(nthr);
  for (std::size_t t = 0; t < nthr; ++t) {
    ErrorAccumulator merged(out_bits);
    double energy = 0.0;
    double dyn = 0.0;
    double settle = 0.0;
    for (std::size_t s = 0; s < nseg; ++s) {
      merged.merge(parts[s][t].acc);
      energy += parts[s][t].energy;
      dyn += parts[s][t].dyn;
      settle += parts[s][t].settle;
    }
    TriadResult& res = results[t];
    res.triad = triads[t];
    res.ber = merged.ber();
    res.bitwise_ber = merged.bitwise_error_probability();
    res.op_error_rate = merged.op_error_rate();
    res.mse = merged.mse();
    res.mred = merged.mred();
    const auto n = static_cast<double>(num_patterns);
    res.energy_per_op_fj = energy / n;
    res.dynamic_energy_fj = dyn / n;
    res.leakage_energy_fj = leak_fj[t];
    res.mean_settle_ps = settle / n;
    res.patterns = num_patterns;
  }
  return results;
}

/// Sequential grid fast path for the levelized engine — the clocked
/// analogue of characterize_levelized_sweep. Supply and body bias scale
/// every gate delay by one common factor, so the whole Tclk/Vdd/Vbb
/// grid maps onto ONE normalized pipeline (the reference die at Vdd
/// 1.0 / Vbb 0.0) whose capture threshold slides to
///   tau[t] = (Tclk_t − t_setup)·1e3 · scale_ref / scale_t.
/// Unlike the combinational sweep, cycle trajectories feed back through
/// the registers, so different thresholds cannot share one timing pass
/// — but the largest threshold's trajectory is the settled (error-free)
/// pipeline, and its worst normalized commit time bounds every commit
/// of every cycle: a triad whose tau exceeds that bound provably never
/// truncates (by induction over cycles its trajectory IS the reference
/// one), so its result is synthesized from the reference aggregates —
/// BER exactly 0, dynamic energy and settle rescaled. The remaining
/// (error-onset and beyond) triads replay on per-worker normalized
/// pipelines via SeqSim::retarget_capture_ps, skipping the per-triad
/// die rebuild. Error counts match the per-triad path up to
/// delay-product rounding at the window boundary and energies to FP
/// rescaling — the same caveats the combinational fast path carries.
std::vector<TriadResult> characterize_seq_levelized_norm(
    const SeqDut& seq, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config,
    std::span<const std::uint64_t> pats) {
  const std::size_t nthr = triads.size();
  const std::size_t nops = seq.num_operands();
  const TransistorModel& tm = lib.transistor_model();
  const double scale_ref = tm.delay_scale(1.0, 0.0);
  const double setup_ns = lib.dff_setup_ps() * 1e-3;

  double leak_nw_base = 0.0;
  for (const DutNetlist& st : seq.stages)
    leak_nw_base += st.netlist.cell_leakage_nw(lib);

  std::vector<double> tau(nthr);      // capture threshold, ref time base
  std::vector<double> escale(nthr);   // dynamic-energy scale vs ref
  std::vector<double> sscale(nthr);   // settle-time scale vs ref
  std::vector<double> leak_fj(nthr);  // per-cycle leakage, full period
  std::vector<double> clock_fj(nthr);
  std::size_t ref_t = 0;
  for (std::size_t t = 0; t < nthr; ++t) {
    const OperatingTriad& op = triads[t];
    VOSIM_EXPECTS(op.tclk_ns > setup_ns);
    const double s_t = tm.delay_scale(op.vdd_v, op.vbb_v);
    tau[t] = (op.tclk_ns - setup_ns) * 1e3 * scale_ref / s_t;
    escale[t] = op.vdd_v * op.vdd_v;
    sscale[t] = s_t / scale_ref;
    leak_fj[t] = leak_nw_base * tm.leakage_scale(op.vdd_v, op.vbb_v) *
                 1e-3 * op.tclk_ns * 1e3 * 1e-3;
    clock_fj[t] = seq_clock_energy_fj(seq, lib, op.vdd_v);
    if (tau[t] > tau[ref_t]) ref_t = t;
  }

  TimingSimConfig sim_cfg;
  sim_cfg.variation_sigma = config.variation_sigma;
  sim_cfg.variation_seed = config.variation_seed;
  sim_cfg.engine = EngineKind::kLevelized;
  sim_cfg.lane_width = config.lane_width;
  // Constructed above the largest threshold, then pinned exactly.
  const OperatingTriad norm{tau[ref_t] * 1e-3 + setup_ns, 1.0, 0.0};

  std::vector<TriadResult> results(nthr);
  const std::size_t latency = seq.latency_cycles();
  const std::size_t cycles = config.num_patterns + latency - 1;
  std::vector<std::uint64_t> ops(cycles * nops, 0);
  std::copy(pats.begin(), pats.end(), ops.begin());

  // A saturated threshold is recognizable from its first probe word:
  // past the onset cliff the op-error rate is high enough that 62-odd
  // samples pin it, and the full budget adds nothing but wall clock.
  const std::size_t probe_cycles = std::min<std::size_t>(cycles, 64);
  const bool probe_enabled = config.seq_saturation_threshold <= 1.0 &&
                             probe_cycles < cycles &&
                             probe_cycles >= latency;

  // One normalized replay at threshold tau[t]; aggregates are in the
  // ref time/energy base and rescaled into the triad's own units.
  // allow_probe lets a replay stop at the probe word when saturated;
  // the reference run always spends the full budget (its trajectory
  // and worst commit bound seed every synthesized triad).
  const auto run_at = [&](SeqSim& sim, std::vector<SeqCycleResult>& rs,
                          std::size_t t, double* worst_out,
                          bool allow_probe) {
    sim.reset();
    sim.retarget_capture_ps(tau[t]);
    std::size_t n_cycles = cycles;
    if (allow_probe && probe_enabled) {
      sim.step_cycle_batch({ops.data(), probe_cycles * nops},
                           probe_cycles,
                           {rs.data(), probe_cycles});
      ErrorAccumulator probe_acc(sim.output_width());
      for (std::size_t c = 0; c < probe_cycles; ++c)
        if (rs[c].output_valid)
          probe_acc.add(rs[c].expected, rs[c].captured);
      if (probe_acc.op_error_rate() >= config.seq_saturation_threshold) {
        n_cycles = probe_cycles;  // saturated: the probe IS the sample
      } else {
        sim.reset();
        sim.retarget_capture_ps(tau[t]);
      }
    }
    if (n_cycles == cycles)
      sim.step_cycle_batch(ops, cycles, rs);
    const double const_fj = sim.leakage_energy_fj_per_cycle() +
                            sim.clock_energy_fj_per_cycle();
    ErrorAccumulator acc(sim.output_width());
    double dyn = 0.0;
    double settle = 0.0;
    double worst = 0.0;
    for (std::size_t c = 0; c < n_cycles; ++c) {
      const SeqCycleResult& r = rs[c];
      dyn += r.energy_fj - const_fj;
      settle += r.max_settle_ps;
      worst = std::max(worst, r.max_settle_ps);
      if (r.output_valid) acc.add(r.expected, r.captured);
    }
    if (worst_out != nullptr) *worst_out = worst;

    TriadResult& res = results[t];
    res.triad = triads[t];
    res.ber = acc.ber();
    res.bitwise_ber = acc.bitwise_error_probability();
    res.op_error_rate = acc.op_error_rate();
    res.mse = acc.mse();
    res.mred = acc.mred();
    const auto n = static_cast<double>(n_cycles);
    res.energy_per_op_fj =
        dyn * escale[t] / n + leak_fj[t] + clock_fj[t];
    res.dynamic_energy_fj = dyn * escale[t] / n + clock_fj[t];
    res.leakage_energy_fj = leak_fj[t];
    res.mean_settle_ps = settle * sscale[t] / n;
    res.patterns = n_cycles - latency + 1;
  };

  // Phase 1: the reference (largest-threshold) run bounds every commit.
  double worst_norm = 0.0;
  {
    SeqSim sim(seq, lib, norm, sim_cfg);
    std::vector<SeqCycleResult> rs(cycles);
    run_at(sim, rs, ref_t, &worst_norm, false);
  }
  const TriadResult& ref_res = results[ref_t];

  // Phase 2: classify. Provably truncation-free triads reuse the
  // reference trajectory's aggregates (their own run would retrace it
  // commit for commit); the rest replay, sharded across the pool with
  // one normalized pipeline per worker.
  std::vector<std::size_t> active;
  for (std::size_t t = 0; t < nthr; ++t) {
    if (t == ref_t) continue;
    if (tau[t] > worst_norm * (1.0 + 1e-9)) {
      TriadResult& res = results[t];
      res = ref_res;
      res.triad = triads[t];
      const auto n = static_cast<double>(cycles);
      const double dyn =
          (ref_res.dynamic_energy_fj - clock_fj[ref_t]) * n /
          escale[ref_t];
      res.energy_per_op_fj =
          dyn * escale[t] / n + leak_fj[t] + clock_fj[t];
      res.dynamic_energy_fj = dyn * escale[t] / n + clock_fj[t];
      res.leakage_energy_fj = leak_fj[t];
      res.mean_settle_ps =
          ref_res.mean_settle_ps / sscale[ref_t] * sscale[t];
    } else {
      active.push_back(t);
    }
  }

  if (!active.empty()) {
    const unsigned workers =
        config.threads == 0 ? hardware_parallelism() : config.threads;
    const std::size_t nshard = std::clamp<std::size_t>(
        std::min<std::size_t>(workers, active.size()), 1, 64);
    shared_thread_pool().parallel(
        nshard,
        [&](std::size_t s) {
          SeqSim sim(seq, lib, norm, sim_cfg);
          std::vector<SeqCycleResult> rs(cycles);
          for (std::size_t i = s; i < active.size(); i += nshard)
            run_at(sim, rs, active[i], nullptr, true);
        },
        config.threads);
  }
  return results;
}

}  // namespace

std::vector<TriadResult> characterize_dut(
    const DutNetlist& dut, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config) {
  VOSIM_EXPECTS(!triads.empty());
  VOSIM_EXPECTS(config.num_patterns > 0);
  VOSIM_EXPECTS(config.batch_size > 0);

  const std::vector<std::uint64_t> pats = generate_patterns(config, dut);
  const std::size_t nops = dut.num_operands();

  // Provenance needs observer dispatch, which the multi-threshold
  // sweep pass does not do — route those sweeps to the per-triad loop.
  if (config.engine == EngineKind::kLevelized && config.streaming_state &&
      !config.provenance) {
    switch (lanes::resolve_lane_width(config.lane_width)) {
      case 512:
        return characterize_levelized_sweep<lanes::Word512>(
            dut, lib, triads, config, pats);
      case 256:
        return characterize_levelized_sweep<lanes::Word256>(
            dut, lib, triads, config, pats);
      default:
        return characterize_levelized_sweep<lanes::Word>(dut, lib, triads,
                                                         config, pats);
    }
  }

  std::vector<TriadResult> results(triads.size());
  std::vector<std::unique_ptr<ErrorProvenance>> provs(
      config.provenance ? triads.size() : 0);

  // One persistent pool across the whole grid (and across repeated
  // sweeps in the same process): triads are the parallel unit, patterns
  // stream through each simulator in batches.
  shared_thread_pool().parallel(
      triads.size(),
      [&](std::size_t t) {
        const OperatingTriad& op = triads[t];
        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        sim_cfg.engine = config.engine;
        sim_cfg.lane_width = config.lane_width;
        VosDutSim sim(dut, lib, op, sim_cfg);
        if (config.provenance) {
          provs[t] = std::make_unique<ErrorProvenance>(dut);
          sim.engine().attach_observer(provs[t].get());
        }

        ErrorAccumulator acc(sim.output_width());
        double energy = 0.0;
        double dyn = 0.0;
        double settle = 0.0;

        // Establish a settled initial state from the first pattern.
        sim.reset({pats.data(), nops});

        const std::size_t batch =
            config.streaming_state ? config.batch_size : 1;
        std::vector<VosOpResult> r_buf(batch);

        std::size_t done = 0;
        while (done < config.num_patterns) {
          const std::size_t n =
              std::min(batch, config.num_patterns - done);
          const std::span<const std::uint64_t> ops_flat{
              pats.data() + (1 + done) * nops, n * nops};
          if (!config.streaming_state) sim.reset({pats.data(), nops});
          sim.apply_batch(ops_flat, n, {r_buf.data(), n});
          for (std::size_t i = 0; i < n; ++i) {
            const VosOpResult& r = r_buf[i];
            const std::span<const std::uint64_t> ops =
                ops_flat.subspan(i * nops, nops);
            acc.add(golden_of(config, ops, r.settled), r.sampled);
            energy += r.energy_fj;
            dyn += r.energy_fj - sim.leakage_energy_fj();
            settle += r.settle_time_ps;
          }
          done += n;
        }

        TriadResult& res = results[t];
        res.triad = op;
        res.ber = acc.ber();
        res.bitwise_ber = acc.bitwise_error_probability();
        res.op_error_rate = acc.op_error_rate();
        res.mse = acc.mse();
        res.mred = acc.mred();
        const auto n = static_cast<double>(config.num_patterns);
        res.energy_per_op_fj = energy / n;
        res.dynamic_energy_fj = dyn / n;
        res.leakage_energy_fj = sim.leakage_energy_fj();
        res.mean_settle_ps = settle / n;
        res.patterns = config.num_patterns;
        if (config.provenance) {
          res.provenance = provs[t]->summary();
          if (res.provenance.culprits.size() > config.top_culprits)
            res.provenance.culprits.resize(config.top_culprits);
        }
      },
      config.threads);

  if (config.provenance) {
    // One sweep-wide roll-up into the process metrics registry.
    for (std::size_t t = 1; t < provs.size(); ++t)
      provs[0]->merge(*provs[t]);
    provs[0]->publish("provenance.comb", config.top_culprits);
  }
  return results;
}

std::vector<TriadResult> characterize_seq_dut(
    const SeqDut& seq, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config) {
  VOSIM_EXPECTS(!triads.empty());
  VOSIM_EXPECTS(config.num_patterns > 0);

  // The shared stimulus sequence over the pipeline's external operands
  // (stage 0's buses) — identical at every triad, like the
  // combinational sweep.
  const std::size_t nops = seq.num_operands();
  std::vector<std::uint64_t> pats(config.num_patterns * nops);
  DutPatternStream stream(config.policy, seq.operand_widths(),
                          config.pattern_seed);
  for (std::size_t p = 0; p < config.num_patterns; ++p)
    stream.next({pats.data() + p * nops, nops});

  // Levelized grids ride the normalized fast path (one die, sliding
  // capture threshold); streaming_state = false forces the per-triad
  // reference loop below — the fast path's conformance baseline.
  // Provenance also forces the per-triad loop: the normalized replay
  // retargets one shared pipeline and never dispatches observers.
  if (config.engine == EngineKind::kLevelized && config.streaming_state &&
      !config.provenance)
    return characterize_seq_levelized_norm(seq, lib, triads, config,
                                           pats);

  std::vector<TriadResult> results(triads.size());
  std::vector<std::vector<std::unique_ptr<ErrorProvenance>>> sprovs(
      config.provenance ? triads.size() : 0);
  shared_thread_pool().parallel(
      triads.size(),
      [&](std::size_t t) {
        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        sim_cfg.engine = config.engine;
        sim_cfg.lane_width = config.lane_width;
        SeqSim sim(seq, lib, triads[t], sim_cfg);
        if (config.provenance) {
          // One ErrorProvenance per stage, labelled "s<k>:" so culprit
          // names identify the stage.
          auto& sv = sprovs[t];
          sv.reserve(sim.num_stages());
          for (std::size_t k = 0; k < sim.num_stages(); ++k) {
            const DutPinMap spins(seq.stages[k]);
            sv.push_back(std::make_unique<ErrorProvenance>(
                seq.stages[k].netlist, spins, static_cast<int>(k)));
            sim.stage_engine(k).attach_observer(sv[k].get());
          }
        }

        ErrorAccumulator acc(sim.output_width());
        double energy = 0.0;
        double settle = 0.0;
        const std::size_t cycles =
            config.num_patterns + sim.latency_cycles() - 1;
        // One contiguous clocked stream: the patterns plus zero-operand
        // flush cycles that drain the pipeline, batched through the
        // engines' native cycle path (bit-exact with the scalar loop).
        std::vector<std::uint64_t> ops(cycles * nops, 0);
        std::copy(pats.begin(), pats.end(), ops.begin());
        std::vector<SeqCycleResult> rs(cycles);
        sim.step_cycle_batch(ops, cycles, rs);
        for (std::size_t c = 0; c < cycles; ++c) {
          const SeqCycleResult& r = rs[c];
          energy += r.energy_fj;
          settle += r.max_settle_ps;
          if (r.output_valid) acc.add(r.expected, r.captured);
        }

        TriadResult& res = results[t];
        res.triad = triads[t];
        res.ber = acc.ber();
        res.bitwise_ber = acc.bitwise_error_probability();
        res.op_error_rate = acc.op_error_rate();
        res.mse = acc.mse();
        res.mred = acc.mred();
        const auto n = static_cast<double>(cycles);
        res.energy_per_op_fj = energy / n;
        res.dynamic_energy_fj =
            energy / n - sim.leakage_energy_fj_per_cycle();
        res.leakage_energy_fj = sim.leakage_energy_fj_per_cycle();
        res.mean_settle_ps = settle / n;
        res.patterns = config.num_patterns;
        if (config.provenance) {
          std::vector<ProvenanceSummary> per_stage;
          per_stage.reserve(sprovs[t].size());
          for (const auto& p : sprovs[t])
            per_stage.push_back(p->summary());
          res.provenance =
              combine_stage_summaries(per_stage, config.top_culprits);
        }
      },
      config.threads);

  if (config.provenance) {
    // Sweep-wide roll-up per stage (stage netlists differ, so stages
    // merge only across triads, never with each other).
    for (std::size_t k = 0; k < sprovs[0].size(); ++k) {
      for (std::size_t t = 1; t < sprovs.size(); ++t)
        sprovs[0][k]->merge(*sprovs[t][k]);
      sprovs[0][k]->publish("provenance.seq.s" + std::to_string(k),
                            config.top_culprits);
    }
  }
  return results;
}

double energy_efficiency(double energy_fj, double baseline_fj) {
  VOSIM_EXPECTS(baseline_fj > 0.0);
  return 1.0 - energy_fj / baseline_fj;
}

}  // namespace vosim
