#include "src/characterize/characterizer.hpp"

#include <algorithm>
#include <numeric>

#include "src/sim/levelized_sim.hpp"
#include "src/sim/vos_adder.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace vosim {

namespace {

/// The shared stimulus sequence: pats[0] settles the initial state,
/// pats[1..num_patterns] are streamed — identical at every triad
/// (paper testbench), generated once per sweep instead of per triad.
std::vector<OperandPair> generate_patterns(const CharacterizeConfig& config,
                                           int width) {
  std::vector<OperandPair> pats(config.num_patterns + 1);
  PatternStream stream(config.policy, width, config.pattern_seed);
  for (OperandPair& p : pats) p = stream.next();
  return pats;
}

/// Grid fast path for the levelized engine: supply and body bias scale
/// every gate delay by one common factor (delay_scale), and the
/// levelized engine's inertial/glitch decisions are invariant under
/// that scaling — so the whole Tclk/Vdd/Vbb grid shares one normalized
/// timing structure per die. One step_batch_sweep pass evaluates every
/// pattern against all triads at once: triad t becomes capture
/// threshold tclk·scale_ref/scale_t, with window energy scaled by
/// (Vdd/Vdd_ref)² and leakage computed per triad. The pattern stream
/// is split into segments with exact warm starts (the streaming state
/// is purely functional: the previous pattern's settled values), so
/// segment-parallel results are bit-identical to the sequential chain.
std::vector<TriadResult> characterize_levelized_sweep(
    const AdderNetlist& adder, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config, std::span<const OperandPair> pats) {
  const std::size_t nthr = triads.size();
  const std::size_t num_patterns = config.num_patterns;
  const int width = adder.width;
  const TransistorModel& tm = lib.transistor_model();

  const OperatingTriad ref{1.0, 1.0, 0.0};
  const double scale_ref = tm.delay_scale(ref.vdd_v, ref.vbb_v);
  const double leak_nw_base = adder.netlist.cell_leakage_nw(lib);

  std::vector<double> tau(nthr);     // threshold in the ref time base
  std::vector<double> escale(nthr);  // dynamic-energy scale vs ref
  std::vector<double> sscale(nthr);  // settle-time scale vs ref
  std::vector<double> leak_fj(nthr);
  for (std::size_t t = 0; t < nthr; ++t) {
    const OperatingTriad& op = triads[t];
    const double s_t = tm.delay_scale(op.vdd_v, op.vbb_v);
    tau[t] = op.tclk_ns * 1e3 * scale_ref / s_t;
    escale[t] = (op.vdd_v / ref.vdd_v) * (op.vdd_v / ref.vdd_v);
    sscale[t] = s_t / scale_ref;
    leak_fj[t] = leak_nw_base * tm.leakage_scale(op.vdd_v, op.vbb_v) *
                 1e-3 * op.tclk_ns * 1e3 * 1e-3;
  }
  std::vector<std::size_t> order(nthr);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return tau[x] < tau[y]; });
  std::vector<double> sorted_tau(nthr);
  std::vector<std::size_t> pos(nthr);  // triad -> sorted position
  for (std::size_t j = 0; j < nthr; ++j) {
    sorted_tau[j] = tau[order[j]];
    pos[order[j]] = j;
  }

  // The same operand-scatter / sum-gather mapping VosAdderSim uses, so
  // the fast path cannot diverge from the per-triad path.
  const AdderPinMap pins(adder);
  const std::size_t npis = adder.netlist.primary_inputs().size();

  // Segment the stream across the pool; each segment is large enough
  // to amortize its simulator construction.
  const unsigned workers =
      config.threads == 0 ? hardware_parallelism() : config.threads;
  const std::size_t nseg = std::clamp<std::size_t>(
      std::min<std::size_t>(workers, num_patterns / 256), 1, 64);

  struct Partial {
    ErrorAccumulator acc;
    double energy = 0.0;
    double dyn = 0.0;
    double settle = 0.0;
  };
  std::vector<std::vector<Partial>> parts(nseg);
  for (auto& seg : parts) {
    seg.reserve(nthr);
    for (std::size_t t = 0; t < nthr; ++t)
      seg.push_back(Partial{ErrorAccumulator(width + 1), 0.0, 0.0, 0.0});
  }

  shared_thread_pool().parallel(
      nseg,
      [&](std::size_t s) {
        // Stream indices [begin, end) of pats; pats[begin-1] settles.
        const std::size_t begin = 1 + s * num_patterns / nseg;
        const std::size_t end = 1 + (s + 1) * num_patterns / nseg;

        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        LevelizedSimulator eng(adder.netlist, lib, ref, sim_cfg);

        std::vector<std::uint8_t> in(npis, 0);
        pins.fill_inputs(pats[begin - 1].a, pats[begin - 1].b, in.data());
        eng.reset(in);

        constexpr std::size_t kChunk = LevelizedSimulator::kLanes;
        std::vector<std::uint8_t> bytes(kChunk * npis, 0);
        std::vector<StepResult> res(kChunk * nthr);
        std::vector<Partial>& seg = parts[s];

        for (std::size_t c = begin; c < end; c += kChunk) {
          const std::size_t n = std::min(kChunk, end - c);
          std::fill(bytes.begin(), bytes.begin() + n * npis, 0);
          for (std::size_t i = 0; i < n; ++i)
            pins.fill_inputs(pats[c + i].a, pats[c + i].b,
                             bytes.data() + i * npis);
          eng.step_batch_sweep({bytes.data(), n * npis}, n, sorted_tau,
                               res);
          for (std::size_t i = 0; i < n; ++i) {
            const OperandPair& p = pats[c + i];
            const std::uint64_t golden = exact_add(p.a, p.b, width);
            for (std::size_t t = 0; t < nthr; ++t) {
              const StepResult& st = res[i * nthr + pos[t]];
              const std::uint64_t sampled =
                  pins.gather_sum(st.sampled_outputs);
              Partial& acc = seg[t];
              acc.acc.add(golden, sampled);
              const double win = st.window_energy_fj * escale[t];
              acc.energy += win + leak_fj[t];
              acc.dyn += win;
              acc.settle += st.settle_time_ps * sscale[t];
            }
          }
        }
      },
      config.threads);

  std::vector<TriadResult> results(nthr);
  for (std::size_t t = 0; t < nthr; ++t) {
    ErrorAccumulator merged(width + 1);
    double energy = 0.0;
    double dyn = 0.0;
    double settle = 0.0;
    for (std::size_t s = 0; s < nseg; ++s) {
      merged.merge(parts[s][t].acc);
      energy += parts[s][t].energy;
      dyn += parts[s][t].dyn;
      settle += parts[s][t].settle;
    }
    TriadResult& res = results[t];
    res.triad = triads[t];
    res.ber = merged.ber();
    res.bitwise_ber = merged.bitwise_error_probability();
    res.op_error_rate = merged.op_error_rate();
    res.mse = merged.mse();
    const auto n = static_cast<double>(num_patterns);
    res.energy_per_op_fj = energy / n;
    res.dynamic_energy_fj = dyn / n;
    res.leakage_energy_fj = leak_fj[t];
    res.mean_settle_ps = settle / n;
    res.patterns = num_patterns;
  }
  return results;
}

}  // namespace

std::vector<TriadResult> characterize_adder(
    const AdderNetlist& adder, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config) {
  VOSIM_EXPECTS(!triads.empty());
  VOSIM_EXPECTS(config.num_patterns > 0);
  VOSIM_EXPECTS(config.batch_size > 0);

  const std::vector<OperandPair> pats =
      generate_patterns(config, adder.width);

  if (config.engine == EngineKind::kLevelized && config.streaming_state)
    return characterize_levelized_sweep(adder, lib, triads, config, pats);

  std::vector<TriadResult> results(triads.size());

  // One persistent pool across the whole grid (and across repeated
  // sweeps in the same process): triads are the parallel unit, patterns
  // stream through each simulator in batches.
  shared_thread_pool().parallel(
      triads.size(),
      [&](std::size_t t) {
        const OperatingTriad& op = triads[t];
        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.variation_seed;
        sim_cfg.engine = config.engine;
        VosAdderSim sim(adder, lib, op, sim_cfg);

        ErrorAccumulator acc(adder.width + 1);
        double energy = 0.0;
        double dyn = 0.0;
        double settle = 0.0;

        // Establish a settled initial state from the first pattern.
        sim.reset(pats[0].a, pats[0].b);

        const std::size_t batch =
            config.streaming_state ? config.batch_size : 1;
        std::vector<std::uint64_t> a_buf(batch);
        std::vector<std::uint64_t> b_buf(batch);
        std::vector<VosAddResult> r_buf(batch);

        std::size_t done = 0;
        while (done < config.num_patterns) {
          const std::size_t n =
              std::min(batch, config.num_patterns - done);
          for (std::size_t i = 0; i < n; ++i) {
            a_buf[i] = pats[1 + done + i].a;
            b_buf[i] = pats[1 + done + i].b;
          }
          if (!config.streaming_state) sim.reset(pats[0].a, pats[0].b);
          sim.add_batch({a_buf.data(), n}, {b_buf.data(), n},
                        {r_buf.data(), n});
          for (std::size_t i = 0; i < n; ++i) {
            const VosAddResult& r = r_buf[i];
            const std::uint64_t golden =
                exact_add(a_buf[i], b_buf[i], adder.width);
            acc.add(golden, r.sampled);
            energy += r.energy_fj;
            dyn += r.energy_fj - sim.leakage_energy_fj();
            settle += r.settle_time_ps;
          }
          done += n;
        }

        TriadResult& res = results[t];
        res.triad = op;
        res.ber = acc.ber();
        res.bitwise_ber = acc.bitwise_error_probability();
        res.op_error_rate = acc.op_error_rate();
        res.mse = acc.mse();
        const auto n = static_cast<double>(config.num_patterns);
        res.energy_per_op_fj = energy / n;
        res.dynamic_energy_fj = dyn / n;
        res.leakage_energy_fj = sim.leakage_energy_fj();
        res.mean_settle_ps = settle / n;
        res.patterns = config.num_patterns;
      },
      config.threads);

  return results;
}

double energy_efficiency(double energy_fj, double baseline_fj) {
  VOSIM_EXPECTS(baseline_fj > 0.0);
  return 1.0 - energy_fj / baseline_fj;
}

}  // namespace vosim
