// Triad sweep driver: runs a timing-simulation engine over a pattern set
// at every operating triad and gathers error + energy statistics — the
// reproduction of the paper's characterization flow (Fig. 4) with the
// gate-level simulators standing in for SPICE. The backend is selected
// per sweep: the event-driven reference, or the bit-parallel levelized
// engine for order-of-magnitude faster full-grid sweeps.
#ifndef VOSIM_CHARACTERIZE_CHARACTERIZER_HPP
#define VOSIM_CHARACTERIZE_CHARACTERIZER_HPP

#include <cstdint>
#include <vector>

#include "src/characterize/metrics.hpp"
#include "src/characterize/patterns.hpp"
#include "src/netlist/adders.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Sweep configuration.
struct CharacterizeConfig {
  std::size_t num_patterns = 20000;  ///< SPICE runs per triad in the paper
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;   ///< same stimuli at every triad
  double variation_sigma = 0.03;     ///< per-gate process variation
  std::uint64_t variation_seed = 7;  ///< "one die" across all triads
  unsigned threads = 0;              ///< 0 = hardware default
  /// Keep circuit state between operations (pipeline semantics). When
  /// false every operation starts from a settled previous pattern.
  bool streaming_state = true;
  /// Simulation backend: the event-driven reference (default) or the
  /// bit-parallel levelized engine (same stimuli, ~10x+ faster sweeps;
  /// see DESIGN.md §7 for where the two diverge).
  EngineKind engine = EngineKind::kEvent;
  /// Patterns streamed per add_batch call in the sweep hot loop.
  std::size_t batch_size = 256;
};

/// Per-triad characterization outcome.
struct TriadResult {
  OperatingTriad triad;
  double ber = 0.0;                 ///< bit error rate vs exact addition
  std::vector<double> bitwise_ber;  ///< per output position (Fig. 5)
  double op_error_rate = 0.0;
  double mse = 0.0;
  double energy_per_op_fj = 0.0;    ///< dynamic window + leakage
  double dynamic_energy_fj = 0.0;
  double leakage_energy_fj = 0.0;
  double mean_settle_ps = 0.0;
  std::size_t patterns = 0;
};

/// Runs the sweep; one simulator per triad, all sharing the same pattern
/// sequence and the same per-gate variation sample. Parallel over triads
/// on the shared persistent thread pool and bit-deterministic for a
/// fixed config (including across engines at generous Tclk).
std::vector<TriadResult> characterize_adder(
    const AdderNetlist& adder, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config = {});

/// Energy efficiency vs a baseline energy (paper's "energy saving
/// compared to ideal test case"): 1 − E/E_baseline.
double energy_efficiency(double energy_fj, double baseline_fj);

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_CHARACTERIZER_HPP
