// Triad sweep driver: runs a timing-simulation engine over a pattern set
// at every operating triad and gathers error + energy statistics — the
// reproduction of the paper's characterization flow (Fig. 4) with the
// gate-level simulators standing in for SPICE, generalized to any
// DutNetlist (adders, multipliers, MAC trees). The backend is selected
// per sweep: the event-driven reference, or the bit-parallel levelized
// engine for order-of-magnitude faster full-grid sweeps.
#ifndef VOSIM_CHARACTERIZE_CHARACTERIZER_HPP
#define VOSIM_CHARACTERIZE_CHARACTERIZER_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/characterize/metrics.hpp"
#include "src/characterize/patterns.hpp"
#include "src/netlist/dut.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// External error reference: maps one pattern's operand words to the
/// reference output word (see CharacterizeConfig::golden).
using GoldenFn =
    std::function<std::uint64_t(std::span<const std::uint64_t>)>;

/// Sweep configuration.
struct CharacterizeConfig {
  std::size_t num_patterns = 20000;  ///< SPICE runs per triad in the paper
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;   ///< same stimuli at every triad
  double variation_sigma = 0.03;     ///< per-gate process variation
  std::uint64_t variation_seed = 7;  ///< "one die" across all triads
  unsigned threads = 0;              ///< 0 = hardware default
  /// Keep circuit state between operations (pipeline semantics). When
  /// false every operation starts from a settled previous pattern.
  bool streaming_state = true;
  /// Simulation backend: the event-driven reference (default) or the
  /// bit-parallel levelized engine (same stimuli, ~10x+ faster sweeps;
  /// see DESIGN.md §7 for where the two diverge).
  EngineKind engine = EngineKind::kEvent;
  /// Patterns streamed per apply_batch call in the sweep hot loop.
  std::size_t batch_size = 256;
  /// Levelized lane width: 64, 256, 512, or 0 = auto (resolved by
  /// lanes::resolve_lane_width, see TimingSimConfig::lane_width). The
  /// grid fast paths template on it; results are bit-exact across
  /// widths.
  std::size_t lane_width = 0;
  /// Sequential levelized fast path only: a capture threshold whose
  /// first 64-cycle probe word already shows an op-error rate at or
  /// above this fraction is far past the error-onset knee (register
  /// feedback makes onset a cliff), and its replay stops at the probe
  /// instead of spending the full pattern budget. Estimates stay
  /// unbiased — only the sample count shrinks, and TriadResult::
  /// patterns reports the count actually used. Thresholds near the
  /// onset band never trip the probe (a true rate under ~12% has
  /// vanishing probability of reading >= 0.25 on 62 samples), so the
  /// event-vs-levelized conformance band is unaffected. Set above 1.0
  /// to force every replay through the full budget.
  double seq_saturation_threshold = 0.25;
  /// Error reference. Default (empty): the DUT's own settled function,
  /// so BER/MRED measure timing errors only and stay meaningful for
  /// approximate adders and multipliers alike (DESIGN.md §8). Supply a
  /// GoldenFn to measure against an external reference instead — e.g.
  /// exact addition when quantifying a static approximate adder's
  /// total (design-time + timing) error.
  GoldenFn golden;
  /// Opt-in error provenance: attach an ErrorProvenance observer per
  /// triad (per stage for pipelines) and fill TriadResult::provenance.
  /// Forces the generic per-triad sweep — the levelized grid fast
  /// paths (step_batch_sweep / normalized-seq) never dispatch
  /// observers — so a provenance sweep costs roughly one fast sweep
  /// per triad instead of one pass total (DESIGN.md §13).
  bool provenance = false;
  /// Culprit nets kept per TriadResult and published per sweep when
  /// provenance is on.
  std::size_t top_culprits = 8;
};

/// Per-triad characterization outcome.
struct TriadResult {
  OperatingTriad triad;
  double ber = 0.0;                 ///< bit error rate vs the reference
  std::vector<double> bitwise_ber;  ///< per output position (Fig. 5)
  double op_error_rate = 0.0;
  double mse = 0.0;
  double mred = 0.0;                ///< mean relative error distance
  double energy_per_op_fj = 0.0;    ///< dynamic window + leakage
  double dynamic_energy_fj = 0.0;
  double leakage_energy_fj = 0.0;
  double mean_settle_ps = 0.0;
  std::size_t patterns = 0;
  /// Filled when CharacterizeConfig::provenance: per-net culprit
  /// attribution of this triad's erroneous bits (culprits truncated to
  /// config.top_culprits). For pipelines the culprits aggregate over
  /// stages ("s<k>:<net>" names) and bitwise_ber is the output stage's
  /// local per-bit error probability.
  ProvenanceSummary provenance;
};

/// Runs the sweep; one simulator per triad, all sharing the same pattern
/// sequence and the same per-gate variation sample. Parallel over triads
/// on the shared persistent thread pool and bit-deterministic for a
/// fixed config (including across engines at generous Tclk). With the
/// levelized engine the whole Tclk/Vdd/Vbb grid collapses into one
/// normalized timing pass (step_batch_sweep) regardless of the DUT.
std::vector<TriadResult> characterize_dut(
    const DutNetlist& dut, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config = {});

struct SeqDut;

/// Sequential variant: sweeps a pipelined DUT with the clocked SeqSim.
/// Each triad streams the same operand patterns through the pipeline
/// (one new operation per cycle plus latency-1 flush cycles), scoring
/// the captured output register against the pipeline's settled function
/// aligned by latency — so errors that latch in an early stage and
/// corrupt later cycles are charged to the pattern that suffered them.
/// Per-op energy is per *cycle*: stage window dynamic + stage leakage +
/// register clock/latch energy. config.golden is ignored (the reference
/// is always the pipeline's own settled composition);
/// config.streaming_state is inherent (registers carry state).
std::vector<TriadResult> characterize_seq_dut(
    const SeqDut& seq, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const CharacterizeConfig& config = {});

/// Energy efficiency vs a baseline energy (paper's "energy saving
/// compared to ideal test case"): 1 − E/E_baseline.
double energy_efficiency(double energy_fj, double baseline_fj);

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_CHARACTERIZER_HPP
