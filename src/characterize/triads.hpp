// Operating-triad set construction (paper Table III).
//
// Each benchmark is swept over 43 triads: one relaxed nominal point plus
// {3 clock periods} × {Vdd 1.0 → 0.4 V in 0.1 V steps} × {no bias,
// 2 V forward body-bias}. Clock periods are derived from *our* synthesis
// report with the paper's per-benchmark Tclk ratios, so the sweep applies
// the same relative timing stress as the paper regardless of absolute
// library speed.
#ifndef VOSIM_CHARACTERIZE_TRIADS_HPP
#define VOSIM_CHARACTERIZE_TRIADS_HPP

#include <vector>

#include "src/netlist/adders.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

struct DutNetlist;

/// Clock periods relative to the benchmark's own synthesis critical path,
/// transcribed from Table III (first entry = relaxed nominal period).
std::vector<double> paper_tclk_ratios(AdderArch arch, int width);

/// Builds the 43-triad sweep from explicit clock periods (ns). The first
/// period is used only at (1.0 V, no bias) — the energy baseline; every
/// other period is swept across supplies and body-bias settings.
std::vector<OperatingTriad> make_triad_set(
    const std::vector<double>& tclk_ns);

/// Convenience: Table III triads for an adder whose synthesis-reported
/// critical path is `synthesis_cp_ns`.
std::vector<OperatingTriad> make_paper_triads(AdderArch arch, int width,
                                              double synthesis_cp_ns);

/// Table-III-style sweep for an arbitrary DUT (multiplier, MAC tree, …)
/// whose synthesis-reported critical path is `synthesis_cp_ns`: one
/// relaxed nominal period (1.5·CP) plus {1.0, 0.8, 0.6}·CP swept across
/// the paper's supply and body-bias steps — the same 43-point grid
/// shape as the adder benchmarks.
std::vector<OperatingTriad> make_dut_triads(double synthesis_cp_ns);

/// The Table-III sweep for any registry circuit: exact adder kinds
/// ("rca8", "bka16", …) keep the paper's per-benchmark clock ratios,
/// every other DUT gets the generic make_dut_triads grid. This is the
/// one triad-derivation rule shared by the CLI and the campaign
/// runner, keyed on DutNetlist::kind.
std::vector<OperatingTriad> make_circuit_triads(const DutNetlist& dut,
                                                double synthesis_cp_ns);

/// Supplies swept by the paper (V).
std::vector<double> paper_vdd_steps();

/// Body-bias settings swept by the paper (V): {0, +2 forward}.
std::vector<double> paper_vbb_steps();

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_TRIADS_HPP
