#include "src/characterize/report.hpp"

#include <algorithm>
#include <set>

#include "src/util/contracts.hpp"

namespace vosim {

std::vector<TriadResult> sort_for_fig8(std::vector<TriadResult> results) {
  std::sort(results.begin(), results.end(),
            [](const TriadResult& x, const TriadResult& y) {
              if (x.ber != y.ber) return x.ber < y.ber;
              return x.energy_per_op_fj < y.energy_per_op_fj;
            });
  return results;
}

std::vector<EfficiencyBand> table4_bands(
    const std::vector<TriadResult>& results, double baseline_fj) {
  VOSIM_EXPECTS(baseline_fj > 0.0);
  std::vector<EfficiencyBand> bands{
      {"0%", -1.0, 0.0, 0, false, 0.0, 0.0, {}},
      {"1% to 10%", 0.0, 10.0, 0, false, 0.0, 0.0, {}},
      {"11% to 20%", 10.0, 20.0, 0, false, 0.0, 0.0, {}},
      {"21% to 25%", 20.0, 25.0, 0, false, 0.0, 0.0, {}},
  };
  for (const TriadResult& r : results) {
    const double ber_pct = r.ber * 100.0;
    for (EfficiencyBand& band : bands) {
      const bool in_band = (band.hi_pct == 0.0)
                               ? (ber_pct == 0.0)
                               : (ber_pct > band.lo_pct &&
                                  ber_pct <= band.hi_pct);
      if (!in_band) continue;
      ++band.triad_count;
      const double ee =
          energy_efficiency(r.energy_per_op_fj, baseline_fj) * 100.0;
      if (!band.has_best || ee > band.max_efficiency_pct) {
        band.has_best = true;
        band.max_efficiency_pct = ee;
        band.ber_at_max_pct = ber_pct;
        band.best_triad = r.triad;
      }
      break;
    }
  }
  return bands;
}

TextTable fig8_table(const std::vector<TriadResult>& sorted_results,
                     double baseline_fj) {
  TextTable t({"triad (Tclk,Vdd,Vbb)", "BER [%]", "Energy/Op [fJ]",
               "EnergyEff [%]", "settle [ps]"});
  for (const TriadResult& r : sorted_results) {
    t.add_row({triad_label(r.triad), format_double(r.ber * 100.0, 2),
               format_double(r.energy_per_op_fj, 2),
               format_double(
                   energy_efficiency(r.energy_per_op_fj, baseline_fj) * 100.0,
                   1),
               format_double(r.mean_settle_ps, 1)});
  }
  return t;
}

TextTable table3_rows(const std::string& benchmark,
                      const std::vector<OperatingTriad>& triads) {
  std::set<double> tclk;
  std::set<double> vdd;
  std::set<double> vbb;
  for (const OperatingTriad& t : triads) {
    tclk.insert(t.tclk_ns);
    vdd.insert(t.vdd_v);
    vbb.insert(t.vbb_v);
  }
  auto join = [](const std::set<double>& xs, int prec) {
    std::string s;
    for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
      if (!s.empty()) s += ", ";
      s += format_double(*it, prec);
    }
    return s;
  };
  TextTable t({"Benchmark", "Tclk (ns)", "Vdd (V)", "Vbb (V)", "#triads"});
  t.add_row({benchmark, join(tclk, 3),
             format_double(*vdd.rbegin(), 1) + " to " +
                 format_double(*vdd.begin(), 1),
             join(vbb, 0), std::to_string(triads.size())});
  return t;
}

}  // namespace vosim
