#include "src/characterize/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

ErrorAccumulator::ErrorAccumulator(int nbits)
    : nbits_(nbits),
      bit_err_count_(static_cast<std::size_t>(nbits), 0) {
  VOSIM_EXPECTS(nbits >= 1 && nbits <= 64);
}

void ErrorAccumulator::add(std::uint64_t reference, std::uint64_t actual) {
  ++ops_;
  const std::uint64_t diff = (reference ^ actual) & mask_n(nbits_);
  if (diff != 0) {
    ++err_ops_;
    const int h = popcount_u64(diff);
    bit_errors_ += static_cast<std::uint64_t>(h);
    hamming_total_ += static_cast<std::uint64_t>(h);
    for (int i = 0; i < nbits_; ++i)
      if (bit_of(diff, i) != 0) ++bit_err_count_[static_cast<std::size_t>(i)];
  }
  const double r = static_cast<double>(reference);
  const double e = static_cast<double>(actual) - r;
  sum_sq_err_ += e * e;
  sum_ref_sq_ += r * r;
  sum_abs_err_ += std::abs(e);
  sum_rel_err_ += std::abs(e) / std::max(r, 1.0);
  max_abs_err_ = std::max(max_abs_err_, std::abs(e));
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) {
  VOSIM_EXPECTS(nbits_ == other.nbits_);
  ops_ += other.ops_;
  bit_errors_ += other.bit_errors_;
  err_ops_ += other.err_ops_;
  for (std::size_t i = 0; i < bit_err_count_.size(); ++i)
    bit_err_count_[i] += other.bit_err_count_[i];
  sum_sq_err_ += other.sum_sq_err_;
  sum_ref_sq_ += other.sum_ref_sq_;
  sum_abs_err_ += other.sum_abs_err_;
  sum_rel_err_ += other.sum_rel_err_;
  max_abs_err_ = std::max(max_abs_err_, other.max_abs_err_);
  hamming_total_ += other.hamming_total_;
}

double ErrorAccumulator::ber() const noexcept {
  if (ops_ == 0) return 0.0;
  return static_cast<double>(bit_errors_) /
         (static_cast<double>(ops_) * nbits_);
}

std::vector<double> ErrorAccumulator::bitwise_error_probability() const {
  std::vector<double> out(bit_err_count_.size(), 0.0);
  if (ops_ == 0) return out;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(bit_err_count_[i]) /
             static_cast<double>(ops_);
  return out;
}

double ErrorAccumulator::op_error_rate() const noexcept {
  if (ops_ == 0) return 0.0;
  return static_cast<double>(err_ops_) / static_cast<double>(ops_);
}

double ErrorAccumulator::mse() const noexcept {
  if (ops_ == 0) return 0.0;
  return sum_sq_err_ / static_cast<double>(ops_);
}

double ErrorAccumulator::snr_db() const noexcept {
  if (sum_sq_err_ <= 0.0)
    return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(sum_ref_sq_ / sum_sq_err_);
}

double ErrorAccumulator::mean_hamming() const noexcept {
  if (ops_ == 0) return 0.0;
  return static_cast<double>(hamming_total_) / static_cast<double>(ops_);
}

double ErrorAccumulator::normalized_hamming() const noexcept {
  return mean_hamming() / nbits_;
}

double ErrorAccumulator::mean_abs_error() const noexcept {
  if (ops_ == 0) return 0.0;
  return sum_abs_err_ / static_cast<double>(ops_);
}

double ErrorAccumulator::mred() const noexcept {
  if (ops_ == 0) return 0.0;
  return sum_rel_err_ / static_cast<double>(ops_);
}

}  // namespace vosim
