// Input-pattern generation for operator characterization.
//
// The paper stimulates each triad with 20 000 patterns "chosen in such a
// way that all the input bits carry equal probability to propagate carry
// in the chain" (Section IV). kCarryBalanced implements that intent by
// stratifying the per-pattern propagate density, which spreads the
// theoretical carry-chain length over its whole range.
#ifndef VOSIM_CHARACTERIZE_PATTERNS_HPP
#define VOSIM_CHARACTERIZE_PATTERNS_HPP

#include <cstdint>
#include <utility>

#include "src/util/rng.hpp"

namespace vosim {

/// Stimulus policies.
enum class PatternPolicy {
  kUniform,        ///< independent uniform operands
  kCarryBalanced,  ///< stratified propagate density (paper-style)
  kCorrelatedWalk, ///< operands follow a random walk (application-like)
};

/// An operand pair.
struct OperandPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Deterministic pattern stream: same (policy, width, seed) => same
/// sequence, so every triad of a sweep sees identical stimuli, as in the
/// paper's testbench.
class PatternStream {
 public:
  PatternStream(PatternPolicy policy, int width, std::uint64_t seed);

  OperandPair next();

  int width() const noexcept { return width_; }
  PatternPolicy policy() const noexcept { return policy_; }

 private:
  OperandPair next_uniform();
  OperandPair next_carry_balanced();
  OperandPair next_walk();

  PatternPolicy policy_;
  int width_;
  Rng rng_;
  OperandPair last_{};  // for the correlated walk
};

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_PATTERNS_HPP
