// Input-pattern generation for operator characterization.
//
// The paper stimulates each triad with 20 000 patterns "chosen in such a
// way that all the input bits carry equal probability to propagate carry
// in the chain" (Section IV). kCarryBalanced implements that intent by
// stratifying the per-pattern propagate density, which spreads the
// theoretical carry-chain length over its whole range.
#ifndef VOSIM_CHARACTERIZE_PATTERNS_HPP
#define VOSIM_CHARACTERIZE_PATTERNS_HPP

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/util/rng.hpp"

namespace vosim {

/// Stimulus policies.
enum class PatternPolicy {
  kUniform,        ///< independent uniform operands
  kCarryBalanced,  ///< stratified propagate density (paper-style)
  kCorrelatedWalk, ///< operands follow a random walk (application-like)
};

/// An operand pair.
struct OperandPair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Deterministic pattern stream: same (policy, width, seed) => same
/// sequence, so every triad of a sweep sees identical stimuli, as in the
/// paper's testbench.
class PatternStream {
 public:
  PatternStream(PatternPolicy policy, int width, std::uint64_t seed);

  OperandPair next();

  int width() const noexcept { return width_; }
  PatternPolicy policy() const noexcept { return policy_; }

 private:
  OperandPair next_uniform();
  OperandPair next_carry_balanced();
  OperandPair next_walk();

  PatternPolicy policy_;
  int width_;
  Rng rng_;
  OperandPair last_{};  // for the correlated walk
};

/// Deterministic multi-operand stimulus for DUT characterization.
/// Operand buses are consumed in adjacent pairs; pair k (equal widths)
/// draws an OperandPair from its own PatternStream seeded seed + k, so
/// the carry-balanced policy keeps its pairwise propagate semantics on
/// every operand pair of a tree or MAC. A plain two-operand DUT (adder,
/// multiplier) therefore sees exactly the classic PatternStream(policy,
/// width, seed) sequence. A trailing or width-mismatched bus draws a
/// pair of its own and keeps the first word.
class DutPatternStream {
 public:
  DutPatternStream(PatternPolicy policy, std::vector<int> operand_widths,
                   std::uint64_t seed);

  /// Fills operands[0..num_operands()).
  void next(std::span<std::uint64_t> operands);

  std::size_t num_operands() const noexcept { return widths_.size(); }
  PatternPolicy policy() const noexcept { return policy_; }

 private:
  struct Source {
    PatternStream stream;
    std::size_t first;  ///< operand index the pair lands in
    bool paired;        ///< fills operands first and first+1
  };

  PatternPolicy policy_;
  std::vector<int> widths_;
  std::vector<Source> sources_;
};

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_PATTERNS_HPP
