#include "src/characterize/variability.hpp"

#include "src/sim/vos_dut.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stats.hpp"

namespace vosim {

DieSpread spread_of(std::vector<double> samples) {
  DieSpread s;
  RunningStats rs;
  for (const double v : samples) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  const auto qs = quantiles(std::move(samples), {0.25, 0.50, 0.75});
  s.q25 = qs[0];
  s.median = qs[1];
  s.q75 = qs[2];
  return s;
}

std::vector<VariabilityResult> variability_study(
    const DutNetlist& dut, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const VariabilityConfig& config) {
  VOSIM_EXPECTS(!triads.empty());
  VOSIM_EXPECTS(config.num_dies >= 1);
  VOSIM_EXPECTS(config.num_patterns > 0);

  std::vector<VariabilityResult> out(triads.size());
  // Flatten (triad, die) into one parallel index space.
  const std::size_t dies = static_cast<std::size_t>(config.num_dies);
  std::vector<double> ber(triads.size() * dies, 0.0);
  std::vector<double> energy(triads.size() * dies, 0.0);
  const std::size_t nops = dut.num_operands();

  parallel_for(
      triads.size() * dies,
      [&](std::size_t job) {
        const std::size_t t = job / dies;
        const std::size_t die = job % dies;
        TimingSimConfig sim_cfg;
        sim_cfg.variation_sigma = config.variation_sigma;
        sim_cfg.variation_seed = config.die_seed_base + die;
        sim_cfg.engine = config.engine;
        VosDutSim sim(dut, lib, triads[t], sim_cfg);

        DutPatternStream patterns(config.policy, dut.operand_widths(),
                                  config.pattern_seed);
        ErrorAccumulator acc(sim.output_width());
        double e = 0.0;
        std::vector<std::uint64_t> ops(nops, 0);
        patterns.next(ops);
        sim.reset(ops);
        for (std::size_t i = 0; i < config.num_patterns; ++i) {
          patterns.next(ops);
          const VosOpResult r = sim.apply(ops);
          acc.add(r.settled, r.sampled);
          e += r.energy_fj;
        }
        ber[job] = acc.ber();
        energy[job] = e / static_cast<double>(config.num_patterns);
      },
      config.jobs);

  for (std::size_t t = 0; t < triads.size(); ++t) {
    VariabilityResult& r = out[t];
    r.triad = triads[t];
    r.dies = config.num_dies;
    std::vector<double> die_ber(ber.begin() + static_cast<long>(t * dies),
                                ber.begin() +
                                    static_cast<long>((t + 1) * dies));
    std::vector<double> die_e(
        energy.begin() + static_cast<long>(t * dies),
        energy.begin() + static_cast<long>((t + 1) * dies));
    int clean = 0;
    for (const double b : die_ber)
      if (b == 0.0) ++clean;
    r.error_free_die_fraction =
        static_cast<double>(clean) / static_cast<double>(config.num_dies);
    r.ber = spread_of(std::move(die_ber));
    r.energy_fj = spread_of(std::move(die_e));
  }
  return out;
}

}  // namespace vosim
