#include "src/characterize/patterns.hpp"

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

PatternStream::PatternStream(PatternPolicy policy, int width,
                             std::uint64_t seed)
    : policy_(policy), width_(width), rng_(seed) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
}

OperandPair PatternStream::next() {
  switch (policy_) {
    case PatternPolicy::kUniform: return next_uniform();
    case PatternPolicy::kCarryBalanced: return next_carry_balanced();
    case PatternPolicy::kCorrelatedWalk: return next_walk();
  }
  return {};
}

OperandPair PatternStream::next_uniform() {
  return OperandPair{rng_.bits(width_), rng_.bits(width_)};
}

OperandPair PatternStream::next_carry_balanced() {
  // Draw a per-pattern propagate density q, then classify each bit as
  // propagate (a^b = 1), generate (a = b = 1) or kill (a = b = 0).
  // Sweeping q in [0.2, 0.95] makes long and short carry chains equally
  // well represented in the stimulus set.
  const double q = 0.2 + 0.75 * rng_.uniform();
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  for (int i = 0; i < width_; ++i) {
    if (rng_.flip(q)) {
      // Propagate: exactly one operand carries the bit.
      if (rng_.flip(0.5)) a |= (1ULL << i);
      else b |= (1ULL << i);
    } else if (rng_.flip(0.5)) {
      a |= (1ULL << i);  // generate
      b |= (1ULL << i);
    }
    // else: kill (both zero)
  }
  return OperandPair{a, b};
}

DutPatternStream::DutPatternStream(PatternPolicy policy,
                                   std::vector<int> operand_widths,
                                   std::uint64_t seed)
    : policy_(policy), widths_(std::move(operand_widths)) {
  VOSIM_EXPECTS(!widths_.empty());
  std::size_t i = 0;
  std::uint64_t k = 0;
  while (i < widths_.size()) {
    const bool paired =
        i + 1 < widths_.size() && widths_[i + 1] == widths_[i];
    sources_.push_back(
        Source{PatternStream(policy, widths_[i], seed + k), i, paired});
    i += paired ? 2 : 1;
    ++k;
  }
}

void DutPatternStream::next(std::span<std::uint64_t> operands) {
  VOSIM_EXPECTS(operands.size() == widths_.size());
  for (Source& src : sources_) {
    const OperandPair p = src.stream.next();
    operands[src.first] = p.a;
    if (src.paired) operands[src.first + 1] = p.b;
  }
}

OperandPair PatternStream::next_walk() {
  const std::uint64_t m = mask_n(width_);
  // Small signed increments emulate slowly-varying application data.
  const std::uint64_t step = 1ULL << (width_ >= 8 ? width_ - 6 : 1);
  const std::uint64_t da = rng_.below(2 * step + 1);
  const std::uint64_t db = rng_.below(2 * step + 1);
  last_.a = (last_.a + da + (m + 1) - step) & m;
  last_.b = (last_.b + db + (m + 1) - step) & m;
  return last_;
}

}  // namespace vosim
