// Monte-Carlo process-variation study: characterize one operating triad
// across many simulated dies (independent per-gate delay samples) and
// summarize the spread of BER and energy. Supports the paper's Section
// II/III discussion — "the impact of variability has to be considered to
// achieve optimum balance between accuracy and energy".
#ifndef VOSIM_CHARACTERIZE_VARIABILITY_HPP
#define VOSIM_CHARACTERIZE_VARIABILITY_HPP

#include <cstdint>
#include <vector>

#include "src/characterize/characterizer.hpp"

namespace vosim {

/// Spread of a metric across dies (see spread_of()).
struct DieSpread {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Per-triad Monte-Carlo outcome.
struct VariabilityResult {
  OperatingTriad triad;
  int dies = 0;
  DieSpread ber;
  DieSpread energy_fj;
  /// Fraction of dies that are completely error-free at this triad —
  /// the parametric-yield view of a VOS operating point.
  double error_free_die_fraction = 0.0;
};

/// Study configuration.
struct VariabilityConfig {
  int num_dies = 25;
  double variation_sigma = 0.05;     ///< per-gate log-normal sigma
  std::uint64_t die_seed_base = 1000;  ///< die i uses seed base + i
  std::size_t num_patterns = 3000;
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;
  /// Worker cap on the shared persistent ThreadPool (0 = default) —
  /// the same convention as CampaignConfig::jobs, so nesting a
  /// variability study inside a campaign or fleet run never
  /// oversubscribes the machine with a second pool.
  unsigned jobs = 0;
  /// Simulation backend; both backends draw identical per-die variation
  /// samples, so die i names the same circuit under either engine.
  EngineKind engine = EngineKind::kEvent;
};

/// Runs the Monte-Carlo study for each triad over any DUT. Errors are
/// counted against the DUT's settled function (timing errors only).
std::vector<VariabilityResult> variability_study(
    const DutNetlist& dut, const CellLibrary& lib,
    const std::vector<OperatingTriad>& triads,
    const VariabilityConfig& config = {});

/// Summarizes a sample vector into a DieSpread (mean, stddev,
/// min/quartiles/max). Shared by the variability and fleet studies.
DieSpread spread_of(std::vector<double> samples);

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_VARIABILITY_HPP
