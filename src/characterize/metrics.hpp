// Error metrics for characterization: BER, per-bit error probability,
// MSE, SNR, Hamming distances (paper Sections IV-V definitions).
#ifndef VOSIM_CHARACTERIZE_METRICS_HPP
#define VOSIM_CHARACTERIZE_METRICS_HPP

#include <cstdint>
#include <vector>

namespace vosim {

/// Accumulates reference/actual word pairs and derives the paper's
/// statistics. `nbits` is the compared word width (adders: width+1,
/// including the carry-out — Fig. 5 plots 9 positions for 8-bit adders).
class ErrorAccumulator {
 public:
  explicit ErrorAccumulator(int nbits);

  void add(std::uint64_t reference, std::uint64_t actual);
  void merge(const ErrorAccumulator& other);

  int nbits() const noexcept { return nbits_; }
  std::uint64_t ops() const noexcept { return ops_; }

  /// Bit Error Rate: faulty output bits / total output bits.
  double ber() const noexcept;
  /// Per-position error probability (index 0 = LSB), size nbits.
  std::vector<double> bitwise_error_probability() const;
  /// Fraction of operations with at least one wrong bit.
  double op_error_rate() const noexcept;
  /// Mean squared numerical error.
  double mse() const noexcept;
  /// Signal-to-noise ratio treating the reference as signal:
  /// 10·log10(Σ ref² / Σ (ref-actual)²). Returns +infinity when
  /// error-free; callers cap for display.
  double snr_db() const noexcept;
  /// Mean Hamming distance per op.
  double mean_hamming() const noexcept;
  /// Mean Hamming distance normalized by word width (paper Fig. 7b).
  double normalized_hamming() const noexcept;
  /// Mean absolute numerical error.
  double mean_abs_error() const noexcept;
  double max_abs_error() const noexcept { return max_abs_err_; }
  /// Mean relative error distance: mean of |ref − actual| / max(ref, 1)
  /// — the approximate-multiplier literature's MRED, with the zero-
  /// reference convention that divides by one.
  double mred() const noexcept;

 private:
  int nbits_;
  std::uint64_t ops_ = 0;
  std::uint64_t bit_errors_ = 0;
  std::uint64_t err_ops_ = 0;
  std::vector<std::uint64_t> bit_err_count_;
  double sum_sq_err_ = 0.0;
  double sum_ref_sq_ = 0.0;
  double sum_abs_err_ = 0.0;
  double sum_rel_err_ = 0.0;
  double max_abs_err_ = 0.0;
  std::uint64_t hamming_total_ = 0;
};

/// SNR display cap (dB) used by reports when a model is error-free.
inline constexpr double snr_display_cap_db = 60.0;

}  // namespace vosim

#endif  // VOSIM_CHARACTERIZE_METRICS_HPP
