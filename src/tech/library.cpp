#include "src/tech/library.hpp"

#include <utility>

#include "src/util/contracts.hpp"
#include "src/util/table.hpp"

namespace vosim {

CellLibrary::CellLibrary(std::string name,
                         std::array<Cell, cell_kind_count> cells,
                         TransistorModel model)
    : name_(std::move(name)), cells_(cells), model_(model) {}

const Cell& CellLibrary::cell(CellKind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  VOSIM_EXPECTS(idx < cells_.size());
  const Cell& c = cells_[idx];
  VOSIM_ENSURES(c.kind == kind);
  return c;
}

namespace {

/// Builds a cell record; the logic function and pin count come from the
/// canonical per-kind tables so simulators and the library always agree.
Cell make_cell(CellKind kind, double area, double cap, double intr,
               double drive, double leak) {
  return Cell{kind,  cell_num_inputs(kind), cell_truth(kind), area,
              cap,   intr,                  drive,            leak};
}

std::array<Cell, cell_kind_count> fdsoi28_cells() {
  std::array<Cell, cell_kind_count> cells{};
  auto put = [&cells](const Cell& c) {
    cells[static_cast<std::size_t>(c.kind)] = c;
  };
  //                    kind            area  cap   intr  drive leak
  put(make_cell(CellKind::kInv,         0.65, 0.55,  6.0, 4.2, 1.5));
  put(make_cell(CellKind::kBuf,         1.00, 0.60, 12.0, 3.8, 2.0));
  put(make_cell(CellKind::kNand2,       0.85, 0.70,  8.0, 5.0, 2.2));
  put(make_cell(CellKind::kNor2,        0.85, 0.70,  9.5, 5.8, 2.0));
  put(make_cell(CellKind::kAnd2,        1.10, 0.70, 13.0, 4.6, 2.5));
  put(make_cell(CellKind::kOr2,         1.10, 0.70, 14.0, 5.0, 2.4));
  put(make_cell(CellKind::kXor2,        1.60, 1.05, 17.5, 5.4, 3.4));
  put(make_cell(CellKind::kXnor2,       1.60, 1.05, 17.5, 5.4, 3.4));
  put(make_cell(CellKind::kAoi21,       1.15, 0.75, 10.0, 6.0, 2.6));
  put(make_cell(CellKind::kOai21,       1.15, 0.75, 10.0, 6.0, 2.6));
  // AO21 is speed-skewed: it is the per-level carry cell of the
  // parallel-prefix trees, sized for short stage delay.
  put(make_cell(CellKind::kAo21,        1.20, 0.75,  7.0, 3.5, 2.6));
  // MAJ3 is the mirror-adder carry stage of the ripple chain.
  put(make_cell(CellKind::kMaj3,        1.40, 0.80, 12.0, 4.4, 3.0));
  put(make_cell(CellKind::kTieLo,       0.30, 0.00,  0.0, 0.0, 0.3));
  put(make_cell(CellKind::kTieHi,       0.30, 0.00,  0.0, 0.0, 0.3));
  return cells;
}

}  // namespace

const CellLibrary& make_fdsoi28_lvt() {
  static const CellLibrary lib("fdsoi28_lvt", fdsoi28_cells(),
                               TransistorModel(TransistorParams{}));
  return lib;
}

CellLibrary make_fdsoi28_lvt_at(double temp_c) {
  TransistorParams p;
  p.temp_c = temp_c;
  return CellLibrary("fdsoi28_lvt@" + format_double(temp_c, 0) + "C",
                     fdsoi28_cells(), TransistorModel(p));
}

}  // namespace vosim
