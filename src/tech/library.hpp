// The technology library: a set of characterized cells plus the
// transistor model used to scale them across operating points.
#ifndef VOSIM_TECH_LIBRARY_HPP
#define VOSIM_TECH_LIBRARY_HPP

#include <array>
#include <string>

#include "src/tech/cell.hpp"
#include "src/tech/transistor_model.hpp"

namespace vosim {

/// Immutable cell library. Construct via make_fdsoi28_lvt().
class CellLibrary {
 public:
  CellLibrary(std::string name, std::array<Cell, cell_kind_count> cells,
              TransistorModel model);

  const std::string& name() const noexcept { return name_; }
  const Cell& cell(CellKind kind) const;
  const TransistorModel& transistor_model() const noexcept { return model_; }

  /// Default wire load added to every net (fF); a crude but standard
  /// stand-in for a wire-load model.
  double wire_cap_ff() const noexcept { return wire_cap_ff_; }

  /// Sequential-cell figures used for registered-IO synthesis reports and
  /// primary-output loading (the paper's operators sit between pipeline
  /// registers).
  double dff_area_um2() const noexcept { return 4.2; }
  double dff_d_cap_ff() const noexcept { return 1.5; }
  double dff_leakage_nw() const noexcept { return 4.0; }
  /// Internal clock/latch energy per flop per cycle at nominal Vdd (fJ).
  double dff_clock_energy_fj() const noexcept { return 1.8; }
  /// Flop setup time (ps): data must be stable this long before the
  /// clock edge to latch. The sequential simulator (src/seq) captures
  /// each stage at Tclk − setup — a transition inside the setup window
  /// misses the flop. Held constant across operating points (a mild
  /// simplification; gate delays scale, setup is charged flat).
  double dff_setup_ps() const noexcept { return 8.0; }

 private:
  std::string name_;
  std::array<Cell, cell_kind_count> cells_;
  TransistorModel model_;
  double wire_cap_ff_ = 0.9;
};

/// Builds the 28nm-FDSOI-LVT-flavoured library used throughout the
/// reproduction. Cell data are plausible for the node but synthetic
/// (no proprietary PDK data; see DESIGN.md §2).
const CellLibrary& make_fdsoi28_lvt();

/// The same library at another junction temperature (corner analysis).
/// Delay/leakage scale factors remain relative to the room-temperature
/// nominal, so results across temperatures are directly comparable.
CellLibrary make_fdsoi28_lvt_at(double temp_c);

}  // namespace vosim

#endif  // VOSIM_TECH_LIBRARY_HPP
