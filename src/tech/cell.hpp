// Standard-cell descriptions: logic function plus timing/power/area data.
#ifndef VOSIM_TECH_CELL_HPP
#define VOSIM_TECH_CELL_HPP

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

namespace vosim {

/// Cell kinds available in the technology library. TIE cells provide
/// constants; MAJ3 is the mirror-adder carry cell found in arithmetic-
/// oriented libraries.
enum class CellKind : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kAoi21,  // !((a & b) | c)
  kOai21,  // !((a | b) & c)
  kAo21,   // (a & b) | c — speed-skewed prefix-combine cell
  kMaj3,   // majority(a, b, c) — full-adder carry
  kTieLo,
  kTieHi,
};

/// Number of distinct cell kinds (array sizing).
inline constexpr int cell_kind_count = 14;

/// Short library name, e.g. "NAND2_X1".
std::string cell_kind_name(CellKind kind);

/// Canonical logic function of a cell kind: bit i of the result is the
/// output for packed input minterm i (pin 0 = LSB). The simulators use
/// this directly so they need no library handle on the hot path.
std::uint16_t cell_truth(CellKind kind);

/// Number of input pins of a cell kind.
int cell_num_inputs(CellKind kind);

/// One characterized library cell. Delay/energy figures are at the
/// nominal corner (1.0 V, no bias, TT); the TransistorModel scales them
/// to other operating points.
struct Cell {
  CellKind kind = CellKind::kInv;
  int num_inputs = 1;
  std::uint16_t truth = 0;      ///< output bit for input minterm i
  double area_um2 = 0.0;        ///< layout area
  double input_cap_ff = 0.0;    ///< capacitance per input pin
  double intrinsic_delay_ps = 0.0;  ///< unloaded propagation delay
  double drive_ps_per_ff = 0.0;     ///< delay slope vs output load
  double leakage_nw = 0.0;      ///< static power at nominal corner

  /// Evaluates the cell function. `inputs` holds 0/1 values, LSB-first
  /// pin order, and must have exactly num_inputs entries.
  bool eval(std::span<const bool> inputs) const;
};

/// Builds the truth table word for an n-input function given output bits
/// listed minterm-major (index = packed input bits, pin0 = LSB).
constexpr std::uint16_t truth_from_bits(std::initializer_list<int> outs) {
  std::uint16_t t = 0;
  int i = 0;
  for (int o : outs) {
    if (o != 0) t = static_cast<std::uint16_t>(t | (1u << i));
    ++i;
  }
  return t;
}

}  // namespace vosim

#endif  // VOSIM_TECH_CELL_HPP
