// Per-gate delay and energy evaluation at an operating point.
#ifndef VOSIM_TECH_GATE_TIMING_HPP
#define VOSIM_TECH_GATE_TIMING_HPP

#include "src/tech/cell.hpp"
#include "src/tech/library.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Propagation delay of `cell` driving `load_ff` at operating point `op`:
/// (intrinsic + drive · load) · delay_scale(Vdd, Vbb), in picoseconds.
double gate_delay_ps(const Cell& cell, double load_ff,
                     const TransistorModel& model, const OperatingTriad& op);

/// Dynamic energy of one output toggle with total switched capacitance
/// `cap_ff` at supply `vdd_v`:  1/2 · C · Vdd², in femtojoules.
double toggle_energy_fj(double cap_ff, double vdd_v);

/// Static power of `cell` at the operating point, in nanowatts.
double cell_leakage_nw(const Cell& cell, const TransistorModel& model,
                       const OperatingTriad& op);

}  // namespace vosim

#endif  // VOSIM_TECH_GATE_TIMING_HPP
