#include "src/tech/operating_point.hpp"

#include <cmath>

#include "src/util/table.hpp"

namespace vosim {

std::string triad_label(const OperatingTriad& t) {
  // Two decimals for Vdd (trailing zeros trimmed): "0.5" like the paper,
  // but off-grid supplies such as 0.45 V stay distinguishable.
  std::string s = format_double(t.tclk_ns, 3) + "," + format_double(t.vdd_v, 2);
  if (t.vbb_v > 0.0) {
    s += ",±" + format_double(t.vbb_v, 0);  // paper prints FBB as ±2
  } else {
    s += "," + format_double(t.vbb_v, 0);
  }
  return s;
}

OperatingTriad nominal_triad(double tclk_ns) {
  return OperatingTriad{tclk_ns, 1.0, 0.0};
}

}  // namespace vosim
