#include "src/tech/gate_timing.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

double gate_delay_ps(const Cell& cell, double load_ff,
                     const TransistorModel& model, const OperatingTriad& op) {
  VOSIM_EXPECTS(load_ff >= 0.0);
  const double nominal_ps =
      cell.intrinsic_delay_ps + cell.drive_ps_per_ff * load_ff;
  return nominal_ps * model.delay_scale(op.vdd_v, op.vbb_v);
}

double toggle_energy_fj(double cap_ff, double vdd_v) {
  VOSIM_EXPECTS(cap_ff >= 0.0);
  // 1/2 C V^2: fF · V^2 = fJ.
  return 0.5 * cap_ff * vdd_v * vdd_v;
}

double cell_leakage_nw(const Cell& cell, const TransistorModel& model,
                       const OperatingTriad& op) {
  return cell.leakage_nw * model.leakage_scale(op.vdd_v, op.vbb_v);
}

}  // namespace vosim
