#include "src/tech/transistor_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace vosim {

namespace {
constexpr double kelvin(double temp_c) { return temp_c + 273.15; }
}  // namespace

TransistorModel::TransistorModel(const TransistorParams& params)
    : params_(params) {
  VOSIM_EXPECTS(params_.vt0_v > 0.0);
  VOSIM_EXPECTS(params_.subthreshold_n >= 1.0);
  VOSIM_EXPECTS(params_.phi_t_v > 0.0);
  VOSIM_EXPECTS(params_.alpha >= 1.0 && params_.alpha <= 2.0);
  VOSIM_EXPECTS(params_.nominal_vdd_v > params_.vt0_v);
  VOSIM_EXPECTS(params_.temp_c > -273.15);
  // Normalize against the *reference-corner* model so that instances at
  // other temperatures report comparable scale factors.
  if (params_.temp_c == params_.reference_temp_c) {
    nominal_drive_ = 1.0;  // placeholder so raw_drive can run
    nominal_drive_ = raw_drive(params_.nominal_vdd_v, 0.0);
  } else {
    TransistorParams ref = params_;
    ref.temp_c = params_.reference_temp_c;
    nominal_drive_ = TransistorModel(ref).nominal_drive_;
  }
}

double TransistorModel::phi_t() const noexcept {
  return params_.phi_t_v * kelvin(params_.temp_c) /
         kelvin(params_.reference_temp_c);
}

double TransistorModel::vt_eff(double vbb_v) const noexcept {
  const double vbb = std::clamp(vbb_v, -params_.vbb_max_v, params_.vbb_max_v);
  const double dvt_temp =
      params_.vt_temp_v_per_c * (params_.temp_c - params_.reference_temp_c);
  return params_.vt0_v + dvt_temp - params_.body_coeff_v_per_v * vbb;
}

double TransistorModel::softplus_overdrive(double vdd_v,
                                           double vbb_v) const noexcept {
  const double denom = 2.0 * params_.subthreshold_n * phi_t();  // 2nφt
  const double x = (vdd_v - vt_eff(vbb_v)) / denom;
  // Numerically stable ln(1+e^x).
  if (x > 30.0) return x;
  return std::log1p(std::exp(x));
}

double TransistorModel::raw_drive(double vdd_v, double vbb_v) const {
  VOSIM_EXPECTS(vdd_v >= params_.vdd_min_v);
  const double f = softplus_overdrive(vdd_v, vbb_v);
  const double mobility =
      std::pow(kelvin(params_.temp_c) / kelvin(params_.reference_temp_c),
               -params_.mobility_exp);
  return mobility * std::pow(f, params_.alpha);
}

double TransistorModel::drive(double vdd_v, double vbb_v) const {
  return raw_drive(vdd_v, vbb_v) / nominal_drive_;
}

double TransistorModel::delay_scale(double vdd_v, double vbb_v) const {
  // Delay ∝ C·Vdd / I  (paper Eq. 2); normalized so the reference-corner
  // nominal is 1.
  const double i = drive(vdd_v, vbb_v);
  VOSIM_ENSURES(i > 0.0);
  return (vdd_v / params_.nominal_vdd_v) / i;
}

double TransistorModel::leakage_scale(double vdd_v, double vbb_v) const {
  VOSIM_EXPECTS(vdd_v >= params_.vdd_min_v);
  // Subthreshold conduction rises exponentially as Vt drops below its
  // reference value — whether by forward body-bias or by heat. The
  // effective exponent uses 2nφt (fitted; DESIGN.md §5 — keeps leakage
  // a small fraction of energy/op as in the paper's adders).
  const double denom = 2.0 * params_.subthreshold_n * phi_t();
  const double dvt = params_.vt0_v - vt_eff(vbb_v);  // >0 under FBB/heat
  const double body_term = std::exp(dvt / denom);
  // DIBL-ish supply dependence plus linear conduction scaling.
  const double dibl =
      std::exp(params_.leak_dibl_per_v * (vdd_v - params_.nominal_vdd_v));
  // Subthreshold current carries a φt² ∝ T² prefactor on top of the
  // exponential Vt term.
  const double t_ratio =
      kelvin(params_.temp_c) / kelvin(params_.reference_temp_c);
  return (vdd_v / params_.nominal_vdd_v) * body_term * dibl * t_ratio *
         t_ratio;
}

TransistorModel TransistorModel::at_temperature(double temp_c) const {
  TransistorParams p = params_;
  p.temp_c = temp_c;
  return TransistorModel(p);
}

}  // namespace vosim
