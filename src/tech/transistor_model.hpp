// Voltage / body-bias dependent drive and leakage model.
//
// Replaces the paper's Eldo SPICE + 28nm FDSOI LVT transistor libraries
// (DESIGN.md §2). The drive current uses an EKV-flavoured smooth
// interpolation valid from sub- to super-threshold:
//
//     I(Vdd, Vt)  ∝  [ ln(1 + exp((Vdd - Vt) / (2 n φt)) ) ]^α
//
// which tends to ((Vdd-Vt)/(2nφt))^α in strong inversion (alpha-power law,
// paper Eq. 2) and to exp((Vdd-Vt)/(2nφt))·α′ decay below threshold.
// FDSOI body-biasing shifts the threshold linearly: Vt_eff = Vt0 − γ·Vbb.
#ifndef VOSIM_TECH_TRANSISTOR_MODEL_HPP
#define VOSIM_TECH_TRANSISTOR_MODEL_HPP

namespace vosim {

/// Technology constants for the 28nm-FDSOI-LVT-flavoured model. Values are
/// calibrated to reproduce the paper's qualitative behaviour (DESIGN.md §5),
/// not any proprietary PDK.
struct TransistorParams {
  double vt0_v = 0.40;          ///< threshold voltage at the reference temp
  double body_coeff_v_per_v = 0.12;  ///< γ: dVt per volt of body bias
  double subthreshold_n = 1.5;  ///< slope ideality factor
  double phi_t_v = 0.026;       ///< thermal voltage at the reference temp
  double alpha = 1.8;           ///< velocity-saturation exponent
  double nominal_vdd_v = 1.0;   ///< reference supply for scale factors
  /// Additional DIBL-like leakage supply sensitivity (per volt).
  double leak_dibl_per_v = 1.2;
  /// Minimum supply the model accepts (deep sub-threshold guard).
  double vdd_min_v = 0.2;
  /// Maximum |Vbb| the flip-well biasing supports.
  double vbb_max_v = 2.0;

  // -- temperature corner -------------------------------------------------
  /// Junction temperature of this model instance (°C). Scale factors stay
  /// normalized to (nominal_vdd, no bias) at reference_temp_c, so models
  /// at different temperatures are directly comparable.
  double temp_c = 25.0;
  double reference_temp_c = 25.0;
  /// dVt/dT: thresholds drop as silicon heats (~ -1 mV/K).
  double vt_temp_v_per_c = -0.001;
  /// Mobility degradation exponent: drive ∝ (T/Tref)^-mobility_exp.
  double mobility_exp = 1.5;
};

/// Evaluates delay/leakage scale factors at an operating voltage pair.
/// All factors are relative to (nominal_vdd, Vbb = 0).
class TransistorModel {
 public:
  TransistorModel() : TransistorModel(TransistorParams{}) {}
  explicit TransistorModel(const TransistorParams& params);

  const TransistorParams& params() const noexcept { return params_; }

  /// Effective threshold voltage under body bias (clamped to the
  /// supported ±vbb_max range).
  double vt_eff(double vbb_v) const noexcept;

  /// Normalized drive current; 1.0 at (nominal_vdd, 0 V bias).
  double drive(double vdd_v, double vbb_v) const;

  /// Gate-delay multiplier vs nominal:  (Vdd / I(Vdd,Vbb)) normalized.
  /// > 1 means slower than nominal. Throws ContractViolation for
  /// out-of-range supplies.
  double delay_scale(double vdd_v, double vbb_v) const;

  /// Leakage-power multiplier vs nominal. Forward body-bias increases
  /// leakage exponentially; lowering Vdd decreases it (DIBL); heat
  /// increases it (subthreshold slope + Vt drop).
  double leakage_scale(double vdd_v, double vbb_v) const;

  /// A copy of this model moved to another junction temperature; its
  /// scale factors remain relative to the same room-temperature nominal,
  /// so delay_scale across instances is directly comparable. Exposes the
  /// near-threshold *temperature inversion* effect: heat slows strong-
  /// inversion logic (mobility) but speeds up near-threshold logic
  /// (lower Vt).
  TransistorModel at_temperature(double temp_c) const;

 private:
  /// Thermal voltage at the instance temperature.
  double phi_t() const noexcept;
  /// Smooth EKV interpolation term ln(1+exp(x)).
  double softplus_overdrive(double vdd_v, double vbb_v) const noexcept;
  /// Unnormalized drive at this instance's temperature.
  double raw_drive(double vdd_v, double vbb_v) const;

  TransistorParams params_;
  double nominal_drive_ = 1.0;  ///< cached reference-corner drive
};

}  // namespace vosim

#endif  // VOSIM_TECH_TRANSISTOR_MODEL_HPP
