// Operating triad (Tclk, Vdd, Vbb) — the paper's control knob for
// voltage over-scaling (Section III, Eq. 1).
#ifndef VOSIM_TECH_OPERATING_POINT_HPP
#define VOSIM_TECH_OPERATING_POINT_HPP

#include <compare>
#include <string>

namespace vosim {

/// One operating point of a circuit: clock period, supply voltage and
/// body-bias voltage. The paper writes triads as "Tclk,Vdd,Vbb" with
/// Vbb = ±2 denoting symmetric flip-well forward body-bias of 2 V.
struct OperatingTriad {
  double tclk_ns = 0.0;  ///< clock period in nanoseconds
  double vdd_v = 1.0;    ///< supply voltage in volts
  double vbb_v = 0.0;    ///< body-bias voltage in volts (>0 forward)

  friend auto operator<=>(const OperatingTriad&,
                          const OperatingTriad&) = default;
};

/// Paper-style label, e.g. "0.28,0.5,±2" (forward bias prints as ±|v|).
std::string triad_label(const OperatingTriad& t);

/// Nominal operating point helper: (tclk, 1.0 V, no bias).
OperatingTriad nominal_triad(double tclk_ns);

}  // namespace vosim

#endif  // VOSIM_TECH_OPERATING_POINT_HPP
