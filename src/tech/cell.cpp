#include "src/tech/cell.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

std::string cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return "INV_X1";
    case CellKind::kBuf: return "BUF_X1";
    case CellKind::kNand2: return "NAND2_X1";
    case CellKind::kNor2: return "NOR2_X1";
    case CellKind::kAnd2: return "AND2_X1";
    case CellKind::kOr2: return "OR2_X1";
    case CellKind::kXor2: return "XOR2_X1";
    case CellKind::kXnor2: return "XNOR2_X1";
    case CellKind::kAoi21: return "AOI21_X1";
    case CellKind::kOai21: return "OAI21_X1";
    case CellKind::kAo21: return "AO21_X1";
    case CellKind::kMaj3: return "MAJ3_X1";
    case CellKind::kTieLo: return "TIELO";
    case CellKind::kTieHi: return "TIEHI";
  }
  return "UNKNOWN";
}

std::uint16_t cell_truth(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return truth_from_bits({1, 0});
    case CellKind::kBuf: return truth_from_bits({0, 1});
    case CellKind::kNand2: return truth_from_bits({1, 1, 1, 0});
    case CellKind::kNor2: return truth_from_bits({1, 0, 0, 0});
    case CellKind::kAnd2: return truth_from_bits({0, 0, 0, 1});
    case CellKind::kOr2: return truth_from_bits({0, 1, 1, 1});
    case CellKind::kXor2: return truth_from_bits({0, 1, 1, 0});
    case CellKind::kXnor2: return truth_from_bits({1, 0, 0, 1});
    case CellKind::kAoi21: return truth_from_bits({1, 1, 1, 0, 0, 0, 0, 0});
    case CellKind::kOai21: return truth_from_bits({1, 1, 1, 1, 1, 0, 0, 0});
    case CellKind::kAo21: return truth_from_bits({0, 0, 0, 1, 1, 1, 1, 1});
    case CellKind::kMaj3: return truth_from_bits({0, 0, 0, 1, 0, 1, 1, 1});
    case CellKind::kTieLo: return truth_from_bits({0});
    case CellKind::kTieHi: return truth_from_bits({1});
  }
  return 0;
}

int cell_num_inputs(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf: return 1;
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kXnor2: return 2;
    case CellKind::kAoi21:
    case CellKind::kOai21:
    case CellKind::kAo21:
    case CellKind::kMaj3: return 3;
    case CellKind::kTieLo:
    case CellKind::kTieHi: return 0;
  }
  return 0;
}

bool Cell::eval(std::span<const bool> inputs) const {
  VOSIM_EXPECTS(static_cast<int>(inputs.size()) == num_inputs);
  unsigned idx = 0;
  for (int i = 0; i < num_inputs; ++i)
    if (inputs[static_cast<std::size_t>(i)]) idx |= (1u << i);
  return ((truth >> idx) & 1u) != 0;
}

}  // namespace vosim
