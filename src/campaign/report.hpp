// Campaign aggregation: Pareto fronts over the quality-energy plane,
// quality-floor queries, model-vs-gate-level quality deviation, and
// text/CSV rendering — the application-level counterpart of the
// paper's Fig. 8 (BER vs energy) with BER replaced by each workload's
// own quality metric.
#ifndef VOSIM_CAMPAIGN_REPORT_HPP
#define VOSIM_CAMPAIGN_REPORT_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/campaign/store.hpp"
#include "src/util/table.hpp"

namespace vosim {

/// The Pareto-optimal subset of `cells` on the (energy ascending,
/// normalized quality descending) plane: a cell survives iff no other
/// cell has energy <= and quality >= with at least one strict.
/// Returned sorted by energy ascending (quality strictly increasing
/// along the front). Callers normally pass one (workload, backend)
/// group — mixing metrics is meaningful only because `normalized` is
/// unit-free.
std::vector<CampaignCell> pareto_front(std::vector<CampaignCell> cells);

/// Cheapest cell whose normalized quality meets `floor` (the "quality
/// floor -> minimum-energy triad" query); nullopt when unreachable.
std::optional<CampaignCell> min_energy_at_floor(
    const std::vector<CampaignCell>& cells, double floor);

/// Cells of one (workload, backend) pair, grid order preserved.
std::vector<CampaignCell> select_cells(
    const std::vector<CampaignCell>& cells, const std::string& workload,
    const std::string& backend);

/// Full-grid listing: one row per cell.
TextTable campaign_table(const std::vector<CampaignCell>& cells);

/// Pareto listing with energy saving vs each cell's own circuit
/// baseline (the relaxed-nominal triad).
TextTable pareto_table(const std::vector<CampaignCell>& front);

/// Model-vs-gate-level agreement: for every (workload, circuit, triad)
/// present on both the model backend and a sim-* backend, the absolute
/// difference of normalized quality, in percentage points.
struct QualityDeviation {
  std::size_t cells = 0;   ///< matched (model, sim) pairs
  double mean_pp = 0.0;
  double max_pp = 0.0;
};
QualityDeviation model_quality_deviation(
    const std::vector<CampaignCell>& cells);

}  // namespace vosim

#endif  // VOSIM_CAMPAIGN_REPORT_HPP
