// Content-keyed JSONL result store — what makes campaigns resumable.
//
// Every finished campaign cell is appended to a JSONL file as one
// self-describing line keyed by the cell's content (workload, circuit,
// backend, triad, seed, training budget). On construction the store
// loads every valid line, so a re-run of the same campaign finds its
// finished cells by key and recomputes only the missing ones
// (append-on-complete, load-on-start; DESIGN.md §9). The store is
// thread-safe: the campaign runner inserts from pool workers.
#ifndef VOSIM_CAMPAIGN_STORE_HPP
#define VOSIM_CAMPAIGN_STORE_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/tech/operating_point.hpp"

namespace vosim {

/// Identity of one campaign cell. Two runs that agree on every field
/// compute the same quality value (the grid is deterministic), so the
/// canonical string below is a safe cache key.
struct CampaignCellKey {
  std::string workload;
  std::string circuit;
  std::string backend;          ///< arith_backend_name() token
  OperatingTriad triad;
  std::uint64_t seed = 0;       ///< campaign seed
  std::uint64_t train_patterns = 0;  ///< model-training budget (0 when
                                     ///< the backend trains nothing)
  std::uint64_t characterize_patterns = 0;  ///< energy/BER join budget
  /// Fleet chip instance (0 = the nominal die, the pre-fleet grid).
  /// Chip i's process corner is content-hashed from the fleet seed
  /// (src/fleet), so the id alone names the die.
  std::uint64_t chip = 0;

  /// Canonical content key, e.g.
  /// "fir|rca16|model|0.53,0.5,2|1|4000|2000|0".
  std::string to_string() const;

  friend bool operator==(const CampaignCellKey&,
                         const CampaignCellKey&) = default;
};

/// One finished cell: key plus the measured quality and the joined
/// per-op energy/BER of the cell's (circuit, triad) characterization.
struct CampaignCell {
  CampaignCellKey key;
  std::string metric;           ///< QualityResult metric token
  double quality = 0.0;         ///< metric's native unit
  double normalized = 0.0;      ///< [0, 1] quality score
  double energy_per_op_fj = 0.0;
  double baseline_fj = 0.0;     ///< circuit's relaxed-nominal energy/op
  double ber = 0.0;             ///< adder BER at this triad
  std::uint64_t adds = 0;       ///< routed additions in the workload run
  double elapsed_s = 0.0;
  /// Top-K culprit nets of the cell's sim run ("net=bits,net=bits",
  /// stage-prefixed for sim-seq) — filled only when the campaign ran
  /// with provenance on a gate-level backend; empty otherwise. The
  /// JSONL field is omitted when empty and tolerated when absent, so
  /// provenance-free stores round-trip byte-identically.
  std::string culprits;
};

/// JSONL persistence + in-memory index of campaign cells.
class CampaignStore {
 public:
  /// In-memory store (no persistence) — used by examples and tests.
  CampaignStore() = default;
  /// Backed by `path`: loads every parseable line (last occurrence of a
  /// key wins, malformed lines are skipped), appends on insert.
  explicit CampaignStore(std::string path);

  const std::string& path() const noexcept { return path_; }
  std::size_t size() const;

  /// Finished cell for this key, or nullopt.
  std::optional<CampaignCell> find(const CampaignCellKey& key) const;

  /// Records a finished cell: indexes it and (when file-backed) appends
  /// its JSONL line immediately, so a killed campaign keeps everything
  /// completed so far. Thread-safe.
  void insert(const CampaignCell& cell);

  /// All cells in canonical key order.
  std::vector<CampaignCell> cells() const;

  /// Run-manifest header line found on load ("" when none — every
  /// pre-manifest store). Manifest lines are intentionally not
  /// parseable as cells, so old readers skip them (see src/obs).
  const std::string& manifest_line() const;

  /// Writes `line` as the store's manifest header. Appends only when
  /// the store is file-backed and no manifest is present yet, so
  /// re-running a campaign against an existing store never duplicates
  /// the header (first writer wins, like the cells it describes).
  void write_header(const std::string& line);

  /// One cell as a single JSONL line (no trailing newline).
  static std::string to_jsonl(const CampaignCell& cell);
  /// Parses a line written by to_jsonl; nullopt when malformed.
  static std::optional<CampaignCell> parse_jsonl(const std::string& line);

 private:
  mutable std::mutex m_;
  std::string path_;
  std::string manifest_line_;
  std::map<std::string, CampaignCell> cells_;
};

/// merge_stores accounting.
struct MergeStats {
  std::size_t files = 0;      ///< input files read
  std::size_t lines = 0;      ///< lines seen across all inputs
  std::size_t skipped = 0;    ///< malformed lines dropped
  std::size_t manifests = 0;  ///< run-manifest headers excluded
  std::size_t cells = 0;      ///< unique cells written to the output
};

/// Content-keyed merge of shard-local stores: reads every input in
/// order (later files — and later lines within a file — win on key
/// collisions, the store's own last-write-wins rule) and writes the
/// union to `out_path` in canonical key order. Because the output
/// order is canonical rather than append order, merging a single store
/// with itself canonicalizes it — which is how shard-vs-single-process
/// equivalence is checked byte-for-byte (run_benches.sh fleet gate).
/// `strip_timing` zeroes the wall-clock `elapsed_s` field, the one
/// value that legitimately differs between equivalent runs. Throws
/// std::runtime_error on an unreadable input or unwritable output.
MergeStats merge_stores(const std::vector<std::string>& inputs,
                        const std::string& out_path,
                        bool strip_timing = false);

/// Minimal JSONL field accessors shared by the store, the merge tool
/// and the serve daemon's wire format (src/serve). Only handles the
/// flat object lines this codebase writes — identifiers and numbers,
/// no escapes or nesting.
namespace jsonl {

/// Shortest round-trippable decimal form of a double.
std::string num(double v);
/// Extracts the raw token after `"field":` — a number, or the body of
/// a quoted string. Returns false when the field is absent.
bool raw_field(const std::string& line, const std::string& field,
               std::string& out);
bool num_field(const std::string& line, const std::string& field,
               double& out);
bool u64_field(const std::string& line, const std::string& field,
               std::uint64_t& out);

}  // namespace jsonl

}  // namespace vosim

#endif  // VOSIM_CAMPAIGN_STORE_HPP
